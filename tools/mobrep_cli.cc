// mobrep_cli — command-line front end for the library. All logic lives in
// cli_main.cc so the CLI smoke tests can call Main() in-process.

#include "cli_main.h"

int main(int argc, char** argv) { return mobrep::cli::Main(argc, argv); }
