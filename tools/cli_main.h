#ifndef MOBREP_TOOLS_CLI_MAIN_H_
#define MOBREP_TOOLS_CLI_MAIN_H_

namespace mobrep::cli {

// Entry point of the mobrep_cli command-line tool, factored out of the
// binary so tests can drive every subcommand in-process (capturing stdout
// and checking exit codes) instead of shelling out. Returns the process
// exit code.
int Main(int argc, char** argv);

}  // namespace mobrep::cli

#endif  // MOBREP_TOOLS_CLI_MAIN_H_
