#!/usr/bin/env python3
"""Compares two trees of BENCH_*.json reports (bench/support/bench_json.cc).

Two layers, matching the repo's determinism contract:

  1. Cells — every report's "cells" member is a pure function of the
     seeds, so between a baseline and a candidate tree the cells must be
     byte-identical (same keys in the same order, same %.17g-rendered
     values). Any difference is a correctness regression and fails the
     comparison unconditionally.
  2. Timing — "timing.wall_ms" is wall-clock telemetry; the comparison
     reports per-bench deltas, and with --fail-on-regression a slowdown
     beyond --threshold (relative, default 0.25 = 25%) fails the run.
     Timing on shared CI runners is noisy: the gate is off by default so
     the cell check stays the hard contract and timing stays advisory.

Reports present in only one tree are listed (and fail the run unless
--allow-missing). Output is a deterministic per-bench table on stdout.

Usage:
  bench_compare.py baseline_dir candidate_dir
      [--threshold 0.25] [--fail-on-regression] [--allow-missing]

Exit code 0 when the trees agree, 1 on any cell mismatch / missing report
/ (with --fail-on-regression) timing regression, 2 on usage errors.
Stdlib only — runs anywhere CI has python3.
"""

import argparse
import json
import pathlib
import sys


def load_reports(tree: pathlib.Path) -> dict:
    if not tree.is_dir():
        print(f"bench_compare: usage error: {tree} is not a directory",
              file=sys.stderr)
        sys.exit(2)
    reports = {}
    for path in sorted(tree.glob("BENCH_*.json")):
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_compare: FAIL: cannot parse {path}: {e}",
                  file=sys.stderr)
            sys.exit(1)
        reports[path.name] = doc
    return reports


def cell_list(doc: dict) -> list:
    cells = doc.get("cells", [])
    return [(c.get("key"), c.get("value")) for c in cells]


def first_cell_diff(base: list, cand: list):
    """Returns a human description of the first difference, or None."""
    for i, (b, c) in enumerate(zip(base, cand)):
        if b != c:
            if b[0] != c[0]:
                return f"cell {i}: key {b[0]!r} vs {c[0]!r}"
            return f"cell {i} ({b[0]!r}): value {b[1]!r} vs {c[1]!r}"
    if len(base) != len(cand):
        return f"cell count {len(base)} vs {len(cand)}"
    return None


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("candidate", type=pathlib.Path)
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="relative wall_ms slowdown counted as a regression "
             "(default 0.25)")
    parser.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit 1 when a timing regression exceeds the threshold "
             "(cell mismatches always fail)")
    parser.add_argument(
        "--allow-missing", action="store_true",
        help="tolerate reports present in only one tree")
    args = parser.parse_args()
    if args.threshold < 0:
        print("bench_compare: usage error: --threshold must be >= 0",
              file=sys.stderr)
        sys.exit(2)

    base = load_reports(args.baseline)
    cand = load_reports(args.candidate)

    failures = []
    regressions = []
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    for name in only_base:
        print(f"  {name}: only in {args.baseline}")
    for name in only_cand:
        print(f"  {name}: only in {args.candidate}")
    if (only_base or only_cand) and not args.allow_missing:
        failures.append(f"{len(only_base) + len(only_cand)} report(s) "
                        "present in only one tree")

    common = sorted(set(base) & set(cand))
    if not common and not failures:
        print("bench_compare: FAIL: no common BENCH_*.json reports",
              file=sys.stderr)
        sys.exit(1)

    width = max((len(n) for n in common), default=10)
    for name in common:
        diff = first_cell_diff(cell_list(base[name]), cell_list(cand[name]))
        base_ms = base[name].get("timing", {}).get("wall_ms")
        cand_ms = cand[name].get("timing", {}).get("wall_ms")
        if isinstance(base_ms, (int, float)) and base_ms > 0 and \
                isinstance(cand_ms, (int, float)):
            rel = (cand_ms - base_ms) / base_ms
            timing = f"{base_ms:9.1f} -> {cand_ms:9.1f} ms ({rel:+7.1%})"
            if rel > args.threshold:
                timing += "  REGRESSION"
                regressions.append(
                    f"{name}: wall_ms {base_ms:.1f} -> {cand_ms:.1f} "
                    f"({rel:+.1%} > {args.threshold:.0%})")
        else:
            rel = None
            timing = "timing n/a"
        verdict = "cells OK" if diff is None else "CELL MISMATCH"
        print(f"  {name:<{width}}  {verdict:<14} {timing}")
        if diff is not None:
            failures.append(f"{name}: {diff}")

    for failure in failures:
        print(f"bench_compare: FAIL: {failure}", file=sys.stderr)
    for regression in regressions:
        flag = "FAIL" if args.fail_on_regression else "WARN"
        print(f"bench_compare: {flag}: timing regression: {regression}",
              file=sys.stderr)

    if failures or (args.fail_on_regression and regressions):
        sys.exit(1)
    print(f"bench_compare: OK: {len(common)} report(s), cells byte-identical"
          + (f", {len(regressions)} timing regression(s) above "
             f"{args.threshold:.0%} (advisory)" if regressions else ""))


if __name__ == "__main__":
    main()
