#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file exported by mobrep.

Checks the structural contract that Perfetto / chrome://tracing rely on:
a top-level object with a `traceEvents` list, every event carrying a
phase and pid, complete ("X") events carrying ts/dur/tid/name, and
metadata ("M") events carrying a name payload. With --require-spans, at
least one complete span must be present (the parallel sweep's per-thread
cell spans).

Flow events ("s"/"f" — the causal analyzer's happens-before arrows) are
always checked for well-formedness when present: numeric ts, an id, and
every flow id carrying both a start and a finish. With --require-flows, at
least one complete flow pair must be present (annotated analyzer exports).

Usage: validate_trace.py [--require-spans] [--require-flows] trace.json
Exit code 0 on success; 1 with a diagnostic on the first violation.
Stdlib only — runs anywhere CI has python3.
"""

import argparse
import collections
import json
import sys


def fail(message: str) -> None:
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--require-spans",
        action="store_true",
        help="fail unless at least one complete ('X') span is present",
    )
    parser.add_argument(
        "--require-flows",
        action="store_true",
        help="fail unless at least one matched 's'/'f' flow pair is present",
    )
    args = parser.parse_args()

    try:
        with open(args.path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {args.path}: {e}")

    if not isinstance(doc, dict):
        fail("top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("missing traceEvents list")
    if not events:
        fail("traceEvents is empty")

    phases = collections.Counter()
    flow_starts = collections.Counter()
    flow_finishes = collections.Counter()
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            fail(f"{where} is not an object")
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            fail(f"{where} has no phase ('ph')")
        if not isinstance(event.get("pid"), int):
            fail(f"{where} has no integer pid")
        phases[ph] += 1
        if ph == "X":
            for key in ("ts", "dur"):
                if not isinstance(event.get(key), (int, float)):
                    fail(f"{where} ('X' span) has no numeric {key}")
            if event.get("dur", -1) < 0:
                fail(f"{where} has negative duration")
            if not isinstance(event.get("tid"), int):
                fail(f"{where} ('X' span) has no integer tid")
            if not event.get("name"):
                fail(f"{where} ('X' span) has no name")
        elif ph == "M":
            if not isinstance(event.get("args"), dict) or not event["args"].get(
                "name"
            ):
                fail(f"{where} (metadata) has no args.name")
        elif ph == "i":
            if not isinstance(event.get("ts"), (int, float)):
                fail(f"{where} (instant) has no numeric ts")
        elif ph in ("s", "f"):
            if not isinstance(event.get("ts"), (int, float)):
                fail(f"{where} (flow '{ph}') has no numeric ts")
            flow_id = event.get("id")
            if flow_id is None:
                fail(f"{where} (flow '{ph}') has no id")
            if not event.get("name"):
                fail(f"{where} (flow '{ph}') has no name")
            (flow_starts if ph == "s" else flow_finishes)[flow_id] += 1

    if args.require_spans and phases["X"] == 0:
        fail("no complete ('X') spans found — expected per-thread sweep "
             "cell spans")

    # Every flow id must pair exactly one start with exactly one finish:
    # a dangling arrow renders as garbage in Perfetto.
    for flow_id, n in flow_starts.items():
        if n != 1:
            fail(f"flow id {flow_id!r} has {n} starts (want 1)")
        if flow_finishes.get(flow_id, 0) != 1:
            fail(f"flow id {flow_id!r} has a start but "
                 f"{flow_finishes.get(flow_id, 0)} finishes (want 1)")
    for flow_id, n in flow_finishes.items():
        if flow_id not in flow_starts:
            fail(f"flow id {flow_id!r} has a finish but no start")
        if n != 1:
            fail(f"flow id {flow_id!r} has {n} finishes (want 1)")
    if args.require_flows and not flow_starts:
        fail("no 's'/'f' flow pairs found — expected the analyzer's causal "
             "arrows")

    span_threads = {
        e["tid"] for e in events if isinstance(e, dict) and e.get("ph") == "X"
    }
    summary = ", ".join(f"{ph}={n}" for ph, n in sorted(phases.items()))
    print(
        f"validate_trace: OK: {len(events)} events ({summary}); "
        f"spans on {len(span_threads)} thread(s)"
    )


if __name__ == "__main__":
    main()
