#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file exported by mobrep.

Checks the structural contract that Perfetto / chrome://tracing rely on:
a top-level object with a `traceEvents` list, every event carrying a
phase and pid, complete ("X") events carrying ts/dur/tid/name, and
metadata ("M") events carrying a name payload. With --require-spans, at
least one complete span must be present (the parallel sweep's per-thread
cell spans).

Usage: validate_trace.py [--require-spans] trace.json
Exit code 0 on success; 1 with a diagnostic on the first violation.
Stdlib only — runs anywhere CI has python3.
"""

import argparse
import collections
import json
import sys


def fail(message: str) -> None:
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--require-spans",
        action="store_true",
        help="fail unless at least one complete ('X') span is present",
    )
    args = parser.parse_args()

    try:
        with open(args.path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {args.path}: {e}")

    if not isinstance(doc, dict):
        fail("top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("missing traceEvents list")
    if not events:
        fail("traceEvents is empty")

    phases = collections.Counter()
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            fail(f"{where} is not an object")
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            fail(f"{where} has no phase ('ph')")
        if not isinstance(event.get("pid"), int):
            fail(f"{where} has no integer pid")
        phases[ph] += 1
        if ph == "X":
            for key in ("ts", "dur"):
                if not isinstance(event.get(key), (int, float)):
                    fail(f"{where} ('X' span) has no numeric {key}")
            if event.get("dur", -1) < 0:
                fail(f"{where} has negative duration")
            if not isinstance(event.get("tid"), int):
                fail(f"{where} ('X' span) has no integer tid")
            if not event.get("name"):
                fail(f"{where} ('X' span) has no name")
        elif ph == "M":
            if not isinstance(event.get("args"), dict) or not event["args"].get(
                "name"
            ):
                fail(f"{where} (metadata) has no args.name")
        elif ph == "i":
            if not isinstance(event.get("ts"), (int, float)):
                fail(f"{where} (instant) has no numeric ts")

    if args.require_spans and phases["X"] == 0:
        fail("no complete ('X') spans found — expected per-thread sweep "
             "cell spans")

    span_threads = {
        e["tid"] for e in events if isinstance(e, dict) and e.get("ph") == "X"
    }
    summary = ", ".join(f"{ph}={n}" for ph, n in sorted(phases.items()))
    print(
        f"validate_trace: OK: {len(events)} events ({summary}); "
        f"spans on {len(span_threads)} thread(s)"
    )


if __name__ == "__main__":
    main()
