// Implementation of the mobrep_cli command dispatch — see cli_main.h.
//
// Subcommands:
//   simulate  Run a policy over a synthetic or recorded workload and print
//             the cost breakdown (with the closed-form prediction).
//   expected  Print the closed-form expected cost, average expected cost
//             and competitive factor of a policy.
//   analyze   Run the protocol under tracing and print the causal trace
//             analysis: happens-before reconstruction, latency anatomy and
//             the anomaly audit (docs/OBSERVABILITY.md "Analysis").
//   offline   Compute the offline-optimal (clairvoyant) cost of a trace.
//   generate  Produce a workload trace file.
//   protocol  Run the distributed MC/SC protocol simulation.
//   advise    Recommend a policy for a workload description.
//   compare   Simulate several policies on one workload side by side.
//   trace     Replay a schedule with event tracing on and print the
//             decision audit log (optionally exporting a Chrome trace).
//   crash     Explore every reachable crash point of a protocol run and
//             verify recovery (docs/RECOVERY.md).
//   partition Sweep network partitions over the leased protocol and verify
//             the reclamation invariants (DESIGN.md §10).
//
// Run with no arguments for usage; every subcommand takes --help. Exit
// codes: 0 success, 1 runtime failure (bad input file, invariant
// violations, error-severity anomalies), 2 usage error (unknown command or
// flag, malformed policy/shape spec, missing required flag).

#include "cli_main.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "mobrep/analysis/advisor.h"
#include "mobrep/chaos/crash_explorer.h"
#include "mobrep/chaos/partition_explorer.h"
#include "mobrep/chaos/partition_scheduler.h"
#include "mobrep/analysis/average_cost.h"
#include "mobrep/analysis/competitive.h"
#include "mobrep/analysis/expected_cost.h"
#include "mobrep/common/random.h"
#include "mobrep/common/strings.h"
#include "mobrep/core/cost_simulator.h"
#include "mobrep/core/offline_optimal.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/obs/analysis/analyzer.h"
#include "mobrep/obs/trace.h"
#include "mobrep/obs/trace_export.h"
#include "mobrep/protocol/protocol_sim.h"
#include "mobrep/trace/generators.h"
#include "mobrep/trace/stats.h"
#include "mobrep/trace/trace_io.h"

namespace mobrep::cli {
namespace {

// One row per subcommand: the summary feeds the global usage index, the
// flag help feeds `<command> --help` and doubles as the set of accepted
// flags (a "--name " token in the help IS the allow-list entry, so help
// text and validation cannot drift apart).
struct CommandSpec {
  const char* name;
  const char* summary;
  const char* flags;
};

constexpr CommandSpec kCommands[] = {
    {"simulate", "run a policy over a workload and print the cost breakdown",
     "  --policy <spec>        policy spec (default sw:9)\n"
     "  --model <name>         connection | message (default connection)\n"
     "  --omega <w>            message-model control weight (default 0.5)\n"
     "  --theta <t>            Bernoulli read probability (default 0.5)\n"
     "  --requests <n>         workload length (default 100000)\n"
     "  --seed <s>             workload RNG seed (default 42)\n"
     "  --trace-in <file>      replay a recorded workload instead\n"},
    {"expected",
     "print a policy's closed-form EXP, AVG and competitive factor",
     "  --policy <spec>        policy spec (default sw:9)\n"
     "  --model <name>         connection | message (default connection)\n"
     "  --omega <w>            message-model control weight (default 0.5)\n"
     "  --theta <t>            evaluate one theta instead of the sweep\n"},
    {"analyze",
     "run the protocol under tracing and print the causal analysis",
     "  --policy <spec>        policy spec (default sw:3)\n"
     "  --theta <t>            Bernoulli read probability (default 0.5)\n"
     "  --requests <n>         workload length (default 200)\n"
     "  --seed <s>             workload and fault RNG seed (default 42)\n"
     "  --latency <l>          one-way link latency (default 0.001)\n"
     "  --drop <p>             per-attempt drop probability (default 0)\n"
     "  --dup <p>              delivery duplication probability (default 0)\n"
     "  --jitter <j>           max extra per-frame latency (default 0)\n"
     "  --reliable <0|1>       force the ARQ layer on a fault-free link\n"
     "  --ring <n>             trace-ring capacity per thread\n"
     "                         (default requests*128 + 8192)\n"
     "  --storm-threshold <n>  retransmit-storm warning threshold "
     "(default 8)\n"
     "  --json <0|1>           print the JSON report instead of text\n"
     "  --perfetto-out <file>  write the annotated Chrome trace\n"},
    {"offline", "compute the clairvoyant offline-optimal cost of a trace",
     "  --trace-in <file>      recorded workload (required)\n"
     "  --model <name>         connection | message (default connection)\n"
     "  --omega <w>            message-model control weight (default 0.5)\n"},
    {"generate", "produce a workload trace file",
     "  --trace-out <file>     output path (required)\n"
     "  --requests <n>         workload length (default 100000)\n"
     "  --theta <t>            Bernoulli read probability (default 0.5)\n"
     "  --periods <p>          period workload: number of periods\n"
     "  --period-length <l>    period workload: requests per period\n"
     "  --seed <s>             workload RNG seed (default 42)\n"},
    {"protocol", "run the distributed MC/SC protocol simulation",
     "  --policy <spec>        policy spec (default sw:9)\n"
     "  --theta <t>            Bernoulli read probability (default 0.5)\n"
     "  --requests <n>         workload length (default 10000)\n"
     "  --seed <s>             workload RNG seed (default 42)\n"
     "  --latency <l>          one-way link latency (default 0.001)\n"
     "  --omega <w>            message-model control weight (default 0.5)\n"},
    {"advise", "recommend a policy for a workload description",
     "  --model <name>         connection | message (default connection)\n"
     "  --omega <w>            message-model control weight (default 0.5)\n"
     "  --theta <t>            known read probability, if any\n"
     "  --max-factor <c>       cap on the competitive factor\n"
     "  --max-parameter <p>    largest window/threshold to consider\n"},
    {"compare", "simulate several policies on one workload side by side",
     "  --policies <a,b,c>     comma-separated policy specs\n"
     "  --model <name>         connection | message (default connection)\n"
     "  --omega <w>            message-model control weight (default 0.5)\n"
     "  --theta <t>            Bernoulli read probability (default 0.5)\n"
     "  --requests <n>         workload length (default 100000)\n"
     "  --seed <s>             workload RNG seed (default 42)\n"},
    {"trace", "replay a schedule with tracing and print the decision audit",
     "  --policy <spec>        policy spec (default sw:3)\n"
     "  --model <name>         connection | message (default connection)\n"
     "  --omega <w>            message-model control weight (default 0.5)\n"
     "  --theta <t>            Bernoulli read probability (default 0.5)\n"
     "  --requests <n>         workload length (default 50)\n"
     "  --seed <s>             workload RNG seed (default 42)\n"
     "  --trace-in <file>      replay a recorded workload instead\n"
     "  --chrome-out <file>    write a Chrome trace (load in Perfetto)\n"},
    {"crash", "explore every crash point of a protocol run, verify recovery",
     "  --policy <spec>        policy spec (default sw:3)\n"
     "  --theta <t>            Bernoulli read probability (default 0.5)\n"
     "  --requests <n>         workload length (default 12)\n"
     "  --seed <s>             workload RNG seed (default 42)\n"
     "  --wal-dir <dir>        where the WALs live (default /tmp)\n"
     "  --verbose <0|1>        list every crash point (default 0)\n"},
    {"partition", "sweep partitions over the leased protocol, verify "
                  "reclamation",
     "  --policy <spec>        policy spec (default st2)\n"
     "  --seed <s>             fault RNG seed (default 42)\n"
     "  --shape <name>         symmetric | uplink | downlink (default: "
     "all)\n"
     "  --start <t>            partition start time (default 0.35)\n"
     "  --duration <d|never>   partition length (default: 0.05, 0.4, "
     "never)\n"
     "  --term <t>             lease term\n"
     "  --grace <t>            lease grace period\n"
     "  --detector-timeout <t> failure-detector timeout\n"
     "  --drop <p>             per-attempt drop probability (default 0)\n"
     "  --verbose <0|1>        print the per-run summary (default 0)\n"},
};

const CommandSpec* FindCommand(const std::string& name) {
  for (const CommandSpec& spec : kCommands) {
    if (name == spec.name) return &spec;
  }
  return nullptr;
}

std::string GlobalUsage() {
  std::string out =
      "mobrep_cli — data replication for mobile computers (SIGMOD '94)\n"
      "\n"
      "usage: mobrep_cli <command> [--flag value ...]\n"
      "       mobrep_cli <command> --help\n"
      "\n"
      "commands:\n";
  for (const CommandSpec& spec : kCommands) {
    out += StrFormat("  %-9s %s\n", spec.name, spec.summary);
  }
  out +=
      "\n"
      "policy specs: st1, st2, sw1, sw:<k>, t1:<m>, t2:<m>\n"
      "exit codes:   0 success, 1 runtime failure, 2 usage error\n";
  return out;
}

std::string CommandHelp(const CommandSpec& spec) {
  return StrFormat("usage: mobrep_cli %s [--flag value ...]\n\n%s\n\nflags:\n%s",
                   spec.name, spec.summary, spec.flags);
}

// A flag is accepted iff its "--name " token appears in the command's help
// text — see CommandSpec.
bool FlagAllowed(const CommandSpec& spec, const std::string& key) {
  return std::string(spec.flags).find("--" + key + " ") != std::string::npos;
}

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; i += 2) {
      std::string key = argv[i];
      if (key.rfind("--", 0) == 0) key = key.substr(2);
      if (i + 1 >= argc) {
        dangling_ = key;
        break;
      }
      values_[key] = argv[i + 1];
      order_.push_back(key);
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return ParseDouble(it->second).value_or(fallback);
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return ParseInt64(it->second).value_or(fallback);
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  // Keys in command-line order, for validation against the command spec.
  const std::vector<std::string>& keys() const { return order_; }
  // Trailing flag with no value, empty if the command line was well-formed.
  const std::string& dangling() const { return dangling_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> order_;
  std::string dangling_;
};

CostModel ModelFromFlags(const Flags& flags) {
  const std::string model = flags.GetString("model", "connection");
  if (model == "message") {
    return CostModel::Message(flags.GetDouble("omega", 0.5));
  }
  return CostModel::Connection();
}

// Runtime failure (bad input file, invariant violation): exit code 1.
int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

// The caller misused the CLI (malformed spec, missing required flag):
// exit code 2, distinct from runtime failures so scripts can tell "fix the
// invocation" from "the run went wrong".
int UsageError(const std::string& message) {
  std::fprintf(stderr, "usage error: %s\n", message.c_str());
  return 2;
}

// Range checks for numeric flags that are forwarded into CHECK-guarded
// constructors (LinkFaultModel, the schedule generators): an out-of-range
// value must surface as a usage error, not a CHECK abort. Absent flags
// fall back to in-range defaults, so commands without a given flag pass
// through untouched. Returns 0 when every value is legal.
int ValidateNumericRanges(const Flags& flags) {
  const double theta = flags.GetDouble("theta", 0.5);
  if (theta < 0.0 || theta > 1.0) {
    return UsageError("--theta must be in [0, 1]");
  }
  const double drop = flags.GetDouble("drop", 0.0);
  if (drop < 0.0 || drop >= 1.0) {
    return UsageError("--drop must be in [0, 1)");
  }
  const double dup = flags.GetDouble("dup", 0.0);
  if (dup < 0.0 || dup > 1.0) {
    return UsageError("--dup must be in [0, 1]");
  }
  if (flags.GetDouble("jitter", 0.0) < 0.0) {
    return UsageError("--jitter must be >= 0");
  }
  if (flags.GetInt("requests", 1) <= 0) {
    return UsageError("--requests must be positive");
  }
  return 0;
}

int RunSimulate(const Flags& flags) {
  if (const int rc = ValidateNumericRanges(flags)) return rc;
  auto policy = CreatePolicyFromString(flags.GetString("policy", "sw:9"));
  if (!policy.ok()) return UsageError(policy.status().ToString());
  const CostModel model = ModelFromFlags(flags);
  const double theta = flags.GetDouble("theta", 0.5);

  Schedule schedule;
  if (flags.Has("trace-in")) {
    auto loaded = LoadScheduleFromFile(flags.GetString("trace-in", ""));
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    schedule = std::move(*loaded);
  } else {
    Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 42)));
    schedule = GenerateBernoulliSchedule(flags.GetInt("requests", 100000),
                                         theta, &rng);
  }

  const CostBreakdown b =
      SimulateSchedule(policy->get(), schedule, model);
  const ScheduleStats stats = ComputeStats(schedule);
  std::printf("policy            %s\n", (*policy)->name().c_str());
  std::printf("model             %s\n", model.name().c_str());
  std::printf("workload          %s\n", stats.ToString().c_str());
  std::printf("total cost        %.3f\n", b.total_cost);
  std::printf("cost/request      %.6f\n", b.MeanCostPerRequest());
  std::printf("connections       %lld\n",
              static_cast<long long>(b.connections));
  std::printf("data messages     %lld\n",
              static_cast<long long>(b.data_messages));
  std::printf("control messages  %lld\n",
              static_cast<long long>(b.control_messages));
  std::printf("allocations       %lld\n",
              static_cast<long long>(b.allocations));
  std::printf("deallocations     %lld\n",
              static_cast<long long>(b.deallocations));

  const auto spec = ParsePolicySpec(flags.GetString("policy", "sw:9"));
  const auto expected = ExpectedCost(*spec, model, stats.theta_hat);
  if (expected.ok()) {
    std::printf("closed-form EXP at theta_hat=%.4f: %.6f\n", stats.theta_hat,
                *expected);
  }
  return 0;
}

int RunExpected(const Flags& flags) {
  if (const int rc = ValidateNumericRanges(flags)) return rc;
  const auto spec = ParsePolicySpec(flags.GetString("policy", "sw:9"));
  if (!spec.ok()) return UsageError(spec.status().ToString());
  const CostModel model = ModelFromFlags(flags);

  std::printf("policy  %s   model  %s\n\n", spec->ToString().c_str(),
              model.name().c_str());
  std::printf("%8s  %12s\n", "theta", "EXP(theta)");
  if (flags.Has("theta")) {
    const double theta = flags.GetDouble("theta", 0.5);
    const auto exp = ExpectedCost(*spec, model, theta);
    if (!exp.ok()) return Fail(exp.status().ToString());
    std::printf("%8.4f  %12.6f\n", theta, *exp);
  } else {
    for (double theta = 0.0; theta <= 1.0001; theta += 0.1) {
      const auto exp = ExpectedCost(*spec, model, theta);
      if (!exp.ok()) return Fail(exp.status().ToString());
      std::printf("%8.2f  %12.6f\n", theta, *exp);
    }
  }
  const auto avg = AverageExpectedCost(*spec, model);
  if (avg.ok()) std::printf("\nAVG (theta ~ U[0,1]): %.6f\n", *avg);
  const auto factor = ClaimedCompetitiveFactor(*spec, model);
  if (factor.ok()) {
    std::printf("competitive factor:   %.3f\n", *factor);
  } else {
    std::printf("competitive factor:   %s\n",
                factor.status().message().c_str());
  }
  return 0;
}

// The causal `analyze` subcommand: run the MC/SC protocol under tracing,
// feed the merged trace through the offline analyzer and print the report
// (docs/OBSERVABILITY.md "Analysis"). Exit 1 only on error-severity
// findings — warnings (storms, truncation) and infos still exit 0.
int RunAnalyze(const Flags& flags) {
  if (const int rc = ValidateNumericRanges(flags)) return rc;
  if (!obs::kTracingCompiled) {
    return Fail(
        "tracing is compiled out; rebuild with -DMOBREP_TRACING=ON to use "
        "the analyze command");
  }
  const auto spec = ParsePolicySpec(flags.GetString("policy", "sw:3"));
  if (!spec.ok()) return UsageError(spec.status().ToString());
  const int64_t requests = flags.GetInt("requests", 200);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  Rng rng(seed);
  const Schedule schedule = GenerateBernoulliSchedule(
      requests, flags.GetDouble("theta", 0.5), &rng);

  ProtocolConfig config;
  config.spec = *spec;
  config.link_latency = flags.GetDouble("latency", 0.001);
  config.fault.drop_probability = flags.GetDouble("drop", 0.0);
  config.fault.duplicate_probability = flags.GetDouble("dup", 0.0);
  config.fault.max_jitter = flags.GetDouble("jitter", 0.0);
  config.fault.force_reliable = flags.GetInt("reliable", 0) != 0;
  config.fault.seed = seed;

  // Default ring size keeps the full run: each request costs a handful of
  // channel events, so 128/request plus fixed headroom never wraps. An
  // explicit --ring below that lets the user study truncated-trace
  // behaviour on purpose.
  obs::TraceRecorder* recorder = obs::TraceRecorder::Global();
  recorder->Clear();
  recorder->SetCapacityPerThread(static_cast<size_t>(
      flags.GetInt("ring", requests * 128 + 8192)));
  obs::TraceRecorder::SetRuntimeEnabled(true);
  ProtocolSimulation sim(config);
  sim.Run(schedule);
  obs::TraceRecorder::SetRuntimeEnabled(false);
  const std::vector<obs::TraceEvent> events = recorder->MergedEvents();

  obs::analysis::AnalyzerOptions options;
  options.audit.recorder_dropped = recorder->dropped();
  options.audit.retransmit_storm_threshold =
      static_cast<int>(flags.GetInt("storm-threshold", 8));
  recorder->Clear();
  const obs::analysis::AnalysisReport report =
      obs::analysis::AnalyzeTrace(events, options);

  if (flags.GetInt("json", 0) != 0) {
    std::printf("%s\n", report.ToJson().c_str());
  } else {
    std::printf("%s", report.ToText().c_str());
  }
  if (flags.Has("perfetto-out")) {
    const std::string path = flags.GetString("perfetto-out", "");
    const std::string annotated =
        obs::analysis::ExportAnnotatedChromeTrace(events, report);
    if (!obs::WriteFileOrWarn(path, annotated)) return 1;
    std::fprintf(stderr,
                 "wrote annotated Chrome trace to %s (load in Perfetto)\n",
                 path.c_str());
  }
  return report.clean() ? 0 : 1;
}

int RunOffline(const Flags& flags) {
  if (!flags.Has("trace-in")) return UsageError("offline requires --trace-in");
  auto loaded = LoadScheduleFromFile(flags.GetString("trace-in", ""));
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  const CostModel model = ModelFromFlags(flags);
  const OfflineSolution solution = SolveOfflineOptimal(*loaded, model);
  int64_t holds = 0;
  for (const bool c : solution.copy_during) holds += c ? 1 : 0;
  std::printf("requests            %zu\n", loaded->size());
  std::printf("offline optimal     %.3f (%s)\n", solution.cost,
              model.name().c_str());
  std::printf("requests with copy  %lld\n", static_cast<long long>(holds));
  return 0;
}

int RunGenerate(const Flags& flags) {
  if (const int rc = ValidateNumericRanges(flags)) return rc;
  if (!flags.Has("trace-out")) {
    return UsageError("generate requires --trace-out");
  }
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 42)));
  Schedule schedule;
  if (flags.Has("periods")) {
    schedule = GeneratePeriodWorkload(flags.GetInt("periods", 10),
                                      flags.GetInt("period-length", 1000),
                                      &rng);
  } else {
    schedule = GenerateBernoulliSchedule(flags.GetInt("requests", 100000),
                                         flags.GetDouble("theta", 0.5), &rng);
  }
  const std::string path = flags.GetString("trace-out", "");
  const Status saved = SaveScheduleToFile(path, schedule);
  if (!saved.ok()) return Fail(saved.ToString());
  std::printf("wrote %zu requests to %s\n", schedule.size(), path.c_str());
  std::printf("%s\n", ComputeStats(schedule).ToString().c_str());
  return 0;
}

int RunProtocol(const Flags& flags) {
  if (const int rc = ValidateNumericRanges(flags)) return rc;
  const auto spec = ParsePolicySpec(flags.GetString("policy", "sw:9"));
  if (!spec.ok()) return UsageError(spec.status().ToString());
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 42)));
  const Schedule schedule = GenerateBernoulliSchedule(
      flags.GetInt("requests", 10000), flags.GetDouble("theta", 0.5), &rng);

  ProtocolConfig config;
  config.spec = *spec;
  config.link_latency = flags.GetDouble("latency", 0.001);
  ProtocolSimulation sim(config);
  sim.Run(schedule);
  const ProtocolMetrics m = sim.metrics();
  std::printf("policy            %s\n", spec->ToString().c_str());
  std::printf("requests          %lld\n", static_cast<long long>(m.requests));
  std::printf("local reads       %lld\n",
              static_cast<long long>(m.local_reads));
  std::printf("remote reads      %lld\n",
              static_cast<long long>(m.remote_reads));
  std::printf("propagations      %lld\n",
              static_cast<long long>(m.propagations));
  std::printf("invalidations     %lld\n",
              static_cast<long long>(m.invalidations));
  std::printf("subscriptions     %lld (+), %lld (-)\n",
              static_cast<long long>(m.allocations),
              static_cast<long long>(m.deallocations));
  std::printf("data messages     %lld\n",
              static_cast<long long>(m.data_messages));
  std::printf("control messages  %lld\n",
              static_cast<long long>(m.control_messages));
  std::printf("connection cost   %.0f\n",
              m.PriceUnder(CostModel::Connection()));
  std::printf("message cost      %.3f (omega=%.2f)\n",
              m.PriceUnder(CostModel::Message(flags.GetDouble("omega", 0.5))),
              flags.GetDouble("omega", 0.5));
  std::printf("simulated time    %.3f\n", sim.now());
  std::printf("MC state at end   %s\n",
              sim.mc_has_copy() ? "subscribed (two copies)"
                                : "on-demand (one copy)");
  return 0;
}

int RunAdvise(const Flags& flags) {
  if (const int rc = ValidateNumericRanges(flags)) return rc;
  AdvisorQuery query;
  query.model = ModelFromFlags(flags);
  if (flags.Has("theta")) query.theta = flags.GetDouble("theta", 0.5);
  if (flags.Has("max-factor")) {
    query.max_competitive_factor = flags.GetDouble("max-factor", 10.0);
  }
  query.max_parameter =
      static_cast<int>(flags.GetInt("max-parameter", 1001));
  const auto rec = RecommendPolicy(query);
  if (!rec.ok()) return Fail(rec.status().ToString());
  std::printf("recommended policy  %s\n", rec->spec.ToString().c_str());
  std::printf("predicted cost      %.6f per request\n", rec->predicted_cost);
  if (std::isfinite(rec->competitive_factor)) {
    std::printf("worst case          within %.3fx of clairvoyant optimal\n",
                rec->competitive_factor);
  } else {
    std::printf("worst case          unbounded (static allocation)\n");
  }
  std::printf("rationale           %s\n", rec->rationale.c_str());
  return 0;
}

int RunCompare(const Flags& flags) {
  if (const int rc = ValidateNumericRanges(flags)) return rc;
  const std::string list = flags.GetString("policies", "st1,st2,sw1,sw:9");
  const CostModel model = ModelFromFlags(flags);
  const double theta = flags.GetDouble("theta", 0.5);
  const int64_t requests = flags.GetInt("requests", 100000);
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 42)));
  const Schedule schedule = GenerateBernoulliSchedule(requests, theta, &rng);

  std::printf("%-8s %12s %12s %12s %12s\n", "policy", "sim cost/req",
              "closed form", "AVG", "factor");
  for (const std::string& name : StrSplit(list, ',')) {
    auto policy = CreatePolicyFromString(name);
    if (!policy.ok()) return UsageError(policy.status().ToString());
    const CostBreakdown b = SimulateSchedule(policy->get(), schedule, model);
    const auto spec = ParsePolicySpec(name);
    const auto exp = ExpectedCost(*spec, model, theta);
    const auto avg = AverageExpectedCost(*spec, model);
    const auto factor = ClaimedCompetitiveFactor(*spec, model);
    std::printf("%-8s %12.6f %12s %12s %12s\n",
                (*policy)->name().c_str(), b.MeanCostPerRequest(),
                exp.ok() ? StrFormat("%.6f", *exp).c_str() : "-",
                avg.ok() ? StrFormat("%.6f", *avg).c_str() : "-",
                factor.ok() ? StrFormat("%.3f", *factor).c_str() : "inf");
  }
  return 0;
}

int RunTrace(const Flags& flags) {
  if (const int rc = ValidateNumericRanges(flags)) return rc;
  if (!obs::kTracingCompiled) {
    return Fail(
        "tracing is compiled out; rebuild with -DMOBREP_TRACING=ON to use "
        "the trace command");
  }
  auto policy = CreatePolicyFromString(flags.GetString("policy", "sw:3"));
  if (!policy.ok()) return UsageError(policy.status().ToString());
  const CostModel model = ModelFromFlags(flags);

  Schedule schedule;
  if (flags.Has("trace-in")) {
    auto loaded = LoadScheduleFromFile(flags.GetString("trace-in", ""));
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    schedule = std::move(*loaded);
  } else {
    Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 42)));
    schedule = GenerateBernoulliSchedule(flags.GetInt("requests", 50),
                                         flags.GetDouble("theta", 0.5), &rng);
  }

  // Size the ring so an audit replay never wraps: one decision per request
  // plus headroom for any protocol events the policy's actions trigger.
  obs::TraceRecorder* recorder = obs::TraceRecorder::Global();
  recorder->Clear();
  recorder->SetCapacityPerThread(
      static_cast<size_t>(schedule.size()) * 4 + 1024);
  obs::TraceRecorder::SetRuntimeEnabled(true);
  const CostBreakdown b = SimulateSchedule(policy->get(), schedule, model);
  obs::TraceRecorder::SetRuntimeEnabled(false);

  const std::vector<obs::TraceEvent> events = recorder->MergedEvents();
  std::printf("policy            %s\n", (*policy)->name().c_str());
  std::printf("model             %s\n", model.name().c_str());
  std::printf("requests          %zu\n", schedule.size());
  std::printf("total cost        %.3f\n", b.total_cost);
  std::printf("trace events      %zu (%lld dropped)\n\n", events.size(),
              static_cast<long long>(recorder->dropped()));
  std::printf("%s", obs::ExportAuditLog(events).c_str());

  if (flags.Has("chrome-out")) {
    const std::string path = flags.GetString("chrome-out", "");
    if (!obs::WriteFileOrWarn(path, obs::ExportChromeTrace(events))) {
      return 1;
    }
    std::fprintf(stderr, "wrote Chrome trace to %s (load in Perfetto)\n",
                 path.c_str());
  }
  return 0;
}

int RunCrash(const Flags& flags) {
  if (const int rc = ValidateNumericRanges(flags)) return rc;
  const auto spec = ParsePolicySpec(flags.GetString("policy", "sw:3"));
  if (!spec.ok()) return UsageError(spec.status().ToString());

  CrashMatrixOptions options;
  options.sim.spec = *spec;
  const std::string dir = flags.GetString("wal-dir", "/tmp");
  options.sim.mc_wal_path = dir + "/mobrep_crash_mc.log";
  options.sim.sc_wal_path = dir + "/mobrep_crash_sc.log";
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 42)));
  options.schedule = GenerateBernoulliSchedule(
      flags.GetInt("requests", 12), flags.GetDouble("theta", 0.5), &rng);

  const auto report = ExploreCrashPoints(options);
  if (!report.ok()) return Fail(report.status().ToString());
  std::remove(options.sim.mc_wal_path.c_str());
  std::remove(options.sim.sc_wal_path.c_str());

  std::printf("policy            %s\n", spec->ToString().c_str());
  std::printf("requests          %zu\n", options.schedule.size());
  std::printf("crash points      %lld\n",
              static_cast<long long>(report->crash_points));
  std::printf("armed runs        %lld\n", static_cast<long long>(report->runs));
  std::printf("recoveries        %lld\n",
              static_cast<long long>(report->recoveries));
  std::printf("resyncs served    %lld\n",
              static_cast<long long>(report->resyncs));
  std::printf("window re-grants  %lld\n",
              static_cast<long long>(report->regrants));
  std::printf("re-driven reads   %lld\n",
              static_cast<long long>(report->reissued_reads));
  std::printf("violations        %lld\n",
              static_cast<long long>(report->violations));
  if (flags.GetInt("verbose", 0) != 0) {
    std::printf("\ncrash points explored:\n");
    for (size_t i = 0; i < report->points.size(); ++i) {
      std::printf("  %4zu  %s  %s\n", i,
                  report->points[i].node == CrashNode::kMobileClient ? "MC"
                                                                     : "SC",
                  report->points[i].site.c_str());
    }
  }
  for (const CrashRunFailure& failure : report->failures) {
    std::printf("FAILED point %d (%s %s): %s\n", failure.point,
                failure.node == CrashNode::kMobileClient ? "MC" : "SC",
                failure.site.c_str(), failure.message.c_str());
  }
  std::printf("verdict           %s\n",
              report->clean() ? "all crash points recover"
                              : "invariant violations found");
  return report->clean() ? 0 : 1;
}

int RunPartition(const Flags& flags) {
  if (const int rc = ValidateNumericRanges(flags)) return rc;
  const auto spec = ParsePolicySpec(flags.GetString("policy", "st2"));
  if (!spec.ok()) return UsageError(spec.status().ToString());

  PartitionMatrixOptions options;
  options.sim.spec = *spec;
  options.sim.lease.term =
      flags.GetDouble("term", options.sim.lease.term);
  options.sim.lease.grace =
      flags.GetDouble("grace", options.sim.lease.grace);
  options.sim.detector.timeout =
      flags.GetDouble("detector-timeout", options.sim.detector.timeout);
  options.sim.fault.drop_probability = flags.GetDouble("drop", 0.0);
  options.seeds = {static_cast<uint64_t>(flags.GetInt("seed", 42))};
  if (flags.Has("shape")) {
    PartitionShape shape;
    if (!ParsePartitionShape(flags.GetString("shape", ""), &shape)) {
      return UsageError("unknown --shape (symmetric | uplink | downlink)");
    }
    options.shapes = {shape};
  }
  if (flags.Has("start")) {
    options.starts = {flags.GetDouble("start", 0.35)};
  }
  if (flags.Has("duration")) {
    const std::string text = flags.GetString("duration", "");
    options.durations = {text == "never" ? -1.0
                                         : flags.GetDouble("duration", 0.4)};
  }

  const PartitionMatrixReport report = ExplorePartitions(options);
  std::printf("policy            %s\n", spec->ToString().c_str());
  std::printf("lease             term %.4g + grace %.4g, detector timeout "
              "%.4g\n",
              options.sim.lease.term, options.sim.lease.grace,
              options.sim.detector.timeout);
  std::printf("matrix            %zu shape(s) x %zu duration(s) x %zu "
              "start(s)\n",
              options.shapes.size(), options.durations.size(),
              options.starts.size());
  std::printf("runs              %lld\n", static_cast<long long>(report.runs));
  std::printf("reclamations      %lld\n",
              static_cast<long long>(report.reclaims));
  std::printf("re-grants         %lld\n",
              static_cast<long long>(report.regrants));
  std::printf("revocations       %lld\n",
              static_cast<long long>(report.revocations));
  std::printf("conflict reports  %lld\n",
              static_cast<long long>(report.conflicts));
  std::printf("degraded probes   %lld (max staleness %.4g)\n",
              static_cast<long long>(report.degraded_probes),
              report.max_staleness);
  std::printf("forwarded reads   %lld\n",
              static_cast<long long>(report.degraded_remote_reads));
  std::printf("abandoned frames  %lld\n",
              static_cast<long long>(report.abandoned_frames));
  std::printf("violations        %lld\n",
              static_cast<long long>(report.violations));
  if (flags.GetInt("verbose", 0) != 0) {
    std::printf("\n%s\n", report.Summary().c_str());
  }
  for (const PartitionRunFailure& failure : report.failures) {
    std::printf("FAILED %s start %.4g %s seed %llu: %s\n",
                PartitionShapeName(failure.shape), failure.start,
                failure.duration < 0.0
                    ? "never-heal"
                    : StrFormat("duration %.4g", failure.duration).c_str(),
                static_cast<unsigned long long>(failure.seed),
                failure.message.c_str());
  }
  std::printf("verdict           %s\n",
              report.clean() ? "all partition cells hold the invariants"
                             : "invariant violations found");
  return report.clean() ? 0 : 1;
}

}  // namespace

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::printf("%s", GlobalUsage().c_str());
    return 0;
  }
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    std::printf("%s", GlobalUsage().c_str());
    return 0;
  }
  const CommandSpec* spec = FindCommand(command);
  if (spec == nullptr) {
    std::fprintf(stderr, "usage error: unknown command '%s'\n\n%s",
                 command.c_str(), GlobalUsage().c_str());
    return 2;
  }
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", CommandHelp(*spec).c_str());
      return 0;
    }
  }
  const Flags flags(argc, argv, 2);
  if (!flags.dangling().empty()) {
    return UsageError(StrFormat("flag --%s expects a value (see mobrep_cli "
                                "%s --help)",
                                flags.dangling().c_str(), spec->name));
  }
  for (const std::string& key : flags.keys()) {
    if (!FlagAllowed(*spec, key)) {
      return UsageError(StrFormat("unknown flag --%s for '%s' (see "
                                  "mobrep_cli %s --help)",
                                  key.c_str(), spec->name, spec->name));
    }
  }
  if (command == "simulate") return RunSimulate(flags);
  if (command == "expected") return RunExpected(flags);
  if (command == "analyze") return RunAnalyze(flags);
  if (command == "offline") return RunOffline(flags);
  if (command == "generate") return RunGenerate(flags);
  if (command == "protocol") return RunProtocol(flags);
  if (command == "advise") return RunAdvise(flags);
  if (command == "compare") return RunCompare(flags);
  if (command == "trace") return RunTrace(flags);
  if (command == "crash") return RunCrash(flags);
  return RunPartition(flags);
}

}  // namespace mobrep::cli
