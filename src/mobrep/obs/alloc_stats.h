#ifndef MOBREP_OBS_ALLOC_STATS_H_
#define MOBREP_OBS_ALLOC_STATS_H_

#include <cstdint>

namespace mobrep::obs {

class MetricsRegistry;

// Allocation accounting for the protocol-plane hot path (DESIGN.md §11).
//
// The event queue, message pool and window small-vector each record how often
// they stayed on their fast path (inline capture, pooled slot, inline window)
// versus fell back to the heap. Counters are plain thread-local int64s — a
// bump is a single non-atomic increment, cheap enough to leave on in release
// builds — and are aggregated across threads on demand.
//
// Like the trace rings, a thread's counter block is registered globally on
// first use and kept alive after the thread exits so late aggregation never
// reads freed memory. Aggregated values are published as `mobrep_alloc_*`
// gauges, which land in the "metrics" member of BENCH_*.json — excluded from
// determinism diffs, since per-thread work division shifts which counter a
// given increment lands in (totals are deterministic; the split is not).
struct AllocCounters {
  // Events whose callback fit the EventQueue inline buffer.
  int64_t event_inline = 0;
  // Events whose callback spilled to a heap allocation.
  int64_t event_heap = 0;
  // Message-slot acquisitions served from the pool freelist (reuse).
  int64_t msg_reuses = 0;
  // Message-slot acquisitions that grew a new slab.
  int64_t msg_slab_allocs = 0;
  // Message allocations taken on the legacy (pooling-disabled) heap path.
  int64_t msg_legacy_allocs = 0;
  // Piggybacked windows that outgrew the inline buffer.
  int64_t window_spills = 0;

  AllocCounters& operator+=(const AllocCounters& o) {
    event_inline += o.event_inline;
    event_heap += o.event_heap;
    msg_reuses += o.msg_reuses;
    msg_slab_allocs += o.msg_slab_allocs;
    msg_legacy_allocs += o.msg_legacy_allocs;
    window_spills += o.window_spills;
    return *this;
  }
};

// This thread's counter block. The first call on a thread registers the block
// in the global aggregation list. Cache the pointer in hot objects.
AllocCounters& LocalAllocCounters();

// Sum of every thread's counters (including exited threads).
AllocCounters AggregateAllocCounters();

// Zeroes every registered block. Only safe when no other thread is actively
// incrementing (benches call it between phases, after joining workers).
void ResetAllocCounters();

// Publishes the aggregate as `mobrep_alloc_*` gauges on `registry`.
void PublishAllocMetrics(MetricsRegistry* registry);

}  // namespace mobrep::obs

#endif  // MOBREP_OBS_ALLOC_STATS_H_
