#ifndef MOBREP_OBS_ANALYSIS_CAUSAL_GRAPH_H_
#define MOBREP_OBS_ANALYSIS_CAUSAL_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mobrep/obs/trace.h"

namespace mobrep::obs::analysis {

// Offline happens-before reconstruction over a merged deterministic trace
// (docs/OBSERVABILITY.md "Analysis").
//
// The unit of reconstruction is the *conversation*: one frame's life on one
// channel direction — its send, its retransmissions, its channel-level
// deliveries and its injected drops, ending in a terminal outcome. Matching
// is purely channel-level: kMessageRecv is emitted by the channel when the
// frame arrives at the receiving node, before the ARQ dedups or fences it,
// so the balance equations hold independently of ARQ policy:
//
//   attempts  = sends + retransmits
//   attempts  = deliveries + drops - injected duplicates
//
// Conversations are keyed by (scope, direction, space, epoch, link seq) —
// the direction is the channel name the frames traveled on (both the send
// and the recv side of a channel emit under the channel's own label), the
// epoch is the sender incarnation packed into the payload (0 outside the
// chaos harness) and the space separates the three link-seq numbering
// domains (data/control frames, acks keyed by the seq they ack, and
// heartbeat probes, which own a private sequence space). Unnumbered frames
// (plain channels without an ARQ assign no seq) are matched FIFO per
// (scope, direction, message type), which is exact because plain channels
// are loss-free and deliver in send order.
//
// Keys never involve key_id: intern order is thread-count-dependent and
// must not leak into analysis results.

enum class ConversationSpace : uint8_t { kData = 0, kAck, kHeartbeat };

const char* ConversationSpaceName(ConversationSpace space);

enum class ConversationOutcome : uint8_t {
  kDelivered = 0,       // at least one channel-level delivery
  kAbandoned,           // ARQ gave the frame up (kArqAbandon observed)
  kAllAttemptsDropped,  // every attempt met a kMessageDrop; no delivery
  kInFlight,            // trace ended before a terminal outcome
};

const char* ConversationOutcomeName(ConversationOutcome outcome);

struct Conversation {
  int64_t scope = 0;
  std::string direction;  // channel name the frames traveled on
  ConversationSpace space = ConversationSpace::kData;
  int64_t epoch = 0;      // sender incarnation (0 outside chaos)
  uint64_t link_seq = 0;  // 0 for unnumbered (plain-channel) traffic
  int64_t message_type = -1;  // MessageType integer of the first attempt

  int sends = 0;
  int retransmits = 0;
  int deliveries = 0;
  int drops = 0;
  int outage_drops = 0;  // subset of drops
  bool abandoned = false;
  bool abandoned_for_budget = false;

  double first_send_ts = 0.0;
  double last_attempt_ts = 0.0;
  double first_delivery_ts = 0.0;
  // Timestamp of the last attempt at or before the first delivery — the
  // attempt that actually reached the peer; transit time is measured from
  // here, retransmission stall is everything before it.
  double delivering_attempt_ts = 0.0;

  // Trace span anchors: (scope, seq) of the first and last event folded
  // into this conversation — the exact span an anomaly finding points at.
  uint64_t first_trace_seq = 0;
  uint64_t last_trace_seq = 0;

  ConversationOutcome outcome = ConversationOutcome::kInFlight;

  int attempts() const { return sends + retransmits; }
  // Channel arrivals beyond attempted copies: injected duplicates.
  int surplus_deliveries() const {
    const int expected = attempts() - drops;
    return deliveries > expected ? deliveries - (expected > 0 ? expected : 0)
                                 : 0;
  }
};

// Per-scope completeness: scope sequence numbers are assigned contiguously
// from 0 by TraceScope, so any gap means the ring dropped events.
struct ScopeStats {
  int64_t scope = 0;
  int64_t observed = 0;
  uint64_t max_seq = 0;
  int64_t missing() const {
    const int64_t expected = static_cast<int64_t>(max_seq) + 1;
    return observed < expected ? expected - observed : 0;
  }
};

struct CausalGraph {
  // Sorted by (scope, direction, space, epoch, link seq, first trace seq):
  // deterministic at any thread count.
  std::vector<Conversation> conversations;
  std::vector<ScopeStats> scopes;  // sorted by scope

  int64_t total_events = 0;
  int64_t sends = 0;
  int64_t retransmits = 0;
  int64_t deliveries = 0;
  int64_t drops = 0;
  int64_t outage_drops = 0;
  int64_t acks_sent = 0;
  int64_t heartbeats_sent = 0;
  int64_t abandons = 0;
  int64_t arq_timeouts = 0;
  int64_t arq_duplicates_dropped = 0;
  int64_t fenced_frames = 0;
  int64_t lease_reclaims = 0;
  int64_t lease_revokes = 0;
  int64_t lease_grants = 0;
  int64_t degraded_reads = 0;
  int64_t resync_initiated = 0;
  int64_t resync_resolved = 0;
};

// Reconstructs the conversation graph from a trace. The input may be any
// permutation of a merged stream; it is re-sorted by (scope, seq) first.
CausalGraph BuildCausalGraph(std::vector<TraceEvent> events);

// "MC->SC" -> "SC->MC", preserving any suffix after the right endpoint
// ("MC->SC (shared)" -> "SC->MC (shared)"). Returns the input unchanged
// when it has no "->".
std::string ReverseDirection(const std::string& direction);

}  // namespace mobrep::obs::analysis

#endif  // MOBREP_OBS_ANALYSIS_CAUSAL_GRAPH_H_
