#include "mobrep/obs/analysis/latency_anatomy.h"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>
#include <tuple>

#include "mobrep/common/strings.h"
#include "mobrep/obs/trace_kinds.h"

namespace mobrep::obs::analysis {
namespace {

double QuantileFromSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

struct NamedSeries {
  const char* name;
  const std::vector<double>* samples;
};

std::vector<NamedSeries> AllSeries(const LatencyAnatomy& anatomy) {
  return {{"transit", &anatomy.transit},
          {"retrans_stall", &anatomy.retrans_stall},
          {"ack_wait", &anatomy.ack_wait},
          {"turnaround", &anatomy.turnaround},
          {"request_rtt", &anatomy.request_rtt},
          {"lease_wait", &anatomy.lease_wait},
          {"resync_detour", &anatomy.resync_detour}};
}

// FIFO pairing of cause conversations with effect conversations: the i-th
// delivered cause (in arrival order) pairs with the i-th effect sent at or
// after that arrival (in send order). Holds for the single-threaded event
// loops here because the server issues effects in cause-arrival order.
void PairChains(const CausalGraph& graph, int64_t cause_type,
                int64_t effect_type, std::vector<std::pair<int, int>>* pairs,
                std::vector<double>* gap, std::vector<double>* end_to_end) {
  // (scope, cause direction) -> conversation indices.
  std::map<std::tuple<int64_t, std::string>, std::vector<int>> causes;
  std::map<std::tuple<int64_t, std::string>, std::vector<int>> effects;
  for (int i = 0; i < static_cast<int>(graph.conversations.size()); ++i) {
    const Conversation& conv = graph.conversations[i];
    if (conv.space != ConversationSpace::kData) continue;
    if (conv.message_type == cause_type &&
        conv.outcome == ConversationOutcome::kDelivered) {
      causes[{conv.scope, conv.direction}].push_back(i);
    } else if (conv.message_type == effect_type && conv.attempts() > 0) {
      effects[{conv.scope, ReverseDirection(conv.direction)}].push_back(i);
    }
  }
  for (auto& [key, cause_list] : causes) {
    auto it = effects.find(key);
    if (it == effects.end()) continue;
    std::vector<int>& effect_list = it->second;
    std::sort(cause_list.begin(), cause_list.end(), [&](int a, int b) {
      return graph.conversations[a].first_delivery_ts <
             graph.conversations[b].first_delivery_ts;
    });
    std::sort(effect_list.begin(), effect_list.end(), [&](int a, int b) {
      return graph.conversations[a].first_send_ts <
             graph.conversations[b].first_send_ts;
    });
    size_t next_effect = 0;
    for (const int cause : cause_list) {
      const Conversation& req = graph.conversations[cause];
      while (next_effect < effect_list.size() &&
             graph.conversations[effect_list[next_effect]].first_send_ts <
                 req.first_delivery_ts) {
        ++next_effect;  // effect predates this cause: spoken for already
      }
      if (next_effect >= effect_list.size()) break;
      const int effect = effect_list[next_effect];
      ++next_effect;
      const Conversation& resp = graph.conversations[effect];
      pairs->emplace_back(cause, effect);
      if (gap != nullptr) {
        gap->push_back(resp.first_send_ts - req.first_delivery_ts);
      }
      if (end_to_end != nullptr &&
          resp.outcome == ConversationOutcome::kDelivered) {
        end_to_end->push_back(resp.first_delivery_ts - req.first_send_ts);
      }
    }
  }
}

}  // namespace

SeriesSummary Summarize(const std::vector<double>& samples) {
  SeriesSummary summary;
  summary.n = static_cast<int64_t>(samples.size());
  if (samples.empty()) return summary;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (const double s : sorted) sum += s;
  summary.mean = sum / static_cast<double>(sorted.size());
  summary.p50 = QuantileFromSorted(sorted, 0.50);
  summary.p90 = QuantileFromSorted(sorted, 0.90);
  summary.p99 = QuantileFromSorted(sorted, 0.99);
  summary.max = sorted.back();
  return summary;
}

LatencyAnatomy ComputeLatencyAnatomy(const CausalGraph& graph,
                                     const std::vector<TraceEvent>& events) {
  LatencyAnatomy anatomy;

  // Per-conversation components.
  for (const Conversation& conv : graph.conversations) {
    if (conv.outcome != ConversationOutcome::kDelivered) continue;
    if (conv.space == ConversationSpace::kHeartbeat) continue;
    if (conv.attempts() == 0) continue;
    anatomy.transit.push_back(conv.first_delivery_ts -
                              conv.delivering_attempt_ts);
    if (conv.space == ConversationSpace::kData && conv.retransmits > 0) {
      anatomy.retrans_stall.push_back(conv.delivering_attempt_ts -
                                      conv.first_send_ts);
    }
  }

  // Ack wait: data conversation -> the ack conversation whose acked seq
  // matches, traveling the reverse direction. Epoch is deliberately not part
  // of the key (the ack carries the *receiver's* incarnation); acks are
  // consumed in order per (scope, direction, seq).
  std::map<std::tuple<int64_t, std::string, uint64_t>, std::deque<int>> acks;
  for (int i = 0; i < static_cast<int>(graph.conversations.size()); ++i) {
    const Conversation& conv = graph.conversations[i];
    if (conv.space != ConversationSpace::kAck) continue;
    if (conv.outcome != ConversationOutcome::kDelivered) continue;
    acks[{conv.scope, conv.direction, conv.link_seq}].push_back(i);
  }
  for (const Conversation& conv : graph.conversations) {
    if (conv.space != ConversationSpace::kData || conv.link_seq == 0) continue;
    if (conv.attempts() == 0) continue;
    const auto it = acks.find(
        {conv.scope, ReverseDirection(conv.direction), conv.link_seq});
    if (it == acks.end() || it->second.empty()) continue;
    const Conversation& ack = graph.conversations[it->second.front()];
    it->second.pop_front();
    const double wait = ack.first_delivery_ts - conv.first_send_ts;
    if (wait >= 0.0) anatomy.ack_wait.push_back(wait);
  }

  // Request/response and resync chains.
  PairChains(graph, kTraceMsgReadRequest, kTraceMsgDataResponse,
             &anatomy.request_response_pairs, &anatomy.turnaround,
             &anatomy.request_rtt);
  std::vector<double> resync_gap;  // server-side resync turnaround (unused)
  PairChains(graph, kTraceMsgResyncRequest, kTraceMsgResyncResponse,
             &anatomy.resync_pairs, &resync_gap, &anatomy.resync_detour);

  // Lease wait: an ownership gap opens at a reclaim (SC takes over after
  // detector silence) or a revoke, and closes at the next regrant
  // (kLeaseGrant with a1 == 1) in the same scope.
  std::map<int64_t, std::deque<double>> open_gaps;
  for (const TraceEvent& event : events) {
    if (event.kind == TraceEventKind::kLeaseReclaim ||
        event.kind == TraceEventKind::kLeaseRevoke) {
      open_gaps[event.scope].push_back(event.ts);
    } else if (event.kind == TraceEventKind::kLeaseGrant && event.a1 == 1) {
      auto it = open_gaps.find(event.scope);
      if (it == open_gaps.end() || it->second.empty()) continue;
      const double opened = it->second.front();
      it->second.pop_front();
      if (event.ts >= opened) anatomy.lease_wait.push_back(event.ts - opened);
    }
  }

  return anatomy;
}

void PublishAnatomy(const LatencyAnatomy& anatomy, MetricsRegistry* registry) {
  if (registry == nullptr) return;
  // Sim-time-unit bounds wide enough for sub-latency transit up to
  // multi-outage stalls.
  const std::vector<double> bounds = {1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3,
                                      1e-2, 2e-2, 5e-2, 0.1,  0.2,  0.5,
                                      1.0,  2.0,  5.0,  10.0, 50.0};
  for (const NamedSeries& series : AllSeries(anatomy)) {
    Histogram* histogram = registry->GetHistogram(
        std::string("mobrep_analysis_") + series.name, bounds,
        "causal-analysis latency anatomy component", "simtime");
    for (const double sample : *series.samples) histogram->Record(sample);
  }
}

std::string AnatomyToText(const LatencyAnatomy& anatomy) {
  std::ostringstream out;
  bool any = false;
  for (const NamedSeries& series : AllSeries(anatomy)) {
    if (series.samples->empty()) continue;
    any = true;
    const SeriesSummary s = Summarize(*series.samples);
    out << StrFormat(
        "  %-14s n=%-6lld mean=%-10.6g p50=%-10.6g p90=%-10.6g "
        "p99=%-10.6g max=%.6g\n",
        series.name, static_cast<long long>(s.n), s.mean, s.p50, s.p90, s.p99,
        s.max);
  }
  if (!any) out << "  (no samples)\n";
  return out.str();
}

std::string AnatomyToJson(const LatencyAnatomy& anatomy) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const NamedSeries& series : AllSeries(anatomy)) {
    if (series.samples->empty()) continue;
    const SeriesSummary s = Summarize(*series.samples);
    out << (first ? "" : ", ")
        << StrFormat(
               "\"%s\": {\"n\": %lld, \"mean\": %.17g, \"p50\": %.17g, "
               "\"p90\": %.17g, \"p99\": %.17g, \"max\": %.17g}",
               series.name, static_cast<long long>(s.n), s.mean, s.p50, s.p90,
               s.p99, s.max);
    first = false;
  }
  out << "}";
  return out.str();
}

}  // namespace mobrep::obs::analysis
