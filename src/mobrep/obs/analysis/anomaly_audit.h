#ifndef MOBREP_OBS_ANALYSIS_ANOMALY_AUDIT_H_
#define MOBREP_OBS_ANALYSIS_ANOMALY_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mobrep/obs/analysis/causal_graph.h"
#include "mobrep/obs/trace.h"

namespace mobrep::obs::analysis {

// Anomaly audit over a reconstructed causal graph. Every finding names its
// class (the anomaly taxonomy in docs/OBSERVABILITY.md), a severity, and
// the exact trace span (scope + seq range) the evidence lives in, so a
// reader can jump from the report into the deterministic trace dump.
//
// Severity contract:
//   error   — causality is broken: a send the trace never resolves, or an
//             effect with no cause. A fault-free run must produce none
//             (asserted by harnesses and CI).
//   warning — the protocol survived but burned visible work: retransmit
//             storms, abandoned frames, lease churn, quiescence stalls,
//             truncated rings.
//   info    — expected consequences of injected faults (drops, duplicates,
//             lease reclaims), aggregated per site.

enum class Severity : uint8_t { kInfo = 0, kWarning, kError };

const char* SeverityName(Severity severity);

struct Finding {
  Severity severity = Severity::kInfo;
  std::string cls;     // stable class slug, e.g. "unmatched_send"
  std::string detail;  // human-readable evidence
  int64_t scope = 0;
  uint64_t seq_begin = 0;  // trace span (scope-local seq range)
  uint64_t seq_end = 0;
  double ts = 0.0;  // sim time of the anchor event
};

struct AuditConfig {
  // A conversation with at least this many retransmissions is a storm.
  int retransmit_storm_threshold = 8;
  // At least this many lease reclaim/revoke cycles in one scope is churn.
  int lease_churn_threshold = 3;
  // Non-empty when the driving harness diagnosed a quiescence stall
  // (protocol/diagnosis.cc's DescribeQuiescenceStall); folded into the
  // report as a warning so trace evidence and live diagnosis land together.
  std::string stall_context;
  // Events dropped by the recorder's rings (TraceRecorder::dropped());
  // nonzero degrades every absence-based claim the audit makes.
  int64_t recorder_dropped = 0;
};

// Deterministic: findings sorted by (scope, seq_begin, class, detail).
std::vector<Finding> RunAnomalyAudit(const CausalGraph& graph,
                                     const AuditConfig& config);

}  // namespace mobrep::obs::analysis

#endif  // MOBREP_OBS_ANALYSIS_ANOMALY_AUDIT_H_
