#include "mobrep/obs/analysis/causal_graph.h"

#include <algorithm>
#include <deque>
#include <map>
#include <tuple>
#include <utility>

#include "mobrep/obs/trace_kinds.h"

namespace mobrep::obs::analysis {
namespace {

ConversationSpace SpaceForMessageType(int64_t type) {
  if (type == kTraceMsgAck) return ConversationSpace::kAck;
  if (type == kTraceMsgHeartbeat) return ConversationSpace::kHeartbeat;
  return ConversationSpace::kData;
}

// Builder state: conversations accumulate in creation order; the key maps
// hold indices into that vector. Keyed lookup covers numbered (ARQ) frames;
// the FIFO queues cover unnumbered plain-channel frames.
struct Builder {
  std::vector<Conversation> conversations;
  // (scope, direction, space, epoch, link seq) -> conversation index.
  std::map<std::tuple<int64_t, std::string, int, int64_t, uint64_t>, size_t>
      keyed;
  // (scope, direction, message type) -> indices of unnumbered conversations
  // awaiting their delivery, in send order.
  std::map<std::tuple<int64_t, std::string, int64_t>, std::deque<size_t>>
      fifo_pending;

  size_t NewConversation(const TraceEvent& event, ConversationSpace space,
                         int64_t epoch, int64_t type) {
    Conversation conv;
    conv.scope = event.scope;
    conv.direction = event.label;
    conv.space = space;
    conv.epoch = epoch;
    conv.link_seq = static_cast<uint64_t>(event.a0);
    conv.message_type = type;
    conv.first_trace_seq = event.seq;
    conv.last_trace_seq = event.seq;
    conversations.push_back(std::move(conv));
    return conversations.size() - 1;
  }

  size_t FindOrCreateKeyed(const TraceEvent& event, ConversationSpace space,
                           int64_t epoch, int64_t type) {
    const auto key = std::make_tuple(
        event.scope, std::string(event.label), static_cast<int>(space), epoch,
        static_cast<uint64_t>(event.a0));
    const auto it = keyed.find(key);
    if (it != keyed.end()) return it->second;
    const size_t index = NewConversation(event, space, epoch, type);
    keyed.emplace(key, index);
    return index;
  }

  void Touch(size_t index, const TraceEvent& event) {
    conversations[index].last_trace_seq = event.seq;
  }
};

void RecordAttempt(Conversation* conv, const TraceEvent& event,
                   bool retransmit) {
  if (retransmit) {
    ++conv->retransmits;
  } else {
    ++conv->sends;
  }
  if (conv->attempts() == 1) conv->first_send_ts = event.ts;
  conv->last_attempt_ts = event.ts;
}

void RecordDelivery(Conversation* conv, const TraceEvent& event) {
  if (conv->deliveries == 0) {
    conv->first_delivery_ts = event.ts;
    // The attempt that reached the peer is the latest one not after the
    // arrival; last_attempt_ts tracks exactly that while deliveries == 0
    // (an attempt emitted after this arrival is handled below).
    conv->delivering_attempt_ts =
        conv->last_attempt_ts <= event.ts ? conv->last_attempt_ts
                                          : conv->first_send_ts;
  }
  ++conv->deliveries;
}

}  // namespace

const char* ConversationSpaceName(ConversationSpace space) {
  switch (space) {
    case ConversationSpace::kData:
      return "data";
    case ConversationSpace::kAck:
      return "ack";
    case ConversationSpace::kHeartbeat:
      return "heartbeat";
  }
  return "unknown";
}

const char* ConversationOutcomeName(ConversationOutcome outcome) {
  switch (outcome) {
    case ConversationOutcome::kDelivered:
      return "delivered";
    case ConversationOutcome::kAbandoned:
      return "abandoned";
    case ConversationOutcome::kAllAttemptsDropped:
      return "all_attempts_dropped";
    case ConversationOutcome::kInFlight:
      return "in_flight";
  }
  return "unknown";
}

std::string ReverseDirection(const std::string& direction) {
  const size_t arrow = direction.find("->");
  if (arrow == std::string::npos) return direction;
  const std::string left = direction.substr(0, arrow);
  std::string right = direction.substr(arrow + 2);
  std::string suffix;
  const size_t space = right.find(' ');
  if (space != std::string::npos) {
    suffix = right.substr(space);
    right = right.substr(0, space);
  }
  return right + "->" + left + suffix;
}

CausalGraph BuildCausalGraph(std::vector<TraceEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.scope != b.scope) return a.scope < b.scope;
                     return a.seq < b.seq;
                   });

  CausalGraph graph;
  graph.total_events = static_cast<int64_t>(events.size());
  Builder builder;
  std::map<int64_t, ScopeStats> scopes;

  for (const TraceEvent& event : events) {
    ScopeStats& stats = scopes[event.scope];
    stats.scope = event.scope;
    ++stats.observed;
    stats.max_seq = std::max(stats.max_seq, event.seq);

    switch (event.kind) {
      case TraceEventKind::kMessageSend: {
        ++graph.sends;
        const int64_t epoch = TraceEventEpoch(event);
        const uint64_t seq = static_cast<uint64_t>(event.a0);
        size_t index;
        if (seq == 0) {
          index = builder.NewConversation(event, ConversationSpace::kData,
                                          epoch, event.a1);
          builder
              .fifo_pending[std::make_tuple(
                  event.scope, std::string(event.label), event.a1)]
              .push_back(index);
        } else {
          index = builder.FindOrCreateKeyed(event, ConversationSpace::kData,
                                            epoch, event.a1);
        }
        RecordAttempt(&builder.conversations[index], event,
                      /*retransmit=*/false);
        builder.Touch(index, event);
        break;
      }
      case TraceEventKind::kRetransmit: {
        ++graph.retransmits;
        const size_t index = builder.FindOrCreateKeyed(
            event, ConversationSpace::kData, TraceEventEpoch(event), event.a1);
        RecordAttempt(&builder.conversations[index], event,
                      /*retransmit=*/true);
        builder.Touch(index, event);
        break;
      }
      case TraceEventKind::kAckSend: {
        ++graph.acks_sent;
        const size_t index = builder.FindOrCreateKeyed(
            event, ConversationSpace::kAck, TraceEventEpoch(event),
            kTraceMsgAck);
        RecordAttempt(&builder.conversations[index], event,
                      /*retransmit=*/false);
        builder.Touch(index, event);
        break;
      }
      case TraceEventKind::kHeartbeat: {
        ++graph.heartbeats_sent;
        const size_t index = builder.FindOrCreateKeyed(
            event, ConversationSpace::kHeartbeat, TraceEventEpoch(event),
            kTraceMsgHeartbeat);
        RecordAttempt(&builder.conversations[index], event,
                      /*retransmit=*/false);
        builder.Touch(index, event);
        break;
      }
      case TraceEventKind::kMessageRecv: {
        ++graph.deliveries;
        const ConversationSpace space = SpaceForMessageType(event.a1);
        const uint64_t seq = static_cast<uint64_t>(event.a0);
        size_t index;
        if (seq == 0) {
          auto& queue = builder.fifo_pending[std::make_tuple(
              event.scope, std::string(event.label), event.a1)];
          if (queue.empty()) {
            // Arrival with no matching send: surfaces as recv_without_send.
            index = builder.NewConversation(event, space,
                                            TraceEventEpoch(event), event.a1);
          } else {
            index = queue.front();
            queue.pop_front();
          }
        } else {
          index = builder.FindOrCreateKeyed(event, space,
                                            TraceEventEpoch(event), event.a1);
        }
        RecordDelivery(&builder.conversations[index], event);
        builder.Touch(index, event);
        break;
      }
      case TraceEventKind::kMessageDrop: {
        ++graph.drops;
        const bool in_outage = (event.a2 & 1) != 0;
        if (in_outage) ++graph.outage_drops;
        const ConversationSpace space = SpaceForMessageType(event.a1);
        const size_t index = builder.FindOrCreateKeyed(
            event, space, TraceEventEpoch(event), event.a1);
        Conversation* conv = &builder.conversations[index];
        ++conv->drops;
        if (in_outage) ++conv->outage_drops;
        builder.Touch(index, event);
        break;
      }
      case TraceEventKind::kArqAbandon: {
        ++graph.abandons;
        const size_t index = builder.FindOrCreateKeyed(
            event, ConversationSpace::kData, TraceEventEpoch(event), event.a1);
        Conversation* conv = &builder.conversations[index];
        conv->abandoned = true;
        if ((event.a2 & 1) != 0) conv->abandoned_for_budget = true;
        builder.Touch(index, event);
        break;
      }
      case TraceEventKind::kArqTimeout:
        ++graph.arq_timeouts;
        break;
      case TraceEventKind::kDuplicateDropped:
        ++graph.arq_duplicates_dropped;
        break;
      case TraceEventKind::kFencedFrame:
        ++graph.fenced_frames;
        break;
      case TraceEventKind::kLeaseReclaim:
        ++graph.lease_reclaims;
        break;
      case TraceEventKind::kLeaseRevoke:
        ++graph.lease_revokes;
        break;
      case TraceEventKind::kLeaseGrant:
        ++graph.lease_grants;
        break;
      case TraceEventKind::kDegradedRead:
        ++graph.degraded_reads;
        break;
      case TraceEventKind::kResync:
        if (event.a2 == 0) {
          ++graph.resync_initiated;
        } else {
          ++graph.resync_resolved;
        }
        break;
      default:
        break;
    }
  }

  // Terminal outcomes.
  for (Conversation& conv : builder.conversations) {
    if (conv.deliveries > 0) {
      conv.outcome = ConversationOutcome::kDelivered;
    } else if (conv.abandoned) {
      conv.outcome = ConversationOutcome::kAbandoned;
    } else if (conv.attempts() > 0 && conv.drops >= conv.attempts()) {
      conv.outcome = ConversationOutcome::kAllAttemptsDropped;
    } else {
      conv.outcome = ConversationOutcome::kInFlight;
    }
  }

  graph.conversations = std::move(builder.conversations);
  std::sort(graph.conversations.begin(), graph.conversations.end(),
            [](const Conversation& a, const Conversation& b) {
              return std::tie(a.scope, a.direction, a.space, a.epoch,
                              a.link_seq, a.first_trace_seq) <
                     std::tie(b.scope, b.direction, b.space, b.epoch,
                              b.link_seq, b.first_trace_seq);
            });
  graph.scopes.reserve(scopes.size());
  for (auto& [scope, stats] : scopes) graph.scopes.push_back(stats);
  return graph;
}

}  // namespace mobrep::obs::analysis
