#include "mobrep/obs/analysis/analyzer.h"

#include <map>
#include <sstream>

#include "mobrep/common/strings.h"
#include "mobrep/obs/trace_export.h"

namespace mobrep::obs::analysis {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

AnalysisReport AnalyzeTrace(const std::vector<TraceEvent>& events,
                            const AnalyzerOptions& options) {
  AnalysisReport report;
  report.graph = BuildCausalGraph(events);
  report.anatomy = ComputeLatencyAnatomy(report.graph, events);
  report.findings = RunAnomalyAudit(report.graph, options.audit);
  report.recorder_dropped = options.audit.recorder_dropped;

  for (const Conversation& conv : report.graph.conversations) {
    if (conv.space != ConversationSpace::kData) continue;
    ++report.data_conversations;
    switch (conv.outcome) {
      case ConversationOutcome::kDelivered:
        ++report.delivered;
        break;
      case ConversationOutcome::kAbandoned:
        ++report.abandoned;
        break;
      case ConversationOutcome::kAllAttemptsDropped:
        ++report.all_attempts_dropped;
        break;
      case ConversationOutcome::kInFlight:
        ++report.in_flight;
        break;
    }
  }
  const int64_t terminal =
      report.delivered + report.abandoned + report.all_attempts_dropped;
  report.match_rate =
      report.data_conversations > 0
          ? static_cast<double>(terminal) /
                static_cast<double>(report.data_conversations)
          : 1.0;

  for (const Finding& finding : report.findings) {
    switch (finding.severity) {
      case Severity::kError:
        ++report.errors;
        break;
      case Severity::kWarning:
        ++report.warnings;
        break;
      case Severity::kInfo:
        ++report.infos;
        break;
    }
  }

  if (options.registry != nullptr) {
    PublishAnatomy(report.anatomy, options.registry);
    options.registry
        ->GetCounter("mobrep_analysis_findings_error",
                     "error-severity causal-analysis findings")
        ->Increment(report.errors);
    options.registry
        ->GetCounter("mobrep_analysis_findings_warning",
                     "warning-severity causal-analysis findings")
        ->Increment(report.warnings);
    options.registry
        ->GetCounter("mobrep_analysis_findings_info",
                     "info-severity causal-analysis findings")
        ->Increment(report.infos);
    options.registry
        ->GetCounter("mobrep_analysis_conversations",
                     "conversations reconstructed by the causal analyzer")
        ->Increment(static_cast<int64_t>(report.graph.conversations.size()));
  }
  return report;
}

std::string AnalysisReport::ToText() const {
  std::ostringstream out;
  out << "== causal trace analysis ==\n";
  out << StrFormat("events: %lld",
                   static_cast<long long>(graph.total_events));
  if (recorder_dropped > 0) {
    out << StrFormat("  (TRUNCATED: %lld dropped at record time)",
                     static_cast<long long>(recorder_dropped));
  }
  out << "\n";
  int64_t heartbeat_convs = 0;
  for (const Conversation& c : graph.conversations) {
    if (c.space == ConversationSpace::kHeartbeat) ++heartbeat_convs;
  }
  const int64_t ack_convs = static_cast<int64_t>(graph.conversations.size()) -
                            data_conversations - heartbeat_convs;
  out << StrFormat(
      "conversations: %lld data, %lld ack, %lld heartbeat across %lld "
      "scope(s)\n",
      static_cast<long long>(data_conversations),
      static_cast<long long>(ack_convs),
      static_cast<long long>(heartbeat_convs),
      static_cast<long long>(graph.scopes.size()));
  out << StrFormat(
      "attempts: %lld send(s) + %lld retransmission(s); %lld "
      "delivery(ies), %lld drop(s) (%lld in outages)\n",
      static_cast<long long>(graph.sends),
      static_cast<long long>(graph.retransmits),
      static_cast<long long>(graph.deliveries),
      static_cast<long long>(graph.drops),
      static_cast<long long>(graph.outage_drops));
  out << StrFormat(
      "outcomes: %lld delivered, %lld abandoned, %lld all-attempts-dropped, "
      "%lld in-flight\n",
      static_cast<long long>(delivered), static_cast<long long>(abandoned),
      static_cast<long long>(all_attempts_dropped),
      static_cast<long long>(in_flight));
  out << StrFormat("send->outcome match rate: %.1f%% (%lld of %lld)\n",
                   match_rate * 100.0,
                   static_cast<long long>(delivered + abandoned +
                                          all_attempts_dropped),
                   static_cast<long long>(data_conversations));
  out << "latency anatomy (sim time):\n" << AnatomyToText(anatomy);
  out << StrFormat("findings: %lld error(s), %lld warning(s), %lld info\n",
                   static_cast<long long>(errors),
                   static_cast<long long>(warnings),
                   static_cast<long long>(infos));
  for (const Finding& finding : findings) {
    out << StrFormat("  [%s] %s scope=%lld span=%llu..%llu ts=%.6g: %s\n",
                     SeverityName(finding.severity), finding.cls.c_str(),
                     static_cast<long long>(finding.scope),
                     static_cast<unsigned long long>(finding.seq_begin),
                     static_cast<unsigned long long>(finding.seq_end),
                     finding.ts, finding.detail.c_str());
  }
  return out.str();
}

std::string AnalysisReport::ToJson() const {
  std::ostringstream out;
  out << "{";
  out << StrFormat("\"events\": %lld, \"recorder_dropped\": %lld, ",
                   static_cast<long long>(graph.total_events),
                   static_cast<long long>(recorder_dropped));
  out << StrFormat(
      "\"conversations\": {\"data\": %lld, \"total\": %lld, "
      "\"delivered\": %lld, \"abandoned\": %lld, "
      "\"all_attempts_dropped\": %lld, \"in_flight\": %lld}, ",
      static_cast<long long>(data_conversations),
      static_cast<long long>(graph.conversations.size()),
      static_cast<long long>(delivered), static_cast<long long>(abandoned),
      static_cast<long long>(all_attempts_dropped),
      static_cast<long long>(in_flight));
  out << StrFormat(
      "\"attempts\": {\"sends\": %lld, \"retransmits\": %lld, "
      "\"deliveries\": %lld, \"drops\": %lld, \"outage_drops\": %lld, "
      "\"acks\": %lld, \"heartbeats\": %lld}, ",
      static_cast<long long>(graph.sends),
      static_cast<long long>(graph.retransmits),
      static_cast<long long>(graph.deliveries),
      static_cast<long long>(graph.drops),
      static_cast<long long>(graph.outage_drops),
      static_cast<long long>(graph.acks_sent),
      static_cast<long long>(graph.heartbeats_sent));
  out << StrFormat("\"match_rate\": %.17g, ", match_rate);
  out << "\"anatomy\": " << AnatomyToJson(anatomy) << ", ";
  out << StrFormat(
      "\"finding_counts\": {\"error\": %lld, \"warning\": %lld, "
      "\"info\": %lld}, ",
      static_cast<long long>(errors), static_cast<long long>(warnings),
      static_cast<long long>(infos));
  out << "\"findings\": [";
  bool first = true;
  for (const Finding& finding : findings) {
    out << (first ? "" : ", ")
        << StrFormat(
               "{\"severity\": \"%s\", \"class\": \"%s\", \"scope\": %lld, "
               "\"seq_begin\": %llu, \"seq_end\": %llu, \"ts\": %.17g, "
               "\"detail\": \"%s\"}",
               SeverityName(finding.severity),
               JsonEscape(finding.cls).c_str(),
               static_cast<long long>(finding.scope),
               static_cast<unsigned long long>(finding.seq_begin),
               static_cast<unsigned long long>(finding.seq_end), finding.ts,
               JsonEscape(finding.detail).c_str());
    first = false;
  }
  out << "]}";
  return out.str();
}

std::string ExportAnnotatedChromeTrace(const std::vector<TraceEvent>& events,
                                       const AnalysisReport& report) {
  std::vector<std::string> extra;
  extra.push_back(
      "{\"ph\": \"M\", \"pid\": 3, \"name\": \"process_name\", "
      "\"args\": {\"name\": \"causal analysis\"}}");
  extra.push_back(
      "{\"ph\": \"M\", \"pid\": 3, \"tid\": 0, \"name\": \"thread_name\", "
      "\"args\": {\"name\": \"anomalies\"}}");

  // One lane per channel direction, in conversation-sorted (deterministic)
  // order; lane 0 is the anomaly marker lane.
  std::map<std::string, int> lanes;
  const auto lane = [&](const std::string& direction) {
    auto [it, inserted] =
        lanes.emplace(direction, static_cast<int>(lanes.size()) + 1);
    if (inserted) {
      extra.push_back(StrFormat(
          "{\"ph\": \"M\", \"pid\": 3, \"tid\": %d, \"name\": "
          "\"thread_name\", \"args\": {\"name\": \"%s\"}}",
          it->second, JsonEscape(direction).c_str()));
    }
    return it->second;
  };

  const auto slice_ts = [](double sim_ts) { return sim_ts * 1e6; };

  for (const Conversation& conv : report.graph.conversations) {
    if (conv.space == ConversationSpace::kHeartbeat) continue;
    if (conv.attempts() == 0) continue;
    const double begin = conv.first_send_ts;
    const double end =
        conv.outcome == ConversationOutcome::kDelivered
            ? conv.first_delivery_ts
            : (conv.last_attempt_ts > begin ? conv.last_attempt_ts : begin);
    extra.push_back(StrFormat(
        "{\"ph\": \"X\", \"pid\": 3, \"tid\": %d, \"ts\": %.17g, "
        "\"dur\": %.17g, \"name\": \"%s seq %llu\", \"args\": "
        "{\"outcome\": \"%s\", \"attempts\": %d, \"retransmits\": %d, "
        "\"drops\": %d, \"epoch\": %lld}}",
        lane(conv.direction), slice_ts(begin), slice_ts(end) - slice_ts(begin),
        MessageTypeLabel(static_cast<int>(conv.message_type)),
        static_cast<unsigned long long>(conv.link_seq),
        ConversationOutcomeName(conv.outcome), conv.attempts(),
        conv.retransmits, conv.drops, static_cast<long long>(conv.epoch)));
  }

  // Flow arrows along recovered causal chains. The "s" step sits on the
  // cause's slice, the "f" (bp=e) step on the effect's; Perfetto draws the
  // arrow between them when the ids match.
  int next_flow_id = 1;
  const auto emit_flow = [&](const std::vector<std::pair<int, int>>& pairs,
                             const char* name) {
    for (const auto& [cause_index, effect_index] : pairs) {
      const Conversation& cause = report.graph.conversations[cause_index];
      const Conversation& effect = report.graph.conversations[effect_index];
      const int id = next_flow_id++;
      extra.push_back(StrFormat(
          "{\"ph\": \"s\", \"pid\": 3, \"tid\": %d, \"ts\": %.17g, "
          "\"id\": %d, \"name\": \"%s\", \"cat\": \"causal\"}",
          lane(cause.direction), slice_ts(cause.first_send_ts), id, name));
      extra.push_back(StrFormat(
          "{\"ph\": \"f\", \"bp\": \"e\", \"pid\": 3, \"tid\": %d, "
          "\"ts\": %.17g, \"id\": %d, \"name\": \"%s\", \"cat\": "
          "\"causal\"}",
          lane(effect.direction), slice_ts(effect.first_send_ts), id, name));
    }
  };
  emit_flow(report.anatomy.request_response_pairs, "request_response");
  emit_flow(report.anatomy.resync_pairs, "resync");

  for (const Finding& finding : report.findings) {
    extra.push_back(StrFormat(
        "{\"ph\": \"i\", \"s\": \"g\", \"pid\": 3, \"tid\": 0, "
        "\"ts\": %.17g, \"name\": \"%s\", \"args\": {\"severity\": \"%s\", "
        "\"scope\": %lld, \"detail\": \"%s\"}}",
        slice_ts(finding.ts), JsonEscape(finding.cls).c_str(),
        SeverityName(finding.severity), static_cast<long long>(finding.scope),
        JsonEscape(finding.detail).c_str()));
  }

  return ExportChromeTrace(events, extra);
}

}  // namespace mobrep::obs::analysis
