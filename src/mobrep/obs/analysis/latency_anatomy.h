#ifndef MOBREP_OBS_ANALYSIS_LATENCY_ANATOMY_H_
#define MOBREP_OBS_ANALYSIS_LATENCY_ANATOMY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mobrep/obs/analysis/causal_graph.h"
#include "mobrep/obs/metrics.h"
#include "mobrep/obs/trace.h"

namespace mobrep::obs::analysis {

// Per-request latency anatomy: decomposes every reconstructed conversation
// (and the request/response, lease and resync chains layered over them)
// into named delay components, all in simulation time units.
//
//   transit       — delivering attempt -> arrival (raw channel latency+jitter)
//   retrans stall — first send -> delivering attempt (time lost to loss)
//   ack wait      — data first send -> its ack's arrival (sender-perceived)
//   turnaround    — read_request arrival -> data_response send (server queue)
//   request rtt   — read_request first send -> data_response arrival
//   lease wait    — reclaim/revoke -> next regrant (ownership gap)
//   resync detour — resync_request send -> resync_response arrival
//
// Sample vectors are in deterministic (conversation-sorted) order, so the
// anatomy is byte-stable across thread counts.

struct SeriesSummary {
  int64_t n = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

// Exact quantiles by sorting a copy (linear interpolation between order
// statistics, matching Histogram::Quantile's convention).
SeriesSummary Summarize(const std::vector<double>& samples);

struct LatencyAnatomy {
  std::vector<double> transit;
  std::vector<double> retrans_stall;
  std::vector<double> ack_wait;
  std::vector<double> turnaround;
  std::vector<double> request_rtt;
  std::vector<double> lease_wait;
  std::vector<double> resync_detour;

  // Causal chains recovered while pairing, as indices into
  // CausalGraph::conversations: request conversation -> the response
  // conversation it caused. Feed the annotated-Perfetto flow arrows.
  std::vector<std::pair<int, int>> request_response_pairs;
  std::vector<std::pair<int, int>> resync_pairs;
};

// `events` must be the same trace `graph` was built from (lease events are
// read off the raw stream; conversations come from the graph).
LatencyAnatomy ComputeLatencyAnatomy(const CausalGraph& graph,
                                     const std::vector<TraceEvent>& events);

// Records every sample into mobrep_analysis_* histograms on `registry`
// (created on first use; bounds shared across all anatomy series).
void PublishAnatomy(const LatencyAnatomy& anatomy, MetricsRegistry* registry);

// One "name n=.. mean=.. p50=.. p90=.. p99=.. max=.." line per non-empty
// series, deterministic; "  (no samples)" when everything is empty.
std::string AnatomyToText(const LatencyAnatomy& anatomy);

// {"transit": {"n":..,"mean":..,...}, ...} over the non-empty series.
std::string AnatomyToJson(const LatencyAnatomy& anatomy);

}  // namespace mobrep::obs::analysis

#endif  // MOBREP_OBS_ANALYSIS_LATENCY_ANATOMY_H_
