#ifndef MOBREP_OBS_ANALYSIS_ANALYZER_H_
#define MOBREP_OBS_ANALYSIS_ANALYZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mobrep/obs/analysis/anomaly_audit.h"
#include "mobrep/obs/analysis/causal_graph.h"
#include "mobrep/obs/analysis/latency_anatomy.h"
#include "mobrep/obs/metrics.h"
#include "mobrep/obs/trace.h"

namespace mobrep::obs::analysis {

// The offline causal analyzer: one call over a merged deterministic trace
// produces the happens-before graph, the latency anatomy and the anomaly
// findings, packaged as a report with deterministic text/JSON renderings.
// Consumed by `mobrep_cli analyze`, the chaos harnesses (fault-free runs
// must be clean) and the scale bench's --analyze self-audit.

struct AnalyzerOptions {
  AuditConfig audit;
  // When set, every anatomy series is also recorded into
  // mobrep_analysis_* histograms on this registry.
  MetricsRegistry* registry = nullptr;
};

struct AnalysisReport {
  CausalGraph graph;
  LatencyAnatomy anatomy;
  std::vector<Finding> findings;

  // Conversations by outcome (data space only — the protocol's own frames;
  // acks and heartbeats are accounted inside the graph counters).
  int64_t data_conversations = 0;
  int64_t delivered = 0;
  int64_t abandoned = 0;
  int64_t all_attempts_dropped = 0;
  int64_t in_flight = 0;
  // delivered+abandoned+all_attempts_dropped over data conversations with
  // at least one attempt: the "every send has a terminal outcome" rate.
  double match_rate = 1.0;

  int64_t errors = 0;
  int64_t warnings = 0;
  int64_t infos = 0;
  int64_t recorder_dropped = 0;

  bool clean() const { return errors == 0; }
  bool truncated() const { return recorder_dropped > 0; }

  std::string ToText() const;
  std::string ToJson() const;
};

AnalysisReport AnalyzeTrace(const std::vector<TraceEvent>& events,
                            const AnalyzerOptions& options = {});

// Chrome trace-event JSON of the raw trace plus the analyzer's annotations
// on pid 3: per-conversation "X" slices (one lane per channel direction),
// "s"/"f" flow arrows along recovered request->response and
// resync-request->response chains (paired ids), and an instant marker per
// anomaly finding. Validated by tools/validate_trace.py --require-flows.
std::string ExportAnnotatedChromeTrace(const std::vector<TraceEvent>& events,
                                       const AnalysisReport& report);

}  // namespace mobrep::obs::analysis

#endif  // MOBREP_OBS_ANALYSIS_ANALYZER_H_
