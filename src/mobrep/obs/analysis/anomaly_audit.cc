#include "mobrep/obs/analysis/anomaly_audit.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "mobrep/common/strings.h"
#include "mobrep/obs/trace_export.h"

namespace mobrep::obs::analysis {
namespace {

// Aggregated per-site evidence for the info-level fault classes.
struct SiteAggregate {
  int count = 0;
  int outage = 0;
  uint64_t seq_begin = 0;
  uint64_t seq_end = 0;
  double first_ts = 0.0;
  bool any = false;

  void Fold(const Conversation& conv, int n, int outage_n) {
    count += n;
    outage += outage_n;
    if (!any) {
      seq_begin = conv.first_trace_seq;
      seq_end = conv.last_trace_seq;
      first_ts = conv.first_send_ts;
      any = true;
    } else {
      seq_begin = std::min(seq_begin, conv.first_trace_seq);
      seq_end = std::max(seq_end, conv.last_trace_seq);
    }
  }
};

Finding MakeFinding(Severity severity, const char* cls, std::string detail,
                    int64_t scope, uint64_t seq_begin, uint64_t seq_end,
                    double ts) {
  Finding finding;
  finding.severity = severity;
  finding.cls = cls;
  finding.detail = std::move(detail);
  finding.scope = scope;
  finding.seq_begin = seq_begin;
  finding.seq_end = seq_end;
  finding.ts = ts;
  return finding;
}

Finding FromConversation(Severity severity, const char* cls,
                         std::string detail, const Conversation& conv) {
  return MakeFinding(severity, cls, std::move(detail), conv.scope,
                     conv.first_trace_seq, conv.last_trace_seq,
                     conv.first_send_ts);
}

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::vector<Finding> RunAnomalyAudit(const CausalGraph& graph,
                                     const AuditConfig& config) {
  std::vector<Finding> findings;

  // Highest delivered data seq per (scope, direction, epoch): an undelivered
  // earlier seq was passed over — with no abandon on record, the trace lost
  // its terminal outcome.
  std::map<std::tuple<int64_t, std::string, int64_t>, uint64_t>
      max_delivered_seq;
  // Data conversations by (scope, direction, seq), any epoch — the
  // ack_without_send probe (the ack carries the receiver's incarnation, so
  // epochs don't line up across a crash).
  std::set<std::tuple<int64_t, std::string, uint64_t>> data_seqs;
  for (const Conversation& conv : graph.conversations) {
    if (conv.space != ConversationSpace::kData || conv.link_seq == 0) continue;
    if (conv.attempts() > 0) {
      data_seqs.insert({conv.scope, conv.direction, conv.link_seq});
    }
    if (conv.outcome == ConversationOutcome::kDelivered) {
      uint64_t& max_seq =
          max_delivered_seq[{conv.scope, conv.direction, conv.epoch}];
      max_seq = std::max(max_seq, conv.link_seq);
    }
  }

  // Per-conversation classes.
  std::map<std::tuple<int64_t, std::string>, SiteAggregate> drop_sites;
  std::map<std::tuple<int64_t, std::string>, SiteAggregate> dup_sites;
  for (const Conversation& conv : graph.conversations) {
    const std::string where = StrFormat(
        "%s %s seq=%llu epoch=%lld", conv.direction.c_str(),
        MessageTypeLabel(static_cast<int>(conv.message_type)),
        static_cast<unsigned long long>(conv.link_seq),
        static_cast<long long>(conv.epoch));

    if (conv.attempts() == 0 && conv.deliveries > 0) {
      findings.push_back(FromConversation(
          Severity::kError, "recv_without_send",
          StrFormat("arrival with no recorded send: %s (%d deliveries)",
                    where.c_str(), conv.deliveries),
          conv));
      continue;
    }

    if (conv.space == ConversationSpace::kAck && conv.attempts() > 0 &&
        conv.link_seq != 0 &&
        data_seqs.count({conv.scope, ReverseDirection(conv.direction),
                         conv.link_seq}) == 0) {
      findings.push_back(FromConversation(
          Severity::kError, "ack_without_send",
          StrFormat("ack for a frame the trace never sent: %s",
                    where.c_str()),
          conv));
    }

    if (conv.retransmits >= config.retransmit_storm_threshold) {
      findings.push_back(FromConversation(
          Severity::kWarning, "retransmit_storm",
          StrFormat("%d retransmissions (threshold %d): %s", conv.retransmits,
                    config.retransmit_storm_threshold, where.c_str()),
          conv));
    }

    if (conv.abandoned) {
      findings.push_back(FromConversation(
          Severity::kWarning, "abandoned_frame",
          StrFormat("ARQ abandoned the frame after %d attempts (%s): %s",
                    conv.attempts(),
                    conv.abandoned_for_budget ? "retry budget exhausted"
                                              : "per-frame retry cap",
                    where.c_str()),
          conv));
    }

    if (conv.space == ConversationSpace::kData &&
        conv.outcome != ConversationOutcome::kDelivered && !conv.abandoned &&
        conv.attempts() > 0 && conv.link_seq != 0) {
      const auto it = max_delivered_seq.find(
          {conv.scope, conv.direction, conv.epoch});
      const bool passed_over =
          it != max_delivered_seq.end() && it->second > conv.link_seq;
      if (passed_over) {
        findings.push_back(FromConversation(
            Severity::kError, "unmatched_send",
            StrFormat("send without terminal outcome, later frames "
                      "delivered past it: %s (outcome %s)",
                      where.c_str(), ConversationOutcomeName(conv.outcome)),
            conv));
      } else {
        findings.push_back(FromConversation(
            Severity::kInfo, "in_flight_at_end",
            StrFormat("trace ended before a terminal outcome: %s "
                      "(%d attempts, %d drops)",
                      where.c_str(), conv.attempts(), conv.drops),
            conv));
      }
    }

    if (conv.drops > 0) {
      drop_sites[{conv.scope, conv.direction}].Fold(conv, conv.drops,
                                                    conv.outage_drops);
    }
    const int surplus = conv.surplus_deliveries();
    if (surplus > 0) {
      dup_sites[{conv.scope, conv.direction}].Fold(conv, surplus, 0);
    }
  }

  // Aggregated injected-fault evidence.
  for (const auto& [key, agg] : drop_sites) {
    const auto& [scope, direction] = key;
    findings.push_back(MakeFinding(
        Severity::kInfo, "dropped_frame",
        StrFormat("%d frame(s) dropped on %s (%d during outages)", agg.count,
                  direction.c_str(), agg.outage),
        scope, agg.seq_begin, agg.seq_end, agg.first_ts));
  }
  for (const auto& [key, agg] : dup_sites) {
    const auto& [scope, direction] = key;
    findings.push_back(MakeFinding(
        Severity::kInfo, "duplicate_frame",
        StrFormat("%d surplus arrival(s) on %s (injected duplicates)",
                  agg.count, direction.c_str()),
        scope, agg.seq_begin, agg.seq_end, agg.first_ts));
  }

  // Lease fencing churn: reclaim/revoke cycles are individually expected
  // under partitions (info) but repeated flapping is a warning.
  if (graph.lease_reclaims + graph.lease_revokes > 0) {
    findings.push_back(MakeFinding(
        Severity::kInfo, "lease_reclaim",
        StrFormat("%lld lease reclaim(s), %lld revoke(s), %lld grant(s)",
                  static_cast<long long>(graph.lease_reclaims),
                  static_cast<long long>(graph.lease_revokes),
                  static_cast<long long>(graph.lease_grants)),
        0, 0, 0, 0.0));
    const int64_t cycles = graph.lease_reclaims + graph.lease_revokes;
    if (cycles >= config.lease_churn_threshold) {
      findings.push_back(MakeFinding(
          Severity::kWarning, "lease_churn",
          StrFormat("%lld ownership reclaim/revoke cycle(s) (threshold %d): "
                    "fencing is flapping",
                    static_cast<long long>(cycles),
                    config.lease_churn_threshold),
          0, 0, 0, 0.0));
    }
  }

  // Quiescence stall diagnosed by the harness that drove the run.
  if (!config.stall_context.empty()) {
    findings.push_back(MakeFinding(Severity::kWarning, "quiescence_stall",
                                   config.stall_context, 0, 0, 0, 0.0));
  }

  // Trace completeness: ring overflow (global) and per-scope seq gaps.
  if (config.recorder_dropped > 0) {
    findings.push_back(MakeFinding(
        Severity::kWarning, "truncated_trace",
        StrFormat("recorder dropped %lld event(s) to ring overflow; "
                  "absence-based findings are low-confidence",
                  static_cast<long long>(config.recorder_dropped)),
        0, 0, 0, 0.0));
  }
  for (const ScopeStats& stats : graph.scopes) {
    if (stats.missing() == 0) continue;
    findings.push_back(MakeFinding(
        Severity::kWarning, "truncated_trace",
        StrFormat("scope %lld: %lld of %lld event(s) missing from the ring",
                  static_cast<long long>(stats.scope),
                  static_cast<long long>(stats.missing()),
                  static_cast<long long>(stats.max_seq) + 1),
        stats.scope, 0, stats.max_seq, 0.0));
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.scope, a.seq_begin, a.cls, a.detail) <
                     std::tie(b.scope, b.seq_begin, b.cls, b.detail);
            });
  return findings;
}

}  // namespace mobrep::obs::analysis
