#include "mobrep/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "mobrep/common/check.h"

namespace mobrep::obs {
namespace {

// %.17g round-trips every finite double; metrics are diagnostics, so
// non-finite values are rendered as JSON strings rather than aborting.
std::string NumberToJson(double value) {
  if (value != value) return "\"nan\"";
  if (value > 1.7976931348623157e308) return "\"inf\"";
  if (value < -1.7976931348623157e308) return "\"-inf\"";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  MOBREP_CHECK_MSG(!bounds_.empty(), "a histogram needs at least one bucket");
  MOBREP_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                   "histogram bucket bounds must be sorted");
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Record(double sample) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double seen = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(seen, seen + sample,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<int64_t> Histogram::bucket_counts() const {
  std::vector<int64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::Quantile(double q) const {
  const int64_t total = count_.load(std::memory_order_relaxed);
  if (total <= 0) return 0.0;
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (size_t i = 0; i < bounds_.size(); ++i) {
    const int64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket > 0 &&
        cumulative + static_cast<double>(in_bucket) >= target) {
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double frac =
          (target - cumulative) / static_cast<double>(in_bucket);
      return lower + (bounds_[i] - lower) * (frac < 0.0 ? 0.0 : frac);
    }
    cumulative += static_cast<double>(in_bucket);
  }
  return bounds_.back();
}

void Histogram::Reset() noexcept {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const std::string& unit) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[name];
  if (entry.counter == nullptr) {
    MOBREP_CHECK_MSG(entry.gauge == nullptr && entry.histogram == nullptr,
                     name.c_str());
    entry.kind = MetricKind::kCounter;
    entry.help = help;
    entry.unit = unit;
    entry.counter = std::make_unique<Counter>();
  }
  MOBREP_CHECK_MSG(entry.kind == MetricKind::kCounter, name.c_str());
  return entry.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const std::string& unit) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[name];
  if (entry.gauge == nullptr) {
    MOBREP_CHECK_MSG(entry.counter == nullptr && entry.histogram == nullptr,
                     name.c_str());
    entry.kind = MetricKind::kGauge;
    entry.help = help;
    entry.unit = unit;
    entry.gauge = std::make_unique<Gauge>();
  }
  MOBREP_CHECK_MSG(entry.kind == MetricKind::kGauge, name.c_str());
  return entry.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds,
                                         const std::string& help,
                                         const std::string& unit) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[name];
  if (entry.histogram == nullptr) {
    MOBREP_CHECK_MSG(entry.counter == nullptr && entry.gauge == nullptr,
                     name.c_str());
    entry.kind = MetricKind::kHistogram;
    entry.help = help;
    entry.unit = unit;
    entry.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  MOBREP_CHECK_MSG(entry.kind == MetricKind::kHistogram, name.c_str());
  return entry.histogram.get();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> samples;
  samples.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    MetricSample sample;
    sample.name = name;
    sample.help = entry.help;
    sample.unit = entry.unit;
    sample.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        sample.counter_value = entry.counter->value();
        break;
      case MetricKind::kGauge:
        sample.gauge_value = entry.gauge->value();
        break;
      case MetricKind::kHistogram:
        sample.histogram_bounds = entry.histogram->upper_bounds();
        sample.histogram_counts = entry.histogram->bucket_counts();
        sample.histogram_count = entry.histogram->count();
        sample.histogram_sum = entry.histogram->sum();
        sample.histogram_p50 = entry.histogram->Quantile(0.50);
        sample.histogram_p90 = entry.histogram->Quantile(0.90);
        sample.histogram_p99 = entry.histogram->Quantile(0.99);
        break;
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        entry.counter->Reset();
        break;
      case MetricKind::kGauge:
        entry.gauge->Reset();
        break;
      case MetricKind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string MetricsRegistry::ExportText() const {
  std::ostringstream out;
  for (const MetricSample& sample : Snapshot()) {
    out << sample.name << " " << KindName(sample.kind) << " ";
    switch (sample.kind) {
      case MetricKind::kCounter:
        out << sample.counter_value;
        break;
      case MetricKind::kGauge:
        out << NumberToJson(sample.gauge_value);
        break;
      case MetricKind::kHistogram: {
        out << "count=" << sample.histogram_count
            << " sum=" << NumberToJson(sample.histogram_sum)
            << " p50=" << NumberToJson(sample.histogram_p50)
            << " p90=" << NumberToJson(sample.histogram_p90)
            << " p99=" << NumberToJson(sample.histogram_p99) << " buckets=";
        for (size_t i = 0; i < sample.histogram_counts.size(); ++i) {
          if (i > 0) out << ",";
          if (i < sample.histogram_bounds.size()) {
            out << "le" << NumberToJson(sample.histogram_bounds[i]) << ":";
          } else {
            out << "inf:";
          }
          out << sample.histogram_counts[i];
        }
        break;
      }
    }
    if (!sample.unit.empty()) out << " " << sample.unit;
    if (!sample.help.empty()) out << "  # " << sample.help;
    out << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::ExportJsonObject() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const MetricSample& sample : Snapshot()) {
    out << (first ? "" : ",") << "\n    \"" << EscapeJson(sample.name)
        << "\": {\"kind\": \"" << KindName(sample.kind) << "\"";
    if (!sample.unit.empty()) {
      out << ", \"unit\": \"" << EscapeJson(sample.unit) << "\"";
    }
    switch (sample.kind) {
      case MetricKind::kCounter:
        out << ", \"value\": " << sample.counter_value;
        break;
      case MetricKind::kGauge:
        out << ", \"value\": " << NumberToJson(sample.gauge_value);
        break;
      case MetricKind::kHistogram: {
        out << ", \"count\": " << sample.histogram_count
            << ", \"sum\": " << NumberToJson(sample.histogram_sum)
            << ", \"p50\": " << NumberToJson(sample.histogram_p50)
            << ", \"p90\": " << NumberToJson(sample.histogram_p90)
            << ", \"p99\": " << NumberToJson(sample.histogram_p99)
            << ", \"bounds\": [";
        for (size_t i = 0; i < sample.histogram_bounds.size(); ++i) {
          out << (i == 0 ? "" : ", ")
              << NumberToJson(sample.histogram_bounds[i]);
        }
        out << "], \"buckets\": [";
        for (size_t i = 0; i < sample.histogram_counts.size(); ++i) {
          out << (i == 0 ? "" : ", ") << sample.histogram_counts[i];
        }
        out << "]";
        break;
      }
    }
    out << "}";
    first = false;
  }
  if (!first) out << "\n  ";
  out << "}";
  return out.str();
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

}  // namespace mobrep::obs
