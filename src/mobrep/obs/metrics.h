#ifndef MOBREP_OBS_METRICS_H_
#define MOBREP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mobrep::obs {

// Unified metrics layer (DESIGN.md §8): one schema and one export path for
// the counters that used to live ad hoc in ProtocolMetrics, the net/ fault
// and ARQ meters and the runner/ thread-pool stats.
//
// Design split: the *cells* (Counter, Gauge, Histogram) are standalone
// lock-free value holders that components embed directly — an increment is
// one relaxed atomic RMW, no lock, no name lookup, safe from any thread.
// The *registry* owns named cells for process-level aggregates and renders
// deterministic snapshots (sorted by name) as text or JSON. Components
// either embed anonymous cells behind their existing accessors (Channel,
// ReliableLink, FaultyChannel) or register named cells once and cache the
// handle (ThreadPool).
//
// None of this feeds back into simulation results: metrics are
// write-mostly observers, so enabling or exporting them can never perturb
// cost counters or bench cell values.

// Monotonic event count. Relaxed increments: totals are exact once the
// writing threads have joined (every reader in this repo reads after a
// ParallelFor barrier or at end of run).
class Counter {
 public:
  void Increment(int64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-writer-wins instantaneous value (pool width, queue depth).
class Gauge {
 public:
  void Set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() noexcept { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: bucket i counts samples <= upper_bounds[i], with
// one implicit overflow bucket above the last bound. Bucket counts and the
// running sum are individually exact under concurrent Record() calls
// (the sum uses a CAS loop; doubles have no atomic fetch_add pre-C++20 on
// all toolchains we target).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double sample) noexcept;

  const std::vector<double>& upper_bounds() const { return bounds_; }
  // bounds_.size() + 1 entries; the last is the overflow bucket.
  std::vector<int64_t> bucket_counts() const;
  // Quantile estimate from the bucket counts: linear interpolation inside
  // the bucket holding the q-th sample, with 0 as the first bucket's lower
  // edge. Samples in the overflow bucket clamp to the last bound (the
  // estimate is a lower bound there). 0 when empty. q in [0, 1].
  double Quantile(double q) const;
  int64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  void Reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

// One metric in a deterministic snapshot.
struct MetricSample {
  std::string name;
  std::string help;
  std::string unit;
  MetricKind kind = MetricKind::kCounter;
  int64_t counter_value = 0;                // kCounter
  double gauge_value = 0.0;                 // kGauge
  std::vector<double> histogram_bounds;     // kHistogram
  std::vector<int64_t> histogram_counts;    // kHistogram (bounds + overflow)
  int64_t histogram_count = 0;              // kHistogram
  double histogram_sum = 0.0;               // kHistogram
  double histogram_p50 = 0.0;               // kHistogram (Quantile(0.50))
  double histogram_p90 = 0.0;               // kHistogram (Quantile(0.90))
  double histogram_p99 = 0.0;               // kHistogram (Quantile(0.99))
};

// Owns named metric cells. Registration takes a lock and returns a stable
// handle; the returned cell is then incremented lock-free. Registering the
// same name again returns the existing cell (the kind must match — a
// name/kind clash is a programming error and aborts).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help = "",
                      const std::string& unit = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "",
                  const std::string& unit = "");
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds,
                          const std::string& help = "",
                          const std::string& unit = "");

  // Deterministic view: samples sorted by name.
  std::vector<MetricSample> Snapshot() const;

  // Zeroes every cell (handles stay valid).
  void ResetAll();

  size_t size() const;

  // "name kind value [unit] # help" lines, sorted by name.
  std::string ExportText() const;
  // A bare JSON object {"name": {...}, ...}, sorted by name — suitable for
  // embedding (bench_json's "metrics" member) or standalone parsing.
  std::string ExportJsonObject() const;

  // Process-wide registry used by the built-in instrumentation
  // (thread pool, bench harness, CLI).
  static MetricsRegistry* Global();

 private:
  struct Entry {
    MetricKind kind;
    std::string help;
    std::string unit;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // ordered => deterministic export
};

}  // namespace mobrep::obs

#endif  // MOBREP_OBS_METRICS_H_
