#ifndef MOBREP_OBS_TRACE_H_
#define MOBREP_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mobrep::obs {

// Structured event tracing (DESIGN.md §8).
//
// A TraceRecorder collects fixed-size structured events — policy decisions,
// message send/recv/drop/retransmit, WAL appends, sweep-cell spans — into
// per-thread bounded ring buffers, then merges them into one deterministic
// stream.
//
// Cost model:
//   * Compiled out (-DMOBREP_TRACING=OFF): every MOBREP_TRACE_EVENT site
//     expands to nothing; the recorder cannot be enabled.
//   * Compiled in, runtime-disabled (the default): each site is one relaxed
//     atomic load and a predictable branch (< 1 ns; see perf_micro).
//   * Enabled: one ring-buffer slot write plus a steady_clock read.
// Tracing never feeds back into simulation state, so cost counters, bench
// stdout and BENCH_*.json cells are bit-for-bit identical whether tracing
// is off, on, or compiled out.
//
// Determinism contract: every event carries a (scope, seq) pair. A scope is
// a logical lane — 0 for single-threaded phases, a reserved unique id per
// sweep cell — and seq is the program-order index within that scope
// (maintained thread-locally by TraceScope). All events of one scope are
// emitted by exactly one thread, so sorting the merged stream by
// (scope, seq) reproduces program order per scope and a fixed global order
// across scopes: the merged stream is byte-identical at any MOBREP_THREADS,
// provided no ring buffer overflowed (overflow drops oldest events and is
// reported via dropped()). Wall-clock fields (wall_ns, tid) exist for
// profiling exports only and are excluded from deterministic output.

// Network-plane events pack the sender's crash-recovery incarnation
// (Message::epoch, 0 outside the chaos harness) into the payload so the
// offline causal analyzer (obs/analysis/) can key conversations by
// (direction, epoch, seq) across link restarts. The packing is
// deterministic — both the 1-thread and the N-thread run of a workload see
// the same epochs — so enriching the payload never perturbs trace diffs.
enum class TraceEventKind : uint8_t {
  kPolicyDecision = 0,   // a0=request idx, a1=packed op/action/copy,
                         // a2=packed window (-1 if none), d0=cost
  kMessageSend,          // a0=link seq, a1=MessageType,
                         // a2=is_data | epoch<<1
  kMessageRecv,          // a0=link seq, a1=MessageType, a2=epoch
  kMessageDrop,          // a0=link seq, a1=MessageType,
                         // a2=outage-bit | epoch<<1
  kRetransmit,           // a0=link seq, a1=MessageType, a2=epoch
  kAckSend,              // a0=acked seq, a1=epoch
  kArqTimeout,           // a0=frame seq, a1=attempts so far
  kDuplicateDropped,     // a0=frame seq
  kWalAppend,            // a0=version, a1=record idx
  kWalSync,              // a0=records synced so far
  kSweepCellBegin,       // a0=cell index
  kSweepCellEnd,         // a0=cell index
  kWalSnapshot,          // a0=payload bytes, a1=record idx
  kNodeCrash,            // a0=CrashNode, a1=crash point idx
  kNodeRestart,          // a0=CrashNode, a1=new incarnation
  kResync,               // a0=CrashNode initiating, a1=incarnation,
                         // a2=1 when resolved (0 when initiated)
  kFencedFrame,          // a0=frame seq, a1=frame epoch, a2=local epoch
  kHeartbeat,            // a0=probe seq, a1=epoch
  kLeaseGrant,           // a0=fencing token, a1=1 on a regrant, d0=term
  kLeaseRenew,           // a0=fencing token, a1=1 at SC (0 at MC), d0=new
                         // time-to-expiry at the observer
  kLeaseReclaim,         // a0=new fencing token, d0=silence duration
  kLeaseRevoke,          // a0=current token, a1=stale token fenced
  kDegradedRead,         // a0=served version, d0=staleness bound
  kPartition,            // a0=1 start / 0 heal, a1=PartitionShape
  kArqAbandon,           // a0=frame seq, a1=MessageType,
                         // a2=budget-bit | epoch<<1; label = the outgoing
                         // channel the frame was abandoned on
};

// One past the last enumerator — the size of any table indexed by kind
// (asserted against the metadata table in trace_kinds.h by tests).
inline constexpr int kTraceEventKindCount =
    static_cast<int>(TraceEventKind::kArqAbandon) + 1;

// Stable lowercase name, e.g. "policy_decision".
const char* TraceEventKindName(TraceEventKind kind);

struct TraceEvent {
  int64_t scope = 0;   // logical lane (deterministic)
  uint64_t seq = 0;    // program order within the scope (deterministic)
  double ts = 0.0;     // logical timestamp: sim time, request or cell index
  int64_t a0 = 0;
  int64_t a1 = 0;
  int64_t a2 = 0;
  double d0 = 0.0;
  uint64_t wall_ns = 0;  // steady_clock at emit — profiling only
  uint32_t tid = 0;      // physical thread ordinal — profiling only
  TraceEventKind kind = TraceEventKind::kPolicyDecision;
  char label[27] = {0};  // NUL-terminated site label (truncated copy)
};

// Builds an event with the deterministic payload fields; Append() fills
// scope/seq/wall_ns/tid.
TraceEvent MakeEvent(TraceEventKind kind, const char* label, double ts,
                     int64_t a0 = 0, int64_t a1 = 0, int64_t a2 = 0,
                     double d0 = 0.0);

// The runtime enable flag, read directly by the MOBREP_TRACE_EVENT macro so
// the disabled path is a single relaxed load. Initialized from the
// MOBREP_TRACE environment variable (any non-empty value but "0" enables).
extern std::atomic<bool> g_trace_runtime_enabled;

#if defined(MOBREP_TRACING) && MOBREP_TRACING
inline constexpr bool kTracingCompiled = true;
#else
inline constexpr bool kTracingCompiled = false;
#endif

inline bool TracingEnabled() noexcept {
  if constexpr (!kTracingCompiled) return false;
  return g_trace_runtime_enabled.load(std::memory_order_relaxed);
}

class TraceRecorder {
 public:
  // Default events retained per emitting thread before the ring wraps.
  static constexpr size_t kDefaultCapacityPerThread = 1 << 16;

  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Flips the runtime flag (no-op when tracing is compiled out).
  static void SetRuntimeEnabled(bool enabled);
  static bool runtime_enabled() { return TracingEnabled(); }

  // Must be called before the first Append of a thread takes a buffer;
  // existing buffers keep their capacity.
  void SetCapacityPerThread(size_t capacity);

  // Appends one event (fills scope/seq/wall_ns/tid). Callers go through
  // MOBREP_TRACE_EVENT, which short-circuits when tracing is off.
  void Append(TraceEvent event);

  // Reserves `n` consecutive scope ids and returns the first. Scope 0 is
  // never handed out (it is the ambient single-threaded scope).
  int64_t ReserveScopes(int64_t n);

  // Merged deterministic stream: all buffered events sorted by
  // (scope, seq). Call after parallel regions have joined.
  std::vector<TraceEvent> MergedEvents() const;

  // Drops all buffered events and resets scope allocation and the
  // per-thread sequence state. Not thread-safe against concurrent Append.
  void Clear();

  // Events lost to ring wraparound since the last Clear().
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // Process-wide recorder used by the built-in instrumentation.
  static TraceRecorder* Global();

 private:
  friend class TraceScope;

  struct ThreadBuffer {
    std::vector<TraceEvent> ring;
    uint64_t total = 0;  // events ever appended; ring slot = total % size
  };
  struct ThreadState;  // thread-local scope/seq + buffer binding

  static ThreadState& Tls();
  ThreadBuffer* BufferForThisThread(uint32_t* tid);

  // Unique per recorder instance. The thread-local binding is keyed on
  // this id rather than the recorder's address: a new recorder constructed
  // at a recycled address must not inherit a stale (freed) buffer binding.
  const uint64_t id_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  size_t capacity_per_thread_ = kDefaultCapacityPerThread;
  std::atomic<int64_t> next_scope_{1};
  std::atomic<int64_t> dropped_{0};
  std::atomic<uint64_t> generation_{0};  // bumped by Clear()
};

// RAII logical lane for deterministic parallel tracing: while alive, events
// emitted by this thread carry `scope_id` and a fresh program-order
// sequence starting at 0. Used by the sweep engine around each cell body.
// Scopes on one thread nest (the previous scope resumes on destruction).
class TraceScope {
 public:
  explicit TraceScope(int64_t scope_id);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  int64_t saved_scope_;
  uint64_t saved_seq_;
};

// Emission macro: zero code when compiled out, one relaxed load when
// runtime-disabled. The event expression is evaluated only when enabled.
#if defined(MOBREP_TRACING) && MOBREP_TRACING
#define MOBREP_TRACE_EVENT(...)                                     \
  do {                                                              \
    if (::mobrep::obs::TracingEnabled()) {                          \
      ::mobrep::obs::TraceRecorder::Global()->Append(               \
          ::mobrep::obs::MakeEvent(__VA_ARGS__));                   \
    }                                                               \
  } while (0)
#else
// Compiled out: the arguments are never evaluated, but they stay
// odr-used inside the dead branch so a value referenced only by a trace
// site doesn't trip -Werror=unused-parameter in OFF builds.
#define MOBREP_TRACE_EVENT(...)                       \
  do {                                                \
    if (false) {                                      \
      ::mobrep::obs::internal::Sink(__VA_ARGS__);     \
    }                                                 \
  } while (0)

namespace internal {
template <typename... Args>
inline void Sink(Args&&...) {}
}  // namespace internal
#endif

}  // namespace mobrep::obs

#endif  // MOBREP_OBS_TRACE_H_
