#include "mobrep/obs/trace_kinds.h"

#include <iterator>

#include "mobrep/common/check.h"

namespace mobrep::obs {
namespace {

using K = TraceEventKind;
using C = TraceKindCategory;

// clang-format off
constexpr TraceKindInfo kTable[] = {
    {K::kPolicyDecision, "policy_decision", C::kPolicy, "request index",
     "request index", "packed op/action/copy", "packed window (-1 if none)",
     "charged cost"},
    {K::kMessageSend, "message_send", C::kNet, "sim time",
     "link seq", "MessageType", "is_data | epoch<<1", "-"},
    {K::kMessageRecv, "message_recv", C::kNet, "sim time",
     "link seq", "MessageType", "sender epoch", "-"},
    {K::kMessageDrop, "message_drop", C::kNet, "sim time",
     "link seq", "MessageType", "outage-bit | epoch<<1", "-"},
    {K::kRetransmit, "retransmit", C::kNet, "sim time",
     "link seq", "MessageType", "sender epoch", "-"},
    {K::kAckSend, "ack_send", C::kNet, "sim time",
     "acked seq", "sender epoch", "-", "-"},
    {K::kArqTimeout, "arq_timeout", C::kArq, "sim time",
     "frame seq", "attempts so far", "-", "-"},
    {K::kDuplicateDropped, "duplicate_dropped", C::kArq, "sim time",
     "frame seq", "-", "-", "-"},
    {K::kWalAppend, "wal_append", C::kWal, "record index",
     "version", "record index", "-", "-"},
    {K::kWalSync, "wal_sync", C::kWal, "sync index",
     "records synced so far", "-", "-", "-"},
    {K::kSweepCellBegin, "sweep_cell_begin", C::kSweep, "cell index",
     "cell index", "-", "-", "-"},
    {K::kSweepCellEnd, "sweep_cell_end", C::kSweep, "cell index",
     "cell index", "-", "-", "-"},
    {K::kWalSnapshot, "wal_snapshot", C::kWal, "record index",
     "payload bytes", "record index", "-", "-"},
    {K::kNodeCrash, "node_crash", C::kCrash, "sim time",
     "CrashNode", "crash point index", "-", "-"},
    {K::kNodeRestart, "node_restart", C::kCrash, "sim time",
     "CrashNode", "new incarnation", "-", "-"},
    {K::kResync, "resync", C::kCrash, "sim time",
     "initiating CrashNode", "incarnation", "1 when resolved", "-"},
    {K::kFencedFrame, "fenced_frame", C::kArq, "sim time",
     "frame seq", "frame epoch", "local epoch", "-"},
    {K::kHeartbeat, "heartbeat", C::kNet, "sim time",
     "probe seq", "sender epoch", "-", "-"},
    {K::kLeaseGrant, "lease_grant", C::kLease, "sim time",
     "fencing token", "1 on a regrant", "-", "term"},
    {K::kLeaseRenew, "lease_renew", C::kLease, "sim time",
     "fencing token", "1 at SC (0 at MC)", "-", "new time-to-expiry"},
    {K::kLeaseReclaim, "lease_reclaim", C::kLease, "sim time",
     "new fencing token", "-", "-", "detector silence"},
    {K::kLeaseRevoke, "lease_revoke", C::kLease, "sim time",
     "current token", "stale token fenced", "-", "-"},
    {K::kDegradedRead, "degraded_read", C::kLease, "sim time",
     "served version", "-", "-", "staleness bound"},
    {K::kPartition, "partition", C::kCrash, "sim time",
     "1 start / 0 heal", "PartitionShape", "-", "-"},
    {K::kArqAbandon, "arq_abandon", C::kArq, "sim time",
     "frame seq", "MessageType", "budget-bit | epoch<<1", "-"},
};
// clang-format on

static_assert(static_cast<int>(std::size(kTable)) == kTraceEventKindCount,
              "trace kind metadata table out of sync with TraceEventKind");

}  // namespace

const char* TraceKindCategoryName(TraceKindCategory category) {
  switch (category) {
    case TraceKindCategory::kPolicy:
      return "policy";
    case TraceKindCategory::kNet:
      return "net";
    case TraceKindCategory::kArq:
      return "arq";
    case TraceKindCategory::kWal:
      return "wal";
    case TraceKindCategory::kCrash:
      return "crash";
    case TraceKindCategory::kLease:
      return "lease";
    case TraceKindCategory::kSweep:
      return "sweep";
  }
  return "unknown";
}

const TraceKindInfo* AllTraceKinds() { return kTable; }

const TraceKindInfo& TraceKindInfoFor(TraceEventKind kind) {
  const int index = static_cast<int>(kind);
  MOBREP_CHECK_MSG(index >= 0 && index < kTraceEventKindCount,
                   "trace kind out of range");
  return kTable[index];
}

int64_t TraceEventEpoch(const TraceEvent& event) {
  switch (event.kind) {
    case TraceEventKind::kMessageSend:
    case TraceEventKind::kMessageDrop:
    case TraceEventKind::kArqAbandon:
      return event.a2 >> 1;
    case TraceEventKind::kMessageRecv:
    case TraceEventKind::kRetransmit:
      return event.a2;
    case TraceEventKind::kAckSend:
    case TraceEventKind::kHeartbeat:
      return event.a1;
    default:
      return 0;
  }
}

}  // namespace mobrep::obs
