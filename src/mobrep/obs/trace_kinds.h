#ifndef MOBREP_OBS_TRACE_KINDS_H_
#define MOBREP_OBS_TRACE_KINDS_H_

#include <cstdint>

#include "mobrep/obs/trace.h"

namespace mobrep::obs {

// Machine-readable metadata for every TraceEventKind: its stable name, the
// subsystem that emits it, the meaning of the logical timestamp and of each
// payload slot. This is the one table the offline analyzer, the exporters
// and the docs share; tests/obs/trace_kinds_test.cc asserts it covers every
// enumerator and stays in lockstep with TraceEventKindName.

// Broad grouping used by exporters and the analyzer to route events.
enum class TraceKindCategory : uint8_t {
  kPolicy,   // cost-simulator decisions
  kNet,      // channel-level send/recv/drop/retransmit/ack/heartbeat
  kArq,      // reliable-link internals (timeout, dedup, fencing, abandon)
  kWal,      // write-ahead-log appends/syncs/snapshots
  kCrash,    // crash/restart/resync lifecycle
  kLease,    // lease grants/renewals/reclaims/revocations, degraded reads
  kSweep,    // parallel-sweep cell spans
};

const char* TraceKindCategoryName(TraceKindCategory category);

struct TraceKindInfo {
  TraceEventKind kind;
  const char* name;          // == TraceEventKindName(kind)
  TraceKindCategory category;
  const char* ts;            // meaning of TraceEvent::ts
  const char* a0;            // meaning of each payload slot; "-" if unused
  const char* a1;
  const char* a2;
  const char* d0;
};

// Indexed by static_cast<int>(kind); exactly kTraceEventKindCount entries.
const TraceKindInfo* AllTraceKinds();

// Metadata for one kind (CHECKs the kind is in range).
const TraceKindInfo& TraceKindInfoFor(TraceEventKind kind);

// --- Integer payload values mirrored from mobrep::MessageType ---
//
// obs sits below net in the layering, so the analyzer cannot name the
// MessageType enumerators; these constants replicate the integer values it
// keys on (asserted in lockstep with net/message.h by
// tests/obs/trace_kinds_test.cc, like the MessageTypeLabel name table).
inline constexpr int64_t kTraceMsgReadRequest = 0;
inline constexpr int64_t kTraceMsgDataResponse = 1;
inline constexpr int64_t kTraceMsgAck = 5;
inline constexpr int64_t kTraceMsgResyncRequest = 6;
inline constexpr int64_t kTraceMsgResyncResponse = 7;
inline constexpr int64_t kTraceMsgHeartbeat = 8;

// Decodes the epoch packed into the network-plane payloads (see the
// per-kind comments in trace.h). Returns 0 for kinds without an epoch.
int64_t TraceEventEpoch(const TraceEvent& event);

}  // namespace mobrep::obs

#endif  // MOBREP_OBS_TRACE_KINDS_H_
