#include "mobrep/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "mobrep/common/check.h"

namespace mobrep::obs {

std::atomic<bool> g_trace_runtime_enabled{false};

namespace {

// Reads the MOBREP_TRACE environment variable once at process start so
// env-driven runs (benches under the obs-smoke CI job) need no code change.
struct TraceEnvInit {
  TraceEnvInit() {
    if constexpr (!kTracingCompiled) return;
    const char* env = std::getenv("MOBREP_TRACE");
    if (env != nullptr && env[0] != '\0' &&
        !(env[0] == '0' && env[1] == '\0')) {
      g_trace_runtime_enabled.store(true, std::memory_order_relaxed);
    }
  }
};
const TraceEnvInit trace_env_init;

uint64_t WallNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kPolicyDecision:
      return "policy_decision";
    case TraceEventKind::kMessageSend:
      return "message_send";
    case TraceEventKind::kMessageRecv:
      return "message_recv";
    case TraceEventKind::kMessageDrop:
      return "message_drop";
    case TraceEventKind::kRetransmit:
      return "retransmit";
    case TraceEventKind::kAckSend:
      return "ack_send";
    case TraceEventKind::kArqTimeout:
      return "arq_timeout";
    case TraceEventKind::kDuplicateDropped:
      return "duplicate_dropped";
    case TraceEventKind::kWalAppend:
      return "wal_append";
    case TraceEventKind::kWalSync:
      return "wal_sync";
    case TraceEventKind::kSweepCellBegin:
      return "sweep_cell_begin";
    case TraceEventKind::kSweepCellEnd:
      return "sweep_cell_end";
    case TraceEventKind::kWalSnapshot:
      return "wal_snapshot";
    case TraceEventKind::kNodeCrash:
      return "node_crash";
    case TraceEventKind::kNodeRestart:
      return "node_restart";
    case TraceEventKind::kResync:
      return "resync";
    case TraceEventKind::kFencedFrame:
      return "fenced_frame";
    case TraceEventKind::kHeartbeat:
      return "heartbeat";
    case TraceEventKind::kLeaseGrant:
      return "lease_grant";
    case TraceEventKind::kLeaseRenew:
      return "lease_renew";
    case TraceEventKind::kLeaseReclaim:
      return "lease_reclaim";
    case TraceEventKind::kLeaseRevoke:
      return "lease_revoke";
    case TraceEventKind::kDegradedRead:
      return "degraded_read";
    case TraceEventKind::kPartition:
      return "partition";
    case TraceEventKind::kArqAbandon:
      return "arq_abandon";
  }
  return "unknown";
}

TraceEvent MakeEvent(TraceEventKind kind, const char* label, double ts,
                     int64_t a0, int64_t a1, int64_t a2, double d0) {
  TraceEvent event;
  event.kind = kind;
  event.ts = ts;
  event.a0 = a0;
  event.a1 = a1;
  event.a2 = a2;
  event.d0 = d0;
  if (label != nullptr) {
    std::strncpy(event.label, label, sizeof(event.label) - 1);
    event.label[sizeof(event.label) - 1] = '\0';
  }
  return event;
}

// Per-thread emission state. One instance per thread per process; it binds
// lazily to whichever recorder the thread appends to (in practice the
// global one) and re-binds when that recorder is Clear()ed.
struct TraceRecorder::ThreadState {
  uint64_t recorder_id = 0;  // 0 = unbound (ids start at 1)
  uint64_t generation = 0;
  ThreadBuffer* buffer = nullptr;
  uint32_t tid = 0;
  int64_t scope = 0;
  uint64_t seq = 0;
};

TraceRecorder::ThreadState& TraceRecorder::Tls() {
  static thread_local ThreadState state;
  return state;
}

namespace {
std::atomic<uint64_t> g_next_recorder_id{1};
}  // namespace

TraceRecorder::TraceRecorder()
    : id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {}

void TraceRecorder::SetRuntimeEnabled(bool enabled) {
  if constexpr (!kTracingCompiled) return;
  g_trace_runtime_enabled.store(enabled, std::memory_order_relaxed);
}

void TraceRecorder::SetCapacityPerThread(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  MOBREP_CHECK_MSG(capacity >= 2, "trace ring needs at least two slots");
  capacity_per_thread_ = capacity;
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread(
    uint32_t* tid) {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer* buffer = buffers_.back().get();
  buffer->ring.resize(capacity_per_thread_);
  *tid = static_cast<uint32_t>(buffers_.size() - 1);
  return buffer;
}

void TraceRecorder::Append(TraceEvent event) {
  ThreadState& state = Tls();
  const uint64_t generation = generation_.load(std::memory_order_acquire);
  if (state.recorder_id != id_ || state.generation != generation ||
      state.buffer == nullptr) {
    state.recorder_id = id_;
    state.generation = generation;
    state.buffer = BufferForThisThread(&state.tid);
  }
  event.scope = state.scope;
  event.seq = state.seq++;
  event.tid = state.tid;
  event.wall_ns = WallNs();

  ThreadBuffer& buffer = *state.buffer;
  const size_t slot = static_cast<size_t>(buffer.total % buffer.ring.size());
  if (buffer.total >= buffer.ring.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  buffer.ring[slot] = event;
  ++buffer.total;
}

int64_t TraceRecorder::ReserveScopes(int64_t n) {
  MOBREP_CHECK(n >= 1);
  return next_scope_.fetch_add(n, std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceRecorder::MergedEvents() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buffer : buffers_) {
      const uint64_t size = buffer->ring.size();
      const uint64_t kept = std::min(buffer->total, size);
      const uint64_t first = buffer->total - kept;  // oldest surviving
      for (uint64_t i = first; i < buffer->total; ++i) {
        events.push_back(buffer->ring[static_cast<size_t>(i % size)]);
      }
    }
  }
  // (scope, seq) is unique per event as long as each scope is emitted by a
  // single thread (the TraceScope discipline); the stable sort keeps
  // buffer order for the degenerate multi-thread-scope-0 case so the
  // result is at least stable within one run.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.scope != b.scope) return a.scope < b.scope;
                     return a.seq < b.seq;
                   });
  return events;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.clear();
  next_scope_.store(1, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);
  // Reset the calling thread's ambient sequence so back-to-back traced
  // runs from one driver thread start identically.
  ThreadState& state = Tls();
  if (state.recorder_id == id_) {
    state.buffer = nullptr;
    state.seq = 0;
  }
}

TraceRecorder* TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return recorder;
}

TraceScope::TraceScope(int64_t scope_id) {
  TraceRecorder::ThreadState& state = TraceRecorder::Tls();
  saved_scope_ = state.scope;
  saved_seq_ = state.seq;
  state.scope = scope_id;
  state.seq = 0;
}

TraceScope::~TraceScope() {
  TraceRecorder::ThreadState& state = TraceRecorder::Tls();
  state.scope = saved_scope_;
  state.seq = saved_seq_;
}

}  // namespace mobrep::obs
