#include "mobrep/obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "mobrep/common/strings.h"

namespace mobrep::obs {
namespace {

// Field layout of the kPolicyDecision payload in TraceEvent::a1/a2.
constexpr int64_t kOpShift = 0;        // 4 bits
constexpr int64_t kActionShift = 4;    // 8 bits
constexpr int64_t kCopyBeforeBit = 12;
constexpr int64_t kCopyAfterBit = 13;
constexpr int64_t kWindowReadsShift = 0;   // 16 bits
constexpr int64_t kWindowWritesShift = 16;  // 16 bits
constexpr int64_t kWindowSizeShift = 32;    // 31 bits

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string Num(double value) {
  if (value != value) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

const char* OpName(int op) { return op == 1 ? "write" : "read"; }

const char* ActionName(int action) {
  // Mirrors mobrep::ActionKindName over mobrep::ActionKind; obs sits below
  // core, so the names are replicated here and locked by a test.
  static const char* kNames[] = {
      "local_read",      "remote_read",
      "remote_read_allocate", "write_no_copy",
      "write_propagate", "write_propagate_deallocate",
      "write_invalidate"};
  if (action < 0 || action >= static_cast<int>(std::size(kNames))) {
    return "unknown_action";
  }
  return kNames[action];
}

const char* MessageTypeLabel(int type) {
  // Mirrors mobrep::MessageTypeName over mobrep::MessageType.
  static const char* kNames[] = {
      "read_request",  "data_response",   "write_propagate",
      "delete_request", "invalidate",     "ack",
      "resync_request", "resync_response", "heartbeat",
      "lease_renew",    "lease_renew_ack", "lease_revoke",
      "lease_conflict", "lease_regrant"};
  if (type < 0 || type >= static_cast<int>(std::size(kNames))) {
    return "unknown_message";
  }
  return kNames[type];
}

TraceEvent EncodePolicyDecision(const PolicyDecision& decision) {
  const int64_t packed_state =
      (static_cast<int64_t>(decision.op & 0xf) << kOpShift) |
      (static_cast<int64_t>(decision.action & 0xff) << kActionShift) |
      (static_cast<int64_t>(decision.copy_before) << kCopyBeforeBit) |
      (static_cast<int64_t>(decision.copy_after) << kCopyAfterBit);
  int64_t packed_window = -1;
  if (decision.has_window) {
    const auto clamp16 = [](int v) {
      return static_cast<int64_t>(std::clamp(v, 0, 0xffff));
    };
    packed_window = (clamp16(decision.window_reads) << kWindowReadsShift) |
                    (clamp16(decision.window_writes) << kWindowWritesShift) |
                    (static_cast<int64_t>(std::max(decision.window_size, 0))
                     << kWindowSizeShift);
  }
  return MakeEvent(TraceEventKind::kPolicyDecision, decision.policy.c_str(),
                   static_cast<double>(decision.request_index),
                   decision.request_index, packed_state, packed_window,
                   decision.cost);
}

PolicyDecision DecodePolicyDecision(const TraceEvent& event) {
  PolicyDecision decision;
  decision.request_index = event.a0;
  decision.op = static_cast<int>((event.a1 >> kOpShift) & 0xf);
  decision.action = static_cast<int>((event.a1 >> kActionShift) & 0xff);
  decision.copy_before = ((event.a1 >> kCopyBeforeBit) & 1) != 0;
  decision.copy_after = ((event.a1 >> kCopyAfterBit) & 1) != 0;
  decision.cost = event.d0;
  decision.policy = event.label;
  if (event.a2 >= 0) {
    decision.has_window = true;
    decision.window_reads =
        static_cast<int>((event.a2 >> kWindowReadsShift) & 0xffff);
    decision.window_writes =
        static_cast<int>((event.a2 >> kWindowWritesShift) & 0xffff);
    decision.window_size =
        static_cast<int>(event.a2 >> kWindowSizeShift);
  }
  return decision;
}

std::string ExportChromeTrace(const std::vector<TraceEvent>& events) {
  return ExportChromeTrace(events, {});
}

std::string ExportChromeTrace(const std::vector<TraceEvent>& events,
                              const std::vector<std::string>& extra_events) {
  std::ostringstream out;
  out << "{\"traceEvents\": [\n";
  bool first = true;
  const auto emit = [&](const std::string& json) {
    out << (first ? "  " : ",\n  ") << json;
    first = false;
  };

  emit("{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
       "\"args\": {\"name\": \"sweep (wall clock)\"}}");
  emit("{\"ph\": \"M\", \"pid\": 2, \"name\": \"process_name\", "
       "\"args\": {\"name\": \"simulation (logical time)\"}}");

  // Wall-clock base so span timestamps start near zero.
  uint64_t base_ns = 0;
  for (const TraceEvent& event : events) {
    if (event.wall_ns != 0 && (base_ns == 0 || event.wall_ns < base_ns)) {
      base_ns = event.wall_ns;
    }
  }

  // Logical lanes on pid 2: one tid per distinct site label, in first-seen
  // (merged, hence deterministic) order.
  std::map<std::string, int> lanes;
  const auto lane = [&](const std::string& label) {
    auto [it, inserted] =
        lanes.emplace(label, static_cast<int>(lanes.size()) + 1);
    if (inserted) {
      emit(StrFormat("{\"ph\": \"M\", \"pid\": 2, \"tid\": %d, "
                     "\"name\": \"thread_name\", \"args\": {\"name\": "
                     "\"%s\"}}",
                     it->second, JsonEscape(label).c_str()));
    }
    return it->second;
  };

  // Open sweep-cell spans by scope, waiting for their end event.
  std::map<int64_t, TraceEvent> open_cells;

  for (const TraceEvent& event : events) {
    switch (event.kind) {
      case TraceEventKind::kSweepCellBegin:
        open_cells[event.scope] = event;
        break;
      case TraceEventKind::kSweepCellEnd: {
        const auto it = open_cells.find(event.scope);
        if (it == open_cells.end()) break;
        const TraceEvent& begin = it->second;
        const double ts_us =
            static_cast<double>(begin.wall_ns - base_ns) / 1000.0;
        const double dur_us =
            static_cast<double>(event.wall_ns - begin.wall_ns) / 1000.0;
        emit(StrFormat(
            "{\"ph\": \"X\", \"pid\": 1, \"tid\": %u, \"ts\": %s, "
            "\"dur\": %s, \"name\": \"%s cell %lld\", "
            "\"args\": {\"cell\": %lld, \"scope\": %lld}}",
            begin.tid, Num(ts_us).c_str(), Num(dur_us).c_str(),
            JsonEscape(begin.label).c_str(),
            static_cast<long long>(begin.a0),
            static_cast<long long>(begin.a0),
            static_cast<long long>(begin.scope)));
        open_cells.erase(it);
        break;
      }
      case TraceEventKind::kPolicyDecision: {
        const PolicyDecision d = DecodePolicyDecision(event);
        std::string args = StrFormat(
            "{\"request\": %lld, \"op\": \"%s\", \"action\": \"%s\", "
            "\"copy_before\": %s, \"copy_after\": %s, \"cost\": %s",
            static_cast<long long>(d.request_index), OpName(d.op),
            ActionName(d.action), d.copy_before ? "true" : "false",
            d.copy_after ? "true" : "false", Num(d.cost).c_str());
        if (d.has_window) {
          args += StrFormat(", \"window_k\": %d, \"window_reads\": %d, "
                            "\"window_writes\": %d",
                            d.window_size, d.window_reads, d.window_writes);
        }
        args += "}";
        emit(StrFormat(
            "{\"ph\": \"i\", \"s\": \"t\", \"pid\": 2, \"tid\": %d, "
            "\"ts\": %s, \"name\": \"%s\", \"args\": %s}",
            lane(std::string("policy ") + event.label),
            Num(event.ts).c_str(), ActionName(d.action), args.c_str()));
        break;
      }
      default: {
        // Protocol / WAL events: instants on the label's logical lane; sim
        // time is scaled to microseconds so sub-unit latencies are visible.
        emit(StrFormat(
            "{\"ph\": \"i\", \"s\": \"t\", \"pid\": 2, \"tid\": %d, "
            "\"ts\": %s, \"name\": \"%s\", \"args\": {\"a0\": %lld, "
            "\"a1\": %lld, \"a2\": %lld}}",
            lane(event.label), Num(event.ts * 1e6).c_str(),
            TraceEventKindName(event.kind), static_cast<long long>(event.a0),
            static_cast<long long>(event.a1),
            static_cast<long long>(event.a2)));
        break;
      }
    }
  }
  for (const std::string& json : extra_events) emit(json);
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out.str();
}

std::string ExportAuditLog(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  int64_t decisions = 0;
  int64_t allocations = 0;
  int64_t deallocations = 0;
  double total_cost = 0.0;
  for (const TraceEvent& event : events) {
    if (event.kind != TraceEventKind::kPolicyDecision) continue;
    const PolicyDecision d = DecodePolicyDecision(event);
    ++decisions;
    total_cost += d.cost;
    std::string line = StrFormat(
        "req %6lld  %-5s  %-26s  copy %d->%d  cost %-8s",
        static_cast<long long>(d.request_index), OpName(d.op),
        ActionName(d.action), d.copy_before ? 1 : 0, d.copy_after ? 1 : 0,
        StrFormat("%.4g", d.cost).c_str());
    if (d.has_window) {
      line += StrFormat("  window[k=%d r=%d w=%d]", d.window_size,
                        d.window_reads, d.window_writes);
    }
    if (!d.copy_before && d.copy_after) {
      ++allocations;
      line += "  => ALLOCATE (replica moves to MC)";
    } else if (d.copy_before && !d.copy_after) {
      ++deallocations;
      line += "  => DEALLOCATE (replica leaves MC)";
    }
    out << line << "\n";
  }
  out << StrFormat(
      "-- %lld decisions, %lld allocations, %lld deallocations, "
      "total cost %.6g\n",
      static_cast<long long>(decisions), static_cast<long long>(allocations),
      static_cast<long long>(deallocations), total_cost);
  return out.str();
}

std::string ExportDeterministicText(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  for (const TraceEvent& event : events) {
    out << StrFormat(
        "scope=%lld seq=%llu kind=%s label=%s ts=%s a0=%lld a1=%lld "
        "a2=%lld d0=%s\n",
        static_cast<long long>(event.scope),
        static_cast<unsigned long long>(event.seq),
        TraceEventKindName(event.kind), event.label, Num(event.ts).c_str(),
        static_cast<long long>(event.a0), static_cast<long long>(event.a1),
        static_cast<long long>(event.a2), Num(event.d0).c_str());
  }
  return out.str();
}

bool WriteFileOrWarn(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  out.close();
  if (!out) {
    std::fprintf(stderr, "warning: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace mobrep::obs
