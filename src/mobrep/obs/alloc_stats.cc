#include "mobrep/obs/alloc_stats.h"

#include <mutex>
#include <vector>

#include "mobrep/obs/metrics.h"

namespace mobrep::obs {
namespace {

struct Registry {
  std::mutex mu;
  // Owned blocks; never freed so aggregation after thread exit is safe.
  std::vector<AllocCounters*> blocks;
};

Registry& GlobalRegistry() {
  static Registry* r = new Registry();
  return *r;
}

}  // namespace

AllocCounters& LocalAllocCounters() {
  thread_local AllocCounters* block = [] {
    auto* fresh = new AllocCounters();
    Registry& r = GlobalRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.blocks.push_back(fresh);
    return fresh;
  }();
  return *block;
}

AllocCounters AggregateAllocCounters() {
  AllocCounters total;
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const AllocCounters* block : r.blocks) {
    total += *block;
  }
  return total;
}

void ResetAllocCounters() {
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (AllocCounters* block : r.blocks) {
    *block = AllocCounters();
  }
}

void PublishAllocMetrics(MetricsRegistry* registry) {
  const AllocCounters total = AggregateAllocCounters();
  registry->GetGauge("mobrep_alloc_event_inline")
      ->Set(static_cast<double>(total.event_inline));
  registry->GetGauge("mobrep_alloc_event_heap")
      ->Set(static_cast<double>(total.event_heap));
  registry->GetGauge("mobrep_alloc_msg_reuses")
      ->Set(static_cast<double>(total.msg_reuses));
  registry->GetGauge("mobrep_alloc_msg_slab_allocs")
      ->Set(static_cast<double>(total.msg_slab_allocs));
  registry->GetGauge("mobrep_alloc_msg_legacy_allocs")
      ->Set(static_cast<double>(total.msg_legacy_allocs));
  registry->GetGauge("mobrep_alloc_window_spills")
      ->Set(static_cast<double>(total.window_spills));
}

}  // namespace mobrep::obs
