#ifndef MOBREP_OBS_TRACE_EXPORT_H_
#define MOBREP_OBS_TRACE_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mobrep/obs/trace.h"

namespace mobrep::obs {

// Exporters over a merged event stream (TraceRecorder::MergedEvents()).
//
// Three renderings, three audiences:
//   * ExportChromeTrace — Chrome trace-event JSON, loadable in Perfetto or
//     chrome://tracing. Sweep-cell spans land on wall-clock per-thread
//     lanes (pid 1); protocol/policy events land on logical-time lanes per
//     site label (pid 2).
//   * ExportAuditLog — the human-readable decision audit: one line per
//     policy decision keyed to its Request index, naming the action, the
//     copy-state transition and the window state, with relocations tagged.
//   * ExportDeterministicText — a stable line-per-event dump of the
//     deterministic fields only (no wall clock, no physical thread), used
//     by tests to assert identical traces across thread counts.

// The policy-decision payload carried by a kPolicyDecision event. The
// encode/decode pair is the one schema shared by the emitter
// (core/cost_simulator.cc) and the exporters; op/action use the integer
// values of mobrep::Op / mobrep::ActionKind (obs sits below core in the
// layering, so the dependency is by value, asserted in core's tests).
struct PolicyDecision {
  int64_t request_index = 0;
  int op = 0;      // mobrep::Op
  int action = 0;  // mobrep::ActionKind
  bool copy_before = false;
  bool copy_after = false;
  bool has_window = false;  // sliding-window policies only
  int window_size = 0;
  int window_reads = 0;
  int window_writes = 0;
  double cost = 0.0;
  std::string policy;  // truncated to the event label width
};

TraceEvent EncodePolicyDecision(const PolicyDecision& decision);
PolicyDecision DecodePolicyDecision(const TraceEvent& event);

// Stable names for the integer payloads above; kept in lockstep with
// core/net (asserted by tests/obs/trace_export_test.cc).
const char* OpName(int op);
const char* ActionName(int action);
const char* MessageTypeLabel(int type);

std::string ExportChromeTrace(const std::vector<TraceEvent>& events);
// As above, with pre-rendered extra JSON trace events (no trailing commas)
// appended after the per-event stream — the hook the causal analyzer uses
// to add conversation slices, flow arrows and anomaly markers.
std::string ExportChromeTrace(const std::vector<TraceEvent>& events,
                              const std::vector<std::string>& extra_events);
std::string ExportAuditLog(const std::vector<TraceEvent>& events);
std::string ExportDeterministicText(const std::vector<TraceEvent>& events);

// Writes `content` to `path`; false (with a stderr note) on I/O failure.
bool WriteFileOrWarn(const std::string& path, const std::string& content);

}  // namespace mobrep::obs

#endif  // MOBREP_OBS_TRACE_EXPORT_H_
