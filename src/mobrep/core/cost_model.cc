#include "mobrep/core/cost_model.h"

#include <string>

#include "mobrep/common/check.h"
#include "mobrep/common/strings.h"

namespace mobrep {

const char* ActionKindName(ActionKind kind) {
  switch (kind) {
    case ActionKind::kLocalRead:
      return "local_read";
    case ActionKind::kRemoteRead:
      return "remote_read";
    case ActionKind::kRemoteReadAllocate:
      return "remote_read_allocate";
    case ActionKind::kWriteNoCopy:
      return "write_no_copy";
    case ActionKind::kWritePropagate:
      return "write_propagate";
    case ActionKind::kWritePropagateDeallocate:
      return "write_propagate_deallocate";
    case ActionKind::kWriteInvalidate:
      return "write_invalidate";
  }
  return "unknown";
}

bool ActionLegalFor(ActionKind kind, Op op, bool copy_before) {
  switch (kind) {
    case ActionKind::kLocalRead:
      return op == Op::kRead && copy_before;
    case ActionKind::kRemoteRead:
    case ActionKind::kRemoteReadAllocate:
      return op == Op::kRead && !copy_before;
    case ActionKind::kWriteNoCopy:
      return op == Op::kWrite && !copy_before;
    case ActionKind::kWritePropagate:
    case ActionKind::kWritePropagateDeallocate:
    case ActionKind::kWriteInvalidate:
      return op == Op::kWrite && copy_before;
  }
  return false;
}

bool CopyStateAfter(ActionKind kind, bool copy_before) {
  switch (kind) {
    case ActionKind::kLocalRead:
    case ActionKind::kRemoteRead:
    case ActionKind::kWriteNoCopy:
    case ActionKind::kWritePropagate:
      return copy_before;
    case ActionKind::kRemoteReadAllocate:
      return true;
    case ActionKind::kWritePropagateDeallocate:
    case ActionKind::kWriteInvalidate:
      return false;
  }
  return copy_before;
}

ActionWire WireFor(ActionKind kind) {
  switch (kind) {
    case ActionKind::kLocalRead:
    case ActionKind::kWriteNoCopy:
      return {0, 0, 0};
    case ActionKind::kRemoteRead:
    case ActionKind::kRemoteReadAllocate:
      // Control read-request MC->SC + data response SC->MC, one connection.
      return {1, 1, 1};
    case ActionKind::kWritePropagate:
      // Data message SC->MC, one connection.
      return {1, 0, 1};
    case ActionKind::kWritePropagateDeallocate:
      // Data message SC->MC + delete-request (window) MC->SC. The reply
      // shares the write-propagation connection in the connection model.
      return {1, 1, 1};
    case ActionKind::kWriteInvalidate:
      // Delete-request control message SC->MC only (SW1), one connection.
      return {0, 1, 1};
  }
  return {0, 0, 0};
}

CostModel CostModel::Connection() {
  return CostModel(CostModelKind::kConnection, 0.0);
}

CostModel CostModel::Message(double omega) {
  MOBREP_CHECK_MSG(omega >= 0.0 && omega <= 1.0,
                   "omega must be in [0, 1] (control messages are not longer "
                   "than data messages)");
  return CostModel(CostModelKind::kMessage, omega);
}

double CostModel::Price(ActionKind action) const {
  const ActionWire wire = WireFor(action);
  if (kind_ == CostModelKind::kConnection) {
    return static_cast<double>(wire.connections);
  }
  return static_cast<double>(wire.data_messages) +
         omega_ * static_cast<double>(wire.control_messages);
}

double CostModel::RemoteReadPrice() const {
  return Price(ActionKind::kRemoteRead);
}

std::string CostModel::name() const {
  if (kind_ == CostModelKind::kConnection) return "connection";
  return StrFormat("message(omega=%.3f)", omega_);
}

}  // namespace mobrep
