#include "mobrep/core/threshold_policies.h"

#include <memory>
#include <string>

#include "mobrep/common/check.h"
#include "mobrep/common/strings.h"

namespace mobrep {

T1mPolicy::T1mPolicy(int m) : m_(m) {
  MOBREP_CHECK_MSG(m >= 1, "T1m requires m >= 1");
  Reset();
}

void T1mPolicy::Reset() {
  consecutive_reads_ = 0;
  has_copy_ = false;
}

ActionKind T1mPolicy::OnRequest(Op op) {
  if (op == Op::kRead) {
    if (has_copy_) return ActionKind::kLocalRead;
    ++consecutive_reads_;
    if (consecutive_reads_ >= m_) {
      // The m-th consecutive read switches to the two-copies scheme.
      has_copy_ = true;
      consecutive_reads_ = 0;
      return ActionKind::kRemoteReadAllocate;
    }
    return ActionKind::kRemoteRead;
  }
  // Write.
  consecutive_reads_ = 0;
  if (!has_copy_) return ActionKind::kWriteNoCopy;
  // The first write after switching reverts to the one-copy scheme.
  has_copy_ = false;
  return ActionKind::kWritePropagateDeallocate;
}

void T1mPolicy::SetState(bool has_copy, int consecutive_reads) {
  MOBREP_CHECK(consecutive_reads >= 0 && consecutive_reads < m_);
  has_copy_ = has_copy;
  consecutive_reads_ = consecutive_reads;
}

std::string T1mPolicy::name() const { return StrFormat("T1-%d", m_); }

std::unique_ptr<AllocationPolicy> T1mPolicy::Clone() const {
  return std::make_unique<T1mPolicy>(*this);
}

T2mPolicy::T2mPolicy(int m) : m_(m) {
  MOBREP_CHECK_MSG(m >= 1, "T2m requires m >= 1");
  Reset();
}

void T2mPolicy::Reset() {
  consecutive_writes_ = 0;
  has_copy_ = true;
}

ActionKind T2mPolicy::OnRequest(Op op) {
  if (op == Op::kWrite) {
    if (!has_copy_) return ActionKind::kWriteNoCopy;
    ++consecutive_writes_;
    if (consecutive_writes_ >= m_) {
      // The m-th consecutive write switches to the one-copy scheme.
      has_copy_ = false;
      consecutive_writes_ = 0;
      return ActionKind::kWritePropagateDeallocate;
    }
    return ActionKind::kWritePropagate;
  }
  // Read.
  consecutive_writes_ = 0;
  if (has_copy_) return ActionKind::kLocalRead;
  // The first read after switching re-allocates via its data response.
  has_copy_ = true;
  return ActionKind::kRemoteReadAllocate;
}

void T2mPolicy::SetState(bool has_copy, int consecutive_writes) {
  MOBREP_CHECK(consecutive_writes >= 0 && consecutive_writes < m_);
  has_copy_ = has_copy;
  consecutive_writes_ = consecutive_writes;
}

std::string T2mPolicy::name() const { return StrFormat("T2-%d", m_); }

std::unique_ptr<AllocationPolicy> T2mPolicy::Clone() const {
  return std::make_unique<T2mPolicy>(*this);
}

}  // namespace mobrep
