#ifndef MOBREP_CORE_SLIDING_WINDOW_POLICY_H_
#define MOBREP_CORE_SLIDING_WINDOW_POLICY_H_

#include <initializer_list>
#include <memory>
#include <span>
#include <string>

#include "mobrep/core/policy.h"
#include "mobrep/core/window_tracker.h"

namespace mobrep {

// SWk, the sliding-window dynamic allocation algorithm of paper §4.
//
// A window of the latest k relevant requests is maintained (by whichever of
// the MC/SC is "in charge"; this single-machine policy object models the
// merged state — the distributed two-node version lives in
// mobrep/protocol/). After each request:
//   * more reads than writes and no copy at the MC  -> allocate. This can
//     only trigger on a read, so the allocation indication and the window
//     piggyback on the read's data response (free).
//   * more writes than reads and a copy at the MC   -> deallocate. This can
//     only trigger on a write, so the MC returns a delete-request control
//     message carrying the window.
//
// For k == 1 the paper defines the optimized variant SW1: a write while the
// MC holds a copy does not propagate data at all; the SC sends just a
// delete-request (cost omega in the message model). Pass
// `sw1_delete_optimization = true` (the default for k == 1 via NewSw1) to
// get that behaviour; with the flag off, k == 1 behaves like the generic
// SWk rule (useful for model comparisons; identical in the connection
// model).
class SlidingWindowPolicy final : public AllocationPolicy {
 public:
  // k >= 1; the paper assumes odd k (no majority ties). Even k is accepted
  // (strict majorities still drive transitions) but is non-canonical.
  // The initial state is: no copy at the MC, window filled with writes.
  explicit SlidingWindowPolicy(int k, bool sw1_delete_optimization = false);

  // The paper's SW1: sliding window of size 1 with the delete-request
  // optimization.
  static std::unique_ptr<SlidingWindowPolicy> NewSw1();

  ActionKind OnRequest(Op op) override;
  bool has_copy() const override { return has_copy_; }
  void Reset() override;
  std::string name() const override;
  std::unique_ptr<AllocationPolicy> Clone() const override;

  int window_size() const { return window_.size(); }
  bool sw1_delete_optimization() const { return sw1_delete_optimization_; }
  const WindowTracker& window() const { return window_; }

  // Overrides the initial/current state; used by tests and by the protocol
  // layer when reconstructing state from a piggybacked window. The span
  // form accepts any contiguous Op sequence (std::vector, Window) without
  // materializing a copy; the initializer_list form keeps braced literals
  // working (a braced list does not convert to std::span).
  void SetState(bool has_copy, std::span<const Op> window_contents);
  void SetState(bool has_copy, std::initializer_list<Op> window_contents) {
    SetState(has_copy,
             std::span<const Op>(window_contents.begin(),
                                 window_contents.size()));
  }

 private:
  WindowTracker window_;
  bool has_copy_ = false;
  bool sw1_delete_optimization_;
};

}  // namespace mobrep

#endif  // MOBREP_CORE_SLIDING_WINDOW_POLICY_H_
