#include "mobrep/core/policy.h"

namespace mobrep {

// AllocationPolicy is an interface; the out-of-line key function anchors the
// vtable in this translation unit.

}  // namespace mobrep
