#ifndef MOBREP_CORE_POLICY_FACTORY_H_
#define MOBREP_CORE_POLICY_FACTORY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mobrep/common/status.h"
#include "mobrep/core/policy.h"

namespace mobrep {

// Which allocation algorithm to build.
enum class PolicyKind : uint8_t {
  kSt1,          // static one-copy
  kSt2,          // static two-copies
  kSw,           // sliding window, parameter k
  kSw1,          // SW1, the optimized window-of-one algorithm
  kT1,           // modified static one-copy, parameter m
  kT2,           // modified static two-copies, parameter m
};

// Declarative description of a policy; parseable from text so tools, tests
// and benchmarks can share one spelling.
struct PolicySpec {
  PolicyKind kind = PolicyKind::kSt1;
  int parameter = 0;  // k for kSw, m for kT1/kT2; ignored otherwise

  std::string ToString() const;
};

// Accepted spellings (case-insensitive):
//   "st1", "st2", "sw1", "sw:<k>", "t1:<m>", "t2:<m>"
Result<PolicySpec> ParsePolicySpec(std::string_view text);

// Instantiates the policy described by `spec`.
std::unique_ptr<AllocationPolicy> CreatePolicy(const PolicySpec& spec);

// Parses and instantiates in one step.
Result<std::unique_ptr<AllocationPolicy>> CreatePolicyFromString(
    std::string_view text);

// A representative roster used by benchmarks and property tests:
// ST1, ST2, SW1, SW3, SW5, SW9, SW15, T1-7, T2-7.
std::vector<PolicySpec> StandardPolicyRoster();

}  // namespace mobrep

#endif  // MOBREP_CORE_POLICY_FACTORY_H_
