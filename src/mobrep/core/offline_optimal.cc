#include "mobrep/core/offline_optimal.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "mobrep/common/check.h"

namespace mobrep {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

double OfflineTransitionCost(Op op, bool before, bool after,
                             const CostModel& model,
                             OfflineAdversary adversary) {
  if (op == Op::kRead) {
    if (before) return 0.0;  // local read; dropping afterwards is free
    return model.RemoteReadPrice();  // keep-or-not piggybacks for free
  }
  // Write.
  if (!after) return 0.0;  // no copy after: at worst drop beforehand, free
  if (!before && adversary == OfflineAdversary::kAcquireAtReadsOnly) {
    return kInf;  // pushing the value at a write is disallowed
  }
  // Copy after the write: the value must reach the MC (push or propagate).
  return model.Price(ActionKind::kWritePropagate);
}

OfflineSolution SolveOfflineOptimal(const Schedule& schedule,
                                    const CostModel& model,
                                    bool initial_copy,
                                    OfflineAdversary adversary) {
  const size_t n = schedule.size();

  // dp[s] = min cost of the processed prefix ending in copy state s.
  double dp[2] = {initial_copy ? kInf : 0.0, initial_copy ? 0.0 : kInf};
  // Parent pointers for trace reconstruction.
  std::vector<uint8_t> parent(2 * n, 0);

  for (size_t i = 0; i < n; ++i) {
    const Op op = schedule[i];
    double next[2] = {kInf, kInf};
    for (int after = 0; after < 2; ++after) {
      for (int before = 0; before < 2; ++before) {
        if (dp[before] == kInf) continue;
        const double step = OfflineTransitionCost(
            op, before != 0, after != 0, model, adversary);
        if (step == kInf) continue;
        const double c = dp[before] + step;
        if (c < next[after]) {
          next[after] = c;
          parent[2 * i + static_cast<size_t>(after)] =
              static_cast<uint8_t>(before);
        }
      }
    }
    dp[0] = next[0];
    dp[1] = next[1];
  }

  OfflineSolution solution;
  solution.cost = std::min(dp[0], dp[1]);
  solution.copy_during.assign(n, false);

  if (n > 0) {
    int state = dp[0] <= dp[1] ? 0 : 1;
    for (size_t i = n; i-- > 0;) {
      solution.copy_during[i] = state != 0;
      state = parent[2 * i + static_cast<size_t>(state)];
    }
  }
  return solution;
}

double OfflineOptimalCost(const Schedule& schedule, const CostModel& model,
                          bool initial_copy, OfflineAdversary adversary) {
  double dp[2] = {initial_copy ? kInf : 0.0, initial_copy ? 0.0 : kInf};
  for (const Op op : schedule) {
    double next[2] = {kInf, kInf};
    for (int after = 0; after < 2; ++after) {
      for (int before = 0; before < 2; ++before) {
        if (dp[before] == kInf) continue;
        const double step = OfflineTransitionCost(
            op, before != 0, after != 0, model, adversary);
        if (step == kInf) continue;
        next[after] = std::min(next[after], dp[before] + step);
      }
    }
    dp[0] = next[0];
    dp[1] = next[1];
  }
  return std::min(dp[0], dp[1]);
}

}  // namespace mobrep
