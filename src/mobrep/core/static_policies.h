#ifndef MOBREP_CORE_STATIC_POLICIES_H_
#define MOBREP_CORE_STATIC_POLICIES_H_

#include <memory>
#include <string>

#include "mobrep/core/policy.h"

namespace mobrep {

// ST1 (paper §2): the static one-copy allocation scheme. Only the SC holds a
// copy; every read is a remote read, every write is free.
class St1Policy final : public AllocationPolicy {
 public:
  St1Policy() = default;

  ActionKind OnRequest(Op op) override;
  bool has_copy() const override { return false; }
  void Reset() override {}
  std::string name() const override { return "ST1"; }
  std::unique_ptr<AllocationPolicy> Clone() const override;
};

// ST2 (paper §2): the static two-copies allocation scheme. The MC always
// holds a copy; every read is local, every write is propagated.
class St2Policy final : public AllocationPolicy {
 public:
  St2Policy() = default;

  ActionKind OnRequest(Op op) override;
  bool has_copy() const override { return true; }
  void Reset() override {}
  std::string name() const override { return "ST2"; }
  std::unique_ptr<AllocationPolicy> Clone() const override;
};

}  // namespace mobrep

#endif  // MOBREP_CORE_STATIC_POLICIES_H_
