#include "mobrep/core/window_tracker.h"

#include <bit>
#include <vector>

#include "mobrep/common/check.h"

namespace mobrep {

WindowTracker::WindowTracker(int k) {
  MOBREP_CHECK_MSG(k >= 1, "window size must be at least 1");
  size_ = k;
  words_.assign((static_cast<size_t>(k) + 63) / 64, 0);
}

void WindowTracker::Fill(Op op) {
  const bool write = op == Op::kWrite;
  for (auto& word : words_) word = write ? ~uint64_t{0} : 0;
  if (write) {
    // Clear the tail word's unused bits so popcount-based recounts stay
    // exact.
    const int tail = size_ & 63;
    if (tail != 0) words_.back() &= (uint64_t{1} << tail) - 1;
  }
  head_ = 0;
  write_count_ = write ? size_ : 0;
}

namespace {

// Walks the ring oldest-first into any push_back-able container.
template <typename Out>
void AppendContents(const std::vector<uint64_t>& words, int size, int head,
                    Out& out) {
  int i = head;
  for (int n = 0; n < size; ++n) {
    const uint64_t word = words[static_cast<size_t>(i >> 6)];
    out.push_back(static_cast<Op>((word >> (i & 63)) & 1u));
    i = i + 1 == size ? 0 : i + 1;
  }
}

}  // namespace

std::vector<Op> WindowTracker::Contents() const {
  std::vector<Op> out;
  out.reserve(static_cast<size_t>(size_));
  AppendContents(words_, size_, head_, out);
  return out;
}

Window WindowTracker::SmallContents() const {
  Window out;
  AppendContents(words_, size_, head_, out);
  return out;
}

void WindowTracker::SetContents(std::span<const Op> ops) {
  MOBREP_CHECK_MSG(static_cast<int>(ops.size()) == size_,
                   "window transfer must preserve the window size");
  for (auto& word : words_) word = 0;
  for (int i = 0; i < size_; ++i) {
    if (ops[static_cast<size_t>(i)] == Op::kWrite) {
      words_[static_cast<size_t>(i >> 6)] |= uint64_t{1} << (i & 63);
    }
  }
  head_ = 0;
  write_count_ = 0;
  for (const uint64_t word : words_) {
    write_count_ += std::popcount(word);
  }
}

}  // namespace mobrep
