#include "mobrep/core/window_tracker.h"

#include <vector>

#include "mobrep/common/check.h"

namespace mobrep {

WindowTracker::WindowTracker(int k) {
  MOBREP_CHECK_MSG(k >= 1, "window size must be at least 1");
  slots_.assign(static_cast<size_t>(k), Op::kRead);
}

void WindowTracker::Fill(Op op) {
  for (auto& slot : slots_) slot = op;
  head_ = 0;
  write_count_ = op == Op::kWrite ? size() : 0;
}

Op WindowTracker::Push(Op op) {
  const Op dropped = slots_[static_cast<size_t>(head_)];
  slots_[static_cast<size_t>(head_)] = op;
  head_ = (head_ + 1) % size();
  if (dropped == Op::kWrite) --write_count_;
  if (op == Op::kWrite) ++write_count_;
  return dropped;
}

std::vector<Op> WindowTracker::Contents() const {
  std::vector<Op> out;
  out.reserve(slots_.size());
  for (int i = 0; i < size(); ++i) {
    out.push_back(slots_[static_cast<size_t>((head_ + i) % size())]);
  }
  return out;
}

void WindowTracker::SetContents(const std::vector<Op>& ops) {
  MOBREP_CHECK_MSG(static_cast<int>(ops.size()) == size(),
                   "window transfer must preserve the window size");
  slots_ = ops;
  head_ = 0;
  write_count_ = 0;
  for (Op op : slots_) {
    if (op == Op::kWrite) ++write_count_;
  }
}

}  // namespace mobrep
