#ifndef MOBREP_CORE_POLICY_H_
#define MOBREP_CORE_POLICY_H_

#include <memory>
#include <string>

#include "mobrep/core/cost_model.h"
#include "mobrep/core/schedule.h"

namespace mobrep {

// An online data allocation algorithm for a single data item and a single
// mobile computer (paper §2).
//
// The policy sees relevant requests one at a time (it is online: it must
// service the current request without knowing the next one) and for each
// request returns the action it takes. The action implies both the
// communication performed (priced by a CostModel) and the MC copy-state
// transition; the harness verifies these invariants.
//
// Implementations are deterministic state machines; Clone() produces an
// independent copy in the same state, Reset() returns to the initial state.
class AllocationPolicy {
 public:
  virtual ~AllocationPolicy() = default;

  // Services one request and returns the action taken. The returned action
  // must be legal for (op, has_copy()-before) per ActionLegalFor().
  virtual ActionKind OnRequest(Op op) = 0;

  // True iff the MC currently holds a copy of the data item.
  virtual bool has_copy() const = 0;

  // Returns to the initial state.
  virtual void Reset() = 0;

  // Short identifier, e.g. "ST1", "SW9", "T1-15".
  virtual std::string name() const = 0;

  // Independent copy in the current state.
  virtual std::unique_ptr<AllocationPolicy> Clone() const = 0;
};

}  // namespace mobrep

#endif  // MOBREP_CORE_POLICY_H_
