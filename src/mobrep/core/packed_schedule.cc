#include "mobrep/core/packed_schedule.h"

#include <bit>

#include "mobrep/common/check.h"

namespace mobrep {

PackedSchedule::PackedSchedule(const Schedule& ops) {
  words_.reserve((ops.size() + 63) / 64);
  uint64_t word = 0;
  int filled = 0;
  for (const Op op : ops) {
    word |= static_cast<uint64_t>(op) << filled;
    if (++filled == 64) {
      words_.push_back(word);
      word = 0;
      filled = 0;
    }
  }
  if (filled > 0) words_.push_back(word);
  size_ = static_cast<int64_t>(ops.size());
}

Schedule PackedSchedule::ToSchedule() const {
  Schedule out;
  out.reserve(static_cast<size_t>(size_));
  for (int64_t i = 0; i < size_; ++i) out.push_back(Get(i));
  return out;
}

void PackedSchedule::Append(Op op) {
  const int bit = static_cast<int>(size_ & 63);
  if (bit == 0) words_.push_back(0);
  words_.back() |= static_cast<uint64_t>(op) << bit;
  ++size_;
}

void PackedSchedule::AppendWord(uint64_t bits, int count) {
  MOBREP_CHECK(count >= 1 && count <= 64);
  if (count < 64) bits &= (uint64_t{1} << count) - 1;
  const int bit = static_cast<int>(size_ & 63);
  if (bit == 0) {
    words_.push_back(bits);
  } else {
    words_.back() |= bits << bit;
    const int spill = bit + count - 64;
    if (spill > 0) words_.push_back(bits >> (64 - bit));
  }
  size_ += count;
}

int64_t PackedSchedule::CountWrites() const {
  int64_t writes = 0;
  for (const uint64_t word : words_) writes += std::popcount(word);
  return writes;
}

}  // namespace mobrep
