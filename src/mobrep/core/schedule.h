#ifndef MOBREP_CORE_SCHEDULE_H_
#define MOBREP_CORE_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mobrep/common/small_vector.h"
#include "mobrep/common/status.h"

namespace mobrep {

// A relevant request in the paper's model: reads are issued at the mobile
// computer (MC), writes at the stationary computer (SC). All other requests
// have allocation-independent cost and are ignored (paper §3).
enum class Op : uint8_t {
  kRead = 0,
  kWrite = 1,
};

// Returns 'r' or 'w'.
char OpToChar(Op op);

// A schedule is a finite sequence of relevant requests (paper §3).
using Schedule = std::vector<Op>;

// A piggybacked request window (paper §4): the last k relevant requests
// shipped inside allocation/deallocation hand-over messages. Windows are
// short (k = 9 in the paper's tables), so they get inline storage — copying
// a hand-over message does not touch the heap until the window outgrows 16
// ops (e.g. the sw:101 stress configurations, which spill like std::vector).
using Window = SmallVector<Op, 16>;

// Compact textual form, e.g. "wrrrwrw".
std::string ScheduleToString(const Schedule& schedule);

// Parses "wrrrwrw" (case-insensitive; whitespace ignored).
Result<Schedule> ScheduleFromString(std::string_view text);

// Number of writes in `schedule`.
int64_t CountWrites(const Schedule& schedule);

// Number of reads in `schedule`.
int64_t CountReads(const Schedule& schedule);

// A request with an arrival timestamp, produced by the merged-Poisson
// workload generators and consumed by the discrete-event protocol simulator.
struct TimedRequest {
  double time = 0.0;
  Op op = Op::kRead;
};

using TimedSchedule = std::vector<TimedRequest>;

// Drops timestamps.
Schedule StripTimes(const TimedSchedule& timed);

}  // namespace mobrep

#endif  // MOBREP_CORE_SCHEDULE_H_
