#include "mobrep/core/sliding_window_policy.h"

#include <memory>
#include <string>

#include "mobrep/common/check.h"
#include "mobrep/common/strings.h"

namespace mobrep {

SlidingWindowPolicy::SlidingWindowPolicy(int k, bool sw1_delete_optimization)
    : window_(k), sw1_delete_optimization_(sw1_delete_optimization) {
  MOBREP_CHECK_MSG(!sw1_delete_optimization || k == 1,
                   "the delete optimization is defined only for SW1");
  Reset();
}

std::unique_ptr<SlidingWindowPolicy> SlidingWindowPolicy::NewSw1() {
  return std::make_unique<SlidingWindowPolicy>(1,
                                               /*sw1_delete_optimization=*/true);
}

void SlidingWindowPolicy::Reset() {
  window_.Fill(Op::kWrite);
  has_copy_ = false;
}

ActionKind SlidingWindowPolicy::OnRequest(Op op) {
  if (op == Op::kRead) {
    window_.Push(Op::kRead);
    if (has_copy_) {
      // Reads never flip the majority toward writes, so no deallocation.
      return ActionKind::kLocalRead;
    }
    if (window_.MajorityReads()) {
      has_copy_ = true;
      return ActionKind::kRemoteReadAllocate;
    }
    return ActionKind::kRemoteRead;
  }

  // Write.
  if (!has_copy_) {
    window_.Push(Op::kWrite);
    // Writes never flip the majority toward reads, so no allocation.
    return ActionKind::kWriteNoCopy;
  }
  if (sw1_delete_optimization_) {
    // SW1: with k == 1 the window after this write is just {w}, so the copy
    // is always deallocated; the SC sends only the delete-request.
    window_.Push(Op::kWrite);
    MOBREP_DCHECK(window_.MajorityWrites());
    has_copy_ = false;
    return ActionKind::kWriteInvalidate;
  }
  window_.Push(Op::kWrite);
  if (window_.MajorityWrites()) {
    has_copy_ = false;
    return ActionKind::kWritePropagateDeallocate;
  }
  return ActionKind::kWritePropagate;
}

std::string SlidingWindowPolicy::name() const {
  if (sw1_delete_optimization_) return "SW1";
  if (window_.size() == 1) return "SW1(unopt)";
  return StrFormat("SW%d", window_.size());
}

std::unique_ptr<AllocationPolicy> SlidingWindowPolicy::Clone() const {
  return std::make_unique<SlidingWindowPolicy>(*this);
}

void SlidingWindowPolicy::SetState(bool has_copy,
                                   std::span<const Op> window_contents) {
  window_.SetContents(window_contents);
  has_copy_ = has_copy;
}

}  // namespace mobrep
