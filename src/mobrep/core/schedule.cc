#include "mobrep/core/schedule.h"

#include <algorithm>
#include <cctype>
#include <string>

#include "mobrep/common/strings.h"

namespace mobrep {

char OpToChar(Op op) { return op == Op::kRead ? 'r' : 'w'; }

std::string ScheduleToString(const Schedule& schedule) {
  std::string out;
  out.reserve(schedule.size());
  for (Op op : schedule) out.push_back(OpToChar(op));
  return out;
}

Result<Schedule> ScheduleFromString(std::string_view text) {
  Schedule schedule;
  schedule.reserve(text.size());
  for (char c : text) {
    const char lower = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (lower == 'r') {
      schedule.push_back(Op::kRead);
    } else if (lower == 'w') {
      schedule.push_back(Op::kWrite);
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      continue;
    } else {
      return InvalidArgumentError(
          StrFormat("schedule contains invalid character '%c'", c));
    }
  }
  return schedule;
}

int64_t CountWrites(const Schedule& schedule) {
  return std::count(schedule.begin(), schedule.end(), Op::kWrite);
}

int64_t CountReads(const Schedule& schedule) {
  return std::count(schedule.begin(), schedule.end(), Op::kRead);
}

Schedule StripTimes(const TimedSchedule& timed) {
  Schedule schedule;
  schedule.reserve(timed.size());
  for (const TimedRequest& request : timed) schedule.push_back(request.op);
  return schedule;
}

}  // namespace mobrep
