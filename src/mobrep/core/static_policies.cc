#include "mobrep/core/static_policies.h"

#include <memory>

namespace mobrep {

ActionKind St1Policy::OnRequest(Op op) {
  return op == Op::kRead ? ActionKind::kRemoteRead : ActionKind::kWriteNoCopy;
}

std::unique_ptr<AllocationPolicy> St1Policy::Clone() const {
  return std::make_unique<St1Policy>(*this);
}

ActionKind St2Policy::OnRequest(Op op) {
  return op == Op::kRead ? ActionKind::kLocalRead
                         : ActionKind::kWritePropagate;
}

std::unique_ptr<AllocationPolicy> St2Policy::Clone() const {
  return std::make_unique<St2Policy>(*this);
}

}  // namespace mobrep
