#include "mobrep/core/policy_factory.h"

#include <algorithm>
#include <cctype>
#include <memory>
#include <string>

#include "mobrep/common/check.h"
#include "mobrep/common/strings.h"
#include "mobrep/core/sliding_window_policy.h"
#include "mobrep/core/static_policies.h"
#include "mobrep/core/threshold_policies.h"

namespace mobrep {
namespace {

std::string ToLowerCopy(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

std::string PolicySpec::ToString() const {
  switch (kind) {
    case PolicyKind::kSt1:
      return "st1";
    case PolicyKind::kSt2:
      return "st2";
    case PolicyKind::kSw1:
      return "sw1";
    case PolicyKind::kSw:
      return StrFormat("sw:%d", parameter);
    case PolicyKind::kT1:
      return StrFormat("t1:%d", parameter);
    case PolicyKind::kT2:
      return StrFormat("t2:%d", parameter);
  }
  return "unknown";
}

Result<PolicySpec> ParsePolicySpec(std::string_view text) {
  const std::string lower = ToLowerCopy(StripWhitespace(text));
  if (lower == "st1") return PolicySpec{PolicyKind::kSt1, 0};
  if (lower == "st2") return PolicySpec{PolicyKind::kSt2, 0};
  if (lower == "sw1") return PolicySpec{PolicyKind::kSw1, 1};

  const size_t colon = lower.find(':');
  if (colon != std::string::npos) {
    const std::string head = lower.substr(0, colon);
    const auto param = ParseInt64(lower.substr(colon + 1));
    if (!param.has_value() || *param < 1 || *param > 1'000'000) {
      return InvalidArgumentError(
          StrFormat("bad policy parameter in '%s'", std::string(text).c_str()));
    }
    const int p = static_cast<int>(*param);
    if (head == "sw") return PolicySpec{PolicyKind::kSw, p};
    if (head == "t1") return PolicySpec{PolicyKind::kT1, p};
    if (head == "t2") return PolicySpec{PolicyKind::kT2, p};
  }
  return InvalidArgumentError(StrFormat(
      "unknown policy '%s'; expected st1, st2, sw1, sw:<k>, t1:<m>, t2:<m>",
      std::string(text).c_str()));
}

std::unique_ptr<AllocationPolicy> CreatePolicy(const PolicySpec& spec) {
  switch (spec.kind) {
    case PolicyKind::kSt1:
      return std::make_unique<St1Policy>();
    case PolicyKind::kSt2:
      return std::make_unique<St2Policy>();
    case PolicyKind::kSw1:
      return SlidingWindowPolicy::NewSw1();
    case PolicyKind::kSw:
      return std::make_unique<SlidingWindowPolicy>(spec.parameter);
    case PolicyKind::kT1:
      return std::make_unique<T1mPolicy>(spec.parameter);
    case PolicyKind::kT2:
      return std::make_unique<T2mPolicy>(spec.parameter);
  }
  MOBREP_CHECK_MSG(false, "unreachable policy kind");
  return nullptr;
}

Result<std::unique_ptr<AllocationPolicy>> CreatePolicyFromString(
    std::string_view text) {
  auto spec = ParsePolicySpec(text);
  if (!spec.ok()) return spec.status();
  return CreatePolicy(*spec);
}

std::vector<PolicySpec> StandardPolicyRoster() {
  return {
      {PolicyKind::kSt1, 0}, {PolicyKind::kSt2, 0}, {PolicyKind::kSw1, 1},
      {PolicyKind::kSw, 3},  {PolicyKind::kSw, 5},  {PolicyKind::kSw, 9},
      {PolicyKind::kSw, 15}, {PolicyKind::kT1, 7},  {PolicyKind::kT2, 7},
  };
}

}  // namespace mobrep
