#ifndef MOBREP_CORE_WINDOW_TRACKER_H_
#define MOBREP_CORE_WINDOW_TRACKER_H_

#include <vector>

#include "mobrep/core/schedule.h"

namespace mobrep {

// Sliding window of the latest k relevant requests (paper §4).
//
// The window is "tracked as a sequence of k bits"; this class keeps the ring
// of bits plus a running write count so every update and majority query is
// O(1). The full contents can be exported/imported because the SWk protocol
// piggybacks the window when ownership moves between the MC and the SC.
class WindowTracker {
 public:
  // k >= 1. The paper assumes k is odd so majorities are never tied; this
  // class itself supports any k >= 1 (MajorityReads then means strictly
  // more reads than writes).
  explicit WindowTracker(int k);

  // Overwrites every slot with `op`.
  void Fill(Op op);

  // Slides the window: drops the oldest request, appends `op`.
  // Returns the dropped request.
  Op Push(Op op);

  int size() const { return static_cast<int>(slots_.size()); }
  int write_count() const { return write_count_; }
  int read_count() const { return size() - write_count_; }

  // Strictly more reads than writes among the last k requests.
  bool MajorityReads() const { return read_count() > write_count_; }
  // Strictly more writes than reads.
  bool MajorityWrites() const { return write_count_ > read_count(); }

  // Window contents, oldest first.
  std::vector<Op> Contents() const;

  // Replaces the contents (oldest first). `ops` must have exactly k entries.
  void SetContents(const std::vector<Op>& ops);

 private:
  std::vector<Op> slots_;  // ring buffer
  int head_ = 0;           // index of the oldest entry
  int write_count_ = 0;
};

}  // namespace mobrep

#endif  // MOBREP_CORE_WINDOW_TRACKER_H_
