#ifndef MOBREP_CORE_WINDOW_TRACKER_H_
#define MOBREP_CORE_WINDOW_TRACKER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "mobrep/core/schedule.h"

namespace mobrep {

// Sliding window of the latest k relevant requests (paper §4).
//
// The window is "tracked as a sequence of k bits" — and that is literally
// the representation: a ring of k bits packed 64 per word (set = write),
// plus a running write count so every update and majority query is O(1).
// Bulk loads (Fill, SetContents) recount via popcount over the packed
// words. The full contents can be exported/imported because the SWk
// protocol piggybacks the window when ownership moves between the MC and
// the SC.
class WindowTracker {
 public:
  // k >= 1. The paper assumes k is odd so majorities are never tied; this
  // class itself supports any k >= 1 (MajorityReads then means strictly
  // more reads than writes).
  explicit WindowTracker(int k);

  // Overwrites every slot with `op`.
  void Fill(Op op);

  // Slides the window: drops the oldest request, appends `op`.
  // Returns the dropped request.
  Op Push(Op op) {
    const size_t word = static_cast<size_t>(head_ >> 6);
    const uint64_t bit = uint64_t{1} << (head_ & 63);
    const bool dropped_write = (words_[word] & bit) != 0;
    const bool is_write = op == Op::kWrite;
    if (is_write) {
      words_[word] |= bit;
    } else {
      words_[word] &= ~bit;
    }
    write_count_ += static_cast<int>(is_write) -
                    static_cast<int>(dropped_write);
    head_ = head_ + 1 == size_ ? 0 : head_ + 1;
    return dropped_write ? Op::kWrite : Op::kRead;
  }

  int size() const { return size_; }
  int write_count() const { return write_count_; }
  int read_count() const { return size_ - write_count_; }

  // Strictly more reads than writes among the last k requests.
  bool MajorityReads() const { return read_count() > write_count_; }
  // Strictly more writes than reads.
  bool MajorityWrites() const { return write_count_ > size_ - write_count_; }

  // Window contents, oldest first.
  std::vector<Op> Contents() const;

  // Same contents as a Window (inline storage up to 16 ops) — the form the
  // protocol hand-over piggybacks, heap-free at the paper's k = 9.
  Window SmallContents() const;

  // Replaces the contents (oldest first). `ops` must have exactly k entries.
  void SetContents(std::span<const Op> ops);

 private:
  std::vector<uint64_t> words_;  // ring of size_ bits, set = write
  int size_ = 0;
  int head_ = 0;  // bit index of the oldest entry
  int write_count_ = 0;
};

}  // namespace mobrep

#endif  // MOBREP_CORE_WINDOW_TRACKER_H_
