#include "mobrep/core/cost_simulator.h"

#include <algorithm>

#include "mobrep/common/check.h"
#include "mobrep/core/sliding_window_policy.h"
#include "mobrep/core/static_policies.h"
#include "mobrep/core/threshold_policies.h"
#include "mobrep/obs/trace.h"
#include "mobrep/obs/trace_export.h"

namespace mobrep {
namespace {

// Cold path, entered only when tracing is runtime-enabled: records the full
// decision (request index, action, copy-state transition, window state for
// sliding-window policies) for the audit-log and Perfetto exporters.
void EmitPolicyDecision(const AllocationPolicy* policy, Op op,
                        ActionKind action, bool copy_before, bool copy_after,
                        double cost, int64_t request_index) {
  obs::PolicyDecision decision;
  decision.request_index = request_index;
  decision.op = static_cast<int>(op);
  decision.action = static_cast<int>(action);
  decision.copy_before = copy_before;
  decision.copy_after = copy_after;
  decision.cost = cost;
  decision.policy = policy->name();
  if (const auto* sw = dynamic_cast<const SlidingWindowPolicy*>(policy)) {
    // Window state after the current request was pushed — the state the
    // majority test actually ran against.
    decision.has_window = true;
    decision.window_size = sw->window_size();
    decision.window_reads = sw->window().read_count();
    decision.window_writes = sw->window().write_count();
  }
  obs::TraceRecorder::Global()->Append(obs::EncodePolicyDecision(decision));
}

constexpr int kNumActionKinds = 7;

// Per-action prices and wire counts, hoisted out of the batch loop so the
// hot path is a table lookup instead of a branch over the cost model.
struct ActionTables {
  explicit ActionTables(const CostModel& model) {
    for (int a = 0; a < kNumActionKinds; ++a) {
      const auto kind = static_cast<ActionKind>(a);
      price[a] = model.Price(kind);
      wire[a] = WireFor(kind);
    }
  }

  double price[kNumActionKinds];
  ActionWire wire[kNumActionKinds];
};

// Devirtualized policy bodies. Each mirrors the corresponding policy's
// OnRequest decision function exactly (cross-checked bit for bit against
// the virtual path in core_batched_simulator_test) but is a plain struct
// the compiler can keep in registers across the whole batch.

struct St1Body {
  ActionKind Step(Op op) {
    return op == Op::kRead ? ActionKind::kRemoteRead
                           : ActionKind::kWriteNoCopy;
  }
};

struct St2Body {
  ActionKind Step(Op op) {
    return op == Op::kRead ? ActionKind::kLocalRead
                           : ActionKind::kWritePropagate;
  }
};

struct SwBody {
  WindowTracker window;
  bool has_copy;
  bool sw1_opt;

  ActionKind Step(Op op) {
    window.Push(op);
    if (op == Op::kRead) {
      if (has_copy) return ActionKind::kLocalRead;
      if (window.MajorityReads()) {
        has_copy = true;
        return ActionKind::kRemoteReadAllocate;
      }
      return ActionKind::kRemoteRead;
    }
    if (!has_copy) return ActionKind::kWriteNoCopy;
    if (sw1_opt) {
      has_copy = false;
      return ActionKind::kWriteInvalidate;
    }
    if (window.MajorityWrites()) {
      has_copy = false;
      return ActionKind::kWritePropagateDeallocate;
    }
    return ActionKind::kWritePropagate;
  }
};

struct T1Body {
  int m;
  int consecutive_reads;
  bool has_copy;

  ActionKind Step(Op op) {
    if (op == Op::kRead) {
      if (has_copy) return ActionKind::kLocalRead;
      if (++consecutive_reads >= m) {
        has_copy = true;
        consecutive_reads = 0;
        return ActionKind::kRemoteReadAllocate;
      }
      return ActionKind::kRemoteRead;
    }
    consecutive_reads = 0;
    if (!has_copy) return ActionKind::kWriteNoCopy;
    has_copy = false;
    return ActionKind::kWritePropagateDeallocate;
  }
};

struct T2Body {
  int m;
  int consecutive_writes;
  bool has_copy;

  ActionKind Step(Op op) {
    if (op == Op::kWrite) {
      if (!has_copy) return ActionKind::kWriteNoCopy;
      if (++consecutive_writes >= m) {
        has_copy = false;
        consecutive_writes = 0;
        return ActionKind::kWritePropagateDeallocate;
      }
      return ActionKind::kWritePropagate;
    }
    consecutive_writes = 0;
    if (has_copy) return ActionKind::kLocalRead;
    has_copy = true;
    return ActionKind::kRemoteReadAllocate;
  }
};

// The shared metering loop. Accumulates the breakdown's total_cost and the
// caller's running total each as their own sequential chain, exactly as the
// per-request path does, so batching never perturbs a single bit.
template <typename Body>
double MeterBatch(Body& body, const Op* ops, int64_t n,
                  const ActionTables& tables, CostBreakdown* breakdown,
                  double running_total) {
  double breakdown_total = breakdown->total_cost;
  int64_t writes = 0;
  int64_t connections = 0;
  int64_t data_messages = 0;
  int64_t control_messages = 0;
  int64_t allocations = 0;
  int64_t deallocations = 0;
  for (int64_t i = 0; i < n; ++i) {
    const Op op = ops[i];
    const auto action = static_cast<int>(body.Step(op));
    const double price = tables.price[action];
    breakdown_total += price;
    running_total += price;
    writes += op == Op::kWrite;
    const ActionWire& wire = tables.wire[action];
    connections += wire.connections;
    data_messages += wire.data_messages;
    control_messages += wire.control_messages;
    // The action kind fully determines the copy-state transition, so the
    // generic path's before/after comparison reduces to these two tests.
    allocations +=
        action == static_cast<int>(ActionKind::kRemoteReadAllocate);
    deallocations +=
        action == static_cast<int>(ActionKind::kWritePropagateDeallocate) ||
        action == static_cast<int>(ActionKind::kWriteInvalidate);
  }
  breakdown->total_cost = breakdown_total;
  breakdown->requests += n;
  breakdown->reads += n - writes;
  breakdown->writes += writes;
  breakdown->connections += connections;
  breakdown->data_messages += data_messages;
  breakdown->control_messages += control_messages;
  breakdown->allocations += allocations;
  breakdown->deallocations += deallocations;
  return running_total;
}

}  // namespace

CostMeter::CostMeter(AllocationPolicy* policy, const CostModel* model)
    : policy_(policy), model_(model) {
  MOBREP_CHECK(policy != nullptr);
  MOBREP_CHECK(model != nullptr);
}

double CostMeter::OnRequest(Op op) {
  const bool copy_before = policy_->has_copy();
  const ActionKind action = policy_->OnRequest(op);

  // Policy contract: the action must be legal for (op, prior state) and the
  // policy's new state must match the action's implied transition.
  MOBREP_DCHECK(ActionLegalFor(action, op, copy_before));
  MOBREP_DCHECK(policy_->has_copy() == CopyStateAfter(action, copy_before));

  const double cost = model_->Price(action);
  const ActionWire wire = WireFor(action);

  breakdown_.total_cost += cost;
  ++breakdown_.requests;
  if (op == Op::kRead) {
    ++breakdown_.reads;
  } else {
    ++breakdown_.writes;
  }
  breakdown_.connections += wire.connections;
  breakdown_.data_messages += wire.data_messages;
  breakdown_.control_messages += wire.control_messages;
  const bool copy_after = policy_->has_copy();
  if (!copy_before && copy_after) ++breakdown_.allocations;
  if (copy_before && !copy_after) ++breakdown_.deallocations;
  if (obs::TracingEnabled()) {
    EmitPolicyDecision(policy_, op, action, copy_before, copy_after, cost,
                       breakdown_.requests - 1);
  }
  return cost;
}

double CostMeter::OnRequestBatch(const Op* ops, int64_t n,
                                 double running_total) {
  if (n <= 0) return running_total;
  if (obs::TracingEnabled()) {
    // Traced runs take the generic per-request path so every decision is
    // recorded. The two paths are cross-checked bit for bit by tests, so
    // this changes no simulation output — only speed.
    for (int64_t i = 0; i < n; ++i) running_total += OnRequest(ops[i]);
    return running_total;
  }
  const ActionTables tables(*model_);

  if (auto* sw = dynamic_cast<SlidingWindowPolicy*>(policy_)) {
    SwBody body{sw->window(), sw->has_copy(), sw->sw1_delete_optimization()};
    running_total =
        MeterBatch(body, ops, n, tables, &breakdown_, running_total);
    sw->SetState(body.has_copy, body.window.Contents());
    return running_total;
  }
  if (dynamic_cast<St1Policy*>(policy_) != nullptr) {
    St1Body body;
    return MeterBatch(body, ops, n, tables, &breakdown_, running_total);
  }
  if (dynamic_cast<St2Policy*>(policy_) != nullptr) {
    St2Body body;
    return MeterBatch(body, ops, n, tables, &breakdown_, running_total);
  }
  if (auto* t1 = dynamic_cast<T1mPolicy*>(policy_)) {
    T1Body body{t1->m(), t1->consecutive_reads(), t1->has_copy()};
    running_total =
        MeterBatch(body, ops, n, tables, &breakdown_, running_total);
    t1->SetState(body.has_copy, body.consecutive_reads);
    return running_total;
  }
  if (auto* t2 = dynamic_cast<T2mPolicy*>(policy_)) {
    T2Body body{t2->m(), t2->consecutive_writes(), t2->has_copy()};
    running_total =
        MeterBatch(body, ops, n, tables, &breakdown_, running_total);
    t2->SetState(body.has_copy, body.consecutive_writes);
    return running_total;
  }
  // Unknown policy type: generic per-request path (still one call site).
  for (int64_t i = 0; i < n; ++i) running_total += OnRequest(ops[i]);
  return running_total;
}

CostBreakdown SimulateSchedule(AllocationPolicy* policy,
                               const Schedule& schedule,
                               const CostModel& model) {
  CostMeter meter(policy, &model);
  for (const Op op : schedule) meter.OnRequest(op);
  return meter.breakdown();
}

CostBreakdown SimulateScheduleBatch(AllocationPolicy* policy,
                                    const Schedule& schedule,
                                    const CostModel& model) {
  CostMeter meter(policy, &model);
  meter.OnRequestBatch(schedule.data(),
                       static_cast<int64_t>(schedule.size()));
  return meter.breakdown();
}

CostBreakdown SimulateScheduleBatch(AllocationPolicy* policy,
                                    const PackedSchedule& schedule,
                                    const CostModel& model) {
  CostMeter meter(policy, &model);
  constexpr int64_t kChunk = 4096;
  Op buffer[kChunk];
  const int64_t size = schedule.size();
  for (int64_t begin = 0; begin < size; begin += kChunk) {
    const int64_t len = std::min(kChunk, size - begin);
    for (int64_t j = 0; j < len; ++j) buffer[j] = schedule.Get(begin + j);
    meter.OnRequestBatch(buffer, len);
  }
  return meter.breakdown();
}

double PolicyCostOnSchedule(AllocationPolicy* policy, const Schedule& schedule,
                            const CostModel& model) {
  policy->Reset();
  // The batched path accumulates total_cost in the same order as the
  // per-request path, so this is a pure speedup (bit-identical result).
  return SimulateScheduleBatch(policy, schedule, model).total_cost;
}

}  // namespace mobrep
