#include "mobrep/core/cost_simulator.h"

#include "mobrep/common/check.h"

namespace mobrep {

CostMeter::CostMeter(AllocationPolicy* policy, const CostModel* model)
    : policy_(policy), model_(model) {
  MOBREP_CHECK(policy != nullptr);
  MOBREP_CHECK(model != nullptr);
}

double CostMeter::OnRequest(Op op) {
  const bool copy_before = policy_->has_copy();
  const ActionKind action = policy_->OnRequest(op);

  // Policy contract: the action must be legal for (op, prior state) and the
  // policy's new state must match the action's implied transition.
  MOBREP_DCHECK(ActionLegalFor(action, op, copy_before));
  MOBREP_DCHECK(policy_->has_copy() == CopyStateAfter(action, copy_before));

  const double cost = model_->Price(action);
  const ActionWire wire = WireFor(action);

  breakdown_.total_cost += cost;
  ++breakdown_.requests;
  if (op == Op::kRead) {
    ++breakdown_.reads;
  } else {
    ++breakdown_.writes;
  }
  breakdown_.connections += wire.connections;
  breakdown_.data_messages += wire.data_messages;
  breakdown_.control_messages += wire.control_messages;
  const bool copy_after = policy_->has_copy();
  if (!copy_before && copy_after) ++breakdown_.allocations;
  if (copy_before && !copy_after) ++breakdown_.deallocations;
  return cost;
}

CostBreakdown SimulateSchedule(AllocationPolicy* policy,
                               const Schedule& schedule,
                               const CostModel& model) {
  CostMeter meter(policy, &model);
  for (const Op op : schedule) meter.OnRequest(op);
  return meter.breakdown();
}

double PolicyCostOnSchedule(AllocationPolicy* policy, const Schedule& schedule,
                            const CostModel& model) {
  policy->Reset();
  return SimulateSchedule(policy, schedule, model).total_cost;
}

}  // namespace mobrep
