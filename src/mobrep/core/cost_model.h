#ifndef MOBREP_CORE_COST_MODEL_H_
#define MOBREP_CORE_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "mobrep/core/schedule.h"

namespace mobrep {

// Everything an allocation algorithm can do in response to one relevant
// request. Each action fully determines communication (and hence cost in
// either cost model) and the MC copy-state transition.
enum class ActionKind : uint8_t {
  // Read served from the MC's local copy. No communication.
  kLocalRead,
  // MC has no copy: control read-request to SC + data response. Copy stays
  // deallocated.
  kRemoteRead,
  // Same messages as kRemoteRead, but the SC piggybacks an allocate
  // indication (and the request window) on the data response; the MC keeps
  // the copy. The piggyback is free (paper §4).
  kRemoteReadAllocate,
  // Write at the SC while the MC has no copy. No communication.
  kWriteNoCopy,
  // Write propagated to the MC's copy: one data message. Copy retained.
  kWritePropagate,
  // Write propagated, after which the MC deallocates: data message plus the
  // MC's delete-request control message carrying the window back to the SC.
  kWritePropagateDeallocate,
  // SW1 optimization (paper §4): instead of propagating the data, the SC
  // sends only a delete-request control message; the MC drops its copy.
  kWriteInvalidate,
};

// Returns a stable name, e.g. "remote_read_allocate".
const char* ActionKindName(ActionKind kind);

// True iff `kind` is a legal response to `op` when the MC copy state before
// the request is `copy_before`.
bool ActionLegalFor(ActionKind kind, Op op, bool copy_before);

// MC copy state after executing `kind` from state `copy_before`.
bool CopyStateAfter(ActionKind kind, bool copy_before);

// The two charging schemes of the paper (§1, §3).
enum class CostModelKind : uint8_t {
  // Connection (time-based) model: every request that requires any
  // transmission costs exactly one minimum-length connection; responses and
  // piggybacks ride the same connection.
  kConnection,
  // Message model: a data message costs 1, a control message costs
  // omega in [0, 1].
  kMessage,
};

// Message-level accounting of a single action.
struct ActionWire {
  int data_messages = 0;
  int control_messages = 0;
  int connections = 0;  // connection-model accounting
};

// Messages/connections implied by `kind` (model-independent bookkeeping).
ActionWire WireFor(ActionKind kind);

// Prices actions under one of the two cost models.
//
// Immutable and cheap to copy; pass by value or const reference.
class CostModel {
 public:
  // Connection (time) based model.
  static CostModel Connection();
  // Message based model with control/data cost ratio omega in [0, 1].
  static CostModel Message(double omega);

  CostModelKind kind() const { return kind_; }
  // Control-to-data cost ratio; meaningful only for the message model.
  double omega() const { return omega_; }

  // Cost charged for one action.
  double Price(ActionKind action) const;

  // Cost of a remote read under this model (1 connection, or 1 + omega).
  double RemoteReadPrice() const;

  std::string name() const;

 private:
  CostModel(CostModelKind kind, double omega) : kind_(kind), omega_(omega) {}

  CostModelKind kind_;
  double omega_;
};

}  // namespace mobrep

#endif  // MOBREP_CORE_COST_MODEL_H_
