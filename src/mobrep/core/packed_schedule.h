#ifndef MOBREP_CORE_PACKED_SCHEDULE_H_
#define MOBREP_CORE_PACKED_SCHEDULE_H_

#include <cstdint>
#include <vector>

#include "mobrep/core/schedule.h"

namespace mobrep {

// A schedule packed 64 requests per word: bit i of words()[w] is request
// w*64 + i, set for a write, clear for a read (the Op enum's own encoding).
// One million requests fit in ~122 KiB instead of ~1 MiB, so sweep workers
// stay in cache; CountWrites is a popcount loop; and generators can fill
// whole words without a byte store per request.
class PackedSchedule {
 public:
  PackedSchedule() = default;
  explicit PackedSchedule(const Schedule& ops);

  Schedule ToSchedule() const;

  // Appends one request.
  void Append(Op op);
  // Generator fast path: appends the low `count` bits of `bits` (bit 0
  // first) as `count` requests. Requires 1 <= count <= 64.
  void AppendWord(uint64_t bits, int count);

  Op Get(int64_t i) const {
    const uint64_t word = words_[static_cast<size_t>(i >> 6)];
    return static_cast<Op>((word >> (i & 63)) & 1u);
  }

  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Number of writes (set bits), by popcount.
  int64_t CountWrites() const;
  int64_t CountReads() const { return size_ - CountWrites(); }

  // Backing words; the tail word's unused high bits are zero.
  const std::vector<uint64_t>& words() const { return words_; }

 private:
  std::vector<uint64_t> words_;
  int64_t size_ = 0;
};

}  // namespace mobrep

#endif  // MOBREP_CORE_PACKED_SCHEDULE_H_
