#ifndef MOBREP_CORE_COST_SIMULATOR_H_
#define MOBREP_CORE_COST_SIMULATOR_H_

#include <cstdint>

#include "mobrep/core/cost_model.h"
#include "mobrep/core/packed_schedule.h"
#include "mobrep/core/policy.h"
#include "mobrep/core/schedule.h"

namespace mobrep {

// Aggregate accounting of a simulated run.
struct CostBreakdown {
  double total_cost = 0.0;
  int64_t requests = 0;
  int64_t reads = 0;
  int64_t writes = 0;
  int64_t connections = 0;
  int64_t data_messages = 0;
  int64_t control_messages = 0;
  int64_t allocations = 0;    // no-copy -> copy transitions
  int64_t deallocations = 0;  // copy -> no-copy transitions

  // Mean cost per relevant request; 0 for an empty run.
  double MeanCostPerRequest() const {
    return requests == 0 ? 0.0
                         : total_cost / static_cast<double>(requests);
  }
};

// Feeds requests to a policy one at a time, prices the returned actions
// under a cost model and verifies the policy's action/state contract
// (legality of each action and consistency of the copy-state transition).
//
// The meter borrows the policy and the model; both must outlive it.
class CostMeter {
 public:
  CostMeter(AllocationPolicy* policy, const CostModel* model);

  // Services one request; returns its cost.
  double OnRequest(Op op);

  // Batched hot path: services ops[0..n) and returns `running_total` with
  // each request's cost added in request order — so chunked calls
  //   total = meter.OnRequestBatch(buf, m, total);
  // reproduce the per-request accumulation
  //   for (...) total += meter.OnRequest(op);
  // bit for bit (floating-point addition is not associative; threading the
  // running total through keeps the summation chain identical).
  //
  // For the concrete policy families (ST1/ST2, SWk/SW1, T1m/T2m) the
  // request loop runs devirtualized: the policy's state is loaded once, the
  // per-action prices and wire counts are hoisted into lookup tables, the
  // whole batch is stepped inline, and the state is written back at the
  // end. Unknown AllocationPolicy subclasses fall back to the generic
  // virtual per-request path; tests cross-check the two paths bit for bit.
  double OnRequestBatch(const Op* ops, int64_t n, double running_total = 0.0);

  const CostBreakdown& breakdown() const { return breakdown_; }
  double total_cost() const { return breakdown_.total_cost; }

 private:
  AllocationPolicy* policy_;
  const CostModel* model_;
  CostBreakdown breakdown_;
};

// Runs `policy` (from its current state) over the whole schedule.
CostBreakdown SimulateSchedule(AllocationPolicy* policy,
                               const Schedule& schedule,
                               const CostModel& model);

// Batched equivalents of SimulateSchedule: same result (bit-identical cost
// and counters, same final policy state), devirtualized hot loop. The
// packed overload streams the schedule straight out of its 64-requests-per-
// word representation.
CostBreakdown SimulateScheduleBatch(AllocationPolicy* policy,
                                    const Schedule& schedule,
                                    const CostModel& model);
CostBreakdown SimulateScheduleBatch(AllocationPolicy* policy,
                                    const PackedSchedule& schedule,
                                    const CostModel& model);

// Convenience: Reset() the policy, run the schedule, return the total cost.
double PolicyCostOnSchedule(AllocationPolicy* policy, const Schedule& schedule,
                            const CostModel& model);

}  // namespace mobrep

#endif  // MOBREP_CORE_COST_SIMULATOR_H_
