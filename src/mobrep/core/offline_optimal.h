#ifndef MOBREP_CORE_OFFLINE_OPTIMAL_H_
#define MOBREP_CORE_OFFLINE_OPTIMAL_H_

#include <vector>

#include "mobrep/core/cost_model.h"
#include "mobrep/core/schedule.h"

namespace mobrep {

// The ideal offline allocation algorithm M of the paper's competitiveness
// definition (§3): it knows the whole schedule in advance and services it
// with minimum total cost.
//
// Cost rules (see DESIGN.md §2 — the paper does not spell these out; these
// are the rules under which the paper's stated tight competitive factors
// are exactly achieved by the natural adversarial schedules):
//
//   per request, by (copy state before, copy state after):
//     read,  0 -> 0 : remote read        (1 connection / 1 + omega)
//     read,  0 -> 1 : remote read, keep the copy (piggyback, same price)
//     read,  1 -> * : local read, optionally drop afterwards (free)
//     write, 0 -> 0 : no communication   (0)
//     write, 0 -> 1 : SC pushes the written value (1 connection / 1 data msg)
//     write, 1 -> 1 : propagate          (1 connection / 1 data msg)
//     write, 1 -> 0 : drop beforehand, then write without a copy (free;
//                     an omniscient SC needs no delete-request)
//
// Solved exactly with a two-state dynamic program in O(n) time, O(1) space.

// What the clairvoyant adversary is allowed to do. kFull is the model
// described above (and the one under which the paper's tight factors are
// realized); kAcquireAtReadsOnly removes the push-at-write option, which
// weakens the adversary — kept for the ablation study (see
// bench_ablation_choices).
enum class OfflineAdversary {
  kFull,
  kAcquireAtReadsOnly,
};

// Minimum total cost to service `schedule` under `model`, starting from
// `initial_copy` at the MC.
double OfflineOptimalCost(const Schedule& schedule, const CostModel& model,
                          bool initial_copy = false,
                          OfflineAdversary adversary = OfflineAdversary::kFull);

// Full DP solution: the optimal cost plus one copy-state decision per
// request (the state in effect while that request is serviced).
struct OfflineSolution {
  double cost = 0.0;
  std::vector<bool> copy_during;  // copy state used for request i
};

OfflineSolution SolveOfflineOptimal(const Schedule& schedule,
                                    const CostModel& model,
                                    bool initial_copy = false,
                                    OfflineAdversary adversary =
                                        OfflineAdversary::kFull);

// Price of servicing one request while transitioning copy state
// `before` -> `after` under `model`, per the table above. Returns
// +infinity for transitions the adversary is not allowed to make.
double OfflineTransitionCost(Op op, bool before, bool after,
                             const CostModel& model,
                             OfflineAdversary adversary =
                                 OfflineAdversary::kFull);

}  // namespace mobrep

#endif  // MOBREP_CORE_OFFLINE_OPTIMAL_H_
