#ifndef MOBREP_CORE_THRESHOLD_POLICIES_H_
#define MOBREP_CORE_THRESHOLD_POLICIES_H_

#include <memory>
#include <string>

#include "mobrep/core/policy.h"

namespace mobrep {

// T1m (paper §7.1): the one-copy static method made competitive.
//
// Normally uses the one-copy scheme. After m consecutive reads it switches
// to the two-copies scheme (the m-th read's data response piggybacks the
// allocation) and stays there until the next write, which reverts it to the
// one-copy scheme. T1m is (m+1)-competitive and its connection-model
// expected cost is (1-theta) + (1-theta)^m (2*theta - 1).
class T1mPolicy final : public AllocationPolicy {
 public:
  explicit T1mPolicy(int m);

  ActionKind OnRequest(Op op) override;
  bool has_copy() const override { return has_copy_; }
  void Reset() override;
  std::string name() const override;
  std::unique_ptr<AllocationPolicy> Clone() const override;

  int m() const { return m_; }
  int consecutive_reads() const { return consecutive_reads_; }
  // Overrides the current state; used by the batched simulation kernels to
  // write back the state they advanced outside the virtual interface.
  void SetState(bool has_copy, int consecutive_reads);

 private:
  int m_;
  int consecutive_reads_ = 0;
  bool has_copy_ = false;
};

// T2m (paper §7.1): the two-copies static method made competitive; the
// mirror image of T1m.
//
// Normally uses the two-copies scheme. After m consecutive writes it
// switches to the one-copy scheme (the m-th propagated write carries the
// deallocation) and stays there until the next read, which re-allocates via
// its data response. T2m is (m+1)-competitive; by the read/write symmetry of
// the connection model its expected cost is theta + theta^m (1 - 2*theta).
class T2mPolicy final : public AllocationPolicy {
 public:
  explicit T2mPolicy(int m);

  ActionKind OnRequest(Op op) override;
  bool has_copy() const override { return has_copy_; }
  void Reset() override;
  std::string name() const override;
  std::unique_ptr<AllocationPolicy> Clone() const override;

  int m() const { return m_; }
  int consecutive_writes() const { return consecutive_writes_; }
  // See T1mPolicy::SetState.
  void SetState(bool has_copy, int consecutive_writes);

 private:
  int m_;
  int consecutive_writes_ = 0;
  bool has_copy_ = true;
};

}  // namespace mobrep

#endif  // MOBREP_CORE_THRESHOLD_POLICIES_H_
