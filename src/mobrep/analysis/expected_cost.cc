#include "mobrep/analysis/expected_cost.h"

#include <cmath>

#include "mobrep/common/check.h"
#include "mobrep/common/math.h"
#include "mobrep/common/strings.h"

namespace mobrep {
namespace {

void CheckTheta(double theta) {
  MOBREP_CHECK_MSG(theta >= 0.0 && theta <= 1.0, "theta must be in [0, 1]");
}

void CheckOddK(int k) {
  MOBREP_CHECK_MSG(k >= 1 && k % 2 == 1,
                   "the paper's SWk analysis assumes an odd window size");
}

}  // namespace

double AlphaK(int k, double theta) {
  CheckOddK(k);
  CheckTheta(theta);
  const int n = (k - 1) / 2;
  // P[#writes among k <= n] with per-request write probability theta.
  return BinomialCdf(k, n, theta);
}

double SwkTransitionProbability(int k, double theta) {
  CheckOddK(k);
  CheckTheta(theta);
  const int n = (k - 1) / 2;
  if (theta == 0.0 || theta == 1.0) return 0.0;
  // newest = write (theta), dropped = read (1-theta), shared 2n split n/n.
  return BinomialCoefficient(2 * n, n) * std::pow(theta, n + 1) *
         std::pow(1.0 - theta, n + 1);
}

double ExpSt1Connection(double theta) {
  CheckTheta(theta);
  return 1.0 - theta;
}

double ExpSt2Connection(double theta) {
  CheckTheta(theta);
  return theta;
}

double ExpSwkConnection(int k, double theta) {
  const double alpha = AlphaK(k, theta);
  return theta * alpha + (1.0 - theta) * (1.0 - alpha);
}

double ExpT1mConnection(int m, double theta) {
  MOBREP_CHECK(m >= 1);
  CheckTheta(theta);
  return (1.0 - theta) + std::pow(1.0 - theta, m) * (2.0 * theta - 1.0);
}

double ExpT2mConnection(int m, double theta) {
  MOBREP_CHECK(m >= 1);
  CheckTheta(theta);
  return theta + std::pow(theta, m) * (1.0 - 2.0 * theta);
}

double ExpSt1Message(double theta, double omega) {
  CheckTheta(theta);
  return (1.0 + omega) * (1.0 - theta);
}

double ExpSt2Message(double theta, double omega) {
  CheckTheta(theta);
  (void)omega;  // ST2 never sends control messages.
  return theta;
}

double ExpSw1Message(double theta, double omega) {
  CheckTheta(theta);
  return theta * (1.0 - theta) * (1.0 + 2.0 * omega);
}

double ExpSwkMessage(int k, double theta, double omega) {
  const double alpha = AlphaK(k, theta);
  return theta * alpha + (1.0 - theta) * (1.0 - alpha) * (1.0 + omega) +
         omega * SwkTransitionProbability(k, theta);
}

double ExpT1mMessage(int m, double theta, double omega) {
  return (1.0 + omega) * ExpT1mConnection(m, theta);
}

double ExpT2mMessage(int m, double theta, double omega) {
  MOBREP_CHECK(m >= 1);
  CheckTheta(theta);
  const double tm = std::pow(theta, m);
  return theta * (1.0 - tm) + (1.0 - theta) * tm * (1.0 + 2.0 * omega);
}

Result<double> ExpectedCost(const PolicySpec& spec, const CostModel& model,
                            double theta) {
  const bool connection = model.kind() == CostModelKind::kConnection;
  const double omega = model.omega();
  switch (spec.kind) {
    case PolicyKind::kSt1:
      return connection ? ExpSt1Connection(theta)
                        : ExpSt1Message(theta, omega);
    case PolicyKind::kSt2:
      return connection ? ExpSt2Connection(theta)
                        : ExpSt2Message(theta, omega);
    case PolicyKind::kSw1:
      return connection ? ExpSwkConnection(1, theta)
                        : ExpSw1Message(theta, omega);
    case PolicyKind::kSw:
      if (spec.parameter % 2 == 0) {
        return InvalidArgumentError(StrFormat(
            "no closed form for even window size %d", spec.parameter));
      }
      return connection ? ExpSwkConnection(spec.parameter, theta)
                        : ExpSwkMessage(spec.parameter, theta, omega);
    case PolicyKind::kT1:
      return connection ? ExpT1mConnection(spec.parameter, theta)
                        : ExpT1mMessage(spec.parameter, theta, omega);
    case PolicyKind::kT2:
      return connection ? ExpT2mConnection(spec.parameter, theta)
                        : ExpT2mMessage(spec.parameter, theta, omega);
  }
  return InternalError("unreachable policy kind");
}

}  // namespace mobrep
