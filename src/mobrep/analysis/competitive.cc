#include "mobrep/analysis/competitive.h"

#include <limits>

#include "mobrep/common/check.h"
#include "mobrep/core/cost_simulator.h"
#include "mobrep/core/offline_optimal.h"

namespace mobrep {

Result<double> ClaimedCompetitiveFactor(const PolicySpec& spec,
                                        const CostModel& model) {
  const bool connection = model.kind() == CostModelKind::kConnection;
  const double omega = model.omega();
  switch (spec.kind) {
    case PolicyKind::kSt1:
    case PolicyKind::kSt2:
      return FailedPreconditionError(
          "the static algorithms are not competitive (paper §5.3, §6.4)");
    case PolicyKind::kSw1:
      return connection ? 2.0 : 1.0 + 2.0 * omega;
    case PolicyKind::kSw: {
      const double k = spec.parameter;
      if (connection) return k + 1.0;
      // Thm. 12 (stated for k > 1); k == 1 unoptimized satisfies the same
      // expression, (1 + omega/2)*2 + omega = 2 + 2*omega.
      return (1.0 + omega / 2.0) * (k + 1.0) + omega;
    }
    case PolicyKind::kT1: {
      const double m = spec.parameter;
      return connection ? m + 1.0 : (m + 1.0) * (1.0 + omega);
    }
    case PolicyKind::kT2: {
      const double m = spec.parameter;
      return connection ? m + 1.0 : (m + 1.0) + 2.0 * omega;
    }
  }
  return InternalError("unreachable policy kind");
}

ExhaustiveWorstCase ExhaustiveWorstRatio(AllocationPolicy* policy,
                                         const CostModel& model, int length,
                                         double additive_b) {
  MOBREP_CHECK_MSG(length >= 1 && length <= 24,
                   "exhaustive search enumerates 2^length schedules");
  ExhaustiveWorstCase worst;
  Schedule schedule(static_cast<size_t>(length), Op::kRead);
  const uint64_t combos = uint64_t{1} << length;
  for (uint64_t bits = 0; bits < combos; ++bits) {
    for (int i = 0; i < length; ++i) {
      schedule[static_cast<size_t>(i)] =
          ((bits >> i) & 1) != 0 ? Op::kWrite : Op::kRead;
    }
    const RatioReport report = MeasureRatio(policy, schedule, model,
                                            additive_b);
    if (report.ratio > worst.ratio) {
      worst.ratio = report.ratio;
      worst.schedule = schedule;
      worst.policy_cost = report.policy_cost;
      worst.offline_cost = report.offline_cost;
    }
  }
  return worst;
}

RatioReport MeasureRatio(AllocationPolicy* policy, const Schedule& s,
                         const CostModel& model, double additive_b) {
  RatioReport report;
  // The offline adversary starts from the same copy state as the policy's
  // initial state (matters for ST2/T2m, which begin with a replica).
  policy->Reset();
  const bool initial_copy = policy->has_copy();
  report.policy_cost = PolicyCostOnSchedule(policy, s, model);
  report.offline_cost = OfflineOptimalCost(s, model, initial_copy);

  const double adjusted = report.policy_cost - additive_b;
  constexpr double kEps = 1e-12;
  if (report.offline_cost > kEps) {
    report.ratio = adjusted / report.offline_cost;
  } else if (adjusted <= kEps) {
    report.ratio = 1.0;
  } else {
    report.ratio = std::numeric_limits<double>::infinity();
  }
  return report;
}

}  // namespace mobrep
