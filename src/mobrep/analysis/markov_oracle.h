#ifndef MOBREP_ANALYSIS_MARKOV_ORACLE_H_
#define MOBREP_ANALYSIS_MARKOV_ORACLE_H_

#include <functional>

#include "mobrep/core/cost_model.h"

namespace mobrep {

// Exact steady-state expected cost per request, computed *without* the
// closed-form formulas, as an independent oracle for testing them.
//
// Sliding-window policies are memoryless given the window contents, and for
// an i.i.d. Bernoulli(theta) request stream the stationary distribution of
// the window is product-form: P(w) = theta^{#writes(w)} (1-theta)^{#reads(w)}.
// The oracle enumerates all 2^k windows, drives the *actual policy
// implementation* from each state, and averages the priced actions. This
// cross-checks formula, policy code, and cost model against each other.
//
// Cost: O(2^k); intended for k <= ~20 in tests.
double MarkovExpectedCostSlidingWindow(int k, bool sw1_delete_optimization,
                                       double theta, const CostModel& model);

// Same oracle with an arbitrary per-action pricing function instead of a
// CostModel; used by the ablation study to evaluate alternative pricing
// conventions (e.g. charging the allocation piggyback as a control
// message).
double MarkovExpectedCostSlidingWindowPriced(
    int k, bool sw1_delete_optimization, double theta,
    const std::function<double(ActionKind)>& price);

// Exact steady-state expected cost of T1m / T2m via their explicit Markov
// chains (states = run-length counters), solved by power iteration. These
// re-derive the chain independently of the policy classes.
double MarkovExpectedCostT1m(int m, double theta, const CostModel& model);
double MarkovExpectedCostT2m(int m, double theta, const CostModel& model);

}  // namespace mobrep

#endif  // MOBREP_ANALYSIS_MARKOV_ORACLE_H_
