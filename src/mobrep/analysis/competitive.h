#ifndef MOBREP_ANALYSIS_COMPETITIVE_H_
#define MOBREP_ANALYSIS_COMPETITIVE_H_

#include "mobrep/common/status.h"
#include "mobrep/core/cost_model.h"
#include "mobrep/core/policy.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/core/schedule.h"

namespace mobrep {

// Competitiveness (paper §3): algorithm A is c-competitive if there are
// constants c >= 1 and b >= 0 with COST_A(s) <= c * COST_M(s) + b for every
// schedule s, M being the offline optimal. This module provides the paper's
// claimed (tight) factors and tools to measure ratios empirically.

// The competitive factor the paper claims (and proves tight) for `spec`
// under `model`:
//   * SWk, connection model: k + 1 (Thm. 4); also SW1 (k = 1).
//   * SW1, message model: 1 + 2*omega (Thm. 11).
//   * SWk (k > 1), message model: (1 + omega/2)*(k + 1) + omega (Thm. 12).
//   * T1m / T2m, connection model: m + 1 (§7.1).
//   * T1m, message model: (m + 1)*(1 + omega); T2m: (m + 1) + 2*omega.
//     (Our derivations — the paper analyzes T-policies in the connection
//     model only; verified empirically in tests/benches.)
//   * ST1 / ST2: not competitive in either model — returns an error.
Result<double> ClaimedCompetitiveFactor(const PolicySpec& spec,
                                        const CostModel& model);

// COST_A(s) and COST_M(s) for one schedule, plus their ratio.
struct RatioReport {
  double policy_cost = 0.0;
  double offline_cost = 0.0;
  // (policy_cost - additive_b) / offline_cost; +infinity when the offline
  // cost is zero but the policy paid more than additive_b; 1.0 when both
  // are effectively zero.
  double ratio = 1.0;
};

// Resets the policy and measures it against the offline optimal on `s`.
// `additive_b` is subtracted from the policy cost before dividing (the
// constant b in the competitiveness definition; useful to discount the
// fixed start-state transient).
RatioReport MeasureRatio(AllocationPolicy* policy, const Schedule& s,
                         const CostModel& model, double additive_b = 0.0);

// Exhaustive worst case over *every* schedule of exactly `length` requests
// (2^length of them; practical to ~20): the supremum the adversary can
// force at that horizon and a schedule attaining it. Ground truth for the
// adversarial constructions used elsewhere.
struct ExhaustiveWorstCase {
  double ratio = 0.0;
  Schedule schedule;
  double policy_cost = 0.0;
  double offline_cost = 0.0;
};

ExhaustiveWorstCase ExhaustiveWorstRatio(AllocationPolicy* policy,
                                         const CostModel& model, int length,
                                         double additive_b = 0.0);

}  // namespace mobrep

#endif  // MOBREP_ANALYSIS_COMPETITIVE_H_
