#ifndef MOBREP_ANALYSIS_THRESHOLDS_H_
#define MOBREP_ANALYSIS_THRESHOLDS_H_

#include "mobrep/common/status.h"

namespace mobrep {

// Corollaries 3 and 4 of the paper (§6.3) and the accompanying figure: in
// the message model, when does SWk's average expected cost drop below
// SW1's?
//
//   omega <= 0.4 : never — SW1 has the best average expected cost.
//   omega >  0.4 : for all k >= k0(omega), with
//       k0_real(omega) = ((10 - omega) + sqrt(100 - 68*omega
//                          + 121*omega^2)) / (2*(5*omega - 2)).
//
// The paper's worked examples: omega = 0.45 -> k >= 39; omega = 0.8 -> k >= 7.

// The real-valued root k0_real(omega); requires omega > 0.4.
Result<double> KThresholdReal(double omega);

// Smallest odd k > 1 with AVG_SWk(omega) <= AVG_SW1(omega), searched
// directly over the closed forms; fails when omega <= 0.4 (Corollary 3).
Result<int> MinOddKBeatingSw1(double omega, int k_max = 1000001);

}  // namespace mobrep

#endif  // MOBREP_ANALYSIS_THRESHOLDS_H_
