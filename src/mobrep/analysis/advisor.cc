#include "mobrep/analysis/advisor.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "mobrep/analysis/average_cost.h"
#include "mobrep/analysis/competitive.h"
#include "mobrep/analysis/dominance.h"
#include "mobrep/analysis/expected_cost.h"
#include "mobrep/common/strings.h"

namespace mobrep {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

int LargestOddAtMost(int value) {
  if (value < 1) return 0;
  return value % 2 == 1 ? value : value - 1;
}

// Candidate under consideration.
struct Candidate {
  PolicySpec spec;
  double cost;
  double factor;
  std::string why;
};

// The largest odd window size whose claimed competitive factor fits the
// budget, or 0 if none does.
int MaxFeasibleWindow(const CostModel& model, double max_factor,
                      int max_parameter) {
  if (!std::isfinite(max_factor)) return LargestOddAtMost(max_parameter);
  const bool connection = model.kind() == CostModelKind::kConnection;
  const double omega = model.omega();
  double bound;
  if (connection) {
    // k + 1 <= max_factor.
    bound = std::floor(max_factor - 1.0);
  } else {
    // (1 + omega/2)(k+1) + omega <= max_factor.
    bound = std::floor((max_factor - omega) / (1.0 + omega / 2.0) - 1.0);
  }
  bound = std::clamp(bound, 0.0, static_cast<double>(max_parameter));
  return LargestOddAtMost(static_cast<int>(bound));
}

// The largest threshold parameter m whose T-policy factor fits the budget.
int MaxFeasibleThreshold(const CostModel& model, bool t1, double max_factor,
                         int max_parameter) {
  if (!std::isfinite(max_factor)) return max_parameter;
  const bool connection = model.kind() == CostModelKind::kConnection;
  const double omega = model.omega();
  double bound;
  if (connection) {
    bound = max_factor - 1.0;  // m + 1 <= max_factor
  } else if (t1) {
    bound = max_factor / (1.0 + omega) - 1.0;  // (m+1)(1+omega)
  } else {
    bound = max_factor - 2.0 * omega - 1.0;  // (m+1) + 2 omega
  }
  bound = std::clamp(std::floor(bound), 0.0,
                     static_cast<double>(max_parameter));
  return static_cast<int>(bound);
}

}  // namespace

Result<Recommendation> RecommendPolicy(const AdvisorQuery& query) {
  if (query.theta.has_value() &&
      (*query.theta < 0.0 || *query.theta > 1.0)) {
    return InvalidArgumentError("theta must lie in [0, 1]");
  }
  if (query.max_competitive_factor < 1.0) {
    return InvalidArgumentError("no online algorithm beats factor 1");
  }
  if (query.max_parameter < 1) {
    return InvalidArgumentError("max_parameter must be at least 1");
  }

  const CostModel& model = query.model;
  const bool need_bound = std::isfinite(query.max_competitive_factor);
  std::vector<Candidate> candidates;

  auto add = [&](const PolicySpec& spec, std::string why) {
    const auto cost = query.theta.has_value()
                          ? ExpectedCost(spec, model, *query.theta)
                          : AverageExpectedCost(spec, model);
    if (!cost.ok()) return;
    const auto factor = ClaimedCompetitiveFactor(spec, model);
    const double f = factor.ok() ? *factor : kInf;
    if (need_bound && f > query.max_competitive_factor + 1e-9) return;
    candidates.push_back({spec, *cost, f, std::move(why)});
  };

  // Statics: admissible only when no worst-case bound is demanded.
  if (!need_bound) {
    add({PolicyKind::kSt1, 0},
        "static one-copy; best expected cost when writes dominate "
        "(not competitive)");
    add({PolicyKind::kSt2, 0},
        "static two-copies; best expected cost when reads dominate "
        "(not competitive)");
  }

  // SW1 and the best feasible SWk.
  add({PolicyKind::kSw1, 1},
      model.kind() == CostModelKind::kConnection
          ? "window of one: smallest competitive factor (2) in the "
            "connection model"
          : "SW1: best worst case in the message model (Thm. 11) and best "
            "AVG for omega <= 0.4 (Cor. 3)");
  const int k = MaxFeasibleWindow(
      model, need_bound ? query.max_competitive_factor : kInf,
      query.max_parameter);
  if (k >= 3) {
    add({PolicyKind::kSw, k},
        StrFormat("largest window within the worst-case budget; AVG "
                  "decreases with k (eq. %s)",
                  model.kind() == CostModelKind::kConnection ? "6" : "12"));
  }

  // T-policies: sensible when theta is known (they approximate the better
  // static with a competitiveness guarantee, §7.1).
  if (query.theta.has_value()) {
    const int m1 = MaxFeasibleThreshold(
        model, /*t1=*/true, need_bound ? query.max_competitive_factor : kInf,
        query.max_parameter);
    if (m1 >= 1) {
      add({PolicyKind::kT1, m1},
          "modified static one-copy: approaches ST1's expected cost while "
          "staying (m+1)-competitive (§7.1)");
    }
    const int m2 = MaxFeasibleThreshold(
        model, /*t1=*/false,
        need_bound ? query.max_competitive_factor : kInf,
        query.max_parameter);
    if (m2 >= 1) {
      add({PolicyKind::kT2, m2},
          "modified static two-copies: approaches ST2's expected cost "
          "while staying (m+1)-competitive (§7.1)");
    }
  }

  if (candidates.empty()) {
    return FailedPreconditionError(StrFormat(
        "no policy satisfies a competitive factor of %.3f under the %s "
        "model",
        query.max_competitive_factor, model.name().c_str()));
  }

  // Minimize predicted cost; break ties toward the simpler policy (smaller
  // parameter), then toward the smaller worst-case factor.
  const auto better = [](const Candidate& a, const Candidate& b) {
    constexpr double kEps = 1e-12;
    if (a.cost < b.cost - kEps) return true;
    if (a.cost > b.cost + kEps) return false;
    if (a.spec.parameter != b.spec.parameter) {
      return a.spec.parameter < b.spec.parameter;
    }
    return a.factor < b.factor;
  };
  const Candidate* best = &candidates.front();
  for (const Candidate& c : candidates) {
    if (better(c, *best)) best = &c;
  }

  Recommendation rec;
  rec.spec = best->spec;
  rec.predicted_cost = best->cost;
  rec.competitive_factor = best->factor;
  rec.rationale = StrFormat(
      "%s policy %s: predicted %s cost %.4f per request%s. %s",
      query.theta.has_value() ? "theta known —" : "theta unknown (AVG) —",
      best->spec.ToString().c_str(),
      query.theta.has_value() ? "expected" : "average expected",
      best->cost,
      std::isfinite(best->factor)
          ? StrFormat(", worst case within %.2fx of clairvoyant optimal",
                      best->factor)
                .c_str()
          : ", no worst-case guarantee",
      best->why.c_str());
  return rec;
}

}  // namespace mobrep
