#ifndef MOBREP_ANALYSIS_TRANSIENT_H_
#define MOBREP_ANALYSIS_TRANSIENT_H_

#include <vector>

#include "mobrep/core/cost_model.h"
#include "mobrep/core/schedule.h"

namespace mobrep {

// Exact transient (non-steady-state) analysis of the sliding-window
// algorithms: the expected cost of the t-th request after a regime change,
// computed by evolving the exact distribution over the 2^k window states.
//
// This quantifies the paper's window-size trade-off from the *adaptation*
// side: after theta jumps, SWk needs about (k+1)/2 requests before the
// window majority flips, so larger windows track slow drift better but
// react to regime changes more slowly. Steady-state formulas (eq. 5 /
// eq. 11) are the t -> infinity limits of these curves, which gives the
// test oracle.
//
// Cost: O(t * 2^k) time; intended for k <= ~15.

// How the window is filled at t = 0.
enum class TransientStart {
  // Window all writes, no copy at the MC (the repo's default initial
  // state; also the state after a long write-only regime).
  kAllWrites,
  // Window all reads, copy at the MC (after a long read-only regime).
  kAllReads,
  // Window distributed according to the stationary law of a previous
  // regime with write fraction `previous_theta`.
  kStationaryOfPreviousTheta,
};

struct TransientSpec {
  int k = 9;                    // odd window size
  bool sw1_delete_optimization = false;  // only meaningful for k == 1
  TransientStart start = TransientStart::kAllWrites;
  double previous_theta = 0.0;  // for kStationaryOfPreviousTheta
};

// E[cost of request t] for t = 1..horizon under write-probability `theta`,
// starting from the given initial window distribution.
std::vector<double> TransientExpectedCosts(const TransientSpec& spec,
                                           double theta,
                                           const CostModel& model,
                                           int horizon);

// P[the MC holds a copy after request t] for t = 1..horizon.
std::vector<double> TransientCopyProbability(const TransientSpec& spec,
                                             double theta, int horizon);

// The smallest t with |E[cost of request t] - steady state| <= tolerance
// for all t' >= t within the horizon; returns horizon + 1 if never.
int AdaptationTime(const TransientSpec& spec, double theta,
                   const CostModel& model, double tolerance = 1e-3,
                   int horizon = 10000);

}  // namespace mobrep

#endif  // MOBREP_ANALYSIS_TRANSIENT_H_
