#ifndef MOBREP_ANALYSIS_DOMINANCE_H_
#define MOBREP_ANALYSIS_DOMINANCE_H_

#include "mobrep/common/status.h"

namespace mobrep {

// Theorem 6 / Figure 1 of the paper: for a known, fixed theta in the
// message model, the expected-cost-optimal algorithm among {ST1, ST2, SW1}
// as a function of (theta, omega).

enum class MessageDominant : uint8_t {
  kSt1,  // theta above the upper boundary: writes dominate, keep one copy
  kSw1,  // middle band: the dynamic window-of-one algorithm wins
  kSt2,  // theta below the lower boundary: reads dominate, keep two copies
};

const char* MessageDominantName(MessageDominant which);

// Upper region boundary theta = (1 + omega) / (1 + 2*omega).
double DominanceUpperBoundary(double omega);

// Lower region boundary theta = 2*omega / (1 + 2*omega).
double DominanceLowerBoundary(double omega);

// Classification using Theorem 6's inequalities (boundary values resolved
// toward SW1, matching the theorem's strict inequalities).
MessageDominant ClassifyByTheorem6(double theta, double omega);

// Classification by directly comparing the three closed-form expected
// costs. Tests assert this agrees with ClassifyByTheorem6 off-boundary.
MessageDominant ClassifyByExpectedCosts(double theta, double omega);

}  // namespace mobrep

#endif  // MOBREP_ANALYSIS_DOMINANCE_H_
