#include "mobrep/analysis/dominance.h"

#include "mobrep/analysis/expected_cost.h"
#include "mobrep/common/check.h"

namespace mobrep {

const char* MessageDominantName(MessageDominant which) {
  switch (which) {
    case MessageDominant::kSt1:
      return "ST1";
    case MessageDominant::kSw1:
      return "SW1";
    case MessageDominant::kSt2:
      return "ST2";
  }
  return "unknown";
}

double DominanceUpperBoundary(double omega) {
  MOBREP_CHECK(omega >= 0.0 && omega <= 1.0);
  return (1.0 + omega) / (1.0 + 2.0 * omega);
}

double DominanceLowerBoundary(double omega) {
  MOBREP_CHECK(omega >= 0.0 && omega <= 1.0);
  return 2.0 * omega / (1.0 + 2.0 * omega);
}

MessageDominant ClassifyByTheorem6(double theta, double omega) {
  if (theta > DominanceUpperBoundary(omega)) return MessageDominant::kSt1;
  if (theta < DominanceLowerBoundary(omega)) return MessageDominant::kSt2;
  return MessageDominant::kSw1;
}

MessageDominant ClassifyByExpectedCosts(double theta, double omega) {
  const double st1 = ExpSt1Message(theta, omega);
  const double st2 = ExpSt2Message(theta, omega);
  const double sw1 = ExpSw1Message(theta, omega);
  if (sw1 <= st1 && sw1 <= st2) return MessageDominant::kSw1;
  if (st1 <= st2) return MessageDominant::kSt1;
  return MessageDominant::kSt2;
}

}  // namespace mobrep
