#ifndef MOBREP_ANALYSIS_ADVISOR_H_
#define MOBREP_ANALYSIS_ADVISOR_H_

#include <limits>
#include <optional>
#include <string>

#include "mobrep/common/status.h"
#include "mobrep/core/cost_model.h"
#include "mobrep/core/policy_factory.h"

namespace mobrep {

// Codifies the paper's §9 guidance: "an allocation method should be chosen
// to minimize the expected cost, provided that it has some bound on the
// worst case behavior."
//
// Given the cost model, what is known about theta, and the tolerable
// worst-case (competitive) factor, recommends a policy and explains why.

struct AdvisorQuery {
  CostModel model = CostModel::Connection();

  // The write fraction, when it is known and stable. nullopt means theta
  // is unknown or drifts uniformly over [0, 1] — the AVG regime.
  std::optional<double> theta;

  // Largest acceptable competitive factor; infinity lifts the requirement
  // entirely (then, with a known theta, a static method may win).
  double max_competitive_factor = std::numeric_limits<double>::infinity();

  // Cap on window/threshold parameters the caller is willing to maintain.
  int max_parameter = 1001;
};

struct Recommendation {
  PolicySpec spec;
  // EXP(theta) when theta is known, AVG otherwise.
  double predicted_cost = 0.0;
  // Claimed competitive factor; infinity for the statics.
  double competitive_factor = std::numeric_limits<double>::infinity();
  // Human-readable reasoning referencing the paper's results.
  std::string rationale;
};

// Fails only on inconsistent input (theta outside [0,1], factor < 1, or no
// policy satisfying the worst-case bound — e.g. max factor below 2 in the
// connection model).
Result<Recommendation> RecommendPolicy(const AdvisorQuery& query);

}  // namespace mobrep

#endif  // MOBREP_ANALYSIS_ADVISOR_H_
