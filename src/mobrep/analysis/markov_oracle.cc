#include "mobrep/analysis/markov_oracle.h"

#include <cmath>
#include <functional>
#include <cstdint>
#include <vector>

#include "mobrep/common/check.h"
#include "mobrep/core/sliding_window_policy.h"

namespace mobrep {
namespace {

// Stationary distribution of a small chain by power iteration.
// transition[s] = {(next_state, probability), ...} with probabilities
// summing to 1 per state.
std::vector<double> StationaryDistribution(
    const std::vector<std::vector<std::pair<int, double>>>& transitions) {
  const size_t n = transitions.size();
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < 200000; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (size_t s = 0; s < n; ++s) {
      for (const auto& [t, p] : transitions[s]) {
        next[static_cast<size_t>(t)] += pi[s] * p;
      }
    }
    double delta = 0.0;
    for (size_t s = 0; s < n; ++s) delta += std::fabs(next[s] - pi[s]);
    pi.swap(next);
    if (delta < 1e-15) break;
  }
  return pi;
}

}  // namespace

double MarkovExpectedCostSlidingWindow(int k, bool sw1_delete_optimization,
                                       double theta, const CostModel& model) {
  return MarkovExpectedCostSlidingWindowPriced(
      k, sw1_delete_optimization, theta,
      [&model](ActionKind action) { return model.Price(action); });
}

double MarkovExpectedCostSlidingWindowPriced(
    int k, bool sw1_delete_optimization, double theta,
    const std::function<double(ActionKind)>& price) {
  MOBREP_CHECK_MSG(k >= 1 && k <= 24, "oracle enumerates 2^k windows");
  MOBREP_CHECK(theta >= 0.0 && theta <= 1.0);

  SlidingWindowPolicy policy(k, sw1_delete_optimization);
  std::vector<Op> window(static_cast<size_t>(k), Op::kRead);

  double expected = 0.0;
  const uint64_t count = uint64_t{1} << k;
  for (uint64_t bits = 0; bits < count; ++bits) {
    int writes = 0;
    for (int i = 0; i < k; ++i) {
      const bool is_write = (bits >> i) & 1;
      window[static_cast<size_t>(i)] = is_write ? Op::kWrite : Op::kRead;
      writes += is_write ? 1 : 0;
    }
    const int reads = k - writes;
    const double p_window =
        std::pow(theta, writes) * std::pow(1.0 - theta, reads);
    if (p_window == 0.0) continue;

    // In steady state the copy exists iff the window majority is reads.
    const bool has_copy = reads > writes;
    for (const Op op : {Op::kRead, Op::kWrite}) {
      const double p_op = op == Op::kWrite ? theta : 1.0 - theta;
      if (p_op == 0.0) continue;
      policy.SetState(has_copy, window);
      const ActionKind action = policy.OnRequest(op);
      expected += p_window * p_op * price(action);
    }
  }
  return expected;
}

double MarkovExpectedCostT1m(int m, double theta, const CostModel& model) {
  MOBREP_CHECK(m >= 1);
  MOBREP_CHECK(theta >= 0.0 && theta <= 1.0);
  // States 0..m-1: one-copy scheme with j consecutive reads seen.
  // State m: two-copies scheme.
  const int kTwoCopy = m;
  std::vector<std::vector<std::pair<int, double>>> transitions(
      static_cast<size_t>(m + 1));
  for (int j = 0; j < m; ++j) {
    const int on_read = j + 1 == m ? kTwoCopy : j + 1;
    transitions[static_cast<size_t>(j)] = {{on_read, 1.0 - theta},
                                           {0, theta}};
  }
  transitions[static_cast<size_t>(kTwoCopy)] = {{kTwoCopy, 1.0 - theta},
                                                {0, theta}};

  const std::vector<double> pi = StationaryDistribution(transitions);

  const double remote_read = model.Price(ActionKind::kRemoteRead);
  const double alloc_read = model.Price(ActionKind::kRemoteReadAllocate);
  const double revert_write =
      model.Price(ActionKind::kWritePropagateDeallocate);
  double expected = 0.0;
  for (int j = 0; j < m; ++j) {
    const double read_price = j + 1 == m ? alloc_read : remote_read;
    expected += pi[static_cast<size_t>(j)] * (1.0 - theta) * read_price;
    // Writes in the one-copy scheme are free.
  }
  expected += pi[static_cast<size_t>(kTwoCopy)] * theta * revert_write;
  return expected;
}

double MarkovExpectedCostT2m(int m, double theta, const CostModel& model) {
  MOBREP_CHECK(m >= 1);
  MOBREP_CHECK(theta >= 0.0 && theta <= 1.0);
  // States 0..m-1: two-copies scheme with j consecutive writes seen.
  // State m: one-copy scheme.
  const int kOneCopy = m;
  std::vector<std::vector<std::pair<int, double>>> transitions(
      static_cast<size_t>(m + 1));
  for (int j = 0; j < m; ++j) {
    const int on_write = j + 1 == m ? kOneCopy : j + 1;
    transitions[static_cast<size_t>(j)] = {{on_write, theta},
                                           {0, 1.0 - theta}};
  }
  transitions[static_cast<size_t>(kOneCopy)] = {{kOneCopy, theta},
                                                {0, 1.0 - theta}};

  const std::vector<double> pi = StationaryDistribution(transitions);

  const double propagate = model.Price(ActionKind::kWritePropagate);
  const double dealloc_write =
      model.Price(ActionKind::kWritePropagateDeallocate);
  const double alloc_read = model.Price(ActionKind::kRemoteReadAllocate);
  double expected = 0.0;
  for (int j = 0; j < m; ++j) {
    const double write_price = j + 1 == m ? dealloc_write : propagate;
    expected += pi[static_cast<size_t>(j)] * theta * write_price;
    // Reads in the two-copies scheme are free.
  }
  expected += pi[static_cast<size_t>(kOneCopy)] * (1.0 - theta) * alloc_read;
  return expected;
}

}  // namespace mobrep
