#include "mobrep/analysis/average_cost.h"

#include "mobrep/analysis/expected_cost.h"
#include "mobrep/common/check.h"
#include "mobrep/common/math.h"
#include "mobrep/common/strings.h"

namespace mobrep {
namespace {

void CheckOddK(int k) {
  MOBREP_CHECK_MSG(k >= 1 && k % 2 == 1,
                   "the paper's SWk analysis assumes an odd window size");
}

}  // namespace

double AvgStConnection() { return 0.5; }

double AvgSwkConnection(int k) {
  CheckOddK(k);
  return 0.25 + 1.0 / (4.0 * (k + 2));
}

double AvgSt1Message(double omega) { return (1.0 + omega) / 2.0; }

double AvgSt2Message(double omega) {
  (void)omega;
  return 0.5;
}

double AvgSw1Message(double omega) { return (1.0 + 2.0 * omega) / 6.0; }

double AvgSwkMessage(int k, double omega) {
  CheckOddK(k);
  const double kd = k;
  return 0.25 + 1.0 / (4.0 * (kd + 2)) +
         omega * (1.0 / 8.0 + 3.0 / (8.0 * (kd + 2)) +
                  1.0 / (4.0 * kd * (kd + 2)));
}

double AvgSwkMessageLowerBound(double omega) { return 0.25 + omega / 8.0; }

double AvgT1mConnection(int m) {
  MOBREP_CHECK(m >= 1);
  const double md = m;
  return 0.5 - md / ((md + 1) * (md + 2));
}

double AvgT2mConnection(int m) { return AvgT1mConnection(m); }

Result<double> AverageExpectedCost(const PolicySpec& spec,
                                   const CostModel& model) {
  const bool connection = model.kind() == CostModelKind::kConnection;
  const double omega = model.omega();
  switch (spec.kind) {
    case PolicyKind::kSt1:
      return connection ? AvgStConnection() : AvgSt1Message(omega);
    case PolicyKind::kSt2:
      return connection ? AvgStConnection() : AvgSt2Message(omega);
    case PolicyKind::kSw1:
      return connection ? AvgSwkConnection(1) : AvgSw1Message(omega);
    case PolicyKind::kSw:
      if (spec.parameter % 2 == 0) {
        return InvalidArgumentError(StrFormat(
            "no closed form for even window size %d", spec.parameter));
      }
      return connection ? AvgSwkConnection(spec.parameter)
                        : AvgSwkMessage(spec.parameter, omega);
    case PolicyKind::kT1:
      if (connection) return AvgT1mConnection(spec.parameter);
      // EXP_T1m scales by (1 + omega) in the message model.
      return (1.0 + omega) * AvgT1mConnection(spec.parameter);
    case PolicyKind::kT2:
      if (connection) return AvgT2mConnection(spec.parameter);
      return AverageExpectedCostNumeric(spec, model);
  }
  return InternalError("unreachable policy kind");
}

Result<double> AverageExpectedCostNumeric(const PolicySpec& spec,
                                          const CostModel& model, double tol) {
  // Probe one point first so invalid specs fail fast with a clear status.
  auto probe = ExpectedCost(spec, model, 0.5);
  if (!probe.ok()) return probe.status();
  return AdaptiveSimpson(
      [&](double theta) { return *ExpectedCost(spec, model, theta); }, 0.0,
      1.0, tol);
}

}  // namespace mobrep
