#ifndef MOBREP_ANALYSIS_EXPECTED_COST_H_
#define MOBREP_ANALYSIS_EXPECTED_COST_H_

#include "mobrep/common/status.h"
#include "mobrep/core/cost_model.h"
#include "mobrep/core/policy_factory.h"

namespace mobrep {

// Closed-form expected cost per relevant request, as a function of
// theta = lambda_w / (lambda_w + lambda_r), the probability that the next
// relevant request is a write (paper §2, §5, §6). All formulas are the
// paper's equations; each is cross-checked in tests against an exact Markov
// steady-state oracle and against Monte-Carlo simulation.

// alpha_k (paper eq. 4): the probability that the majority of k = 2n+1
// consecutive requests are reads, i.e. that Binomial(k, theta) <= n.
double AlphaK(int k, double theta);

// Steady-state probability that one SWk request triggers a deallocation
// (equivalently, by symmetry, an allocation): the newest request is a write,
// the dropped one a read, and the shared 2n requests split n/n. Equals
// C(2n, n) * theta^(n+1) * (1-theta)^(n+1). Requires odd k.
double SwkTransitionProbability(int k, double theta);

// --- Connection (time-based) cost model (paper §5) ---

// EXP_ST1 = 1 - theta (paper eq. 2).
double ExpSt1Connection(double theta);
// EXP_ST2 = theta (paper eq. 2).
double ExpSt2Connection(double theta);
// EXP_SWk = theta*alpha_k + (1-theta)*(1-alpha_k) (paper Thm. 1 / eq. 5).
// Holds for every odd k >= 1 (SW1's delete optimization does not change
// connection-model cost).
double ExpSwkConnection(int k, double theta);
// EXP_T1m = (1-theta) + (1-theta)^m * (2*theta - 1) (paper §7.1).
double ExpT1mConnection(int m, double theta);
// EXP_T2m = theta + theta^m * (1 - 2*theta) (mirror image of T1m).
double ExpT2mConnection(int m, double theta);

// --- Message cost model (paper §6), omega in [0, 1] ---

// EXP_ST1 = (1 + omega) * (1 - theta) (paper eq. 7).
double ExpSt1Message(double theta, double omega);
// EXP_ST2 = theta (paper eq. 7).
double ExpSt2Message(double theta, double omega);
// EXP_SW1 = theta * (1-theta) * (1 + 2*omega) (paper Thm. 5 / eq. 9).
double ExpSw1Message(double theta, double omega);
// EXP_SWk = theta*alpha_k + (1-theta)*(1-alpha_k)*(1+omega)
//           + omega * C(2n,n) * theta^(n+1) * (1-theta)^(n+1)
// (paper Thm. 8 / eq. 11; requires odd k; k == 1 gives the *unoptimized*
// window-of-one algorithm, not SW1).
double ExpSwkMessage(int k, double theta, double omega);
// Our derivation under the repo's pricing (T-policies are analyzed by the
// paper in the connection model only): EXP_T1m scales by (1 + omega)
// because both its chargeable events (remote reads; the reverting
// propagate+deallocate write) cost 1 + omega.
double ExpT1mMessage(int m, double theta, double omega);
// EXP_T2m = theta*(1 - theta^m) + (1-theta)*theta^m*(1 + 2*omega).
double ExpT2mMessage(int m, double theta, double omega);

// Generic dispatcher: the closed-form expected cost of `spec` under `model`
// at write-probability `theta`. Fails for specs/models with no closed form
// (none currently) or invalid parameters (even window sizes).
Result<double> ExpectedCost(const PolicySpec& spec, const CostModel& model,
                            double theta);

}  // namespace mobrep

#endif  // MOBREP_ANALYSIS_EXPECTED_COST_H_
