#include "mobrep/analysis/transient.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include "mobrep/common/check.h"

namespace mobrep {
namespace {

// Window encoding: bit (k-1) is the oldest request, bit 0 the newest;
// a set bit is a write. Sliding appends at bit 0 and drops bit (k-1).
struct Evolver {
  int k;
  bool sw1_opt;
  uint32_t all_mask;
  std::vector<uint8_t> writes_of;  // popcount per mask

  Evolver(int k_in, bool sw1_opt_in) : k(k_in), sw1_opt(sw1_opt_in) {
    MOBREP_CHECK_MSG(k >= 1 && k <= 20, "transient analysis enumerates 2^k");
    all_mask = (uint32_t{1} << k) - 1;
    writes_of.resize(size_t{1} << k);
    for (uint32_t m = 0; m <= all_mask; ++m) {
      writes_of[m] = static_cast<uint8_t>(__builtin_popcount(m));
    }
  }

  bool MajorityReads(uint32_t mask) const {
    return k - writes_of[mask] > writes_of[mask];
  }

  uint32_t Slide(uint32_t mask, bool write) const {
    return ((mask << 1) & all_mask) | (write ? 1u : 0u);
  }

  // Cost of servicing `op` from window `mask` (copy state = majority
  // reads, the §4 invariant). Mirrors SlidingWindowPolicy's decisions;
  // tests cross-check against the real policy by simulation.
  double Cost(uint32_t mask, Op op, const CostModel& model) const {
    const bool copy = MajorityReads(mask);
    if (op == Op::kRead) {
      // Local reads are free; remote reads cost the same whether or not
      // the allocation piggybacks.
      return copy ? 0.0 : model.RemoteReadPrice();
    }
    if (!copy) return 0.0;
    if (sw1_opt) return model.Price(ActionKind::kWriteInvalidate);
    const uint32_t next = Slide(mask, /*write=*/true);
    return MajorityReads(next)
               ? model.Price(ActionKind::kWritePropagate)
               : model.Price(ActionKind::kWritePropagateDeallocate);
  }
};

std::vector<double> InitialDistribution(const TransientSpec& spec,
                                        const Evolver& evolver) {
  const size_t states = size_t{1} << spec.k;
  std::vector<double> p(states, 0.0);
  switch (spec.start) {
    case TransientStart::kAllWrites:
      p[evolver.all_mask] = 1.0;
      break;
    case TransientStart::kAllReads:
      p[0] = 1.0;
      break;
    case TransientStart::kStationaryOfPreviousTheta: {
      const double theta = spec.previous_theta;
      MOBREP_CHECK(theta >= 0.0 && theta <= 1.0);
      for (uint32_t m = 0; m < states; ++m) {
        const int writes = evolver.writes_of[m];
        p[m] = std::pow(theta, writes) *
               std::pow(1.0 - theta, spec.k - writes);
      }
      break;
    }
  }
  return p;
}

}  // namespace

std::vector<double> TransientExpectedCosts(const TransientSpec& spec,
                                           double theta,
                                           const CostModel& model,
                                           int horizon) {
  MOBREP_CHECK(theta >= 0.0 && theta <= 1.0);
  MOBREP_CHECK(horizon >= 1);
  MOBREP_CHECK_MSG(!spec.sw1_delete_optimization || spec.k == 1,
                   "the delete optimization is defined only for k == 1");
  const Evolver evolver(spec.k, spec.sw1_delete_optimization);
  std::vector<double> p = InitialDistribution(spec, evolver);
  std::vector<double> next(p.size());
  std::vector<double> costs;
  costs.reserve(static_cast<size_t>(horizon));

  for (int t = 0; t < horizon; ++t) {
    double expected = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (uint32_t m = 0; m < p.size(); ++m) {
      const double pm = p[m];
      if (pm == 0.0) continue;
      // Write branch.
      if (theta > 0.0) {
        expected += pm * theta * evolver.Cost(m, Op::kWrite, model);
        next[evolver.Slide(m, true)] += pm * theta;
      }
      // Read branch.
      if (theta < 1.0) {
        expected += pm * (1.0 - theta) * evolver.Cost(m, Op::kRead, model);
        next[evolver.Slide(m, false)] += pm * (1.0 - theta);
      }
    }
    costs.push_back(expected);
    p.swap(next);
  }
  return costs;
}

std::vector<double> TransientCopyProbability(const TransientSpec& spec,
                                             double theta, int horizon) {
  MOBREP_CHECK(theta >= 0.0 && theta <= 1.0);
  MOBREP_CHECK(horizon >= 1);
  const Evolver evolver(spec.k, spec.sw1_delete_optimization);
  std::vector<double> p = InitialDistribution(spec, evolver);
  std::vector<double> next(p.size());
  std::vector<double> copy_probability;
  copy_probability.reserve(static_cast<size_t>(horizon));

  for (int t = 0; t < horizon; ++t) {
    std::fill(next.begin(), next.end(), 0.0);
    for (uint32_t m = 0; m < p.size(); ++m) {
      const double pm = p[m];
      if (pm == 0.0) continue;
      next[evolver.Slide(m, true)] += pm * theta;
      next[evolver.Slide(m, false)] += pm * (1.0 - theta);
    }
    p.swap(next);
    double prob = 0.0;
    for (uint32_t m = 0; m < p.size(); ++m) {
      if (evolver.MajorityReads(m)) prob += p[m];
    }
    copy_probability.push_back(prob);
  }
  return copy_probability;
}

int AdaptationTime(const TransientSpec& spec, double theta,
                   const CostModel& model, double tolerance, int horizon) {
  // The exact steady state: one step from the stationary distribution.
  TransientSpec stationary = spec;
  stationary.start = TransientStart::kStationaryOfPreviousTheta;
  stationary.previous_theta = theta;
  const double steady =
      TransientExpectedCosts(stationary, theta, model, 1).front();

  const std::vector<double> costs =
      TransientExpectedCosts(spec, theta, model, horizon);
  int settled = horizon + 1;
  for (int t = horizon - 1; t >= 0; --t) {
    if (std::fabs(costs[static_cast<size_t>(t)] - steady) > tolerance) break;
    settled = t + 1;  // request indices are 1-based
  }
  return settled;
}

}  // namespace mobrep
