#ifndef MOBREP_ANALYSIS_AVERAGE_COST_H_
#define MOBREP_ANALYSIS_AVERAGE_COST_H_

#include "mobrep/common/status.h"
#include "mobrep/core/cost_model.h"
#include "mobrep/core/policy_factory.h"

namespace mobrep {

// Average expected cost AVG_A = Integral_0^1 EXP_A(theta) d theta
// (paper eq. 1): the right measure when theta is unknown or drifts over
// time, equally likely to take any value in [0, 1].

// --- Connection model (paper §5) ---

// AVG_ST1 = AVG_ST2 = 1/2 (paper eq. 3).
double AvgStConnection();
// AVG_SWk = 1/4 + 1/(4(k+2)) (paper Thm. 3 / eq. 6); odd k.
double AvgSwkConnection(int k);

// --- Message model (paper §6) ---

// AVG_ST1 = (1 + omega)/2 (paper eq. 8).
double AvgSt1Message(double omega);
// AVG_ST2 = 1/2 (paper eq. 8).
double AvgSt2Message(double omega);
// AVG_SW1 = (1 + 2*omega)/6 (paper Thm. 7 / eq. 10).
double AvgSw1Message(double omega);
// AVG_SWk = 1/4 + 1/(4(k+2))
//           + omega*(1/8 + 3/(8(k+2)) + 1/(4k(k+2)))
// (paper Thm. 10 / eq. 12); odd k; k == 1 means the unoptimized variant.
double AvgSwkMessage(int k, double omega);
// The k -> infinity limit of AVG_SWk: 1/4 + omega/8 (paper Cor. 2 states
// AVG_SWk strictly exceeds this bound for every finite k).
double AvgSwkMessageLowerBound(double omega);

// Our closed forms for the T-policies (derived by integrating the expected
// costs; verified numerically in tests):
//   connection: AVG_T1m = 1/2 - m/((m+1)(m+2)),
//               AVG_T2m identical by symmetry.
double AvgT1mConnection(int m);
double AvgT2mConnection(int m);

// Generic dispatcher mirroring ExpectedCost(); uses closed forms where we
// have them and falls back to adaptive quadrature of ExpectedCost(theta)
// otherwise.
Result<double> AverageExpectedCost(const PolicySpec& spec,
                                   const CostModel& model);

// Numeric Integral_0^1 EXP(theta) d theta for any spec/model with a closed
// form EXP; used by tests to validate the AVG closed forms.
Result<double> AverageExpectedCostNumeric(const PolicySpec& spec,
                                          const CostModel& model,
                                          double tol = 1e-10);

}  // namespace mobrep

#endif  // MOBREP_ANALYSIS_AVERAGE_COST_H_
