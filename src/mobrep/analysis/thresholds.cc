#include "mobrep/analysis/thresholds.h"

#include <cmath>

#include "mobrep/analysis/average_cost.h"
#include "mobrep/common/check.h"
#include "mobrep/common/strings.h"

namespace mobrep {

Result<double> KThresholdReal(double omega) {
  MOBREP_CHECK(omega >= 0.0 && omega <= 1.0);
  if (omega <= 0.4) {
    return FailedPreconditionError(
        "for omega <= 0.4, SW1 always has the best average expected cost "
        "(Corollary 3)");
  }
  const double disc = 100.0 - 68.0 * omega + 121.0 * omega * omega;
  MOBREP_CHECK(disc >= 0.0);
  return ((10.0 - omega) + std::sqrt(disc)) / (2.0 * (5.0 * omega - 2.0));
}

Result<int> MinOddKBeatingSw1(double omega, int k_max) {
  MOBREP_CHECK(omega >= 0.0 && omega <= 1.0);
  const double avg_sw1 = AvgSw1Message(omega);
  for (int k = 3; k <= k_max; k += 2) {
    if (AvgSwkMessage(k, omega) <= avg_sw1) return k;
  }
  return NotFoundError(StrFormat(
      "no odd k <= %d beats SW1 at omega=%.4f (expected for omega <= 0.4)",
      k_max, omega));
}

}  // namespace mobrep
