#include "mobrep/multi/joint_workload.h"

#include <string>
#include <vector>

#include "mobrep/common/check.h"
#include "mobrep/common/strings.h"

namespace mobrep {

std::string OperationClass::Key() const {
  std::string key(1, OpToChar(op));
  key += '{';
  for (size_t i = 0; i < objects.size(); ++i) {
    if (i > 0) key += ',';
    key += StrFormat("%d", objects[i]);
  }
  key += '}';
  return key;
}

double MultiObjectWorkload::TotalRate() const {
  double total = 0.0;
  for (const OperationClass& cls : classes) total += cls.rate;
  return total;
}

Status MultiObjectWorkload::Validate() const {
  if (num_objects <= 0) {
    return InvalidArgumentError("workload needs at least one object");
  }
  for (const OperationClass& cls : classes) {
    if (cls.objects.empty()) {
      return InvalidArgumentError("operation class with an empty object set");
    }
    if (cls.rate < 0.0) {
      return InvalidArgumentError("negative class rate");
    }
    for (size_t i = 0; i < cls.objects.size(); ++i) {
      if (cls.objects[i] < 0 || cls.objects[i] >= num_objects) {
        return OutOfRangeError(
            StrFormat("object index %d out of range", cls.objects[i]));
      }
      if (i > 0 && cls.objects[i] <= cls.objects[i - 1]) {
        return InvalidArgumentError(
            "object sets must be ascending and duplicate-free");
      }
    }
  }
  if (TotalRate() <= 0.0) {
    return InvalidArgumentError("total rate must be positive");
  }
  return OkStatus();
}

MultiObjectWorkload TwoObjectWorkload(double read_x, double read_y,
                                      double read_xy, double write_x,
                                      double write_y, double write_xy) {
  MultiObjectWorkload workload;
  workload.num_objects = 2;
  workload.classes = {
      {Op::kRead, {0}, read_x},     {Op::kRead, {1}, read_y},
      {Op::kRead, {0, 1}, read_xy}, {Op::kWrite, {0}, write_x},
      {Op::kWrite, {1}, write_y},   {Op::kWrite, {0, 1}, write_xy},
  };
  return workload;
}

std::vector<int> SampleClassSequence(const MultiObjectWorkload& workload,
                                     int64_t n, Rng* rng) {
  MOBREP_CHECK(workload.Validate().ok());
  MOBREP_CHECK(n >= 0);
  const double total = workload.TotalRate();
  std::vector<int> sequence;
  sequence.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    double pick = rng->NextDouble() * total;
    int chosen = static_cast<int>(workload.classes.size()) - 1;
    for (size_t c = 0; c < workload.classes.size(); ++c) {
      pick -= workload.classes[c].rate;
      if (pick <= 0.0) {
        chosen = static_cast<int>(c);
        break;
      }
    }
    sequence.push_back(chosen);
  }
  return sequence;
}

}  // namespace mobrep
