#ifndef MOBREP_MULTI_DYNAMIC_ALLOCATOR_H_
#define MOBREP_MULTI_DYNAMIC_ALLOCATOR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "mobrep/core/cost_model.h"
#include "mobrep/multi/joint_workload.h"
#include "mobrep/multi/static_allocator.h"

namespace mobrep {

// The window-based dynamic multi-object allocator sketched in paper §7.2:
// when the joint operation frequencies are unknown, track the number of
// operations of each (op, object-set) class in a sliding window, estimate
// the frequencies from those counts, and periodically recompute the optimal
// static allocation for the estimates ("to avoid excessive overhead, this
// recomputation can be done periodically instead of after each operation").
//
// Cost accounting per operation follows the static model (ClassCost). When
// a recomputation changes the allocation, the transition itself costs
// communication: every newly replicated object must be shipped (one data
// message each) and, if any object is dropped, one delete-request control
// message covers the batch. The paper does not price transitions; this is
// our documented choice, and with the default period it is amortized away.
class DynamicMultiObjectAllocator {
 public:
  struct Options {
    int num_objects = 0;
    // Sliding window length in operations.
    int window_size = 256;
    // Re-optimize every this many operations.
    int recompute_period = 64;
    // Initial allocation: nothing replicated.
    AllocationMask initial_mask = 0;
  };

  DynamicMultiObjectAllocator(const Options& options, const CostModel& model);

  // Feeds one operation; returns the communication cost charged for it
  // (operation cost plus any transition cost triggered by a periodic
  // recomputation completing at this operation).
  double OnOperation(const OperationClass& operation);

  AllocationMask allocation_mask() const { return mask_; }
  int64_t operations() const { return operations_; }
  int64_t recomputations() const { return recomputations_; }
  int64_t reallocations() const { return reallocations_; }
  double total_cost() const { return total_cost_; }

  // Frequency estimates from the current window, as a workload whose rates
  // are window counts.
  MultiObjectWorkload EstimatedWorkload() const;

 private:
  double MaybeRecompute();

  Options options_;
  CostModel model_;
  AllocationMask mask_;

  // Window of class keys plus per-key counts and a representative class.
  std::deque<std::string> window_;
  struct ClassCount {
    OperationClass cls;
    int64_t count = 0;
  };
  std::map<std::string, ClassCount> counts_;

  int64_t operations_ = 0;
  int64_t recomputations_ = 0;
  int64_t reallocations_ = 0;
  double total_cost_ = 0.0;
};

}  // namespace mobrep

#endif  // MOBREP_MULTI_DYNAMIC_ALLOCATOR_H_
