#ifndef MOBREP_MULTI_STATIC_ALLOCATOR_H_
#define MOBREP_MULTI_STATIC_ALLOCATOR_H_

#include <cstdint>

#include "mobrep/common/random.h"
#include "mobrep/core/cost_model.h"
#include "mobrep/multi/joint_workload.h"

namespace mobrep {

// Optimal static multi-object allocation (paper §7.2): given the joint
// operation frequencies, pick for every object whether the MC replicates it
// (one-copy vs. two-copies per object) so the expected cost per operation
// is minimal.
//
// Cost of one operation under allocation mask A (bit i set = object i is
// replicated at the MC), following the paper's convention that multiple
// items ride one connection:
//   read of set S : chargeable iff S contains a non-replicated object
//                   (the MC must fetch it) — 1 connection / 1 + omega.
//   write of set S: chargeable iff S contains a replicated object
//                   (the update must be propagated) — 1 connection /
//                   1 data message.
// The message-model prices are our natural extension; the paper works this
// section in the connection model.

// Allocation bitmask over objects; object i replicated iff bit i is set.
using AllocationMask = uint32_t;

// Expected cost per operation of `mask` under `model`.
double ExpectedCostForAllocation(const MultiObjectWorkload& workload,
                                 AllocationMask mask, const CostModel& model);

// Cost of a single operation class under `mask` (0 when not chargeable).
double ClassCost(const OperationClass& cls, AllocationMask mask,
                 const CostModel& model);

struct StaticAllocation {
  AllocationMask mask = 0;
  double expected_cost = 0.0;
};

// Exhaustive optimum over all 2^num_objects allocations;
// requires num_objects <= 24.
StaticAllocation OptimalStaticAllocation(const MultiObjectWorkload& workload,
                                         const CostModel& model);

// Randomized bit-flip local search with restarts, for workloads too wide
// for enumeration. Returns the best local optimum found.
StaticAllocation LocalSearchAllocation(const MultiObjectWorkload& workload,
                                       const CostModel& model, Rng* rng,
                                       int restarts = 8);

}  // namespace mobrep

#endif  // MOBREP_MULTI_STATIC_ALLOCATOR_H_
