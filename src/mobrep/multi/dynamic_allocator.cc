#include "mobrep/multi/dynamic_allocator.h"

#include <bit>
#include <string>

#include "mobrep/common/check.h"

namespace mobrep {

DynamicMultiObjectAllocator::DynamicMultiObjectAllocator(
    const Options& options, const CostModel& model)
    : options_(options), model_(model), mask_(options.initial_mask) {
  MOBREP_CHECK(options.num_objects >= 1 && options.num_objects <= 24);
  MOBREP_CHECK(options.window_size >= 1);
  MOBREP_CHECK(options.recompute_period >= 1);
}

double DynamicMultiObjectAllocator::OnOperation(
    const OperationClass& operation) {
  // Charge the operation under the current allocation first (the
  // allocation in effect when the operation arrives services it).
  double cost = ClassCost(operation, mask_, model_);

  // Slide the window.
  const std::string key = operation.Key();
  window_.push_back(key);
  auto [it, inserted] = counts_.try_emplace(key);
  if (inserted) it->second.cls = operation;
  ++it->second.count;
  if (static_cast<int>(window_.size()) > options_.window_size) {
    const std::string& oldest = window_.front();
    auto old_it = counts_.find(oldest);
    MOBREP_CHECK(old_it != counts_.end());
    if (--old_it->second.count == 0) counts_.erase(old_it);
    window_.pop_front();
  }

  ++operations_;
  if (operations_ % options_.recompute_period == 0) {
    cost += MaybeRecompute();
  }
  total_cost_ += cost;
  return cost;
}

MultiObjectWorkload DynamicMultiObjectAllocator::EstimatedWorkload() const {
  MultiObjectWorkload workload;
  workload.num_objects = options_.num_objects;
  for (const auto& [key, entry] : counts_) {
    OperationClass cls = entry.cls;
    cls.rate = static_cast<double>(entry.count);
    workload.classes.push_back(std::move(cls));
  }
  return workload;
}

double DynamicMultiObjectAllocator::MaybeRecompute() {
  const MultiObjectWorkload estimate = EstimatedWorkload();
  if (estimate.classes.empty() || estimate.TotalRate() <= 0.0) return 0.0;
  ++recomputations_;
  const StaticAllocation best = OptimalStaticAllocation(estimate, model_);
  if (best.mask == mask_) return 0.0;

  // Transition cost: ship newly replicated objects, one control message to
  // unsubscribe if anything is dropped.
  const AllocationMask gained = best.mask & ~mask_;
  const AllocationMask dropped = mask_ & ~best.mask;
  double transition = 0.0;
  if (model_.kind() == CostModelKind::kConnection) {
    transition = 1.0;  // one connection covers the reconfiguration batch
  } else {
    transition = static_cast<double>(std::popcount(gained)) *
                 model_.Price(ActionKind::kWritePropagate);
    if (dropped != 0) transition += model_.omega();
  }
  mask_ = best.mask;
  ++reallocations_;
  return transition;
}

}  // namespace mobrep
