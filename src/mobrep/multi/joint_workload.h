#ifndef MOBREP_MULTI_JOINT_WORKLOAD_H_
#define MOBREP_MULTI_JOINT_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mobrep/common/random.h"
#include "mobrep/common/status.h"
#include "mobrep/core/schedule.h"

namespace mobrep {

// Multi-object model of paper §7.2: operations read or write a *set* of
// objects in a single request, and each distinct (operation, object-set)
// class arrives as an independent Poisson process with a known frequency.
// E.g. for two objects x, y the read classes are {x}, {y}, {x,y} with
// frequencies lambda_r,x, lambda_r,y, lambda_r,xy.

struct OperationClass {
  Op op = Op::kRead;
  // Ascending, duplicate-free object indices in [0, num_objects).
  std::vector<int> objects;
  // Poisson frequency (relative weights suffice for optimization).
  double rate = 0.0;

  // Canonical text form, e.g. "r{0,2}" — used as a map key.
  std::string Key() const;
};

struct MultiObjectWorkload {
  int num_objects = 0;
  std::vector<OperationClass> classes;

  double TotalRate() const;

  // Checks index ranges, ordering, duplicate-free sets, non-negative rates
  // and a positive total rate.
  Status Validate() const;
};

// Builds the classic two-object workload of the paper with the six joint
// frequencies (reads/writes of x only, of y only, and joint).
MultiObjectWorkload TwoObjectWorkload(double read_x, double read_y,
                                      double read_xy, double write_x,
                                      double write_y, double write_xy);

// Samples n class indices i.i.d. with probability rate/total (the merged
// Poisson process' jump chain).
std::vector<int> SampleClassSequence(const MultiObjectWorkload& workload,
                                     int64_t n, Rng* rng);

}  // namespace mobrep

#endif  // MOBREP_MULTI_JOINT_WORKLOAD_H_
