#include "mobrep/multi/static_allocator.h"

#include <limits>

#include "mobrep/common/check.h"

namespace mobrep {
namespace {

bool AnyReplicated(const OperationClass& cls, AllocationMask mask) {
  for (const int object : cls.objects) {
    if ((mask >> object) & 1U) return true;
  }
  return false;
}

bool AnyMissing(const OperationClass& cls, AllocationMask mask) {
  for (const int object : cls.objects) {
    if (((mask >> object) & 1U) == 0) return true;
  }
  return false;
}

}  // namespace

double ClassCost(const OperationClass& cls, AllocationMask mask,
                 const CostModel& model) {
  if (cls.op == Op::kRead) {
    return AnyMissing(cls, mask) ? model.RemoteReadPrice() : 0.0;
  }
  return AnyReplicated(cls, mask)
             ? model.Price(ActionKind::kWritePropagate)
             : 0.0;
}

double ExpectedCostForAllocation(const MultiObjectWorkload& workload,
                                 AllocationMask mask, const CostModel& model) {
  const double total = workload.TotalRate();
  MOBREP_CHECK(total > 0.0);
  double cost = 0.0;
  for (const OperationClass& cls : workload.classes) {
    cost += cls.rate * ClassCost(cls, mask, model);
  }
  return cost / total;
}

StaticAllocation OptimalStaticAllocation(const MultiObjectWorkload& workload,
                                         const CostModel& model) {
  MOBREP_CHECK(workload.Validate().ok());
  MOBREP_CHECK_MSG(workload.num_objects <= 24,
                   "enumeration limited to 24 objects; use "
                   "LocalSearchAllocation beyond that");
  StaticAllocation best;
  best.expected_cost = std::numeric_limits<double>::infinity();
  const AllocationMask limit = AllocationMask{1} << workload.num_objects;
  for (AllocationMask mask = 0; mask < limit; ++mask) {
    const double cost = ExpectedCostForAllocation(workload, mask, model);
    if (cost < best.expected_cost) {
      best.mask = mask;
      best.expected_cost = cost;
    }
  }
  return best;
}

StaticAllocation LocalSearchAllocation(const MultiObjectWorkload& workload,
                                       const CostModel& model, Rng* rng,
                                       int restarts) {
  MOBREP_CHECK(workload.Validate().ok());
  MOBREP_CHECK(workload.num_objects <= 32);
  MOBREP_CHECK(restarts >= 1);

  StaticAllocation best;
  best.expected_cost = std::numeric_limits<double>::infinity();
  for (int attempt = 0; attempt < restarts; ++attempt) {
    AllocationMask mask = 0;
    for (int i = 0; i < workload.num_objects; ++i) {
      if (rng->Bernoulli(0.5)) mask |= AllocationMask{1} << i;
    }
    double cost = ExpectedCostForAllocation(workload, mask, model);
    // Steepest-descent over single-bit flips.
    for (;;) {
      int best_flip = -1;
      double best_cost = cost;
      for (int i = 0; i < workload.num_objects; ++i) {
        const AllocationMask flipped = mask ^ (AllocationMask{1} << i);
        const double c = ExpectedCostForAllocation(workload, flipped, model);
        if (c < best_cost) {
          best_cost = c;
          best_flip = i;
        }
      }
      if (best_flip < 0) break;
      mask ^= AllocationMask{1} << best_flip;
      cost = best_cost;
    }
    if (cost < best.expected_cost) {
      best.mask = mask;
      best.expected_cost = cost;
    }
  }
  return best;
}

}  // namespace mobrep
