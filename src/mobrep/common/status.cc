#include "mobrep/common/status.h"

#include <string>
#include <string_view>

namespace mobrep {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

Status InvalidArgumentError(std::string_view message) {
  return Status(StatusCode::kInvalidArgument, std::string(message));
}
Status NotFoundError(std::string_view message) {
  return Status(StatusCode::kNotFound, std::string(message));
}
Status FailedPreconditionError(std::string_view message) {
  return Status(StatusCode::kFailedPrecondition, std::string(message));
}
Status OutOfRangeError(std::string_view message) {
  return Status(StatusCode::kOutOfRange, std::string(message));
}
Status InternalError(std::string_view message) {
  return Status(StatusCode::kInternal, std::string(message));
}
Status UnimplementedError(std::string_view message) {
  return Status(StatusCode::kUnimplemented, std::string(message));
}
Status DataLossError(std::string_view message) {
  return Status(StatusCode::kDataLoss, std::string(message));
}

}  // namespace mobrep
