#ifndef MOBREP_COMMON_MATH_H_
#define MOBREP_COMMON_MATH_H_

#include <cstdint>
#include <functional>

namespace mobrep {

// Natural log of n! (exact table for small n, lgamma beyond).
double LogFactorial(int n);

// Natural log of C(n, k). Requires 0 <= k <= n.
double LogBinomial(int n, int k);

// C(n, k) as a double. Requires 0 <= k <= n. Accurate to double precision
// for the ranges used in this project (n up to a few thousand).
double BinomialCoefficient(int n, int k);

// P[X = k] for X ~ Binomial(n, p). Numerically stable (log-space).
double BinomialPmf(int n, int k, double p);

// P[X <= k] for X ~ Binomial(n, p).
double BinomialCdf(int n, int k, double p);

// Adaptive Simpson quadrature of f over [a, b] to absolute tolerance tol.
// Used to verify the paper's closed-form AVG integrals numerically.
double AdaptiveSimpson(const std::function<double(double)>& f, double a,
                       double b, double tol = 1e-10);

// True iff |a - b| <= tol (absolute).
bool NearlyEqual(double a, double b, double tol);

// Running mean / variance accumulator (Welford). Used by simulations to
// report Monte-Carlo estimates with standard errors.
class RunningStat {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  // Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  // Standard error of the mean; 0 for fewer than two samples.
  double std_error() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace mobrep

#endif  // MOBREP_COMMON_MATH_H_
