#ifndef MOBREP_COMMON_OBJECT_ARRAY_H_
#define MOBREP_COMMON_OBJECT_ARRAY_H_

#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>

namespace mobrep {

// A fixed-capacity contiguous array of T constructed in place, for types that
// are neither movable nor copyable (e.g. Channel, whose obs::Counter members
// are atomics). Unlike std::vector this never relocates, so references handed
// out by Emplace stay valid for the array's lifetime — the property the
// struct-of-arrays multi-client state relies on.
template <typename T>
class ObjectArray {
 public:
  ObjectArray() = default;
  explicit ObjectArray(size_t capacity) { Reserve(capacity); }

  ObjectArray(const ObjectArray&) = delete;
  ObjectArray& operator=(const ObjectArray&) = delete;

  ObjectArray(ObjectArray&& other) noexcept
      : data_(other.data_), size_(other.size_), capacity_(other.capacity_) {
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
  }

  ObjectArray& operator=(ObjectArray&& other) noexcept {
    if (this != &other) {
      Destroy();
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = nullptr;
      other.size_ = 0;
      other.capacity_ = 0;
    }
    return *this;
  }

  ~ObjectArray() { Destroy(); }

  // Allocates raw storage for exactly `capacity` elements. Must be called
  // before Emplace, and only on an empty array.
  void Reserve(size_t capacity) {
    assert(data_ == nullptr && "ObjectArray::Reserve called twice");
    capacity_ = capacity;
    if (capacity > 0) {
      data_ = std::allocator<T>().allocate(capacity);
    }
  }

  template <typename... A>
  T& Emplace(A&&... args) {
    assert(size_ < capacity_ && "ObjectArray capacity exceeded");
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<A>(args)...);
    ++size_;
    return *slot;
  }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }

  size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

 private:
  void Destroy() noexcept {
    for (size_t i = size_; i > 0; --i) {
      data_[i - 1].~T();
    }
    if (data_ != nullptr) {
      std::allocator<T>().deallocate(data_, capacity_);
    }
    data_ = nullptr;
    size_ = 0;
    capacity_ = 0;
  }

  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace mobrep

#endif  // MOBREP_COMMON_OBJECT_ARRAY_H_
