#include "mobrep/common/math.h"

#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "mobrep/common/check.h"

namespace mobrep {
namespace {

// Exact log-factorials for small n avoid lgamma rounding in hot paths.
constexpr int kLogFactTableSize = 64;

// Memoized rows of log-binomial coefficients: Row(n)[j] = LogBinomial(n, j).
// Every sweep cell evaluating AlphaK(k, theta) over a theta grid re-uses
// the same row, so the LogFactorial traffic is paid once per k instead of
// once per (k, theta) pair. Rows above the cap are not worth 8(n+1) bytes
// forever; callers fall back to LogBinomial for those.
constexpr int kMaxCachedBinomialRow = 4096;

const double* LogBinomialRow(int n) {
  if (n > kMaxCachedBinomialRow) return nullptr;
  // Rows are built once and never freed, so their data pointers stay valid
  // for the life of the process and each thread can cache them privately.
  // BinomialCdf sits in the per-cell path ParallelSweep runs on all cores;
  // the per-thread map keeps the hit path off the global lock entirely —
  // only the first sighting of an n on each thread takes it.
  thread_local std::unordered_map<int, const double*> local_rows;
  if (const auto it = local_rows.find(n); it != local_rows.end()) {
    return it->second;
  }
  static std::mutex mu;
  static auto* rows =
      new std::unordered_map<int, std::unique_ptr<std::vector<double>>>();
  const double* data;
  {
    std::lock_guard<std::mutex> lock(mu);
    auto& row = (*rows)[n];
    if (row == nullptr) {
      row = std::make_unique<std::vector<double>>(
          static_cast<size_t>(n) + 1);
      for (int j = 0; j <= n; ++j) (*row)[static_cast<size_t>(j)] =
          LogBinomial(n, j);
    }
    data = row->data();
  }
  local_rows[n] = data;
  return data;
}

double SimpsonRule(double a, double fa, double b, double fb, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double AdaptiveSimpsonRec(const std::function<double(double)>& f, double a,
                          double fa, double b, double fb, double m, double fm,
                          double whole, double tol, int depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = SimpsonRule(a, fa, m, fm, flm);
  const double right = SimpsonRule(m, fm, b, fb, frm);
  const double delta = left + right - whole;
  if (depth <= 0 || std::fabs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return AdaptiveSimpsonRec(f, a, fa, m, fm, lm, flm, left, tol / 2.0,
                            depth - 1) +
         AdaptiveSimpsonRec(f, m, fm, b, fb, rm, frm, right, tol / 2.0,
                            depth - 1);
}

}  // namespace

double LogFactorial(int n) {
  MOBREP_CHECK(n >= 0);
  static const auto* table = [] {
    auto* t = new double[kLogFactTableSize];
    t[0] = 0.0;
    for (int i = 1; i < kLogFactTableSize; ++i) {
      t[i] = t[i - 1] + std::log(static_cast<double>(i));
    }
    return t;
  }();
  if (n < kLogFactTableSize) return table[n];
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double LogBinomial(int n, int k) {
  MOBREP_CHECK(k >= 0 && k <= n);
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double BinomialCoefficient(int n, int k) {
  return std::exp(LogBinomial(n, k));
}

double BinomialPmf(int n, int k, double p) {
  MOBREP_CHECK(k >= 0 && k <= n);
  MOBREP_CHECK(p >= 0.0 && p <= 1.0);
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = LogBinomial(n, k) + k * std::log(p) +
                         (n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double BinomialCdf(int n, int k, double p) {
  MOBREP_CHECK(k >= -1 && k <= n);
  MOBREP_CHECK(p >= 0.0 && p <= 1.0);
  if (k < 0) return 0.0;
  if (p == 0.0) return 1.0;             // X == 0 surely, and k >= 0
  if (p == 1.0) return k < n ? 0.0 : 1.0;  // X == n surely

  // One pass over the prefix with the coefficient row memoized and the two
  // logarithms hoisted out of the loop. Each term evaluates the exact
  // expression BinomialPmf uses, in the same order, so this function is
  // bit-identical to the historical sum-of-pmf loop. That matters: the
  // bench tables print values that sit exactly on decimal rounding
  // boundaries (e.g. 0.44625 at four digits), and a one-ulp drift — which
  // a pmf *ratio* recurrence would introduce — flips printed digits.
  const double* row = LogBinomialRow(n);
  const double lp = std::log(p);
  const double l1p = std::log1p(-p);
  const int mode = static_cast<int>((static_cast<double>(n) + 1.0) * p);
  double sum = 0.0;
  for (int j = 0; j <= k; ++j) {
    const double log_coeff = row != nullptr ? row[j] : LogBinomial(n, j);
    const double term = std::exp(log_coeff + j * lp + (n - j) * l1p);
    sum += term;
    // Past the mode the pmf only shrinks. Once a term is orders of
    // magnitude below half an ulp of the accumulator, this and every
    // remaining addition is a no-op, so cutting here cannot change bits.
    if (j > mode && term < sum * 1e-20) break;
  }
  return sum < 1.0 ? sum : 1.0;
}

double AdaptiveSimpson(const std::function<double(double)>& f, double a,
                       double b, double tol) {
  MOBREP_CHECK(a <= b);
  if (a == b) return 0.0;
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fb = f(b);
  const double fm = f(m);
  const double whole = SimpsonRule(a, fa, b, fb, fm);
  return AdaptiveSimpsonRec(f, a, fa, b, fb, m, fm, whole, tol,
                            /*depth=*/40);
}

bool NearlyEqual(double a, double b, double tol) {
  return std::fabs(a - b) <= tol;
}

void RunningStat::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::std_error() const {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

}  // namespace mobrep
