#include "mobrep/common/math.h"

#include <cmath>
#include <cstdint>

#include "mobrep/common/check.h"

namespace mobrep {
namespace {

// Exact log-factorials for small n avoid lgamma rounding in hot paths.
constexpr int kLogFactTableSize = 64;

double SimpsonRule(double a, double fa, double b, double fb, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double AdaptiveSimpsonRec(const std::function<double(double)>& f, double a,
                          double fa, double b, double fb, double m, double fm,
                          double whole, double tol, int depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = SimpsonRule(a, fa, m, fm, flm);
  const double right = SimpsonRule(m, fm, b, fb, frm);
  const double delta = left + right - whole;
  if (depth <= 0 || std::fabs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return AdaptiveSimpsonRec(f, a, fa, m, fm, lm, flm, left, tol / 2.0,
                            depth - 1) +
         AdaptiveSimpsonRec(f, m, fm, b, fb, rm, frm, right, tol / 2.0,
                            depth - 1);
}

}  // namespace

double LogFactorial(int n) {
  MOBREP_CHECK(n >= 0);
  static const auto* table = [] {
    auto* t = new double[kLogFactTableSize];
    t[0] = 0.0;
    for (int i = 1; i < kLogFactTableSize; ++i) {
      t[i] = t[i - 1] + std::log(static_cast<double>(i));
    }
    return t;
  }();
  if (n < kLogFactTableSize) return table[n];
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double LogBinomial(int n, int k) {
  MOBREP_CHECK(k >= 0 && k <= n);
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double BinomialCoefficient(int n, int k) {
  return std::exp(LogBinomial(n, k));
}

double BinomialPmf(int n, int k, double p) {
  MOBREP_CHECK(k >= 0 && k <= n);
  MOBREP_CHECK(p >= 0.0 && p <= 1.0);
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = LogBinomial(n, k) + k * std::log(p) +
                         (n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double BinomialCdf(int n, int k, double p) {
  MOBREP_CHECK(k >= -1 && k <= n);
  if (k < 0) return 0.0;
  double sum = 0.0;
  for (int j = 0; j <= k; ++j) sum += BinomialPmf(n, j, p);
  return sum < 1.0 ? sum : 1.0;
}

double AdaptiveSimpson(const std::function<double(double)>& f, double a,
                       double b, double tol) {
  MOBREP_CHECK(a <= b);
  if (a == b) return 0.0;
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fb = f(b);
  const double fm = f(m);
  const double whole = SimpsonRule(a, fa, b, fb, fm);
  return AdaptiveSimpsonRec(f, a, fa, b, fb, m, fm, whole, tol,
                            /*depth=*/40);
}

bool NearlyEqual(double a, double b, double tol) {
  return std::fabs(a - b) <= tol;
}

void RunningStat::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::std_error() const {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

}  // namespace mobrep
