#include "mobrep/common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

namespace mobrep {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      pieces.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string_view StripWhitespace(std::string_view text) {
  constexpr std::string_view kWs = " \t\r\n\f\v";
  const size_t begin = text.find_first_not_of(kWs);
  if (begin == std::string_view::npos) return {};
  const size_t end = text.find_last_not_of(kWs);
  return text.substr(begin, end - begin + 1);
}

std::optional<int64_t> ParseInt64(std::string_view text) {
  text = StripWhitespace(text);
  if (text.empty()) return std::nullopt;
  std::string buf(text);
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<int64_t>(value);
}

std::optional<double> ParseDouble(std::string_view text) {
  text = StripWhitespace(text);
  if (text.empty()) return std::nullopt;
  std::string buf(text);
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int size = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (size > 0) {
    out.resize(static_cast<size_t>(size));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace mobrep
