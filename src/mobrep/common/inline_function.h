#ifndef MOBREP_COMMON_INLINE_FUNCTION_H_
#define MOBREP_COMMON_INLINE_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mobrep {

// Move-only type-erased callable with small-buffer optimization.
//
// Captures up to `InlineBytes` bytes (and nothrow-move-constructible) live in
// the object itself; larger or throwing-move captures fall back to a single
// heap allocation. Compared to std::function this is move-only (so it can own
// move-only captures like pooled message handles) and exposes is_inline() so
// the event queue can count which path a scheduled event took.
template <typename Sig, size_t InlineBytes = 48>
class InlineFunction;

template <typename R, typename... Args, size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= InlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = &InvokeInline<Fn>;
      manage_ = &ManageInline<Fn>;
      inline_flag_ = true;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      invoke_ = &InvokeHeap<Fn>;
      manage_ = &ManageHeap<Fn>;
      inline_flag_ = false;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(std::move(other)); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  R operator()(Args... args) {
    return invoke_(storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  // True when the capture lives in the inline buffer (false also when empty).
  bool is_inline() const noexcept {
    return invoke_ != nullptr && manage_ != nullptr && inline_flag_;
  }

 private:
  enum class Op { kMoveDestroy, kDestroy };

  using Invoke = R (*)(void*, Args&&...);
  using Manage = void (*)(void* self, void* other, Op op);

  template <typename Fn>
  static R InvokeInline(void* storage, Args&&... args) {
    return (*std::launder(reinterpret_cast<Fn*>(storage)))(
        std::forward<Args>(args)...);
  }

  template <typename Fn>
  static void ManageInline(void* self, void* other, Op op) {
    Fn* fn = std::launder(reinterpret_cast<Fn*>(self));
    if (op == Op::kMoveDestroy) {
      ::new (other) Fn(std::move(*fn));
    }
    fn->~Fn();
  }

  template <typename Fn>
  static R InvokeHeap(void* storage, Args&&... args) {
    Fn* fn = *std::launder(reinterpret_cast<Fn**>(storage));
    return (*fn)(std::forward<Args>(args)...);
  }

  template <typename Fn>
  static void ManageHeap(void* self, void* other, Op op) {
    Fn** slot = std::launder(reinterpret_cast<Fn**>(self));
    if (op == Op::kMoveDestroy) {
      *reinterpret_cast<Fn**>(other) = *slot;
      *slot = nullptr;
    } else {
      delete *slot;
    }
  }

  void Reset() noexcept {
    if (manage_ != nullptr) {
      manage_(storage_, nullptr, Op::kDestroy);
    }
    invoke_ = nullptr;
    manage_ = nullptr;
    inline_flag_ = false;
  }

  void MoveFrom(InlineFunction&& other) noexcept {
    if (other.manage_ != nullptr) {
      other.manage_(other.storage_, storage_, Op::kMoveDestroy);
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      inline_flag_ = other.inline_flag_;
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
      other.inline_flag_ = false;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[InlineBytes < sizeof(void*)
                                                       ? sizeof(void*)
                                                       : InlineBytes];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
  bool inline_flag_ = false;
};

}  // namespace mobrep

#endif  // MOBREP_COMMON_INLINE_FUNCTION_H_
