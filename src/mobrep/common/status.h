#ifndef MOBREP_COMMON_STATUS_H_
#define MOBREP_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "mobrep/common/check.h"

namespace mobrep {

// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  kDataLoss,
};

// Returns a stable human-readable name ("OK", "INVALID_ARGUMENT", ...).
std::string_view StatusCodeName(StatusCode code);

// Lightweight success-or-error value, modeled on absl::Status.
//
// Library code returns Status (or Result<T>) instead of throwing; callers
// decide whether a failure is fatal.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    MOBREP_DCHECK(code != StatusCode::kOk);
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
Status InvalidArgumentError(std::string_view message);
Status NotFoundError(std::string_view message);
Status FailedPreconditionError(std::string_view message);
Status OutOfRangeError(std::string_view message);
Status InternalError(std::string_view message);
Status UnimplementedError(std::string_view message);
Status DataLossError(std::string_view message);

// A value of type T or an error Status. Minimal absl::StatusOr analogue.
//
// Accessing value() on an error aborts (contract violation); call ok()
// first or use value_or().
template <typename T>
class Result {
 public:
  // Intentionally implicit, mirroring absl::StatusOr: allows
  // `return MakeValue();` and `return SomeError();` from the same function.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    MOBREP_CHECK_MSG(!status_.ok(),
                     "Result<T> cannot hold an OK status without a value");
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    MOBREP_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T& value() & {
    MOBREP_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T&& value() && {
    MOBREP_CHECK_MSG(ok(), status_.message().c_str());
    return *std::move(value_);
  }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value
};

}  // namespace mobrep

#endif  // MOBREP_COMMON_STATUS_H_
