#ifndef MOBREP_COMMON_CRASH_SIGNAL_H_
#define MOBREP_COMMON_CRASH_SIGNAL_H_

#include <string>

namespace mobrep {

// Which simulated node a crash kills (see docs/RECOVERY.md).
enum class CrashNode : int {
  kMobileClient = 0,
  kStationaryServer = 1,
};

inline const char* CrashNodeName(CrashNode node) {
  return node == CrashNode::kMobileClient ? "MC" : "SC";
}

// Thrown by an armed crash hook to simulate kill -9 of one node at an
// exact protocol step, and caught at the chaos harness's event-loop
// boundary, which then drops the node's volatile state and runs recovery.
//
// This is the one sanctioned use of a C++ exception in the tree (the
// library's error handling stays on Status/Result, see common/check.h):
// a crash is by definition a non-local exit that must not run any of the
// dying node's remaining code, which is exactly stack unwinding. Library
// code in store/, net/ and protocol/ never throws itself — it only calls
// user-installed hooks that may; with no hook installed (every production
// and benchmark path) no throw site exists.
struct CrashSignal {
  CrashNode node = CrashNode::kMobileClient;
  // Label of the crash point that fired (e.g. "sc.put@torn").
  std::string site;
};

}  // namespace mobrep

#endif  // MOBREP_COMMON_CRASH_SIGNAL_H_
