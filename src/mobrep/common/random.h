#ifndef MOBREP_COMMON_RANDOM_H_
#define MOBREP_COMMON_RANDOM_H_

#include <cstdint>

#include "mobrep/common/check.h"

namespace mobrep {

// SplitMix64: tiny, fast generator used to seed Xoshiro and for cheap
// stateless mixing. Reference: Steele, Lea, Flood (2014).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// Deterministic pseudo-random generator for all simulations.
//
// Implementation: xoshiro256++ (Blackman & Vigna), seeded via SplitMix64.
// Every experiment in this repository takes an explicit seed so results are
// reproducible run-to-run and machine-to-machine.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t NextUint64();

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (p clamped to [0, 1]).
  bool Bernoulli(double p);

  // Uniform integer in [0, bound). bound must be > 0. Unbiased (rejection).
  uint64_t UniformInt(uint64_t bound);

  // Exponential variate with rate lambda > 0 (mean 1/lambda).
  double Exponential(double lambda);

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Forks an independent stream; deterministic in (this stream, salt).
  Rng Fork(uint64_t salt);

 private:
  uint64_t s_[4];
};

}  // namespace mobrep

#endif  // MOBREP_COMMON_RANDOM_H_
