#include "mobrep/common/random.h"

#include <cmath>
#include <cstdint>

namespace mobrep {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 mixer(seed);
  for (auto& s : s_) s = mixer.Next();
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  MOBREP_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::Exponential(double lambda) {
  MOBREP_CHECK(lambda > 0.0);
  // Inverse CDF; 1 - U in (0, 1] avoids log(0).
  return -std::log(1.0 - NextDouble()) / lambda;
}

double Rng::Uniform(double lo, double hi) {
  MOBREP_CHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

Rng Rng::Fork(uint64_t salt) {
  return Rng(NextUint64() ^ (salt * 0x9e3779b97f4a7c15ULL));
}

}  // namespace mobrep
