#ifndef MOBREP_COMMON_STRINGS_H_
#define MOBREP_COMMON_STRINGS_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mobrep {

// Splits text on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// Strict integer / double parsers: the whole (stripped) string must parse.
std::optional<int64_t> ParseInt64(std::string_view text);
std::optional<double> ParseDouble(std::string_view text);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace mobrep

#endif  // MOBREP_COMMON_STRINGS_H_
