#ifndef MOBREP_COMMON_CHECK_H_
#define MOBREP_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Fatal-assertion macros for invariant enforcement inside the library.
//
// The library does not use exceptions (see DESIGN.md); recoverable errors
// travel through mobrep::Status / mobrep::Result, while programming errors
// (broken invariants, out-of-contract arguments) abort via these macros.
//
// MOBREP_CHECK(cond)   — always on.
// MOBREP_DCHECK(cond)  — compiled out in NDEBUG builds.

#define MOBREP_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "MOBREP_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define MOBREP_CHECK_MSG(cond, msg)                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "MOBREP_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, (msg));                       \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define MOBREP_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define MOBREP_DCHECK(cond) MOBREP_CHECK(cond)
#endif

#endif  // MOBREP_COMMON_CHECK_H_
