#ifndef MOBREP_COMMON_SMALL_VECTOR_H_
#define MOBREP_COMMON_SMALL_VECTOR_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <type_traits>
#include <vector>

namespace mobrep {

// A vector with inline storage for small element counts, restricted to
// trivially copyable element types (it memcpys on growth and copy).
//
// Purpose-built for the protocol plane's piggybacked request windows
// (DESIGN.md §11): a window of up to `N` ops travels inside the Message
// itself, so copying a hand-over message never touches the heap. Larger
// windows (e.g. sw:101) spill to a heap buffer exactly like std::vector.
//
// The API is the subset of std::vector the repository uses; ToVector() and
// assign() bridge to call sites that still traffic in std::vector.
template <typename T, size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector requires trivially copyable elements");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;
  SmallVector(std::initializer_list<T> init) { assign(init.begin(), init.end()); }
  SmallVector(const SmallVector& other) { assign(other.begin(), other.end()); }
  SmallVector(SmallVector&& other) noexcept { MoveFrom(std::move(other)); }
  explicit SmallVector(const std::vector<T>& v) { assign(v.begin(), v.end()); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }
  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      FreeHeap();
      MoveFrom(std::move(other));
    }
    return *this;
  }
  SmallVector& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }

  ~SmallVector() { FreeHeap(); }

  template <typename It>
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) push_back(*first);
  }

  void push_back(const T& value) {
    if (size_ == capacity_) Grow();
    data()[size_++] = value;
  }

  void clear() noexcept { size_ = 0; }

  void pop_back() noexcept { --size_; }

  size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  size_t capacity() const noexcept { return capacity_; }
  // True once the contents outgrew the inline buffer (diagnostics only).
  bool spilled() const noexcept { return heap_ != nullptr; }

  T* data() noexcept { return heap_ != nullptr ? heap_ : inline_; }
  const T* data() const noexcept { return heap_ != nullptr ? heap_ : inline_; }

  T& operator[](size_t i) noexcept { return data()[i]; }
  const T& operator[](size_t i) const noexcept { return data()[i]; }
  T& back() noexcept { return data()[size_ - 1]; }
  const T& back() const noexcept { return data()[size_ - 1]; }
  T& front() noexcept { return data()[0]; }
  const T& front() const noexcept { return data()[0]; }

  iterator begin() noexcept { return data(); }
  iterator end() noexcept { return data() + size_; }
  const_iterator begin() const noexcept { return data(); }
  const_iterator end() const noexcept { return data() + size_; }

  std::vector<T> ToVector() const { return std::vector<T>(begin(), end()); }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const SmallVector& a, const SmallVector& b) {
    return !(a == b);
  }
  friend bool operator==(const SmallVector& a, const std::vector<T>& b) {
    return a.size_ == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const std::vector<T>& a, const SmallVector& b) {
    return b == a;
  }
  friend bool operator!=(const SmallVector& a, const std::vector<T>& b) {
    return !(a == b);
  }
  friend bool operator!=(const std::vector<T>& a, const SmallVector& b) {
    return !(b == a);
  }

 private:
  void Grow() {
    const size_t new_capacity = capacity_ * 2;
    T* fresh = new T[new_capacity];
    std::memcpy(fresh, data(), size_ * sizeof(T));
    FreeHeap();
    heap_ = fresh;
    capacity_ = new_capacity;
  }

  void FreeHeap() noexcept {
    delete[] heap_;
    heap_ = nullptr;
    capacity_ = N;
  }

  void MoveFrom(SmallVector&& other) noexcept {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.capacity_ = N;
      other.size_ = 0;
    } else {
      heap_ = nullptr;
      capacity_ = N;
      size_ = other.size_;
      std::memcpy(inline_, other.inline_, size_ * sizeof(T));
      other.size_ = 0;
    }
  }

  T inline_[N];
  T* heap_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = N;
};

}  // namespace mobrep

#endif  // MOBREP_COMMON_SMALL_VECTOR_H_
