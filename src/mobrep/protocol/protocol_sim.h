#ifndef MOBREP_PROTOCOL_PROTOCOL_SIM_H_
#define MOBREP_PROTOCOL_PROTOCOL_SIM_H_

#include <cstdint>
#include <memory>
#include <string>

#include "mobrep/common/status.h"
#include "mobrep/core/cost_model.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/core/schedule.h"
#include "mobrep/net/channel.h"
#include "mobrep/net/event_queue.h"
#include "mobrep/net/fault_model.h"
#include "mobrep/net/reliable_link.h"
#include "mobrep/obs/metrics.h"
#include "mobrep/protocol/mobile_client.h"
#include "mobrep/protocol/stationary_server.h"
#include "mobrep/store/replica_cache.h"
#include "mobrep/store/versioned_store.h"
#include "mobrep/store/write_ahead_log.h"

namespace mobrep {

// End-to-end harness wiring one MobileClient and one StationaryServer over
// two unidirectional links, driven by a schedule of relevant requests.
//
// With the default (fault-free) FaultConfig the links are the paper's
// perfect fixed-latency FIFO channels and requests are serialized: each
// request's message exchange runs to quiescence before the next request is
// issued (the paper's §3 concurrency assumption). Every completed read is
// checked against the authoritative store (one-copy equivalence).
//
// With a faulty FaultConfig each direction becomes a FaultyChannel (loss,
// duplication, jitter, scheduled outages) under a ReliableLink ARQ
// endpoint, and the same protocol runs unchanged on top of exactly-once
// in-order delivery. ARQ traffic is metered outside the paper's cost
// counters, so a fault-free run is bit-for-bit identical to the seed
// whether or not the ARQ layer is present (see FaultConfig::force_reliable).

struct ProtocolConfig {
  PolicySpec spec;
  std::string key = "x";
  std::string initial_value = "v0";
  // One-way link latency in simulation time units (either direction).
  double link_latency = 0.001;
  // Link fault injection + ARQ knobs. Default: the perfect link.
  FaultConfig fault;
  // Upper bound on the events one exchange (Step) or one timed run may
  // execute before the harness declares a livelock: Step aborts with a
  // contextual CHECK, RunTimed returns an error Status.
  int64_t max_events_per_exchange = 1'000'000;
  // When non-empty, the SC appends every committed write to this
  // write-ahead log (see mobrep/store/write_ahead_log.h).
  std::string wal_path;
  // Durability knobs for that log (e.g. fsync on every append).
  WalOptions wal_options;
};

// Wire-level accounting for one run, convertible to either cost model.
struct ProtocolMetrics {
  int64_t requests = 0;
  int64_t local_reads = 0;
  int64_t remote_reads = 0;
  int64_t writes = 0;
  int64_t propagations = 0;
  int64_t invalidations = 0;
  int64_t allocations = 0;
  int64_t deallocations = 0;
  int64_t data_messages = 0;
  int64_t control_messages = 0;
  // Connection-model accounting: one connection per request that caused
  // any transmission.
  int64_t connections = 0;
  // Read service times in simulation time units (0 for local reads, the
  // round trip for remote ones) — the performance axis the paper's §8.2
  // contrasts with communication cost.
  double mean_read_latency = 0.0;
  double max_read_latency = 0.0;

  // Link-layer accounting, outside both paper cost models. All zero on a
  // fault-free run without force_reliable.
  int64_t retransmissions = 0;      // data frames re-sent by the ARQ
  int64_t timeouts = 0;             // retransmission timers that fired
  int64_t duplicates_dropped = 0;   // frames suppressed by receiver dedup
  int64_t acks = 0;                 // link-level acks transmitted
  int64_t injected_drops = 0;       // frames lost to random loss
  int64_t injected_duplicates = 0;  // frames duplicated by the channel
  int64_t outage_drops = 0;         // frames lost to scheduled outages
  double outage_time = 0.0;         // scheduled outage time elapsed
  // Graceful-degradation accounting at the endpoints.
  int64_t collapsed_propagations = 0;
  int64_t stale_propagates_dropped = 0;

  // Total communication cost under `model`.
  double PriceUnder(const CostModel& model) const;

  // Publishes this snapshot into `registry` under `prefix` ("<prefix>.<
  // field>"): event counts add into counters (the registry accumulates
  // across runs), latencies and outage time set gauges. The struct and its
  // accessors are unchanged — the registry is one more export path, not a
  // replacement.
  void PublishTo(obs::MetricsRegistry* registry,
                 const std::string& prefix = "protocol") const;
};

class ProtocolSimulation {
 public:
  explicit ProtocolSimulation(const ProtocolConfig& config);

  ProtocolSimulation(const ProtocolSimulation&) = delete;
  ProtocolSimulation& operator=(const ProtocolSimulation&) = delete;

  // Issues one relevant request and runs the exchange to quiescence.
  // Reads additionally verify that the value returned to the MC matches
  // the store (freshness/consistency invariant). Aborts with a contextual
  // message if the exchange exceeds max_events_per_exchange.
  void Step(Op op);

  // Runs a whole schedule, serialized.
  void Run(const Schedule& schedule);

  // Runs a timed workload with overlapping arrivals: writes commit at the
  // SC at their arrival times regardless of in-flight traffic; reads
  // chain at the MC (arrivals during an outstanding read queue behind it,
  // preserving the MC's one-outstanding-read discipline). This is the
  // chaos-mode driver: requests land mid-outage, mid-retransmission and
  // mid-hand-over. Checks en route: read versions are monotone and every
  // read observes a (version, value) pair some write actually committed.
  // Checks at the end: the run quiesced within max_events_per_exchange,
  // every read completed, exactly one node is in charge, and a surviving
  // replica equals the authoritative store. Returns the first violation.
  Status RunTimed(const TimedSchedule& schedule);

  ProtocolMetrics metrics() const;

  // Invariant probes for tests.
  bool mc_has_copy() const { return client_->has_copy(); }
  bool ExactlyOneInCharge() const {
    return client_->in_charge() != server_->in_charge();
  }
  const MobileClient& client() const { return *client_; }
  const StationaryServer& server() const { return *server_; }
  const VersionedStore& store() const { return store_; }
  double now() const { return queue_.now(); }

  // Fault-injection probes; null on a fault-free (seed-wiring) run.
  const FaultyChannel* uplink_faults() const { return mc_to_sc_faulty_; }
  const FaultyChannel* downlink_faults() const { return sc_to_mc_faulty_; }
  // ARQ endpoints; null unless FaultConfig::UseReliableLink().
  const ReliableLink* mc_link() const { return mc_link_.get(); }
  const ReliableLink* sc_link() const { return sc_link_.get(); }

 private:
  // Drains the queue, aborting with `what` context if the cap is hit.
  void RunExchange(const char* what);
  // Issues the next queued timed read unless one is already outstanding.
  void MaybeIssueQueuedRead();
  // Monotonicity + version/value-binding checks for timed reads; records
  // the first violation in timed_error_.
  void CheckTimedRead(const VersionedValue& value);

  ProtocolConfig config_;
  EventQueue queue_;
  VersionedStore store_;
  ReplicaCache cache_;
  std::unique_ptr<Channel> mc_to_sc_;
  std::unique_ptr<Channel> sc_to_mc_;
  FaultyChannel* mc_to_sc_faulty_ = nullptr;  // aliases mc_to_sc_ if faulty
  FaultyChannel* sc_to_mc_faulty_ = nullptr;  // aliases sc_to_mc_ if faulty
  std::unique_ptr<ReliableLink> mc_link_;  // MC's ARQ endpoint
  std::unique_ptr<ReliableLink> sc_link_;  // SC's ARQ endpoint
  std::unique_ptr<MobileClient> client_;
  std::unique_ptr<StationaryServer> server_;
  std::unique_ptr<WriteAheadLog> wal_;
  int64_t write_sequence_ = 0;
  int64_t reads_issued_ = 0;
  int64_t writes_issued_ = 0;
  double total_read_latency_ = 0.0;
  double max_read_latency_ = 0.0;

  // RunTimed state.
  int64_t queued_reads_ = 0;
  bool read_outstanding_ = false;
  uint64_t last_read_version_ = 0;
  Status timed_error_;  // first check violation, sticky
};

}  // namespace mobrep

#endif  // MOBREP_PROTOCOL_PROTOCOL_SIM_H_
