#ifndef MOBREP_PROTOCOL_PROTOCOL_SIM_H_
#define MOBREP_PROTOCOL_PROTOCOL_SIM_H_

#include <cstdint>
#include <memory>
#include <string>

#include "mobrep/core/cost_model.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/core/schedule.h"
#include "mobrep/net/channel.h"
#include "mobrep/net/event_queue.h"
#include "mobrep/protocol/mobile_client.h"
#include "mobrep/protocol/stationary_server.h"
#include "mobrep/store/replica_cache.h"
#include "mobrep/store/versioned_store.h"
#include "mobrep/store/write_ahead_log.h"

namespace mobrep {

// End-to-end harness wiring one MobileClient and one StationaryServer over
// two fixed-latency FIFO channels, driven by a schedule of relevant
// requests. Requests are serialized: each request's message exchange runs
// to quiescence before the next request is issued (the paper's §3
// concurrency assumption). Every completed read is checked against the
// authoritative store (one-copy equivalence).

struct ProtocolConfig {
  PolicySpec spec;
  std::string key = "x";
  std::string initial_value = "v0";
  // One-way link latency in simulation time units (either direction).
  double link_latency = 0.001;
  // When non-empty, the SC appends every committed write to this
  // write-ahead log (see mobrep/store/write_ahead_log.h).
  std::string wal_path;
};

// Wire-level accounting for one run, convertible to either cost model.
struct ProtocolMetrics {
  int64_t requests = 0;
  int64_t local_reads = 0;
  int64_t remote_reads = 0;
  int64_t writes = 0;
  int64_t propagations = 0;
  int64_t invalidations = 0;
  int64_t allocations = 0;
  int64_t deallocations = 0;
  int64_t data_messages = 0;
  int64_t control_messages = 0;
  // Connection-model accounting: one connection per request that caused
  // any transmission.
  int64_t connections = 0;
  // Read service times in simulation time units (0 for local reads, the
  // round trip for remote ones) — the performance axis the paper's §8.2
  // contrasts with communication cost.
  double mean_read_latency = 0.0;
  double max_read_latency = 0.0;

  // Total communication cost under `model`.
  double PriceUnder(const CostModel& model) const;
};

class ProtocolSimulation {
 public:
  explicit ProtocolSimulation(const ProtocolConfig& config);

  ProtocolSimulation(const ProtocolSimulation&) = delete;
  ProtocolSimulation& operator=(const ProtocolSimulation&) = delete;

  // Issues one relevant request and runs the exchange to quiescence.
  // Reads additionally verify that the value returned to the MC matches
  // the store (freshness/consistency invariant).
  void Step(Op op);

  // Runs a whole schedule.
  void Run(const Schedule& schedule);

  ProtocolMetrics metrics() const;

  // Invariant probes for tests.
  bool mc_has_copy() const { return client_->has_copy(); }
  bool ExactlyOneInCharge() const {
    return client_->in_charge() != server_->in_charge();
  }
  const MobileClient& client() const { return *client_; }
  const StationaryServer& server() const { return *server_; }
  const VersionedStore& store() const { return store_; }
  double now() const { return queue_.now(); }

 private:
  ProtocolConfig config_;
  EventQueue queue_;
  VersionedStore store_;
  ReplicaCache cache_;
  std::unique_ptr<Channel> mc_to_sc_;
  std::unique_ptr<Channel> sc_to_mc_;
  std::unique_ptr<MobileClient> client_;
  std::unique_ptr<StationaryServer> server_;
  std::unique_ptr<WriteAheadLog> wal_;
  int64_t write_sequence_ = 0;
  int64_t reads_issued_ = 0;
  int64_t writes_issued_ = 0;
  double total_read_latency_ = 0.0;
  double max_read_latency_ = 0.0;
};

}  // namespace mobrep

#endif  // MOBREP_PROTOCOL_PROTOCOL_SIM_H_
