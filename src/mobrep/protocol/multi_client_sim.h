#ifndef MOBREP_PROTOCOL_MULTI_CLIENT_SIM_H_
#define MOBREP_PROTOCOL_MULTI_CLIENT_SIM_H_

#include <string>

#include "mobrep/common/object_array.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/core/schedule.h"
#include "mobrep/net/channel.h"
#include "mobrep/net/event_queue.h"
#include "mobrep/protocol/mobile_client.h"
#include "mobrep/protocol/stationary_server.h"
#include "mobrep/store/replica_cache.h"
#include "mobrep/store/versioned_store.h"

namespace mobrep {

// One stationary computer, one data item, MANY mobile computers — the
// natural generalization of the paper's single-MC model (§3 fixes one MC
// only for the analysis; the protocol itself is pairwise). Each MC runs
// its own window against its own read stream and subscribes/unsubscribes
// independently; the SC keeps one policy replica per MC and propagates
// every committed write to every currently subscribed MC, so a write's
// cost is its *fan-out* (number of subscribed terminals).
//
// Per-pair behaviour is identical to the single-MC protocol — asserted in
// tests by running each MC's marginal request stream through a single-MC
// simulation and comparing message counts.
//
// State is struct-of-arrays: five contiguous ObjectArrays (up channels,
// down channels, caches, clients, servers) instead of an array of structs
// of five unique_ptrs. One pair costs five slots in arrays that never
// relocate, so the scale bench can stand up 10^6 clients without 5x10^6
// scattered heap nodes, and per-pair accounting walks each component
// array linearly.
class MultiClientSimulation {
 public:
  struct Options {
    int num_clients = 4;
    PolicySpec spec = {PolicyKind::kSw, 9};
    std::string key = "x";
    std::string initial_value = "v0";
    double link_latency = 0.001;
  };

  explicit MultiClientSimulation(const Options& options);

  MultiClientSimulation(const MultiClientSimulation&) = delete;
  MultiClientSimulation& operator=(const MultiClientSimulation&) = delete;

  // A read issued at mobile computer `client` (0-based).
  void StepRead(int client);
  // A write committed at the SC (propagated to every subscriber).
  void StepWrite();

  int num_clients() const { return static_cast<int>(clients_.size()); }
  bool HasCopy(int client) const;
  // Number of MCs currently subscribed (the next write's data fan-out).
  int SubscriberCount() const;

  // Aggregate wireless accounting over all links.
  int64_t data_messages() const;
  int64_t control_messages() const;

  // Per-client wireless accounting.
  int64_t client_data_messages(int client) const;
  int64_t client_control_messages(int client) const;

  const VersionedStore& store() const { return store_; }
  const EventQueue& queue() const { return queue_; }

 private:
  // Drains the queue, aborting with a message that names the sim size —
  // at a million clients "event cascade exceeded budget" alone is not
  // actionable.
  void RunToQuiescence(const char* what);

  Options options_;
  EventQueue queue_;
  VersionedStore store_;
  // Parallel arrays, indexed by client id. ObjectArray never relocates,
  // so the receiver lambdas' captured element pointers stay valid.
  ObjectArray<Channel> up_;    // MC -> SC
  ObjectArray<Channel> down_;  // SC -> MC
  ObjectArray<ReplicaCache> caches_;
  ObjectArray<MobileClient> clients_;
  ObjectArray<StationaryServer> servers_;  // the SC's per-MC half
  int64_t write_sequence_ = 0;
};

}  // namespace mobrep

#endif  // MOBREP_PROTOCOL_MULTI_CLIENT_SIM_H_
