#ifndef MOBREP_PROTOCOL_MULTI_CLIENT_SIM_H_
#define MOBREP_PROTOCOL_MULTI_CLIENT_SIM_H_

#include <memory>
#include <string>
#include <vector>

#include "mobrep/core/policy_factory.h"
#include "mobrep/core/schedule.h"
#include "mobrep/net/channel.h"
#include "mobrep/net/event_queue.h"
#include "mobrep/protocol/mobile_client.h"
#include "mobrep/protocol/stationary_server.h"
#include "mobrep/store/replica_cache.h"
#include "mobrep/store/versioned_store.h"

namespace mobrep {

// One stationary computer, one data item, MANY mobile computers — the
// natural generalization of the paper's single-MC model (§3 fixes one MC
// only for the analysis; the protocol itself is pairwise). Each MC runs
// its own window against its own read stream and subscribes/unsubscribes
// independently; the SC keeps one policy replica per MC and propagates
// every committed write to every currently subscribed MC, so a write's
// cost is its *fan-out* (number of subscribed terminals).
//
// Per-pair behaviour is identical to the single-MC protocol — asserted in
// tests by running each MC's marginal request stream through a single-MC
// simulation and comparing message counts.
class MultiClientSimulation {
 public:
  struct Options {
    int num_clients = 4;
    PolicySpec spec = {PolicyKind::kSw, 9};
    std::string key = "x";
    std::string initial_value = "v0";
    double link_latency = 0.001;
  };

  explicit MultiClientSimulation(const Options& options);

  MultiClientSimulation(const MultiClientSimulation&) = delete;
  MultiClientSimulation& operator=(const MultiClientSimulation&) = delete;

  // A read issued at mobile computer `client` (0-based).
  void StepRead(int client);
  // A write committed at the SC (propagated to every subscriber).
  void StepWrite();

  int num_clients() const { return static_cast<int>(pairs_.size()); }
  bool HasCopy(int client) const;
  // Number of MCs currently subscribed (the next write's data fan-out).
  int SubscriberCount() const;

  // Aggregate wireless accounting over all links.
  int64_t data_messages() const;
  int64_t control_messages() const;

  // Per-client wireless accounting.
  int64_t client_data_messages(int client) const;
  int64_t client_control_messages(int client) const;

  const VersionedStore& store() const { return store_; }

 private:
  struct Pair {
    std::unique_ptr<Channel> up;    // MC -> SC
    std::unique_ptr<Channel> down;  // SC -> MC
    std::unique_ptr<ReplicaCache> cache;
    std::unique_ptr<MobileClient> client;
    std::unique_ptr<StationaryServer> server;  // the SC's per-MC half
  };

  Options options_;
  EventQueue queue_;
  VersionedStore store_;
  std::vector<Pair> pairs_;
  int64_t write_sequence_ = 0;
};

}  // namespace mobrep

#endif  // MOBREP_PROTOCOL_MULTI_CLIENT_SIM_H_
