#ifndef MOBREP_PROTOCOL_MOBILE_CLIENT_H_
#define MOBREP_PROTOCOL_MOBILE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mobrep/core/policy.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/net/event_queue.h"
#include "mobrep/net/link.h"
#include "mobrep/net/message.h"
#include "mobrep/protocol/journal.h"
#include "mobrep/protocol/lease.h"
#include "mobrep/store/replica_cache.h"

namespace mobrep {

// The mobile computer's half of the distributed allocation protocol
// (paper §4).
//
// The MC serves reads: locally when it holds a replica (two-copies scheme),
// by a read-request round trip otherwise. While it holds the replica it is
// "in charge": its policy instance is the authoritative one, it applies the
// propagated writes, and it decides deallocation, handing the control state
// back to the SC inside the delete-request.
class MobileClient {
 public:
  using ReadCallback = std::function<void(const VersionedValue&)>;

  // `to_sc` and `cache` must outlive the client. The client starts in
  // charge iff the policy's initial state holds a copy (e.g. ST2, T2m);
  // in that case the caller must pre-install the replica in `cache`.
  MobileClient(std::string key, const PolicySpec& spec, Link* to_sc,
               ReplicaCache* cache);

  // Degraded-link mode, enabled when the SC->MC path may collapse queued
  // propagation (doze mode) or when ownership-transfer messages can cross
  // in flight with new traffic:
  //  - propagated versions may skip ahead (last-writer-wins collapse);
  //  - propagations/invalidations arriving after this MC already
  //    deallocated are dropped (and counted) instead of aborting.
  // Off by default: on a perfect FIFO link either condition is a bug.
  void set_tolerates_link_faults(bool tolerates) {
    tolerates_link_faults_ = tolerates;
  }

  // Installs the durability journal called at every protocol-critical
  // mutation (crash recovery; see protocol/journal.h). Null by default.
  void set_journal(NodeJournal* journal) { journal_ = journal; }

  // Issues one read at the MC. The callback fires when the value is
  // available (immediately for a local read, after the round trip
  // otherwise). At most one read may be outstanding (the paper's requests
  // are serialized).
  void IssueRead(ReadCallback callback);

  // Delivery entry point for the SC -> MC channel.
  void HandleMessage(const Message& message);

  // --- Crash recovery (docs/RECOVERY.md) ---

  // Puts a freshly constructed client into the recovered state: the
  // persisted ownership bit and policy state, at incarnation
  // `incarnation` (already bumped past the persisted one). The caller
  // reinstalls the replica in the cache iff the recovered policy holds a
  // copy.
  void Restore(bool in_charge, std::unique_ptr<AllocationPolicy> policy,
               uint32_t incarnation, uint32_t peer_incarnation);

  // Starts the post-restart resync handshake: announces the new
  // incarnation and this node's recovered ownership claim to the SC. The
  // handshake is pending until the SC's resolution arrives.
  void BeginResync();

  // --- Leases (DESIGN.md §10) ---

  // Turns the lease layer on (`config.enabled` must be true; `clock` must
  // outlive the client). If this client starts in charge, it holds the
  // initial lease under fencing token 1, term anchored at now — mirrored
  // by the SC's EnableLeases, with no wire traffic. Must be called before
  // any traffic flows.
  void EnableLeases(EventQueue* clock, const LeaseConfig& config);

  // Sends one kLeaseRenew if this client currently claims the lease; a
  // no-op otherwise. Driven by the harness's renewal ticks. A lapsed
  // holder keeps renewing — on heal the SC either extends (still valid)
  // or revokes (already reclaimed).
  void SendLeaseRenewal();

  // True when leases are on, this client is in charge, and its local
  // lease term has run out: it must stop serving local reads (they are
  // forwarded to the SC) until a renewal ack or a fresh grant arrives.
  bool LeaseLapsed() const;

  bool lease_enabled() const { return lease_config_.enabled; }
  uint64_t lease_token() const { return lease_token_; }
  double lease_expiry() const { return lease_expiry_; }
  const LeaseConfig& lease_config() const { return lease_config_; }

  bool has_copy() const { return cache_->Contains(key_); }
  bool in_charge() const { return in_charge_; }
  const AllocationPolicy& policy() const { return *policy_; }
  const PolicySpec& spec() const { return spec_; }
  uint32_t incarnation() const { return incarnation_; }
  uint32_t peer_incarnation() const { return peer_incarnation_; }
  bool resync_pending() const { return resync_pending_; }
  bool has_pending_read() const { return pending_read_ != nullptr; }

  // Window piggybacked on the most recent ownership transfer in either
  // direction observed by this node; empty for window-less policies.
  const Window& last_transfer_window() const {
    return last_transfer_window_;
  }

  // Counters.
  int64_t local_reads() const { return local_reads_; }
  int64_t remote_reads() const { return remote_reads_; }
  int64_t updates_applied() const { return updates_applied_; }
  int64_t allocations() const { return allocations_; }
  int64_t deallocations() const { return deallocations_; }
  // Propagations/invalidations that raced this MC's own deallocation and
  // were dropped (degraded-link mode only).
  int64_t stale_propagates_dropped() const {
    return stale_propagates_dropped_;
  }
  // Resync handshakes this node completed (as initiator or responder).
  int64_t resyncs() const { return resyncs_; }
  // Reads re-driven because a crash interrupted their round trip.
  int64_t resync_read_retries() const { return resync_read_retries_; }
  // Lease-layer counters (0 unless leases are enabled).
  int64_t lease_renewals_sent() const { return lease_renewals_sent_; }
  int64_t lease_renew_acks() const { return lease_renew_acks_; }
  // Demotions by kLeaseRevoke — this node returned with a stale token.
  int64_t lease_revocations() const { return lease_revocations_; }
  // Subscriptions re-established by kLeaseRegrant after a conflict report.
  int64_t lease_regrants_adopted() const { return lease_regrants_adopted_; }
  // Local reads this node refused to serve because its lease had lapsed
  // (forwarded to the SC instead — graceful degradation at the holder).
  int64_t lapsed_remote_reads() const { return lapsed_remote_reads_; }
  // Revokes ignored because this node already held an equal-or-newer
  // token (the revoke was overtaken by a regrant).
  int64_t stale_revokes_ignored() const { return stale_revokes_ignored_; }

 private:
  void CompleteRead(const VersionedValue& value);
  // A fresh outgoing message with the type/key/key_id header stamped.
  Message NewMessage(MessageType type) const;
  // Journals the node's state if a journal is installed (may throw
  // CrashSignal from an armed crash point).
  void Persist(const char* reason);

  std::string key_;
  // Interned id of key_, stamped on every outgoing message (demux hint;
  // see net/key_interner.h).
  uint32_t key_id_ = 0;
  PolicySpec spec_;
  Link* to_sc_;
  ReplicaCache* cache_;
  std::unique_ptr<AllocationPolicy> policy_;
  NodeJournal* journal_ = nullptr;
  bool in_charge_ = false;
  bool tolerates_link_faults_ = false;
  ReadCallback pending_read_;
  Window last_transfer_window_;
  uint32_t incarnation_ = 1;
  uint32_t peer_incarnation_ = 1;
  bool resync_pending_ = false;

  // Lease state (all inert while lease_config_.enabled is false).
  EventQueue* clock_ = nullptr;
  LeaseConfig lease_config_;
  uint64_t lease_token_ = 0;
  double lease_expiry_ = 0.0;
  // One conflict report per revocation episode; reset by the next grant.
  bool conflict_reported_ = false;

  int64_t local_reads_ = 0;
  int64_t remote_reads_ = 0;
  int64_t updates_applied_ = 0;
  int64_t allocations_ = 0;
  int64_t deallocations_ = 0;
  int64_t stale_propagates_dropped_ = 0;
  int64_t resyncs_ = 0;
  int64_t resync_read_retries_ = 0;
  int64_t lease_renewals_sent_ = 0;
  int64_t lease_renew_acks_ = 0;
  int64_t lease_revocations_ = 0;
  int64_t lease_regrants_adopted_ = 0;
  int64_t lapsed_remote_reads_ = 0;
  int64_t stale_revokes_ignored_ = 0;
};

}  // namespace mobrep

#endif  // MOBREP_PROTOCOL_MOBILE_CLIENT_H_
