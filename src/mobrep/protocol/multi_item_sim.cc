#include "mobrep/protocol/multi_item_sim.h"

#include <utility>

#include "mobrep/common/check.h"
#include "mobrep/common/strings.h"
#include "mobrep/net/key_interner.h"

namespace mobrep {

MultiItemSimulation::MultiItemSimulation(const Options& options)
    : options_(options) {
  mc_to_sc_ = std::make_unique<Channel>(&queue_, options.link_latency,
                                        "MC->SC (shared)");
  sc_to_mc_ = std::make_unique<Channel>(&queue_, options.link_latency,
                                        "SC->MC (shared)");
  // Demultiplex by item: every message names its item by key, and the
  // endpoints additionally stamp the interned key id for O(1) dispatch.
  mc_to_sc_->set_receiver(
      [this](const Message& m) { ItemFor(m).server->HandleMessage(m); });
  sc_to_mc_->set_receiver(
      [this](const Message& m) { ItemFor(m).client->HandleMessage(m); });
}

MultiItemSimulation::Item& MultiItemSimulation::ItemFor(const Message& m) {
  if (m.key_id != 0 && m.key_id < items_by_id_.size() &&
      items_by_id_[m.key_id] != nullptr) {
    return *items_by_id_[m.key_id];
  }
  const auto it = items_.find(m.key);
  MOBREP_CHECK_MSG(it != items_.end(), "message for unknown item");
  return it->second;
}

void MultiItemSimulation::AddItem(const std::string& key,
                                  const PolicySpec& spec,
                                  const std::string& initial_value) {
  MOBREP_CHECK_MSG(items_.find(key) == items_.end(),
                   "item registered twice");
  store_.Put(key, initial_value);
  Item item;
  item.client =
      std::make_unique<MobileClient>(key, spec, mc_to_sc_.get(), &cache_);
  item.server = std::make_unique<StationaryServer>(key, spec,
                                                   sc_to_mc_.get(), &store_);
  if (item.client->in_charge()) {
    cache_.Install(key, *store_.Get(key));
  }
  const auto [it, inserted] = items_.emplace(key, std::move(item));
  MOBREP_CHECK(inserted);
  const uint32_t id = InternKey(key);
  if (items_by_id_.size() <= id) items_by_id_.resize(id + 1, nullptr);
  items_by_id_[id] = &it->second;
}

MultiItemSimulation::Item& MultiItemSimulation::GetOrCreate(
    const std::string& key) {
  const auto it = items_.find(key);
  if (it != items_.end()) return it->second;
  AddItem(key, options_.default_spec);
  return items_.find(key)->second;
}

void MultiItemSimulation::Step(const std::string& key, Op op) {
  Item& item = GetOrCreate(key);
  if (op == Op::kRead) {
    ++item.reads;
    bool completed = false;
    VersionedValue seen;
    item.client->IssueRead([&](const VersionedValue& value) {
      completed = true;
      seen = value;
    });
    queue_.RunUntilQuiescent();
    MOBREP_CHECK_MSG(completed, "read did not complete");
    MOBREP_CHECK_MSG(seen == *store_.Get(key),
                     "MC read observed a stale value");
  } else {
    ++item.writes;
    ++item.write_sequence;
    item.server->IssueWrite(StrFormat(
        "%s/v%lld", key.c_str(),
        static_cast<long long>(item.write_sequence)));
    queue_.RunUntilQuiescent();
  }
  MOBREP_CHECK(item.client->in_charge() != item.server->in_charge());
  // Cross-item isolation: the MC's local database holds exactly the items
  // whose policies currently replicate.
  MOBREP_CHECK(cache_.Contains(key) == item.client->has_copy());
}

bool MultiItemSimulation::HasCopy(const std::string& key) const {
  const auto it = items_.find(key);
  return it != items_.end() && it->second.client->has_copy();
}

std::vector<std::string> MultiItemSimulation::ReplicatedItems() const {
  std::vector<std::string> keys;
  for (const auto& [key, item] : items_) {
    if (item.client->has_copy()) keys.push_back(key);
  }
  return keys;
}

ProtocolMetrics MultiItemSimulation::metrics() const {
  ProtocolMetrics m;
  for (const auto& [key, item] : items_) {
    m.requests += item.reads + item.writes;
    m.local_reads += item.client->local_reads();
    m.remote_reads += item.client->remote_reads();
    m.writes += item.writes;
    m.propagations += item.server->propagations();
    m.invalidations += item.server->invalidations();
    m.allocations += item.client->allocations();
    m.deallocations += item.client->deallocations();
  }
  m.data_messages =
      mc_to_sc_->data_messages_sent() + sc_to_mc_->data_messages_sent();
  m.control_messages = mc_to_sc_->control_messages_sent() +
                       sc_to_mc_->control_messages_sent();
  m.connections = sc_to_mc_->messages_sent();
  return m;
}

}  // namespace mobrep
