#ifndef MOBREP_PROTOCOL_TRANSFER_H_
#define MOBREP_PROTOCOL_TRANSFER_H_

#include <memory>
#include <vector>

#include "mobrep/core/policy.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/core/schedule.h"

namespace mobrep {

// Helpers for moving the in-charge control state between the MC and the SC.
//
// On the wire the hand-over carries the k-bit request window (paper §4);
// the simulator additionally ships the policy object so that every policy
// family (including the window-less T-policies) rides the same protocol.

// The piggybackable window of `policy`, or an empty vector for policies
// that keep no window (statics, T1m/T2m). `spec` identifies the concrete
// type; `policy` must have been created from `spec`.
std::vector<Op> ExtractWindow(const PolicySpec& spec,
                              const AllocationPolicy& policy);

// Clones `policy` for shipment in a Message::transferred_state.
std::shared_ptr<AllocationPolicy> ShipState(const AllocationPolicy& policy);

// Adopts a shipped state: clones it so sender and receiver never alias.
std::unique_ptr<AllocationPolicy> AdoptState(
    const std::shared_ptr<AllocationPolicy>& shipped);

}  // namespace mobrep

#endif  // MOBREP_PROTOCOL_TRANSFER_H_
