#ifndef MOBREP_PROTOCOL_TRANSFER_H_
#define MOBREP_PROTOCOL_TRANSFER_H_

#include <memory>
#include <span>
#include <vector>

#include "mobrep/core/policy.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/core/schedule.h"

namespace mobrep {

// Helpers for moving the in-charge control state between the MC and the SC.
//
// On the wire the hand-over carries the k-bit request window (paper §4);
// the simulator additionally ships the policy object so that every policy
// family (including the window-less T-policies) rides the same protocol.

// The piggybackable window of `policy`, or an empty window for policies
// that keep no window (statics, T1m/T2m). `spec` identifies the concrete
// type; `policy` must have been created from `spec`. Returns the
// inline-storage Window (heap-free at the paper's k = 9; larger windows
// spill and are counted in mobrep_alloc_window_spills).
Window ExtractWindow(const PolicySpec& spec, const AllocationPolicy& policy);

// Clones `policy` for shipment in a Message::transferred_state.
std::shared_ptr<AllocationPolicy> ShipState(const AllocationPolicy& policy);

// Adopts a shipped state: clones it so sender and receiver never alias.
std::unique_ptr<AllocationPolicy> AdoptState(
    const std::shared_ptr<AllocationPolicy>& shipped);

// The T-family consecutive-request streak of `policy` (reads for T1m,
// writes for T2m); 0 for every other family. Together with ExtractWindow
// this captures everything a policy's state machine holds, so a policy can
// be persisted as (has_copy, window, counter) and rebuilt exactly.
int ExtractCounter(const PolicySpec& spec, const AllocationPolicy& policy);

// Rebuilds a policy of `spec`'s family in the persisted state
// (crash recovery; see docs/RECOVERY.md). The inverse of
// (ExtractWindow, ExtractCounter, has_copy()).
std::unique_ptr<AllocationPolicy> ReconstructPolicy(
    const PolicySpec& spec, bool has_copy, std::span<const Op> window,
    int counter);

}  // namespace mobrep

#endif  // MOBREP_PROTOCOL_TRANSFER_H_
