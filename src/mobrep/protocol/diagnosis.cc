#include "mobrep/protocol/diagnosis.h"

#include <cstdarg>
#include <cstdio>

namespace mobrep {
namespace {

void AppendF(std::string* out, const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  out->append(buffer);
}

}  // namespace

std::string DescribeQuiescenceStall(const MobileClient* client,
                                    const StationaryServer* server,
                                    const ReliableLink* mc_link,
                                    const ReliableLink* sc_link) {
  std::string out;

  // A pending resync is the serious diagnosis: the handshake has one
  // round trip and any number of retransmissions, so an unbounded drain
  // with a resync pending means the resolution is not making progress.
  if (client != nullptr && client->resync_pending()) {
    AppendF(&out,
            "livelocked resync: MC incarnation %u still awaits the SC's "
            "ownership resolution; ",
            client->incarnation());
  }
  if (server != nullptr && server->resync_pending()) {
    AppendF(&out,
            "livelocked resync: SC incarnation %u announced its restart but "
            "never saw the MC's claim; ",
            server->incarnation());
  }
  if (!out.empty()) {
    out += "the handshake is stuck, not slow";
    return out;
  }

  const size_t mc_out = mc_link != nullptr ? mc_link->outstanding_frames() : 0;
  const size_t sc_out = sc_link != nullptr ? sc_link->outstanding_frames() : 0;
  if (mc_out + sc_out > 0) {
    AppendF(&out,
            "still draining retransmissions: %zu unacked MC frame(s) (epoch "
            "%u) and %zu unacked SC frame(s) (epoch %u); the event cap is "
            "likely too small for the injected outage",
            mc_out, mc_link != nullptr ? mc_link->local_epoch() : 0, sc_out,
            sc_link != nullptr ? sc_link->local_epoch() : 0);
    return out;
  }

  return "no resync pending and no unacked frames on either link; the event "
         "loop itself is livelocked";
}

}  // namespace mobrep
