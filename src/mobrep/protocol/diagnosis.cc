#include "mobrep/protocol/diagnosis.h"

#include <cstdarg>
#include <cstdio>

namespace mobrep {
namespace {

void AppendF(std::string* out, const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  out->append(buffer);
}

}  // namespace

namespace {

// One line naming the lease state on both ends: who holds it, under which
// fencing token, for how much longer (when `now` is known).
void AppendLeaseState(std::string* out, const MobileClient* client,
                      const StationaryServer* server, double now) {
  if (server == nullptr || !server->lease_enabled()) return;
  const char* holder = server->lease_reclaimed() ? "SC (reclaimed)"
                       : server->lease_held()    ? "MC"
                                                 : "none";
  AppendF(out,
          "; lease: holder=%s token=%llu term=%.4g", holder,
          static_cast<unsigned long long>(server->lease_token()),
          server->lease_config().term);
  if (server->lease_held() && !server->lease_reclaimed() && now >= 0.0) {
    AppendF(out, " expires_in=%.4g", server->lease_expiry() - now);
  }
  if (client != nullptr && client->lease_enabled() &&
      client->lease_token() != server->lease_token()) {
    AppendF(out, " (MC still holds stale token %llu)",
            static_cast<unsigned long long>(client->lease_token()));
  }
}

// Names exhausted per-conversation retry budgets: frames on that side are
// being abandoned, so "still draining" will never finish on its own.
void AppendBudgetState(std::string* out, const ReliableLink* mc_link,
                       const ReliableLink* sc_link) {
  if (mc_link != nullptr && mc_link->retry_budget_exhausted()) {
    AppendF(out, "; MC link retry budget exhausted (%lld frames abandoned)",
            static_cast<long long>(mc_link->budget_exhausted_frames()));
  }
  if (sc_link != nullptr && sc_link->retry_budget_exhausted()) {
    AppendF(out, "; SC link retry budget exhausted (%lld frames abandoned)",
            static_cast<long long>(sc_link->budget_exhausted_frames()));
  }
}

}  // namespace

std::string DescribeQuiescenceStall(const MobileClient* client,
                                    const StationaryServer* server,
                                    const ReliableLink* mc_link,
                                    const ReliableLink* sc_link,
                                    double now) {
  std::string out;

  // A pending resync is the serious diagnosis: the handshake has one
  // round trip and any number of retransmissions, so an unbounded drain
  // with a resync pending means the resolution is not making progress.
  if (client != nullptr && client->resync_pending()) {
    AppendF(&out,
            "livelocked resync: MC incarnation %u still awaits the SC's "
            "ownership resolution; ",
            client->incarnation());
  }
  if (server != nullptr && server->resync_pending()) {
    AppendF(&out,
            "livelocked resync: SC incarnation %u announced its restart but "
            "never saw the MC's claim; ",
            server->incarnation());
  }
  if (!out.empty()) {
    out += "the handshake is stuck, not slow";
    AppendLeaseState(&out, client, server, now);
    AppendBudgetState(&out, mc_link, sc_link);
    return out;
  }

  const size_t mc_out = mc_link != nullptr ? mc_link->outstanding_frames() : 0;
  const size_t sc_out = sc_link != nullptr ? sc_link->outstanding_frames() : 0;
  if (mc_out + sc_out > 0) {
    AppendF(&out,
            "still draining retransmissions: %zu unacked MC frame(s) (epoch "
            "%u) and %zu unacked SC frame(s) (epoch %u); the event cap is "
            "likely too small for the injected outage",
            mc_out, mc_link != nullptr ? mc_link->local_epoch() : 0, sc_out,
            sc_link != nullptr ? sc_link->local_epoch() : 0);
    AppendLeaseState(&out, client, server, now);
    AppendBudgetState(&out, mc_link, sc_link);
    return out;
  }

  out =
      "no resync pending and no unacked frames on either link; the event "
      "loop itself is livelocked";
  AppendLeaseState(&out, client, server, now);
  AppendBudgetState(&out, mc_link, sc_link);
  return out;
}

}  // namespace mobrep
