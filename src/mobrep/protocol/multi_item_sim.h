#ifndef MOBREP_PROTOCOL_MULTI_ITEM_SIM_H_
#define MOBREP_PROTOCOL_MULTI_ITEM_SIM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mobrep/core/policy_factory.h"
#include "mobrep/core/schedule.h"
#include "mobrep/net/channel.h"
#include "mobrep/net/event_queue.h"
#include "mobrep/protocol/mobile_client.h"
#include "mobrep/protocol/protocol_sim.h"
#include "mobrep/protocol/stationary_server.h"
#include "mobrep/store/replica_cache.h"
#include "mobrep/store/versioned_store.h"

namespace mobrep {

// Many data items replicated over ONE shared MC <-> SC link pair: the
// realistic deployment where a mobile computer manages its whole working
// set across a single wireless link.
//
// Each item runs its own §4 protocol instance (the paper's model is
// per-item; messages carry the item key, and a demultiplexer dispatches
// them), while the channels, the MC's local database and the SC's online
// store are shared. Requests are serialized globally, as everywhere else
// in this repository.
class MultiItemSimulation {
 public:
  struct Options {
    PolicySpec default_spec = {PolicyKind::kSw, 9};
    double link_latency = 0.001;
  };

  explicit MultiItemSimulation(const Options& options);

  MultiItemSimulation(const MultiItemSimulation&) = delete;
  MultiItemSimulation& operator=(const MultiItemSimulation&) = delete;

  // Registers an item (optionally with its own policy). Items may also be
  // created implicitly on first use with the default policy.
  void AddItem(const std::string& key, const PolicySpec& spec,
               const std::string& initial_value = "v0");

  // One relevant request against one item; runs to quiescence and checks
  // read freshness.
  void Step(const std::string& key, Op op);

  bool HasCopy(const std::string& key) const;
  std::vector<std::string> ReplicatedItems() const;
  size_t item_count() const { return items_.size(); }

  // Aggregate wire accounting across all items (shared channels).
  ProtocolMetrics metrics() const;

  const VersionedStore& store() const { return store_; }
  const ReplicaCache& cache() const { return cache_; }

 private:
  struct Item {
    std::unique_ptr<MobileClient> client;
    std::unique_ptr<StationaryServer> server;
    int64_t reads = 0;
    int64_t writes = 0;
    int64_t write_sequence = 0;
  };

  Item& GetOrCreate(const std::string& key);
  // Demultiplexes an incoming message to its item: O(1) through the
  // interned key id when stamped, string-map lookup when key_id == 0.
  Item& ItemFor(const Message& m);

  Options options_;
  EventQueue queue_;
  VersionedStore store_;
  ReplicaCache cache_;
  std::unique_ptr<Channel> mc_to_sc_;
  std::unique_ptr<Channel> sc_to_mc_;
  std::map<std::string, Item> items_;
  // Interned-key fast path: global key id -> this sim's item (nullptr for
  // ids interned by other sims). map nodes are stable, so Item* is safe.
  std::vector<Item*> items_by_id_;
};

}  // namespace mobrep

#endif  // MOBREP_PROTOCOL_MULTI_ITEM_SIM_H_
