#include "mobrep/protocol/multi_client_sim.h"

#include <utility>

#include "mobrep/common/check.h"
#include "mobrep/common/strings.h"

namespace mobrep {

MultiClientSimulation::MultiClientSimulation(const Options& options)
    : options_(options) {
  MOBREP_CHECK(options.num_clients >= 1);
  store_.Put(options_.key, options_.initial_value);

  pairs_.resize(static_cast<size_t>(options.num_clients));
  for (int i = 0; i < options.num_clients; ++i) {
    Pair& pair = pairs_[static_cast<size_t>(i)];
    pair.up = std::make_unique<Channel>(
        &queue_, options.link_latency, StrFormat("MC%d->SC", i));
    pair.down = std::make_unique<Channel>(
        &queue_, options.link_latency, StrFormat("SC->MC%d", i));
    pair.cache = std::make_unique<ReplicaCache>();
    pair.client = std::make_unique<MobileClient>(
        options_.key, options_.spec, pair.up.get(), pair.cache.get());
    pair.server = std::make_unique<StationaryServer>(
        options_.key, options_.spec, pair.down.get(), &store_);
    MobileClient* client = pair.client.get();
    StationaryServer* server = pair.server.get();
    pair.up->set_receiver(
        [server](const Message& m) { server->HandleMessage(m); });
    pair.down->set_receiver(
        [client](const Message& m) { client->HandleMessage(m); });
    if (pair.client->in_charge()) {
      pair.cache->Install(options_.key, *store_.Get(options_.key));
    }
  }
}

void MultiClientSimulation::StepRead(int client) {
  MOBREP_CHECK(client >= 0 && client < num_clients());
  Pair& pair = pairs_[static_cast<size_t>(client)];
  bool completed = false;
  VersionedValue seen;
  pair.client->IssueRead([&](const VersionedValue& value) {
    completed = true;
    seen = value;
  });
  queue_.RunUntilQuiescent();
  MOBREP_CHECK_MSG(completed, "read did not complete");
  MOBREP_CHECK_MSG(seen == *store_.Get(options_.key),
                   "a mobile computer observed a stale value");
  MOBREP_CHECK(pair.client->in_charge() != pair.server->in_charge());
}

void MultiClientSimulation::StepWrite() {
  ++write_sequence_;
  // One commit, then every per-MC half honours its own subscription.
  store_.Put(options_.key,
             StrFormat("v%lld", static_cast<long long>(write_sequence_)));
  for (Pair& pair : pairs_) {
    pair.server->OnCommittedWrite();
  }
  queue_.RunUntilQuiescent();
  for (const Pair& pair : pairs_) {
    MOBREP_CHECK(pair.client->in_charge() != pair.server->in_charge());
    // Subscribers' replicas are in step with the store.
    if (pair.client->has_copy()) {
      MOBREP_CHECK(*pair.cache->Get(options_.key) ==
                   *store_.Get(options_.key));
    }
  }
}

bool MultiClientSimulation::HasCopy(int client) const {
  MOBREP_CHECK(client >= 0 && client < num_clients());
  return pairs_[static_cast<size_t>(client)].client->has_copy();
}

int MultiClientSimulation::SubscriberCount() const {
  int count = 0;
  for (const Pair& pair : pairs_) {
    count += pair.client->has_copy() ? 1 : 0;
  }
  return count;
}

int64_t MultiClientSimulation::data_messages() const {
  int64_t total = 0;
  for (const Pair& pair : pairs_) {
    total += pair.up->data_messages_sent() + pair.down->data_messages_sent();
  }
  return total;
}

int64_t MultiClientSimulation::control_messages() const {
  int64_t total = 0;
  for (const Pair& pair : pairs_) {
    total += pair.up->control_messages_sent() +
             pair.down->control_messages_sent();
  }
  return total;
}

int64_t MultiClientSimulation::client_data_messages(int client) const {
  MOBREP_CHECK(client >= 0 && client < num_clients());
  const Pair& pair = pairs_[static_cast<size_t>(client)];
  return pair.up->data_messages_sent() + pair.down->data_messages_sent();
}

int64_t MultiClientSimulation::client_control_messages(int client) const {
  MOBREP_CHECK(client >= 0 && client < num_clients());
  const Pair& pair = pairs_[static_cast<size_t>(client)];
  return pair.up->control_messages_sent() +
         pair.down->control_messages_sent();
}

}  // namespace mobrep
