#include "mobrep/protocol/multi_client_sim.h"

#include <cstddef>
#include <utility>

#include "mobrep/common/check.h"
#include "mobrep/common/strings.h"

namespace mobrep {

MultiClientSimulation::MultiClientSimulation(const Options& options)
    : options_(options) {
  MOBREP_CHECK(options.num_clients >= 1);
  store_.Put(options_.key, options_.initial_value);

  const size_t n = static_cast<size_t>(options.num_clients);
  up_.Reserve(n);
  down_.Reserve(n);
  caches_.Reserve(n);
  clients_.Reserve(n);
  servers_.Reserve(n);
  for (int i = 0; i < options.num_clients; ++i) {
    Channel& up = up_.Emplace(&queue_, options.link_latency,
                              StrFormat("MC%d->SC", i));
    Channel& down = down_.Emplace(&queue_, options.link_latency,
                                  StrFormat("SC->MC%d", i));
    ReplicaCache& cache = caches_.Emplace();
    MobileClient& client =
        clients_.Emplace(options_.key, options_.spec, &up, &cache);
    StationaryServer& server =
        servers_.Emplace(options_.key, options_.spec, &down, &store_);
    up.set_receiver(
        [server = &server](const Message& m) { server->HandleMessage(m); });
    down.set_receiver(
        [client = &client](const Message& m) { client->HandleMessage(m); });
    if (client.in_charge()) {
      cache.Install(options_.key, *store_.Get(options_.key));
    }
  }
}

void MultiClientSimulation::RunToQuiescence(const char* what) {
  int64_t ran = 0;
  const int64_t budget =
      EventQueue::AutoEventBudget(static_cast<int64_t>(queue_.pending()));
  if (!queue_.TryRunUntilQuiescent(EventQueue::kAutoEventBudget, &ran)) {
    MOBREP_CHECK_MSG(
        false,
        StrFormat("multi-client %s cascade exceeded its event budget of "
                  "%lld (%d clients, %lld events ran, %zu still pending); "
                  "livelock, or the auto budget needs raising for this size",
                  what, static_cast<long long>(budget), num_clients(),
                  static_cast<long long>(ran), queue_.pending())
            .c_str());
  }
}

void MultiClientSimulation::StepRead(int client) {
  MOBREP_CHECK(client >= 0 && client < num_clients());
  const size_t i = static_cast<size_t>(client);
  bool completed = false;
  VersionedValue seen;
  clients_[i].IssueRead([&](const VersionedValue& value) {
    completed = true;
    seen = value;
  });
  RunToQuiescence("read");
  MOBREP_CHECK_MSG(completed, "read did not complete");
  MOBREP_CHECK_MSG(seen == *store_.Get(options_.key),
                   "a mobile computer observed a stale value");
  MOBREP_CHECK(clients_[i].in_charge() != servers_[i].in_charge());
}

void MultiClientSimulation::StepWrite() {
  ++write_sequence_;
  // One commit, then every per-MC half honours its own subscription.
  store_.Put(options_.key,
             StrFormat("v%lld", static_cast<long long>(write_sequence_)));
  for (StationaryServer& server : servers_) {
    server.OnCommittedWrite();
  }
  RunToQuiescence("write");
  for (size_t i = 0; i < clients_.size(); ++i) {
    MOBREP_CHECK(clients_[i].in_charge() != servers_[i].in_charge());
    // Subscribers' replicas are in step with the store.
    if (clients_[i].has_copy()) {
      MOBREP_CHECK(*caches_[i].Get(options_.key) ==
                   *store_.Get(options_.key));
    }
  }
}

bool MultiClientSimulation::HasCopy(int client) const {
  MOBREP_CHECK(client >= 0 && client < num_clients());
  return clients_[static_cast<size_t>(client)].has_copy();
}

int MultiClientSimulation::SubscriberCount() const {
  int count = 0;
  for (const MobileClient& client : clients_) {
    count += client.has_copy() ? 1 : 0;
  }
  return count;
}

int64_t MultiClientSimulation::data_messages() const {
  int64_t total = 0;
  for (size_t i = 0; i < up_.size(); ++i) {
    total += up_[i].data_messages_sent() + down_[i].data_messages_sent();
  }
  return total;
}

int64_t MultiClientSimulation::control_messages() const {
  int64_t total = 0;
  for (size_t i = 0; i < up_.size(); ++i) {
    total += up_[i].control_messages_sent() +
             down_[i].control_messages_sent();
  }
  return total;
}

int64_t MultiClientSimulation::client_data_messages(int client) const {
  MOBREP_CHECK(client >= 0 && client < num_clients());
  const size_t i = static_cast<size_t>(client);
  return up_[i].data_messages_sent() + down_[i].data_messages_sent();
}

int64_t MultiClientSimulation::client_control_messages(int client) const {
  MOBREP_CHECK(client >= 0 && client < num_clients());
  const size_t i = static_cast<size_t>(client);
  return up_[i].control_messages_sent() + down_[i].control_messages_sent();
}

}  // namespace mobrep
