#include "mobrep/protocol/lease.h"

namespace mobrep {

const char* ReadServiceModeName(ReadServiceMode mode) {
  switch (mode) {
    case ReadServiceMode::kAuthoritative:
      return "authoritative";
    case ReadServiceMode::kCoordinated:
      return "coordinated";
    case ReadServiceMode::kDegraded:
      return "degraded";
  }
  return "unknown";
}

}  // namespace mobrep
