#include "mobrep/protocol/mobile_client.h"

#include <utility>

#include "mobrep/common/check.h"
#include "mobrep/protocol/transfer.h"

namespace mobrep {

MobileClient::MobileClient(std::string key, const PolicySpec& spec,
                           Link* to_sc, ReplicaCache* cache)
    : key_(std::move(key)),
      spec_(spec),
      to_sc_(to_sc),
      cache_(cache),
      policy_(CreatePolicy(spec)) {
  MOBREP_CHECK(to_sc != nullptr);
  MOBREP_CHECK(cache != nullptr);
  // The node holding the copy is in charge (paper §4). Policies whose
  // initial state holds a copy start with the MC in charge.
  in_charge_ = policy_->has_copy();
}

void MobileClient::IssueRead(ReadCallback callback) {
  MOBREP_CHECK_MSG(pending_read_ == nullptr,
                   "reads are serialized; one is already outstanding");
  if (has_copy()) {
    MOBREP_CHECK_MSG(in_charge_, "copy held while not in charge");
    const ActionKind action = policy_->OnRequest(Op::kRead);
    MOBREP_CHECK(action == ActionKind::kLocalRead);
    ++local_reads_;
    callback(*cache_->Get(key_));
    return;
  }
  // No copy: forward the read to the SC; the SC (in charge) decides whether
  // to piggyback an allocation on the response.
  pending_read_ = std::move(callback);
  ++remote_reads_;
  Message request;
  request.type = MessageType::kReadRequest;
  request.key = key_;
  to_sc_->Send(std::move(request));
}

void MobileClient::HandleMessage(const Message& message) {
  MOBREP_CHECK(message.key == key_);
  switch (message.type) {
    case MessageType::kDataResponse: {
      if (message.allocate) {
        // The SC decided to allocate: save the copy, adopt the shipped
        // control state, take charge.
        cache_->Install(key_, message.item);
        policy_ = AdoptState(message.transferred_state);
        MOBREP_CHECK_MSG(policy_->has_copy(),
                         "allocation hand-over with a no-copy state");
        last_transfer_window_ = message.window;
        in_charge_ = true;
        ++allocations_;
      }
      CompleteRead(message.item);
      return;
    }
    case MessageType::kWritePropagate: {
      if (!in_charge_ || !has_copy()) {
        // The propagation crossed our delete-request in flight: this MC
        // already deallocated, the SC just has not heard yet. Drop it —
        // the SC stops propagating once the delete-request lands.
        MOBREP_CHECK_MSG(tolerates_link_faults_,
                         "write propagated to an MC without a copy");
        ++stale_propagates_dropped_;
        return;
      }
      // Version gaps are legal only in degraded-link mode, where the SC
      // collapses queued propagation during an outage (last-writer-wins).
      const Status applied = cache_->ApplyUpdate(
          key_, message.item, /*allow_gaps=*/tolerates_link_faults_);
      MOBREP_CHECK_MSG(applied.ok(), applied.message().c_str());
      ++updates_applied_;
      const ActionKind action = policy_->OnRequest(Op::kWrite);
      if (action == ActionKind::kWritePropagateDeallocate) {
        // Majority of the window are now writes: drop the copy and hand
        // the control state back inside the delete-request.
        MOBREP_CHECK(cache_->Evict(key_).ok());
        ++deallocations_;
        Message del;
        del.type = MessageType::kDeleteRequest;
        del.key = key_;
        del.window = ExtractWindow(spec_, *policy_);
        del.transferred_state = ShipState(*policy_);
        last_transfer_window_ = del.window;
        in_charge_ = false;
        to_sc_->Send(std::move(del));
      } else {
        MOBREP_CHECK(action == ActionKind::kWritePropagate);
      }
      return;
    }
    case MessageType::kInvalidate: {
      // SW1 optimization: the SC already took charge; just drop the copy.
      if (!in_charge_ || !has_copy()) {
        MOBREP_CHECK_MSG(tolerates_link_faults_,
                         "invalidate received without a copy");
        ++stale_propagates_dropped_;
        return;
      }
      MOBREP_CHECK(cache_->Evict(key_).ok());
      // Keep the local replica machine in step (it returns the invalidate
      // action and drops its copy bit).
      const ActionKind action = policy_->OnRequest(Op::kWrite);
      MOBREP_CHECK(action == ActionKind::kWriteInvalidate);
      in_charge_ = false;
      ++deallocations_;
      return;
    }
    case MessageType::kReadRequest:
    case MessageType::kDeleteRequest:
      MOBREP_CHECK_MSG(false, "SC-bound message delivered to the MC");
      return;
    case MessageType::kAck:
      MOBREP_CHECK_MSG(false, "link-level ack delivered to the MC");
  }
}

void MobileClient::CompleteRead(const VersionedValue& value) {
  MOBREP_CHECK_MSG(pending_read_ != nullptr,
                   "data response without an outstanding read");
  ReadCallback callback = std::move(pending_read_);
  pending_read_ = nullptr;
  callback(value);
}

}  // namespace mobrep
