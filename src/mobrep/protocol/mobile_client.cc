#include "mobrep/protocol/mobile_client.h"

#include <algorithm>
#include <utility>

#include "mobrep/common/check.h"
#include "mobrep/net/key_interner.h"
#include "mobrep/obs/trace.h"
#include "mobrep/protocol/transfer.h"

namespace mobrep {

MobileClient::MobileClient(std::string key, const PolicySpec& spec,
                           Link* to_sc, ReplicaCache* cache)
    : key_(std::move(key)),
      key_id_(InternKey(key_)),
      spec_(spec),
      to_sc_(to_sc),
      cache_(cache),
      policy_(CreatePolicy(spec)) {
  MOBREP_CHECK(to_sc != nullptr);
  MOBREP_CHECK(cache != nullptr);
  // The node holding the copy is in charge (paper §4). Policies whose
  // initial state holds a copy start with the MC in charge.
  in_charge_ = policy_->has_copy();
}

void MobileClient::Persist(const char* reason) {
  if (journal_ != nullptr) journal_->Persist(reason);
}

Message MobileClient::NewMessage(MessageType type) const {
  Message message;
  message.type = type;
  message.key = key_;
  message.key_id = key_id_;
  return message;
}

void MobileClient::EnableLeases(EventQueue* clock, const LeaseConfig& config) {
  MOBREP_CHECK(clock != nullptr);
  MOBREP_CHECK_MSG(config.enabled, "EnableLeases with a disabled config");
  MOBREP_CHECK(config.term > 0.0);
  clock_ = clock;
  lease_config_ = config;
  if (in_charge_) {
    // Policies whose initial state replicates the item (ST2, T2m) start
    // with this node holding the lease: token 1, anchored at now. The SC
    // mirrors this in its own EnableLeases — no wire traffic.
    lease_token_ = 1;
    lease_expiry_ = clock_->now() + lease_config_.term;
  }
}

bool MobileClient::LeaseLapsed() const {
  return lease_config_.enabled && in_charge_ &&
         clock_->now() >= lease_expiry_;
}

void MobileClient::SendLeaseRenewal() {
  if (!lease_config_.enabled || !in_charge_) return;
  const double now = clock_->now();
  ++lease_renewals_sent_;
  MOBREP_TRACE_EVENT(obs::TraceEventKind::kLeaseRenew, "MC", now,
                     static_cast<int64_t>(lease_token_), 0, 0,
                     lease_expiry_ - now);
  Message renew = NewMessage(MessageType::kLeaseRenew);
  renew.lease_token = lease_token_;
  // The renewed term is measured from this send time, never from the ack's
  // arrival: under the single simulated clock the SC's expiry (receipt +
  // term) is then always >= this node's (anchor + term), so the holder
  // self-fences before the grantor reclaims.
  renew.lease_anchor = now;
  to_sc_->Send(std::move(renew));
}

void MobileClient::IssueRead(ReadCallback callback) {
  MOBREP_CHECK_MSG(pending_read_ == nullptr,
                   "reads are serialized; one is already outstanding");
  if (has_copy()) {
    MOBREP_CHECK_MSG(in_charge_, "copy held while not in charge");
    if (LeaseLapsed()) {
      // Graceful degradation at the holder: a lapsed lease no longer
      // authorizes local serving (the SC may have reclaimed and committed
      // writes this replica never saw). Forward to the SC — authoritative
      // for writes — without consulting the policy: lease-lapse traffic
      // is availability cost, not part of the paper's workload.
      ++lapsed_remote_reads_;
      pending_read_ = std::move(callback);
      to_sc_->Send(NewMessage(MessageType::kReadRequest));
      return;
    }
    const ActionKind action = policy_->OnRequest(Op::kRead);
    MOBREP_CHECK(action == ActionKind::kLocalRead);
    ++local_reads_;
    Persist("mc.read");
    callback(*cache_->Get(key_));
    return;
  }
  // No copy: forward the read to the SC; the SC (in charge) decides whether
  // to piggyback an allocation on the response.
  pending_read_ = std::move(callback);
  ++remote_reads_;
  to_sc_->Send(NewMessage(MessageType::kReadRequest));
}

void MobileClient::Restore(bool in_charge,
                           std::unique_ptr<AllocationPolicy> policy,
                           uint32_t incarnation, uint32_t peer_incarnation) {
  MOBREP_CHECK(policy != nullptr);
  policy_ = std::move(policy);
  in_charge_ = in_charge;
  MOBREP_CHECK_MSG(in_charge_ == policy_->has_copy(),
                   "recovered ownership bit contradicts the policy state");
  incarnation_ = incarnation;
  peer_incarnation_ = peer_incarnation;
}

void MobileClient::BeginResync() {
  resync_pending_ = true;
  MOBREP_TRACE_EVENT(obs::TraceEventKind::kResync, "MC", 0.0,
                     0, static_cast<int64_t>(incarnation_), 0);
  Message request = NewMessage(MessageType::kResyncRequest);
  request.claims_charge = in_charge_;
  request.epoch = incarnation_;
  request.peer_epoch = peer_incarnation_;
  to_sc_->Send(std::move(request));
}

void MobileClient::HandleMessage(const Message& message) {
  MOBREP_CHECK(message.key == key_);
  switch (message.type) {
    case MessageType::kDataResponse: {
      if (message.allocate) {
        // The SC decided to allocate: save the copy, adopt the shipped
        // control state, take charge.
        cache_->Install(key_, message.item);
        policy_ = AdoptState(message.transferred_state);
        MOBREP_CHECK_MSG(policy_->has_copy(),
                         "allocation hand-over with a no-copy state");
        last_transfer_window_ = message.window;
        in_charge_ = true;
        ++allocations_;
        if (lease_config_.enabled) {
          // The grant carries the lease: adopt its fencing token and the
          // term measured from the grantor's anchor time.
          lease_token_ = message.lease_token;
          lease_expiry_ = message.lease_anchor + message.lease_term;
          conflict_reported_ = false;
        }
        Persist("mc.alloc");
      }
      CompleteRead(message.item);
      return;
    }
    case MessageType::kWritePropagate: {
      if (!in_charge_ || !has_copy()) {
        // The propagation crossed our delete-request in flight: this MC
        // already deallocated, the SC just has not heard yet. Drop it —
        // the SC stops propagating once the delete-request lands.
        MOBREP_CHECK_MSG(tolerates_link_faults_,
                         "write propagated to an MC without a copy");
        ++stale_propagates_dropped_;
        return;
      }
      // Version gaps are legal only in degraded-link mode, where the SC
      // collapses queued propagation during an outage (last-writer-wins).
      const Status applied = cache_->ApplyUpdate(
          key_, message.item, /*allow_gaps=*/tolerates_link_faults_);
      MOBREP_CHECK_MSG(applied.ok(), applied.message().c_str());
      ++updates_applied_;
      const ActionKind action = policy_->OnRequest(Op::kWrite);
      if (action == ActionKind::kWritePropagateDeallocate) {
        // Majority of the window are now writes: drop the copy and hand
        // the control state back inside the delete-request. Persisted
        // before the delete-request leaves, so a crash in between leaves
        // a deallocated-but-unannounced state the resync re-grants.
        MOBREP_CHECK(cache_->Evict(key_).ok());
        ++deallocations_;
        Message del = NewMessage(MessageType::kDeleteRequest);
        del.window = ExtractWindow(spec_, *policy_);
        del.transferred_state = ShipState(*policy_);
        // The hand-over names the lease it retires; a stale token here is
        // fenced by the SC like a stale epoch (conflict report, not a
        // silent adoption).
        del.lease_token = lease_token_;
        last_transfer_window_ = del.window;
        in_charge_ = false;
        Persist("mc.dealloc");
        to_sc_->Send(std::move(del));
      } else {
        MOBREP_CHECK(action == ActionKind::kWritePropagate);
        Persist("mc.apply");
      }
      return;
    }
    case MessageType::kInvalidate: {
      // SW1 optimization: the SC already took charge; just drop the copy.
      if (!in_charge_ || !has_copy()) {
        MOBREP_CHECK_MSG(tolerates_link_faults_,
                         "invalidate received without a copy");
        ++stale_propagates_dropped_;
        return;
      }
      MOBREP_CHECK(cache_->Evict(key_).ok());
      // Keep the local replica machine in step (it returns the invalidate
      // action and drops its copy bit).
      const ActionKind action = policy_->OnRequest(Op::kWrite);
      MOBREP_CHECK(action == ActionKind::kWriteInvalidate);
      in_charge_ = false;
      ++deallocations_;
      Persist("mc.invalidate");
      return;
    }
    case MessageType::kResyncRequest: {
      // The SC restarted and announces its new incarnation: report this
      // node's live ownership claim so the SC can resolve.
      peer_incarnation_ = std::max(peer_incarnation_, message.epoch);
      Message reply = NewMessage(MessageType::kResyncRequest);
      reply.claims_charge = in_charge_;
      reply.epoch = incarnation_;
      reply.peer_epoch = peer_incarnation_;
      to_sc_->Send(std::move(reply));
      return;
    }
    case MessageType::kResyncResponse: {
      // The SC's ownership resolution (docs/RECOVERY.md): `allocate` says
      // this MC owns the window afterwards.
      peer_incarnation_ = std::max(peer_incarnation_, message.epoch);
      resync_pending_ = false;
      ++resyncs_;
      MOBREP_TRACE_EVENT(obs::TraceEventKind::kResync, "MC", 0.0,
                         0, static_cast<int64_t>(incarnation_), 1);
      if (message.allocate) {
        if (message.transferred_state != nullptr) {
          // Re-grant: an allocation lost in a crash (by either side),
          // re-issued from the SC's retained control state.
          cache_->Install(key_, message.item);
          policy_ = AdoptState(message.transferred_state);
          MOBREP_CHECK_MSG(policy_->has_copy(),
                           "re-grant with a no-copy state");
          last_transfer_window_ = message.window;
          in_charge_ = true;
          ++allocations_;
          Persist("mc.resync");
          if (pending_read_ != nullptr) {
            // The read whose round trip the crash interrupted is now
            // servable locally from the re-granted copy.
            ++resync_read_retries_;
            CompleteRead(message.item);
          }
        } else {
          // Refresh: both sides agree this MC owns; catch the replica up
          // to the latest committed version (propagations in flight at the
          // crash died with the old conversation).
          MOBREP_CHECK_MSG(in_charge_ && has_copy(),
                           "resync refresh addressed to a non-owner");
          MOBREP_CHECK_MSG(pending_read_ == nullptr,
                           "owner MC with an outstanding remote read");
          const Result<VersionedValue> current = cache_->Get(key_);
          MOBREP_CHECK(current.ok());
          MOBREP_CHECK_MSG(
              current->version <= message.item.version,
              "MC replica ahead of the authoritative store after recovery");
          if (current->version < message.item.version) {
            cache_->Install(key_, message.item);
            ++updates_applied_;
          }
          Persist("mc.resync");
        }
      } else {
        // The SC owns: drop whatever claim this node's recovered (or
        // stale pre-crash) state held — e.g. an SW1 invalidate that died
        // in flight with the crash.
        if (has_copy()) {
          MOBREP_CHECK(cache_->Evict(key_).ok());
        }
        if (in_charge_) {
          in_charge_ = false;
          ++deallocations_;
        }
        Persist("mc.resync");
        if (pending_read_ != nullptr) {
          // A read round trip died with the crash; re-drive it against
          // the resynced SC.
          ++resync_read_retries_;
          to_sc_->Send(NewMessage(MessageType::kReadRequest));
        }
      }
      return;
    }
    case MessageType::kLeaseRenewAck: {
      // A renewal round trip completed. Ignore acks for a token this node
      // no longer holds (e.g. the ack of a renewal that raced a revoke).
      if (!lease_config_.enabled || !in_charge_ ||
          message.lease_token != lease_token_) {
        return;
      }
      ++lease_renew_acks_;
      // Extend from the renewal's send-time anchor (echoed by the SC), so
      // this expiry stays conservative against the SC's receipt-anchored
      // one. max(): a reordered older ack must never shorten the lease.
      lease_expiry_ =
          std::max(lease_expiry_, message.lease_anchor + message.lease_term);
      return;
    }
    case MessageType::kLeaseRevoke: {
      // This node returned with a stale fencing token: the SC reclaimed
      // the lease (or re-issued it) while we were away. Fenced exactly
      // like a stale epoch — demote, then surface the unsynced claim as a
      // conflict report rather than dropping it silently.
      MOBREP_CHECK_MSG(lease_config_.enabled,
                       "lease revoke with leases disabled");
      // The revoke itself is fenced by token order: it names the SC's
      // current token at send time. If this node has since adopted an
      // equal-or-newer lease (a regrant overtook this revoke in the
      // queue), the revoke is the stale artifact — ignore it.
      if (message.lease_token <= lease_token_) {
        ++stale_revokes_ignored_;
        return;
      }
      const bool claimed = in_charge_;
      if (in_charge_) {
        if (has_copy()) {
          MOBREP_CHECK(cache_->Evict(key_).ok());
        }
        in_charge_ = false;
        ++lease_revocations_;
        // The policy object keeps its copy-holding state; like after a
        // crash, it is dead weight until the next hand-over replaces it.
        Persist("mc.lease.revoke");
      }
      MOBREP_TRACE_EVENT(obs::TraceEventKind::kLeaseRevoke, "MC",
                         clock_ != nullptr ? clock_->now() : 0.0,
                         static_cast<int64_t>(message.lease_token),
                         static_cast<int64_t>(lease_token_));
      if (!conflict_reported_) {
        conflict_reported_ = true;
        Message conflict = NewMessage(MessageType::kLeaseConflict);
        conflict.lease_token = lease_token_;  // the stale token we held
        conflict.claims_charge = claimed;
        conflict.window = ExtractWindow(spec_, *policy_);
        to_sc_->Send(std::move(conflict));
      }
      return;
    }
    case MessageType::kLeaseRegrant: {
      // The SC reconciled our conflict report: the subscription is
      // re-established from its retained control state under a fresh
      // token (mirrors the crash resync re-grant).
      MOBREP_CHECK_MSG(lease_config_.enabled,
                       "lease regrant with leases disabled");
      cache_->Install(key_, message.item);
      policy_ = AdoptState(message.transferred_state);
      MOBREP_CHECK_MSG(policy_->has_copy(), "re-grant with a no-copy state");
      last_transfer_window_ = message.window;
      in_charge_ = true;
      ++allocations_;
      ++lease_regrants_adopted_;
      lease_token_ = message.lease_token;
      lease_expiry_ = message.lease_anchor + message.lease_term;
      conflict_reported_ = false;
      // A pending remote read stays pending: the in-flight read-request
      // is answered by the SC independently of the regrant.
      Persist("mc.lease.regrant");
      return;
    }
    case MessageType::kReadRequest:
    case MessageType::kDeleteRequest:
    case MessageType::kLeaseRenew:
    case MessageType::kLeaseConflict:
      MOBREP_CHECK_MSG(false, "SC-bound message delivered to the MC");
      return;
    case MessageType::kHeartbeat:
      MOBREP_CHECK_MSG(false, "heartbeat delivered past the link layer");
      return;
    case MessageType::kAck:
      MOBREP_CHECK_MSG(false, "link-level ack delivered to the MC");
  }
}

void MobileClient::CompleteRead(const VersionedValue& value) {
  MOBREP_CHECK_MSG(pending_read_ != nullptr,
                   "data response without an outstanding read");
  ReadCallback callback = std::move(pending_read_);
  pending_read_ = nullptr;
  callback(value);
}

}  // namespace mobrep
