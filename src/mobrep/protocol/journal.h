#ifndef MOBREP_PROTOCOL_JOURNAL_H_
#define MOBREP_PROTOCOL_JOURNAL_H_

namespace mobrep {

// Durability hook a protocol node calls at every protocol-critical state
// mutation (ownership transitions, applied updates, policy-window moves,
// resync resolutions). The implementation — the chaos harness's node
// journal — snapshots the node's state into its WriteAheadLog so a crash
// at any later instant recovers to this point.
//
// `reason` is a static label of the mutation ("mc.dealloc", "sc.grant",
// ...), used to tag the WAL append's crash points in exploration reports.
//
// The call may throw CrashSignal (an armed crash point inside the append);
// nodes therefore persist *before* sending any message that announces the
// mutated state, so a crash between the two leaves a persisted-but-
// unannounced state the resync handshake can reconcile.
//
// No journal installed (every crash-free configuration) means no call
// sites fire and the node behaves exactly as before.
class NodeJournal {
 public:
  virtual ~NodeJournal() = default;
  virtual void Persist(const char* reason) = 0;
};

}  // namespace mobrep

#endif  // MOBREP_PROTOCOL_JOURNAL_H_
