#ifndef MOBREP_PROTOCOL_DIAGNOSIS_H_
#define MOBREP_PROTOCOL_DIAGNOSIS_H_

#include <string>

#include "mobrep/net/reliable_link.h"
#include "mobrep/protocol/mobile_client.h"
#include "mobrep/protocol/stationary_server.h"

namespace mobrep {

// Classifies a hit TryRunUntilQuiescent cap: a "livelocked resync" (a
// post-crash handshake that never resolved — names the stuck side and its
// incarnation) is a protocol bug; "still draining retransmissions" (frames
// outstanding on either ARQ endpoint) usually means the cap is too small
// for the injected outage. Any argument may be null (fault-free wiring has
// no ARQ endpoints; non-crash harnesses may not expose the nodes).
//
// With leases enabled (DESIGN.md §10) the report also names the lease
// state — holder, fencing token, term and time-to-expiry at `now` — and
// whether either link abandoned frames to an exhausted retry budget, so a
// stall during a partition pinpoints which side of the reclamation path is
// stuck. Pass `now` < 0 (the default) when no clock is available; the
// time-to-expiry line is then omitted.
std::string DescribeQuiescenceStall(const MobileClient* client,
                                    const StationaryServer* server,
                                    const ReliableLink* mc_link,
                                    const ReliableLink* sc_link,
                                    double now = -1.0);

}  // namespace mobrep

#endif  // MOBREP_PROTOCOL_DIAGNOSIS_H_
