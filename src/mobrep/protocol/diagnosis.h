#ifndef MOBREP_PROTOCOL_DIAGNOSIS_H_
#define MOBREP_PROTOCOL_DIAGNOSIS_H_

#include <string>

#include "mobrep/net/reliable_link.h"
#include "mobrep/protocol/mobile_client.h"
#include "mobrep/protocol/stationary_server.h"

namespace mobrep {

// Classifies a hit TryRunUntilQuiescent cap: a "livelocked resync" (a
// post-crash handshake that never resolved — names the stuck side and its
// incarnation) is a protocol bug; "still draining retransmissions" (frames
// outstanding on either ARQ endpoint) usually means the cap is too small
// for the injected outage. Any argument may be null (fault-free wiring has
// no ARQ endpoints; non-crash harnesses may not expose the nodes).
std::string DescribeQuiescenceStall(const MobileClient* client,
                                    const StationaryServer* server,
                                    const ReliableLink* mc_link,
                                    const ReliableLink* sc_link);

}  // namespace mobrep

#endif  // MOBREP_PROTOCOL_DIAGNOSIS_H_
