#include "mobrep/protocol/transfer.h"

#include <memory>
#include <span>
#include <vector>

#include "mobrep/common/check.h"
#include "mobrep/obs/alloc_stats.h"
#include "mobrep/core/sliding_window_policy.h"
#include "mobrep/core/threshold_policies.h"

namespace mobrep {

Window ExtractWindow(const PolicySpec& spec, const AllocationPolicy& policy) {
  if (spec.kind == PolicyKind::kSw || spec.kind == PolicyKind::kSw1) {
    // The concrete type is pinned by the spec; no RTTI needed.
    const auto& window_policy =
        static_cast<const SlidingWindowPolicy&>(policy);
    Window window = window_policy.window().SmallContents();
    if (window.spilled()) ++obs::LocalAllocCounters().window_spills;
    return window;
  }
  return {};
}

std::shared_ptr<AllocationPolicy> ShipState(const AllocationPolicy& policy) {
  return std::shared_ptr<AllocationPolicy>(policy.Clone());
}

std::unique_ptr<AllocationPolicy> AdoptState(
    const std::shared_ptr<AllocationPolicy>& shipped) {
  MOBREP_CHECK_MSG(shipped != nullptr,
                   "ownership transfer without a shipped control state");
  return shipped->Clone();
}

int ExtractCounter(const PolicySpec& spec, const AllocationPolicy& policy) {
  switch (spec.kind) {
    case PolicyKind::kT1:
      return static_cast<const T1mPolicy&>(policy).consecutive_reads();
    case PolicyKind::kT2:
      return static_cast<const T2mPolicy&>(policy).consecutive_writes();
    case PolicyKind::kSt1:
    case PolicyKind::kSt2:
    case PolicyKind::kSw:
    case PolicyKind::kSw1:
      return 0;
  }
  return 0;
}

std::unique_ptr<AllocationPolicy> ReconstructPolicy(
    const PolicySpec& spec, bool has_copy, std::span<const Op> window,
    int counter) {
  std::unique_ptr<AllocationPolicy> policy = CreatePolicy(spec);
  switch (spec.kind) {
    case PolicyKind::kSw:
    case PolicyKind::kSw1:
      static_cast<SlidingWindowPolicy*>(policy.get())
          ->SetState(has_copy, window);
      break;
    case PolicyKind::kT1:
      static_cast<T1mPolicy*>(policy.get())->SetState(has_copy, counter);
      break;
    case PolicyKind::kT2:
      static_cast<T2mPolicy*>(policy.get())->SetState(has_copy, counter);
      break;
    case PolicyKind::kSt1:
    case PolicyKind::kSt2:
      // Statics have a single state; the persisted copy bit must agree.
      MOBREP_CHECK_MSG(policy->has_copy() == has_copy,
                       "persisted copy bit contradicts a static policy");
      break;
  }
  MOBREP_CHECK(policy->has_copy() == has_copy);
  return policy;
}

}  // namespace mobrep
