#include "mobrep/protocol/transfer.h"

#include <memory>
#include <vector>

#include "mobrep/common/check.h"
#include "mobrep/core/sliding_window_policy.h"

namespace mobrep {

std::vector<Op> ExtractWindow(const PolicySpec& spec,
                              const AllocationPolicy& policy) {
  if (spec.kind == PolicyKind::kSw || spec.kind == PolicyKind::kSw1) {
    // The concrete type is pinned by the spec; no RTTI needed.
    const auto& window_policy =
        static_cast<const SlidingWindowPolicy&>(policy);
    return window_policy.window().Contents();
  }
  return {};
}

std::shared_ptr<AllocationPolicy> ShipState(const AllocationPolicy& policy) {
  return std::shared_ptr<AllocationPolicy>(policy.Clone());
}

std::unique_ptr<AllocationPolicy> AdoptState(
    const std::shared_ptr<AllocationPolicy>& shipped) {
  MOBREP_CHECK_MSG(shipped != nullptr,
                   "ownership transfer without a shipped control state");
  return shipped->Clone();
}

}  // namespace mobrep
