#ifndef MOBREP_PROTOCOL_STATIONARY_SERVER_H_
#define MOBREP_PROTOCOL_STATIONARY_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mobrep/core/policy.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/net/link.h"
#include "mobrep/net/message.h"
#include "mobrep/protocol/journal.h"
#include "mobrep/store/versioned_store.h"
#include "mobrep/store/write_ahead_log.h"

namespace mobrep {

// The stationary computer's half of the distributed allocation protocol
// (paper §4).
//
// The SC owns the online database: every write commits here first. While
// the MC has no replica the SC is "in charge": it sees every relevant
// request (writes locally, reads as read-requests), maintains the policy
// state, and decides allocation, piggybacking the hand-over on a data
// response. While the MC holds a replica, the SC honours its subscription
// by propagating every committed write (or, for SW1, by sending the
// optimized delete-request instead).
class StationaryServer {
 public:
  // `to_mc` and `store` must outlive the server.
  StationaryServer(std::string key, const PolicySpec& spec, Link* to_mc,
                   VersionedStore* store);

  // Issues one write at the SC: commits to the store, then runs the
  // allocation protocol.
  void IssueWrite(std::string value);

  // Runs the allocation protocol for a write that was already committed to
  // the shared store (used when several per-MC protocol instances share
  // one SC commit, e.g. MultiClientSimulation).
  void OnCommittedWrite();

  // Delivery entry point for the MC -> SC channel.
  void HandleMessage(const Message& message);

  // Graceful degradation during an MC outage (doze mode): writes committed
  // while the SC->MC link is busy retransmitting are not each propagated;
  // the SC marks propagation pending and, once the link drains (the MC
  // reconnected and acked), ships a single propagate carrying the latest
  // committed version — last-writer-wins collapse. Wire the reliable
  // link's on-idle hook to this method. A no-op when nothing is pending,
  // the link is still busy, or the MC unsubscribed meanwhile.
  void FlushPending();

  // Optionally logs every committed write for crash recovery (the log must
  // outlive the server). Appends are flushed before the write is
  // propagated, i.e. write-ahead with respect to the wireless traffic.
  void set_write_log(WriteAheadLog* log) { write_log_ = log; }

  // Installs the durability journal called at every protocol-critical
  // mutation (crash recovery; see protocol/journal.h). Null by default.
  void set_journal(NodeJournal* journal) { journal_ = journal; }

  // --- Crash recovery (docs/RECOVERY.md) ---

  // Puts a freshly constructed server into the recovered state (the
  // store itself is rebuilt by the caller from the WAL's PUT records).
  void Restore(bool in_charge, bool mc_has_copy, bool pending_propagation,
               std::unique_ptr<AllocationPolicy> policy, uint32_t incarnation,
               uint32_t peer_incarnation);

  // Starts the post-restart resync handshake: announces the new
  // incarnation to the MC, which reports its live ownership claim back;
  // this server then resolves ownership (the online database is the
  // authority) in its kResyncRequest handler.
  void BeginResync();

  bool in_charge() const { return in_charge_; }
  bool mc_has_copy() const { return mc_has_copy_; }
  const AllocationPolicy& policy() const { return *policy_; }
  const PolicySpec& spec() const { return spec_; }
  uint32_t incarnation() const { return incarnation_; }
  uint32_t peer_incarnation() const { return peer_incarnation_; }
  bool resync_pending() const { return resync_pending_; }

  const std::vector<Op>& last_transfer_window() const {
    return last_transfer_window_;
  }

  // Counters.
  int64_t writes_committed() const { return writes_committed_; }
  int64_t reads_served() const { return reads_served_; }
  int64_t propagations() const { return propagations_; }
  int64_t invalidations() const { return invalidations_; }
  int64_t allocations_granted() const { return allocations_granted_; }
  int64_t deallocations_accepted() const { return deallocations_accepted_; }
  // Writes whose individual propagation was absorbed into the pending
  // last-writer-wins propagate while the link was busy (doze collapse).
  int64_t collapsed_propagations() const { return collapsed_propagations_; }
  // Pending propagations discarded because the MC unsubscribed before the
  // link drained.
  int64_t discarded_propagations() const { return discarded_propagations_; }
  bool has_pending_propagation() const { return pending_propagation_; }
  // Resync handshakes this server resolved.
  int64_t resyncs_served() const { return resyncs_served_; }
  // Resolutions that re-issued an allocation lost in a crash.
  int64_t regrants() const { return regrants_; }

 private:
  // Journals the node's state if a journal is installed (may throw
  // CrashSignal from an armed crash point).
  void Persist(const char* reason);

  std::string key_;
  PolicySpec spec_;
  Link* to_mc_;
  VersionedStore* store_;
  WriteAheadLog* write_log_ = nullptr;
  NodeJournal* journal_ = nullptr;
  std::unique_ptr<AllocationPolicy> policy_;
  bool in_charge_ = false;
  bool mc_has_copy_ = false;
  bool pending_propagation_ = false;
  std::vector<Op> last_transfer_window_;
  uint32_t incarnation_ = 1;
  uint32_t peer_incarnation_ = 1;
  bool resync_pending_ = false;

  int64_t writes_committed_ = 0;
  int64_t reads_served_ = 0;
  int64_t propagations_ = 0;
  int64_t invalidations_ = 0;
  int64_t allocations_granted_ = 0;
  int64_t deallocations_accepted_ = 0;
  int64_t collapsed_propagations_ = 0;
  int64_t discarded_propagations_ = 0;
  int64_t resyncs_served_ = 0;
  int64_t regrants_ = 0;
};

}  // namespace mobrep

#endif  // MOBREP_PROTOCOL_STATIONARY_SERVER_H_
