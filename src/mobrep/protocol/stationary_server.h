#ifndef MOBREP_PROTOCOL_STATIONARY_SERVER_H_
#define MOBREP_PROTOCOL_STATIONARY_SERVER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mobrep/core/policy.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/net/event_queue.h"
#include "mobrep/net/failure_detector.h"
#include "mobrep/net/link.h"
#include "mobrep/net/message.h"
#include "mobrep/obs/metrics.h"
#include "mobrep/protocol/journal.h"
#include "mobrep/protocol/lease.h"
#include "mobrep/store/versioned_store.h"
#include "mobrep/store/write_ahead_log.h"

namespace mobrep {

// The stationary computer's half of the distributed allocation protocol
// (paper §4).
//
// The SC owns the online database: every write commits here first. While
// the MC has no replica the SC is "in charge": it sees every relevant
// request (writes locally, reads as read-requests), maintains the policy
// state, and decides allocation, piggybacking the hand-over on a data
// response. While the MC holds a replica, the SC honours its subscription
// by propagating every committed write (or, for SW1, by sending the
// optimized delete-request instead).
class StationaryServer {
 public:
  // `to_mc` and `store` must outlive the server.
  StationaryServer(std::string key, const PolicySpec& spec, Link* to_mc,
                   VersionedStore* store);

  // Issues one write at the SC: commits to the store, then runs the
  // allocation protocol.
  void IssueWrite(std::string value);

  // Runs the allocation protocol for a write that was already committed to
  // the shared store (used when several per-MC protocol instances share
  // one SC commit, e.g. MultiClientSimulation).
  void OnCommittedWrite();

  // Delivery entry point for the MC -> SC channel.
  void HandleMessage(const Message& message);

  // Graceful degradation during an MC outage (doze mode): writes committed
  // while the SC->MC link is busy retransmitting are not each propagated;
  // the SC marks propagation pending and, once the link drains (the MC
  // reconnected and acked), ships a single propagate carrying the latest
  // committed version — last-writer-wins collapse. Wire the reliable
  // link's on-idle hook to this method. A no-op when nothing is pending,
  // the link is still busy, or the MC unsubscribed meanwhile.
  void FlushPending();

  // Optionally logs every committed write for crash recovery (the log must
  // outlive the server). Appends are flushed before the write is
  // propagated, i.e. write-ahead with respect to the wireless traffic.
  void set_write_log(WriteAheadLog* log) { write_log_ = log; }

  // Installs the durability journal called at every protocol-critical
  // mutation (crash recovery; see protocol/journal.h). Null by default.
  void set_journal(NodeJournal* journal) { journal_ = journal; }

  // --- Crash recovery (docs/RECOVERY.md) ---

  // Puts a freshly constructed server into the recovered state (the
  // store itself is rebuilt by the caller from the WAL's PUT records).
  void Restore(bool in_charge, bool mc_has_copy, bool pending_propagation,
               std::unique_ptr<AllocationPolicy> policy, uint32_t incarnation,
               uint32_t peer_incarnation);

  // Starts the post-restart resync handshake: announces the new
  // incarnation to the MC, which reports its live ownership claim back;
  // this server then resolves ownership (the online database is the
  // authority) in its kResyncRequest handler.
  void BeginResync();

  // --- Leases and fenced reclamation (DESIGN.md §10) ---

  // Turns the lease layer on (`config.enabled` must be true; `queue` must
  // outlive the server; `detector`, may be null, is the failure detector
  // fed by this node's link — consulted read-only for degraded reads).
  // If the MC starts with a copy, the initial lease (token 1) is held
  // from now, mirroring the MC's EnableLeases; the expiry timer is armed.
  // Must be called before any traffic flows.
  void EnableLeases(EventQueue* queue, const LeaseConfig& config,
                    const FailureDetector* detector);

  // Serves one read at the SC itself (a fixed-network observer). Always
  // served — the store is write-authoritative — but labelled: degraded
  // (with an explicit staleness bound) when the owner is suspected or its
  // lease has lapsed, authoritative when this side owns or has reclaimed,
  // coordinated otherwise. Never consults the allocation policy, so it
  // cannot perturb the paper's protocol or cost accounting.
  ObserverRead ServeObserverRead();

  // True when this side either owns the window in the paper's sense or
  // has reclaimed a dead holder's lease (the reclamation overlay keeps
  // the paper-level bookkeeping frozen for the eventual regrant).
  bool operationally_in_charge() const {
    return in_charge_ || lease_reclaimed_;
  }

  bool lease_enabled() const { return lease_config_.enabled; }
  // The lease overlay: `lease_held` while the MC's subscription carries a
  // live lease; `lease_reclaimed` after this side fenced an expired one.
  bool lease_held() const { return lease_held_; }
  bool lease_reclaimed() const { return lease_reclaimed_; }
  // The current (highest issued) fencing token; any lower token is stale.
  uint64_t lease_token() const { return lease_token_; }
  double lease_expiry() const { return lease_expiry_; }
  const LeaseConfig& lease_config() const { return lease_config_; }
  // Simulation time of the most recent reclamation (-1 if none).
  double last_reclaim_time() const { return last_reclaim_time_; }
  // Fenced ownership claims recorded from late-returning stale holders.
  const std::vector<LeaseConflict>& lease_conflicts() const {
    return lease_conflicts_;
  }

  bool in_charge() const { return in_charge_; }
  bool mc_has_copy() const { return mc_has_copy_; }
  const AllocationPolicy& policy() const { return *policy_; }
  const PolicySpec& spec() const { return spec_; }
  uint32_t incarnation() const { return incarnation_; }
  uint32_t peer_incarnation() const { return peer_incarnation_; }
  bool resync_pending() const { return resync_pending_; }

  const Window& last_transfer_window() const {
    return last_transfer_window_;
  }

  // Counters.
  int64_t writes_committed() const { return writes_committed_; }
  int64_t reads_served() const { return reads_served_; }
  int64_t propagations() const { return propagations_; }
  int64_t invalidations() const { return invalidations_; }
  int64_t allocations_granted() const { return allocations_granted_; }
  int64_t deallocations_accepted() const { return deallocations_accepted_; }
  // Writes whose individual propagation was absorbed into the pending
  // last-writer-wins propagate while the link was busy (doze collapse).
  int64_t collapsed_propagations() const { return collapsed_propagations_; }
  // Pending propagations discarded because the MC unsubscribed before the
  // link drained.
  int64_t discarded_propagations() const { return discarded_propagations_; }
  bool has_pending_propagation() const { return pending_propagation_; }
  // Resync handshakes this server resolved.
  int64_t resyncs_served() const { return resyncs_served_; }
  // Resolutions that re-issued an allocation lost in a crash.
  int64_t regrants() const { return regrants_; }
  // Lease-layer counters (0 unless leases are enabled).
  int64_t lease_grants() const { return lease_grants_; }
  int64_t lease_renewals() const { return lease_renewals_; }
  int64_t lease_reclaims() const { return lease_reclaims_; }
  // Subscriptions re-established after a conflict report (kLeaseRegrant).
  int64_t lease_regrants() const { return lease_regrants_; }
  // Messages fenced because they carried a stale fencing token.
  int64_t stale_lease_fenced() const { return stale_lease_fenced_; }
  // Observer reads served in degraded mode, and the largest staleness
  // bound ever attached to one.
  int64_t degraded_reads() const { return degraded_reads_; }
  double max_staleness_served() const { return max_staleness_served_; }
  // Remote reads served for a lapsed/fenced holder (no policy consult).
  int64_t degraded_remote_reads() const { return degraded_remote_reads_; }
  // Writes committed while the lease was reclaimed (no propagation; the
  // fenced holder learns the final state from the regrant's item).
  int64_t writes_while_reclaimed() const { return writes_while_reclaimed_; }

 private:
  // Journals the node's state if a journal is installed (may throw
  // CrashSignal from an armed crash point).
  void Persist(const char* reason);

  // Arms (or re-arms) the lease expiry timer at expiry + grace; stale
  // timers notice the generation bump and no-op.
  void ArmLeaseTimer();
  // The lease expired unrenewed: fence every outstanding token (bump) and
  // take over service. The paper-level bookkeeping (subscription bit,
  // retained policy) stays frozen for the regrant that follows the
  // holder's eventual conflict report — static policies like ST2 have no
  // representable no-copy state to rewrite it with.
  void ReclaimLease();
  // Attaches a fresh lease (new token, term from now) to an outgoing
  // grant/regrant and arms the expiry timer.
  void AttachLease(Message* grant, bool regrant);
  void RecordLeaseConflict(uint64_t stale_token, std::span<const Op> window,
                           bool claimed_charge);
  // A fresh outgoing message with the type/key/key_id header stamped.
  Message NewMessage(MessageType type) const;

  std::string key_;
  // Interned id of key_, stamped on every outgoing message (demux hint;
  // see net/key_interner.h).
  uint32_t key_id_ = 0;
  PolicySpec spec_;
  Link* to_mc_;
  VersionedStore* store_;
  WriteAheadLog* write_log_ = nullptr;
  NodeJournal* journal_ = nullptr;
  std::unique_ptr<AllocationPolicy> policy_;
  bool in_charge_ = false;
  bool mc_has_copy_ = false;
  bool pending_propagation_ = false;
  Window last_transfer_window_;
  uint32_t incarnation_ = 1;
  uint32_t peer_incarnation_ = 1;
  bool resync_pending_ = false;

  // Lease state (all inert while lease_config_.enabled is false).
  EventQueue* queue_ = nullptr;
  LeaseConfig lease_config_;
  const FailureDetector* detector_ = nullptr;
  bool lease_held_ = false;
  bool lease_reclaimed_ = false;
  uint64_t lease_token_ = 0;
  double lease_expiry_ = 0.0;
  double last_reclaim_time_ = -1.0;
  // Bumped on every (re-)arm so only the newest expiry timer fires.
  uint64_t lease_timer_gen_ = 0;
  std::vector<LeaseConflict> lease_conflicts_;
  // Degraded-read staleness, also exported to the global metrics registry.
  obs::Histogram* staleness_hist_ = nullptr;

  int64_t writes_committed_ = 0;
  int64_t reads_served_ = 0;
  int64_t propagations_ = 0;
  int64_t invalidations_ = 0;
  int64_t allocations_granted_ = 0;
  int64_t deallocations_accepted_ = 0;
  int64_t collapsed_propagations_ = 0;
  int64_t discarded_propagations_ = 0;
  int64_t resyncs_served_ = 0;
  int64_t regrants_ = 0;
  int64_t lease_grants_ = 0;
  int64_t lease_renewals_ = 0;
  int64_t lease_reclaims_ = 0;
  int64_t lease_regrants_ = 0;
  int64_t stale_lease_fenced_ = 0;
  int64_t degraded_reads_ = 0;
  int64_t degraded_remote_reads_ = 0;
  int64_t writes_while_reclaimed_ = 0;
  double max_staleness_served_ = 0.0;
};

}  // namespace mobrep

#endif  // MOBREP_PROTOCOL_STATIONARY_SERVER_H_
