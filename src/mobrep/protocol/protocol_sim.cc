#include "mobrep/protocol/protocol_sim.h"

#include <algorithm>
#include <string>
#include <utility>

#include "mobrep/common/check.h"
#include "mobrep/common/strings.h"
#include "mobrep/protocol/diagnosis.h"

namespace mobrep {
namespace {

// Salts for the per-direction fault streams (forked off FaultConfig::seed).
constexpr uint64_t kUplinkFaultSalt = 0x4d432d3e5343ULL;    // "MC->SC"
constexpr uint64_t kDownlinkFaultSalt = 0x53432d3e4d43ULL;  // "SC->MC"

}  // namespace

double ProtocolMetrics::PriceUnder(const CostModel& model) const {
  if (model.kind() == CostModelKind::kConnection) {
    return static_cast<double>(connections);
  }
  return static_cast<double>(data_messages) +
         model.omega() * static_cast<double>(control_messages);
}

void ProtocolMetrics::PublishTo(obs::MetricsRegistry* registry,
                                const std::string& prefix) const {
  MOBREP_CHECK(registry != nullptr);
  const auto count = [&](const char* field, int64_t value) {
    registry->GetCounter(prefix + "." + field)->Increment(value);
  };
  count("requests", requests);
  count("local_reads", local_reads);
  count("remote_reads", remote_reads);
  count("writes", writes);
  count("propagations", propagations);
  count("invalidations", invalidations);
  count("allocations", allocations);
  count("deallocations", deallocations);
  count("data_messages", data_messages);
  count("control_messages", control_messages);
  count("connections", connections);
  count("retransmissions", retransmissions);
  count("timeouts", timeouts);
  count("duplicates_dropped", duplicates_dropped);
  count("acks", acks);
  count("injected_drops", injected_drops);
  count("injected_duplicates", injected_duplicates);
  count("outage_drops", outage_drops);
  count("collapsed_propagations", collapsed_propagations);
  count("stale_propagates_dropped", stale_propagates_dropped);
  registry->GetGauge(prefix + ".mean_read_latency", "", "sim time")
      ->Set(mean_read_latency);
  registry->GetGauge(prefix + ".max_read_latency", "", "sim time")
      ->Set(max_read_latency);
  registry->GetGauge(prefix + ".outage_time", "", "sim time")
      ->Set(outage_time);
}

ProtocolSimulation::ProtocolSimulation(const ProtocolConfig& config)
    : config_(config) {
  store_.Put(config_.key, config_.initial_value);

  const bool reliable = config_.fault.UseReliableLink();
  if (reliable) {
    // Degraded wireless link: each direction injects faults and carries an
    // ARQ endpoint restoring exactly-once in-order delivery.
    auto uplink = std::make_unique<FaultyChannel>(
        &queue_, config_.link_latency, "MC->SC", config_.fault,
        kUplinkFaultSalt);
    auto downlink = std::make_unique<FaultyChannel>(
        &queue_, config_.link_latency, "SC->MC", config_.fault,
        kDownlinkFaultSalt);
    mc_to_sc_faulty_ = uplink.get();
    sc_to_mc_faulty_ = downlink.get();
    mc_to_sc_ = std::move(uplink);
    sc_to_mc_ = std::move(downlink);

    ArqConfig arq = config_.fault.arq;
    if (arq.initial_rto <= 0.0) {
      // A safely-above-RTT default: a frame's round trip is two one-way
      // latencies plus at most two jitter draws; the epsilon keeps the
      // timer strictly after a jitter-free ack on a healthy link.
      arq.initial_rto = 4.0 * config_.link_latency +
                        2.0 * config_.fault.max_jitter + 1e-6;
    }
    mc_link_ = std::make_unique<ReliableLink>(&queue_, mc_to_sc_.get(), arq,
                                              "MC-arq");
    sc_link_ = std::make_unique<ReliableLink>(&queue_, sc_to_mc_.get(), arq,
                                              "SC-arq");
  } else {
    // The paper's perfect link: the exact seed topology, so fault-free
    // default runs reproduce seed results bit-for-bit.
    mc_to_sc_ = std::make_unique<Channel>(&queue_, config_.link_latency,
                                          "MC->SC");
    sc_to_mc_ = std::make_unique<Channel>(&queue_, config_.link_latency,
                                          "SC->MC");
  }

  Link* client_uplink =
      reliable ? static_cast<Link*>(mc_link_.get()) : mc_to_sc_.get();
  Link* server_downlink =
      reliable ? static_cast<Link*>(sc_link_.get()) : sc_to_mc_.get();
  client_ = std::make_unique<MobileClient>(config_.key, config_.spec,
                                           client_uplink, &cache_);
  server_ = std::make_unique<StationaryServer>(config_.key, config_.spec,
                                               server_downlink, &store_);
  if (!config_.wal_path.empty()) {
    auto wal = WriteAheadLog::Open(config_.wal_path, config_.wal_options);
    MOBREP_CHECK_MSG(wal.ok(), wal.status().message().c_str());
    wal_ = std::make_unique<WriteAheadLog>(std::move(*wal));
    // The initial value (version 1) predates the server; log it so a
    // recovery replays the store from scratch.
    const Status logged =
        wal_->AppendPut(config_.key, *store_.Get(config_.key));
    MOBREP_CHECK_MSG(logged.ok(), logged.message().c_str());
    server_->set_write_log(wal_.get());
  }

  if (reliable) {
    // Each node's ARQ endpoint consumes every frame arriving on the node's
    // incoming channel and upcalls exactly-once in-order app messages.
    mc_to_sc_->set_receiver(
        [this](const Message& frame) { sc_link_->HandleFrame(frame); });
    sc_to_mc_->set_receiver(
        [this](const Message& frame) { mc_link_->HandleFrame(frame); });
    mc_link_->set_receiver(
        [this](const Message& m) { client_->HandleMessage(m); });
    sc_link_->set_receiver(
        [this](const Message& m) { server_->HandleMessage(m); });
    // Reconnect signal: once every SC->MC frame is acked, ship the single
    // propagate collapsed during the outage (if any survived).
    sc_link_->set_on_idle([this] { server_->FlushPending(); });
    // Ownership hand-overs can cross in flight with propagation.
    client_->set_tolerates_link_faults(true);
  } else {
    mc_to_sc_->set_receiver(
        [this](const Message& m) { server_->HandleMessage(m); });
    sc_to_mc_->set_receiver(
        [this](const Message& m) { client_->HandleMessage(m); });
  }

  // Policies whose initial state replicates the item (ST2, T2m) need the
  // replica pre-installed, mirroring an initial subscription.
  if (client_->in_charge()) {
    cache_.Install(config_.key, *store_.Get(config_.key));
  }
  MOBREP_CHECK(ExactlyOneInCharge());
}

void ProtocolSimulation::RunExchange(const char* what) {
  int64_t events_run = 0;
  const bool quiescent =
      queue_.TryRunUntilQuiescent(config_.max_events_per_exchange,
                                  &events_run);
  if (quiescent) return;
  const std::string context = StrFormat(
      "%s did not quiesce within %lld events (t=%g, %zu still pending); %s",
      what, static_cast<long long>(config_.max_events_per_exchange),
      queue_.now(), queue_.pending(),
      DescribeQuiescenceStall(client_.get(), server_.get(), mc_link_.get(),
                              sc_link_.get(), queue_.now())
          .c_str());
  MOBREP_CHECK_MSG(false, context.c_str());
}

void ProtocolSimulation::Step(Op op) {
  if (op == Op::kRead) {
    ++reads_issued_;
    bool completed = false;
    VersionedValue seen;
    const double issued_at = queue_.now();
    double completed_at = issued_at;
    client_->IssueRead([&](const VersionedValue& value) {
      completed = true;
      completed_at = queue_.now();
      seen = value;
    });
    RunExchange("read exchange");
    MOBREP_CHECK_MSG(completed, "read did not complete");
    const double latency = completed_at - issued_at;
    total_read_latency_ += latency;
    max_read_latency_ = std::max(max_read_latency_, latency);
    // Freshness: serialized requests over exactly-once in-order links must
    // always observe the latest committed version.
    const VersionedValue authoritative = *store_.Get(config_.key);
    MOBREP_CHECK_MSG(seen == authoritative,
                     "MC read observed a stale or divergent value");
  } else {
    ++writes_issued_;
    ++write_sequence_;
    server_->IssueWrite(
        StrFormat("v%lld", static_cast<long long>(write_sequence_)));
    RunExchange("write exchange");
  }
  MOBREP_CHECK_MSG(ExactlyOneInCharge(),
                   "both or neither node in charge after a request");
  // The in-charge structure mirrors replica placement (paper §4).
  MOBREP_CHECK(client_->in_charge() == client_->has_copy());
}

void ProtocolSimulation::Run(const Schedule& schedule) {
  for (const Op op : schedule) Step(op);
}

void ProtocolSimulation::MaybeIssueQueuedRead() {
  if (read_outstanding_ || queued_reads_ == 0) return;
  --queued_reads_;
  read_outstanding_ = true;
  ++reads_issued_;
  const double issued_at = queue_.now();
  client_->IssueRead([this, issued_at](const VersionedValue& value) {
    read_outstanding_ = false;
    const double latency = queue_.now() - issued_at;
    total_read_latency_ += latency;
    max_read_latency_ = std::max(max_read_latency_, latency);
    CheckTimedRead(value);
    MaybeIssueQueuedRead();
  });
}

void ProtocolSimulation::CheckTimedRead(const VersionedValue& value) {
  if (!timed_error_.ok()) return;
  // Monotone reads: with overlapping traffic a read may be stale (a write
  // committed at the SC while an invalidate was in flight) but the MC's
  // view never moves backwards.
  if (value.version < last_read_version_) {
    timed_error_ = InternalError(StrFormat(
        "reads went backwards: version %llu after version %llu",
        static_cast<unsigned long long>(value.version),
        static_cast<unsigned long long>(last_read_version_)));
    return;
  }
  last_read_version_ = value.version;
  // Version/value binding: the SC committed "v<k>" as version k+1 (the
  // initial value is version 1), so any read observing a different pair
  // saw a torn or fabricated write.
  const std::string expected =
      value.version <= 1
          ? config_.initial_value
          : StrFormat("v%llu",
                      static_cast<unsigned long long>(value.version - 1));
  if (value.value != expected) {
    timed_error_ = DataLossError(StrFormat(
        "read observed version %llu with value '%s' (expected '%s')",
        static_cast<unsigned long long>(value.version), value.value.c_str(),
        expected.c_str()));
  }
}

Status ProtocolSimulation::RunTimed(const TimedSchedule& schedule) {
  for (const TimedRequest& request : schedule) {
    if (request.time < queue_.now()) {
      return InvalidArgumentError(StrFormat(
          "request at t=%g predates the simulation clock (t=%g)",
          request.time, queue_.now()));
    }
    queue_.ScheduleAt(request.time, [this, op = request.op] {
      if (op == Op::kWrite) {
        ++writes_issued_;
        ++write_sequence_;
        server_->IssueWrite(
            StrFormat("v%lld", static_cast<long long>(write_sequence_)));
      } else {
        ++queued_reads_;
        MaybeIssueQueuedRead();
      }
    });
  }

  int64_t events_run = 0;
  const bool quiescent = queue_.TryRunUntilQuiescent(
      config_.max_events_per_exchange, &events_run);
  if (!quiescent) {
    return InternalError(StrFormat(
        "timed run did not quiesce within %lld events (t=%g, %zu pending); %s",
        static_cast<long long>(config_.max_events_per_exchange), queue_.now(),
        queue_.pending(),
        DescribeQuiescenceStall(client_.get(), server_.get(), mc_link_.get(),
                                sc_link_.get(), queue_.now())
            .c_str()));
  }
  if (!timed_error_.ok()) return timed_error_;
  if (read_outstanding_ || queued_reads_ > 0) {
    return InternalError(StrFormat(
        "%lld reads never completed (one outstanding: %s)",
        static_cast<long long>(queued_reads_ + (read_outstanding_ ? 1 : 0)),
        read_outstanding_ ? "yes" : "no"));
  }

  // Convergence: with every frame delivered and acked, the transient
  // hand-over states must have resolved.
  if (!ExactlyOneInCharge()) {
    return InternalError("both or neither node in charge at quiescence");
  }
  if (client_->in_charge() != client_->has_copy()) {
    return InternalError("in-charge MC without a copy (or vice versa)");
  }
  if (server_->mc_has_copy() != client_->has_copy()) {
    return InternalError("SC's subscription view diverged from the MC");
  }
  if (client_->has_copy()) {
    const Result<VersionedValue> replica = cache_.Get(config_.key);
    const Result<VersionedValue> authoritative = store_.Get(config_.key);
    if (!replica.ok() || !authoritative.ok() ||
        !(*replica == *authoritative)) {
      return DataLossError(
          "surviving MC replica diverged from the authoritative store");
    }
  }
  if (server_->has_pending_propagation()) {
    return InternalError("collapsed propagation left unflushed at quiescence");
  }
  return OkStatus();
}

ProtocolMetrics ProtocolSimulation::metrics() const {
  ProtocolMetrics m;
  m.requests = reads_issued_ + writes_issued_;
  m.local_reads = client_->local_reads();
  m.remote_reads = client_->remote_reads();
  m.writes = writes_issued_;
  m.propagations = server_->propagations();
  m.invalidations = server_->invalidations();
  m.allocations = client_->allocations();
  m.deallocations =
      client_->deallocations();  // includes SW1 invalidations
  m.data_messages =
      mc_to_sc_->data_messages_sent() + sc_to_mc_->data_messages_sent();
  m.control_messages = mc_to_sc_->control_messages_sent() +
                       sc_to_mc_->control_messages_sent();
  // Every chargeable request triggers exactly one SC->MC transmission
  // (data response, propagation, or invalidation), and each such
  // transmission belongs to a distinct request — so the SC->MC message
  // count *is* the connection count. (ARQ acks and retransmissions are
  // metered separately and never land here.)
  m.connections = sc_to_mc_->messages_sent();
  if (reads_issued_ > 0) {
    m.mean_read_latency =
        total_read_latency_ / static_cast<double>(reads_issued_);
  }
  m.max_read_latency = max_read_latency_;

  m.acks = mc_to_sc_->acks_sent() + sc_to_mc_->acks_sent();
  if (mc_link_ != nullptr) {
    m.retransmissions = mc_link_->retransmissions() +
                        sc_link_->retransmissions();
    m.timeouts = mc_link_->timeouts() + sc_link_->timeouts();
    m.duplicates_dropped =
        mc_link_->duplicates_dropped() + sc_link_->duplicates_dropped();
  }
  if (mc_to_sc_faulty_ != nullptr) {
    m.injected_drops = mc_to_sc_faulty_->injected_drops() +
                       sc_to_mc_faulty_->injected_drops();
    m.injected_duplicates = mc_to_sc_faulty_->injected_duplicates() +
                            sc_to_mc_faulty_->injected_duplicates();
    m.outage_drops = mc_to_sc_faulty_->outage_drops() +
                     sc_to_mc_faulty_->outage_drops();
  }
  m.outage_time = config_.fault.TotalOutageTimeBefore(queue_.now());
  m.collapsed_propagations = server_->collapsed_propagations();
  m.stale_propagates_dropped = client_->stale_propagates_dropped();
  return m;
}

}  // namespace mobrep
