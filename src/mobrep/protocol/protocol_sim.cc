#include "mobrep/protocol/protocol_sim.h"

#include <algorithm>
#include <string>
#include <utility>

#include "mobrep/common/check.h"
#include "mobrep/common/strings.h"

namespace mobrep {

double ProtocolMetrics::PriceUnder(const CostModel& model) const {
  if (model.kind() == CostModelKind::kConnection) {
    return static_cast<double>(connections);
  }
  return static_cast<double>(data_messages) +
         model.omega() * static_cast<double>(control_messages);
}

ProtocolSimulation::ProtocolSimulation(const ProtocolConfig& config)
    : config_(config) {
  store_.Put(config_.key, config_.initial_value);

  mc_to_sc_ = std::make_unique<Channel>(&queue_, config_.link_latency,
                                        "MC->SC");
  sc_to_mc_ = std::make_unique<Channel>(&queue_, config_.link_latency,
                                        "SC->MC");
  client_ = std::make_unique<MobileClient>(config_.key, config_.spec,
                                           mc_to_sc_.get(), &cache_);
  server_ = std::make_unique<StationaryServer>(config_.key, config_.spec,
                                               sc_to_mc_.get(), &store_);
  if (!config_.wal_path.empty()) {
    auto wal = WriteAheadLog::Open(config_.wal_path);
    MOBREP_CHECK_MSG(wal.ok(), wal.status().message().c_str());
    wal_ = std::make_unique<WriteAheadLog>(std::move(*wal));
    // The initial value (version 1) predates the server; log it so a
    // recovery replays the store from scratch.
    const Status logged =
        wal_->AppendPut(config_.key, *store_.Get(config_.key));
    MOBREP_CHECK_MSG(logged.ok(), logged.message().c_str());
    server_->set_write_log(wal_.get());
  }
  mc_to_sc_->set_receiver(
      [this](const Message& m) { server_->HandleMessage(m); });
  sc_to_mc_->set_receiver(
      [this](const Message& m) { client_->HandleMessage(m); });

  // Policies whose initial state replicates the item (ST2, T2m) need the
  // replica pre-installed, mirroring an initial subscription.
  if (client_->in_charge()) {
    cache_.Install(config_.key, *store_.Get(config_.key));
  }
  MOBREP_CHECK(ExactlyOneInCharge());
}

void ProtocolSimulation::Step(Op op) {
  if (op == Op::kRead) {
    ++reads_issued_;
    bool completed = false;
    VersionedValue seen;
    const double issued_at = queue_.now();
    double completed_at = issued_at;
    client_->IssueRead([&](const VersionedValue& value) {
      completed = true;
      completed_at = queue_.now();
      seen = value;
    });
    queue_.RunUntilQuiescent();
    MOBREP_CHECK_MSG(completed, "read did not complete");
    const double latency = completed_at - issued_at;
    total_read_latency_ += latency;
    max_read_latency_ = std::max(max_read_latency_, latency);
    // Freshness: serialized requests over FIFO links must always observe
    // the latest committed version.
    const VersionedValue authoritative = *store_.Get(config_.key);
    MOBREP_CHECK_MSG(seen == authoritative,
                     "MC read observed a stale or divergent value");
  } else {
    ++writes_issued_;
    ++write_sequence_;
    server_->IssueWrite(
        StrFormat("v%lld", static_cast<long long>(write_sequence_)));
    queue_.RunUntilQuiescent();
  }
  MOBREP_CHECK_MSG(ExactlyOneInCharge(),
                   "both or neither node in charge after a request");
  // The in-charge structure mirrors replica placement (paper §4).
  MOBREP_CHECK(client_->in_charge() == client_->has_copy());
}

void ProtocolSimulation::Run(const Schedule& schedule) {
  for (const Op op : schedule) Step(op);
}

ProtocolMetrics ProtocolSimulation::metrics() const {
  ProtocolMetrics m;
  m.requests = reads_issued_ + writes_issued_;
  m.local_reads = client_->local_reads();
  m.remote_reads = client_->remote_reads();
  m.writes = writes_issued_;
  m.propagations = server_->propagations();
  m.invalidations = server_->invalidations();
  m.allocations = client_->allocations();
  m.deallocations =
      client_->deallocations();  // includes SW1 invalidations
  m.data_messages =
      mc_to_sc_->data_messages_sent() + sc_to_mc_->data_messages_sent();
  m.control_messages = mc_to_sc_->control_messages_sent() +
                       sc_to_mc_->control_messages_sent();
  // Every chargeable request triggers exactly one SC->MC transmission
  // (data response, propagation, or invalidation), and each such
  // transmission belongs to a distinct request — so the SC->MC message
  // count *is* the connection count.
  m.connections = sc_to_mc_->messages_sent();
  if (reads_issued_ > 0) {
    m.mean_read_latency =
        total_read_latency_ / static_cast<double>(reads_issued_);
  }
  m.max_read_latency = max_read_latency_;
  return m;
}

}  // namespace mobrep
