#include "mobrep/protocol/stationary_server.h"

#include <algorithm>
#include <utility>

#include "mobrep/common/check.h"
#include "mobrep/net/key_interner.h"
#include "mobrep/obs/trace.h"
#include "mobrep/protocol/transfer.h"

namespace mobrep {

StationaryServer::StationaryServer(std::string key, const PolicySpec& spec,
                                   Link* to_mc, VersionedStore* store)
    : key_(std::move(key)),
      key_id_(InternKey(key_)),
      spec_(spec),
      to_mc_(to_mc),
      store_(store),
      policy_(CreatePolicy(spec)) {
  MOBREP_CHECK(to_mc != nullptr);
  MOBREP_CHECK(store != nullptr);
  // Mirror of the MC's initial assignment: the SC is in charge exactly when
  // the policy's initial state holds no copy at the MC.
  mc_has_copy_ = policy_->has_copy();
  in_charge_ = !mc_has_copy_;
}

void StationaryServer::Persist(const char* reason) {
  if (journal_ != nullptr) journal_->Persist(reason);
}

Message StationaryServer::NewMessage(MessageType type) const {
  Message message;
  message.type = type;
  message.key = key_;
  message.key_id = key_id_;
  return message;
}

void StationaryServer::EnableLeases(EventQueue* queue,
                                    const LeaseConfig& config,
                                    const FailureDetector* detector) {
  MOBREP_CHECK(queue != nullptr);
  MOBREP_CHECK_MSG(config.enabled, "EnableLeases with a disabled config");
  MOBREP_CHECK(config.term > 0.0);
  MOBREP_CHECK(config.grace >= 0.0);
  queue_ = queue;
  lease_config_ = config;
  detector_ = detector;
  staleness_hist_ = obs::MetricsRegistry::Global()->GetHistogram(
      "mobrep_lease_degraded_staleness",
      {0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0},
      "staleness bound attached to degraded reads served at the SC",
      "sim_seconds");
  if (mc_has_copy_) {
    // Mirror of the MC's initial self-grant: token 1, term from now.
    lease_held_ = true;
    lease_token_ = 1;
    lease_expiry_ = queue_->now() + lease_config_.term;
    ++lease_grants_;
    ArmLeaseTimer();
  }
}

void StationaryServer::ArmLeaseTimer() {
  const uint64_t gen = ++lease_timer_gen_;
  queue_->ScheduleAt(lease_expiry_ + lease_config_.grace, [this, gen]() {
    if (gen != lease_timer_gen_) return;  // renewed or released since
    if (!lease_held_ || lease_reclaimed_) return;
    MOBREP_DCHECK(queue_->now() >= lease_expiry_);
    ReclaimLease();
  });
}

void StationaryServer::ReclaimLease() {
  const double now = queue_->now();
  lease_reclaimed_ = true;
  // Bump the fencing token: every message still carrying the dead lease's
  // token is now provably stale, however late it returns.
  ++lease_token_;
  ++lease_reclaims_;
  last_reclaim_time_ = now;
  if (pending_propagation_) {
    // Propagating to a fenced holder is pointless; the regrant's item
    // carries the latest version if it ever returns.
    pending_propagation_ = false;
    ++discarded_propagations_;
  }
  MOBREP_TRACE_EVENT(obs::TraceEventKind::kLeaseReclaim, "SC", now,
                     static_cast<int64_t>(lease_token_), 0, 0,
                     detector_ != nullptr ? detector_->SilenceDuration(now)
                                          : 0.0);
  Persist("sc.lease.reclaim");
}

void StationaryServer::AttachLease(Message* grant, bool regrant) {
  const double now = queue_->now();
  lease_held_ = true;
  lease_reclaimed_ = false;
  ++lease_token_;
  lease_expiry_ = now + lease_config_.term;
  ArmLeaseTimer();
  ++lease_grants_;
  if (regrant) ++lease_regrants_;
  grant->lease_token = lease_token_;
  grant->lease_term = lease_config_.term;
  grant->lease_anchor = now;
  MOBREP_TRACE_EVENT(obs::TraceEventKind::kLeaseGrant, "SC", now,
                     static_cast<int64_t>(lease_token_), regrant ? 1 : 0, 0,
                     lease_config_.term);
}

void StationaryServer::RecordLeaseConflict(uint64_t stale_token,
                                           std::span<const Op> window,
                                           bool claimed_charge) {
  LeaseConflict conflict;
  conflict.stale_token = stale_token;
  conflict.current_token = lease_token_;
  conflict.claimed_charge = claimed_charge;
  conflict.window.assign(window.begin(), window.end());
  conflict.recorded_at = queue_->now();
  lease_conflicts_.push_back(std::move(conflict));
}

ObserverRead StationaryServer::ServeObserverRead() {
  ObserverRead read;
  read.value = *store_->Get(key_);
  if (in_charge_ || lease_reclaimed_) {
    // This side holds the only live copy: as fresh as reads get.
    read.mode = ReadServiceMode::kAuthoritative;
    return read;
  }
  if (lease_config_.enabled) {
    const double now = queue_->now();
    const bool lease_lapsed = now >= lease_expiry_;
    const bool suspected = detector_ != nullptr && detector_->Suspected(now);
    if (lease_lapsed || suspected) {
      // Owner partition, not yet reclaimed: serve anyway (the store is
      // write-authoritative), flagged possibly-stale w.r.t. the one-copy
      // request serialization, with the owner's silence as the bound.
      read.mode = ReadServiceMode::kDegraded;
      read.staleness_bound =
          detector_ != nullptr ? detector_->SilenceDuration(now) : 0.0;
      ++degraded_reads_;
      max_staleness_served_ =
          std::max(max_staleness_served_, read.staleness_bound);
      if (staleness_hist_ != nullptr) {
        staleness_hist_->Record(read.staleness_bound);
      }
      MOBREP_TRACE_EVENT(obs::TraceEventKind::kDegradedRead, "SC", now,
                         static_cast<int64_t>(read.value.version), 0, 0,
                         read.staleness_bound);
      return read;
    }
  }
  read.mode = ReadServiceMode::kCoordinated;
  return read;
}

void StationaryServer::Restore(bool in_charge, bool mc_has_copy,
                               bool pending_propagation,
                               std::unique_ptr<AllocationPolicy> policy,
                               uint32_t incarnation,
                               uint32_t peer_incarnation) {
  MOBREP_CHECK(policy != nullptr);
  policy_ = std::move(policy);
  in_charge_ = in_charge;
  mc_has_copy_ = mc_has_copy;
  MOBREP_CHECK_MSG(in_charge_ == !mc_has_copy_,
                   "recovered ownership bit contradicts the subscription");
  MOBREP_CHECK_MSG(mc_has_copy_ == policy_->has_copy(),
                   "recovered subscription contradicts the policy state");
  pending_propagation_ = pending_propagation;
  incarnation_ = incarnation;
  peer_incarnation_ = peer_incarnation;
}

void StationaryServer::BeginResync() {
  resync_pending_ = true;
  MOBREP_TRACE_EVENT(obs::TraceEventKind::kResync, "SC", 0.0,
                     1, static_cast<int64_t>(incarnation_), 0);
  Message request = NewMessage(MessageType::kResyncRequest);
  request.claims_charge = in_charge_;
  request.epoch = incarnation_;
  request.peer_epoch = peer_incarnation_;
  to_mc_->Send(std::move(request));
}

void StationaryServer::IssueWrite(std::string value) {
  store_->Put(key_, std::move(value));
  if (write_log_ != nullptr) {
    const Status logged = write_log_->AppendPut(key_, *store_->Get(key_));
    MOBREP_CHECK_MSG(logged.ok(), logged.message().c_str());
  }
  OnCommittedWrite();
}

void StationaryServer::OnCommittedWrite() {
  ++writes_committed_;

  if (in_charge_) {
    // No replica at the MC: the write is free; just record it.
    MOBREP_CHECK(!mc_has_copy_);
    const ActionKind action = policy_->OnRequest(Op::kWrite);
    MOBREP_CHECK(action == ActionKind::kWriteNoCopy);
    Persist("sc.write");
    return;
  }

  // The MC subscribes to updates of this item.
  MOBREP_CHECK(mc_has_copy_);
  if (lease_reclaimed_) {
    // Reclamation overlay: the subscription's holder is fenced. The store
    // is the only live copy — commit without propagation and without
    // consulting the frozen policy (it is retained verbatim for the
    // regrant). The holder catches up from the regrant's item.
    ++writes_while_reclaimed_;
    Persist("sc.write");
    return;
  }
  if (spec_.kind == PolicyKind::kSw1) {
    // SW1 (paper §4): a window of one write always deallocates, so instead
    // of shipping the data the SC sends only the delete-request and
    // deterministically takes charge with the post-write state
    // (no copy, window = {w}). State is updated and persisted before the
    // invalidate leaves, so a crash in between leaves a took-charge-but-
    // unannounced state the resync resolves in this node's favour.
    policy_ = CreatePolicy(spec_);  // initial state == post-write state
    MOBREP_CHECK(!policy_->has_copy());
    mc_has_copy_ = false;
    in_charge_ = true;
    ++invalidations_;
    if (lease_config_.enabled) {
      // Taking charge retires the MC's lease (the invalidate is the
      // paper-level demotion; no fencing needed — the token stays
      // current and the next grant bumps it).
      lease_held_ = false;
      ++lease_timer_gen_;
    }
    Persist("sc.sw1.take");
    to_mc_->Send(NewMessage(MessageType::kInvalidate));
    return;
  }

  // Doze collapse: while the link still has unacked traffic in flight (the
  // MC is dozing or the previous exchange has not drained), absorb this
  // write into a single pending propagate instead of queueing one frame
  // per write. The flush on reconnect ships the latest committed version —
  // last-writer-wins per key. On a perfect link the link is never busy at
  // commit time (requests are serialized to quiescence), so this path
  // cannot perturb fault-free accounting.
  if (to_mc_->busy()) {
    pending_propagation_ = true;
    ++collapsed_propagations_;
    Persist("sc.write");
    return;
  }

  // Generic propagation; the in-charge MC may answer with a delete-request.
  Persist("sc.write");
  Message propagate = NewMessage(MessageType::kWritePropagate);
  propagate.item = *store_->Get(key_);
  to_mc_->Send(std::move(propagate));
  ++propagations_;
}

void StationaryServer::FlushPending() {
  if (!pending_propagation_ || to_mc_->busy()) return;
  if (in_charge_ || !mc_has_copy_ || lease_reclaimed_) {
    // The MC deallocated while the propagate was pending; it no longer
    // subscribes to updates.
    pending_propagation_ = false;
    ++discarded_propagations_;
    return;
  }
  pending_propagation_ = false;
  Message propagate = NewMessage(MessageType::kWritePropagate);
  propagate.item = *store_->Get(key_);
  to_mc_->Send(std::move(propagate));
  ++propagations_;
}

void StationaryServer::HandleMessage(const Message& message) {
  MOBREP_CHECK(message.key == key_);
  switch (message.type) {
    case MessageType::kReadRequest: {
      if (!in_charge_) {
        // Only legal in lease mode: a lapsed (or fenced) holder forwards
        // reads it may no longer serve locally. Answer from the store
        // without consulting the frozen policy and without an allocation —
        // the subscription is reconciled by the lease machinery, not by a
        // read that happened to arrive mid-partition.
        MOBREP_CHECK_MSG(lease_config_.enabled && mc_has_copy_,
                         "read-request received while the MC is in charge");
        ++degraded_remote_reads_;
        Message response = NewMessage(MessageType::kDataResponse);
        response.item = *store_->Get(key_);
        to_mc_->Send(std::move(response));
        return;
      }
      ++reads_served_;
      const ActionKind action = policy_->OnRequest(Op::kRead);
      Message response = NewMessage(MessageType::kDataResponse);
      response.item = *store_->Get(key_);
      if (action == ActionKind::kRemoteReadAllocate) {
        // Majority reads: allocate. The indication, the window and the
        // control state piggyback on the data response (free, paper §4).
        // Persisted before the response leaves: a crash in between leaves
        // a granted-but-unannounced subscription the resync re-grants from
        // this policy object (which retains the shipped state).
        response.allocate = true;
        response.window = ExtractWindow(spec_, *policy_);
        response.transferred_state = ShipState(*policy_);
        last_transfer_window_ = response.window;
        mc_has_copy_ = true;
        in_charge_ = false;
        ++allocations_granted_;
        if (lease_config_.enabled) {
          // Every hand-over carries a lease: a fresh fencing token and a
          // term anchored at this send time.
          AttachLease(&response, /*regrant=*/false);
        }
        Persist("sc.grant");
      } else {
        MOBREP_CHECK(action == ActionKind::kRemoteRead);
        Persist("sc.read");
      }
      to_mc_->Send(std::move(response));
      return;
    }
    case MessageType::kDeleteRequest: {
      if (lease_config_.enabled &&
          (lease_reclaimed_ || message.lease_token != lease_token_)) {
        // A late-returning holder hands over under a stale fencing token:
        // fenced exactly like a stale epoch. Its unsynced control state is
        // surfaced as a conflict report — never silently adopted, never
        // silently dropped — and the revoke teaches it the current token.
        ++stale_lease_fenced_;
        RecordLeaseConflict(message.lease_token, message.window,
                            /*claimed_charge=*/false);
        MOBREP_TRACE_EVENT(obs::TraceEventKind::kLeaseRevoke, "SC",
                           queue_->now(),
                           static_cast<int64_t>(lease_token_),
                           static_cast<int64_t>(message.lease_token));
        Message revoke = NewMessage(MessageType::kLeaseRevoke);
        revoke.lease_token = lease_token_;
        to_mc_->Send(std::move(revoke));
        return;
      }
      // The MC deallocated: stop propagating, adopt the shipped state.
      MOBREP_CHECK_MSG(!in_charge_ && mc_has_copy_,
                       "unexpected delete-request");
      if (lease_config_.enabled) {
        // The hand-over retires the lease; the expiry timer no-ops on the
        // generation bump. The token stays current: nothing outstanding
        // to fence, and the next grant bumps it anyway.
        lease_held_ = false;
        ++lease_timer_gen_;
      }
      policy_ = AdoptState(message.transferred_state);
      MOBREP_CHECK_MSG(!policy_->has_copy(),
                       "deallocation hand-over with a copy-holding state");
      last_transfer_window_ = message.window;
      mc_has_copy_ = false;
      in_charge_ = true;
      ++deallocations_accepted_;
      // The subscription died with the copy, and any pending collapsed
      // propagation dies with it: if the MC re-subscribes later, the
      // allocation's data response already carries the latest version, so
      // flushing afterwards would re-send a version the MC holds.
      if (pending_propagation_) {
        pending_propagation_ = false;
        ++discarded_propagations_;
      }
      Persist("sc.dealloc");
      return;
    }
    case MessageType::kResyncRequest: {
      // A resync reached the online database: either the MC restarted and
      // initiates, or the MC is answering this server's own restart
      // announcement with its claim. Both carry the MC's current
      // ownership claim; this side resolves — the store is the authority
      // (docs/RECOVERY.md).
      peer_incarnation_ = std::max(peer_incarnation_, message.epoch);
      ++resyncs_served_;
      Message response = NewMessage(MessageType::kResyncResponse);
      response.epoch = incarnation_;
      response.peer_epoch = peer_incarnation_;
      if (in_charge_) {
        // This side owns (including the both-claim case, e.g. an SW1
        // invalidate that died in flight): the MC must drop its claim.
        response.allocate = false;
      } else {
        MOBREP_CHECK(mc_has_copy_);
        response.allocate = true;
        response.item = *store_->Get(key_);
        if (!message.claims_charge) {
          // The MC lost its grant in a crash (or never received it):
          // re-issue the allocation from this policy object, which
          // retains the post-grant control state it shipped originally.
          response.window = ExtractWindow(spec_, *policy_);
          response.transferred_state = ShipState(*policy_);
          last_transfer_window_ = response.window;
          ++regrants_;
        }
      }
      // The resolution supersedes any collapsed propagation: when the MC
      // owns, the response itself carries the latest version.
      if (pending_propagation_) {
        pending_propagation_ = false;
        ++discarded_propagations_;
      }
      resync_pending_ = false;
      MOBREP_TRACE_EVENT(obs::TraceEventKind::kResync, "SC", 0.0,
                         1, static_cast<int64_t>(incarnation_), 1);
      Persist("sc.resync");
      to_mc_->Send(std::move(response));
      return;
    }
    case MessageType::kLeaseRenew: {
      MOBREP_CHECK_MSG(lease_config_.enabled,
                       "lease renew with leases disabled");
      const double now = queue_->now();
      if (lease_reclaimed_ || !lease_held_ ||
          message.lease_token != lease_token_) {
        // A renewal under a dead token: the holder does not know it was
        // fenced. Teach it the current token; it demotes itself and
        // reports its claim back as a conflict.
        ++stale_lease_fenced_;
        MOBREP_TRACE_EVENT(obs::TraceEventKind::kLeaseRevoke, "SC", now,
                           static_cast<int64_t>(lease_token_),
                           static_cast<int64_t>(message.lease_token));
        Message revoke = NewMessage(MessageType::kLeaseRevoke);
        revoke.lease_token = lease_token_;
        to_mc_->Send(std::move(revoke));
        return;
      }
      // Valid renewal: extend from receipt time (>= the holder's anchor,
      // so this expiry is never earlier than the holder's) and re-arm.
      lease_expiry_ = now + lease_config_.term;
      ArmLeaseTimer();
      ++lease_renewals_;
      MOBREP_TRACE_EVENT(obs::TraceEventKind::kLeaseRenew, "SC", now,
                         static_cast<int64_t>(lease_token_), 1, 0,
                         lease_expiry_ - now);
      Message ack = NewMessage(MessageType::kLeaseRenewAck);
      ack.lease_token = lease_token_;
      ack.lease_term = lease_config_.term;
      ack.lease_anchor = message.lease_anchor;  // echo the send-time anchor
      to_mc_->Send(std::move(ack));
      return;
    }
    case MessageType::kLeaseConflict: {
      // A fenced holder's demotion report: the stale claim it held, on
      // the record. If this side reclaimed, the holder's return ends the
      // overlay — re-establish the subscription from the retained control
      // state under a fresh token (mirrors the crash resync re-grant).
      MOBREP_CHECK_MSG(lease_config_.enabled,
                       "lease conflict with leases disabled");
      RecordLeaseConflict(message.lease_token, message.window,
                          message.claims_charge);
      if (!lease_reclaimed_) return;  // late duplicate; already reconciled
      MOBREP_DCHECK(mc_has_copy_ && policy_->has_copy());
      Message regrant = NewMessage(MessageType::kLeaseRegrant);
      regrant.item = *store_->Get(key_);
      regrant.window = ExtractWindow(spec_, *policy_);
      regrant.transferred_state = ShipState(*policy_);
      last_transfer_window_ = regrant.window;
      AttachLease(&regrant, /*regrant=*/true);
      Persist("sc.lease.regrant");
      to_mc_->Send(std::move(regrant));
      return;
    }
    case MessageType::kDataResponse:
    case MessageType::kWritePropagate:
    case MessageType::kInvalidate:
    case MessageType::kResyncResponse:
    case MessageType::kLeaseRenewAck:
    case MessageType::kLeaseRevoke:
    case MessageType::kLeaseRegrant:
      MOBREP_CHECK_MSG(false, "MC-bound message delivered to the SC");
      return;
    case MessageType::kHeartbeat:
      MOBREP_CHECK_MSG(false, "heartbeat delivered past the link layer");
      return;
    case MessageType::kAck:
      MOBREP_CHECK_MSG(false, "link-level ack delivered to the SC");
  }
}

}  // namespace mobrep
