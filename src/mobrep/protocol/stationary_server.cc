#include "mobrep/protocol/stationary_server.h"

#include <algorithm>
#include <utility>

#include "mobrep/common/check.h"
#include "mobrep/obs/trace.h"
#include "mobrep/protocol/transfer.h"

namespace mobrep {

StationaryServer::StationaryServer(std::string key, const PolicySpec& spec,
                                   Link* to_mc, VersionedStore* store)
    : key_(std::move(key)),
      spec_(spec),
      to_mc_(to_mc),
      store_(store),
      policy_(CreatePolicy(spec)) {
  MOBREP_CHECK(to_mc != nullptr);
  MOBREP_CHECK(store != nullptr);
  // Mirror of the MC's initial assignment: the SC is in charge exactly when
  // the policy's initial state holds no copy at the MC.
  mc_has_copy_ = policy_->has_copy();
  in_charge_ = !mc_has_copy_;
}

void StationaryServer::Persist(const char* reason) {
  if (journal_ != nullptr) journal_->Persist(reason);
}

void StationaryServer::Restore(bool in_charge, bool mc_has_copy,
                               bool pending_propagation,
                               std::unique_ptr<AllocationPolicy> policy,
                               uint32_t incarnation,
                               uint32_t peer_incarnation) {
  MOBREP_CHECK(policy != nullptr);
  policy_ = std::move(policy);
  in_charge_ = in_charge;
  mc_has_copy_ = mc_has_copy;
  MOBREP_CHECK_MSG(in_charge_ == !mc_has_copy_,
                   "recovered ownership bit contradicts the subscription");
  MOBREP_CHECK_MSG(mc_has_copy_ == policy_->has_copy(),
                   "recovered subscription contradicts the policy state");
  pending_propagation_ = pending_propagation;
  incarnation_ = incarnation;
  peer_incarnation_ = peer_incarnation;
}

void StationaryServer::BeginResync() {
  resync_pending_ = true;
  MOBREP_TRACE_EVENT(obs::TraceEventKind::kResync, "SC", 0.0,
                     1, static_cast<int64_t>(incarnation_), 0);
  Message request;
  request.type = MessageType::kResyncRequest;
  request.key = key_;
  request.claims_charge = in_charge_;
  request.epoch = incarnation_;
  request.peer_epoch = peer_incarnation_;
  to_mc_->Send(std::move(request));
}

void StationaryServer::IssueWrite(std::string value) {
  store_->Put(key_, std::move(value));
  if (write_log_ != nullptr) {
    const Status logged = write_log_->AppendPut(key_, *store_->Get(key_));
    MOBREP_CHECK_MSG(logged.ok(), logged.message().c_str());
  }
  OnCommittedWrite();
}

void StationaryServer::OnCommittedWrite() {
  ++writes_committed_;

  if (in_charge_) {
    // No replica at the MC: the write is free; just record it.
    MOBREP_CHECK(!mc_has_copy_);
    const ActionKind action = policy_->OnRequest(Op::kWrite);
    MOBREP_CHECK(action == ActionKind::kWriteNoCopy);
    Persist("sc.write");
    return;
  }

  // The MC subscribes to updates of this item.
  MOBREP_CHECK(mc_has_copy_);
  if (spec_.kind == PolicyKind::kSw1) {
    // SW1 (paper §4): a window of one write always deallocates, so instead
    // of shipping the data the SC sends only the delete-request and
    // deterministically takes charge with the post-write state
    // (no copy, window = {w}). State is updated and persisted before the
    // invalidate leaves, so a crash in between leaves a took-charge-but-
    // unannounced state the resync resolves in this node's favour.
    policy_ = CreatePolicy(spec_);  // initial state == post-write state
    MOBREP_CHECK(!policy_->has_copy());
    mc_has_copy_ = false;
    in_charge_ = true;
    ++invalidations_;
    Persist("sc.sw1.take");
    Message invalidate;
    invalidate.type = MessageType::kInvalidate;
    invalidate.key = key_;
    to_mc_->Send(std::move(invalidate));
    return;
  }

  // Doze collapse: while the link still has unacked traffic in flight (the
  // MC is dozing or the previous exchange has not drained), absorb this
  // write into a single pending propagate instead of queueing one frame
  // per write. The flush on reconnect ships the latest committed version —
  // last-writer-wins per key. On a perfect link the link is never busy at
  // commit time (requests are serialized to quiescence), so this path
  // cannot perturb fault-free accounting.
  if (to_mc_->busy()) {
    pending_propagation_ = true;
    ++collapsed_propagations_;
    Persist("sc.write");
    return;
  }

  // Generic propagation; the in-charge MC may answer with a delete-request.
  Persist("sc.write");
  Message propagate;
  propagate.type = MessageType::kWritePropagate;
  propagate.key = key_;
  propagate.item = *store_->Get(key_);
  to_mc_->Send(std::move(propagate));
  ++propagations_;
}

void StationaryServer::FlushPending() {
  if (!pending_propagation_ || to_mc_->busy()) return;
  if (in_charge_ || !mc_has_copy_) {
    // The MC deallocated while the propagate was pending; it no longer
    // subscribes to updates.
    pending_propagation_ = false;
    ++discarded_propagations_;
    return;
  }
  pending_propagation_ = false;
  Message propagate;
  propagate.type = MessageType::kWritePropagate;
  propagate.key = key_;
  propagate.item = *store_->Get(key_);
  to_mc_->Send(std::move(propagate));
  ++propagations_;
}

void StationaryServer::HandleMessage(const Message& message) {
  MOBREP_CHECK(message.key == key_);
  switch (message.type) {
    case MessageType::kReadRequest: {
      MOBREP_CHECK_MSG(in_charge_,
                       "read-request received while the MC is in charge");
      ++reads_served_;
      const ActionKind action = policy_->OnRequest(Op::kRead);
      Message response;
      response.type = MessageType::kDataResponse;
      response.key = key_;
      response.item = *store_->Get(key_);
      if (action == ActionKind::kRemoteReadAllocate) {
        // Majority reads: allocate. The indication, the window and the
        // control state piggyback on the data response (free, paper §4).
        // Persisted before the response leaves: a crash in between leaves
        // a granted-but-unannounced subscription the resync re-grants from
        // this policy object (which retains the shipped state).
        response.allocate = true;
        response.window = ExtractWindow(spec_, *policy_);
        response.transferred_state = ShipState(*policy_);
        last_transfer_window_ = response.window;
        mc_has_copy_ = true;
        in_charge_ = false;
        ++allocations_granted_;
        Persist("sc.grant");
      } else {
        MOBREP_CHECK(action == ActionKind::kRemoteRead);
        Persist("sc.read");
      }
      to_mc_->Send(std::move(response));
      return;
    }
    case MessageType::kDeleteRequest: {
      // The MC deallocated: stop propagating, adopt the shipped state.
      MOBREP_CHECK_MSG(!in_charge_ && mc_has_copy_,
                       "unexpected delete-request");
      policy_ = AdoptState(message.transferred_state);
      MOBREP_CHECK_MSG(!policy_->has_copy(),
                       "deallocation hand-over with a copy-holding state");
      last_transfer_window_ = message.window;
      mc_has_copy_ = false;
      in_charge_ = true;
      ++deallocations_accepted_;
      // The subscription died with the copy, and any pending collapsed
      // propagation dies with it: if the MC re-subscribes later, the
      // allocation's data response already carries the latest version, so
      // flushing afterwards would re-send a version the MC holds.
      if (pending_propagation_) {
        pending_propagation_ = false;
        ++discarded_propagations_;
      }
      Persist("sc.dealloc");
      return;
    }
    case MessageType::kResyncRequest: {
      // A resync reached the online database: either the MC restarted and
      // initiates, or the MC is answering this server's own restart
      // announcement with its claim. Both carry the MC's current
      // ownership claim; this side resolves — the store is the authority
      // (docs/RECOVERY.md).
      peer_incarnation_ = std::max(peer_incarnation_, message.epoch);
      ++resyncs_served_;
      Message response;
      response.type = MessageType::kResyncResponse;
      response.key = key_;
      response.epoch = incarnation_;
      response.peer_epoch = peer_incarnation_;
      if (in_charge_) {
        // This side owns (including the both-claim case, e.g. an SW1
        // invalidate that died in flight): the MC must drop its claim.
        response.allocate = false;
      } else {
        MOBREP_CHECK(mc_has_copy_);
        response.allocate = true;
        response.item = *store_->Get(key_);
        if (!message.claims_charge) {
          // The MC lost its grant in a crash (or never received it):
          // re-issue the allocation from this policy object, which
          // retains the post-grant control state it shipped originally.
          response.window = ExtractWindow(spec_, *policy_);
          response.transferred_state = ShipState(*policy_);
          last_transfer_window_ = response.window;
          ++regrants_;
        }
      }
      // The resolution supersedes any collapsed propagation: when the MC
      // owns, the response itself carries the latest version.
      if (pending_propagation_) {
        pending_propagation_ = false;
        ++discarded_propagations_;
      }
      resync_pending_ = false;
      MOBREP_TRACE_EVENT(obs::TraceEventKind::kResync, "SC", 0.0,
                         1, static_cast<int64_t>(incarnation_), 1);
      Persist("sc.resync");
      to_mc_->Send(std::move(response));
      return;
    }
    case MessageType::kDataResponse:
    case MessageType::kWritePropagate:
    case MessageType::kInvalidate:
    case MessageType::kResyncResponse:
      MOBREP_CHECK_MSG(false, "MC-bound message delivered to the SC");
      return;
    case MessageType::kAck:
      MOBREP_CHECK_MSG(false, "link-level ack delivered to the SC");
  }
}

}  // namespace mobrep
