#ifndef MOBREP_PROTOCOL_LEASE_H_
#define MOBREP_PROTOCOL_LEASE_H_

#include <cstdint>
#include <vector>

#include "mobrep/core/schedule.h"
#include "mobrep/store/versioned_store.h"

namespace mobrep {

// Tuning knobs of the lease layer (DESIGN.md §10). All times are simulation
// time units. Leases are disabled by default: no lease traffic, no timers,
// and the protocol endpoints behave byte-identically to the seed.
struct LeaseConfig {
  // Master switch. EnableLeases on the endpoints turns it on.
  bool enabled = false;
  // Lease term: how long one grant/renewal authorizes the MC to serve
  // local reads. The MC's local expiry is measured from the grantor's
  // anchor time, the SC's from its own receipt time, so under the single
  // simulated clock the holder always self-fences no later than the
  // grantor reclaims.
  double term = 0.1;
  // Extra slack the SC waits past its own expiry before reclaiming, so a
  // renewal that raced the expiry timer by one event still wins.
  double grace = 0.01;
};

// One fenced ownership claim, recorded by the SC when a stale-token MU
// returns: the demotion is surfaced as data, never silently dropped.
struct LeaseConflict {
  // The stale fencing token the late holder still carried.
  uint64_t stale_token = 0;
  // The SC's token at the time the conflict was recorded.
  uint64_t current_token = 0;
  // Whether the holder still claimed ownership when fenced (false when it
  // had already deallocated and only its delete-request went stale).
  bool claimed_charge = false;
  // The holder's request window at demotion time — the unsynced control
  // state that would otherwise be lost.
  std::vector<Op> window;
  // Simulation time the conflict was recorded at the SC.
  double recorded_at = 0.0;
};

// How a read served at the SC relates to the one-copy protocol.
enum class ReadServiceMode {
  // The SC is in charge (or has reclaimed the lease): the store is the
  // only live copy, the read is as fresh as any read can be.
  kAuthoritative,
  // The MC holds a live lease: the store is still write-fresh (writes
  // commit here first), but the lease holder may serve concurrent local
  // reads — the read is coordinated with the protocol, not degraded.
  kCoordinated,
  // The owner is partitioned or suspected and not yet reclaimed: served
  // anyway, flagged possibly-stale with an explicit staleness bound.
  kDegraded,
};

const char* ReadServiceModeName(ReadServiceMode mode);

// The result of a read served at the SC during (or outside) an owner
// partition. Always served: the store is the authority for writes, so
// graceful degradation means labelling the read, not refusing it.
struct ObserverRead {
  VersionedValue value;
  ReadServiceMode mode = ReadServiceMode::kAuthoritative;
  // For kDegraded: how long the owner has been silent — the upper bound on
  // how far the owner's view may have diverged. 0 otherwise.
  double staleness_bound = 0.0;
};

}  // namespace mobrep

#endif  // MOBREP_PROTOCOL_LEASE_H_
