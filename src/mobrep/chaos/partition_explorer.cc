#include "mobrep/chaos/partition_explorer.h"

#include <algorithm>

#include "mobrep/common/strings.h"

namespace mobrep {

std::string PartitionMatrixReport::Summary() const {
  return StrFormat(
      "%lld partition runs, %lld violation(s); %lld reclaims, %lld "
      "regrants, %lld revocations, %lld conflict reports, %lld degraded "
      "probes (max staleness %.4g), %lld degraded remote reads, %lld "
      "abandoned frames",
      static_cast<long long>(runs), static_cast<long long>(violations),
      static_cast<long long>(reclaims), static_cast<long long>(regrants),
      static_cast<long long>(revocations), static_cast<long long>(conflicts),
      static_cast<long long>(degraded_probes), max_staleness,
      static_cast<long long>(degraded_remote_reads),
      static_cast<long long>(abandoned_frames));
}

PartitionMatrixReport ExplorePartitions(const PartitionMatrixOptions& options) {
  PartitionMatrixReport report;
  for (const uint64_t seed : options.seeds) {
    for (const PartitionShape shape : options.shapes) {
      for (const double start : options.starts) {
        for (const double duration : options.durations) {
          PartitionSimConfig config = options.sim;
          config.fault.seed = seed;
          config.plan.shape = shape;
          config.plan.start = start;
          config.plan.duration = duration;
          PartitionedSimulation sim(config);
          const Status run = sim.Run();
          ++report.runs;
          if (!run.ok()) {
            ++report.violations;
            report.failures.push_back(PartitionRunFailure{
                shape, start, duration, seed, run.message()});
            continue;
          }
          report.reclaims += sim.server().lease_reclaims();
          report.regrants += sim.server().lease_regrants();
          report.revocations += sim.client().lease_revocations();
          report.conflicts +=
              static_cast<int64_t>(sim.server().lease_conflicts().size());
          report.degraded_probes += sim.degraded_probes();
          report.degraded_remote_reads += sim.server().degraded_remote_reads();
          report.abandoned_frames += sim.abandoned_frames();
          report.max_staleness =
              std::max(report.max_staleness, sim.server().max_staleness_served());
        }
      }
    }
  }
  return report;
}

}  // namespace mobrep
