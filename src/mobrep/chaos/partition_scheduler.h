#ifndef MOBREP_CHAOS_PARTITION_SCHEDULER_H_
#define MOBREP_CHAOS_PARTITION_SCHEDULER_H_

#include <string>
#include <vector>

#include "mobrep/net/fault_model.h"

namespace mobrep {

// Which directions of the MC<->SC link a partition severs.
enum class PartitionShape {
  // Both directions down: the classic disconnection (out of coverage).
  kSymmetric,
  // Only MC->SC down: the SC goes deaf (heartbeats and renewals are lost)
  // while its own propagation still reaches the MC.
  kUplinkOnly,
  // Only SC->MC down: the MC goes deaf (grants, acks and renewal acks are
  // lost) while its heartbeats keep the SC's failure detector quiet — the
  // shape where only the holder's self-fencing provides safety.
  kDownlinkOnly,
};

const char* PartitionShapeName(PartitionShape shape);
// Parses "symmetric" / "uplink" / "downlink"; returns false on anything
// else.
bool ParsePartitionShape(const std::string& text, PartitionShape* shape);

// One scheduled partition: `shape` from `start` for `duration` simulation
// time units. A non-finite (or negative) duration means never-heal.
struct PartitionPlan {
  PartitionShape shape = PartitionShape::kSymmetric;
  double start = 0.0;
  double duration = 0.0;

  bool never_heals() const;
  // start + duration, or +infinity for never-heal.
  double heal_time() const;
};

// Turns a PartitionPlan into per-direction outage windows for the two
// FaultyChannels of a protocol pair — the same outage machinery PR 1's
// doze windows use, so partitions compose with random loss, duplication
// and jitter. Deterministic: the plan alone fixes every window.
class PartitionScheduler {
 public:
  explicit PartitionScheduler(const PartitionPlan& plan);

  // Outage windows to append to the MC->SC (uplink) / SC->MC (downlink)
  // channel's FaultConfig. Empty when the plan leaves that direction up.
  std::vector<OutageWindow> UplinkOutages() const;
  std::vector<OutageWindow> DownlinkOutages() const;

  // True while at least one direction is severed at `now`.
  bool Partitioned(double now) const;

  const PartitionPlan& plan() const { return plan_; }

 private:
  PartitionPlan plan_;
};

}  // namespace mobrep

#endif  // MOBREP_CHAOS_PARTITION_SCHEDULER_H_
