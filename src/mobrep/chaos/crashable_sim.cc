#include "mobrep/chaos/crashable_sim.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <utility>

#include "mobrep/common/check.h"
#include "mobrep/common/strings.h"
#include "mobrep/obs/trace.h"
#include "mobrep/protocol/diagnosis.h"
#include "mobrep/protocol/transfer.h"

namespace mobrep {
namespace {

// Same per-direction fault-stream salts as ProtocolSimulation, so a
// crash-free CrashableSimulation sees the identical fault sequence.
constexpr uint64_t kUplinkFaultSalt = 0x4d432d3e5343ULL;    // "MC->SC"
constexpr uint64_t kDownlinkFaultSalt = 0x53432d3e4d43ULL;  // "SC->MC"

// Cuts the torn tail Recover() diagnosed off the on-disk log, so the
// reopened log appends intact records after the last intact one (a second
// recovery would otherwise stop at the stale torn bytes).
void TruncateTornTail(const std::string& path, int64_t bytes_truncated) {
  if (bytes_truncated <= 0) return;
  struct stat file_stat;
  if (::stat(path.c_str(), &file_stat) != 0) return;
  ::truncate(path.c_str(),
             file_stat.st_size - static_cast<off_t>(bytes_truncated));
}

}  // namespace

CrashableSimulation::CrashableSimulation(const CrashSimConfig& config,
                                         CrashScheduler* scheduler)
    : config_(config),
      scheduler_(scheduler),
      mc_journal_(this, CrashNode::kMobileClient),
      sc_journal_(this, CrashNode::kStationaryServer) {
  MOBREP_CHECK(scheduler_ != nullptr);
  MOBREP_CHECK_MSG(
      !config_.mc_wal_path.empty() && !config_.sc_wal_path.empty(),
      "the crash harness needs a WAL path per node");
  MOBREP_CHECK(config_.mc_wal_path != config_.sc_wal_path);
  std::remove(config_.mc_wal_path.c_str());
  std::remove(config_.sc_wal_path.c_str());
  store_.Put(config_.key, config_.initial_value);

  FaultConfig fault = config_.fault;
  fault.force_reliable = true;  // epoch fencing lives in the ARQ endpoints
  mc_to_sc_ = std::make_unique<FaultyChannel>(
      &queue_, config_.link_latency, "MC->SC", fault, kUplinkFaultSalt);
  sc_to_mc_ = std::make_unique<FaultyChannel>(
      &queue_, config_.link_latency, "SC->MC", fault, kDownlinkFaultSalt);
  ArqConfig arq = fault.arq;
  if (arq.initial_rto <= 0.0) {
    arq.initial_rto =
        4.0 * config_.link_latency + 2.0 * fault.max_jitter + 1e-6;
  }
  mc_link_ = std::make_unique<ReliableLink>(&queue_, mc_to_sc_.get(), arq,
                                            "MC-arq");
  sc_link_ = std::make_unique<ReliableLink>(&queue_, sc_to_mc_.get(), arq,
                                            "SC-arq");
  // Both nodes boot at incarnation 1; every frame is fenced against the
  // incarnation pair from the start.
  mc_link_->EnableEpochFencing(1, 1);
  sc_link_->EnableEpochFencing(1, 1);

  mc_to_sc_->set_receiver([this](const Message& frame) {
    if (sc_up_) sc_link_->HandleFrame(frame);
  });
  sc_to_mc_->set_receiver([this](const Message& frame) {
    if (mc_up_) mc_link_->HandleFrame(frame);
  });
  mc_link_->set_receiver(
      [this](const Message& m) { client_->HandleMessage(m); });
  sc_link_->set_receiver(
      [this](const Message& m) { server_->HandleMessage(m); });
  // Flush collapsed propagation only once any resync has resolved — the
  // "caught up" signal must not ship data to an unreconciled peer.
  sc_link_->set_on_idle([this] {
    if (sc_up_ && server_ != nullptr && !server_->resync_pending()) {
      server_->FlushPending();
    }
  });

  client_ = std::make_unique<MobileClient>(config_.key, config_.spec,
                                           mc_link_.get(), &cache_);
  client_->set_tolerates_link_faults(true);
  server_ = std::make_unique<StationaryServer>(config_.key, config_.spec,
                                               sc_link_.get(), &store_);
  if (client_->in_charge()) {
    cache_.Install(config_.key, *store_.Get(config_.key));
  }

  auto mc_wal = WriteAheadLog::Open(config_.mc_wal_path);
  MOBREP_CHECK_MSG(mc_wal.ok(), mc_wal.status().message().c_str());
  mc_wal_ = std::make_unique<WriteAheadLog>(std::move(*mc_wal));
  auto sc_wal = WriteAheadLog::Open(config_.sc_wal_path);
  MOBREP_CHECK_MSG(sc_wal.ok(), sc_wal.status().message().c_str());
  sc_wal_ = std::make_unique<WriteAheadLog>(std::move(*sc_wal));

  // The pre-existing durable state: the initial store version and each
  // node's boot snapshot. Written before the crash hooks are installed —
  // these records model state that existed before the run, so recovery
  // always finds an intact snapshot and the initial version.
  const Status initial_put =
      sc_wal_->AppendPut(config_.key, *store_.Get(config_.key));
  MOBREP_CHECK_MSG(initial_put.ok(), initial_put.message().c_str());
  Status snap = sc_wal_->AppendSnapshot(SnapshotServer().Encode());
  MOBREP_CHECK_MSG(snap.ok(), snap.message().c_str());
  snap = mc_wal_->AppendSnapshot(SnapshotClient().Encode());
  MOBREP_CHECK_MSG(snap.ok(), snap.message().c_str());

  server_->set_write_log(sc_wal_.get());
  client_->set_journal(&mc_journal_);
  server_->set_journal(&sc_journal_);
  InstallWalHooks();
  mc_link_->set_crash_hook([this](const char* site) {
    scheduler_->OnPoint(CrashNode::kMobileClient,
                        StrFormat("mc.link.%s", site));
  });
  sc_link_->set_crash_hook([this](const char* site) {
    scheduler_->OnPoint(CrashNode::kStationaryServer,
                        StrFormat("sc.link.%s", site));
  });
}

void CrashableSimulation::InstallWalHooks() {
  if (mc_wal_ != nullptr) {
    mc_wal_->set_crash_hook([this](WalCrashPhase phase, const char* what) {
      const char* reason =
          std::strcmp(what, "put") == 0 ? "mc.put" : mc_pending_reason_;
      scheduler_->OnPoint(
          CrashNode::kMobileClient,
          StrFormat("%s@%s", reason, WalCrashPhaseName(phase)));
    });
  }
  if (sc_wal_ != nullptr) {
    sc_wal_->set_crash_hook([this](WalCrashPhase phase, const char* what) {
      const char* reason =
          std::strcmp(what, "put") == 0 ? "sc.put" : sc_pending_reason_;
      scheduler_->OnPoint(
          CrashNode::kStationaryServer,
          StrFormat("%s@%s", reason, WalCrashPhaseName(phase)));
    });
  }
}

NodeSnapshot CrashableSimulation::SnapshotClient() const {
  NodeSnapshot snapshot;
  snapshot.is_mc = true;
  snapshot.in_charge = client_->in_charge();
  snapshot.has_copy = client_->has_copy();
  snapshot.incarnation = client_->incarnation();
  snapshot.peer_incarnation = client_->peer_incarnation();
  if (snapshot.has_copy) {
    const Result<VersionedValue> replica = cache_.Get(config_.key);
    MOBREP_CHECK(replica.ok());
    snapshot.replica_version = replica->version;
    snapshot.replica_value = replica->value;
  }
  snapshot.window = ExtractWindow(config_.spec, client_->policy()).ToVector();
  snapshot.counter = ExtractCounter(config_.spec, client_->policy());
  return snapshot;
}

NodeSnapshot CrashableSimulation::SnapshotServer() const {
  NodeSnapshot snapshot;
  snapshot.is_mc = false;
  snapshot.in_charge = server_->in_charge();
  snapshot.has_copy = server_->mc_has_copy();
  snapshot.pending_propagation = server_->has_pending_propagation();
  snapshot.incarnation = server_->incarnation();
  snapshot.peer_incarnation = server_->peer_incarnation();
  snapshot.window = ExtractWindow(config_.spec, server_->policy()).ToVector();
  snapshot.counter = ExtractCounter(config_.spec, server_->policy());
  return snapshot;
}

void CrashableSimulation::PersistNode(CrashNode node, const char* reason) {
  if (node == CrashNode::kMobileClient) {
    if (mc_wal_ == nullptr || client_ == nullptr) return;
    mc_pending_reason_ = reason;
    const Status appended = mc_wal_->AppendSnapshot(SnapshotClient().Encode());
    MOBREP_CHECK_MSG(appended.ok(), appended.message().c_str());
  } else {
    if (sc_wal_ == nullptr || server_ == nullptr) return;
    sc_pending_reason_ = reason;
    const Status appended = sc_wal_->AppendSnapshot(SnapshotServer().Encode());
    MOBREP_CHECK_MSG(appended.ok(), appended.message().c_str());
  }
}

void CrashableSimulation::Fail(const Status& status) {
  if (crash_error_.ok()) crash_error_ = status;
}

void CrashableSimulation::OnCrash(const CrashSignal& signal) {
  ++crashes_;
  MOBREP_TRACE_EVENT(obs::TraceEventKind::kNodeCrash, signal.site.c_str(),
                     queue_.now(), static_cast<int64_t>(signal.node),
                     scheduler_->points_seen());
  if (signal.node == CrashNode::kMobileClient) {
    const uint32_t next_incarnation = client_->incarnation() + 1;
    client_.reset();
    mc_up_ = false;
    mc_wal_.reset();  // the bytes on disk are the crash image
    // The in-memory replica image dies with the node; recovery rebuilds it
    // from the journaled snapshot.
    if (cache_.Contains(config_.key)) {
      MOBREP_CHECK(cache_.Evict(config_.key).ok());
    }
    // The node's volatile ARQ conversation dies too; pending timers no-op.
    mc_link_->Restart(next_incarnation);
    queue_.ScheduleAfter(config_.down_time, [this, next_incarnation] {
      RestartClient(next_incarnation);
    });
  } else {
    const uint32_t next_incarnation = server_->incarnation() + 1;
    server_.reset();
    sc_up_ = false;
    sc_wal_.reset();
    sc_link_->Restart(next_incarnation);
    queue_.ScheduleAfter(config_.down_time, [this, next_incarnation] {
      RestartServer(next_incarnation);
    });
  }
}

void CrashableSimulation::RestartClient(uint32_t incarnation) {
  ++recoveries_;
  Result<RecoveryReport> recovered =
      WriteAheadLog::Recover(config_.mc_wal_path);
  if (!recovered.ok()) return Fail(recovered.status());
  last_report_ = *recovered;
  MOBREP_CHECK_MSG(!recovered->last_snapshot.empty(),
                   "MC log lost its boot snapshot");
  Result<NodeSnapshot> decoded =
      NodeSnapshot::Decode(recovered->last_snapshot);
  if (!decoded.ok()) return Fail(decoded.status());
  TruncateTornTail(config_.mc_wal_path, recovered->bytes_truncated);

  if (decoded->has_copy) {
    cache_.Install(config_.key,
                   VersionedValue{decoded->replica_value,
                                  decoded->replica_version});
  }
  client_ = std::make_unique<MobileClient>(config_.key, config_.spec,
                                           mc_link_.get(), &cache_);
  client_->set_tolerates_link_faults(true);
  client_->Restore(decoded->in_charge,
                   ReconstructPolicy(config_.spec, decoded->has_copy,
                                     decoded->window, decoded->counter),
                   incarnation, decoded->peer_incarnation);

  auto wal = WriteAheadLog::Open(config_.mc_wal_path);
  if (!wal.ok()) return Fail(wal.status());
  mc_wal_ = std::make_unique<WriteAheadLog>(std::move(*wal));
  InstallWalHooks();
  client_->set_journal(&mc_journal_);
  mc_up_ = true;
  MOBREP_TRACE_EVENT(obs::TraceEventKind::kNodeRestart, "MC", queue_.now(),
                     static_cast<int64_t>(CrashNode::kMobileClient),
                     static_cast<int64_t>(incarnation));
  // Make the bumped incarnation durable, then reconcile ownership.
  PersistNode(CrashNode::kMobileClient, "mc.restart");
  client_->BeginResync();
}

void CrashableSimulation::RestartServer(uint32_t incarnation) {
  ++recoveries_;
  Result<RecoveryReport> recovered =
      WriteAheadLog::Recover(config_.sc_wal_path);
  if (!recovered.ok()) return Fail(recovered.status());
  last_report_ = *recovered;
  MOBREP_CHECK_MSG(!recovered->last_snapshot.empty(),
                   "SC log lost its boot snapshot");
  Result<NodeSnapshot> decoded =
      NodeSnapshot::Decode(recovered->last_snapshot);
  if (!decoded.ok()) return Fail(decoded.status());
  TruncateTornTail(config_.sc_wal_path, recovered->bytes_truncated);

  // The online database is rebuilt from the replayed PUT records — an
  // unlogged in-memory write (crash before its append) is legitimately
  // lost; it was never acknowledged.
  store_ = std::move(recovered->store);
  MOBREP_CHECK_MSG(store_.Contains(config_.key),
                   "SC log lost the initial version");
  server_ = std::make_unique<StationaryServer>(config_.key, config_.spec,
                                               sc_link_.get(), &store_);
  server_->Restore(decoded->in_charge, decoded->has_copy,
                   decoded->pending_propagation,
                   ReconstructPolicy(config_.spec, decoded->has_copy,
                                     decoded->window, decoded->counter),
                   incarnation, decoded->peer_incarnation);

  auto wal = WriteAheadLog::Open(config_.sc_wal_path);
  if (!wal.ok()) return Fail(wal.status());
  sc_wal_ = std::make_unique<WriteAheadLog>(std::move(*wal));
  InstallWalHooks();
  server_->set_write_log(sc_wal_.get());
  server_->set_journal(&sc_journal_);
  sc_up_ = true;
  MOBREP_TRACE_EVENT(obs::TraceEventKind::kNodeRestart, "SC", queue_.now(),
                     static_cast<int64_t>(CrashNode::kStationaryServer),
                     static_cast<int64_t>(incarnation));
  PersistNode(CrashNode::kStationaryServer, "sc.restart");
  server_->BeginResync();
}

Status CrashableSimulation::DrainWithCrashes(const char* what) {
  for (int attempt = 0; attempt < 4; ++attempt) {
    try {
      int64_t events_run = 0;
      const bool quiescent =
          queue_.TryRunUntilQuiescent(config_.max_events, &events_run);
      if (!crash_error_.ok()) return crash_error_;
      if (!quiescent) {
        return InternalError(StrFormat(
            "%s did not quiesce within %lld events; %s", what,
            static_cast<long long>(config_.max_events),
            DescribeQuiescenceStall(client_.get(), server_.get(),
                                    mc_link_.get(), sc_link_.get())
                .c_str()));
      }
      return OkStatus();
    } catch (const CrashSignal& signal) {
      // The throw has fully unwound the dying node's stack; now drop its
      // volatile state and schedule recovery.
      OnCrash(signal);
    }
  }
  return InternalError("more than one crash escaped the scheduler");
}

Status CrashableSimulation::CheckInvariants(const char* when) {
  if (!crash_error_.ok()) return crash_error_;
  if (client_ == nullptr || server_ == nullptr) {
    return InternalError(
        StrFormat("%s: a crashed node never restarted", when));
  }
  if (client_->resync_pending() || server_->resync_pending()) {
    return InternalError(StrFormat(
        "%s: %s", when,
        DescribeQuiescenceStall(client_.get(), server_.get(), mc_link_.get(),
                                sc_link_.get())
            .c_str()));
  }
  if (client_->in_charge() == server_->in_charge()) {
    return InternalError(StrFormat(
        "%s: %s in charge after convergence", when,
        client_->in_charge() ? "both nodes" : "neither node"));
  }
  if (client_->in_charge() != client_->has_copy()) {
    return InternalError(
        StrFormat("%s: in-charge MC without a copy (or vice versa)", when));
  }
  if (server_->mc_has_copy() != client_->has_copy()) {
    return InternalError(
        StrFormat("%s: subscription views diverged", when));
  }
  const Result<VersionedValue> authoritative = store_.Get(config_.key);
  if (!authoritative.ok()) return authoritative.status();
  if (authoritative->version < acked_version_) {
    return DataLossError(StrFormat(
        "%s: store rolled back to version %llu, but version %llu was "
        "acknowledged",
        when, static_cast<unsigned long long>(authoritative->version),
        static_cast<unsigned long long>(acked_version_)));
  }
  if (client_->has_copy()) {
    const Result<VersionedValue> replica = cache_.Get(config_.key);
    if (!replica.ok() || !(*replica == *authoritative)) {
      return DataLossError(StrFormat(
          "%s: surviving replica diverged from the store", when));
    }
  }
  return OkStatus();
}

void CrashableSimulation::IssueCheckedRead() {
  client_->IssueRead([this](const VersionedValue& value) {
    read_completed_ = true;
    read_value_ = value;
  });
}

Status CrashableSimulation::RunRead() {
  read_completed_ = false;
  try {
    IssueCheckedRead();
  } catch (const CrashSignal& signal) {
    OnCrash(signal);
  }
  Status drained = DrainWithCrashes("read exchange");
  if (!drained.ok()) return drained;
  if (!read_completed_) {
    // The crash killed the read's callback with the MC; the recovered
    // client converged but cannot know about the request — the harness
    // (playing the MC's user) re-drives it.
    ++reissued_reads_;
    try {
      IssueCheckedRead();
    } catch (const CrashSignal& signal) {
      OnCrash(signal);
    }
    drained = DrainWithCrashes("re-issued read");
    if (!drained.ok()) return drained;
    if (!read_completed_) {
      return InternalError("read never completed after recovery");
    }
  }
  // Freshness: serialized steps mean the read must observe the latest
  // committed write, crash or no crash.
  const Result<VersionedValue> authoritative = store_.Get(config_.key);
  if (!authoritative.ok()) return authoritative.status();
  if (!(read_value_ == *authoritative)) {
    return DataLossError(StrFormat(
        "read observed version %llu ('%s'); latest committed is %llu ('%s')",
        static_cast<unsigned long long>(read_value_.version),
        read_value_.value.c_str(),
        static_cast<unsigned long long>(authoritative->version),
        authoritative->value.c_str()));
  }
  return CheckInvariants("read step");
}

Status CrashableSimulation::RunWrite() {
  bool acked = false;
  try {
    ++write_sequence_;
    server_->IssueWrite(
        StrFormat("v%lld", static_cast<long long>(write_sequence_)));
    acked = true;
  } catch (const CrashSignal& signal) {
    OnCrash(signal);
  }
  if (acked) acked_version_ = store_.Get(config_.key)->version;
  const Status drained = DrainWithCrashes("write exchange");
  if (!drained.ok()) return drained;
  return CheckInvariants("write step");
}

Status CrashableSimulation::Run(const Schedule& schedule) {
  for (const Op op : schedule) {
    const Status step = op == Op::kRead ? RunRead() : RunWrite();
    if (!step.ok()) return step;
  }
  return CheckInvariants("end of schedule");
}

}  // namespace mobrep
