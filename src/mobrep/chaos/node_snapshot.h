#ifndef MOBREP_CHAOS_NODE_SNAPSHOT_H_
#define MOBREP_CHAOS_NODE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mobrep/common/status.h"
#include "mobrep/core/schedule.h"

namespace mobrep {

// The protocol-critical state one node journals at every Persist() point
// (see protocol/journal.h and docs/RECOVERY.md): everything Recover() needs
// to rebuild the node exactly — the ownership bit, the subscription view,
// the policy's control state (window + T-family counter via
// protocol/transfer.h), the replica image, and the incarnation pair.
//
// Serialized as one WAL SNAP payload; the value fields are length-prefixed
// so arbitrary bytes round-trip, and the window rides the same wire
// encoding the hand-over messages use (net/wire_format.h).
struct NodeSnapshot {
  bool is_mc = false;
  // Window ownership (paper §4: the node holding the copy is in charge).
  bool in_charge = false;
  // MC: a replica is installed. SC: the MC subscribes to propagation.
  bool has_copy = false;
  // SC only: a collapsed propagation awaits the link draining.
  bool pending_propagation = false;
  uint32_t incarnation = 1;
  uint32_t peer_incarnation = 1;
  // MC only, meaningful when has_copy: the persisted replica image.
  uint64_t replica_version = 0;
  std::string replica_value;
  // Policy control state (ReconstructPolicy inputs).
  std::vector<Op> window;
  int counter = 0;

  std::string Encode() const;
  static Result<NodeSnapshot> Decode(const std::string& payload);

  friend bool operator==(const NodeSnapshot& a, const NodeSnapshot& b) {
    return a.is_mc == b.is_mc && a.in_charge == b.in_charge &&
           a.has_copy == b.has_copy &&
           a.pending_propagation == b.pending_propagation &&
           a.incarnation == b.incarnation &&
           a.peer_incarnation == b.peer_incarnation &&
           a.replica_version == b.replica_version &&
           a.replica_value == b.replica_value && a.window == b.window &&
           a.counter == b.counter;
  }
};

}  // namespace mobrep

#endif  // MOBREP_CHAOS_NODE_SNAPSHOT_H_
