#include "mobrep/chaos/node_snapshot.h"

#include <cstring>

#include "mobrep/common/strings.h"
#include "mobrep/net/wire_format.h"

namespace mobrep {
namespace {

// Minimal sequential parser; length prefixes make arbitrary payload bytes
// unambiguous (the same convention the WAL records use).
struct Cursor {
  const char* pos;
  const char* end;

  bool Literal(const char* literal) {
    const size_t n = std::strlen(literal);
    if (static_cast<size_t>(end - pos) < n) return false;
    if (std::memcmp(pos, literal, n) != 0) return false;
    pos += n;
    return true;
  }

  bool Number(char delimiter, uint64_t* out) {
    uint64_t value = 0;
    const char* start = pos;
    while (pos < end && *pos >= '0' && *pos <= '9') {
      value = value * 10 + static_cast<uint64_t>(*pos - '0');
      ++pos;
    }
    if (pos == start || pos >= end || *pos != delimiter) return false;
    ++pos;
    *out = value;
    return true;
  }

  // Threshold counters can be negative; everything else is unsigned.
  bool SignedNumber(char delimiter, int64_t* out) {
    bool negative = false;
    if (pos < end && *pos == '-') {
      negative = true;
      ++pos;
    }
    uint64_t magnitude = 0;
    if (!Number(delimiter, &magnitude)) return false;
    *out = negative ? -static_cast<int64_t>(magnitude)
                    : static_cast<int64_t>(magnitude);
    return true;
  }

  bool Bytes(uint64_t n, std::string* out) {
    if (static_cast<uint64_t>(end - pos) < n) return false;
    out->assign(pos, static_cast<size_t>(n));
    pos += n;
    return true;
  }
};

}  // namespace

std::string NodeSnapshot::Encode() const {
  std::string out = is_mc ? "MC " : "SC ";
  out += StrFormat("%d %d %d %u %u %llu %d ", in_charge ? 1 : 0,
                   has_copy ? 1 : 0, pending_propagation ? 1 : 0, incarnation,
                   peer_incarnation,
                   static_cast<unsigned long long>(replica_version), counter);
  const std::string encoded_window = EncodeWindow(window);
  out += StrFormat("%zu:", encoded_window.size());
  out += encoded_window;
  out += StrFormat(" %zu:", replica_value.size());
  out += replica_value;
  return out;
}

Result<NodeSnapshot> NodeSnapshot::Decode(const std::string& payload) {
  Cursor cursor{payload.data(), payload.data() + payload.size()};
  NodeSnapshot snapshot;
  if (cursor.Literal("MC ")) {
    snapshot.is_mc = true;
  } else if (cursor.Literal("SC ")) {
    snapshot.is_mc = false;
  } else {
    return InvalidArgumentError("node snapshot: bad node tag");
  }
  uint64_t in_charge = 0, has_copy = 0, pending = 0, incarnation = 0,
           peer = 0, replica_version = 0, window_len = 0, value_len = 0;
  int64_t counter = 0;
  std::string encoded_window;
  const bool ok = cursor.Number(' ', &in_charge) && in_charge <= 1 &&
                  cursor.Number(' ', &has_copy) && has_copy <= 1 &&
                  cursor.Number(' ', &pending) && pending <= 1 &&
                  cursor.Number(' ', &incarnation) &&
                  cursor.Number(' ', &peer) &&
                  cursor.Number(' ', &replica_version) &&
                  cursor.SignedNumber(' ', &counter) &&
                  cursor.Number(':', &window_len) &&
                  cursor.Bytes(window_len, &encoded_window) &&
                  cursor.Literal(" ") && cursor.Number(':', &value_len) &&
                  cursor.Bytes(value_len, &snapshot.replica_value) &&
                  cursor.pos == cursor.end;
  if (!ok) {
    return InvalidArgumentError("node snapshot: malformed payload");
  }
  Result<std::vector<Op>> window = DecodeWindow(encoded_window);
  if (!window.ok()) return window.status();
  snapshot.in_charge = in_charge != 0;
  snapshot.has_copy = has_copy != 0;
  snapshot.pending_propagation = pending != 0;
  snapshot.incarnation = static_cast<uint32_t>(incarnation);
  snapshot.peer_incarnation = static_cast<uint32_t>(peer);
  snapshot.replica_version = replica_version;
  snapshot.counter = static_cast<int>(counter);
  snapshot.window = *std::move(window);
  return snapshot;
}

}  // namespace mobrep
