#ifndef MOBREP_CHAOS_PARTITIONED_SIM_H_
#define MOBREP_CHAOS_PARTITIONED_SIM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mobrep/chaos/partition_scheduler.h"
#include "mobrep/common/status.h"
#include "mobrep/obs/analysis/analyzer.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/net/event_queue.h"
#include "mobrep/net/failure_detector.h"
#include "mobrep/net/fault_model.h"
#include "mobrep/net/reliable_link.h"
#include "mobrep/protocol/lease.h"
#include "mobrep/protocol/mobile_client.h"
#include "mobrep/protocol/stationary_server.h"
#include "mobrep/store/replica_cache.h"
#include "mobrep/store/versioned_store.h"

namespace mobrep {

struct PartitionSimConfig {
  PolicySpec spec;
  std::string key = "x";
  std::string initial_value = "v0";
  double link_latency = 0.001;
  // Optional random faults on top of the partition; the plan's outage
  // windows are appended per direction and force_reliable is implied.
  FaultConfig fault;
  PartitionPlan plan;
  // Lease term/grace; `enabled` is forced on by the harness.
  LeaseConfig lease;
  FailureDetectorConfig detector;
  // Timed workload cadences (simulation time). Renew <= 0 derives term/3.
  double heartbeat_interval = 0.01;
  double renew_interval = 0.0;
  double write_interval = 0.03;   // SC commits
  double read_interval = 0.05;    // MC reads (skipped while one is pending)
  double probe_interval = 0.02;   // SC observer reads + safety checks
  // End of the timed workload AND of the simulated clock: the run stops
  // here (it does not drain to quiescence, which would always include the
  // lease lapsing after the workload's last renewal). For healing plans
  // the harness extends it past heal time so the post-heal reconciliation
  // (revoke / conflict / regrant) always has renewal ticks to ride on; a
  // plan starting at or after the horizon never activates (fault-free
  // baseline). Workload ticks end early enough that everything in flight
  // settles before the final checks at the horizon.
  double horizon = 1.5;
  // Deterministic RTO jitter applied when fault.arq leaves it unset.
  double rto_jitter = 0.1;
  // Per-conversation retransmission budget installed for never-heal plans
  // (caps the retransmission spend into a dead link, and makes the
  // abandonment path observable within the horizon); healing plans run
  // with an unlimited budget and must abandon nothing.
  int64_t never_heal_retry_budget = 48;
  int64_t max_events = 4'000'000;
  // Record the run's deterministic trace and pass it through the causal
  // analyzer (obs/analysis) at the end: error-severity findings — broken
  // send->outcome causality the invariant probes cannot see — fail the run
  // like any other violation. Warnings and infos (retransmit storms,
  // abandoned frames, drops) are expected consequences of the injected
  // partition and are only reported. No-op when tracing is compiled out.
  bool audit_trace = false;
};

// One SC observer read taken by the probe tick.
struct PartitionProbe {
  double at = 0.0;
  ReadServiceMode mode = ReadServiceMode::kAuthoritative;
  double staleness_bound = 0.0;
};

// The partition harness (DESIGN.md §10): one MC and one SC over faulty
// channels with ARQ endpoints, a heartbeat-fed failure detector on the SC,
// and the lease layer enabled, driven through a scheduled partition of the
// wireless link (symmetric or asymmetric, healing or permanent).
//
// Unlike the serialized crash harness, the workload here is concurrent
// wall-clock ticks — heartbeats, lease renewals, SC writes, MC reads and
// SC observer probes — because the failure modes under test are *timing*
// failures. Safety is checked at every probe and once more at the
// horizon, where the run stops (timers scheduled past it — notably the
// lease expiring after the workload's last renewal — never run):
//
//  - at most one valid fencing token: once the SC has reclaimed, the MC
//    is demoted or self-lapsed (never both sides serving authoritatively);
//  - no acked write lost: the store version never rolls back past an
//    acknowledged commit, reclamation or not;
//  - bounded unavailability: when the lease was live at partition onset
//    and renewals cannot reach the SC, reclamation lands within
//    term + grace + one link delay of the partition start, and every
//    observer probe after it is served authoritatively;
//  - healed runs reconverge: exactly one node in charge, subscription
//    views and fencing tokens agreeing, no reclamation overlay left, and
//    a surviving replica equal to the store.
class PartitionedSimulation {
 public:
  explicit PartitionedSimulation(const PartitionSimConfig& config);

  PartitionedSimulation(const PartitionedSimulation&) = delete;
  PartitionedSimulation& operator=(const PartitionedSimulation&) = delete;

  // Runs the timed workload through the partition up to the horizon.
  // Returns the first invariant violation (sticky — later checks cannot
  // mask it).
  Status Run();

  // Probes.
  const MobileClient& client() const { return *client_; }
  const StationaryServer& server() const { return *server_; }
  const VersionedStore& store() const { return store_; }
  const ReliableLink& mc_link() const { return *mc_link_; }
  const ReliableLink& sc_link() const { return *sc_link_; }
  const FailureDetector& detector() const { return detector_; }
  const PartitionScheduler& scheduler() const { return scheduler_; }
  double now() const { return queue_.now(); }

  // Workload accounting.
  const std::vector<PartitionProbe>& probes() const { return probes_; }
  int64_t degraded_probes() const { return degraded_probes_; }
  int64_t reads_issued() const { return reads_issued_; }
  int64_t reads_completed() const { return reads_completed_; }
  // Read ticks skipped because the previous read was still in flight
  // (expected while the partition holds a forwarded read hostage).
  int64_t reads_skipped() const { return reads_skipped_; }
  // Frames abandoned by either link (give-up path; never-heal only).
  int64_t abandoned_frames() const { return abandoned_frames_; }
  // Whether the MC held a live lease when the partition started — the
  // precondition for the reclamation-bound invariant.
  bool lease_live_at_partition() const { return lease_live_at_partition_; }
  // The workload horizon actually used (extended past heal time).
  double effective_horizon() const { return horizon_; }
  // The causal analysis of the run's trace; null unless config.audit_trace
  // was set and tracing is compiled in.
  const obs::analysis::AnalysisReport* audit_report() const {
    return audit_report_.get();
  }

 private:
  void ScheduleWorkload();
  // The event loop + final checks, factored out so Run() can bracket it
  // with trace recording when config.audit_trace is set.
  Status RunToHorizon();
  void WriteTick();
  void ReadTick();
  void ProbeTick();
  // The per-probe safety invariants; records the first violation.
  void CheckSafety(const char* when);
  // End-of-run convergence and bound checks.
  Status CheckFinal();
  void Fail(const Status& status);

  PartitionSimConfig config_;
  PartitionScheduler scheduler_;
  double renew_interval_ = 0.0;
  double horizon_ = 0.0;
  // Tick end times, staggered so the final checks at the horizon see a
  // settled system: workload (writes/reads/probes) stops two settle-tails
  // early, liveness (heartbeats/renewals) one — with a final renewal at
  // exactly liveness_end_ so the lease provably outlives the horizon.
  double workload_end_ = 0.0;
  double liveness_end_ = 0.0;
  EventQueue queue_;
  VersionedStore store_;
  ReplicaCache cache_;
  FailureDetector detector_;
  std::unique_ptr<FaultyChannel> mc_to_sc_;
  std::unique_ptr<FaultyChannel> sc_to_mc_;
  std::unique_ptr<ReliableLink> mc_link_;
  std::unique_ptr<ReliableLink> sc_link_;
  std::unique_ptr<MobileClient> client_;
  std::unique_ptr<StationaryServer> server_;

  uint64_t acked_version_ = 0;  // newest version whose commit was acked
  uint64_t last_seen_version_ = 0;
  int64_t write_sequence_ = 0;
  std::vector<PartitionProbe> probes_;
  int64_t degraded_probes_ = 0;
  int64_t reads_issued_ = 0;
  int64_t reads_completed_ = 0;
  int64_t reads_skipped_ = 0;
  int64_t abandoned_frames_ = 0;
  bool lease_live_at_partition_ = false;
  bool client_charged_at_partition_ = false;
  Status first_error_;  // sticky
  std::unique_ptr<obs::analysis::AnalysisReport> audit_report_;
};

}  // namespace mobrep

#endif  // MOBREP_CHAOS_PARTITIONED_SIM_H_
