#ifndef MOBREP_CHAOS_CRASH_SCHEDULER_H_
#define MOBREP_CHAOS_CRASH_SCHEDULER_H_

#include <string>
#include <vector>

#include "mobrep/common/crash_signal.h"

namespace mobrep {

// One reachable crash point: which node would die, and a stable label of
// the site ("mc.dealloc@torn", "sc.link.send", ...).
struct CrashPointInfo {
  CrashNode node = CrashNode::kMobileClient;
  std::string site;
};

// Enumerates and arms the crash points of one CrashableSimulation run.
//
// The harness calls OnPoint() at every crash point it passes: each WAL
// append (three WalCrashPhase sub-points per record), each ARQ send and
// each receive-delivery. Because the simulation is deterministic, the
// point sequence of a crash-free run is reproducible, so systematic
// exploration is two passes (chaos/crash_explorer.h): a counting pass with
// an unarmed scheduler, then one armed run per enumerated index. An armed
// scheduler throws CrashSignal at its target point — exactly once per run;
// points passed after the crash (recovery's own appends and sends) are
// recorded but never fire.
class CrashScheduler {
 public:
  CrashScheduler() = default;

  // Arms the scheduler to fire at the `target`-th OnPoint call (0-based).
  void Arm(int target) { target_ = target; }
  int target() const { return target_; }

  // Registers passing one crash point; throws CrashSignal when armed for
  // this index and not yet fired.
  void OnPoint(CrashNode node, std::string site);

  int points_seen() const { return index_; }
  const std::vector<CrashPointInfo>& points() const { return points_; }
  bool fired() const { return fired_; }
  // Meaningful only when fired().
  const CrashPointInfo& fired_point() const { return fired_point_; }

 private:
  int target_ = -1;  // -1: counting only, never fires
  int index_ = 0;
  bool fired_ = false;
  CrashPointInfo fired_point_;
  std::vector<CrashPointInfo> points_;
};

}  // namespace mobrep

#endif  // MOBREP_CHAOS_CRASH_SCHEDULER_H_
