#include "mobrep/chaos/crash_scheduler.h"

#include <utility>

namespace mobrep {

void CrashScheduler::OnPoint(CrashNode node, std::string site) {
  const int index = index_++;
  points_.push_back(CrashPointInfo{node, std::move(site)});
  if (index == target_ && !fired_) {
    fired_ = true;
    fired_point_ = points_.back();
    throw CrashSignal{node, fired_point_.site};
  }
}

}  // namespace mobrep
