#ifndef MOBREP_CHAOS_CRASH_EXPLORER_H_
#define MOBREP_CHAOS_CRASH_EXPLORER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mobrep/chaos/crash_scheduler.h"
#include "mobrep/chaos/crashable_sim.h"
#include "mobrep/common/status.h"
#include "mobrep/core/schedule.h"

namespace mobrep {

struct CrashMatrixOptions {
  // Harness parameters; the WAL paths are scratch files overwritten by
  // every run.
  CrashSimConfig sim;
  Schedule schedule;
};

// One armed run that violated an invariant (or failed to recover).
struct CrashRunFailure {
  int point = 0;
  CrashNode node = CrashNode::kMobileClient;
  std::string site;
  std::string message;
};

struct CrashMatrixReport {
  // Crash points enumerated by the crash-free counting pass.
  int64_t crash_points = 0;
  // Armed runs executed (one per enumerated point).
  int64_t runs = 0;
  int64_t violations = 0;
  // Aggregated recovery accounting across the clean armed runs.
  int64_t crashes = 0;
  int64_t recoveries = 0;
  int64_t resyncs = 0;
  int64_t regrants = 0;
  int64_t reissued_reads = 0;
  std::vector<CrashRunFailure> failures;
  // The enumerated sites, indexable by CrashRunFailure::point.
  std::vector<CrashPointInfo> points;

  bool clean() const { return violations == 0; }
  std::string Summary() const;
};

// Systematic crash-point exploration (docs/RECOVERY.md): first a crash-free
// counting pass enumerates every reachable crash point of `schedule` under
// `options.sim` (each WAL-append phase, each ARQ send, each receive
// delivery — ownership transitions persist through WAL appends, so they
// are covered site by site); then one armed run per point kills the node
// there, runs recovery, and checks the safety invariants. Deterministic:
// the same options always enumerate the same points and produce the same
// report. Fails outright only if the crash-free baseline itself fails;
// per-point violations are collected in the report.
Result<CrashMatrixReport> ExploreCrashPoints(const CrashMatrixOptions& options);

}  // namespace mobrep

#endif  // MOBREP_CHAOS_CRASH_EXPLORER_H_
