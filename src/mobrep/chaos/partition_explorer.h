#ifndef MOBREP_CHAOS_PARTITION_EXPLORER_H_
#define MOBREP_CHAOS_PARTITION_EXPLORER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mobrep/chaos/partitioned_sim.h"
#include "mobrep/common/status.h"

namespace mobrep {

struct PartitionMatrixOptions {
  // Harness parameters; `sim.plan` and `sim.fault.seed` are overridden by
  // every cell of the matrix.
  PartitionSimConfig sim;
  std::vector<PartitionShape> shapes = {PartitionShape::kSymmetric,
                                        PartitionShape::kUplinkOnly,
                                        PartitionShape::kDownlinkOnly};
  // Partition durations; a negative entry means never-heal. The defaults
  // bracket the default lease term (0.1): shorter than a term (the lease
  // survives on ARQ recovery alone), several terms (reclamation plus
  // post-heal regrant), and permanent.
  std::vector<double> durations = {0.05, 0.4, -1.0};
  std::vector<double> starts = {0.35};
  std::vector<uint64_t> seeds = {0x6d6f62726570ULL};
};

// One cell of the matrix that violated an invariant.
struct PartitionRunFailure {
  PartitionShape shape = PartitionShape::kSymmetric;
  double start = 0.0;
  double duration = 0.0;  // negative: never-heal
  uint64_t seed = 0;
  std::string message;
};

struct PartitionMatrixReport {
  int64_t runs = 0;
  int64_t violations = 0;
  // Aggregated lease-layer accounting across the clean runs.
  int64_t reclaims = 0;
  int64_t regrants = 0;
  int64_t revocations = 0;
  int64_t conflicts = 0;
  int64_t degraded_probes = 0;
  int64_t degraded_remote_reads = 0;
  int64_t abandoned_frames = 0;
  double max_staleness = 0.0;
  std::vector<PartitionRunFailure> failures;

  bool clean() const { return violations == 0; }
  std::string Summary() const;
};

// Systematic partition exploration (DESIGN.md §10): one PartitionedSimulation
// per (shape x duration x start x seed) cell, each checking the reclamation
// invariants — at most one valid fencing token, no acked write lost, the
// reclamation bound for permanent partitions, full reconvergence for healed
// ones. Deterministic: the same options always produce the same report.
// Per-cell violations are collected in the report, not returned as errors.
PartitionMatrixReport ExplorePartitions(const PartitionMatrixOptions& options);

}  // namespace mobrep

#endif  // MOBREP_CHAOS_PARTITION_EXPLORER_H_
