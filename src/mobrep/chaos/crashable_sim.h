#ifndef MOBREP_CHAOS_CRASHABLE_SIM_H_
#define MOBREP_CHAOS_CRASHABLE_SIM_H_

#include <cstdint>
#include <memory>
#include <string>

#include "mobrep/chaos/crash_scheduler.h"
#include "mobrep/chaos/node_snapshot.h"
#include "mobrep/common/status.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/core/schedule.h"
#include "mobrep/net/event_queue.h"
#include "mobrep/net/fault_model.h"
#include "mobrep/net/reliable_link.h"
#include "mobrep/protocol/journal.h"
#include "mobrep/protocol/mobile_client.h"
#include "mobrep/protocol/stationary_server.h"
#include "mobrep/store/replica_cache.h"
#include "mobrep/store/versioned_store.h"
#include "mobrep/store/write_ahead_log.h"

namespace mobrep {

struct CrashSimConfig {
  PolicySpec spec;
  std::string key = "x";
  std::string initial_value = "v0";
  double link_latency = 0.001;
  // Optional link faults on top of the crashes; force_reliable is implied
  // (epoch fencing lives in the ARQ endpoints).
  FaultConfig fault;
  // Per-node durability logs — the "disks" the crashes test. Both required;
  // any existing file is removed at construction (each run is hermetic).
  std::string mc_wal_path;
  std::string sc_wal_path;
  // Simulation time between a crash and the node's restart.
  double down_time = 0.02;
  int64_t max_events = 1'000'000;
};

// The crash-recovery harness (docs/RECOVERY.md): one MC and one SC over
// faulty channels with ARQ endpoints, where either node can be killed at
// any crash point by an armed CrashScheduler and is then recovered from
// its write-ahead log.
//
// Per node it wires a NodeJournal that snapshots the protocol-critical
// state (chaos/node_snapshot.h) into the node's WAL at every Persist()
// site, plus crash hooks at each WAL-append phase and each ARQ
// send/receive-delivery. On a crash it drops the node's volatile state
// (the object, its ARQ conversation, the MC's replica image), schedules a
// restart `down_time` later, rebuilds the node from WriteAheadLog::Recover
// (store replay + newest snapshot + ReconstructPolicy), bumps the
// incarnation, and runs the epoch-fenced resync handshake.
//
// Requests are serialized as in ProtocolSimulation::Run; after every step
// the paper's safety invariants are checked: exactly one node in charge,
// agreeing subscription views, reads observing the latest committed write,
// a surviving replica equal to the authoritative store, and no
// acknowledged write lost (the store never rolls back past an acked
// version).
class CrashableSimulation {
 public:
  CrashableSimulation(const CrashSimConfig& config, CrashScheduler* scheduler);

  CrashableSimulation(const CrashableSimulation&) = delete;
  CrashableSimulation& operator=(const CrashableSimulation&) = delete;

  // Runs the schedule, surviving at most one scheduled crash. Returns the
  // first invariant violation or recovery failure.
  Status Run(const Schedule& schedule);

  // Recovery accounting.
  int64_t crashes() const { return crashes_; }
  int64_t recoveries() const { return recoveries_; }
  // Reads whose callback died with the MC and were re-driven by the
  // harness after recovery.
  int64_t reissued_reads() const { return reissued_reads_; }
  const RecoveryReport& last_recovery_report() const { return last_report_; }

  // Probes (valid while both nodes are up, i.e. outside a crash window).
  const MobileClient& client() const { return *client_; }
  const StationaryServer& server() const { return *server_; }
  const VersionedStore& store() const { return store_; }
  const ReliableLink& mc_link() const { return *mc_link_; }
  const ReliableLink& sc_link() const { return *sc_link_; }
  double now() const { return queue_.now(); }

 private:
  // Journal adapter: Persist(reason) snapshots the owning node into its
  // WAL (whose crash hook turns the append into three crash points).
  class Journal : public NodeJournal {
   public:
    Journal(CrashableSimulation* sim, CrashNode node)
        : sim_(sim), node_(node) {}
    void Persist(const char* reason) override {
      sim_->PersistNode(node_, reason);
    }

   private:
    CrashableSimulation* sim_;
    CrashNode node_;
  };

  Status RunRead();
  Status RunWrite();
  void IssueCheckedRead();
  void PersistNode(CrashNode node, const char* reason);
  NodeSnapshot SnapshotClient() const;
  NodeSnapshot SnapshotServer() const;
  void InstallWalHooks();
  // Kills the crashed node: drops its volatile state and schedules the
  // restart. Called after the CrashSignal has unwound the node's stack.
  void OnCrash(const CrashSignal& signal);
  void RestartClient(uint32_t incarnation);
  void RestartServer(uint32_t incarnation);
  // Runs the queue to quiescence, absorbing the (at most one) CrashSignal.
  Status DrainWithCrashes(const char* what);
  Status CheckInvariants(const char* when);
  void Fail(const Status& status);

  CrashSimConfig config_;
  CrashScheduler* scheduler_;
  EventQueue queue_;
  VersionedStore store_;
  ReplicaCache cache_;
  std::unique_ptr<FaultyChannel> mc_to_sc_;
  std::unique_ptr<FaultyChannel> sc_to_mc_;
  std::unique_ptr<ReliableLink> mc_link_;
  std::unique_ptr<ReliableLink> sc_link_;
  std::unique_ptr<MobileClient> client_;
  std::unique_ptr<StationaryServer> server_;
  std::unique_ptr<WriteAheadLog> mc_wal_;
  std::unique_ptr<WriteAheadLog> sc_wal_;
  Journal mc_journal_;
  Journal sc_journal_;
  // Down nodes receive nothing: frames arriving between crash and restart
  // are dropped before the node's ARQ endpoint, like any outage.
  bool mc_up_ = true;
  bool sc_up_ = true;
  // Persist() reason currently being appended, labelling the WAL crash
  // hook's points.
  const char* mc_pending_reason_ = "mc.init";
  const char* sc_pending_reason_ = "sc.init";

  uint64_t acked_version_ = 0;  // newest version whose write was acked
  int64_t write_sequence_ = 0;
  bool read_completed_ = false;
  VersionedValue read_value_;
  int64_t crashes_ = 0;
  int64_t recoveries_ = 0;
  int64_t reissued_reads_ = 0;
  RecoveryReport last_report_;
  Status crash_error_;  // first recovery failure, sticky
};

}  // namespace mobrep

#endif  // MOBREP_CHAOS_CRASHABLE_SIM_H_
