#include "mobrep/chaos/crash_explorer.h"

#include "mobrep/common/strings.h"

namespace mobrep {

std::string CrashMatrixReport::Summary() const {
  return StrFormat(
      "%lld crash points, %lld armed runs, %lld violation(s); "
      "%lld crashes, %lld recoveries, %lld resyncs, %lld regrants, "
      "%lld re-driven reads",
      static_cast<long long>(crash_points), static_cast<long long>(runs),
      static_cast<long long>(violations), static_cast<long long>(crashes),
      static_cast<long long>(recoveries), static_cast<long long>(resyncs),
      static_cast<long long>(regrants),
      static_cast<long long>(reissued_reads));
}

Result<CrashMatrixReport> ExploreCrashPoints(
    const CrashMatrixOptions& options) {
  CrashMatrixReport report;
  {
    // Counting pass: the same schedule, no crash. Enumerates the reachable
    // points and doubles as the baseline the armed runs must converge to.
    CrashScheduler counting;
    CrashableSimulation sim(options.sim, &counting);
    const Status baseline = sim.Run(options.schedule);
    if (!baseline.ok()) {
      return InternalError(StrFormat("crash-free baseline failed: %s",
                                     baseline.message().c_str()));
    }
    report.crash_points = counting.points_seen();
    report.points = counting.points();
  }

  for (int point = 0; point < report.crash_points; ++point) {
    CrashScheduler scheduler;
    scheduler.Arm(point);
    CrashableSimulation sim(options.sim, &scheduler);
    const Status run = sim.Run(options.schedule);
    ++report.runs;
    const CrashPointInfo& info = report.points[static_cast<size_t>(point)];
    if (!run.ok()) {
      ++report.violations;
      report.failures.push_back(
          CrashRunFailure{point, info.node, info.site, run.message()});
      continue;
    }
    if (!scheduler.fired()) {
      // Determinism violation: the point existed in the counting pass but
      // was never reached when armed.
      ++report.violations;
      report.failures.push_back(CrashRunFailure{
          point, info.node, info.site, "armed crash point never reached"});
      continue;
    }
    report.crashes += sim.crashes();
    report.recoveries += sim.recoveries();
    report.resyncs += sim.server().resyncs_served();
    report.regrants += sim.server().regrants();
    report.reissued_reads += sim.reissued_reads();
  }
  return report;
}

}  // namespace mobrep
