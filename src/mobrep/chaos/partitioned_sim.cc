#include "mobrep/chaos/partitioned_sim.h"

#include <algorithm>
#include <utility>

#include "mobrep/common/check.h"
#include "mobrep/common/strings.h"
#include "mobrep/obs/trace.h"
#include "mobrep/protocol/diagnosis.h"

namespace mobrep {
namespace {

// Same per-direction fault-stream salts as ProtocolSimulation, so a
// plan-free PartitionedSimulation sees the identical random fault sequence.
constexpr uint64_t kUplinkFaultSalt = 0x4d432d3e5343ULL;    // "MC->SC"
constexpr uint64_t kDownlinkFaultSalt = 0x53432d3e4d43ULL;  // "SC->MC"

void AppendOutages(FaultConfig* fault, std::vector<OutageWindow> outages) {
  for (OutageWindow& window : outages) {
    fault->outages.push_back(window);
  }
}

}  // namespace

PartitionedSimulation::PartitionedSimulation(const PartitionSimConfig& config)
    : config_(config), scheduler_(config.plan), detector_(config.detector) {
  MOBREP_CHECK(config_.lease.term > 0.0);
  MOBREP_CHECK(config_.heartbeat_interval > 0.0);
  renew_interval_ = config_.renew_interval > 0.0 ? config_.renew_interval
                                                 : config_.lease.term / 3.0;
  MOBREP_CHECK_MSG(renew_interval_ < config_.lease.term,
                   "renewals slower than the lease term lapse every time");

  // For healing plans the timed workload must outlive the heal so the
  // post-heal renewal ticks can drive the revoke/conflict/regrant cycle.
  // A plan starting at or after the configured horizon never activates:
  // the run is a fault-free liveness baseline and keeps its horizon.
  horizon_ = config_.horizon;
  const double base_rto = config_.fault.arq.initial_rto > 0.0
                              ? config_.fault.arq.initial_rto
                              : 4.0 * config_.link_latency +
                                    2.0 * config_.fault.max_jitter + 1e-6;
  if (!config_.plan.never_heals() && config_.plan.start < config_.horizon) {
    // Post-heal convergence budget: the marooned frames re-probe within
    // one capped backoff (8 * rto, with room for re-drops on a lossy
    // link), then the renewal-driven revoke / conflict / regrant cycle
    // runs on the renewal cadence.
    const double margin = 2.0 * (config_.lease.term + config_.lease.grace) +
                          5.0 * renew_interval_ +
                          20.0 * config_.link_latency + 32.0 * base_rto;
    horizon_ = std::max(horizon_, config_.plan.heal_time() + margin);
  }

  store_.Put(config_.key, config_.initial_value);

  FaultConfig uplink = config_.fault;
  uplink.force_reliable = true;  // the lease layer assumes ARQ endpoints
  FaultConfig downlink = uplink;
  AppendOutages(&uplink, scheduler_.UplinkOutages());
  AppendOutages(&downlink, scheduler_.DownlinkOutages());
  mc_to_sc_ = std::make_unique<FaultyChannel>(
      &queue_, config_.link_latency, "MC->SC", uplink, kUplinkFaultSalt);
  sc_to_mc_ = std::make_unique<FaultyChannel>(
      &queue_, config_.link_latency, "SC->MC", downlink, kDownlinkFaultSalt);

  ArqConfig arq = config_.fault.arq;
  if (arq.initial_rto <= 0.0) {
    arq.initial_rto =
        4.0 * config_.link_latency + 2.0 * config_.fault.max_jitter + 1e-6;
  }
  if (arq.rto_jitter <= 0.0) arq.rto_jitter = config_.rto_jitter;
  if (arq.max_rto <= 0.0) {
    // A tight RTO ceiling (the deterministic jitter desynchronizes the
    // probes): frames marooned by the partition re-probe the healed link
    // within a bounded gap instead of sitting out a long backoff, and a
    // never-heal run's retry budget is spent early enough to observe the
    // abandonment path before the horizon.
    arq.max_rto = 8.0 * arq.initial_rto;
  }
  if (config_.plan.never_heals() && arq.retry_budget <= 0) {
    // A permanent partition retransmits forever without a budget.
    arq.retry_budget = config_.never_heal_retry_budget;
  }

  // The settle tail: long enough for the last frames in flight (including
  // one retransmission round under random loss) to deliver and ack before
  // the final checks at the horizon.
  const double tail = 6.0 * arq.initial_rto + 8.0 * config_.link_latency;
  liveness_end_ = horizon_ - tail;
  workload_end_ = horizon_ - 2.0 * tail;
  MOBREP_CHECK_MSG(workload_end_ > 0.0, "horizon shorter than the settle tail");
  MOBREP_CHECK_MSG(tail < config_.lease.term,
                   "settle tail exceeds the lease term; the final renewal "
                   "cannot carry the lease past the horizon");
  mc_link_ = std::make_unique<ReliableLink>(&queue_, mc_to_sc_.get(), arq,
                                            "MC-arq");
  sc_link_ = std::make_unique<ReliableLink>(&queue_, sc_to_mc_.get(), arq,
                                            "SC-arq");
  mc_link_->EnableEpochFencing(1, 1);
  sc_link_->EnableEpochFencing(1, 1);

  mc_to_sc_->set_receiver(
      [this](const Message& frame) { sc_link_->HandleFrame(frame); });
  sc_to_mc_->set_receiver(
      [this](const Message& frame) { mc_link_->HandleFrame(frame); });
  mc_link_->set_receiver(
      [this](const Message& m) { client_->HandleMessage(m); });
  sc_link_->set_receiver(
      [this](const Message& m) { server_->HandleMessage(m); });
  sc_link_->set_on_idle([this] { server_->FlushPending(); });
  // The SC-side liveness feed: every frame arriving from the MC's live
  // incarnation (heartbeats included) refreshes the detector.
  sc_link_->set_on_peer_heard([this](double now) { detector_.OnHeard(now); });
  // Abandoned frames are survivable here (the end-state checks account for
  // them); without these hooks a give-up aborts the process.
  mc_link_->set_on_give_up(
      [this](const Message&) { ++abandoned_frames_; });
  sc_link_->set_on_give_up(
      [this](const Message&) { ++abandoned_frames_; });

  client_ = std::make_unique<MobileClient>(config_.key, config_.spec,
                                           mc_link_.get(), &cache_);
  client_->set_tolerates_link_faults(true);
  server_ = std::make_unique<StationaryServer>(config_.key, config_.spec,
                                               sc_link_.get(), &store_);
  if (client_->in_charge()) {
    cache_.Install(config_.key, *store_.Get(config_.key));
  }

  LeaseConfig lease = config_.lease;
  lease.enabled = true;
  client_->EnableLeases(&queue_, lease);
  server_->EnableLeases(&queue_, lease, &detector_);
}

void PartitionedSimulation::Fail(const Status& status) {
  if (first_error_.ok()) first_error_ = status;
}

void PartitionedSimulation::ScheduleWorkload() {
  // Heartbeats ride the uplink only: the SC watches the MC. Offset by half
  // an interval so heartbeat and renewal ticks never collide.
  for (double t = config_.heartbeat_interval / 2.0; t < liveness_end_;
       t += config_.heartbeat_interval) {
    queue_.ScheduleAt(t, [this] { mc_link_->SendHeartbeat(); });
  }
  for (double t = renew_interval_; t < liveness_end_; t += renew_interval_) {
    queue_.ScheduleAt(t, [this] { client_->SendLeaseRenewal(); });
  }
  // One final liveness round at exactly liveness_end_: the lease and the
  // detector's last-heard both provably outlive the horizon, so the final
  // checks never race the post-workload lapse.
  queue_.ScheduleAt(liveness_end_, [this] {
    mc_link_->SendHeartbeat();
    client_->SendLeaseRenewal();
  });
  for (double t = config_.write_interval; t < workload_end_;
       t += config_.write_interval) {
    queue_.ScheduleAt(t, [this] { WriteTick(); });
  }
  for (double t = config_.read_interval; t < workload_end_;
       t += config_.read_interval) {
    queue_.ScheduleAt(t, [this] { ReadTick(); });
  }
  for (double t = config_.probe_interval; t < workload_end_;
       t += config_.probe_interval) {
    queue_.ScheduleAt(t, [this] { ProbeTick(); });
  }
  // Snapshot the lease state the instant the partition begins — the
  // precondition deciding which end-state bounds apply. (For a plan
  // starting past the horizon the event never runs.)
  queue_.ScheduleAt(config_.plan.start, [this] {
    lease_live_at_partition_ =
        server_->lease_held() && !server_->lease_reclaimed();
    client_charged_at_partition_ = client_->in_charge();
  });
}

void PartitionedSimulation::WriteTick() {
  ++write_sequence_;
  server_->IssueWrite(
      StrFormat("v%lld", static_cast<long long>(write_sequence_)));
  acked_version_ = store_.Get(config_.key)->version;
}

void PartitionedSimulation::ReadTick() {
  // Reads are serialized (paper workload); while the partition holds a
  // forwarded read hostage, later ticks skip instead of piling up.
  if (client_->has_pending_read()) {
    ++reads_skipped_;
    return;
  }
  ++reads_issued_;
  client_->IssueRead([this](const VersionedValue&) { ++reads_completed_; });
}

void PartitionedSimulation::ProbeTick() {
  const ObserverRead read = server_->ServeObserverRead();
  PartitionProbe probe;
  probe.at = queue_.now();
  probe.mode = read.mode;
  probe.staleness_bound = read.staleness_bound;
  probes_.push_back(probe);
  if (read.mode == ReadServiceMode::kDegraded) ++degraded_probes_;
  // Bounded unavailability: reclamation restores authoritative service;
  // no probe after it may still be degraded.
  if (server_->lease_reclaimed() &&
      read.mode != ReadServiceMode::kAuthoritative) {
    Fail(InternalError(StrFormat(
        "probe at %.4f served %s after reclamation", probe.at,
        ReadServiceModeName(read.mode))));
  }
  CheckSafety("probe");
}

void PartitionedSimulation::CheckSafety(const char* when) {
  const double now = queue_.now();
  // At most one valid fencing token: once the SC reclaims, the MC is
  // demoted or self-lapsed — never still serving on a live lease.
  if (server_->lease_reclaimed() && client_->in_charge() &&
      !client_->LeaseLapsed()) {
    Fail(InternalError(StrFormat(
        "%s at %.4f: split brain — SC reclaimed (token %llu) while the MC "
        "still serves on a live lease (token %llu)",
        when, now, static_cast<unsigned long long>(server_->lease_token()),
        static_cast<unsigned long long>(client_->lease_token()))));
  }
  // Tokens are issued by the SC in increasing order; the MC can never hold
  // a newer one than the SC has issued.
  if (client_->lease_token() > server_->lease_token()) {
    Fail(InternalError(StrFormat(
        "%s at %.4f: MC token %llu ahead of SC token %llu", when, now,
        static_cast<unsigned long long>(client_->lease_token()),
        static_cast<unsigned long long>(server_->lease_token()))));
  }
  // No acked write lost: the authoritative store never rolls back.
  const Result<VersionedValue> authoritative = store_.Get(config_.key);
  if (!authoritative.ok()) return Fail(authoritative.status());
  if (authoritative->version < last_seen_version_ ||
      authoritative->version < acked_version_) {
    Fail(DataLossError(StrFormat(
        "%s at %.4f: store rolled back to version %llu (acked %llu, "
        "previously observed %llu)",
        when, now, static_cast<unsigned long long>(authoritative->version),
        static_cast<unsigned long long>(acked_version_),
        static_cast<unsigned long long>(last_seen_version_))));
  }
  last_seen_version_ = authoritative->version;
  // The replica only ever holds versions the store committed first.
  if (client_->has_copy()) {
    const Result<VersionedValue> replica = cache_.Get(config_.key);
    if (replica.ok() && replica->version > authoritative->version) {
      Fail(DataLossError(StrFormat(
          "%s at %.4f: replica version %llu ahead of the store (%llu)", when,
          now, static_cast<unsigned long long>(replica->version),
          static_cast<unsigned long long>(authoritative->version))));
    }
  }
}

Status PartitionedSimulation::CheckFinal() {
  if (!first_error_.ok()) return first_error_;
  CheckSafety("end of run");
  if (!first_error_.ok()) return first_error_;

  const PartitionPlan& plan = config_.plan;
  const bool renewals_blocked =
      plan.shape != PartitionShape::kDownlinkOnly;  // uplink severed
  const double slack =
      config_.link_latency + config_.fault.max_jitter + 1e-6;
  const double reclaim_bound =
      plan.start + config_.lease.term + config_.lease.grace + slack;

  if (plan.never_heals()) {
    if (lease_live_at_partition_ && renewals_blocked) {
      // The provable convergence bound: with renewals unable to reach the
      // SC, the lease expires and the reclamation timer fires within
      // term + grace + one link delay of the partition onset.
      if (!server_->lease_reclaimed()) {
        return InternalError(StrFormat(
            "never-heal %s partition: the SC never reclaimed a lease that "
            "stopped renewing at %.4f (now %.4f)",
            PartitionShapeName(plan.shape), plan.start, queue_.now()));
      }
      if (server_->last_reclaim_time() > reclaim_bound) {
        return InternalError(StrFormat(
            "reclamation at %.4f exceeded the bound %.4f (= start %.4f + "
            "term %.4g + grace %.4g + slack %.4g)",
            server_->last_reclaim_time(), reclaim_bound, plan.start,
            config_.lease.term, config_.lease.grace, slack));
      }
      if (!server_->operationally_in_charge()) {
        return InternalError(
            "reclaimed SC does not consider itself operationally in charge");
      }
    }
    // The strict steady-state claims below assume renewals actually keep
    // arriving — true only when the uplink loses nothing. Under random
    // loss a renewal chain can genuinely miss the term (first
    // transmissions dropped while the exhausted budget forbids retries),
    // making a reclaim legitimate; the safety invariants in CheckSafety
    // still hold unconditionally.
    const bool lossless_uplink = config_.fault.drop_probability == 0.0 &&
                                 config_.fault.duplicate_probability == 0.0;
    if (lease_live_at_partition_ &&
        plan.shape == PartitionShape::kDownlinkOnly && lossless_uplink) {
      // The safe asymmetric steady state: renewals keep arriving, so the
      // SC must never reclaim; the deaf holder self-lapses and forwards.
      if (server_->lease_reclaims() != 0) {
        return InternalError(StrFormat(
            "downlink-only partition reclaimed %lld time(s); renewals were "
            "still arriving",
            static_cast<long long>(server_->lease_reclaims())));
      }
      if (client_->in_charge() && !client_->LeaseLapsed()) {
        return InternalError(
            "deaf holder still trusts its lease after the acks stopped");
      }
      if (degraded_probes_ != 0) {
        return InternalError(StrFormat(
            "%lld observer probe(s) degraded although the uplink (and thus "
            "the liveness feed) stayed up",
            static_cast<long long>(degraded_probes_)));
      }
    }
    return OkStatus();
  }

  // Healed plans must fully reconverge.
  if (abandoned_frames_ != 0) {
    return InternalError(StrFormat(
        "healing run abandoned %lld frame(s); the retry schedule should "
        "survive a bounded partition",
        static_cast<long long>(abandoned_frames_)));
  }
  if (client_->resync_pending() || server_->resync_pending() ||
      mc_link_->outstanding_frames() + sc_link_->outstanding_frames() > 0) {
    return InternalError(StrFormat(
        "healed run did not settle: %s",
        DescribeQuiescenceStall(client_.get(), server_.get(), mc_link_.get(),
                                sc_link_.get(), queue_.now())
            .c_str()));
  }
  if (client_->in_charge() == server_->in_charge()) {
    return InternalError(StrFormat(
        "healed run: %s in charge",
        client_->in_charge() ? "both nodes" : "neither node"));
  }
  if (server_->mc_has_copy() != client_->has_copy()) {
    return InternalError("healed run: subscription views diverged");
  }
  if (server_->lease_reclaimed()) {
    return InternalError(
        "healed run left the reclamation overlay in place; the stale "
        "holder's conflict report never resolved into a regrant");
  }
  if (client_->has_pending_read()) {
    return InternalError("healed run left a read in flight forever");
  }
  if (reads_completed_ != reads_issued_) {
    return InternalError(StrFormat(
        "healed run completed %lld of %lld issued reads",
        static_cast<long long>(reads_completed_),
        static_cast<long long>(reads_issued_)));
  }
  if (client_->in_charge()) {
    if (!server_->lease_held() ||
        client_->lease_token() != server_->lease_token()) {
      return InternalError(StrFormat(
          "healed run: owner MC holds token %llu but the SC records "
          "held=%d token=%llu",
          static_cast<unsigned long long>(client_->lease_token()),
          server_->lease_held() ? 1 : 0,
          static_cast<unsigned long long>(server_->lease_token())));
    }
    const Result<VersionedValue> replica = cache_.Get(config_.key);
    const Result<VersionedValue> authoritative = store_.Get(config_.key);
    if (!replica.ok()) return replica.status();
    if (!authoritative.ok()) return authoritative.status();
    if (!server_->has_pending_propagation() &&
        !(*replica == *authoritative)) {
      return DataLossError(StrFormat(
          "healed run: replica at version %llu diverged from the store at "
          "%llu",
          static_cast<unsigned long long>(replica->version),
          static_cast<unsigned long long>(authoritative->version)));
    }
  }
  return OkStatus();
}

Status PartitionedSimulation::RunToHorizon() {
  ScheduleWorkload();
  // Run the clock to the horizon and stop: events scheduled past it —
  // notably the lease expiry timer re-armed by the workload's last
  // renewal, and retransmission timers probing a permanent partition —
  // are deliberately left unrun. The final checks describe the system at
  // the horizon, not after an artificial post-workload lapse.
  int64_t events_run = 0;
  while (!queue_.empty() && queue_.next_time() <= horizon_) {
    if (++events_run > config_.max_events) {
      return InternalError(StrFormat(
          "partition run exceeded %lld events before the horizon; %s",
          static_cast<long long>(config_.max_events),
          DescribeQuiescenceStall(client_.get(), server_.get(),
                                  mc_link_.get(), sc_link_.get(),
                                  queue_.now())
              .c_str()));
    }
    queue_.RunNext();
  }
  return CheckFinal();
}

Status PartitionedSimulation::Run() {
  const bool audit = config_.audit_trace && obs::kTracingCompiled;
  obs::TraceRecorder* recorder = obs::TraceRecorder::Global();
  if (audit) {
    recorder->Clear();
    recorder->SetCapacityPerThread(size_t{1} << 16);
    obs::TraceRecorder::SetRuntimeEnabled(true);
  }
  const Status result = RunToHorizon();
  if (!audit) return result;

  obs::TraceRecorder::SetRuntimeEnabled(false);
  const std::vector<obs::TraceEvent> events = recorder->MergedEvents();
  obs::analysis::AnalyzerOptions options;
  options.audit.recorder_dropped = recorder->dropped();
  recorder->Clear();
  // A healed plan that left frames outstanding is a stall worth a finding
  // in the report too, with the protocol-level diagnosis attached; a
  // never-heal plan is *expected* to end with traffic in flight.
  if (!config_.plan.never_heals() &&
      (client_->resync_pending() || server_->resync_pending() ||
       mc_link_->outstanding_frames() + sc_link_->outstanding_frames() > 0)) {
    options.audit.stall_context =
        DescribeQuiescenceStall(client_.get(), server_.get(), mc_link_.get(),
                                sc_link_.get(), queue_.now());
  }
  audit_report_ = std::make_unique<obs::analysis::AnalysisReport>(
      obs::analysis::AnalyzeTrace(events, options));

  if (!result.ok()) return result;  // the invariant violation wins
  if (!audit_report_->clean()) {
    for (const obs::analysis::Finding& finding : audit_report_->findings) {
      if (finding.severity == obs::analysis::Severity::kError) {
        return InternalError(StrFormat(
            "causal audit: %lld error finding(s); first: [%s] %s",
            static_cast<long long>(audit_report_->errors),
            finding.cls.c_str(), finding.detail.c_str()));
      }
    }
  }
  return result;
}

}  // namespace mobrep
