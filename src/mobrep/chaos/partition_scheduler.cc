#include "mobrep/chaos/partition_scheduler.h"

#include <cmath>
#include <limits>

#include "mobrep/common/check.h"

namespace mobrep {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

}  // namespace

const char* PartitionShapeName(PartitionShape shape) {
  switch (shape) {
    case PartitionShape::kSymmetric:
      return "symmetric";
    case PartitionShape::kUplinkOnly:
      return "uplink";
    case PartitionShape::kDownlinkOnly:
      return "downlink";
  }
  return "unknown";
}

bool ParsePartitionShape(const std::string& text, PartitionShape* shape) {
  if (text == "symmetric") {
    *shape = PartitionShape::kSymmetric;
  } else if (text == "uplink") {
    *shape = PartitionShape::kUplinkOnly;
  } else if (text == "downlink") {
    *shape = PartitionShape::kDownlinkOnly;
  } else {
    return false;
  }
  return true;
}

bool PartitionPlan::never_heals() const {
  return !std::isfinite(duration) || duration < 0.0;
}

double PartitionPlan::heal_time() const {
  return never_heals() ? kInfinity : start + duration;
}

PartitionScheduler::PartitionScheduler(const PartitionPlan& plan)
    : plan_(plan) {
  MOBREP_CHECK_MSG(plan.start >= 0.0, "partition start must be >= 0");
}

std::vector<OutageWindow> PartitionScheduler::UplinkOutages() const {
  if (plan_.shape == PartitionShape::kDownlinkOnly) return {};
  return {OutageWindow{plan_.start, plan_.heal_time()}};
}

std::vector<OutageWindow> PartitionScheduler::DownlinkOutages() const {
  if (plan_.shape == PartitionShape::kUplinkOnly) return {};
  return {OutageWindow{plan_.start, plan_.heal_time()}};
}

bool PartitionScheduler::Partitioned(double now) const {
  return now >= plan_.start && now < plan_.heal_time();
}

}  // namespace mobrep
