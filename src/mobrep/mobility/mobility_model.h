#ifndef MOBREP_MOBILITY_MOBILITY_MODEL_H_
#define MOBREP_MOBILITY_MOBILITY_MODEL_H_

#include <vector>

#include "mobrep/common/random.h"

namespace mobrep {

// Random-walk mobility over a ring of cells: the mobile computer dwells in
// a cell for an exponential time (rate `move_rate`), then moves to one of
// the two neighbouring cells with equal probability.
class RandomWalkMobility {
 public:
  // num_cells >= 1; move_rate >= 0 (0 = the MC never moves).
  RandomWalkMobility(int num_cells, double move_rate, Rng rng);

  // Timestamps of the moves falling in (from, to]; strictly increasing.
  std::vector<double> MoveTimesBetween(double from, double to);

  // The cell after one move away from `current` (ring topology).
  int NextCell(int current);

  int num_cells() const { return num_cells_; }
  double move_rate() const { return move_rate_; }

 private:
  int num_cells_;
  double move_rate_;
  Rng rng_;
  double next_move_time_ = -1.0;  // lazily sampled
};

}  // namespace mobrep

#endif  // MOBREP_MOBILITY_MOBILITY_MODEL_H_
