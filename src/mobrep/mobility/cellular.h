#ifndef MOBREP_MOBILITY_CELLULAR_H_
#define MOBREP_MOBILITY_CELLULAR_H_

#include <cstdint>
#include <memory>

#include "mobrep/net/channel.h"
#include "mobrep/net/event_queue.h"

namespace mobrep {

// The cellular service area of the paper's introduction: the geography is
// divided into cells, each with a stationary controller; the mobile
// computer talks to the controller of its current cell over the (expensive)
// wireless hop, and controllers reach the fixed stationary computer over
// the (cheap) wireline network. The SC "does not change when the mobile
// computer moves from cell to cell" (§1) — mobility never affects the
// allocation decision, only adds handoff signaling.
//
// The network exposes Channel endpoints with the same interface the
// protocol nodes already use, so MobileClient/StationaryServer plug in
// unchanged; each end-to-end message crosses one wireless and one wireline
// hop. Only wireless traffic is chargeable.
//
// Handoffs are executed at quiescent points (between serialized requests),
// matching the repository-wide serialization assumption; the hand-off
// signaling is one wireless registration message from the MC to the new
// cell's controller plus wireline location updates to the SC's home
// location register, and a wireless confirmation back.
class CellularNetwork {
 public:
  struct Options {
    int num_cells = 7;
    int initial_cell = 0;
    double wireless_latency = 0.001;
    double wireline_latency = 0.0002;
  };

  CellularNetwork(EventQueue* queue, const Options& options);

  CellularNetwork(const CellularNetwork&) = delete;
  CellularNetwork& operator=(const CellularNetwork&) = delete;

  // Endpoint the MobileClient sends through (wireless uplink, relayed to
  // the SC over the wireline backbone).
  Channel* mc_uplink() { return mc_uplink_.get(); }
  // Endpoint the StationaryServer sends through (wireline to the MC's
  // current cell, then the wireless downlink).
  Channel* sc_downlink() { return sc_wireline_.get(); }

  // Final receivers (the nodes' HandleMessage entry points).
  void set_mc_receiver(Channel::Receiver receiver);
  void set_sc_receiver(Channel::Receiver receiver);

  // Moves the MC into `new_cell`, running the registration signaling.
  // Must be called at a quiescent point (no in-flight messages).
  void Handoff(int new_cell);

  int current_cell() const { return current_cell_; }
  int num_cells() const { return options_.num_cells; }
  int64_t handoffs() const { return handoffs_; }

  // Chargeable traffic: everything that crossed the wireless hop.
  int64_t wireless_data_messages() const;
  int64_t wireless_control_messages() const;
  // Wireless control messages spent on handoff signaling alone.
  int64_t handoff_control_messages() const { return handoff_controls_; }
  // Free wireline traffic (for completeness of the accounting).
  int64_t wireline_messages() const;

 private:
  EventQueue* queue_;
  Options options_;
  int current_cell_;
  int64_t handoffs_ = 0;
  int64_t handoff_controls_ = 0;

  // Uplink path: MC -(wireless)-> cell controller -(wireline)-> SC.
  std::unique_ptr<Channel> mc_uplink_;     // wireless
  std::unique_ptr<Channel> up_wireline_;   // controller -> SC
  // Downlink path: SC -(wireline)-> cell controller -(wireless)-> MC.
  std::unique_ptr<Channel> sc_wireline_;   // SC -> controller
  std::unique_ptr<Channel> down_wireless_;  // controller -> MC
};

}  // namespace mobrep

#endif  // MOBREP_MOBILITY_CELLULAR_H_
