#include "mobrep/mobility/roaming_sim.h"

#include <utility>

#include "mobrep/common/check.h"
#include "mobrep/common/strings.h"

namespace mobrep {

double RoamingMetrics::ReplicationCost(double omega) const {
  return static_cast<double>(wireless_data_messages) +
         omega * static_cast<double>(wireless_control_messages);
}

double RoamingMetrics::TotalCost(double omega) const {
  return ReplicationCost(omega) +
         omega * static_cast<double>(handoff_control_messages);
}

RoamingSimulation::RoamingSimulation(const RoamingConfig& config)
    : config_(config) {
  store_.Put(config_.key, config_.initial_value);
  cells_ = std::make_unique<CellularNetwork>(&queue_, config_.cells);
  client_ = std::make_unique<MobileClient>(config_.key, config_.spec,
                                           cells_->mc_uplink(), &cache_);
  server_ = std::make_unique<StationaryServer>(
      config_.key, config_.spec, cells_->sc_downlink(), &store_);
  cells_->set_mc_receiver(
      [this](const Message& m) { client_->HandleMessage(m); });
  cells_->set_sc_receiver(
      [this](const Message& m) { server_->HandleMessage(m); });
  mobility_ = std::make_unique<RandomWalkMobility>(
      config_.cells.num_cells, config_.move_rate, Rng(config_.mobility_seed));
  if (client_->in_charge()) {
    cache_.Install(config_.key, *store_.Get(config_.key));
  }
}

void RoamingSimulation::Step(const TimedRequest& request) {
  MOBREP_CHECK_MSG(request.time >= last_request_time_,
                   "timed requests must be non-decreasing");
  // Execute the moves that happened since the previous request; the queue
  // is quiescent between serialized requests, so handoffs are safe here.
  for (const double move_time :
       mobility_->MoveTimesBetween(last_request_time_, request.time)) {
    (void)move_time;
    cells_->Handoff(mobility_->NextCell(cells_->current_cell()));
  }
  last_request_time_ = request.time;

  if (request.op == Op::kRead) {
    bool completed = false;
    VersionedValue seen;
    client_->IssueRead([&](const VersionedValue& value) {
      completed = true;
      seen = value;
    });
    queue_.RunUntilQuiescent();
    MOBREP_CHECK_MSG(completed, "read did not complete");
    MOBREP_CHECK_MSG(seen == *store_.Get(config_.key),
                     "MC read observed a stale value while roaming");
  } else {
    ++write_sequence_;
    server_->IssueWrite(
        StrFormat("v%lld", static_cast<long long>(write_sequence_)));
    queue_.RunUntilQuiescent();
  }
  MOBREP_CHECK(client_->in_charge() != server_->in_charge());
}

void RoamingSimulation::Run(const TimedSchedule& schedule) {
  for (const TimedRequest& request : schedule) Step(request);
}

RoamingMetrics RoamingSimulation::metrics() const {
  RoamingMetrics m;
  m.wireless_data_messages = cells_->wireless_data_messages();
  m.wireless_control_messages = cells_->wireless_control_messages() -
                                cells_->handoff_control_messages();
  m.handoffs = cells_->handoffs();
  m.handoff_control_messages = cells_->handoff_control_messages();
  m.wireline_messages = cells_->wireline_messages();
  m.allocations = client_->allocations();
  m.deallocations = client_->deallocations();
  return m;
}

}  // namespace mobrep
