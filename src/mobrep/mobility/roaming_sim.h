#ifndef MOBREP_MOBILITY_ROAMING_SIM_H_
#define MOBREP_MOBILITY_ROAMING_SIM_H_

#include <memory>
#include <string>

#include "mobrep/core/policy_factory.h"
#include "mobrep/core/schedule.h"
#include "mobrep/mobility/cellular.h"
#include "mobrep/mobility/mobility_model.h"
#include "mobrep/net/event_queue.h"
#include "mobrep/protocol/mobile_client.h"
#include "mobrep/protocol/protocol_sim.h"
#include "mobrep/protocol/stationary_server.h"
#include "mobrep/store/replica_cache.h"
#include "mobrep/store/versioned_store.h"

namespace mobrep {

// End-to-end simulation of the full mobile scenario of the paper's
// introduction: the MC roams across cells while issuing reads against a
// data item whose writes commit at the fixed SC. The replication protocol
// (mobrep/protocol/) runs unchanged over the cellular substrate
// (mobrep/mobility/); handoffs happen between serialized requests.
//
// The interesting property (checked in tests and bench_mobility_overhead):
// replication traffic is *independent of mobility* — moving the MC changes
// only the handoff signaling, never the allocation decisions or the
// per-request message counts, because the SC is fixed (§1).

struct RoamingConfig {
  PolicySpec spec;
  std::string key = "x";
  std::string initial_value = "v0";
  CellularNetwork::Options cells;
  // Handoffs per unit simulation time (exponential dwell).
  double move_rate = 0.1;
  uint64_t mobility_seed = 7;
};

struct RoamingMetrics {
  // Replication traffic on the wireless hop (chargeable).
  int64_t wireless_data_messages = 0;
  int64_t wireless_control_messages = 0;  // excluding handoff signaling
  // Mobility overhead.
  int64_t handoffs = 0;
  int64_t handoff_control_messages = 0;
  // Free wireline backbone traffic.
  int64_t wireline_messages = 0;
  // Replication-protocol counters (mirrors ProtocolMetrics).
  int64_t allocations = 0;
  int64_t deallocations = 0;

  // Wireless cost under the message model, with and without the handoff
  // signaling included.
  double ReplicationCost(double omega) const;
  double TotalCost(double omega) const;
};

class RoamingSimulation {
 public:
  explicit RoamingSimulation(const RoamingConfig& config);

  RoamingSimulation(const RoamingSimulation&) = delete;
  RoamingSimulation& operator=(const RoamingSimulation&) = delete;

  // Feeds one timed request; executes any handoffs whose times fall before
  // it, then runs the exchange to quiescence (with freshness checking).
  void Step(const TimedRequest& request);

  void Run(const TimedSchedule& schedule);

  RoamingMetrics metrics() const;
  int current_cell() const { return cells_->current_cell(); }
  bool mc_has_copy() const { return client_->has_copy(); }

 private:
  RoamingConfig config_;
  EventQueue queue_;
  VersionedStore store_;
  ReplicaCache cache_;
  std::unique_ptr<CellularNetwork> cells_;
  std::unique_ptr<MobileClient> client_;
  std::unique_ptr<StationaryServer> server_;
  std::unique_ptr<RandomWalkMobility> mobility_;
  double last_request_time_ = 0.0;
  int64_t write_sequence_ = 0;
};

}  // namespace mobrep

#endif  // MOBREP_MOBILITY_ROAMING_SIM_H_
