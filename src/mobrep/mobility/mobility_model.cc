#include "mobrep/mobility/mobility_model.h"

#include "mobrep/common/check.h"

namespace mobrep {

RandomWalkMobility::RandomWalkMobility(int num_cells, double move_rate,
                                       Rng rng)
    : num_cells_(num_cells), move_rate_(move_rate), rng_(rng) {
  MOBREP_CHECK(num_cells >= 1);
  MOBREP_CHECK(move_rate >= 0.0);
}

std::vector<double> RandomWalkMobility::MoveTimesBetween(double from,
                                                         double to) {
  MOBREP_CHECK(from <= to);
  std::vector<double> times;
  if (move_rate_ <= 0.0) return times;
  if (next_move_time_ < 0.0) {
    next_move_time_ = from + rng_.Exponential(move_rate_);
  }
  while (next_move_time_ <= to) {
    if (next_move_time_ > from) times.push_back(next_move_time_);
    next_move_time_ += rng_.Exponential(move_rate_);
  }
  return times;
}

int RandomWalkMobility::NextCell(int current) {
  MOBREP_CHECK(current >= 0 && current < num_cells_);
  if (num_cells_ == 1) return current;
  const int step = rng_.Bernoulli(0.5) ? 1 : num_cells_ - 1;
  return (current + step) % num_cells_;
}

}  // namespace mobrep
