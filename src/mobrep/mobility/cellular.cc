#include "mobrep/mobility/cellular.h"

#include <utility>

#include "mobrep/common/check.h"

namespace mobrep {

CellularNetwork::CellularNetwork(EventQueue* queue, const Options& options)
    : queue_(queue), options_(options), current_cell_(options.initial_cell) {
  MOBREP_CHECK(queue != nullptr);
  MOBREP_CHECK(options.num_cells >= 1);
  MOBREP_CHECK(options.initial_cell >= 0 &&
               options.initial_cell < options.num_cells);

  mc_uplink_ = std::make_unique<Channel>(queue, options.wireless_latency,
                                         "MC -> cell (wireless)");
  up_wireline_ = std::make_unique<Channel>(queue, options.wireline_latency,
                                           "cell -> SC (wireline)");
  sc_wireline_ = std::make_unique<Channel>(queue, options.wireline_latency,
                                           "SC -> cell (wireline)");
  down_wireless_ = std::make_unique<Channel>(queue, options.wireless_latency,
                                             "cell -> MC (wireless)");

  // The cell controller relays transparently in both directions.
  mc_uplink_->set_receiver(
      [this](const Message& m) { up_wireline_->Send(m); });
  sc_wireline_->set_receiver(
      [this](const Message& m) { down_wireless_->Send(m); });
}

void CellularNetwork::set_mc_receiver(Channel::Receiver receiver) {
  down_wireless_->set_receiver(std::move(receiver));
}

void CellularNetwork::set_sc_receiver(Channel::Receiver receiver) {
  up_wireline_->set_receiver(std::move(receiver));
}

void CellularNetwork::Handoff(int new_cell) {
  MOBREP_CHECK(new_cell >= 0 && new_cell < options_.num_cells);
  MOBREP_CHECK_MSG(queue_->empty(),
                   "handoffs must occur at quiescent points");
  if (new_cell == current_cell_) return;
  current_cell_ = new_cell;
  ++handoffs_;
  // Registration signaling: one wireless control message from the MC to
  // the new controller and one wireless confirmation back; the location
  // update between controllers and the SC rides the free wireline network.
  // Modeled as accounting (the registration does not interact with the
  // replication protocol's state machines).
  handoff_controls_ += 2;
}

int64_t CellularNetwork::wireless_data_messages() const {
  return mc_uplink_->data_messages_sent() +
         down_wireless_->data_messages_sent();
}

int64_t CellularNetwork::wireless_control_messages() const {
  return mc_uplink_->control_messages_sent() +
         down_wireless_->control_messages_sent() + handoff_controls_;
}

int64_t CellularNetwork::wireline_messages() const {
  // Each handoff also generates a location update and an acknowledgement
  // on the wireline backbone.
  return up_wireline_->messages_sent() + sc_wireline_->messages_sent() +
         2 * handoffs_;
}

}  // namespace mobrep
