#ifndef MOBREP_TRACE_GENERATORS_H_
#define MOBREP_TRACE_GENERATORS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "mobrep/common/random.h"
#include "mobrep/core/packed_schedule.h"
#include "mobrep/core/schedule.h"

namespace mobrep {

// Workload generators matching the paper's probabilistic model (§3): reads
// are issued at the MC as a Poisson process with rate lambda_r, writes at
// the SC with rate lambda_w, independently. Because the merged process is
// memoryless, the *sequence* of relevant requests is i.i.d. Bernoulli with
// write probability theta = lambda_w / (lambda_w + lambda_r); generators
// are provided at both levels.

// n i.i.d. requests with write probability theta.
Schedule GenerateBernoulliSchedule(int64_t n, double theta, Rng* rng);

// Bit-packed variant: consumes the RNG identically to
// GenerateBernoulliSchedule (one Bernoulli draw per request), so for equal
// (n, theta) and RNG state the two produce elementwise-equal schedules —
// but fills 64-request words directly instead of storing a byte per
// request.
PackedSchedule GeneratePackedBernoulliSchedule(int64_t n, double theta,
                                               Rng* rng);

// The first n arrivals of the merged Poisson processes, with timestamps.
TimedSchedule GenerateTimedPoisson(int64_t n, double lambda_r,
                                   double lambda_w, Rng* rng);

// Piecewise-stationary workload: `periods` periods of `period_length`
// requests each; each period's theta is drawn independently and uniformly
// from [0, 1]. This is exactly the regime under which the paper's *average
// expected cost* (AVG, eq. 1) is the right figure of merit.
Schedule GeneratePeriodWorkload(int64_t periods, int64_t period_length,
                                Rng* rng);

// Bit-packed variant of GeneratePeriodWorkload; same RNG consumption, same
// elementwise contents, words filled directly.
PackedSchedule GeneratePackedPeriodWorkload(int64_t periods,
                                            int64_t period_length, Rng* rng);

// `count` non-overlapping [start, end) doze/outage windows of length
// `duration` each, placed within [0, span): the span is cut into `count`
// equal slots and each window lands uniformly at random inside its own
// slot, so windows are always disjoint and in increasing order. Requires
// count * duration <= span. Returned as plain (start, end) pairs so the
// trace layer stays independent of the net layer's OutageWindow type.
std::vector<std::pair<double, double>> GenerateOutageWindows(int count,
                                                             double span,
                                                             double duration,
                                                             Rng* rng);

// Streaming Bernoulli source for long runs that should not materialize a
// schedule vector.
class BernoulliRequestStream {
 public:
  BernoulliRequestStream(double theta, Rng rng);

  Op Next();
  // Fills out[0..n) with the next n requests; identical to n Next() calls.
  void NextBatch(Op* out, int64_t n);
  double theta() const { return theta_; }

 private:
  double theta_;
  Rng rng_;
};

// Streaming period-workload source; redraws theta ~ U[0,1] every
// `period_length` requests.
class PeriodRequestStream {
 public:
  PeriodRequestStream(int64_t period_length, Rng rng);

  Op Next();
  // Fills out[0..n) with the next n requests; identical to n Next() calls.
  void NextBatch(Op* out, int64_t n);
  double current_theta() const { return theta_; }

 private:
  int64_t period_length_;
  int64_t remaining_in_period_ = 0;
  double theta_ = 0.0;
  Rng rng_;
};

}  // namespace mobrep

#endif  // MOBREP_TRACE_GENERATORS_H_
