#ifndef MOBREP_TRACE_ADVERSARY_H_
#define MOBREP_TRACE_ADVERSARY_H_

#include <cstdint>
#include <functional>

#include "mobrep/core/cost_model.h"
#include "mobrep/core/policy.h"
#include "mobrep/core/schedule.h"

namespace mobrep {

// Adversarial schedule constructions used by the worst-case (competitive)
// experiments.

// `cycles` repetitions of (writes_per_block writes, reads_per_block reads).
// With writes_per_block = reads_per_block = k this is the schedule on which
// SWk's (k+1)-competitiveness is tight.
Schedule BlockSchedule(int64_t cycles, int writes_per_block,
                       int reads_per_block);

// n copies of the same request; the schedules showing the static
// algorithms are not competitive (all reads vs. ST1, all writes vs. ST2).
Schedule UniformSchedule(int64_t n, Op op);

// n requests of strictly alternating writes and reads, starting with a
// write: w r w r ... (the schedule on which SW1's (1+2*omega) factor is
// tight).
Schedule AlternatingSchedule(int64_t n);

// The "cruel" adversary: replays the policy (from Reset()) and at every
// step issues the request that costs it the most — a read while the MC has
// no copy, a write while it does. For the window policies this produces
// their worst-case thrash pattern automatically.
Schedule CruelSchedule(const AllocationPolicy& prototype, int64_t n);

// Invokes `fn` for every one of the 2^length schedules of the given length
// (lexicographic order, reads first). Exhaustive ground truth for small
// lengths in tests.
void ForEachSchedule(int length, const std::function<void(const Schedule&)>& fn);

}  // namespace mobrep

#endif  // MOBREP_TRACE_ADVERSARY_H_
