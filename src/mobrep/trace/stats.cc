#include "mobrep/trace/stats.h"

#include <algorithm>

#include "mobrep/common/strings.h"

namespace mobrep {

ScheduleStats ComputeStats(const Schedule& schedule) {
  ScheduleStats stats;
  stats.requests = static_cast<int64_t>(schedule.size());
  int64_t run = 0;
  for (size_t i = 0; i < schedule.size(); ++i) {
    const Op op = schedule[i];
    if (op == Op::kWrite) {
      ++stats.writes;
    } else {
      ++stats.reads;
    }
    if (i > 0 && schedule[i - 1] != op) {
      ++stats.alternations;
      run = 0;
    }
    ++run;
    if (op == Op::kWrite) {
      stats.longest_write_run = std::max(stats.longest_write_run, run);
    } else {
      stats.longest_read_run = std::max(stats.longest_read_run, run);
    }
  }
  if (stats.requests > 0) {
    stats.theta_hat = static_cast<double>(stats.writes) /
                      static_cast<double>(stats.requests);
  }
  return stats;
}

std::string ScheduleStats::ToString() const {
  return StrFormat(
      "requests=%lld reads=%lld writes=%lld theta_hat=%.4f "
      "longest_read_run=%lld longest_write_run=%lld alternations=%lld",
      static_cast<long long>(requests), static_cast<long long>(reads),
      static_cast<long long>(writes), theta_hat,
      static_cast<long long>(longest_read_run),
      static_cast<long long>(longest_write_run),
      static_cast<long long>(alternations));
}

}  // namespace mobrep
