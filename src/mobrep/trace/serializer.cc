#include "mobrep/trace/serializer.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace mobrep {
namespace {

bool NonDecreasing(const std::vector<double>& times) {
  for (size_t i = 1; i < times.size(); ++i) {
    if (times[i] < times[i - 1]) return false;
  }
  return true;
}

}  // namespace

Result<TimedSchedule> SerializeStreams(
    const std::vector<double>& read_times,
    const std::vector<double>& write_times) {
  if (!NonDecreasing(read_times)) {
    return InvalidArgumentError("read stream timestamps must be ordered");
  }
  if (!NonDecreasing(write_times)) {
    return InvalidArgumentError("write stream timestamps must be ordered");
  }
  TimedSchedule merged;
  merged.reserve(read_times.size() + write_times.size());
  size_t r = 0, w = 0;
  while (r < read_times.size() || w < write_times.size()) {
    const bool take_write =
        w < write_times.size() &&
        (r >= read_times.size() || write_times[w] <= read_times[r]);
    if (take_write) {
      merged.push_back({write_times[w++], Op::kWrite});
    } else {
      merged.push_back({read_times[r++], Op::kRead});
    }
  }
  return merged;
}

bool IsSerializationOf(const TimedSchedule& schedule,
                       const std::vector<double>& read_times,
                       const std::vector<double>& write_times) {
  std::vector<double> reads, writes;
  double previous = -std::numeric_limits<double>::infinity();
  for (const TimedRequest& request : schedule) {
    if (request.time < previous) return false;
    previous = request.time;
    (request.op == Op::kRead ? reads : writes).push_back(request.time);
  }
  std::vector<double> want_reads = read_times;
  std::vector<double> want_writes = write_times;
  std::sort(want_reads.begin(), want_reads.end());
  std::sort(want_writes.begin(), want_writes.end());
  return reads == want_reads && writes == want_writes;
}

}  // namespace mobrep
