#ifndef MOBREP_TRACE_TRACE_IO_H_
#define MOBREP_TRACE_TRACE_IO_H_

#include <string>
#include <string_view>

#include "mobrep/common/status.h"
#include "mobrep/core/schedule.h"

namespace mobrep {

// Plain-text trace formats, so workloads can be captured, shared and
// replayed.
//
// Untimed trace ("mobrep-trace v1"): a header line followed by lines of
// 'r'/'w' characters (any line width; '#' comments and blank lines are
// ignored).
//
// Timed trace ("mobrep-timed-trace v1"): a header line followed by one
// "<timestamp> <r|w>" pair per line; timestamps must be non-decreasing.

// Serializes to the untimed text format.
std::string SerializeSchedule(const Schedule& schedule);
// Parses the untimed text format.
Result<Schedule> DeserializeSchedule(std::string_view text);

// Serializes to the timed text format.
std::string SerializeTimedSchedule(const TimedSchedule& schedule);
// Parses the timed text format.
Result<TimedSchedule> DeserializeTimedSchedule(std::string_view text);

// File convenience wrappers.
Status SaveScheduleToFile(const std::string& path, const Schedule& schedule);
Result<Schedule> LoadScheduleFromFile(const std::string& path);
Status SaveTimedScheduleToFile(const std::string& path,
                               const TimedSchedule& schedule);
Result<TimedSchedule> LoadTimedScheduleFromFile(const std::string& path);

}  // namespace mobrep

#endif  // MOBREP_TRACE_TRACE_IO_H_
