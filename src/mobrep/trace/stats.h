#ifndef MOBREP_TRACE_STATS_H_
#define MOBREP_TRACE_STATS_H_

#include <cstdint>
#include <string>

#include "mobrep/core/schedule.h"

namespace mobrep {

// Summary statistics of a schedule; used by the CLI and by generator tests.
struct ScheduleStats {
  int64_t requests = 0;
  int64_t reads = 0;
  int64_t writes = 0;
  // Empirical write fraction (theta estimate); 0 for an empty schedule.
  double theta_hat = 0.0;
  // Longest runs of consecutive reads / writes.
  int64_t longest_read_run = 0;
  int64_t longest_write_run = 0;
  // Number of read<->write alternations.
  int64_t alternations = 0;

  std::string ToString() const;
};

ScheduleStats ComputeStats(const Schedule& schedule);

}  // namespace mobrep

#endif  // MOBREP_TRACE_STATS_H_
