#ifndef MOBREP_TRACE_SERIALIZER_H_
#define MOBREP_TRACE_SERIALIZER_H_

#include "mobrep/common/status.h"
#include "mobrep/core/schedule.h"

namespace mobrep {

// The "concurrency control mechanism" of paper §3: reads are issued at the
// mobile computer and writes at the stationary computer *concurrently*;
// before they reach the allocation layer some serializer must impose a
// single total order. This one orders by timestamp, breaking exact ties in
// favour of the stationary computer's writes (the database side commits
// first; any deterministic rule works — the paper only requires *some*
// serialization, and the analysis is order-insensitive in distribution).

// Merges a read stream (timestamps of reads at the MC) and a write stream
// (timestamps of writes at the SC) into one serialized TimedSchedule.
// Each stream must be non-decreasing; fails otherwise.
Result<TimedSchedule> SerializeStreams(const std::vector<double>& read_times,
                                       const std::vector<double>& write_times);

// Checks that `schedule` is a legal serialization of the two streams:
// same multiset of (time, op) pairs, globally non-decreasing timestamps.
bool IsSerializationOf(const TimedSchedule& schedule,
                       const std::vector<double>& read_times,
                       const std::vector<double>& write_times);

}  // namespace mobrep

#endif  // MOBREP_TRACE_SERIALIZER_H_
