#include "mobrep/trace/generators.h"

#include "mobrep/common/check.h"

namespace mobrep {

Schedule GenerateBernoulliSchedule(int64_t n, double theta, Rng* rng) {
  MOBREP_CHECK(n >= 0);
  MOBREP_CHECK(theta >= 0.0 && theta <= 1.0);
  Schedule schedule;
  schedule.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    schedule.push_back(rng->Bernoulli(theta) ? Op::kWrite : Op::kRead);
  }
  return schedule;
}

PackedSchedule GeneratePackedBernoulliSchedule(int64_t n, double theta,
                                               Rng* rng) {
  MOBREP_CHECK(n >= 0);
  MOBREP_CHECK(theta >= 0.0 && theta <= 1.0);
  PackedSchedule schedule;
  for (int64_t begin = 0; begin < n; begin += 64) {
    const int count = static_cast<int>(n - begin < 64 ? n - begin : 64);
    uint64_t word = 0;
    for (int j = 0; j < count; ++j) {
      word |= static_cast<uint64_t>(rng->Bernoulli(theta)) << j;
    }
    schedule.AppendWord(word, count);
  }
  return schedule;
}

TimedSchedule GenerateTimedPoisson(int64_t n, double lambda_r,
                                   double lambda_w, Rng* rng) {
  MOBREP_CHECK(n >= 0);
  MOBREP_CHECK(lambda_r >= 0.0 && lambda_w >= 0.0);
  MOBREP_CHECK(lambda_r + lambda_w > 0.0);
  TimedSchedule schedule;
  schedule.reserve(static_cast<size_t>(n));
  // Superposition of independent Poisson processes: exponential gaps at the
  // total rate; each arrival is a write with probability
  // lambda_w / (lambda_r + lambda_w).
  const double total = lambda_r + lambda_w;
  const double theta = lambda_w / total;
  double now = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    now += rng->Exponential(total);
    schedule.push_back(
        {now, rng->Bernoulli(theta) ? Op::kWrite : Op::kRead});
  }
  return schedule;
}

std::vector<std::pair<double, double>> GenerateOutageWindows(int count,
                                                             double span,
                                                             double duration,
                                                             Rng* rng) {
  MOBREP_CHECK(count >= 0);
  MOBREP_CHECK(duration >= 0.0 && span >= 0.0);
  std::vector<std::pair<double, double>> windows;
  if (count == 0) return windows;
  const double slot = span / count;
  MOBREP_CHECK_MSG(duration <= slot,
                   "outage windows do not fit disjointly in the span");
  windows.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double start =
        static_cast<double>(i) * slot + rng->Uniform(0.0, slot - duration);
    windows.emplace_back(start, start + duration);
  }
  return windows;
}

Schedule GeneratePeriodWorkload(int64_t periods, int64_t period_length,
                                Rng* rng) {
  MOBREP_CHECK(periods >= 0 && period_length >= 1);
  Schedule schedule;
  schedule.reserve(static_cast<size_t>(periods * period_length));
  for (int64_t p = 0; p < periods; ++p) {
    const double theta = rng->NextDouble();
    for (int64_t i = 0; i < period_length; ++i) {
      schedule.push_back(rng->Bernoulli(theta) ? Op::kWrite : Op::kRead);
    }
  }
  return schedule;
}

PackedSchedule GeneratePackedPeriodWorkload(int64_t periods,
                                            int64_t period_length, Rng* rng) {
  MOBREP_CHECK(periods >= 0 && period_length >= 1);
  PackedSchedule schedule;
  for (int64_t p = 0; p < periods; ++p) {
    const double theta = rng->NextDouble();
    for (int64_t begin = 0; begin < period_length; begin += 64) {
      const int count = static_cast<int>(
          period_length - begin < 64 ? period_length - begin : 64);
      uint64_t word = 0;
      for (int j = 0; j < count; ++j) {
        word |= static_cast<uint64_t>(rng->Bernoulli(theta)) << j;
      }
      schedule.AppendWord(word, count);
    }
  }
  return schedule;
}

BernoulliRequestStream::BernoulliRequestStream(double theta, Rng rng)
    : theta_(theta), rng_(rng) {
  MOBREP_CHECK(theta >= 0.0 && theta <= 1.0);
}

Op BernoulliRequestStream::Next() {
  return rng_.Bernoulli(theta_) ? Op::kWrite : Op::kRead;
}

void BernoulliRequestStream::NextBatch(Op* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = rng_.Bernoulli(theta_) ? Op::kWrite : Op::kRead;
  }
}

PeriodRequestStream::PeriodRequestStream(int64_t period_length, Rng rng)
    : period_length_(period_length), rng_(rng) {
  MOBREP_CHECK(period_length >= 1);
}

Op PeriodRequestStream::Next() {
  if (remaining_in_period_ == 0) {
    theta_ = rng_.NextDouble();
    remaining_in_period_ = period_length_;
  }
  --remaining_in_period_;
  return rng_.Bernoulli(theta_) ? Op::kWrite : Op::kRead;
}

void PeriodRequestStream::NextBatch(Op* out, int64_t n) {
  int64_t i = 0;
  while (i < n) {
    if (remaining_in_period_ == 0) {
      theta_ = rng_.NextDouble();
      remaining_in_period_ = period_length_;
    }
    const int64_t run =
        n - i < remaining_in_period_ ? n - i : remaining_in_period_;
    for (int64_t j = 0; j < run; ++j) {
      out[i + j] = rng_.Bernoulli(theta_) ? Op::kWrite : Op::kRead;
    }
    remaining_in_period_ -= run;
    i += run;
  }
}

}  // namespace mobrep
