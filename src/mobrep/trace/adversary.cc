#include "mobrep/trace/adversary.h"

#include <memory>

#include "mobrep/common/check.h"

namespace mobrep {

Schedule BlockSchedule(int64_t cycles, int writes_per_block,
                       int reads_per_block) {
  MOBREP_CHECK(cycles >= 0 && writes_per_block >= 0 && reads_per_block >= 0);
  Schedule schedule;
  schedule.reserve(
      static_cast<size_t>(cycles * (writes_per_block + reads_per_block)));
  for (int64_t c = 0; c < cycles; ++c) {
    for (int i = 0; i < writes_per_block; ++i) schedule.push_back(Op::kWrite);
    for (int i = 0; i < reads_per_block; ++i) schedule.push_back(Op::kRead);
  }
  return schedule;
}

Schedule UniformSchedule(int64_t n, Op op) {
  MOBREP_CHECK(n >= 0);
  return Schedule(static_cast<size_t>(n), op);
}

Schedule AlternatingSchedule(int64_t n) {
  MOBREP_CHECK(n >= 0);
  Schedule schedule;
  schedule.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    schedule.push_back(i % 2 == 0 ? Op::kWrite : Op::kRead);
  }
  return schedule;
}

Schedule CruelSchedule(const AllocationPolicy& prototype, int64_t n) {
  MOBREP_CHECK(n >= 0);
  std::unique_ptr<AllocationPolicy> policy = prototype.Clone();
  policy->Reset();
  Schedule schedule;
  schedule.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    // Hurt the policy: make it pay for a remote read when it lacks the
    // copy, for a propagation/invalidation when it holds one.
    const Op op = policy->has_copy() ? Op::kWrite : Op::kRead;
    policy->OnRequest(op);
    schedule.push_back(op);
  }
  return schedule;
}

void ForEachSchedule(int length,
                     const std::function<void(const Schedule&)>& fn) {
  MOBREP_CHECK(length >= 0 && length <= 30);
  Schedule schedule(static_cast<size_t>(length), Op::kRead);
  const uint64_t count = uint64_t{1} << length;
  for (uint64_t bits = 0; bits < count; ++bits) {
    for (int i = 0; i < length; ++i) {
      schedule[static_cast<size_t>(i)] =
          ((bits >> i) & 1) != 0 ? Op::kWrite : Op::kRead;
    }
    fn(schedule);
  }
}

}  // namespace mobrep
