#include "mobrep/trace/trace_io.h"

#include <cstdio>
#include <string>
#include <vector>

#include "mobrep/common/strings.h"

namespace mobrep {
namespace {

constexpr std::string_view kScheduleHeader = "mobrep-trace v1";
constexpr std::string_view kTimedHeader = "mobrep-timed-trace v1";
constexpr size_t kLineWidth = 64;

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return NotFoundError(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::string contents;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, n);
  }
  const bool had_error = std::ferror(file) != 0;
  std::fclose(file);
  if (had_error) {
    return DataLossError(StrFormat("error reading '%s'", path.c_str()));
  }
  return contents;
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return InvalidArgumentError(
        StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), file);
  const bool ok = written == contents.size() && std::fclose(file) == 0;
  if (!ok) {
    return DataLossError(StrFormat("error writing '%s'", path.c_str()));
  }
  return OkStatus();
}

// Returns the payload lines (header verified and stripped; comments and
// blank lines removed).
Result<std::vector<std::string>> PayloadLines(std::string_view text,
                                              std::string_view header) {
  std::vector<std::string> lines = StrSplit(text, '\n');
  std::vector<std::string> payload;
  bool saw_header = false;
  for (const std::string& raw : lines) {
    const std::string_view line = StripWhitespace(raw);
    if (line.empty() || line.front() == '#') continue;
    if (!saw_header) {
      if (line != header) {
        return InvalidArgumentError(StrFormat(
            "bad trace header: expected '%s', got '%s'",
            std::string(header).c_str(), std::string(line).c_str()));
      }
      saw_header = true;
      continue;
    }
    payload.emplace_back(line);
  }
  if (!saw_header) {
    return InvalidArgumentError("empty trace: missing header line");
  }
  return payload;
}

}  // namespace

std::string SerializeSchedule(const Schedule& schedule) {
  std::string out(kScheduleHeader);
  out += '\n';
  for (size_t i = 0; i < schedule.size(); ++i) {
    if (i > 0 && i % kLineWidth == 0) out += '\n';
    out += OpToChar(schedule[i]);
  }
  if (!schedule.empty()) out += '\n';
  return out;
}

Result<Schedule> DeserializeSchedule(std::string_view text) {
  auto payload = PayloadLines(text, kScheduleHeader);
  if (!payload.ok()) return payload.status();
  Schedule schedule;
  for (const std::string& line : *payload) {
    auto part = ScheduleFromString(line);
    if (!part.ok()) return part.status();
    schedule.insert(schedule.end(), part->begin(), part->end());
  }
  return schedule;
}

std::string SerializeTimedSchedule(const TimedSchedule& schedule) {
  std::string out(kTimedHeader);
  out += '\n';
  for (const TimedRequest& request : schedule) {
    out += StrFormat("%.9f %c\n", request.time, OpToChar(request.op));
  }
  return out;
}

Result<TimedSchedule> DeserializeTimedSchedule(std::string_view text) {
  auto payload = PayloadLines(text, kTimedHeader);
  if (!payload.ok()) return payload.status();
  TimedSchedule schedule;
  double previous = -1.0;
  for (const std::string& line : *payload) {
    const std::vector<std::string> fields = StrSplit(line, ' ');
    std::vector<std::string> nonempty;
    for (const auto& f : fields) {
      if (!StripWhitespace(f).empty()) nonempty.push_back(f);
    }
    if (nonempty.size() != 2) {
      return InvalidArgumentError(
          StrFormat("bad timed trace line '%s'", line.c_str()));
    }
    const auto time = ParseDouble(nonempty[0]);
    auto ops = ScheduleFromString(nonempty[1]);
    if (!time.has_value() || !ops.ok() || ops->size() != 1) {
      return InvalidArgumentError(
          StrFormat("bad timed trace line '%s'", line.c_str()));
    }
    if (*time < previous) {
      return InvalidArgumentError(
          StrFormat("timestamps must be non-decreasing at line '%s'",
                    line.c_str()));
    }
    previous = *time;
    schedule.push_back({*time, ops->front()});
  }
  return schedule;
}

Status SaveScheduleToFile(const std::string& path, const Schedule& schedule) {
  return WriteStringToFile(path, SerializeSchedule(schedule));
}

Result<Schedule> LoadScheduleFromFile(const std::string& path) {
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  return DeserializeSchedule(*contents);
}

Status SaveTimedScheduleToFile(const std::string& path,
                               const TimedSchedule& schedule) {
  return WriteStringToFile(path, SerializeTimedSchedule(schedule));
}

Result<TimedSchedule> LoadTimedScheduleFromFile(const std::string& path) {
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  return DeserializeTimedSchedule(*contents);
}

}  // namespace mobrep
