#ifndef MOBREP_MOBREP_H_
#define MOBREP_MOBREP_H_

// Umbrella header: the whole public API of the MobRep library, a complete
// implementation of Huang, Sistla, Wolfson, "Data Replication for Mobile
// Computers" (SIGMOD 1994). Include individual headers in code that cares
// about compile times; include this in exploratory code.

// Runtime basics.
#include "mobrep/common/math.h"
#include "mobrep/common/random.h"
#include "mobrep/common/status.h"
#include "mobrep/common/strings.h"

// Observability: metrics registry, structured event tracing, exporters.
#include "mobrep/obs/metrics.h"
#include "mobrep/obs/trace.h"
#include "mobrep/obs/trace_export.h"

// The single-item allocation algorithms and cost models.
#include "mobrep/core/cost_model.h"
#include "mobrep/core/cost_simulator.h"
#include "mobrep/core/offline_optimal.h"
#include "mobrep/core/policy.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/core/schedule.h"
#include "mobrep/core/sliding_window_policy.h"
#include "mobrep/core/static_policies.h"
#include "mobrep/core/threshold_policies.h"
#include "mobrep/core/window_tracker.h"

// Closed-form analysis (the paper's equations and theorems).
#include "mobrep/analysis/advisor.h"
#include "mobrep/analysis/average_cost.h"
#include "mobrep/analysis/competitive.h"
#include "mobrep/analysis/dominance.h"
#include "mobrep/analysis/expected_cost.h"
#include "mobrep/analysis/markov_oracle.h"
#include "mobrep/analysis/thresholds.h"
#include "mobrep/analysis/transient.h"

// Workloads and traces.
#include "mobrep/trace/adversary.h"
#include "mobrep/trace/generators.h"
#include "mobrep/trace/serializer.h"
#include "mobrep/trace/stats.h"
#include "mobrep/trace/trace_io.h"

// The distributed protocol and its substrates.
#include "mobrep/net/channel.h"
#include "mobrep/net/event_queue.h"
#include "mobrep/net/message.h"
#include "mobrep/net/wire_format.h"
#include "mobrep/protocol/mobile_client.h"
#include "mobrep/protocol/multi_client_sim.h"
#include "mobrep/protocol/multi_item_sim.h"
#include "mobrep/protocol/protocol_sim.h"
#include "mobrep/protocol/stationary_server.h"
#include "mobrep/store/replica_cache.h"
#include "mobrep/store/versioned_store.h"
#include "mobrep/store/write_ahead_log.h"

// Cellular mobility.
#include "mobrep/mobility/cellular.h"
#include "mobrep/mobility/mobility_model.h"
#include "mobrep/mobility/roaming_sim.h"

// Multi-item and multi-object layers.
#include "mobrep/manager/replication_manager.h"
#include "mobrep/multi/dynamic_allocator.h"
#include "mobrep/multi/joint_workload.h"
#include "mobrep/multi/static_allocator.h"

#endif  // MOBREP_MOBREP_H_
