#ifndef MOBREP_RUNNER_THREAD_POOL_H_
#define MOBREP_RUNNER_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mobrep {

// Number of worker threads sweeps should use: the MOBREP_THREADS
// environment variable if set (clamped to [1, 256]), otherwise
// std::thread::hardware_concurrency().
int DefaultSweepThreads();

// Work-stealing thread pool for embarrassingly parallel index ranges.
//
// The pool exists purely for wall-clock: correctness never depends on it.
// Callers hand ParallelFor a pure-by-index body; the range is split into
// contiguous chunks dealt round-robin to per-worker deques, each worker
// drains its own deque LIFO and steals FIFO from its neighbours when it
// runs dry. Because every unit of work is identified by its index and
// writes only to its own slot of the caller's output, the schedule (and
// hence the thread count) can never change a result — see
// parallel_sweep.h for the determinism contract built on top.
//
// A pool with num_threads == 1 spawns no threads at all; ParallelFor then
// runs the body inline on the calling thread in index order.
class ThreadPool {
 public:
  // num_threads >= 1. The calling thread participates in ParallelFor, so
  // num_threads includes it: a pool of N spawns N-1 workers.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Invokes body(i) exactly once for every i in [0, n). Blocks until all
  // invocations finish. The body must not recursively call ParallelFor on
  // the same pool.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& body);

  // Process-wide pool sized by DefaultSweepThreads(), created on first use.
  static ThreadPool* Default();

 private:
  struct Chunk {
    int64_t begin = 0;
    int64_t end = 0;
    uint64_t epoch = 0;  // job this chunk belongs to; must match epoch_
  };
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Chunk> chunks;
  };

  void WorkerLoop(int worker);
  // Runs chunks, preferring worker `self`'s queue and stealing otherwise.
  // Returns when no queue holds work.
  void DrainChunks(int self);
  bool PopOwn(int self, Chunk* out);
  bool StealFrom(int victim, Chunk* out);

  const int num_threads_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const std::function<void(int64_t)>* body_ = nullptr;  // active job
  int64_t pending_ = 0;  // indices not yet completed in the active job
  uint64_t epoch_ = 0;   // bumped per job so sleeping workers wake once
  bool shutdown_ = false;
};

}  // namespace mobrep

#endif  // MOBREP_RUNNER_THREAD_POOL_H_
