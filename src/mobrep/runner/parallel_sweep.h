#ifndef MOBREP_RUNNER_PARALLEL_SWEEP_H_
#define MOBREP_RUNNER_PARALLEL_SWEEP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "mobrep/common/random.h"
#include "mobrep/runner/thread_pool.h"

namespace mobrep {

// Deterministic parallel sweeps over experiment grids.
//
// The determinism contract (see DESIGN.md §7): every cell of a sweep forks
// its own RNG stream as a pure function of (seed, cell_index) via
// SweepCellRng, writes only to its own output slot, and all cross-cell
// reduction happens serially in cell order after the parallel region. A
// sweep therefore produces bit-identical results at every thread count,
// including 1 — there is no shared RNG to race on and no
// scheduling-dependent floating-point reduction order.

// The per-cell RNG stream: a pure function of (seed, cell). Implemented by
// driving the cell index through SplitMix64 twice with distinct odd
// multipliers so that neighbouring cells and neighbouring seeds land in
// unrelated xoshiro states.
Rng SweepCellRng(uint64_t seed, uint64_t cell);

// How a sweep runs. threads == 0 means DefaultSweepThreads(); threads == 1
// runs inline on the calling thread with no pool at all.
struct SweepOptions {
  int threads = 0;
  uint64_t seed = 42;
};

// Resolves options.threads and runs body(i) for every i in [0, n) on the
// shared default pool (or inline). The body must be safe to call
// concurrently for distinct indices.
void SweepParallelFor(int64_t n, const SweepOptions& options,
                      const std::function<void(int64_t)>& body);

// Evaluates fn(cell, rng) for every cell in [0, cells) with
// rng = SweepCellRng(options.seed, cell), in parallel, and returns the
// results in cell order. T must be default-constructible.
template <typename T>
std::vector<T> ParallelSweep(int64_t cells,
                             const std::function<T(int64_t, Rng&)>& fn,
                             const SweepOptions& options = {}) {
  std::vector<T> results(static_cast<size_t>(cells));
  SweepParallelFor(cells, options, [&](int64_t cell) {
    Rng rng = SweepCellRng(options.seed, static_cast<uint64_t>(cell));
    results[static_cast<size_t>(cell)] = fn(cell, rng);
  });
  return results;
}

// Deterministic Monte-Carlo aggregate: `replicates` independent runs of
// fn(replicate, rng), each on its own (seed, replicate) stream, reduced
// serially in replicate order (Welford), so mean and std_error are
// bit-identical at every thread count.
struct MonteCarloResult {
  int64_t replicates = 0;
  double mean = 0.0;
  double std_error = 0.0;
  std::vector<double> values;  // per-replicate results, replicate order
};

MonteCarloResult ParallelMonteCarlo(
    int64_t replicates, const std::function<double(int64_t, Rng&)>& fn,
    const SweepOptions& options = {});

}  // namespace mobrep

#endif  // MOBREP_RUNNER_PARALLEL_SWEEP_H_
