#include "mobrep/runner/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "mobrep/common/check.h"
#include "mobrep/common/strings.h"
#include "mobrep/obs/metrics.h"

namespace mobrep {
namespace {

// Pool-wide stats in the global metrics registry. Registered once, then
// incremented lock-free through cached handles; per-chunk (not per-index)
// increments keep the hot loop untouched.
obs::Counter* ChunksExecutedCell() {
  static obs::Counter* cell = obs::MetricsRegistry::Global()->GetCounter(
      "runner.chunks_executed", "work chunks drained by pool workers");
  return cell;
}

obs::Counter* ChunksStolenCell() {
  static obs::Counter* cell = obs::MetricsRegistry::Global()->GetCounter(
      "runner.chunks_stolen", "chunks taken from another worker's queue");
  return cell;
}

obs::Counter* ParallelForJobsCell() {
  static obs::Counter* cell = obs::MetricsRegistry::Global()->GetCounter(
      "runner.parallel_for_jobs", "ParallelFor invocations (pooled path)");
  return cell;
}

}  // namespace

int DefaultSweepThreads() {
  if (const char* env = std::getenv("MOBREP_THREADS")) {
    const auto parsed = ParseInt64(env);
    if (parsed.has_value() && *parsed >= 1) {
      return static_cast<int>(std::min<int64_t>(*parsed, 256));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  MOBREP_CHECK_MSG(num_threads >= 1, "a pool needs at least one thread");
  queues_.reserve(static_cast<size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::PopOwn(int self, Chunk* out) {
  WorkerQueue& q = *queues_[static_cast<size_t>(self)];
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.chunks.empty()) return false;
  *out = q.chunks.back();  // LIFO on the owner's side: warm caches
  q.chunks.pop_back();
  return true;
}

bool ThreadPool::StealFrom(int victim, Chunk* out) {
  WorkerQueue& q = *queues_[static_cast<size_t>(victim)];
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.chunks.empty()) return false;
  *out = q.chunks.front();  // FIFO on the thief's side: big, cold chunks
  q.chunks.pop_front();
  ChunksStolenCell()->Increment();
  return true;
}

void ThreadPool::DrainChunks(int self) {
  for (;;) {
    Chunk chunk;
    bool found = PopOwn(self, &chunk);
    for (int step = 1; !found && step < num_threads_; ++step) {
      found = StealFrom((self + step) % num_threads_, &chunk);
    }
    if (!found) return;
    // Re-read the job under mu_ for every chunk, never across chunks: a
    // worker preempted in the steal loop above can resume after the rest
    // of the job finished, the caller returned from ParallelFor, and the
    // NEXT job was enqueued — a body pointer cached before the preemption
    // would then dangle while this worker runs the new job's chunks.
    // A popped chunk always belongs to the live job (a job's chunks are
    // all executed before its pending_ hits zero, and only then can the
    // next ParallelFor start), so a mismatched epoch is a pool bug.
    const std::function<void(int64_t)>* body;
    {
      std::lock_guard<std::mutex> lock(mu_);
      MOBREP_CHECK_MSG(chunk.epoch == epoch_ && body_ != nullptr,
                       "popped a chunk from a retired job");
      body = body_;
    }
    // body stays valid while this chunk is unaccounted: pending_ > 0
    // keeps the owning ParallelFor blocked on work_done_.
    for (int64_t i = chunk.begin; i < chunk.end; ++i) (*body)(i);
    ChunksExecutedCell()->Increment();
    std::lock_guard<std::mutex> lock(mu_);
    pending_ -= chunk.end - chunk.begin;
    if (pending_ == 0) work_done_.notify_all();
  }
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] {
        return shutdown_ || (body_ != nullptr && epoch_ != seen_epoch);
      });
      if (shutdown_) return;
      seen_epoch = epoch_;
    }
    DrainChunks(worker);
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& body) {
  MOBREP_CHECK(n >= 0);
  if (n == 0) return;
  if (num_threads_ == 1) {
    for (int64_t i = 0; i < n; ++i) body(i);
    return;
  }
  ParallelForJobsCell()->Increment();
  // Chunk so each worker has a handful of steal targets without paying a
  // lock per index: at most 8 chunks per worker, at least 1 index each.
  const int64_t target_chunks =
      std::min<int64_t>(n, static_cast<int64_t>(num_threads_) * 8);
  const int64_t chunk_size = (n + target_chunks - 1) / target_chunks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    MOBREP_CHECK_MSG(body_ == nullptr,
                     "ParallelFor must not be nested on one pool");
    ++epoch_;
    int worker = 0;
    for (int64_t begin = 0; begin < n; begin += chunk_size) {
      const Chunk chunk{begin, std::min(begin + chunk_size, n), epoch_};
      WorkerQueue& q = *queues_[static_cast<size_t>(worker)];
      std::lock_guard<std::mutex> qlock(q.mu);
      q.chunks.push_back(chunk);
      worker = (worker + 1) % num_threads_;
    }
    body_ = &body;
    pending_ = n;
  }
  work_ready_.notify_all();
  DrainChunks(/*self=*/0);
  {
    std::unique_lock<std::mutex> lock(mu_);
    work_done_.wait(lock, [&] { return pending_ == 0; });
    body_ = nullptr;
  }
}

ThreadPool* ThreadPool::Default() {
  static ThreadPool* pool = [] {
    auto* p = new ThreadPool(DefaultSweepThreads());
    obs::MetricsRegistry::Global()
        ->GetGauge("runner.default_pool_width", "threads in the shared pool")
        ->Set(static_cast<double>(p->num_threads()));
    return p;
  }();
  return pool;
}

}  // namespace mobrep
