#include "mobrep/runner/parallel_sweep.h"

#include <memory>
#include <mutex>
#include <unordered_map>

#include "mobrep/common/check.h"
#include "mobrep/common/math.h"
#include "mobrep/obs/trace.h"

namespace mobrep {
namespace {

// Pools for pinned non-default widths, built once per width and kept for
// the life of the process. An idle pool costs only sleeping threads, while
// constructing one costs thread spawns — callers that pin a width inside a
// loop (scaling benches sweep 1/2/4/8) must not pay that per sweep.
ThreadPool* PoolForWidth(int threads) {
  static std::mutex mu;
  static auto* pools =
      new std::unordered_map<int, std::unique_ptr<ThreadPool>>();
  std::lock_guard<std::mutex> lock(mu);
  auto& pool = (*pools)[threads];
  if (pool == nullptr) pool = std::make_unique<ThreadPool>(threads);
  return pool.get();
}

}  // namespace

Rng SweepCellRng(uint64_t seed, uint64_t cell) {
  // Two SplitMix64 passes over an odd-multiplier combination of seed and
  // cell. A single xor of the raw values would make cell 0 collide across
  // seeds (and vice versa); mixing first decorrelates both axes. The Rng
  // constructor itself runs SplitMix64 once more to fill the xoshiro state.
  SplitMix64 mixer(seed * 0x9e3779b97f4a7c15ULL ^
                   cell * 0xd1b54a32d192ed03ULL);
  const uint64_t a = mixer.Next();
  const uint64_t b = mixer.Next();
  return Rng(a ^ (b + cell));
}

void SweepParallelFor(int64_t n, const SweepOptions& options,
                      const std::function<void(int64_t)>& body) {
  MOBREP_CHECK(options.threads >= 0);
  const int threads = options.threads == 0 ? DefaultSweepThreads()
                                           : options.threads;

  // When tracing is on, every cell runs inside its own TraceScope: the
  // sweep reserves one scope id per cell up front (sweeps launch serially,
  // so the reservation order — and hence every cell's scope id — does not
  // depend on the thread count), and the cell's events are bracketed by
  // begin/end markers. The merged (scope, seq)-sorted stream is therefore
  // identical at every MOBREP_THREADS.
  const std::function<void(int64_t)>* run = &body;
  std::function<void(int64_t)> traced;
  if (obs::TracingEnabled() && n > 0) {
    const int64_t base_scope = obs::TraceRecorder::Global()->ReserveScopes(n);
    traced = [&body, base_scope](int64_t i) {
      obs::TraceScope scope(base_scope + i);
      MOBREP_TRACE_EVENT(obs::TraceEventKind::kSweepCellBegin, "sweep",
                         static_cast<double>(i), i);
      body(i);
      MOBREP_TRACE_EVENT(obs::TraceEventKind::kSweepCellEnd, "sweep",
                         static_cast<double>(i), i);
    };
    run = &traced;
  }

  if (threads == 1) {
    for (int64_t i = 0; i < n; ++i) (*run)(i);
    return;
  }
  ThreadPool* pool = ThreadPool::Default();
  if (pool->num_threads() != threads) pool = PoolForWidth(threads);
  pool->ParallelFor(n, *run);
}

MonteCarloResult ParallelMonteCarlo(
    int64_t replicates, const std::function<double(int64_t, Rng&)>& fn,
    const SweepOptions& options) {
  MonteCarloResult result;
  result.replicates = replicates;
  result.values = ParallelSweep<double>(replicates, fn, options);
  RunningStat stat;
  for (const double value : result.values) stat.Add(value);
  result.mean = stat.mean();
  result.std_error = stat.std_error();
  return result;
}

}  // namespace mobrep
