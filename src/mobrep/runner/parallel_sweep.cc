#include "mobrep/runner/parallel_sweep.h"

#include <memory>
#include <mutex>
#include <unordered_map>

#include "mobrep/common/check.h"
#include "mobrep/common/math.h"

namespace mobrep {
namespace {

// Pools for pinned non-default widths, built once per width and kept for
// the life of the process. An idle pool costs only sleeping threads, while
// constructing one costs thread spawns — callers that pin a width inside a
// loop (scaling benches sweep 1/2/4/8) must not pay that per sweep.
ThreadPool* PoolForWidth(int threads) {
  static std::mutex mu;
  static auto* pools =
      new std::unordered_map<int, std::unique_ptr<ThreadPool>>();
  std::lock_guard<std::mutex> lock(mu);
  auto& pool = (*pools)[threads];
  if (pool == nullptr) pool = std::make_unique<ThreadPool>(threads);
  return pool.get();
}

}  // namespace

Rng SweepCellRng(uint64_t seed, uint64_t cell) {
  // Two SplitMix64 passes over an odd-multiplier combination of seed and
  // cell. A single xor of the raw values would make cell 0 collide across
  // seeds (and vice versa); mixing first decorrelates both axes. The Rng
  // constructor itself runs SplitMix64 once more to fill the xoshiro state.
  SplitMix64 mixer(seed * 0x9e3779b97f4a7c15ULL ^
                   cell * 0xd1b54a32d192ed03ULL);
  const uint64_t a = mixer.Next();
  const uint64_t b = mixer.Next();
  return Rng(a ^ (b + cell));
}

void SweepParallelFor(int64_t n, const SweepOptions& options,
                      const std::function<void(int64_t)>& body) {
  MOBREP_CHECK(options.threads >= 0);
  const int threads = options.threads == 0 ? DefaultSweepThreads()
                                           : options.threads;
  if (threads == 1) {
    for (int64_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool* pool = ThreadPool::Default();
  if (pool->num_threads() != threads) pool = PoolForWidth(threads);
  pool->ParallelFor(n, body);
}

MonteCarloResult ParallelMonteCarlo(
    int64_t replicates, const std::function<double(int64_t, Rng&)>& fn,
    const SweepOptions& options) {
  MonteCarloResult result;
  result.replicates = replicates;
  result.values = ParallelSweep<double>(replicates, fn, options);
  RunningStat stat;
  for (const double value : result.values) stat.Add(value);
  result.mean = stat.mean();
  result.std_error = stat.std_error();
  return result;
}

}  // namespace mobrep
