#ifndef MOBREP_STORE_VERSIONED_STORE_H_
#define MOBREP_STORE_VERSIONED_STORE_H_

#include <cstdint>
#include <map>
#include <string>

#include "mobrep/common/status.h"

namespace mobrep {

// A value together with its monotonically increasing version number.
struct VersionedValue {
  std::string value;
  uint64_t version = 0;

  friend bool operator==(const VersionedValue& a, const VersionedValue& b) {
    return a.version == b.version && a.value == b.value;
  }
};

// The "online database" at the stationary computer: an in-memory versioned
// key-value store. Every Put bumps the item's version; versions let the
// replica layer detect stale or out-of-order update propagation.
//
// Single-threaded by design: the paper assumes relevant requests are
// serialized by a concurrency-control mechanism before they reach the
// allocation layer (§3), and the discrete-event simulator provides exactly
// that serialization.
class VersionedStore {
 public:
  VersionedStore() = default;

  // Inserts or overwrites; returns the new version (1 for a fresh key).
  uint64_t Put(const std::string& key, std::string value);

  // Current value, or NotFoundError.
  Result<VersionedValue> Get(const std::string& key) const;

  bool Contains(const std::string& key) const;
  size_t size() const { return items_.size(); }

 private:
  std::map<std::string, VersionedValue> items_;
};

}  // namespace mobrep

#endif  // MOBREP_STORE_VERSIONED_STORE_H_
