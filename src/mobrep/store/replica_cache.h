#ifndef MOBREP_STORE_REPLICA_CACHE_H_
#define MOBREP_STORE_REPLICA_CACHE_H_

#include <map>
#include <string>

#include "mobrep/common/status.h"
#include "mobrep/store/versioned_store.h"

namespace mobrep {

// The mobile computer's local database: the set of items the MC currently
// subscribes to (two-copies scheme), with their replicated values.
//
// The paper assumes storage at the MC is abundant (§8.2), so the cache has
// no capacity limit or replacement policy: items leave only by explicit
// deallocation.
class ReplicaCache {
 public:
  ReplicaCache() = default;

  // Installs a replica (allocation). Overwrites any existing entry.
  void Install(const std::string& key, VersionedValue value);

  // Drops the replica (deallocation). NotFoundError if absent.
  Status Evict(const std::string& key);

  // Applies a propagated update. Fails with FailedPreconditionError when
  // the item is not subscribed and with DataLossError when the update would
  // move the version backwards or — unless `allow_gaps` — skip versions
  // (FIFO channel violation). Gaps are legitimate when the SC collapses
  // queued propagation during a link outage (last-writer-wins): the MC
  // then jumps straight to the latest committed version.
  Status ApplyUpdate(const std::string& key, const VersionedValue& value,
                     bool allow_gaps = false);

  // Local read. NotFoundError if the item is not replicated.
  Result<VersionedValue> Get(const std::string& key) const;

  bool Contains(const std::string& key) const;
  size_t size() const { return items_.size(); }

 private:
  std::map<std::string, VersionedValue> items_;
};

}  // namespace mobrep

#endif  // MOBREP_STORE_REPLICA_CACHE_H_
