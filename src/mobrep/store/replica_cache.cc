#include "mobrep/store/replica_cache.h"

#include <string>
#include <utility>

#include "mobrep/common/strings.h"

namespace mobrep {

void ReplicaCache::Install(const std::string& key, VersionedValue value) {
  items_[key] = std::move(value);
}

Status ReplicaCache::Evict(const std::string& key) {
  if (items_.erase(key) == 0) {
    return NotFoundError(
        StrFormat("cannot evict '%s': not replicated", key.c_str()));
  }
  return OkStatus();
}

Status ReplicaCache::ApplyUpdate(const std::string& key,
                                 const VersionedValue& value,
                                 bool allow_gaps) {
  const auto it = items_.find(key);
  if (it == items_.end()) {
    return FailedPreconditionError(StrFormat(
        "update for '%s' arrived without a subscription", key.c_str()));
  }
  const bool acceptable = allow_gaps
                              ? value.version > it->second.version
                              : value.version == it->second.version + 1;
  if (!acceptable) {
    return DataLossError(StrFormat(
        "out-of-order update for '%s': replica at v%llu, update v%llu",
        key.c_str(), static_cast<unsigned long long>(it->second.version),
        static_cast<unsigned long long>(value.version)));
  }
  it->second = value;
  return OkStatus();
}

Result<VersionedValue> ReplicaCache::Get(const std::string& key) const {
  const auto it = items_.find(key);
  if (it == items_.end()) {
    return NotFoundError(
        StrFormat("'%s' is not replicated at the MC", key.c_str()));
  }
  return it->second;
}

bool ReplicaCache::Contains(const std::string& key) const {
  return items_.find(key) != items_.end();
}

}  // namespace mobrep
