#include "mobrep/store/write_ahead_log.h"

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include <unistd.h>

#include "mobrep/common/strings.h"
#include "mobrep/obs/trace.h"

namespace mobrep {
namespace {

// FNV-1a 64: the record checksum. Not cryptographic — it guards against
// torn writes that still parse and against bit rot, not an adversary.
uint64_t Fnv1a64(const char* data, size_t n) {
  uint64_t hash = 14695981039346656037ULL;
  for (size_t i = 0; i < n; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string ChecksumSuffix(const std::string& body) {
  return StrFormat(" @%016llx\n", static_cast<unsigned long long>(
                                      Fnv1a64(body.data(), body.size())));
}

// Sequential parser over the raw log bytes. Length-prefixed fields make
// arbitrary key/value bytes (spaces, newlines) unambiguous.
struct LogCursor {
  const char* pos;
  const char* end;

  bool AtEnd() const { return pos >= end; }

  // Consumes `literal`; false if the remaining bytes do not match.
  bool Literal(const char* literal) {
    const size_t n = std::strlen(literal);
    if (static_cast<size_t>(end - pos) < n) return false;
    if (std::memcmp(pos, literal, n) != 0) return false;
    pos += n;
    return true;
  }

  // Consumes a non-negative decimal integer followed by `delimiter`.
  bool Number(char delimiter, uint64_t* out) {
    uint64_t value = 0;
    const char* start = pos;
    while (pos < end && *pos >= '0' && *pos <= '9') {
      value = value * 10 + static_cast<uint64_t>(*pos - '0');
      ++pos;
    }
    if (pos == start || pos >= end || *pos != delimiter) return false;
    ++pos;
    *out = value;
    return true;
  }

  // Consumes exactly `n` bytes.
  bool Bytes(uint64_t n, std::string* out) {
    if (static_cast<uint64_t>(end - pos) < n) return false;
    out->assign(pos, static_cast<size_t>(n));
    pos += n;
    return true;
  }

  // Consumes 16 lowercase hex digits.
  bool Hex16(uint64_t* out) {
    if (static_cast<size_t>(end - pos) < 16) return false;
    uint64_t value = 0;
    for (int i = 0; i < 16; ++i) {
      const char c = pos[i];
      if (c >= '0' && c <= '9') {
        value = value << 4 | static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value = value << 4 | static_cast<uint64_t>(c - 'a' + 10);
      } else {
        return false;
      }
    }
    pos += 16;
    *out = value;
    return true;
  }
};

// Outcome of parsing one record's checksum suffix.
enum class TailParse { kOk, kTorn, kChecksumMismatch };

// Parses the " @<crc>\n" suffix and verifies it against [body_begin,
// body_end). `legacy_ok` accepts a bare "\n" (pre-checksum PUT records).
TailParse ParseChecksumTail(LogCursor* cursor, const char* body_begin,
                            const char* body_end, bool legacy_ok) {
  if (legacy_ok && cursor->Literal("\n")) return TailParse::kOk;
  uint64_t crc = 0;
  if (!cursor->Literal(" @") || !cursor->Hex16(&crc) ||
      !cursor->Literal("\n")) {
    return TailParse::kTorn;
  }
  if (crc != Fnv1a64(body_begin, static_cast<size_t>(body_end - body_begin))) {
    return TailParse::kChecksumMismatch;
  }
  return TailParse::kOk;
}

}  // namespace

const char* WalCrashPhaseName(WalCrashPhase phase) {
  switch (phase) {
    case WalCrashPhase::kBeforeAppend:
      return "before";
    case WalCrashPhase::kTornAppend:
      return "torn";
    case WalCrashPhase::kAfterAppend:
      return "after";
  }
  return "unknown";
}

std::string RecoveryReport::Summary() const {
  return StrFormat(
      "replayed %lld puts and %lld snapshots%s%s",
      static_cast<long long>(puts_replayed),
      static_cast<long long>(snapshots_replayed),
      bytes_truncated > 0
          ? StrFormat("; truncated %lld tail bytes",
                      static_cast<long long>(bytes_truncated))
                .c_str()
          : "",
      checksum_failures > 0
          ? StrFormat("; stopped at %lld checksum failure(s)",
                      static_cast<long long>(checksum_failures))
                .c_str()
          : "");
}

WriteAheadLog::WriteAheadLog(std::string path, std::FILE* file,
                             WalOptions options)
    : path_(std::move(path)), file_(file), options_(options) {}

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept
    : path_(std::move(other.path_)),
      file_(other.file_),
      options_(other.options_),
      crash_hook_(std::move(other.crash_hook_)),
      appends_(other.appends_),
      syncs_(other.syncs_) {
  other.file_ = nullptr;
}

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& other) noexcept {
  if (this != &other) {
    Close();
    path_ = std::move(other.path_);
    file_ = other.file_;
    options_ = other.options_;
    crash_hook_ = std::move(other.crash_hook_);
    appends_ = other.appends_;
    syncs_ = other.syncs_;
    other.file_ = nullptr;
  }
  return *this;
}

WriteAheadLog::~WriteAheadLog() { Close(); }

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path) {
  return Open(path, WalOptions{});
}

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path,
                                          const WalOptions& options) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return InvalidArgumentError(
        StrFormat("cannot open log '%s' for append", path.c_str()));
  }
  return WriteAheadLog(path, file, options);
}

Status WriteAheadLog::AppendRecord(std::string record, const char* what) {
  if (file_ == nullptr) {
    return FailedPreconditionError("log is closed");
  }
  if (crash_hook_ != nullptr) {
    // Crash-point choreography: with a hook installed the record is
    // written in two halves so the kTornAppend phase, if it throws, really
    // leaves a flushed torn prefix for recovery to truncate. The final
    // bytes are identical to the single-write path.
    crash_hook_(WalCrashPhase::kBeforeAppend, what);
    const size_t half = record.size() / 2;
    if (std::fwrite(record.data(), 1, half, file_) != half ||
        std::fflush(file_) != 0) {
      return DataLossError(StrFormat("short write to '%s'", path_.c_str()));
    }
    crash_hook_(WalCrashPhase::kTornAppend, what);
    if (std::fwrite(record.data() + half, 1, record.size() - half, file_) !=
            record.size() - half ||
        std::fflush(file_) != 0) {
      return DataLossError(StrFormat("short write to '%s'", path_.c_str()));
    }
    ++appends_;
    crash_hook_(WalCrashPhase::kAfterAppend, what);
  } else {
    if (std::fwrite(record.data(), 1, record.size(), file_) !=
        record.size()) {
      return DataLossError(StrFormat("short write to '%s'", path_.c_str()));
    }
    if (std::fflush(file_) != 0) {
      return DataLossError(StrFormat("flush failed on '%s'", path_.c_str()));
    }
    ++appends_;
  }
  if (options_.sync_each_append) return Sync();
  return OkStatus();
}

Status WriteAheadLog::AppendPut(const std::string& key,
                                const VersionedValue& value) {
  // Built by concatenation rather than one printf so that keys and values
  // with embedded NULs or newlines stay intact (lengths disambiguate).
  std::string record = "PUT ";
  record += StrFormat("%llu ", static_cast<unsigned long long>(value.version));
  record += StrFormat("%zu:", key.size());
  record += key;
  record += StrFormat(" %zu:", value.value.size());
  record += value.value;
  record += ChecksumSuffix(record);
  const Status appended = AppendRecord(std::move(record), "put");
  if (!appended.ok()) return appended;
  MOBREP_TRACE_EVENT(obs::TraceEventKind::kWalAppend, path_.c_str(),
                     static_cast<double>(appends_),
                     static_cast<int64_t>(value.version), appends_);
  return OkStatus();
}

Status WriteAheadLog::AppendSnapshot(const std::string& payload) {
  std::string record = "SNAP ";
  record += StrFormat("%zu:", payload.size());
  record += payload;
  record += ChecksumSuffix(record);
  const Status appended = AppendRecord(std::move(record), "snap");
  if (!appended.ok()) return appended;
  MOBREP_TRACE_EVENT(obs::TraceEventKind::kWalSnapshot, path_.c_str(),
                     static_cast<double>(appends_),
                     static_cast<int64_t>(payload.size()), appends_);
  return OkStatus();
}

Status WriteAheadLog::Sync() {
  if (file_ == nullptr) {
    return FailedPreconditionError("log is closed");
  }
  if (std::fflush(file_) != 0) {
    return DataLossError(StrFormat("flush failed on '%s'", path_.c_str()));
  }
  if (::fsync(::fileno(file_)) != 0) {
    return DataLossError(StrFormat("fsync failed on '%s': %s", path_.c_str(),
                                   std::strerror(errno)));
  }
  ++syncs_;
  MOBREP_TRACE_EVENT(obs::TraceEventKind::kWalSync, path_.c_str(),
                     static_cast<double>(syncs_), appends_);
  return OkStatus();
}

void WriteAheadLog::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<RecoveryReport> WriteAheadLog::Recover(const std::string& path) {
  RecoveryReport report;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return report;  // first boot: empty store
  std::string contents;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(file);

  LogCursor cursor{contents.data(), contents.data() + contents.size()};
  while (!cursor.AtEnd()) {
    LogCursor checkpoint = cursor;
    TailParse tail = TailParse::kTorn;
    if (cursor.Literal("PUT ")) {
      uint64_t version = 0, key_len = 0, value_len = 0;
      std::string key, value;
      const bool body_ok = cursor.Number(' ', &version) &&
                           cursor.Number(':', &key_len) &&
                           cursor.Bytes(key_len, &key) &&
                           cursor.Literal(" ") &&
                           cursor.Number(':', &value_len) &&
                           cursor.Bytes(value_len, &value);
      if (body_ok) {
        tail = ParseChecksumTail(&cursor, checkpoint.pos, cursor.pos,
                                 /*legacy_ok=*/true);
      }
      if (tail == TailParse::kOk) {
        const uint64_t assigned = report.store.Put(key, value);
        if (assigned != version) {
          return DataLossError(StrFormat(
              "log '%s' is inconsistent: key '%s' jumps to version %llu "
              "(expected %llu) after recovery %s",
              path.c_str(), key.c_str(),
              static_cast<unsigned long long>(version),
              static_cast<unsigned long long>(assigned),
              report.Summary().c_str()));
        }
        ++report.puts_replayed;
        continue;
      }
    } else if (cursor.Literal("SNAP ")) {
      uint64_t payload_len = 0;
      std::string payload;
      const bool body_ok =
          cursor.Number(':', &payload_len) && cursor.Bytes(payload_len,
                                                           &payload);
      if (body_ok) {
        tail = ParseChecksumTail(&cursor, checkpoint.pos, cursor.pos,
                                 /*legacy_ok=*/false);
      }
      if (tail == TailParse::kOk) {
        report.last_snapshot = std::move(payload);
        ++report.snapshots_replayed;
        continue;
      }
    }
    // Torn tail (crash mid-append) or corrupt record: keep everything
    // before it, report what was cut.
    if (tail == TailParse::kChecksumMismatch) ++report.checksum_failures;
    report.bytes_truncated = checkpoint.end - checkpoint.pos;
    break;
  }
  return report;
}

}  // namespace mobrep
