#include "mobrep/store/write_ahead_log.h"

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include <unistd.h>

#include "mobrep/common/strings.h"
#include "mobrep/obs/trace.h"

namespace mobrep {
namespace {

// Sequential parser over the raw log bytes. Length-prefixed fields make
// arbitrary key/value bytes (spaces, newlines) unambiguous.
struct LogCursor {
  const char* pos;
  const char* end;

  bool AtEnd() const { return pos >= end; }

  // Consumes `literal`; false if the remaining bytes do not match.
  bool Literal(const char* literal) {
    const size_t n = std::strlen(literal);
    if (static_cast<size_t>(end - pos) < n) return false;
    if (std::memcmp(pos, literal, n) != 0) return false;
    pos += n;
    return true;
  }

  // Consumes a non-negative decimal integer followed by `delimiter`.
  bool Number(char delimiter, uint64_t* out) {
    uint64_t value = 0;
    const char* start = pos;
    while (pos < end && *pos >= '0' && *pos <= '9') {
      value = value * 10 + static_cast<uint64_t>(*pos - '0');
      ++pos;
    }
    if (pos == start || pos >= end || *pos != delimiter) return false;
    ++pos;
    *out = value;
    return true;
  }

  // Consumes exactly `n` bytes.
  bool Bytes(uint64_t n, std::string* out) {
    if (static_cast<uint64_t>(end - pos) < n) return false;
    out->assign(pos, static_cast<size_t>(n));
    pos += n;
    return true;
  }
};

}  // namespace

WriteAheadLog::WriteAheadLog(std::string path, std::FILE* file,
                             WalOptions options)
    : path_(std::move(path)), file_(file), options_(options) {}

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept
    : path_(std::move(other.path_)),
      file_(other.file_),
      options_(other.options_),
      appends_(other.appends_),
      syncs_(other.syncs_) {
  other.file_ = nullptr;
}

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& other) noexcept {
  if (this != &other) {
    Close();
    path_ = std::move(other.path_);
    file_ = other.file_;
    options_ = other.options_;
    appends_ = other.appends_;
    syncs_ = other.syncs_;
    other.file_ = nullptr;
  }
  return *this;
}

WriteAheadLog::~WriteAheadLog() { Close(); }

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path) {
  return Open(path, WalOptions{});
}

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path,
                                          const WalOptions& options) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return InvalidArgumentError(
        StrFormat("cannot open log '%s' for append", path.c_str()));
  }
  return WriteAheadLog(path, file, options);
}

Status WriteAheadLog::AppendPut(const std::string& key,
                                const VersionedValue& value) {
  if (file_ == nullptr) {
    return FailedPreconditionError("log is closed");
  }
  // Built by concatenation rather than one printf so that keys and values
  // with embedded NULs or newlines stay intact (lengths disambiguate).
  std::string safe = "PUT ";
  safe += StrFormat("%llu ", static_cast<unsigned long long>(value.version));
  safe += StrFormat("%zu:", key.size());
  safe += key;
  safe += StrFormat(" %zu:", value.value.size());
  safe += value.value;
  safe += '\n';
  if (std::fwrite(safe.data(), 1, safe.size(), file_) != safe.size()) {
    return DataLossError(StrFormat("short write to '%s'", path_.c_str()));
  }
  if (std::fflush(file_) != 0) {
    return DataLossError(StrFormat("flush failed on '%s'", path_.c_str()));
  }
  ++appends_;
  MOBREP_TRACE_EVENT(obs::TraceEventKind::kWalAppend, path_.c_str(),
                     static_cast<double>(appends_),
                     static_cast<int64_t>(value.version), appends_);
  if (options_.sync_each_append) return Sync();
  return OkStatus();
}

Status WriteAheadLog::Sync() {
  if (file_ == nullptr) {
    return FailedPreconditionError("log is closed");
  }
  if (std::fflush(file_) != 0) {
    return DataLossError(StrFormat("flush failed on '%s'", path_.c_str()));
  }
  if (::fsync(::fileno(file_)) != 0) {
    return DataLossError(StrFormat("fsync failed on '%s': %s", path_.c_str(),
                                   std::strerror(errno)));
  }
  ++syncs_;
  MOBREP_TRACE_EVENT(obs::TraceEventKind::kWalSync, path_.c_str(),
                     static_cast<double>(syncs_), appends_);
  return OkStatus();
}

void WriteAheadLog::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<VersionedStore> WriteAheadLog::Recover(const std::string& path) {
  VersionedStore store;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return store;  // first boot: empty store
  std::string contents;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(file);

  LogCursor cursor{contents.data(), contents.data() + contents.size()};
  while (!cursor.AtEnd()) {
    LogCursor checkpoint = cursor;
    uint64_t version = 0, key_len = 0, value_len = 0;
    std::string key, value;
    const bool complete = cursor.Literal("PUT ") &&
                          cursor.Number(' ', &version) &&
                          cursor.Number(':', &key_len) &&
                          cursor.Bytes(key_len, &key) &&
                          cursor.Literal(" ") &&
                          cursor.Number(':', &value_len) &&
                          cursor.Bytes(value_len, &value) &&
                          cursor.Literal("\n");
    if (!complete) {
      // Torn tail (crash mid-append): keep everything before it.
      cursor = checkpoint;
      break;
    }
    const uint64_t assigned = store.Put(key, value);
    if (assigned != version) {
      return DataLossError(StrFormat(
          "log '%s' is inconsistent: key '%s' jumps to version %llu "
          "(expected %llu)",
          path.c_str(), key.c_str(),
          static_cast<unsigned long long>(version),
          static_cast<unsigned long long>(assigned)));
    }
  }
  return store;
}

}  // namespace mobrep
