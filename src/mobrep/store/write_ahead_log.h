#ifndef MOBREP_STORE_WRITE_AHEAD_LOG_H_
#define MOBREP_STORE_WRITE_AHEAD_LOG_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "mobrep/common/status.h"
#include "mobrep/store/versioned_store.h"

namespace mobrep {

// Durability knobs for a WriteAheadLog.
struct WalOptions {
  // When true, every AppendPut additionally fsync()s the file so the
  // record survives an OS crash or power loss, not just a process crash.
  // Costs one disk barrier per append; off by default (the simulator's
  // default threat model is process crash).
  bool sync_each_append = false;
};

// Where in an append a simulated crash strikes (see docs/RECOVERY.md).
// The hook may throw CrashSignal; phases bracket the record's durability:
//   kBeforeAppend — nothing of the record is on disk yet;
//   kTornAppend   — a prefix of the record is flushed (torn write);
//   kAfterAppend  — the whole record is flushed.
enum class WalCrashPhase : int {
  kBeforeAppend = 0,
  kTornAppend = 1,
  kAfterAppend = 2,
};

const char* WalCrashPhaseName(WalCrashPhase phase);

// Outcome of a recovery scan: the rebuilt store plus a diagnosis of what
// the scan saw (how many records replayed, whether a torn tail or a
// checksum failure cut the log short, and the newest intact snapshot).
struct RecoveryReport {
  VersionedStore store;
  // Payload of the newest intact SNAP record, empty if none. Protocol
  // nodes serialize their control state here (chaos/node_snapshot.h).
  std::string last_snapshot;
  int64_t puts_replayed = 0;
  int64_t snapshots_replayed = 0;
  // Bytes cut off at the tail (torn write at crash, or trailing garbage).
  int64_t bytes_truncated = 0;
  // 1 when the scan stopped at a record whose checksum did not match
  // (bit rot or a torn write that still parsed structurally).
  int64_t checksum_failures = 0;

  bool clean() const { return bytes_truncated == 0 && checksum_failures == 0; }
  // One-line human-readable diagnosis, embedded in Status messages.
  std::string Summary() const;
};

// Append-only durability log for the stationary computer's online
// database, so the SC can recover its store (and keep serving update
// propagation from the correct versions) after a restart.
//
// Record formats (text, one record per line, checksummed):
//   PUT <version> <key-length>:<key> <value-length>:<value> @<crc>\n
//   SNAP <payload-length>:<payload> @<crc>\n
// <crc> is the FNV-1a 64 hash of the record bytes before " @", as 16 hex
// digits. PUT records without the " @<crc>" suffix (written by earlier
// versions of this log) are still accepted. A trailing partially-written
// record (torn write at crash) is detected by the length fields and the
// checksum and ignored during recovery.
class WriteAheadLog {
 public:
  using CrashHook = std::function<void(WalCrashPhase, const char* record)>;

  // Opens (creating if absent) the log at `path` for appending.
  static Result<WriteAheadLog> Open(const std::string& path);
  static Result<WriteAheadLog> Open(const std::string& path,
                                    const WalOptions& options);

  WriteAheadLog(WriteAheadLog&& other) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;
  ~WriteAheadLog();

  // Appends one committed write and flushes it to the OS. With
  // WalOptions::sync_each_append, the record is also fsync()ed to stable
  // storage before this returns. Short writes, flush failures and sync
  // failures are all reported as DataLossError.
  Status AppendPut(const std::string& key, const VersionedValue& value);

  // Appends one opaque snapshot payload (protocol-node control state).
  // Recovery surfaces the newest intact payload in
  // RecoveryReport::last_snapshot.
  Status AppendSnapshot(const std::string& payload);

  // Forces everything appended so far to stable storage (fflush + fsync).
  Status Sync();

  // Closes the log; further appends fail.
  void Close();

  // Installs a crash hook fired at the three WalCrashPhase points of every
  // append (chaos harness only; see common/crash_signal.h). With a hook
  // installed each record is written in two halves so the kTornAppend
  // phase really leaves a torn prefix behind if the hook throws; the final
  // bytes are identical either way.
  void set_crash_hook(CrashHook hook) { crash_hook_ = std::move(hook); }

  const std::string& path() const { return path_; }

  // Records successfully appended / Sync() barriers completed over the
  // log's lifetime (diagnostics; also drive the kWalAppend/kWalSync trace
  // events).
  int64_t appends() const { return appends_; }
  int64_t syncs() const { return syncs_; }

  // Rebuilds a store (and recovery diagnosis) from the log at `path`.
  // Returns an empty report for a missing file (first boot). Stops at the
  // first torn or corrupt record, recovering every complete record before
  // it. Fails only if a record is structurally valid but inconsistent
  // (version regression for a key); the error message embeds the
  // RecoveryReport summary up to the fault.
  static Result<RecoveryReport> Recover(const std::string& path);

 private:
  WriteAheadLog(std::string path, std::FILE* file, WalOptions options);

  // Shared append path: writes `record` (already checksummed and
  // newline-terminated), running the crash hook phases.
  Status AppendRecord(std::string record, const char* what);

  std::string path_;
  std::FILE* file_ = nullptr;
  WalOptions options_;
  CrashHook crash_hook_;
  int64_t appends_ = 0;
  int64_t syncs_ = 0;
};

}  // namespace mobrep

#endif  // MOBREP_STORE_WRITE_AHEAD_LOG_H_
