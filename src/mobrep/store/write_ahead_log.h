#ifndef MOBREP_STORE_WRITE_AHEAD_LOG_H_
#define MOBREP_STORE_WRITE_AHEAD_LOG_H_

#include <cstdio>
#include <string>

#include "mobrep/common/status.h"
#include "mobrep/store/versioned_store.h"

namespace mobrep {

// Durability knobs for a WriteAheadLog.
struct WalOptions {
  // When true, every AppendPut additionally fsync()s the file so the
  // record survives an OS crash or power loss, not just a process crash.
  // Costs one disk barrier per append; off by default (the simulator's
  // default threat model is process crash).
  bool sync_each_append = false;
};

// Append-only durability log for the stationary computer's online
// database, so the SC can recover its store (and keep serving update
// propagation from the correct versions) after a restart.
//
// Record format (text, one record per line):
//   PUT <version> <key-length> <key> <value-length> <value>
// A trailing partially-written record (torn write at crash) is detected by
// the length fields and ignored during recovery.
class WriteAheadLog {
 public:
  // Opens (creating if absent) the log at `path` for appending.
  static Result<WriteAheadLog> Open(const std::string& path);
  static Result<WriteAheadLog> Open(const std::string& path,
                                    const WalOptions& options);

  WriteAheadLog(WriteAheadLog&& other) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;
  ~WriteAheadLog();

  // Appends one committed write and flushes it to the OS. With
  // WalOptions::sync_each_append, the record is also fsync()ed to stable
  // storage before this returns. Short writes, flush failures and sync
  // failures are all reported as DataLossError.
  Status AppendPut(const std::string& key, const VersionedValue& value);

  // Forces everything appended so far to stable storage (fflush + fsync).
  Status Sync();

  // Closes the log; further appends fail.
  void Close();

  const std::string& path() const { return path_; }

  // Records successfully appended / Sync() barriers completed over the
  // log's lifetime (diagnostics; also drive the kWalAppend/kWalSync trace
  // events).
  int64_t appends() const { return appends_; }
  int64_t syncs() const { return syncs_; }

  // Rebuilds a store from the log at `path`. Returns an empty store for a
  // missing file (first boot). Stops at the first torn or corrupt record,
  // recovering every complete record before it. Fails only if a record is
  // structurally valid but inconsistent (version regression for a key).
  static Result<VersionedStore> Recover(const std::string& path);

 private:
  WriteAheadLog(std::string path, std::FILE* file, WalOptions options);

  std::string path_;
  std::FILE* file_ = nullptr;
  WalOptions options_;
  int64_t appends_ = 0;
  int64_t syncs_ = 0;
};

}  // namespace mobrep

#endif  // MOBREP_STORE_WRITE_AHEAD_LOG_H_
