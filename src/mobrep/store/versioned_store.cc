#include "mobrep/store/versioned_store.h"

#include <string>
#include <utility>

#include "mobrep/common/strings.h"

namespace mobrep {

uint64_t VersionedStore::Put(const std::string& key, std::string value) {
  VersionedValue& slot = items_[key];
  slot.value = std::move(value);
  return ++slot.version;
}

Result<VersionedValue> VersionedStore::Get(const std::string& key) const {
  const auto it = items_.find(key);
  if (it == items_.end()) {
    return NotFoundError(StrFormat("no such key '%s'", key.c_str()));
  }
  return it->second;
}

bool VersionedStore::Contains(const std::string& key) const {
  return items_.find(key) != items_.end();
}

}  // namespace mobrep
