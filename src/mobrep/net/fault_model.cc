#include "mobrep/net/fault_model.h"

#include <algorithm>
#include <utility>

#include "mobrep/common/check.h"
#include "mobrep/obs/trace.h"

namespace mobrep {

double FaultConfig::TotalOutageTimeBefore(double t) const {
  double total = 0.0;
  for (const OutageWindow& window : outages) {
    const double start = std::max(0.0, window.start);
    const double end = std::min(t, window.end);
    if (end > start) total += end - start;
  }
  return total;
}

LinkFaultModel::LinkFaultModel(const FaultConfig& config, uint64_t stream_salt)
    : config_(config), rng_(0) {
  MOBREP_CHECK(config.drop_probability >= 0.0 &&
               config.drop_probability < 1.0);
  MOBREP_CHECK(config.duplicate_probability >= 0.0 &&
               config.duplicate_probability <= 1.0);
  MOBREP_CHECK(config.max_jitter >= 0.0);
  for (const OutageWindow& window : config.outages) {
    MOBREP_CHECK_MSG(window.end > window.start,
                     "outage window must have positive duration");
  }
  Rng base(config.seed);
  rng_ = base.Fork(stream_salt);
}

bool LinkFaultModel::InOutage(double now) const {
  for (const OutageWindow& window : config_.outages) {
    if (now >= window.start && now < window.end) return true;
  }
  return false;
}

LinkFaultModel::Decision LinkFaultModel::Decide(double now) {
  Decision decision;
  if (InOutage(now)) {
    // The link is down: the frame is lost without consuming randomness, so
    // the post-outage fault stream does not depend on outage placement.
    decision.drop = true;
    decision.in_outage = true;
    return decision;
  }
  if (config_.drop_probability > 0.0 &&
      rng_.Bernoulli(config_.drop_probability)) {
    decision.drop = true;
    return decision;
  }
  if (config_.max_jitter > 0.0) {
    decision.jitter = rng_.Uniform(0.0, config_.max_jitter);
  }
  if (config_.duplicate_probability > 0.0 &&
      rng_.Bernoulli(config_.duplicate_probability)) {
    decision.duplicate = true;
    decision.duplicate_jitter =
        config_.max_jitter > 0.0 ? rng_.Uniform(0.0, config_.max_jitter)
                                 : 0.0;
  }
  return decision;
}

FaultyChannel::FaultyChannel(EventQueue* queue, double latency,
                             std::string name, const FaultConfig& config,
                             uint64_t stream_salt)
    : Channel(queue, latency, std::move(name)),
      model_(config, stream_salt) {}

void FaultyChannel::Transmit(PooledMessage slot) {
  Meter(*slot);
  const LinkFaultModel::Decision decision = model_.Decide(queue()->now());
  if (decision.drop) {
    if (decision.in_outage) {
      outage_drops_.Increment();
    } else {
      injected_drops_.Increment();
    }
    MOBREP_TRACE_EVENT(obs::TraceEventKind::kMessageDrop, name().c_str(),
                       queue()->now(), static_cast<int64_t>(slot->seq),
                       static_cast<int64_t>(slot->type),
                       (decision.in_outage ? 1 : 0) |
                           (static_cast<int64_t>(slot->epoch) << 1));
    return;  // releasing the slot: the frame is lost
  }
  if (decision.duplicate) {
    injected_duplicates_.Increment();
    // The duplicate copy is scheduled *before* the primary, preserving the
    // historical event ordering at equal delivery times.
    ScheduleDelivery(MessagePool::ThreadLocal()->AcquireCopy(*slot),
                     latency() + decision.duplicate_jitter);
  }
  if (decision.jitter > 0.0) jittered_deliveries_.Increment();
  ScheduleDelivery(std::move(slot), latency() + decision.jitter);
}

}  // namespace mobrep
