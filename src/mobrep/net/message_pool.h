#ifndef MOBREP_NET_MESSAGE_POOL_H_
#define MOBREP_NET_MESSAGE_POOL_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "mobrep/net/message.h"

namespace mobrep {

namespace obs {
struct AllocCounters;
}  // namespace obs

class MessagePool;

// RAII handle to a pooled in-flight Message (DESIGN.md §11). Move-only;
// releases the slot back to its pool on destruction. A handle whose pool is
// null owns a plain heap-allocated Message instead (the legacy path used
// when pooling is disabled) and deletes it on destruction — callers never
// need to know which mode produced the handle.
class PooledMessage {
 public:
  PooledMessage() = default;
  PooledMessage(Message* message, MessagePool* pool)
      : message_(message), pool_(pool) {}

  PooledMessage(PooledMessage&& other) noexcept
      : message_(other.message_), pool_(other.pool_) {
    other.message_ = nullptr;
    other.pool_ = nullptr;
  }
  PooledMessage& operator=(PooledMessage&& other) noexcept {
    if (this != &other) {
      Reset();
      message_ = other.message_;
      pool_ = other.pool_;
      other.message_ = nullptr;
      other.pool_ = nullptr;
    }
    return *this;
  }

  PooledMessage(const PooledMessage&) = delete;
  PooledMessage& operator=(const PooledMessage&) = delete;

  ~PooledMessage() { Reset(); }

  Message& operator*() const { return *message_; }
  Message* operator->() const { return message_; }
  Message* get() const { return message_; }
  explicit operator bool() const { return message_ != nullptr; }

 private:
  void Reset();

  Message* message_ = nullptr;
  MessagePool* pool_ = nullptr;  // null => heap-owned (legacy mode)
};

// Thread-local slab allocator for in-flight protocol messages.
//
// A Message is fat (string key, window, VersionedValue, shared_ptr), so the
// old per-hop pattern — construct on the stack, move into a std::function
// capture, destroy on delivery — paid a heap round trip per hop for the
// capture alone plus churn on the string/vector buffers. The pool instead
// recycles fully constructed Message slots: Release scrubs values but keeps
// the key/window/value capacities, so a reused slot's assignments are pure
// memcpy once the sim warms up.
//
// Discipline (enforced, not advisory):
//  - Slots are acquired and released on the pool's owning thread (each
//    thread gets its own pool via ThreadLocal(); a sweep cell's messages
//    never cross threads).
//  - A released slot is poisoned (seq = kPoisonSeq). Acquire checks the
//    poison (catching stray writes through dangling slot pointers) and
//    Release checks it is absent (catching double-release). The ASan
//    pool-reuse test drives both.
//
// Pooling can be disabled process-wide (SetPoolingEnabled(false)): Acquire
// then heap-allocates a fresh Message per call and handles delete on release.
// The legacy path exists so tests can assert pooled and legacy runs produce
// byte-identical traces and counters, and so benches can A/B the allocation
// savings in one binary.
class MessagePool {
 public:
  // Poison stamped into Message::seq while a slot sits in the freelist. Real
  // seqs are small; collision would need ~1.7e19 frames on one link.
  static constexpr uint64_t kPoisonSeq = 0xDEADDEADDEADDEADull;

  MessagePool();
  ~MessagePool();

  MessagePool(const MessagePool&) = delete;
  MessagePool& operator=(const MessagePool&) = delete;

  // This thread's pool. First use constructs it; it lives until thread exit.
  static MessagePool* ThreadLocal();

  // Acquires a default-constructed (scrubbed) slot.
  PooledMessage Acquire();

  // Acquires a slot holding the moved-from contents of `message`.
  PooledMessage Acquire(Message&& message);

  // Acquires a slot holding a copy of `message` (duplicate delivery,
  // retransmission). With a warm slot this reuses existing buffer
  // capacities instead of fresh allocations.
  PooledMessage AcquireCopy(const Message& message);

  // Returns `message` (previously handed out by this pool) to the freelist.
  // Called by ~PooledMessage; not part of the public API surface.
  void Release(Message* message);

  // Process-wide switch between pooled and legacy (heap-per-message)
  // acquisition. Flip only while no PooledMessage handles are live.
  static void SetPoolingEnabled(bool enabled);
  static bool pooling_enabled();

  // Slots currently handed out (pooled mode only; diagnostics).
  int64_t live() const { return live_; }

 private:
  Message* AcquireSlot();

  static constexpr size_t kSlabSize = 64;

  std::vector<std::unique_ptr<Message[]>> slabs_;
  std::vector<Message*> free_;
  int64_t live_ = 0;
  obs::AllocCounters* alloc_counters_;
};

}  // namespace mobrep

#endif  // MOBREP_NET_MESSAGE_POOL_H_
