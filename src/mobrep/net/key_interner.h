#ifndef MOBREP_NET_KEY_INTERNER_H_
#define MOBREP_NET_KEY_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace mobrep {

// Process-wide string-key interner for protocol demultiplexing.
//
// Endpoints intern their key once at construction and stamp the id on every
// outgoing Message (Message::key_id); multi-object receivers index an array
// by id instead of probing a map<string, ...> per delivery.
//
// Ids are small integers >= 1 assigned in first-intern order. That order
// depends on which thread constructs which simulation first, so ids are NOT
// deterministic across MOBREP_THREADS values: they are a runtime demux hint
// only and must never appear in traces, the wire format, or any output that
// participates in determinism diffs. The string key stays authoritative —
// a Message with key_id == 0 is always handled via the string map.
//
// Thread-safe; an intern is a mutex acquire + hash lookup, paid once per
// endpoint, not per message.
uint32_t InternKey(std::string_view key);

// The string a previously returned id names. Aborts on an id never handed
// out (including 0).
const std::string& InternedKeyName(uint32_t id);

// Number of distinct keys interned so far (upper bound for id-indexed
// arrays; ids are in [1, InternedKeyCount()]).
uint32_t InternedKeyCount();

}  // namespace mobrep

#endif  // MOBREP_NET_KEY_INTERNER_H_
