#include "mobrep/net/failure_detector.h"

#include <algorithm>

#include "mobrep/common/check.h"

namespace mobrep {

FailureDetector::FailureDetector(const FailureDetectorConfig& config)
    : config_(config) {
  MOBREP_CHECK_MSG(config_.timeout > 0.0,
                   "failure detector timeout must be positive");
  MOBREP_CHECK(config_.backoff >= 1.0);
  if (config_.max_timeout <= 0.0) config_.max_timeout = 8.0 * config_.timeout;
  config_.max_timeout = std::max(config_.max_timeout, config_.timeout);
  current_timeout_ = config_.timeout;
}

void FailureDetector::OnHeard(double now) {
  if (suspicion_latched_) {
    // The suspected peer spoke again: the suspicion was false. Back the
    // timeout off so a slow or flappy link earns more patience instead of
    // oscillating in and out of suspicion.
    false_suspicions_.Increment();
    current_timeout_ =
        std::min(current_timeout_ * config_.backoff, config_.max_timeout);
    suspicion_latched_ = false;
  }
  last_heard_ = std::max(last_heard_, now);
}

bool FailureDetector::Suspected(double now) const {
  const bool suspected = (now - last_heard_) > current_timeout_;
  if (suspected && !suspicion_latched_) {
    suspicion_latched_ = true;
    suspicions_.Increment();
  }
  return suspected;
}

}  // namespace mobrep
