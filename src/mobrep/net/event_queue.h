#ifndef MOBREP_NET_EVENT_QUEUE_H_
#define MOBREP_NET_EVENT_QUEUE_H_

#include <cstdint>
#include <vector>

#include "mobrep/common/inline_function.h"

namespace mobrep {

namespace obs {
struct AllocCounters;
}  // namespace obs

// Discrete-event simulation core: a time-ordered queue of callbacks.
//
// Events at equal timestamps run in scheduling (FIFO) order, which is what
// makes fixed-latency channels order-preserving. The (time, sequence) key is
// a *total* order, so the heap layout below is an implementation detail:
// every correct heap pops the same sequence of events.
//
// Hot-path engineering (DESIGN.md §11): the per-event callback is an
// InlineFunction — captures up to 48 bytes live inside the event record, so
// scheduling a typical delivery ([this, pooled-slot]) allocates nothing. The
// records sit in a 4-ary array heap; push and pop sift a hole with moves
// (no copy-out-on-pop, no std::function clone). A 4-ary heap halves tree
// depth vs. binary and keeps children of a node in one cache line.
class EventQueue {
 public:
  // 48 inline bytes covers every capture in the repo today (largest is
  // [this, PooledMessage] at 24 bytes); bigger captures fall back to one
  // heap allocation and are counted in mobrep_alloc_event_heap.
  using EventFn = InlineFunction<void(), 48>;

  // Sentinel for RunUntilQuiescent/TryRunUntilQuiescent: size the event
  // budget from the workload pending at entry instead of a fixed cap.
  static constexpr int64_t kAutoEventBudget = 0;

  EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` at absolute simulation time `time` (>= now()).
  void ScheduleAt(double time, EventFn fn);

  // Schedules `fn` `delay` (>= 0) time units from now.
  void ScheduleAfter(double delay, EventFn fn);

  // Runs the earliest event, advancing the clock. False if queue was empty.
  bool RunNext();

  // Runs events until the queue drains or the budget is exhausted.
  // Returns the number of events run. Aborts (CHECK) if the cap is hit
  // with events still pending — a silent half-delivered exchange must
  // never masquerade as quiescence. `max_events <= 0` (kAutoEventBudget)
  // scales the budget with the workload pending at entry, so large sims
  // (a million clients) are not silently capped at a fixed constant.
  int64_t RunUntilQuiescent(int64_t max_events = kAutoEventBudget);

  // Non-aborting variant: runs until the queue drains or the budget is
  // exhausted, storing the count in `*events_run` (if non-null), and
  // returns true iff the queue is quiescent (drained). Callers that can
  // loop forever (retransmission timers) use this to surface the cap as a
  // Status instead of proceeding with a half-delivered exchange.
  // `max_events <= 0` selects the auto-scaled budget as above.
  bool TryRunUntilQuiescent(int64_t max_events,
                            int64_t* events_run = nullptr);

  // The budget RunUntilQuiescent would use for a given pending count:
  // max(1M, 64 * pending + 4096). Exposed so cap-hit diagnostics can name
  // the number that was exceeded.
  static int64_t AutoEventBudget(int64_t pending_at_entry);

  double now() const { return now_; }
  bool empty() const { return events_.empty(); }
  size_t pending() const { return events_.size(); }

  // Total events executed over the queue's lifetime.
  int64_t executed() const { return executed_; }

  // High-water mark of pending events (live event records).
  size_t peak_pending() const { return peak_pending_; }

  // Timestamp of the earliest pending event; +infinity when the queue is
  // empty. Lets bounded-horizon harnesses stop the clock at a deadline
  // instead of draining timers scheduled past it.
  double next_time() const;

 private:
  struct Event {
    double time;
    uint64_t sequence;  // FIFO tie-break
    EventFn fn;
  };

  // Strict-weak "fires earlier" on the total (time, sequence) key.
  static bool Before(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.sequence < b.sequence;
  }

  void PushHeap(Event event);
  Event PopHeap();

  std::vector<Event> events_;  // 4-ary min-heap: children of i at 4i+1..4i+4
  double now_ = 0.0;
  uint64_t next_sequence_ = 0;
  int64_t executed_ = 0;
  size_t peak_pending_ = 0;
  obs::AllocCounters* alloc_counters_;  // cached; queue is single-threaded
};

}  // namespace mobrep

#endif  // MOBREP_NET_EVENT_QUEUE_H_
