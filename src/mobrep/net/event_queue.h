#ifndef MOBREP_NET_EVENT_QUEUE_H_
#define MOBREP_NET_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace mobrep {

// Discrete-event simulation core: a time-ordered queue of callbacks.
//
// Events at equal timestamps run in scheduling (FIFO) order, which is what
// makes fixed-latency channels order-preserving.
class EventQueue {
 public:
  using EventFn = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` at absolute simulation time `time` (>= now()).
  void ScheduleAt(double time, EventFn fn);

  // Schedules `fn` `delay` (>= 0) time units from now.
  void ScheduleAfter(double delay, EventFn fn);

  // Runs the earliest event, advancing the clock. False if queue was empty.
  bool RunNext();

  // Runs events until the queue drains or `max_events` have run.
  // Returns the number of events run. Aborts (CHECK) if the cap is hit
  // with events still pending — a silent half-delivered exchange must
  // never masquerade as quiescence.
  int64_t RunUntilQuiescent(int64_t max_events = 1'000'000);

  // Non-aborting variant: runs until the queue drains or `max_events`
  // have run, storing the count in `*events_run` (if non-null), and
  // returns true iff the queue is quiescent (drained). Callers that can
  // loop forever (retransmission timers) use this to surface the cap as a
  // Status instead of proceeding with a half-delivered exchange.
  bool TryRunUntilQuiescent(int64_t max_events,
                            int64_t* events_run = nullptr);

  double now() const { return now_; }
  bool empty() const { return events_.empty(); }
  size_t pending() const { return events_.size(); }

  // Timestamp of the earliest pending event; +infinity when the queue is
  // empty. Lets bounded-horizon harnesses stop the clock at a deadline
  // instead of draining timers scheduled past it.
  double next_time() const;

 private:
  struct Event {
    double time;
    uint64_t sequence;  // FIFO tie-break
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  double now_ = 0.0;
  uint64_t next_sequence_ = 0;
};

}  // namespace mobrep

#endif  // MOBREP_NET_EVENT_QUEUE_H_
