#include "mobrep/net/key_interner.h"

#include <deque>
#include <mutex>
#include <unordered_map>

#include "mobrep/common/check.h"

namespace mobrep {
namespace {

struct Interner {
  std::mutex mu;
  std::unordered_map<std::string, uint32_t> ids;
  // deque: element references stay valid as later keys are interned, so
  // InternedKeyName can hand out stable const std::string&.
  std::deque<std::string> names;  // names[id - 1]
};

Interner& GlobalInterner() {
  static Interner* interner = new Interner();
  return *interner;
}

}  // namespace

uint32_t InternKey(std::string_view key) {
  Interner& interner = GlobalInterner();
  std::lock_guard<std::mutex> lock(interner.mu);
  auto [it, inserted] =
      interner.ids.try_emplace(std::string(key), 0);
  if (inserted) {
    interner.names.emplace_back(it->first);
    it->second = static_cast<uint32_t>(interner.names.size());
  }
  return it->second;
}

const std::string& InternedKeyName(uint32_t id) {
  Interner& interner = GlobalInterner();
  std::lock_guard<std::mutex> lock(interner.mu);
  MOBREP_CHECK_MSG(id >= 1 && id <= interner.names.size(),
                   "InternedKeyName: id was never interned");
  return interner.names[id - 1];
}

uint32_t InternedKeyCount() {
  Interner& interner = GlobalInterner();
  std::lock_guard<std::mutex> lock(interner.mu);
  return static_cast<uint32_t>(interner.names.size());
}

}  // namespace mobrep
