#include "mobrep/net/message.h"

namespace mobrep {

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kReadRequest:
      return "read_request";
    case MessageType::kDataResponse:
      return "data_response";
    case MessageType::kWritePropagate:
      return "write_propagate";
    case MessageType::kDeleteRequest:
      return "delete_request";
    case MessageType::kInvalidate:
      return "invalidate";
    case MessageType::kAck:
      return "ack";
    case MessageType::kResyncRequest:
      return "resync_request";
    case MessageType::kResyncResponse:
      return "resync_response";
    case MessageType::kHeartbeat:
      return "heartbeat";
    case MessageType::kLeaseRenew:
      return "lease_renew";
    case MessageType::kLeaseRenewAck:
      return "lease_renew_ack";
    case MessageType::kLeaseRevoke:
      return "lease_revoke";
    case MessageType::kLeaseConflict:
      return "lease_conflict";
    case MessageType::kLeaseRegrant:
      return "lease_regrant";
  }
  return "unknown";
}

bool IsDataMessage(MessageType type) {
  return type == MessageType::kDataResponse ||
         type == MessageType::kWritePropagate;
}

bool IsLeaseMessage(MessageType type) {
  switch (type) {
    case MessageType::kLeaseRenew:
    case MessageType::kLeaseRenewAck:
    case MessageType::kLeaseRevoke:
    case MessageType::kLeaseConflict:
    case MessageType::kLeaseRegrant:
      return true;
    default:
      return false;
  }
}

}  // namespace mobrep
