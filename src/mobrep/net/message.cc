#include "mobrep/net/message.h"

namespace mobrep {

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kReadRequest:
      return "read_request";
    case MessageType::kDataResponse:
      return "data_response";
    case MessageType::kWritePropagate:
      return "write_propagate";
    case MessageType::kDeleteRequest:
      return "delete_request";
    case MessageType::kInvalidate:
      return "invalidate";
    case MessageType::kAck:
      return "ack";
    case MessageType::kResyncRequest:
      return "resync_request";
    case MessageType::kResyncResponse:
      return "resync_response";
  }
  return "unknown";
}

bool IsDataMessage(MessageType type) {
  return type == MessageType::kDataResponse ||
         type == MessageType::kWritePropagate;
}

}  // namespace mobrep
