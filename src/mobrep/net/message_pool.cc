#include "mobrep/net/message_pool.h"

#include <atomic>

#include "mobrep/common/check.h"
#include "mobrep/obs/alloc_stats.h"

namespace mobrep {
namespace {

std::atomic<bool> g_pooling_enabled{true};

// Scrubs a slot for reuse: values cleared, buffer capacities kept so the
// next occupant's assignments land in warm memory.
void Scrub(Message* m) {
  m->type = MessageType::kReadRequest;
  m->key.clear();
  m->key_id = 0;
  m->seq = 0;
  m->retransmit = false;
  m->epoch = 0;
  m->peer_epoch = 0;
  m->claims_charge = false;
  m->lease_token = 0;
  m->lease_term = 0.0;
  m->lease_anchor = 0.0;
  m->item.value.clear();
  m->item.version = 0;
  m->allocate = false;
  m->window.clear();
  m->transferred_state.reset();
}

}  // namespace

void PooledMessage::Reset() {
  if (message_ == nullptr) return;
  if (pool_ != nullptr) {
    pool_->Release(message_);
  } else {
    delete message_;
  }
  message_ = nullptr;
  pool_ = nullptr;
}

MessagePool::MessagePool() : alloc_counters_(&obs::LocalAllocCounters()) {}

MessagePool::~MessagePool() = default;

MessagePool* MessagePool::ThreadLocal() {
  thread_local MessagePool pool;
  return &pool;
}

Message* MessagePool::AcquireSlot() {
  Message* slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
    MOBREP_CHECK_MSG(slot->seq == kPoisonSeq,
                     "MessagePool: freelist slot lost its poison — a stale "
                     "handle wrote through a released message");
    Scrub(slot);
    ++alloc_counters_->msg_reuses;
  } else {
    auto slab = std::make_unique<Message[]>(kSlabSize);
    slot = &slab[0];
    for (size_t i = kSlabSize - 1; i >= 1; --i) {
      slab[i].seq = kPoisonSeq;
      free_.push_back(&slab[i]);
    }
    slabs_.push_back(std::move(slab));
    ++alloc_counters_->msg_slab_allocs;
  }
  ++live_;
  return slot;
}

PooledMessage MessagePool::Acquire() {
  if (!pooling_enabled()) {
    ++alloc_counters_->msg_legacy_allocs;
    return PooledMessage(new Message(), nullptr);
  }
  return PooledMessage(AcquireSlot(), this);
}

PooledMessage MessagePool::Acquire(Message&& message) {
  if (!pooling_enabled()) {
    ++alloc_counters_->msg_legacy_allocs;
    return PooledMessage(new Message(std::move(message)), nullptr);
  }
  Message* slot = AcquireSlot();
  *slot = std::move(message);
  return PooledMessage(slot, this);
}

PooledMessage MessagePool::AcquireCopy(const Message& message) {
  if (!pooling_enabled()) {
    ++alloc_counters_->msg_legacy_allocs;
    return PooledMessage(new Message(message), nullptr);
  }
  Message* slot = AcquireSlot();
  *slot = message;
  return PooledMessage(slot, this);
}

void MessagePool::Release(Message* message) {
  MOBREP_CHECK_MSG(message->seq != kPoisonSeq,
                   "MessagePool: double release of a message slot");
  Scrub(message);
  message->seq = kPoisonSeq;
  free_.push_back(message);
  --live_;
}

void MessagePool::SetPoolingEnabled(bool enabled) {
  g_pooling_enabled.store(enabled, std::memory_order_relaxed);
}

bool MessagePool::pooling_enabled() {
  return g_pooling_enabled.load(std::memory_order_relaxed);
}

}  // namespace mobrep
