#ifndef MOBREP_NET_MESSAGE_H_
#define MOBREP_NET_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mobrep/core/policy.h"
#include "mobrep/core/schedule.h"
#include "mobrep/store/versioned_store.h"

namespace mobrep {

// Wire messages of the distributed allocation protocol (paper §§3-4).
enum class MessageType : uint8_t {
  // MC -> SC, control: forwards a read of `key` to the online database.
  kReadRequest,
  // SC -> MC, data: the response carrying the item; may piggyback the
  // allocate indication and the request window (free piggyback, §4).
  kDataResponse,
  // SC -> MC, data: a committed write propagated to the MC's replica.
  kWritePropagate,
  // MC -> SC, control: deallocation; tells the SC to stop propagating and
  // carries the request window back (§4).
  kDeleteRequest,
  // SC -> MC, control: SW1's optimized write handling — deallocates the
  // MC copy without shipping the data (§4).
  kInvalidate,
  // Link-level acknowledgement of a reliable frame (`seq` names the frame
  // being acked). Consumed by the ARQ layer; never delivered to the
  // protocol endpoints, and never counted in the paper's cost models.
  kAck,
  // Crash-recovery handshake (docs/RECOVERY.md): announces a node's new
  // incarnation after a restart and carries its recovered ownership claim
  // (`claims_charge`). Never sent on a crash-free run; metered outside the
  // paper's cost models as recovery traffic.
  kResyncRequest,
  // SC -> MC: the resolution of a resync. `allocate` says which side owns
  // the window afterwards; when the MC owns, `item` carries the latest
  // committed version (and, on a re-grant, `window`/`transferred_state`
  // re-ship the control state).
  kResyncResponse,
  // --- Liveness layer (docs/RECOVERY.md, DESIGN.md §10). All of these are
  // absent unless leases are enabled and are metered outside the paper's
  // cost models (heartbeat / lease counters on the Channel). ---
  //
  // MC -> SC: unreliable "I am alive" probe feeding the SC's failure
  // detector. Fire-and-forget: never acked, never retransmitted, never
  // delivered to the protocol endpoints.
  kHeartbeat,
  // MC -> SC: extends the MC's ownership lease. Carries `lease_token` (the
  // fencing token of the lease being renewed) and `lease_anchor` (the
  // MC-side send time the renewed term is measured from).
  kLeaseRenew,
  // SC -> MC: a successful renewal. Echoes `lease_anchor`; the MC's new
  // local expiry is anchor + term, which the single simulated clock makes
  // strictly earlier than the SC-side expiry (receipt + term) — the holder
  // always self-fences before the grantor reclaims.
  kLeaseRenewAck,
  // SC -> MC: fences a stale lease holder. `lease_token` carries the SC's
  // *current* fencing token; the receiver demotes itself (drops its copy
  // and its in-charge bit) and reports its unsynced claim back as a
  // kLeaseConflict instead of silently dropping it.
  kLeaseRevoke,
  // MC -> SC: the demoted holder's conflict report: the stale token it
  // held (`lease_token`), its request window at demotion time (`window`)
  // and whether it still claimed ownership (`claims_charge`).
  kLeaseConflict,
  // SC -> MC: re-establishes the subscription after a conflict report
  // resolved a reclaimed lease: ships the latest item, the retained
  // window/state (like a resync re-grant) and a fresh fencing token.
  kLeaseRegrant,
};

const char* MessageTypeName(MessageType type);

// True for messages that carry the data item (charged 1 in the message
// model); false for control messages (charged omega).
bool IsDataMessage(MessageType type);

// True for lease-protocol control traffic (kLeaseRenew .. kLeaseRegrant).
// Lease traffic, like recovery traffic, is metered outside the paper's
// cost models: it prices availability, not a replication scheme.
bool IsLeaseMessage(MessageType type);

struct Message {
  MessageType type = MessageType::kReadRequest;
  std::string key;

  // Interned id of `key` (see net/key_interner.h), or 0 when the sender did
  // not stamp one. Purely a fast-path demultiplexing hint alongside the
  // authoritative string key: ids are assigned in first-intern order, which
  // is not deterministic across thread counts, so the id must never reach
  // traces, the wire format, or any deterministic output — receivers fall
  // back to the string key whenever the id is 0.
  uint32_t key_id = 0;

  // Link-layer header, used only when the message travels through a
  // ReliableLink. `seq` is the per-direction sequence number (1-based; 0
  // means the message never passed through an ARQ sender). For kAck frames
  // `seq` names the acknowledged frame. `retransmit` marks a re-send of an
  // already-counted frame so the channel meters it outside the paper's
  // cost-model counters.
  uint64_t seq = 0;
  bool retransmit = false;

  // Crash-recovery incarnation fencing (docs/RECOVERY.md). `epoch` is the
  // sender's incarnation number; `peer_epoch` is the incarnation of the
  // receiver the sender believes it is talking to. Both 0 on links that
  // never enabled epoch fencing (every crash-free configuration), so the
  // fields are inert outside the chaos harness. A receiver fences (drops)
  // frames from a dead incarnation of the peer and frames addressed to a
  // dead incarnation of itself.
  uint32_t epoch = 0;
  uint32_t peer_epoch = 0;

  // Resync handshake payload (kResyncRequest): whether the sender's
  // recovered state claims window ownership. Also reused by kLeaseConflict
  // to say whether the demoted holder still claimed ownership.
  bool claims_charge = false;

  // Lease / fencing payload (DESIGN.md §10); all zero unless leases are
  // enabled. `lease_token` is the monotonically increasing fencing token of
  // the lease a grant/renewal/revocation talks about. `lease_term` is the
  // granted term in simulation time units. `lease_anchor` is the sender-side
  // time the term is measured from, so the holder's local expiry
  // (anchor + term) is never later than the grantor's (receipt + term).
  uint64_t lease_token = 0;
  double lease_term = 0.0;
  double lease_anchor = 0.0;

  // Payload for data messages.
  VersionedValue item;

  // Piggybacked allocation indication (kDataResponse only).
  bool allocate = false;

  // Piggybacked request window, oldest first (allocation / deallocation
  // hand-over). Empty when no window travels. Window has inline storage
  // (core/schedule.h), so copying a typical hand-over (k = 9) is heap-free.
  Window window;

  // Simulator-level convenience: the in-charge policy state transferred
  // alongside `window`. On the wire this is redundant with `window` (plus a
  // trivially reconstructible counter for the T-policies); the simulator
  // ships the state machine object itself so the protocol layer stays
  // generic across policy families. Tests assert it matches `window` for
  // the sliding-window family.
  std::shared_ptr<AllocationPolicy> transferred_state;
};

}  // namespace mobrep

#endif  // MOBREP_NET_MESSAGE_H_
