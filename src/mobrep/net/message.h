#ifndef MOBREP_NET_MESSAGE_H_
#define MOBREP_NET_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mobrep/core/policy.h"
#include "mobrep/core/schedule.h"
#include "mobrep/store/versioned_store.h"

namespace mobrep {

// Wire messages of the distributed allocation protocol (paper §§3-4).
enum class MessageType : uint8_t {
  // MC -> SC, control: forwards a read of `key` to the online database.
  kReadRequest,
  // SC -> MC, data: the response carrying the item; may piggyback the
  // allocate indication and the request window (free piggyback, §4).
  kDataResponse,
  // SC -> MC, data: a committed write propagated to the MC's replica.
  kWritePropagate,
  // MC -> SC, control: deallocation; tells the SC to stop propagating and
  // carries the request window back (§4).
  kDeleteRequest,
  // SC -> MC, control: SW1's optimized write handling — deallocates the
  // MC copy without shipping the data (§4).
  kInvalidate,
  // Link-level acknowledgement of a reliable frame (`seq` names the frame
  // being acked). Consumed by the ARQ layer; never delivered to the
  // protocol endpoints, and never counted in the paper's cost models.
  kAck,
};

const char* MessageTypeName(MessageType type);

// True for messages that carry the data item (charged 1 in the message
// model); false for control messages (charged omega).
bool IsDataMessage(MessageType type);

struct Message {
  MessageType type = MessageType::kReadRequest;
  std::string key;

  // Link-layer header, used only when the message travels through a
  // ReliableLink. `seq` is the per-direction sequence number (1-based; 0
  // means the message never passed through an ARQ sender). For kAck frames
  // `seq` names the acknowledged frame. `retransmit` marks a re-send of an
  // already-counted frame so the channel meters it outside the paper's
  // cost-model counters.
  uint64_t seq = 0;
  bool retransmit = false;

  // Payload for data messages.
  VersionedValue item;

  // Piggybacked allocation indication (kDataResponse only).
  bool allocate = false;

  // Piggybacked request window, oldest first (allocation / deallocation
  // hand-over). Empty when no window travels.
  std::vector<Op> window;

  // Simulator-level convenience: the in-charge policy state transferred
  // alongside `window`. On the wire this is redundant with `window` (plus a
  // trivially reconstructible counter for the T-policies); the simulator
  // ships the state machine object itself so the protocol layer stays
  // generic across policy families. Tests assert it matches `window` for
  // the sliding-window family.
  std::shared_ptr<AllocationPolicy> transferred_state;
};

}  // namespace mobrep

#endif  // MOBREP_NET_MESSAGE_H_
