#ifndef MOBREP_NET_CHANNEL_H_
#define MOBREP_NET_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "mobrep/net/event_queue.h"
#include "mobrep/net/link.h"
#include "mobrep/net/message.h"
#include "mobrep/net/message_pool.h"
#include "mobrep/obs/metrics.h"

namespace mobrep {

// A unidirectional, order-preserving wireless link with fixed latency.
//
// Fixed latency plus the event queue's FIFO tie-breaking gives in-order
// delivery, which the replica layer relies on (version n is always followed
// by n+1). The channel also meters traffic, feeding both cost models:
// data/control message counts for the message model; the per-request
// connection accounting is done by the protocol driver.
//
// Metering discipline: the paper's counters (`messages_sent`,
// `data_messages_sent`, `control_messages_sent`) count each protocol
// message exactly once. Link-layer overhead — acks and retransmissions
// injected by a ReliableLink — is metered separately (`acks_sent`,
// `retransmissions_sent`) so the ARQ machinery never perturbs the paper's
// cost models.
//
// Hot path (DESIGN.md §11): Send moves the caller's Message into a pooled
// slot once at the link boundary; everything downstream — fault decisions,
// the scheduled delivery event, the receiver callback — works on that one
// slot by reference or by moving the handle. The delivery capture
// [this, PooledMessage] is 24 bytes, inside the event queue's inline
// buffer, so a fault-free hop performs zero heap allocations at steady
// state.
class Channel : public Link {
 public:
  using Receiver = std::function<void(const Message&)>;

  // `queue` must outlive the channel. `latency` >= 0 in simulation time
  // units. `name` labels the link in diagnostics (e.g. "SC->MC").
  Channel(EventQueue* queue, double latency, std::string name);

  void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

  // Enqueues delivery at now() + latency.
  void Send(Message message) override;

  // Re-sends an ARQ frame the sender still owns: copies `frame` into a
  // pooled slot (reusing warm buffer capacities), marks the copy as a
  // retransmission and transmits it. The stored frame itself is untouched,
  // so a later GiveUp can still hand it back unmodified.
  void SendRetransmit(const Message& frame);

  int64_t messages_sent() const { return messages_sent_.value(); }
  int64_t data_messages_sent() const { return data_messages_sent_.value(); }
  int64_t control_messages_sent() const {
    return control_messages_sent_.value();
  }
  // Link-layer overhead, metered outside the paper's cost models.
  int64_t acks_sent() const { return acks_sent_.value(); }
  int64_t retransmissions_sent() const {
    return retransmissions_sent_.value();
  }
  // Crash-recovery handshake traffic (kResyncRequest/kResyncResponse),
  // also outside the paper's cost models: recovery is an availability
  // cost, not a replication-scheme cost. Always 0 on a crash-free run.
  int64_t recovery_messages_sent() const {
    return recovery_messages_sent_.value();
  }
  // Liveness-layer traffic (DESIGN.md §10), outside the paper's cost
  // models for the same reason as recovery traffic: heartbeats
  // (kHeartbeat probes) and lease-protocol control messages
  // (kLeaseRenew/.../kLeaseRegrant). Always 0 with leases disabled.
  int64_t heartbeats_sent() const { return heartbeats_sent_.value(); }
  int64_t lease_messages_sent() const {
    return lease_messages_sent_.value();
  }
  const std::string& name() const override { return name_; }
  double latency() const { return latency_; }

 protected:
  // One transmission attempt of the owned slot: meter, decide its fate
  // (subclasses inject faults here), schedule surviving deliveries.
  // Send/SendRetransmit funnel through this after acquiring the slot.
  virtual void Transmit(PooledMessage slot);

  // Updates the appropriate counter for one transmission attempt of
  // `message` (paper counters for first sends, overhead counters for acks
  // and retransmissions).
  void Meter(const Message& message);

  // Hands the slot to the receiver `delay` time units from now. The slot
  // is released (returned to its pool) when the delivery event is
  // destroyed — after the receiver returns, or during unwind if the
  // receiver throws a CrashSignal.
  void ScheduleDelivery(PooledMessage slot, double delay);

  EventQueue* queue() const { return queue_; }

 private:
  EventQueue* queue_;
  double latency_;
  std::string name_;
  Receiver receiver_;
  // obs::Counter cells behind the historical accessors: lock-free
  // increments, one schema with the rest of the metrics layer.
  obs::Counter messages_sent_;
  obs::Counter data_messages_sent_;
  obs::Counter control_messages_sent_;
  obs::Counter acks_sent_;
  obs::Counter retransmissions_sent_;
  obs::Counter recovery_messages_sent_;
  obs::Counter heartbeats_sent_;
  obs::Counter lease_messages_sent_;
};

}  // namespace mobrep

#endif  // MOBREP_NET_CHANNEL_H_
