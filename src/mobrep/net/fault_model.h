#ifndef MOBREP_NET_FAULT_MODEL_H_
#define MOBREP_NET_FAULT_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mobrep/common/random.h"
#include "mobrep/net/channel.h"
#include "mobrep/net/reliable_link.h"

namespace mobrep {

// A scheduled link outage: the wireless link is down (the MC is in doze
// mode or out of coverage) for sim times in [start, end). Frames sent in
// that interval are lost in both directions.
struct OutageWindow {
  double start = 0.0;
  double end = 0.0;
};

// Deterministic, seeded description of how unreliable the wireless link is.
// The default-constructed config is the paper's perfect link: no loss, no
// duplication, no jitter, no outages — and the protocol harness then wires
// the exact seed topology, so fault-free runs reproduce seed results
// bit-for-bit.
struct FaultConfig {
  // Probability that any individual transmission attempt (including
  // retransmissions and acks) is lost.
  double drop_probability = 0.0;
  // Probability that a delivered frame arrives twice.
  double duplicate_probability = 0.0;
  // Extra per-frame latency drawn uniformly from [0, max_jitter). A
  // nonzero bound yields bounded reordering (two frames sent Δt apart can
  // swap iff Δt < max_jitter).
  double max_jitter = 0.0;
  // Scheduled doze/disconnection windows, in absolute simulation time.
  std::vector<OutageWindow> outages;
  // Seed of the fault streams; each link direction forks its own stream.
  uint64_t seed = 0x6d6f62726570ULL;
  // Run the ARQ layer even on a fault-free link (used to verify that the
  // layer's presence does not perturb the paper's cost counters).
  bool force_reliable = false;
  // ARQ knobs; initial_rto <= 0 is derived from the link parameters.
  ArqConfig arq;

  bool HasFaults() const {
    return drop_probability > 0.0 || duplicate_probability > 0.0 ||
           max_jitter > 0.0 || !outages.empty();
  }
  bool UseReliableLink() const { return force_reliable || HasFaults(); }

  // Total outage time scheduled before sim time `t` (clipped to [0, t)).
  double TotalOutageTimeBefore(double t) const;
};

// The per-direction random fault process: consulted once per transmission
// attempt, it decides drop / duplicate / jitter deterministically in
// (config.seed, stream_salt, attempt sequence).
class LinkFaultModel {
 public:
  LinkFaultModel(const FaultConfig& config, uint64_t stream_salt);

  struct Decision {
    bool drop = false;        // frame lost entirely
    bool in_outage = false;   // ...because the link was down
    bool duplicate = false;   // a second copy is delivered
    double jitter = 0.0;      // extra latency of the primary copy
    double duplicate_jitter = 0.0;  // extra latency of the duplicate
  };

  // Decides the fate of one transmission attempt at sim time `now`.
  Decision Decide(double now);

  bool InOutage(double now) const;
  const FaultConfig& config() const { return config_; }

 private:
  FaultConfig config_;
  Rng rng_;
};

// A Channel that injects the faults described by a FaultConfig, metering
// every injected fault. Paper cost counters still count each application
// message once at Send() time, whether or not the frame survives — the
// ARQ layer above recovers delivery, and its recovery traffic is metered
// separately.
class FaultyChannel : public Channel {
 public:
  FaultyChannel(EventQueue* queue, double latency, std::string name,
                const FaultConfig& config, uint64_t stream_salt);

  bool InOutage(double now) const { return model_.InOutage(now); }
  const LinkFaultModel& fault_model() const { return model_; }

  // Injected-fault meters (obs::Counter cells behind the historical
  // accessors).
  int64_t injected_drops() const { return injected_drops_.value(); }
  int64_t outage_drops() const { return outage_drops_.value(); }
  int64_t injected_duplicates() const { return injected_duplicates_.value(); }
  int64_t jittered_deliveries() const { return jittered_deliveries_.value(); }

 protected:
  // Fault injection happens per transmission attempt: first sends and
  // retransmissions both funnel through here (via Channel::Send /
  // Channel::SendRetransmit), each consuming one fault decision.
  void Transmit(PooledMessage slot) override;

 private:
  LinkFaultModel model_;
  obs::Counter injected_drops_;
  obs::Counter outage_drops_;
  obs::Counter injected_duplicates_;
  obs::Counter jittered_deliveries_;
};

}  // namespace mobrep

#endif  // MOBREP_NET_FAULT_MODEL_H_
