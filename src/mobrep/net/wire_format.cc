#include "mobrep/net/wire_format.h"

#include <string>

#include "mobrep/common/strings.h"

namespace mobrep {

std::string EncodeWindow(const std::vector<Op>& window) {
  std::string encoded = StrFormat("%zu:", window.size());
  uint8_t current = 0;
  int bit = 0;
  for (const Op op : window) {
    if (op == Op::kWrite) current |= static_cast<uint8_t>(1u << bit);
    if (++bit == 8) {
      encoded.push_back(static_cast<char>(current));
      current = 0;
      bit = 0;
    }
  }
  if (bit > 0) encoded.push_back(static_cast<char>(current));
  return encoded;
}

Result<std::vector<Op>> DecodeWindow(const std::string& encoded) {
  const size_t colon = encoded.find(':');
  if (colon == std::string::npos || colon == 0) {
    return InvalidArgumentError("window encoding lacks a bit count");
  }
  const auto count = ParseInt64(encoded.substr(0, colon));
  if (!count.has_value() || *count < 0 || *count > 1'000'000) {
    return InvalidArgumentError("bad window bit count");
  }
  const size_t k = static_cast<size_t>(*count);
  // Only the canonical decimal spelling is accepted (no leading zeros,
  // signs or whitespace), so encode(decode(x)) == x whenever decode
  // succeeds.
  if (encoded.substr(0, colon) != StrFormat("%zu", k)) {
    return InvalidArgumentError("non-canonical window bit count");
  }
  const size_t payload_bytes = (k + 7) / 8;
  if (encoded.size() != colon + 1 + payload_bytes) {
    return InvalidArgumentError(StrFormat(
        "window payload is %zu bytes; expected %zu",
        encoded.size() - colon - 1, payload_bytes));
  }
  std::vector<Op> window;
  window.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    const uint8_t byte =
        static_cast<uint8_t>(encoded[colon + 1 + i / 8]);
    window.push_back(((byte >> (i % 8)) & 1u) != 0 ? Op::kWrite : Op::kRead);
  }
  // Padding bits beyond k must be zero (canonical form).
  if (k % 8 != 0) {
    const uint8_t last =
        static_cast<uint8_t>(encoded.back());
    if ((last >> (k % 8)) != 0) {
      return InvalidArgumentError("non-zero padding bits in window");
    }
  }
  return window;
}

size_t EncodedWindowSize(int k) {
  const std::string prefix = StrFormat("%d:", k);
  return prefix.size() + static_cast<size_t>((k + 7) / 8);
}

}  // namespace mobrep
