#ifndef MOBREP_NET_RELIABLE_LINK_H_
#define MOBREP_NET_RELIABLE_LINK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "mobrep/net/channel.h"
#include "mobrep/net/event_queue.h"
#include "mobrep/net/link.h"
#include "mobrep/net/message.h"

namespace mobrep {

// Tuning knobs of the ARQ layer. All times are simulation time units.
struct ArqConfig {
  // Timeout before the first retransmission of an unacked frame. Must
  // exceed the round-trip time (2 * latency + jitter bound) or every frame
  // is retransmitted once spuriously. <= 0 means "derive from the link"
  // (done by the protocol harness; ReliableLink itself requires > 0).
  double initial_rto = 0.0;
  // Multiplicative backoff applied after every timeout (>= 1).
  double backoff = 2.0;
  // Ceiling on the per-frame retransmission timeout. <= 0 means
  // 64 * initial_rto. Bounds the probe interval through long outages.
  double max_rto = 0.0;
  // A frame that stays unacked through this many retransmissions is
  // abandoned (the give-up hook fires, or the process aborts). Sized so
  // that bounded outages and heavy loss are always survived.
  int max_retries = 60;
  // Deterministic jitter fraction applied on top of the (capped) backoff:
  // each retransmission timeout is stretched by up to this fraction, with
  // the stretch derived from a stateless hash of (seq, attempt) — same
  // frame, same attempt, same timeout on every run. Desynchronizes frames
  // that would otherwise probe a healed link in lockstep at max_rto.
  // 0 (the default) reproduces the un-jittered timer schedule exactly.
  double rto_jitter = 0.0;
  // Total retransmissions this link may spend across all frames of one
  // conversation (a conversation ends at Restart/AdoptPeerEpoch, which
  // reset the spend). Once exhausted, every timed-out frame is abandoned
  // through the give-up path immediately instead of retrying — the
  // mechanism that lets a never-healing partition drain to quiescence in
  // bounded work. <= 0 (the default) means unlimited (per-frame
  // max_retries still applies).
  int64_t retry_budget = 0;
};

// Reliable-delivery (ARQ) endpoint: exactly-once, in-order delivery on top
// of a lossy, duplicating, reordering channel.
//
// One ReliableLink instance is the *sending and receiving half of one node*:
// it sends application frames and link-level acks on `transport` (the
// node's outgoing channel) and is fed every frame arriving on the node's
// incoming channel via HandleFrame(). A connected pair therefore looks like
//
//   mc_to_sc->set_receiver(sc_link.HandleFrame)   sc_link delivers to SC
//   sc_to_mc->set_receiver(mc_link.HandleFrame)   mc_link delivers to MC
//
// Sender side: every frame gets a per-direction sequence number and stays
// in the outstanding set until acked; a retransmission timer on the event
// queue re-sends it with exponential backoff up to ArqConfig::max_retries.
// Receiver side: every received data frame is acked (duplicates included —
// the previous ack may have been lost), delivered in sequence order, with
// out-of-order frames buffered and duplicates dropped.
//
// Retransmissions and acks are metered by the Channel outside the paper's
// cost-model counters, so an ARQ on a fault-free link reproduces the seed
// cost numbers exactly.
class ReliableLink : public Link {
 public:
  using Receiver = std::function<void(const Message&)>;

  // `queue` and `transport` must outlive the link. `config.initial_rto`
  // must be > 0 here (the harness derives it from the channel when the
  // user leaves it at 0).
  ReliableLink(EventQueue* queue, Channel* transport, const ArqConfig& config,
               std::string name);

  // Upcall receiving exactly-once in-order application messages.
  void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

  // Fires whenever the outstanding set becomes empty (every sent frame
  // acked) — the "reconnected / caught up" signal the SC uses to flush
  // propagation it collapsed during an outage.
  void set_on_idle(std::function<void()> on_idle) {
    on_idle_ = std::move(on_idle);
  }

  // Called with the abandoned frame when max_retries is exhausted. Without
  // a hook the process aborts (an unsurvivable link is a harness
  // misconfiguration, not a recoverable condition).
  void set_on_give_up(std::function<void(const Message&)> on_give_up) {
    on_give_up_ = std::move(on_give_up);
  }

  // Link interface: reliable application send.
  void Send(Message message) override;
  bool busy() const override { return !outstanding_.empty(); }
  const std::string& name() const override { return name_; }

  // --- Liveness layer (DESIGN.md §10) ---
  //
  // Sends one unreliable kHeartbeat probe: own sequence space, never
  // outstanding, never acked, never delivered to the application. The
  // peer's link feeds it (like every live frame) to on_peer_heard and
  // drops it. Carries the sender's epochs so a stale incarnation cannot
  // keep a failure detector alive.
  void SendHeartbeat();

  // Fires with the arrival time of every frame that passes epoch fencing
  // (data, ack or heartbeat) — the failure-detector feed: any live-
  // incarnation traffic proves the peer is up.
  void set_on_peer_heard(std::function<void(double now)> on_peer_heard) {
    on_peer_heard_ = std::move(on_peer_heard);
  }

  // Entry point for every frame arriving at this node (installed as the
  // incoming channel's receiver).
  void HandleFrame(const Message& frame);

  // --- Crash-recovery support (docs/RECOVERY.md) ---
  //
  // Epoch fencing ties every frame to a (sender incarnation, believed
  // receiver incarnation) pair. A frame from a dead incarnation of the
  // peer, or addressed to a dead incarnation of this node, is fenced
  // (dropped, not acked). Seeing the peer at a *newer* incarnation voids
  // this sender's outstanding conversation — those frames were addressed
  // to the dead incarnation — and restarts sequence numbering; the
  // app-level resync handshake then reconciles ownership. Disabled by
  // default: frames carry epoch 0 and none of this runs.
  void EnableEpochFencing(uint32_t local_epoch, uint32_t peer_epoch);

  // Restart of this link's owning node at incarnation `new_local_epoch`:
  // drops all volatile ARQ state (outstanding frames, reorder buffer,
  // sequence numbers) and implies EnableEpochFencing. Pending
  // retransmission timers become no-ops (they check the conversation
  // generation), so a link object safely survives its node's restart.
  void Restart(uint32_t new_local_epoch);

  // Crash hook fired at this node's send ("send") and receive-delivery
  // ("recv") points; may throw CrashSignal (chaos harness only). The recv
  // hook fires after the frame was acked and dequeued — the acked-but-
  // unprocessed window a real crash exposes.
  void set_crash_hook(std::function<void(const char* site)> hook) {
    crash_hook_ = std::move(hook);
  }

  uint32_t local_epoch() const { return local_epoch_; }
  uint32_t peer_epoch() const { return peer_epoch_; }
  bool epoch_fencing_enabled() const { return epochs_enabled_; }

  // Counters (all link-layer, outside the paper's cost models; obs::Counter
  // cells behind the historical accessors).
  int64_t retransmissions() const { return retransmissions_.value(); }
  int64_t timeouts() const { return timeouts_.value(); }
  int64_t duplicates_dropped() const { return duplicates_dropped_.value(); }
  int64_t delivered() const { return delivered_.value(); }
  int64_t give_ups() const { return give_ups_.value(); }
  // Frames dropped by epoch fencing (stale incarnation on either end).
  int64_t fenced_frames() const { return fenced_frames_.value(); }
  // Outstanding frames voided because the peer restarted under them.
  int64_t voided_frames() const { return voided_frames_.value(); }
  // Heartbeat probes received (and dropped) by this endpoint.
  int64_t heartbeats_received() const { return heartbeats_received_.value(); }
  // Frames abandoned because the per-conversation retry budget ran out
  // (a subset of give_ups; see ArqConfig::retry_budget).
  int64_t budget_exhausted_frames() const {
    return budget_exhausted_frames_.value();
  }
  // Retransmissions spent against the budget in the current conversation.
  int64_t retry_budget_used() const { return budget_used_; }
  bool retry_budget_exhausted() const {
    return config_.retry_budget > 0 && budget_used_ >= config_.retry_budget;
  }
  size_t outstanding_frames() const { return outstanding_.size(); }
  size_t buffered_frames() const { return reorder_buffer_.size(); }

 private:
  struct Outstanding {
    Message frame;
    int attempts = 0;  // retransmissions so far
  };

  void ArmTimer(uint64_t seq, double rto);
  // Deterministic per-(seq, attempt) jitter factor in [1, 1 + rto_jitter].
  double JitterFactor(uint64_t seq, int attempt) const;
  // The peer restarted at incarnation `epoch`: void the old conversation
  // and start a fresh one toward the new incarnation.
  void AdoptPeerEpoch(uint32_t epoch);
  // Abandons the outstanding frame at `it` through the give-up path;
  // `why` names the cause in the no-hook abort message and
  // `budget_exhausted` marks the per-conversation-budget cause in the
  // kArqAbandon trace payload.
  void GiveUp(std::map<uint64_t, Outstanding>::iterator it, const char* why,
              bool budget_exhausted);

  EventQueue* queue_;
  Channel* transport_;
  ArqConfig config_;
  std::string name_;
  Receiver receiver_;
  std::function<void()> on_idle_;
  std::function<void(const Message&)> on_give_up_;
  std::function<void(double)> on_peer_heard_;
  std::function<void(const char*)> crash_hook_;

  uint64_t next_send_seq_ = 1;
  uint64_t next_deliver_seq_ = 1;
  // Heartbeats live in their own sequence space (they are never acked, so
  // sharing the ARQ space would leave permanent holes in the reorder
  // window).
  uint64_t next_heartbeat_seq_ = 1;
  // Retransmissions spent against ArqConfig::retry_budget this
  // conversation.
  int64_t budget_used_ = 0;
  std::map<uint64_t, Outstanding> outstanding_;
  std::map<uint64_t, Message> reorder_buffer_;

  // FNV-1a of `name_`, mixed into the jitter hash so the two directions
  // of a link pair never jitter in lockstep.
  uint64_t jitter_salt_ = 0;

  bool epochs_enabled_ = false;
  uint32_t local_epoch_ = 0;
  uint32_t peer_epoch_ = 0;
  // Bumped on every Restart/AdoptPeerEpoch; retransmission timers armed in
  // an older conversation no-op instead of touching recycled seq numbers.
  uint64_t conversation_ = 0;

  obs::Counter retransmissions_;
  obs::Counter timeouts_;
  obs::Counter duplicates_dropped_;
  obs::Counter delivered_;
  obs::Counter give_ups_;
  obs::Counter fenced_frames_;
  obs::Counter voided_frames_;
  obs::Counter heartbeats_received_;
  obs::Counter budget_exhausted_frames_;
};

}  // namespace mobrep

#endif  // MOBREP_NET_RELIABLE_LINK_H_
