#ifndef MOBREP_NET_FAILURE_DETECTOR_H_
#define MOBREP_NET_FAILURE_DETECTOR_H_

#include <cstdint>

#include "mobrep/obs/metrics.h"

namespace mobrep {

// Tuning knobs of the per-peer failure detector. All times are simulation
// time units, so every decision is deterministic under the simulated clock.
struct FailureDetectorConfig {
  // Silence longer than this marks the peer suspected. Must exceed the
  // heartbeat interval plus the one-way latency bound or a healthy peer is
  // suspected between consecutive heartbeats.
  double timeout = 0.05;
  // Multiplicative backoff applied to the effective timeout after every
  // false suspicion (the peer was suspected, then heard again). A flappy
  // link thereby earns a longer timeout instead of oscillating. >= 1.
  double backoff = 2.0;
  // Ceiling on the backed-off timeout. <= 0 means 8 * timeout.
  double max_timeout = 0.0;
};

// Timeout-with-backoff failure detector for a single peer, fed by the
// liveness layer: every frame heard from the peer's current incarnation
// (heartbeats included) refreshes `last_heard`. The detector never acts on
// its own — it is a pure predicate the SC consults when deciding whether to
// serve degraded reads or reclaim a lease. Deterministic: same clock, same
// OnHeard sequence, same verdicts.
//
// Like every failure detector over an asynchronous link, it is only
// eventually accurate: a suspicion can be false (the peer is merely slow or
// the path one-way dead). The lease layer, not the detector, supplies
// safety — a suspected-but-alive holder has self-fenced by lease expiry
// before the SC acts on the suspicion.
class FailureDetector {
 public:
  explicit FailureDetector(const FailureDetectorConfig& config);

  // A frame from the peer's live incarnation arrived at `now`. Clears any
  // standing suspicion; if that suspicion turns out to have been false,
  // the effective timeout backs off.
  void OnHeard(double now);

  // True when the peer has been silent longer than the current timeout.
  bool Suspected(double now) const;

  // Silence duration — the staleness bound a degraded read advertises.
  double SilenceDuration(double now) const { return now - last_heard_; }

  double last_heard() const { return last_heard_; }
  double current_timeout() const { return current_timeout_; }
  int64_t suspicions() const { return suspicions_.value(); }
  int64_t false_suspicions() const { return false_suspicions_.value(); }

 private:
  FailureDetectorConfig config_;
  double last_heard_ = 0.0;
  double current_timeout_ = 0.0;
  // Suspected() is const; suspicion onset is latched here on the next
  // OnHeard so false suspicions can back the timeout off.
  mutable bool suspicion_latched_ = false;
  mutable obs::Counter suspicions_;
  obs::Counter false_suspicions_;
};

}  // namespace mobrep

#endif  // MOBREP_NET_FAILURE_DETECTOR_H_
