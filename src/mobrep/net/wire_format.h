#ifndef MOBREP_NET_WIRE_FORMAT_H_
#define MOBREP_NET_WIRE_FORMAT_H_

#include <string>
#include <vector>

#include "mobrep/common/status.h"
#include "mobrep/core/schedule.h"

namespace mobrep {

// Compact wire encoding of the piggybacked request window (paper §4: "the
// window is tracked as a sequence of k bits").
//
// Layout: a decimal bit count, a colon, then ceil(k/8) payload bytes,
// little-endian within each byte (bit 0 of byte 0 = oldest request;
// 1 = write). The count makes trailing padding bits unambiguous. Example:
// the window w r r (oldest first) encodes as "3:" + byte 0b00000001.
std::string EncodeWindow(const std::vector<Op>& window);

// Inverse of EncodeWindow; rejects malformed input.
Result<std::vector<Op>> DecodeWindow(const std::string& encoded);

// Size in bytes of the encoded form for a window of k requests.
size_t EncodedWindowSize(int k);

}  // namespace mobrep

#endif  // MOBREP_NET_WIRE_FORMAT_H_
