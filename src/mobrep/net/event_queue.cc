#include "mobrep/net/event_queue.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "mobrep/common/check.h"
#include "mobrep/common/strings.h"
#include "mobrep/obs/alloc_stats.h"

namespace mobrep {

namespace {
constexpr size_t kArity = 4;
}  // namespace

EventQueue::EventQueue() : alloc_counters_(&obs::LocalAllocCounters()) {}

void EventQueue::PushHeap(Event event) {
  // Sift a hole up from the end; one move per level, the new event is
  // materialized exactly once at its final position.
  size_t hole = events_.size();
  events_.emplace_back();
  while (hole > 0) {
    const size_t parent = (hole - 1) / kArity;
    if (!Before(event, events_[parent])) break;
    events_[hole] = std::move(events_[parent]);
    hole = parent;
  }
  events_[hole] = std::move(event);
}

EventQueue::Event EventQueue::PopHeap() {
  Event top = std::move(events_.front());
  Event last = std::move(events_.back());
  events_.pop_back();
  const size_t n = events_.size();
  if (n > 0) {
    // Sift the hole at the root down, pulling the earliest child up each
    // level, then drop `last` into the final hole.
    size_t hole = 0;
    while (true) {
      const size_t first_child = kArity * hole + 1;
      if (first_child >= n) break;
      const size_t end_child = std::min(first_child + kArity, n);
      size_t best = first_child;
      for (size_t c = first_child + 1; c < end_child; ++c) {
        if (Before(events_[c], events_[best])) best = c;
      }
      if (!Before(events_[best], last)) break;
      events_[hole] = std::move(events_[best]);
      hole = best;
    }
    events_[hole] = std::move(last);
  }
  return top;
}

void EventQueue::ScheduleAt(double time, EventFn fn) {
  MOBREP_CHECK_MSG(time >= now_, "cannot schedule an event in the past");
  if (fn.is_inline()) {
    ++alloc_counters_->event_inline;
  } else {
    ++alloc_counters_->event_heap;
  }
  PushHeap(Event{time, next_sequence_++, std::move(fn)});
  peak_pending_ = std::max(peak_pending_, events_.size());
}

void EventQueue::ScheduleAfter(double delay, EventFn fn) {
  MOBREP_CHECK(delay >= 0.0);
  ScheduleAt(now_ + delay, std::move(fn));
}

bool EventQueue::RunNext() {
  if (events_.empty()) return false;
  // The event is moved out before it runs, so the handler may schedule
  // further events safely; its capture (e.g. a pooled message slot) is
  // destroyed when `event` goes out of scope, even if the handler throws
  // (CrashSignal unwinds through here).
  Event event = PopHeap();
  now_ = event.time;
  ++executed_;
  event.fn();
  return true;
}

int64_t EventQueue::AutoEventBudget(int64_t pending_at_entry) {
  return std::max<int64_t>(1'000'000, 64 * pending_at_entry + 4096);
}

int64_t EventQueue::RunUntilQuiescent(int64_t max_events) {
  const int64_t pending_at_entry = static_cast<int64_t>(events_.size());
  const int64_t budget =
      max_events <= 0 ? AutoEventBudget(pending_at_entry) : max_events;
  int64_t ran = 0;
  const bool quiescent = TryRunUntilQuiescent(budget, &ran);
  MOBREP_CHECK_MSG(
      quiescent,
      StrFormat("event cascade exceeded budget of %lld events "
                "(%lld pending at entry, %lld ran, %zu still pending); "
                "livelock, or pass a larger explicit budget for this sim size",
                static_cast<long long>(budget),
                static_cast<long long>(pending_at_entry),
                static_cast<long long>(ran), events_.size())
          .c_str());
  return ran;
}

double EventQueue::next_time() const {
  if (events_.empty()) return std::numeric_limits<double>::infinity();
  return events_.front().time;
}

bool EventQueue::TryRunUntilQuiescent(int64_t max_events,
                                      int64_t* events_run) {
  const int64_t budget =
      max_events <= 0 ? AutoEventBudget(static_cast<int64_t>(events_.size()))
                      : max_events;
  int64_t ran = 0;
  while (ran < budget && RunNext()) ++ran;
  if (events_run != nullptr) *events_run = ran;
  return events_.empty();
}

}  // namespace mobrep
