#include "mobrep/net/event_queue.h"

#include <limits>
#include <utility>

#include "mobrep/common/check.h"

namespace mobrep {

void EventQueue::ScheduleAt(double time, EventFn fn) {
  MOBREP_CHECK_MSG(time >= now_, "cannot schedule an event in the past");
  events_.push(Event{time, next_sequence_++, std::move(fn)});
}

void EventQueue::ScheduleAfter(double delay, EventFn fn) {
  MOBREP_CHECK(delay >= 0.0);
  ScheduleAt(now_ + delay, std::move(fn));
}

bool EventQueue::RunNext() {
  if (events_.empty()) return false;
  // priority_queue::top() is const; the event is copied out, then popped,
  // so the handler may schedule further events safely.
  Event event = events_.top();
  events_.pop();
  now_ = event.time;
  event.fn();
  return true;
}

int64_t EventQueue::RunUntilQuiescent(int64_t max_events) {
  int64_t ran = 0;
  const bool quiescent = TryRunUntilQuiescent(max_events, &ran);
  MOBREP_CHECK_MSG(quiescent,
                   "event cascade exceeded max_events; livelock?");
  return ran;
}

double EventQueue::next_time() const {
  if (events_.empty()) return std::numeric_limits<double>::infinity();
  return events_.top().time;
}

bool EventQueue::TryRunUntilQuiescent(int64_t max_events,
                                      int64_t* events_run) {
  int64_t ran = 0;
  while (ran < max_events && RunNext()) ++ran;
  if (events_run != nullptr) *events_run = ran;
  return events_.empty();
}

}  // namespace mobrep
