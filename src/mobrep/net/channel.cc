#include "mobrep/net/channel.h"

#include <utility>

#include "mobrep/common/check.h"

namespace mobrep {

Channel::Channel(EventQueue* queue, double latency, std::string name)
    : queue_(queue), latency_(latency), name_(std::move(name)) {
  MOBREP_CHECK(queue != nullptr);
  MOBREP_CHECK(latency >= 0.0);
}

void Channel::Meter(const Message& message) {
  if (message.type == MessageType::kAck) {
    ++acks_sent_;
    return;
  }
  if (message.retransmit) {
    ++retransmissions_sent_;
    return;
  }
  ++messages_sent_;
  if (IsDataMessage(message.type)) {
    ++data_messages_sent_;
  } else {
    ++control_messages_sent_;
  }
}

void Channel::ScheduleDelivery(Message message, double delay) {
  MOBREP_CHECK_MSG(receiver_ != nullptr,
                   "channel has no receiver installed");
  queue_->ScheduleAfter(delay, [this, msg = std::move(message)]() {
    receiver_(msg);
  });
}

void Channel::Send(Message message) {
  Meter(message);
  ScheduleDelivery(std::move(message), latency_);
}

}  // namespace mobrep
