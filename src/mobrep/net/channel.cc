#include "mobrep/net/channel.h"

#include <utility>

#include "mobrep/common/check.h"
#include "mobrep/obs/trace.h"

namespace mobrep {

Channel::Channel(EventQueue* queue, double latency, std::string name)
    : queue_(queue), latency_(latency), name_(std::move(name)) {
  MOBREP_CHECK(queue != nullptr);
  MOBREP_CHECK(latency >= 0.0);
}

void Channel::Meter(const Message& message) {
  // Sender-incarnation enrichment of the network-plane payloads (see
  // trace.h): epoch is 0 everywhere outside the chaos harness and is the
  // same at any thread count, so packing it keeps trace diffs byte-stable.
  if (message.type == MessageType::kAck) {
    acks_sent_.Increment();
    MOBREP_TRACE_EVENT(obs::TraceEventKind::kAckSend, name_.c_str(),
                       queue_->now(), static_cast<int64_t>(message.seq),
                       static_cast<int64_t>(message.epoch));
    return;
  }
  if (message.type == MessageType::kHeartbeat) {
    // Fire-and-forget liveness probe: never retransmitted, never part of
    // any protocol exchange, never in the paper's counters.
    heartbeats_sent_.Increment();
    MOBREP_TRACE_EVENT(obs::TraceEventKind::kHeartbeat, name_.c_str(),
                       queue_->now(), static_cast<int64_t>(message.seq),
                       static_cast<int64_t>(message.epoch));
    return;
  }
  if (message.retransmit) {
    retransmissions_sent_.Increment();
    MOBREP_TRACE_EVENT(obs::TraceEventKind::kRetransmit, name_.c_str(),
                       queue_->now(), static_cast<int64_t>(message.seq),
                       static_cast<int64_t>(message.type),
                       static_cast<int64_t>(message.epoch));
    return;
  }
  if (IsLeaseMessage(message.type)) {
    // Lease traffic only exists with leases enabled; like recovery
    // traffic it prices availability, not a replication scheme.
    lease_messages_sent_.Increment();
    MOBREP_TRACE_EVENT(obs::TraceEventKind::kMessageSend, name_.c_str(),
                       queue_->now(), static_cast<int64_t>(message.seq),
                       static_cast<int64_t>(message.type),
                       static_cast<int64_t>(message.epoch) << 1);
    return;
  }
  if (message.type == MessageType::kResyncRequest ||
      message.type == MessageType::kResyncResponse) {
    // Recovery traffic only ever follows a crash; keep it out of the
    // paper's counters so cost tables compare schemes, not crash counts.
    recovery_messages_sent_.Increment();
    MOBREP_TRACE_EVENT(obs::TraceEventKind::kMessageSend, name_.c_str(),
                       queue_->now(), static_cast<int64_t>(message.seq),
                       static_cast<int64_t>(message.type),
                       static_cast<int64_t>(message.epoch) << 1);
    return;
  }
  messages_sent_.Increment();
  if (IsDataMessage(message.type)) {
    data_messages_sent_.Increment();
  } else {
    control_messages_sent_.Increment();
  }
  MOBREP_TRACE_EVENT(obs::TraceEventKind::kMessageSend, name_.c_str(),
                     queue_->now(), static_cast<int64_t>(message.seq),
                     static_cast<int64_t>(message.type),
                     (IsDataMessage(message.type) ? 1 : 0) |
                         (static_cast<int64_t>(message.epoch) << 1));
}

void Channel::ScheduleDelivery(PooledMessage slot, double delay) {
  MOBREP_CHECK_MSG(receiver_ != nullptr,
                   "channel has no receiver installed");
  queue_->ScheduleAfter(delay, [this, slot = std::move(slot)]() {
    MOBREP_TRACE_EVENT(obs::TraceEventKind::kMessageRecv, name_.c_str(),
                       queue_->now(), static_cast<int64_t>(slot->seq),
                       static_cast<int64_t>(slot->type),
                       static_cast<int64_t>(slot->epoch));
    receiver_(*slot);
  });
}

void Channel::Transmit(PooledMessage slot) {
  Meter(*slot);
  ScheduleDelivery(std::move(slot), latency_);
}

void Channel::Send(Message message) {
  Transmit(MessagePool::ThreadLocal()->Acquire(std::move(message)));
}

void Channel::SendRetransmit(const Message& frame) {
  PooledMessage slot = MessagePool::ThreadLocal()->AcquireCopy(frame);
  slot->retransmit = true;
  Transmit(std::move(slot));
}

}  // namespace mobrep
