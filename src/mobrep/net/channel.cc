#include "mobrep/net/channel.h"

#include <utility>

#include "mobrep/common/check.h"

namespace mobrep {

Channel::Channel(EventQueue* queue, double latency, std::string name)
    : queue_(queue), latency_(latency), name_(std::move(name)) {
  MOBREP_CHECK(queue != nullptr);
  MOBREP_CHECK(latency >= 0.0);
}

void Channel::Send(Message message) {
  MOBREP_CHECK_MSG(receiver_ != nullptr,
                   "channel has no receiver installed");
  ++messages_sent_;
  if (IsDataMessage(message.type)) {
    ++data_messages_sent_;
  } else {
    ++control_messages_sent_;
  }
  queue_->ScheduleAfter(latency_, [this, msg = std::move(message)]() {
    receiver_(msg);
  });
}

}  // namespace mobrep
