#include "mobrep/net/reliable_link.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "mobrep/common/check.h"
#include "mobrep/common/random.h"
#include "mobrep/obs/trace.h"

namespace mobrep {

namespace {

// FNV-1a 64, matching the WAL's checksum choice: a stable per-link salt
// that does not depend on std::hash implementation details.
uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

ReliableLink::ReliableLink(EventQueue* queue, Channel* transport,
                           const ArqConfig& config, std::string name)
    : queue_(queue),
      transport_(transport),
      config_(config),
      name_(std::move(name)) {
  MOBREP_CHECK(queue != nullptr);
  MOBREP_CHECK(transport != nullptr);
  MOBREP_CHECK_MSG(config_.initial_rto > 0.0,
                   "ArqConfig::initial_rto must be derived before use");
  MOBREP_CHECK(config_.backoff >= 1.0);
  MOBREP_CHECK(config_.max_retries >= 0);
  MOBREP_CHECK(config_.rto_jitter >= 0.0);
  if (config_.max_rto <= 0.0) config_.max_rto = 64.0 * config_.initial_rto;
  config_.max_rto = std::max(config_.max_rto, config_.initial_rto);
  jitter_salt_ = Fnv1a64(name_);
}

void ReliableLink::EnableEpochFencing(uint32_t local_epoch,
                                      uint32_t peer_epoch) {
  MOBREP_CHECK_MSG(local_epoch != 0 && peer_epoch != 0,
                   "incarnation 0 is reserved for 'fencing disabled'");
  epochs_enabled_ = true;
  local_epoch_ = local_epoch;
  peer_epoch_ = peer_epoch;
}

void ReliableLink::Restart(uint32_t new_local_epoch) {
  MOBREP_CHECK_MSG(new_local_epoch > local_epoch_,
                   "a restart must advance the incarnation");
  epochs_enabled_ = true;
  local_epoch_ = new_local_epoch;
  // Everything below is the node's volatile ARQ state, gone with the
  // crash. Pending timers notice the conversation bump and no-op.
  outstanding_.clear();
  reorder_buffer_.clear();
  next_send_seq_ = 1;
  next_deliver_seq_ = 1;
  budget_used_ = 0;
  ++conversation_;
}

void ReliableLink::AdoptPeerEpoch(uint32_t epoch) {
  // Every outstanding frame was addressed to the peer's dead incarnation;
  // no ack for them can ever arrive. The app-level resync handshake — the
  // very frame that got us here — re-establishes whatever state those
  // frames were carrying, so they are voided, not re-sent. on_idle_ is
  // deliberately not fired: the "caught up" signal would flush pending
  // propagation at a peer that has not reconciled ownership yet.
  voided_frames_.Increment(static_cast<int64_t>(outstanding_.size()));
  peer_epoch_ = epoch;
  outstanding_.clear();
  reorder_buffer_.clear();
  next_send_seq_ = 1;
  next_deliver_seq_ = 1;
  budget_used_ = 0;
  ++conversation_;
}

void ReliableLink::Send(Message message) {
  if (crash_hook_ != nullptr) crash_hook_("send");
  const uint64_t seq = next_send_seq_++;
  message.seq = seq;
  message.retransmit = false;
  if (epochs_enabled_) {
    message.epoch = local_epoch_;
    message.peer_epoch = peer_epoch_;
  }
  outstanding_.emplace(seq, Outstanding{message, 0});
  transport_->Send(std::move(message));
  ArmTimer(seq, config_.initial_rto);
}

double ReliableLink::JitterFactor(uint64_t seq, int attempt) const {
  if (config_.rto_jitter <= 0.0) return 1.0;
  // Stateless hash of (link, seq, attempt): the same frame gets the same
  // timeout on every run, but neither two frames nor two attempts (nor the
  // two directions of a link pair) back off in lockstep.
  SplitMix64 mix(jitter_salt_ ^ (seq * 0x9e3779b97f4a7c15ULL) ^
                 static_cast<uint64_t>(attempt));
  const double unit =
      static_cast<double>(mix.Next() >> 11) * (1.0 / 9007199254740992.0);
  return 1.0 + config_.rto_jitter * unit;
}

void ReliableLink::GiveUp(std::map<uint64_t, Outstanding>::iterator it,
                          const char* why, bool budget_exhausted) {
  const Message abandoned = it->second.frame;
  outstanding_.erase(it);
  give_ups_.Increment();
  // Labelled with the outgoing channel so the offline analyzer can close
  // the conversation (direction, epoch, seq) the frame belonged to.
  MOBREP_TRACE_EVENT(obs::TraceEventKind::kArqAbandon,
                     transport_->name().c_str(), queue_->now(),
                     static_cast<int64_t>(abandoned.seq),
                     static_cast<int64_t>(abandoned.type),
                     (budget_exhausted ? 1 : 0) |
                         (static_cast<int64_t>(abandoned.epoch) << 1));
  if (on_give_up_ == nullptr) {
    // An unsurvivable link with nobody watching is a harness
    // misconfiguration, not a recoverable condition; abort with context.
    std::fprintf(stderr,
                 "reliable link %s abandoned %s frame seq=%llu: %s\n",
                 name_.c_str(), MessageTypeName(abandoned.type),
                 static_cast<unsigned long long>(abandoned.seq), why);
    MOBREP_CHECK_MSG(false, why);
  }
  on_give_up_(abandoned);
  if (outstanding_.empty() && on_idle_ != nullptr) on_idle_();
}

void ReliableLink::ArmTimer(uint64_t seq, double rto) {
  queue_->ScheduleAfter(rto, [this, seq, rto, gen = conversation_]() {
    if (gen != conversation_) return;  // conversation died; stale timer
    const auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return;  // acked since; stale timer
    timeouts_.Increment();
    MOBREP_TRACE_EVENT(obs::TraceEventKind::kArqTimeout, name_.c_str(),
                       queue_->now(), static_cast<int64_t>(seq),
                       it->second.attempts);
    if (it->second.attempts >= config_.max_retries) {
      GiveUp(it, "reliable link exhausted its per-frame retry cap",
             /*budget_exhausted=*/false);
      return;
    }
    if (config_.retry_budget > 0 && budget_used_ >= config_.retry_budget) {
      // The conversation's total retransmission spend is exhausted (the
      // peer is most plausibly gone for good): abandon instead of probing
      // forever. Surfaced as a dedicated counter plus the give-up hook.
      budget_exhausted_frames_.Increment();
      GiveUp(it, "reliable link exhausted its per-conversation retry budget",
             /*budget_exhausted=*/true);
      return;
    }
    ++it->second.attempts;
    ++budget_used_;
    // The transport copies the stored frame straight into a pooled slot
    // and marks the copy; the original stays pristine for GiveUp.
    transport_->SendRetransmit(it->second.frame);
    retransmissions_.Increment();
    const double next =
        std::min(rto * config_.backoff, config_.max_rto) *
        JitterFactor(seq, it->second.attempts);
    ArmTimer(seq, next);
  });
}

void ReliableLink::SendHeartbeat() {
  Message probe;
  probe.type = MessageType::kHeartbeat;
  probe.seq = next_heartbeat_seq_++;
  if (epochs_enabled_) {
    probe.epoch = local_epoch_;
    probe.peer_epoch = peer_epoch_;
  }
  transport_->Send(std::move(probe));
}

void ReliableLink::HandleFrame(const Message& frame) {
  MOBREP_CHECK_MSG(frame.seq != 0, "unnumbered frame on a reliable link");
  if (epochs_enabled_) {
    if (frame.peer_epoch != local_epoch_) {
      // Addressed to a dead (or future, mid-handshake) incarnation of this
      // node. Not acked: the sender either died with that conversation or
      // will void it when it learns our incarnation from the resync.
      fenced_frames_.Increment();
      MOBREP_TRACE_EVENT(obs::TraceEventKind::kFencedFrame, name_.c_str(),
                         queue_->now(), static_cast<int64_t>(frame.seq),
                         static_cast<int64_t>(frame.peer_epoch),
                         static_cast<int64_t>(local_epoch_));
      return;
    }
    if (frame.epoch < peer_epoch_) {
      // From a dead incarnation of the peer (pre-crash frame still in
      // flight, or a retransmission the dead node armed).
      fenced_frames_.Increment();
      MOBREP_TRACE_EVENT(obs::TraceEventKind::kFencedFrame, name_.c_str(),
                         queue_->now(), static_cast<int64_t>(frame.seq),
                         static_cast<int64_t>(frame.epoch),
                         static_cast<int64_t>(peer_epoch_));
      return;
    }
    if (frame.epoch > peer_epoch_) AdoptPeerEpoch(frame.epoch);
  }
  // Any frame from the peer's live incarnation proves it is up — the
  // failure-detector feed. Fires after fencing so a dead incarnation's
  // stragglers cannot keep the detector quiet about a restarted peer.
  if (on_peer_heard_ != nullptr) on_peer_heard_(queue_->now());
  if (frame.type == MessageType::kHeartbeat) {
    // Fire-and-forget liveness probe: its only job was the on_peer_heard
    // call above. Not acked, not delivered, not sequenced with data.
    heartbeats_received_.Increment();
    return;
  }
  if (frame.type == MessageType::kAck) {
    const auto it = outstanding_.find(frame.seq);
    if (it == outstanding_.end()) return;  // duplicate or stale ack
    outstanding_.erase(it);
    if (outstanding_.empty() && on_idle_ != nullptr) on_idle_();
    return;
  }

  // Ack every received data frame, duplicates included: the ack for the
  // first copy may have been lost, and only a fresh ack stops the peer's
  // retransmission timer.
  Message ack;
  ack.type = MessageType::kAck;
  ack.key = frame.key;
  ack.key_id = frame.key_id;
  ack.seq = frame.seq;
  if (epochs_enabled_) {
    ack.epoch = local_epoch_;
    ack.peer_epoch = peer_epoch_;
  }
  transport_->Send(std::move(ack));

  if (frame.seq < next_deliver_seq_ ||
      reorder_buffer_.count(frame.seq) != 0) {
    duplicates_dropped_.Increment();
    MOBREP_TRACE_EVENT(obs::TraceEventKind::kDuplicateDropped, name_.c_str(),
                       queue_->now(), static_cast<int64_t>(frame.seq));
    return;
  }
  if (frame.seq == next_deliver_seq_) {
    // In-order fast path — the common case on a healthy link: deliver the
    // frame straight from the channel's slot, no reorder-buffer copy. The
    // buffer only ever holds seqs > next_deliver_seq_ (the drain loop
    // empties anything at the boundary before returning), so skipping the
    // buffer cannot reorder or duplicate.
    ++next_deliver_seq_;
    delivered_.Increment();
    // The crash window a real kill -9 exposes: the frame is acked and
    // dequeued but the application never processed it.
    if (crash_hook_ != nullptr) crash_hook_("recv");
    MOBREP_CHECK_MSG(receiver_ != nullptr,
                     "reliable link has no receiver installed");
    receiver_(frame);
  } else {
    // Out of order: this is where the ARQ layer's one owned copy lives
    // until the gap fills.
    reorder_buffer_.emplace(frame.seq, frame);
  }
  while (!reorder_buffer_.empty() &&
         reorder_buffer_.begin()->first == next_deliver_seq_) {
    Message next = std::move(reorder_buffer_.begin()->second);
    reorder_buffer_.erase(reorder_buffer_.begin());
    ++next_deliver_seq_;
    delivered_.Increment();
    if (crash_hook_ != nullptr) crash_hook_("recv");
    MOBREP_CHECK_MSG(receiver_ != nullptr,
                     "reliable link has no receiver installed");
    receiver_(next);
  }
}

}  // namespace mobrep
