#ifndef MOBREP_NET_LINK_H_
#define MOBREP_NET_LINK_H_

#include <string>

#include "mobrep/net/message.h"

namespace mobrep {

// Send-side interface of a point-to-point link, as seen by the protocol
// endpoints (MobileClient, StationaryServer).
//
// Two implementations exist: the raw `Channel` (perfect FIFO pipe, the
// paper's idealized wireless link) and `ReliableLink` (an ARQ layer that
// recreates exactly-once in-order delivery on top of a lossy
// `FaultyChannel`). Endpoints only ever enqueue messages and ask whether
// the link is currently busy; everything else (acks, retransmission,
// dedup) is below this interface.
class Link {
 public:
  virtual ~Link() = default;

  // Enqueues `message` for delivery to the peer.
  virtual void Send(Message message) = 0;

  // True while the link layer still has unacknowledged traffic in flight.
  // A raw channel delivers unconditionally and is never busy; a reliable
  // link is busy until every sent frame has been acked. The SC uses this
  // to collapse write propagation during an MC outage (doze mode).
  virtual bool busy() const { return false; }

  // Label for diagnostics (e.g. "MC->SC").
  virtual const std::string& name() const = 0;
};

}  // namespace mobrep

#endif  // MOBREP_NET_LINK_H_
