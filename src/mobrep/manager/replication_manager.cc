#include "mobrep/manager/replication_manager.h"

#include <utility>

#include "mobrep/common/check.h"
#include "mobrep/common/strings.h"

namespace mobrep {

ReplicationManager::ReplicationManager(const Options& options)
    : options_(options) {}

ReplicationManager::Item& ReplicationManager::GetOrCreate(
    const std::string& key) {
  const auto it = items_.find(key);
  if (it != items_.end()) return it->second;
  Item item;
  item.spec = options_.default_spec;
  item.policy = CreatePolicy(item.spec);
  item.meter = std::make_unique<CostMeter>(item.policy.get(),
                                           &options_.model);
  return items_.emplace(key, std::move(item)).first->second;
}

void ReplicationManager::SetItemPolicy(const std::string& key,
                                       const PolicySpec& spec) {
  Item& item = GetOrCreate(key);
  // Preserve the accumulated breakdown: CostMeter owns it, so carry the
  // old meter's counters into a fresh meter by re-basing.
  CostBreakdown carried = item.meter->breakdown();
  item.spec = spec;
  item.policy = CreatePolicy(spec);
  item.meter = std::make_unique<CostMeter>(item.policy.get(),
                                           &options_.model);
  // Stash the carried accounting by replaying it as an offset; CostMeter
  // has no mutator for this, so keep it beside the meter instead.
  carried_[key] = carried;
}

double ReplicationManager::OnRead(const std::string& key) {
  return GetOrCreate(key).meter->OnRequest(Op::kRead);
}

double ReplicationManager::OnWrite(const std::string& key) {
  return GetOrCreate(key).meter->OnRequest(Op::kWrite);
}

bool ReplicationManager::HasCopy(const std::string& key) const {
  const auto it = items_.find(key);
  return it != items_.end() && it->second.policy->has_copy();
}

namespace {

CostBreakdown Merge(const CostBreakdown& a, const CostBreakdown& b) {
  CostBreakdown out = a;
  out.total_cost += b.total_cost;
  out.requests += b.requests;
  out.reads += b.reads;
  out.writes += b.writes;
  out.connections += b.connections;
  out.data_messages += b.data_messages;
  out.control_messages += b.control_messages;
  out.allocations += b.allocations;
  out.deallocations += b.deallocations;
  return out;
}

}  // namespace

Result<CostBreakdown> ReplicationManager::ItemBreakdown(
    const std::string& key) const {
  const auto it = items_.find(key);
  if (it == items_.end()) {
    return NotFoundError(StrFormat("item '%s' never touched", key.c_str()));
  }
  CostBreakdown breakdown = it->second.meter->breakdown();
  const auto carried = carried_.find(key);
  if (carried != carried_.end()) {
    breakdown = Merge(breakdown, carried->second);
  }
  return breakdown;
}

CostBreakdown ReplicationManager::TotalBreakdown() const {
  CostBreakdown total;
  for (const auto& [key, item] : items_) {
    total = Merge(total, *ItemBreakdown(key));
  }
  return total;
}

std::vector<std::string> ReplicationManager::ReplicatedItems() const {
  std::vector<std::string> keys;
  for (const auto& [key, item] : items_) {
    if (item.policy->has_copy()) keys.push_back(key);
  }
  return keys;
}

}  // namespace mobrep
