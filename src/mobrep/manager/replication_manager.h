#ifndef MOBREP_MANAGER_REPLICATION_MANAGER_H_
#define MOBREP_MANAGER_REPLICATION_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mobrep/common/status.h"
#include "mobrep/core/cost_model.h"
#include "mobrep/core/cost_simulator.h"
#include "mobrep/core/policy_factory.h"

namespace mobrep {

// Multi-item front end over the single-item algorithms: what an application
// embeds to manage the replication of its whole working set between one
// mobile computer and the stationary database.
//
// The paper's model is per-item (each item's relevant requests are priced
// independently; §7.2 handles genuinely joint operations — see
// mobrep/multi/ for that case). The manager therefore runs one independent
// policy instance per item, created on first touch from a configurable
// default spec (overridable per item), and aggregates the accounting.
class ReplicationManager {
 public:
  struct Options {
    // Policy used for items without an explicit override.
    PolicySpec default_spec = {PolicyKind::kSw, 9};
    CostModel model = CostModel::Connection();
  };

  explicit ReplicationManager(const Options& options);

  // Assigns (or re-assigns) a policy to one item. Re-assigning resets the
  // item's policy state but keeps its accumulated accounting.
  void SetItemPolicy(const std::string& key, const PolicySpec& spec);

  // A read of `key` issued at the mobile computer. Returns the
  // communication cost charged for it.
  double OnRead(const std::string& key);

  // A write of `key` issued at the stationary computer.
  double OnWrite(const std::string& key);

  // True iff the MC currently holds a copy of `key`.
  bool HasCopy(const std::string& key) const;

  // Accounting for one item; NotFoundError if the item was never touched.
  Result<CostBreakdown> ItemBreakdown(const std::string& key) const;

  // Aggregate accounting across every item.
  CostBreakdown TotalBreakdown() const;

  // Items currently replicated at the MC (the MC's subscription list).
  std::vector<std::string> ReplicatedItems() const;

  // All items ever touched.
  size_t item_count() const { return items_.size(); }

  const CostModel& model() const { return options_.model; }

 private:
  struct Item {
    PolicySpec spec;
    std::unique_ptr<AllocationPolicy> policy;
    std::unique_ptr<CostMeter> meter;
  };

  Item& GetOrCreate(const std::string& key);

  Options options_;
  std::map<std::string, Item> items_;
  // Accounting accumulated under previous policies of re-assigned items.
  std::map<std::string, CostBreakdown> carried_;
};

}  // namespace mobrep

#endif  // MOBREP_MANAGER_REPLICATION_MANAGER_H_
