// Route-planning scenario (paper §1: "route-planning computers in cars
// will access traffic information"), exercising the multi-object extension
// of §7.2.
//
// A car's navigation computer works with traffic data for 8 road segments.
// Operations touch *sets* of segments in one request: planning reads the
// whole current route, spot checks read one segment, and the traffic
// service writes per-segment updates (congested downtown segments update
// far more often).

#include <cstdio>
#include <string>

#include "mobrep/common/random.h"
#include "mobrep/multi/dynamic_allocator.h"
#include "mobrep/multi/joint_workload.h"
#include "mobrep/multi/static_allocator.h"

namespace {

using namespace mobrep;

constexpr int kSegments = 8;

std::string MaskToString(AllocationMask mask) {
  std::string s;
  for (int i = 0; i < kSegments; ++i) {
    s += ((mask >> i) & 1u) ? 'R' : '.';
  }
  return s;  // R = replicated on the car's computer
}

// Segments 0..3: highway (rarely updated); 4..7: downtown (congested,
// updated constantly). The commute route is segments {0,1,4,5}.
MultiObjectWorkload CommuteWorkload() {
  MultiObjectWorkload w;
  w.num_objects = kSegments;
  // Route planning: joint read of the active route, often.
  w.classes.push_back({Op::kRead, {0, 1, 4, 5}, 30.0});
  // Spot checks of individual route segments.
  for (const int s : {0, 1, 4, 5}) {
    w.classes.push_back({Op::kRead, {s}, 6.0});
  }
  // Occasional look at alternatives.
  w.classes.push_back({Op::kRead, {2, 3}, 2.0});
  w.classes.push_back({Op::kRead, {6, 7}, 2.0});
  // Traffic updates: highway segments are quiet, downtown is noisy.
  for (const int s : {0, 1, 2, 3}) {
    w.classes.push_back({Op::kWrite, {s}, 1.0});
  }
  for (const int s : {4, 5, 6, 7}) {
    w.classes.push_back({Op::kWrite, {s}, 25.0});
  }
  return w;
}

}  // namespace

int main() {
  const MultiObjectWorkload workload = CommuteWorkload();
  const CostModel model = CostModel::Message(0.3);

  std::printf("Traffic advisor: %d road segments, %zu operation classes, "
              "message model (omega = 0.3).\n\n",
              kSegments, workload.classes.size());

  // --- Known frequencies: the optimal static allocation (§7.2). ---
  const StaticAllocation best = OptimalStaticAllocation(workload, model);
  std::printf("Optimal static allocation  : %s   expected cost %.4f\n",
              MaskToString(best.mask).c_str(), best.expected_cost);
  std::printf("Replicate nothing          : %s   expected cost %.4f\n",
              MaskToString(0).c_str(),
              ExpectedCostForAllocation(workload, 0, model));
  std::printf("Replicate everything       : %s   expected cost %.4f\n",
              MaskToString((1u << kSegments) - 1).c_str(),
              ExpectedCostForAllocation(workload, (1u << kSegments) - 1,
                                        model));

  std::printf(
      "\nThe optimizer subscribes every segment some frequent read needs — "
      "the whole\ncommute route (so the joint route read becomes free, "
      "which is worth absorbing\neven the noisy downtown updates of "
      "segments 4,5) plus the quiet highway\nalternatives — and leaves "
      "only the noisy downtown segments no route read\nuses (6,7) "
      "on-demand.\n\n");

  // --- Unknown frequencies: the window-based dynamic allocator. ---
  DynamicMultiObjectAllocator::Options options;
  options.num_objects = kSegments;
  options.window_size = 512;
  options.recompute_period = 128;
  DynamicMultiObjectAllocator allocator(options, model);

  Rng rng(99);
  const auto sequence = SampleClassSequence(workload, 20000, &rng);
  double total = 0.0;
  for (size_t i = 0; i < sequence.size(); ++i) {
    total += allocator.OnOperation(
        workload.classes[static_cast<size_t>(sequence[i])]);
    if ((i + 1) % 4000 == 0) {
      std::printf("after %5zu ops: allocation %s, mean cost %.4f\n", i + 1,
                  MaskToString(allocator.allocation_mask()).c_str(),
                  total / static_cast<double>(i + 1));
    }
  }

  std::printf(
      "\nDynamic allocator converged to %s (optimal: %s) with %lld "
      "re-optimizations;\nmean cost %.4f vs the known-frequency optimum "
      "%.4f.\n",
      MaskToString(allocator.allocation_mask()).c_str(),
      MaskToString(best.mask).c_str(),
      static_cast<long long>(allocator.recomputations()),
      total / static_cast<double>(sequence.size()), best.expected_cost);
  return 0;
}
