// Field-sales scenario (paper §1: "salespeople will access inventory
// data"), showing the multi-item ReplicationManager and the PolicyAdvisor.
//
// A salesperson's notebook works against the company database: a product
// catalog (read-mostly), live stock levels (update-heavy), and the rep's
// own open orders (mixed, drifting with the time of day). The advisor
// picks a policy per data class from what is known about each class's
// read/write mix; the manager runs them side by side and reports where the
// wireless budget went.

#include <cstdio>

#include "mobrep/analysis/advisor.h"
#include "mobrep/common/random.h"
#include "mobrep/manager/replication_manager.h"
#include "mobrep/trace/generators.h"

namespace {

using namespace mobrep;

PolicySpec Advise(const CostModel& model, std::optional<double> theta,
                  double max_factor, const char* label) {
  AdvisorQuery query;
  query.model = model;
  query.theta = theta;
  query.max_competitive_factor = max_factor;
  const auto rec = RecommendPolicy(query);
  std::printf("  %-12s -> %-7s %s\n", label, rec->spec.ToString().c_str(),
              rec->rationale.c_str());
  return rec->spec;
}

}  // namespace

int main() {
  const CostModel model = CostModel::Message(/*omega=*/0.4);

  std::printf("Advisor decisions (message model, omega = 0.4):\n");
  // Catalog: known read-mostly (theta ~ 0.05), worst case within 8x.
  const PolicySpec catalog = Advise(model, 0.05, 8.0, "catalog");
  // Stock: known update-heavy (theta ~ 0.9), worst case within 8x.
  const PolicySpec stock = Advise(model, 0.9, 8.0, "stock");
  // Orders: drifting mix -> AVG regime, worst case within 8x.
  const PolicySpec orders = Advise(model, std::nullopt, 8.0, "orders");

  ReplicationManager::Options options;
  options.model = model;
  ReplicationManager manager(options);
  manager.SetItemPolicy("catalog/laptops", catalog);
  manager.SetItemPolicy("catalog/phones", catalog);
  manager.SetItemPolicy("stock/laptops", stock);
  manager.SetItemPolicy("stock/phones", stock);
  manager.SetItemPolicy("orders/mine", orders);

  // A day in the field: catalog reads dominate; stock is hammered by the
  // warehouse; the rep's orders swing between entry bursts (writes at the
  // SC as the back office confirms) and review bursts (reads).
  Rng rng(1234);
  BernoulliRequestStream catalog_mix(0.05, rng.Fork(1));
  BernoulliRequestStream stock_mix(0.9, rng.Fork(2));
  PeriodRequestStream orders_mix(/*period_length=*/500, rng.Fork(3));

  for (int i = 0; i < 20000; ++i) {
    const char* catalog_key =
        rng.Bernoulli(0.5) ? "catalog/laptops" : "catalog/phones";
    if (catalog_mix.Next() == Op::kWrite) {
      manager.OnWrite(catalog_key);
    } else {
      manager.OnRead(catalog_key);
    }
    const char* stock_key =
        rng.Bernoulli(0.5) ? "stock/laptops" : "stock/phones";
    if (stock_mix.Next() == Op::kWrite) {
      manager.OnWrite(stock_key);
    } else {
      manager.OnRead(stock_key);
    }
    if (orders_mix.Next() == Op::kWrite) {
      manager.OnWrite("orders/mine");
    } else {
      manager.OnRead("orders/mine");
    }
  }

  std::printf("\nPer-item wireless spend after 60k requests:\n");
  std::printf("  %-18s %-9s %-10s %-8s %-6s %-6s\n", "item", "policy",
              "cost/req", "requests", "subs", "drops");
  for (const char* key :
       {"catalog/laptops", "catalog/phones", "stock/laptops", "stock/phones",
        "orders/mine"}) {
    const auto b = manager.ItemBreakdown(key);
    std::printf("  %-18s %-9s %-10.4f %-8lld %-6lld %-6lld\n", key,
                manager.HasCopy(key) ? "(copy)" : "(remote)",
                b->MeanCostPerRequest(), static_cast<long long>(b->requests),
                static_cast<long long>(b->allocations),
                static_cast<long long>(b->deallocations));
  }
  const CostBreakdown total = manager.TotalBreakdown();
  std::printf("\nTotal: %.1f message-units over %lld requests "
              "(%.4f per request); %zu items, %zu replicated right now.\n",
              total.total_cost, static_cast<long long>(total.requests),
              total.MeanCostPerRequest(), manager.item_count(),
              manager.ReplicatedItems().size());
  std::printf(
      "\nNote how the advisor kept the catalog permanently subscribed "
      "(reads are free),\nleft stock on-demand (subscribing would relay "
      "every warehouse update), and gave\nthe drifting orders item a "
      "sliding window that re-decides as the day's mix swings.\n");
  return 0;
}
