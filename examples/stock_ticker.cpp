// Stock ticker scenario (paper §1: "investors will access prices of
// financial instruments").
//
// An investor's mobile terminal tracks one instrument's quote, which lives
// in the brokerage's online database. The day alternates between regimes:
//   * trading hours   — the exchange updates the quote constantly
//                       (write-heavy at the SC),
//   * research time   — the investor refreshes charts and reads the quote
//                       repeatedly (read-heavy at the MC).
//
// This example runs the *distributed protocol* (real messages, versioned
// store, replica cache) and shows the sliding-window algorithm subscribing
// and unsubscribing the terminal as the regime flips, against both static
// allocations.

#include <cstdio>

#include "mobrep/common/random.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/protocol/protocol_sim.h"
#include "mobrep/trace/generators.h"

namespace {

using namespace mobrep;

// Six alternating market regimes, 600 requests each.
Schedule MakeTradingDay(Rng* rng) {
  Schedule day;
  for (int phase = 0; phase < 6; ++phase) {
    const bool trading_hours = phase % 2 == 0;
    const double theta = trading_hours ? 0.85 : 0.10;
    const Schedule part = GenerateBernoulliSchedule(600, theta, rng);
    day.insert(day.end(), part.begin(), part.end());
  }
  return day;
}

void RunPolicy(const char* spec_text, const Schedule& day) {
  ProtocolConfig config;
  config.spec = *ParsePolicySpec(spec_text);
  config.key = "quote/ACME";
  config.initial_value = "187.20";
  ProtocolSimulation sim(config);

  // Replay the day phase by phase so we can watch the subscription state.
  std::printf("%-6s |", spec_text);
  size_t i = 0;
  for (int phase = 0; phase < 6; ++phase) {
    for (int r = 0; r < 600; ++r) sim.Step(day[i++]);
    std::printf(" %s", sim.mc_has_copy() ? "subscribed  " : "on-demand   ");
  }
  const ProtocolMetrics m = sim.metrics();
  const double conn = m.PriceUnder(CostModel::Connection());
  const double msg = m.PriceUnder(CostModel::Message(0.4));
  std::printf("| %8.0f %10.1f %6lld %6lld\n", conn, msg,
              static_cast<long long>(m.allocations),
              static_cast<long long>(m.deallocations));
}

}  // namespace

int main() {
  Rng rng(777);
  const Schedule day = MakeTradingDay(&rng);

  std::printf(
      "Trading day: 6 phases x 600 requests, alternating write-heavy "
      "(trading, theta=0.85)\nand read-heavy (research, theta=0.10) "
      "regimes. Costs over the whole day:\n\n");
  std::printf("%-6s | %-77s | %8s %10s %6s %6s\n", "policy",
              "MC state at the end of each phase (trading/research "
              "alternating)",
              "conn", "msg(w=.4)", "subs", "drops");
  std::printf("%s\n", std::string(125, '-').c_str());

  for (const char* spec : {"st1", "st2", "sw1", "sw:9", "sw:25"}) {
    RunPolicy(spec, day);
  }

  std::printf(
      "\nReading the table: the window algorithms subscribe the terminal "
      "during research\nphases (reads become free) and drop the "
      "subscription during trading hours (updates\nstop flowing), beating "
      "both static choices on the full day. Larger windows react\nmore "
      "slowly but hold the subscription more steadily; SW1 reacts "
      "instantly but churns\n(see the subs/drops columns).\n");
  return 0;
}
