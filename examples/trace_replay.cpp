// Trace workflow: capture a workload, persist it, replay it against every
// policy, and compare with the clairvoyant lower bound.
//
// This is the offline-tuning loop a deployment would actually run: record
// the relevant requests of a real day, then pick tomorrow's policy from
// measured — not assumed — read/write behaviour.

#include <cstdio>
#include <string>

#include "mobrep/analysis/advisor.h"
#include "mobrep/common/random.h"
#include "mobrep/core/cost_simulator.h"
#include "mobrep/core/offline_optimal.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/trace/generators.h"
#include "mobrep/trace/serializer.h"
#include "mobrep/trace/stats.h"
#include "mobrep/trace/trace_io.h"

int main() {
  using namespace mobrep;
  const CostModel model = CostModel::Message(/*omega=*/0.5);

  // --- 1. "Capture": two concurrent request streams, serialized (§3). ---
  Rng rng(8842);
  std::vector<double> read_times, write_times;
  double t = 0.0;
  for (int i = 0; i < 6000; ++i) read_times.push_back(t += rng.Exponential(3.0));
  t = 0.0;
  for (int i = 0; i < 2500; ++i) write_times.push_back(t += rng.Exponential(1.2));
  const TimedSchedule timed = *SerializeStreams(read_times, write_times);
  const Schedule day = StripTimes(timed);

  const std::string path = "/tmp/mobrep_example_day.trace";
  if (!SaveScheduleToFile(path, day).ok()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("captured %zu requests to %s\n", day.size(), path.c_str());

  // --- 2. Reload and profile. ---
  const Schedule replay = *LoadScheduleFromFile(path);
  const ScheduleStats stats = ComputeStats(replay);
  std::printf("workload: %s\n\n", stats.ToString().c_str());

  // --- 3. Replay against the roster; compare to the clairvoyant bound. ---
  const double optimal = OfflineOptimalCost(replay, model);
  std::printf("clairvoyant optimum: %.1f message-units\n\n", optimal);
  std::printf("%-8s %12s %14s\n", "policy", "total cost", "vs optimum");
  for (const PolicySpec& spec : StandardPolicyRoster()) {
    auto policy = CreatePolicy(spec);
    const double cost = PolicyCostOnSchedule(policy.get(), replay, model);
    std::printf("%-8s %12.1f %13.2fx\n", policy->name().c_str(), cost,
                cost / optimal);
  }

  // --- 4. Ask the advisor, using the measured theta. ---
  AdvisorQuery query;
  query.model = model;
  query.theta = stats.theta_hat;
  query.max_competitive_factor = 10.0;
  const auto rec = RecommendPolicy(query);
  std::printf("\nadvisor (theta_hat=%.3f, worst case <= 10x): use %s\n",
              stats.theta_hat, rec->spec.ToString().c_str());
  std::printf("  %s\n", rec->rationale.c_str());

  std::remove(path.c_str());
  return 0;
}
