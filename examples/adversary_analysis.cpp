// Worst-case analysis walkthrough: what competitiveness means, concretely.
//
// Builds the adversarial schedules from the paper's tightness arguments,
// shows the offline optimal algorithm's decisions side by side with the
// online policy's, and reports the measured ratios against the claimed
// competitive factors.

#include <algorithm>
#include <cstdio>
#include <string>

#include "mobrep/analysis/competitive.h"
#include "mobrep/core/cost_simulator.h"
#include "mobrep/core/offline_optimal.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/core/sliding_window_policy.h"
#include "mobrep/common/strings.h"
#include "mobrep/trace/adversary.h"

namespace {

using namespace mobrep;

void ShowDecisionTrace() {
  // Three cycles of (3 writes, 3 reads) against SW3.
  const int k = 3;
  const Schedule s = BlockSchedule(3, k, k);
  const CostModel model = CostModel::Connection();

  SlidingWindowPolicy policy(k);
  const OfflineSolution offline = SolveOfflineOptimal(s, model);

  std::string requests, online_state, offline_state, online_paid,
      offline_paid;
  bool prev_offline = false;
  for (size_t i = 0; i < s.size(); ++i) {
    requests += OpToChar(s[i]);
    const bool copy_before = policy.has_copy();
    const ActionKind action = policy.OnRequest(s[i]);
    online_state += policy.has_copy() ? 'C' : '.';
    online_paid += model.Price(action) > 0 ? '$' : ' ';
    offline_state += offline.copy_during[i] ? 'C' : '.';
    offline_paid += OfflineTransitionCost(s[i], prev_offline,
                                          offline.copy_during[i], model) > 0
                        ? '$'
                        : ' ';
    prev_offline = offline.copy_during[i];
    (void)copy_before;
  }

  std::printf("Adversarial schedule against SW3, connection model "
              "(C = MC holds a copy, $ = paid):\n\n");
  std::printf("  requests        %s\n", requests.c_str());
  std::printf("  SW3 copy state  %s\n", online_state.c_str());
  std::printf("  SW3 charged     %s\n", online_paid.c_str());
  std::printf("  OPT copy state  %s\n", offline_state.c_str());
  std::printf("  OPT charged     %s\n", offline_paid.c_str());
  std::printf(
      "\nThe window trails the regime by (k+1)/2 requests in each "
      "direction, paying k+1\nper cycle, while the clairvoyant optimum "
      "pre-positions the copy for 1 per cycle.\n\n");
}

void ShowRatios() {
  std::printf("Measured worst-case ratios vs claimed factors:\n\n");
  std::printf("  %-8s %-22s %-12s %-10s\n", "policy", "adversary",
              "measured", "claimed");
  const CostModel conn = CostModel::Connection();
  const CostModel msg = CostModel::Message(0.5);

  for (const int k : {3, 9}) {
    SlidingWindowPolicy policy(k);
    const Schedule s = BlockSchedule(300, k, k);
    const std::string adversary =
        StrFormat("(%dw,%dr)x300", k, k);
    std::printf("  %-8s %-22s %-12.3f %-10.1f\n",
                policy.name().c_str(), adversary.c_str(),
                MeasureRatio(&policy, s, conn).ratio, k + 1.0);
  }
  {
    auto sw1 = SlidingWindowPolicy::NewSw1();
    const Schedule s = AlternatingSchedule(2000);
    std::printf("  %-8s %-22s %-12.3f %-10.1f  (message, omega=0.5)\n",
                "SW1", "wrwr... x1000", MeasureRatio(sw1.get(), s, msg).ratio,
                1.0 + 2.0 * 0.5);
  }
  {
    auto st1 = CreatePolicyFromString("st1").value();
    for (const int64_t n : {100, 1000, 10000}) {
      const Schedule s = UniformSchedule(n, Op::kRead);
      std::printf("  %-8s %-22s %-12.1f %-10s\n", "ST1",
                  ("r x" + std::to_string(n)).c_str(),
                  MeasureRatio(st1.get(), s, conn).ratio,
                  "unbounded");
    }
  }
  std::printf(
      "\nThe statics' ratio grows with the schedule length — they are not "
      "competitive.\nThe window algorithms trade expected cost for exactly "
      "this bounded worst case.\n");
}

}  // namespace

int main() {
  ShowDecisionTrace();
  ShowRatios();
  return 0;
}
