// Quickstart: allocate-or-not for one data item between a stationary
// database server (SC) and a mobile computer (MC).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The library's core loop is three lines: create a policy, feed it the
// relevant requests (reads at the MC, writes at the SC), price the actions
// under a cost model.

#include <cstdio>

#include "mobrep/analysis/expected_cost.h"
#include "mobrep/common/random.h"
#include "mobrep/core/cost_simulator.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/trace/generators.h"

int main() {
  using namespace mobrep;

  // A workload: reads and writes arrive as merged Poisson processes; theta
  // is the probability the next relevant request is a write.
  const double theta = 0.3;
  Rng rng(2024);
  const Schedule workload = GenerateBernoulliSchedule(100000, theta, &rng);

  // The paper's cost models: connection-based (cellular) and message-based
  // (packet radio, control/data ratio omega).
  const CostModel connection = CostModel::Connection();
  const CostModel message = CostModel::Message(/*omega=*/0.5);

  std::printf("Workload: %zu requests, theta = %.2f (read-heavy)\n\n",
              workload.size(), theta);
  std::printf("%-8s %-22s %-22s\n", "policy", "connection cost/request",
              "message cost/request (w=0.5)");

  // Compare the whole algorithm family from the paper.
  for (const char* spec_text :
       {"st1", "st2", "sw1", "sw:3", "sw:9", "sw:15", "t1:7", "t2:7"}) {
    auto policy = CreatePolicyFromString(spec_text).value();
    const CostBreakdown conn =
        SimulateSchedule(policy.get(), workload, connection);
    policy->Reset();
    const CostBreakdown msg = SimulateSchedule(policy.get(), workload,
                                               message);
    std::printf("%-8s %-22.4f %-22.4f\n", policy->name().c_str(),
                conn.MeanCostPerRequest(), msg.MeanCostPerRequest());
  }

  // The closed forms predict all of the above without simulating:
  const PolicySpec sw9 = *ParsePolicySpec("sw:9");
  std::printf(
      "\nClosed form check, SW9 in the connection model:\n"
      "  EXP_SW9(%.2f) = theta*alpha_k + (1-theta)*(1-alpha_k) = %.4f\n",
      theta, *ExpectedCost(sw9, connection, theta));

  // Rule of thumb from the paper: if theta < 1/2 keep a copy at the MC
  // (ST2-like behaviour); the sliding window discovers this by itself and
  // additionally survives workload shifts with a bounded worst case.
  return 0;
}
