#include "mobrep/core/offline_optimal.h"

#include <algorithm>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "mobrep/trace/adversary.h"

namespace mobrep {
namespace {

// Exponential-time reference: tries every sequence of copy states.
double BruteForceOptimal(const Schedule& schedule, const CostModel& model,
                         bool initial_copy) {
  const size_t n = schedule.size();
  double best = std::numeric_limits<double>::infinity();
  const uint64_t combos = uint64_t{1} << n;
  for (uint64_t bits = 0; bits < combos; ++bits) {
    double cost = 0.0;
    bool state = initial_copy;
    for (size_t i = 0; i < n; ++i) {
      const bool next = ((bits >> i) & 1) != 0;
      cost += OfflineTransitionCost(schedule[i], state, next, model);
      state = next;
    }
    best = std::min(best, cost);
  }
  return n == 0 ? 0.0 : best;
}

TEST(OfflineOptimalTest, EmptyScheduleIsFree) {
  EXPECT_DOUBLE_EQ(OfflineOptimalCost({}, CostModel::Connection()), 0.0);
}

TEST(OfflineOptimalTest, AllReadsCostOneConnection) {
  // Acquire the copy at the first read; the rest are free.
  const Schedule s = UniformSchedule(100, Op::kRead);
  EXPECT_DOUBLE_EQ(OfflineOptimalCost(s, CostModel::Connection()), 1.0);
}

TEST(OfflineOptimalTest, AllWritesAreFree) {
  const Schedule s = UniformSchedule(100, Op::kWrite);
  EXPECT_DOUBLE_EQ(OfflineOptimalCost(s, CostModel::Connection()), 0.0);
  EXPECT_DOUBLE_EQ(OfflineOptimalCost(s, CostModel::Message(0.5)), 0.0);
}

TEST(OfflineOptimalTest, AllReadsMessageModel) {
  const Schedule s = UniformSchedule(50, Op::kRead);
  // One remote read (1 + omega), keep the copy.
  EXPECT_DOUBLE_EQ(OfflineOptimalCost(s, CostModel::Message(0.25)), 1.25);
}

TEST(OfflineOptimalTest, BlockCycleCostsOnePerCycleConnection) {
  // (k writes, k reads)*: the optimum acquires the copy by pushing the last
  // write of each block (1 connection) and drops it for free before the
  // next write block.
  for (const int k : {1, 3, 5}) {
    for (const int cycles : {1, 2, 7}) {
      const Schedule s = BlockSchedule(cycles, k, k);
      EXPECT_DOUBLE_EQ(OfflineOptimalCost(s, CostModel::Connection()),
                       static_cast<double>(cycles))
          << "k=" << k << " cycles=" << cycles;
    }
  }
}

TEST(OfflineOptimalTest, BlockCycleCostsOnePerCycleMessage) {
  // Same structure in the message model: pushing at a write costs one data
  // message, cheaper than a remote read (1 + omega) when omega > 0.
  const Schedule s = BlockSchedule(4, 3, 3);
  EXPECT_DOUBLE_EQ(OfflineOptimalCost(s, CostModel::Message(0.5)), 4.0);
}

TEST(OfflineOptimalTest, AlternatingScheduleCostsOnePerPair) {
  // w r w r ...: keeping the copy the whole time pays 1 per write.
  const Schedule s = AlternatingSchedule(20);  // 10 pairs
  EXPECT_DOUBLE_EQ(OfflineOptimalCost(s, CostModel::Connection()), 10.0);
  // In the message model with omega < 1 this is still optimal: writes cost
  // 1 each vs remote reads at 1 + omega.
  EXPECT_DOUBLE_EQ(OfflineOptimalCost(s, CostModel::Message(0.25)), 10.0);
}

TEST(OfflineOptimalTest, MatchesBruteForceOnAllSmallSchedulesConnection) {
  const CostModel model = CostModel::Connection();
  for (int length = 0; length <= 10; ++length) {
    ForEachSchedule(length, [&](const Schedule& s) {
      const double dp = OfflineOptimalCost(s, model);
      const double brute = BruteForceOptimal(s, model, false);
      ASSERT_NEAR(dp, brute, 1e-9) << ScheduleToString(s);
    });
  }
}

TEST(OfflineOptimalTest, MatchesBruteForceOnAllSmallSchedulesMessage) {
  const CostModel model = CostModel::Message(0.3);
  for (int length = 0; length <= 10; ++length) {
    ForEachSchedule(length, [&](const Schedule& s) {
      const double dp = OfflineOptimalCost(s, model);
      const double brute = BruteForceOptimal(s, model, false);
      ASSERT_NEAR(dp, brute, 1e-9) << ScheduleToString(s);
    });
  }
}

TEST(OfflineOptimalTest, InitialCopyMatters) {
  const Schedule s = UniformSchedule(5, Op::kRead);
  EXPECT_DOUBLE_EQ(
      OfflineOptimalCost(s, CostModel::Connection(), /*initial_copy=*/true),
      0.0);
  EXPECT_DOUBLE_EQ(
      OfflineOptimalCost(s, CostModel::Connection(), /*initial_copy=*/false),
      1.0);
}

TEST(SolveOfflineOptimalTest, TraceIsConsistentWithCost) {
  const Schedule s = *ScheduleFromString("wwrrrwwrrw");
  for (const CostModel& model :
       {CostModel::Connection(), CostModel::Message(0.4)}) {
    const OfflineSolution solution = SolveOfflineOptimal(s, model);
    ASSERT_EQ(solution.copy_during.size(), s.size());
    // Replaying the recovered state sequence must reproduce the cost.
    double replay = 0.0;
    bool state = false;
    for (size_t i = 0; i < s.size(); ++i) {
      replay +=
          OfflineTransitionCost(s[i], state, solution.copy_during[i], model);
      state = solution.copy_during[i];
    }
    EXPECT_NEAR(replay, solution.cost, 1e-9);
    EXPECT_NEAR(solution.cost, OfflineOptimalCost(s, model), 1e-12);
  }
}

TEST(SolveOfflineOptimalTest, HoldsCopyThroughReadBursts) {
  const Schedule s = *ScheduleFromString("wwwrrrrrrwww");
  const OfflineSolution solution =
      SolveOfflineOptimal(s, CostModel::Connection());
  // Between consecutive reads of the burst the copy must be held (else the
  // next read would pay again). The state after the *last* read is
  // unconstrained: dropping right after serving it is free.
  for (size_t i = 3; i < 8; ++i) {
    EXPECT_TRUE(solution.copy_during[i]) << "position " << i;
  }
  // During the final write burst it must not be.
  for (size_t i = 9; i < 12; ++i) {
    EXPECT_FALSE(solution.copy_during[i]) << "position " << i;
  }
}

TEST(OfflineTransitionCostTest, Table) {
  const CostModel conn = CostModel::Connection();
  EXPECT_DOUBLE_EQ(OfflineTransitionCost(Op::kRead, false, false, conn), 1.0);
  EXPECT_DOUBLE_EQ(OfflineTransitionCost(Op::kRead, false, true, conn), 1.0);
  EXPECT_DOUBLE_EQ(OfflineTransitionCost(Op::kRead, true, true, conn), 0.0);
  EXPECT_DOUBLE_EQ(OfflineTransitionCost(Op::kRead, true, false, conn), 0.0);
  EXPECT_DOUBLE_EQ(OfflineTransitionCost(Op::kWrite, false, false, conn), 0.0);
  EXPECT_DOUBLE_EQ(OfflineTransitionCost(Op::kWrite, false, true, conn), 1.0);
  EXPECT_DOUBLE_EQ(OfflineTransitionCost(Op::kWrite, true, true, conn), 1.0);
  EXPECT_DOUBLE_EQ(OfflineTransitionCost(Op::kWrite, true, false, conn), 0.0);

  const CostModel msg = CostModel::Message(0.5);
  EXPECT_DOUBLE_EQ(OfflineTransitionCost(Op::kRead, false, true, msg), 1.5);
  EXPECT_DOUBLE_EQ(OfflineTransitionCost(Op::kWrite, false, true, msg), 1.0);
}

}  // namespace
}  // namespace mobrep
