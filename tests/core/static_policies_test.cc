#include "mobrep/core/static_policies.h"

#include <gtest/gtest.h>

namespace mobrep {
namespace {

TEST(St1PolicyTest, NeverHoldsCopy) {
  St1Policy policy;
  EXPECT_FALSE(policy.has_copy());
  EXPECT_EQ(policy.OnRequest(Op::kRead), ActionKind::kRemoteRead);
  EXPECT_EQ(policy.OnRequest(Op::kWrite), ActionKind::kWriteNoCopy);
  EXPECT_EQ(policy.OnRequest(Op::kRead), ActionKind::kRemoteRead);
  EXPECT_FALSE(policy.has_copy());
}

TEST(St1PolicyTest, NameAndClone) {
  St1Policy policy;
  EXPECT_EQ(policy.name(), "ST1");
  auto clone = policy.Clone();
  EXPECT_EQ(clone->name(), "ST1");
  EXPECT_FALSE(clone->has_copy());
}

TEST(St2PolicyTest, AlwaysHoldsCopy) {
  St2Policy policy;
  EXPECT_TRUE(policy.has_copy());
  EXPECT_EQ(policy.OnRequest(Op::kRead), ActionKind::kLocalRead);
  EXPECT_EQ(policy.OnRequest(Op::kWrite), ActionKind::kWritePropagate);
  EXPECT_EQ(policy.OnRequest(Op::kWrite), ActionKind::kWritePropagate);
  EXPECT_TRUE(policy.has_copy());
}

TEST(St2PolicyTest, NameAndClone) {
  St2Policy policy;
  EXPECT_EQ(policy.name(), "ST2");
  auto clone = policy.Clone();
  EXPECT_TRUE(clone->has_copy());
}

TEST(StaticPoliciesTest, ResetIsIdempotent) {
  St1Policy st1;
  st1.OnRequest(Op::kRead);
  st1.Reset();
  EXPECT_FALSE(st1.has_copy());

  St2Policy st2;
  st2.OnRequest(Op::kWrite);
  st2.Reset();
  EXPECT_TRUE(st2.has_copy());
}

}  // namespace
}  // namespace mobrep
