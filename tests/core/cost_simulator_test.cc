#include "mobrep/core/cost_simulator.h"

#include <gtest/gtest.h>

#include "mobrep/core/sliding_window_policy.h"
#include "mobrep/core/static_policies.h"

namespace mobrep {
namespace {

TEST(CostMeterTest, St1ConnectionCostsOnlyReads) {
  St1Policy policy;
  const CostModel model = CostModel::Connection();
  CostMeter meter(&policy, &model);
  EXPECT_DOUBLE_EQ(meter.OnRequest(Op::kRead), 1.0);
  EXPECT_DOUBLE_EQ(meter.OnRequest(Op::kWrite), 0.0);
  EXPECT_DOUBLE_EQ(meter.OnRequest(Op::kRead), 1.0);
  EXPECT_DOUBLE_EQ(meter.total_cost(), 2.0);

  const CostBreakdown& b = meter.breakdown();
  EXPECT_EQ(b.requests, 3);
  EXPECT_EQ(b.reads, 2);
  EXPECT_EQ(b.writes, 1);
  EXPECT_EQ(b.connections, 2);
  EXPECT_EQ(b.data_messages, 2);
  EXPECT_EQ(b.control_messages, 2);
  EXPECT_EQ(b.allocations, 0);
  EXPECT_EQ(b.deallocations, 0);
}

TEST(CostMeterTest, St2MessageCostsOnlyWrites) {
  St2Policy policy;
  const CostModel model = CostModel::Message(0.5);
  CostMeter meter(&policy, &model);
  EXPECT_DOUBLE_EQ(meter.OnRequest(Op::kRead), 0.0);
  EXPECT_DOUBLE_EQ(meter.OnRequest(Op::kWrite), 1.0);
  EXPECT_DOUBLE_EQ(meter.OnRequest(Op::kWrite), 1.0);
  EXPECT_DOUBLE_EQ(meter.total_cost(), 2.0);
  EXPECT_EQ(meter.breakdown().control_messages, 0);
}

TEST(CostMeterTest, TracksAllocationsAndDeallocations) {
  SlidingWindowPolicy policy(3);
  const CostModel model = CostModel::Connection();
  CostMeter meter(&policy, &model);
  // rr allocates (second read), then ww deallocates (second write).
  meter.OnRequest(Op::kRead);
  meter.OnRequest(Op::kRead);
  meter.OnRequest(Op::kWrite);
  meter.OnRequest(Op::kWrite);
  const CostBreakdown& b = meter.breakdown();
  EXPECT_EQ(b.allocations, 1);
  EXPECT_EQ(b.deallocations, 1);
}

TEST(CostMeterTest, Sw1MessageAccounting) {
  auto policy = SlidingWindowPolicy::NewSw1();
  const double omega = 0.25;
  const CostModel model = CostModel::Message(omega);
  CostMeter meter(policy.get(), &model);
  // r: remote read + allocate: 1 + omega.
  EXPECT_DOUBLE_EQ(meter.OnRequest(Op::kRead), 1.0 + omega);
  // w: invalidate only: omega.
  EXPECT_DOUBLE_EQ(meter.OnRequest(Op::kWrite), omega);
  // w: no copy: free.
  EXPECT_DOUBLE_EQ(meter.OnRequest(Op::kWrite), 0.0);
  EXPECT_DOUBLE_EQ(meter.total_cost(), 1.0 + 2.0 * omega);
}

TEST(SimulateScheduleTest, WholeSchedule) {
  St1Policy policy;
  const Schedule s = *ScheduleFromString("rrwwr");
  const CostBreakdown b =
      SimulateSchedule(&policy, s, CostModel::Connection());
  EXPECT_DOUBLE_EQ(b.total_cost, 3.0);
  EXPECT_DOUBLE_EQ(b.MeanCostPerRequest(), 0.6);
}

TEST(SimulateScheduleTest, EmptySchedule) {
  St1Policy policy;
  const CostBreakdown b =
      SimulateSchedule(&policy, {}, CostModel::Connection());
  EXPECT_DOUBLE_EQ(b.total_cost, 0.0);
  EXPECT_DOUBLE_EQ(b.MeanCostPerRequest(), 0.0);
}

TEST(PolicyCostOnScheduleTest, ResetsBeforeRunning) {
  SlidingWindowPolicy policy(3);
  const Schedule s = *ScheduleFromString("rrr");
  const CostModel model = CostModel::Connection();
  const double first = PolicyCostOnSchedule(&policy, s, model);
  // Without the reset the second run would start with a copy and cost 0.
  const double second = PolicyCostOnSchedule(&policy, s, model);
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_DOUBLE_EQ(first, 2.0);  // two remote reads, then local
}

}  // namespace
}  // namespace mobrep
