// Exhaustive small-schedule properties: for *every* schedule up to a given
// length (not a random sample), the structural invariants of the system
// hold. 2^13 schedules x several policies is still fast.

#include <limits>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "mobrep/core/cost_simulator.h"
#include "mobrep/core/offline_optimal.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/core/sliding_window_policy.h"
#include "mobrep/trace/adversary.h"

namespace mobrep {
namespace {

constexpr int kMaxLength = 13;

class ExhaustivePolicyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ExhaustivePolicyTest, NeverBeatsOfflineOptimalConnection) {
  const PolicySpec spec = *ParsePolicySpec(GetParam());
  auto policy = CreatePolicy(spec);
  const bool initial_copy = policy->has_copy();  // align adversary start
  const CostModel model = CostModel::Connection();
  ForEachSchedule(kMaxLength, [&](const Schedule& s) {
    const double online = PolicyCostOnSchedule(policy.get(), s, model);
    const double offline = OfflineOptimalCost(s, model, initial_copy);
    ASSERT_GE(online, offline - 1e-9) << ScheduleToString(s);
  });
}

TEST_P(ExhaustivePolicyTest, NeverBeatsOfflineOptimalMessage) {
  const PolicySpec spec = *ParsePolicySpec(GetParam());
  auto policy = CreatePolicy(spec);
  const bool initial_copy = policy->has_copy();
  const CostModel model = CostModel::Message(0.4);
  ForEachSchedule(kMaxLength, [&](const Schedule& s) {
    const double online = PolicyCostOnSchedule(policy.get(), s, model);
    const double offline = OfflineOptimalCost(s, model, initial_copy);
    ASSERT_GE(online, offline - 1e-9) << ScheduleToString(s);
  });
}

INSTANTIATE_TEST_SUITE_P(Policies, ExhaustivePolicyTest,
                         ::testing::Values("st1", "st2", "sw1", "sw:3",
                                           "sw:5", "t1:2", "t2:2"));

TEST(ExhaustiveInvariantTest, SwkCopyStateEqualsWindowMajority) {
  for (const int k : {1, 3, 5}) {
    SlidingWindowPolicy policy(k);
    ForEachSchedule(11, [&](const Schedule& s) {
      policy.Reset();
      for (const Op op : s) {
        policy.OnRequest(op);
        ASSERT_EQ(policy.has_copy(), policy.window().MajorityReads());
      }
    });
  }
}

TEST(ExhaustiveInvariantTest, Sw1OptimizedMatchesGenericInConnectionModel) {
  // The SW1 delete optimization changes which messages flow, but in the
  // connection model the per-request charge is identical to the generic
  // window-of-one algorithm on every schedule.
  auto optimized = SlidingWindowPolicy::NewSw1();
  SlidingWindowPolicy generic(1, /*sw1_delete_optimization=*/false);
  const CostModel model = CostModel::Connection();
  ForEachSchedule(kMaxLength, [&](const Schedule& s) {
    const double a = PolicyCostOnSchedule(optimized.get(), s, model);
    const double b = PolicyCostOnSchedule(&generic, s, model);
    ASSERT_DOUBLE_EQ(a, b) << ScheduleToString(s);
  });
}

TEST(ExhaustiveInvariantTest, Sw1OptimizedNeverWorseInMessageModel) {
  // In the message model the optimization replaces a (1 + omega) write
  // with an omega one; it can only help, on every schedule.
  auto optimized = SlidingWindowPolicy::NewSw1();
  SlidingWindowPolicy generic(1, /*sw1_delete_optimization=*/false);
  for (const double omega : {0.0, 0.5, 1.0}) {
    const CostModel model = CostModel::Message(omega);
    ForEachSchedule(11, [&](const Schedule& s) {
      const double a = PolicyCostOnSchedule(optimized.get(), s, model);
      const double b = PolicyCostOnSchedule(&generic, s, model);
      ASSERT_LE(a, b + 1e-12) << ScheduleToString(s);
    });
  }
}

TEST(ExhaustiveOfflineTest, RestrictedAdversaryNeverCheaper) {
  // Removing the push-at-write capability can only increase the offline
  // cost; verified on every schedule for both models.
  for (const CostModel& model :
       {CostModel::Connection(), CostModel::Message(0.3)}) {
    ForEachSchedule(kMaxLength, [&](const Schedule& s) {
      const double full = OfflineOptimalCost(s, model);
      const double weak = OfflineOptimalCost(
          s, model, false, OfflineAdversary::kAcquireAtReadsOnly);
      ASSERT_LE(full, weak + 1e-12) << ScheduleToString(s);
      ASSERT_NE(weak, std::numeric_limits<double>::infinity());
    });
  }
}

TEST(ExhaustiveOfflineTest, RestrictedEqualsFullInConnectionModelOnReads) {
  // In the connection model acquiring at a read costs the same 1 as a
  // push, so the restriction never matters when a read precedes the need.
  // Quantitatively: the costs agree on every all-read and every
  // alternating schedule.
  const CostModel model = CostModel::Connection();
  for (const int n : {1, 5, 12}) {
    const Schedule reads = UniformSchedule(n, Op::kRead);
    EXPECT_DOUBLE_EQ(
        OfflineOptimalCost(reads, model),
        OfflineOptimalCost(reads, model, false,
                           OfflineAdversary::kAcquireAtReadsOnly));
    const Schedule alt = AlternatingSchedule(n);
    EXPECT_DOUBLE_EQ(
        OfflineOptimalCost(alt, model),
        OfflineOptimalCost(alt, model, false,
                           OfflineAdversary::kAcquireAtReadsOnly));
  }
}

TEST(ExhaustiveCostMeterTest, BreakdownSumsToTotal) {
  // data + omega*control == total cost, on every schedule and policy.
  const double omega = 0.3;
  const CostModel model = CostModel::Message(omega);
  for (const char* spec_text : {"sw:3", "sw1", "t1:2"}) {
    auto policy = CreatePolicy(*ParsePolicySpec(spec_text));
    ForEachSchedule(11, [&](const Schedule& s) {
      policy->Reset();
      const CostBreakdown b = SimulateSchedule(policy.get(), s, model);
      ASSERT_NEAR(b.total_cost,
                  static_cast<double>(b.data_messages) +
                      omega * static_cast<double>(b.control_messages),
                  1e-9)
          << spec_text << " " << ScheduleToString(s);
    });
  }
}

TEST(ExhaustiveCostMeterTest, AllocationsBalanceDeallocations) {
  // Transitions alternate, so the counts differ by at most one on every
  // schedule; with no copy at start, allocations >= deallocations.
  auto policy = CreatePolicy(*ParsePolicySpec("sw:3"));
  const CostModel model = CostModel::Connection();
  ForEachSchedule(kMaxLength, [&](const Schedule& s) {
    policy->Reset();
    const CostBreakdown b = SimulateSchedule(policy.get(), s, model);
    ASSERT_GE(b.allocations, b.deallocations);
    ASSERT_LE(b.allocations, b.deallocations + 1);
  });
}

}  // namespace
}  // namespace mobrep
