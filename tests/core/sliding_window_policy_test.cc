#include "mobrep/core/sliding_window_policy.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "mobrep/core/schedule.h"

namespace mobrep {
namespace {

// Drives the policy through a schedule string and returns the actions.
std::vector<ActionKind> Drive(AllocationPolicy* policy,
                              const std::string& text) {
  std::vector<ActionKind> actions;
  const Schedule schedule = *ScheduleFromString(text);
  for (const Op op : schedule) {
    actions.push_back(policy->OnRequest(op));
  }
  return actions;
}

TEST(SlidingWindowPolicyTest, InitialStateNoCopyAllWriteWindow) {
  SlidingWindowPolicy policy(5);
  EXPECT_FALSE(policy.has_copy());
  EXPECT_EQ(policy.window().write_count(), 5);
  EXPECT_EQ(policy.name(), "SW5");
}

TEST(SlidingWindowPolicyTest, AllocatesWhenMajorityTurnsToReads) {
  SlidingWindowPolicy policy(3);
  // Window starts www, no copy. Reads slide it to wwr, wrr: the second read
  // flips the majority and must allocate.
  const auto actions = Drive(&policy, "rr");
  EXPECT_EQ(actions[0], ActionKind::kRemoteRead);
  EXPECT_EQ(actions[1], ActionKind::kRemoteReadAllocate);
  EXPECT_TRUE(policy.has_copy());
}

TEST(SlidingWindowPolicyTest, DeallocatesWhenMajorityTurnsToWrites) {
  SlidingWindowPolicy policy(3);
  Drive(&policy, "rrr");  // window rrr, copy held
  ASSERT_TRUE(policy.has_copy());
  const auto actions = Drive(&policy, "ww");
  EXPECT_EQ(actions[0], ActionKind::kWritePropagate);  // window rrw
  EXPECT_EQ(actions[1],
            ActionKind::kWritePropagateDeallocate);  // window rww
  EXPECT_FALSE(policy.has_copy());
}

TEST(SlidingWindowPolicyTest, CopyStateAlwaysEqualsWindowMajority) {
  // Invariant from §4: with a consistent initial state, after every request
  // the copy exists iff the majority of the last k requests are reads.
  SlidingWindowPolicy policy(7);
  const Schedule schedule =
      *ScheduleFromString("rrrrwwwwrwrwrrrrrrwwwwwwrwrwwrrr");
  for (const Op op : schedule) {
    policy.OnRequest(op);
    EXPECT_EQ(policy.has_copy(), policy.window().MajorityReads());
  }
}

TEST(SlidingWindowPolicyTest, AllocationOnlyOnReadDeallocationOnlyOnWrite) {
  SlidingWindowPolicy policy(5);
  const Schedule schedule = *ScheduleFromString(
      "rrrwwrwrwwwrrrrrwwwwwwrrrwwrrrrrwwwwrrwwrwrwrw");
  for (const Op op : schedule) {
    const bool before = policy.has_copy();
    policy.OnRequest(op);
    const bool after = policy.has_copy();
    if (!before && after) {
      EXPECT_EQ(op, Op::kRead);
    }
    if (before && !after) {
      EXPECT_EQ(op, Op::kWrite);
    }
  }
}

TEST(SlidingWindowPolicyTest, ResetRestoresInitialState) {
  SlidingWindowPolicy policy(3);
  Drive(&policy, "rrrr");
  EXPECT_TRUE(policy.has_copy());
  policy.Reset();
  EXPECT_FALSE(policy.has_copy());
  EXPECT_EQ(policy.window().write_count(), 3);
}

TEST(SlidingWindowPolicyTest, CloneIsIndependent) {
  SlidingWindowPolicy policy(3);
  Drive(&policy, "rr");
  auto clone = policy.Clone();
  EXPECT_TRUE(clone->has_copy());
  // Diverge the original; the clone must not follow.
  Drive(&policy, "ww");
  EXPECT_FALSE(policy.has_copy());
  EXPECT_TRUE(clone->has_copy());
}

TEST(SlidingWindowPolicyTest, SetStateInstallsWindowAndCopy) {
  SlidingWindowPolicy policy(3);
  policy.SetState(true, {Op::kRead, Op::kWrite, Op::kRead});
  EXPECT_TRUE(policy.has_copy());
  EXPECT_EQ(policy.window().write_count(), 1);
  // A write makes the window rwr -> wrw: majority writes, deallocate.
  EXPECT_EQ(policy.OnRequest(Op::kWrite),
            ActionKind::kWritePropagateDeallocate);
}

TEST(Sw1PolicyTest, UsesInvalidateInsteadOfPropagate) {
  auto policy = SlidingWindowPolicy::NewSw1();
  EXPECT_EQ(policy->name(), "SW1");
  EXPECT_TRUE(policy->sw1_delete_optimization());
  const auto actions = Drive(policy.get(), "rwrw");
  EXPECT_EQ(actions[0], ActionKind::kRemoteReadAllocate);
  EXPECT_EQ(actions[1], ActionKind::kWriteInvalidate);
  EXPECT_EQ(actions[2], ActionKind::kRemoteReadAllocate);
  EXPECT_EQ(actions[3], ActionKind::kWriteInvalidate);
}

TEST(Sw1PolicyTest, GenericWindowOfOneUsesPropagateDeallocate) {
  SlidingWindowPolicy policy(1, /*sw1_delete_optimization=*/false);
  EXPECT_EQ(policy.name(), "SW1(unopt)");
  const auto actions = Drive(&policy, "rw");
  EXPECT_EQ(actions[0], ActionKind::kRemoteReadAllocate);
  EXPECT_EQ(actions[1], ActionKind::kWritePropagateDeallocate);
}

TEST(Sw1PolicyTest, ConsecutiveReadsStayLocal) {
  auto policy = SlidingWindowPolicy::NewSw1();
  const auto actions = Drive(policy.get(), "rrrr");
  EXPECT_EQ(actions[0], ActionKind::kRemoteReadAllocate);
  for (size_t i = 1; i < actions.size(); ++i) {
    EXPECT_EQ(actions[i], ActionKind::kLocalRead);
  }
}

TEST(Sw1PolicyTest, ConsecutiveWritesFreeAfterFirst) {
  auto policy = SlidingWindowPolicy::NewSw1();
  Drive(policy.get(), "r");  // allocate
  const auto actions = Drive(policy.get(), "www");
  EXPECT_EQ(actions[0], ActionKind::kWriteInvalidate);
  EXPECT_EQ(actions[1], ActionKind::kWriteNoCopy);
  EXPECT_EQ(actions[2], ActionKind::kWriteNoCopy);
}

TEST(SlidingWindowPolicyDeathTest, OptimizationRequiresKOne) {
  EXPECT_DEATH({ SlidingWindowPolicy policy(3, true); }, "SW1");
}

TEST(SlidingWindowPolicyDeathTest, RejectsNonPositiveK) {
  EXPECT_DEATH({ SlidingWindowPolicy policy(0); }, "window size");
}

// The paper's example dynamics: the window dominates short-term noise. With
// k = 5 a single write inside a read streak must not deallocate.
TEST(SlidingWindowPolicyTest, ToleratesMinorityWrites) {
  SlidingWindowPolicy policy(5);
  Drive(&policy, "rrrrr");
  ASSERT_TRUE(policy.has_copy());
  const auto actions = Drive(&policy, "wrwr");
  EXPECT_EQ(actions[0], ActionKind::kWritePropagate);
  EXPECT_EQ(actions[1], ActionKind::kLocalRead);
  EXPECT_EQ(actions[2], ActionKind::kWritePropagate);
  EXPECT_EQ(actions[3], ActionKind::kLocalRead);
  EXPECT_TRUE(policy.has_copy());
}

}  // namespace
}  // namespace mobrep
