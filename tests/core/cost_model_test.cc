#include "mobrep/core/cost_model.h"

#include <gtest/gtest.h>

namespace mobrep {
namespace {

TEST(ConnectionModelTest, Prices) {
  const CostModel model = CostModel::Connection();
  EXPECT_DOUBLE_EQ(model.Price(ActionKind::kLocalRead), 0.0);
  EXPECT_DOUBLE_EQ(model.Price(ActionKind::kWriteNoCopy), 0.0);
  EXPECT_DOUBLE_EQ(model.Price(ActionKind::kRemoteRead), 1.0);
  EXPECT_DOUBLE_EQ(model.Price(ActionKind::kRemoteReadAllocate), 1.0);
  EXPECT_DOUBLE_EQ(model.Price(ActionKind::kWritePropagate), 1.0);
  EXPECT_DOUBLE_EQ(model.Price(ActionKind::kWritePropagateDeallocate), 1.0);
  EXPECT_DOUBLE_EQ(model.Price(ActionKind::kWriteInvalidate), 1.0);
  EXPECT_DOUBLE_EQ(model.RemoteReadPrice(), 1.0);
}

TEST(MessageModelTest, PricesWithOmega) {
  const double omega = 0.25;
  const CostModel model = CostModel::Message(omega);
  EXPECT_DOUBLE_EQ(model.Price(ActionKind::kLocalRead), 0.0);
  EXPECT_DOUBLE_EQ(model.Price(ActionKind::kWriteNoCopy), 0.0);
  // Remote read: control request + data response (paper §3).
  EXPECT_DOUBLE_EQ(model.Price(ActionKind::kRemoteRead), 1.0 + omega);
  // Allocation piggybacks for free on the data response.
  EXPECT_DOUBLE_EQ(model.Price(ActionKind::kRemoteReadAllocate), 1.0 + omega);
  // Propagated write: one data message.
  EXPECT_DOUBLE_EQ(model.Price(ActionKind::kWritePropagate), 1.0);
  // Deallocating write: data message + the MC's delete-request.
  EXPECT_DOUBLE_EQ(model.Price(ActionKind::kWritePropagateDeallocate),
                   1.0 + omega);
  // SW1's optimized write: the delete-request only.
  EXPECT_DOUBLE_EQ(model.Price(ActionKind::kWriteInvalidate), omega);
}

TEST(MessageModelTest, OmegaZeroDiffersFromConnectionOnInvalidate) {
  // With omega = 0 the message model prices the SW1 invalidate at 0 while
  // the connection model still charges a full connection for it.
  const CostModel message = CostModel::Message(0.0);
  const CostModel connection = CostModel::Connection();
  EXPECT_DOUBLE_EQ(message.Price(ActionKind::kWriteInvalidate), 0.0);
  EXPECT_DOUBLE_EQ(connection.Price(ActionKind::kWriteInvalidate), 1.0);
}

TEST(CostModelDeathTest, OmegaOutOfRangeAborts) {
  EXPECT_DEATH({ (void)CostModel::Message(1.5); }, "omega");
  EXPECT_DEATH({ (void)CostModel::Message(-0.1); }, "omega");
}

TEST(CostModelTest, Names) {
  EXPECT_EQ(CostModel::Connection().name(), "connection");
  EXPECT_EQ(CostModel::Message(0.5).name(), "message(omega=0.500)");
}

TEST(ActionLegalityTest, ReadActions) {
  EXPECT_TRUE(ActionLegalFor(ActionKind::kLocalRead, Op::kRead, true));
  EXPECT_FALSE(ActionLegalFor(ActionKind::kLocalRead, Op::kRead, false));
  EXPECT_TRUE(ActionLegalFor(ActionKind::kRemoteRead, Op::kRead, false));
  EXPECT_FALSE(ActionLegalFor(ActionKind::kRemoteRead, Op::kRead, true));
  EXPECT_FALSE(ActionLegalFor(ActionKind::kRemoteRead, Op::kWrite, false));
  EXPECT_TRUE(
      ActionLegalFor(ActionKind::kRemoteReadAllocate, Op::kRead, false));
}

TEST(ActionLegalityTest, WriteActions) {
  EXPECT_TRUE(ActionLegalFor(ActionKind::kWriteNoCopy, Op::kWrite, false));
  EXPECT_FALSE(ActionLegalFor(ActionKind::kWriteNoCopy, Op::kWrite, true));
  EXPECT_TRUE(ActionLegalFor(ActionKind::kWritePropagate, Op::kWrite, true));
  EXPECT_TRUE(
      ActionLegalFor(ActionKind::kWritePropagateDeallocate, Op::kWrite, true));
  EXPECT_TRUE(ActionLegalFor(ActionKind::kWriteInvalidate, Op::kWrite, true));
  EXPECT_FALSE(
      ActionLegalFor(ActionKind::kWriteInvalidate, Op::kWrite, false));
  EXPECT_FALSE(ActionLegalFor(ActionKind::kWritePropagate, Op::kRead, true));
}

TEST(CopyStateAfterTest, Transitions) {
  EXPECT_TRUE(CopyStateAfter(ActionKind::kLocalRead, true));
  EXPECT_FALSE(CopyStateAfter(ActionKind::kRemoteRead, false));
  EXPECT_TRUE(CopyStateAfter(ActionKind::kRemoteReadAllocate, false));
  EXPECT_FALSE(CopyStateAfter(ActionKind::kWriteNoCopy, false));
  EXPECT_TRUE(CopyStateAfter(ActionKind::kWritePropagate, true));
  EXPECT_FALSE(CopyStateAfter(ActionKind::kWritePropagateDeallocate, true));
  EXPECT_FALSE(CopyStateAfter(ActionKind::kWriteInvalidate, true));
}

TEST(ActionWireTest, MessageCounts) {
  EXPECT_EQ(WireFor(ActionKind::kLocalRead).connections, 0);
  const ActionWire remote = WireFor(ActionKind::kRemoteRead);
  EXPECT_EQ(remote.data_messages, 1);
  EXPECT_EQ(remote.control_messages, 1);
  EXPECT_EQ(remote.connections, 1);
  const ActionWire invalidate = WireFor(ActionKind::kWriteInvalidate);
  EXPECT_EQ(invalidate.data_messages, 0);
  EXPECT_EQ(invalidate.control_messages, 1);
  EXPECT_EQ(invalidate.connections, 1);
}

TEST(ActionKindNameTest, StableNames) {
  EXPECT_STREQ(ActionKindName(ActionKind::kRemoteReadAllocate),
               "remote_read_allocate");
  EXPECT_STREQ(ActionKindName(ActionKind::kWriteInvalidate),
               "write_invalidate");
}

}  // namespace
}  // namespace mobrep
