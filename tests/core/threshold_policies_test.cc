#include "mobrep/core/threshold_policies.h"

#include <vector>

#include <gtest/gtest.h>

#include "mobrep/core/schedule.h"

namespace mobrep {
namespace {

std::vector<ActionKind> Drive(AllocationPolicy* policy,
                              const std::string& text) {
  std::vector<ActionKind> actions;
  const Schedule schedule = *ScheduleFromString(text);
  for (const Op op : schedule) {
    actions.push_back(policy->OnRequest(op));
  }
  return actions;
}

TEST(T1mPolicyTest, SwitchesAfterMConsecutiveReads) {
  T1mPolicy policy(3);
  EXPECT_FALSE(policy.has_copy());
  const auto actions = Drive(&policy, "rrr");
  EXPECT_EQ(actions[0], ActionKind::kRemoteRead);
  EXPECT_EQ(actions[1], ActionKind::kRemoteRead);
  EXPECT_EQ(actions[2], ActionKind::kRemoteReadAllocate);
  EXPECT_TRUE(policy.has_copy());
}

TEST(T1mPolicyTest, WriteResetsTheRun) {
  T1mPolicy policy(3);
  // Two reads, a write, then three reads: the write resets the counter, so
  // the switch happens only on the fifth read overall.
  const auto actions = Drive(&policy, "rrwrrr");
  EXPECT_EQ(actions[0], ActionKind::kRemoteRead);
  EXPECT_EQ(actions[1], ActionKind::kRemoteRead);
  EXPECT_EQ(actions[2], ActionKind::kWriteNoCopy);
  EXPECT_EQ(actions[3], ActionKind::kRemoteRead);
  EXPECT_EQ(actions[4], ActionKind::kRemoteRead);
  EXPECT_EQ(actions[5], ActionKind::kRemoteReadAllocate);
}

TEST(T1mPolicyTest, RevertsOnFirstWrite) {
  T1mPolicy policy(2);
  Drive(&policy, "rr");
  ASSERT_TRUE(policy.has_copy());
  const auto actions = Drive(&policy, "rw");
  EXPECT_EQ(actions[0], ActionKind::kLocalRead);
  EXPECT_EQ(actions[1], ActionKind::kWritePropagateDeallocate);
  EXPECT_FALSE(policy.has_copy());
}

TEST(T1mPolicyTest, MEqualsOneAllocatesOnEveryRemoteRead) {
  T1mPolicy policy(1);
  const auto actions = Drive(&policy, "rwr");
  EXPECT_EQ(actions[0], ActionKind::kRemoteReadAllocate);
  EXPECT_EQ(actions[1], ActionKind::kWritePropagateDeallocate);
  EXPECT_EQ(actions[2], ActionKind::kRemoteReadAllocate);
}

TEST(T1mPolicyTest, NameResetClone) {
  T1mPolicy policy(15);
  EXPECT_EQ(policy.name(), "T1-15");
  Drive(&policy, "rrrrrrrrrrrrrrr");
  EXPECT_TRUE(policy.has_copy());
  auto clone = policy.Clone();
  EXPECT_TRUE(clone->has_copy());
  policy.Reset();
  EXPECT_FALSE(policy.has_copy());
  EXPECT_TRUE(clone->has_copy());
}

TEST(T2mPolicyTest, StartsWithCopy) {
  T2mPolicy policy(3);
  EXPECT_TRUE(policy.has_copy());
  EXPECT_EQ(policy.OnRequest(Op::kRead), ActionKind::kLocalRead);
}

TEST(T2mPolicyTest, SwitchesAfterMConsecutiveWrites) {
  T2mPolicy policy(3);
  const auto actions = Drive(&policy, "www");
  EXPECT_EQ(actions[0], ActionKind::kWritePropagate);
  EXPECT_EQ(actions[1], ActionKind::kWritePropagate);
  EXPECT_EQ(actions[2], ActionKind::kWritePropagateDeallocate);
  EXPECT_FALSE(policy.has_copy());
}

TEST(T2mPolicyTest, ReadResetsTheRun) {
  T2mPolicy policy(2);
  const auto actions = Drive(&policy, "wrww");
  EXPECT_EQ(actions[0], ActionKind::kWritePropagate);
  EXPECT_EQ(actions[1], ActionKind::kLocalRead);
  EXPECT_EQ(actions[2], ActionKind::kWritePropagate);
  EXPECT_EQ(actions[3], ActionKind::kWritePropagateDeallocate);
}

TEST(T2mPolicyTest, RevertsOnFirstRead) {
  T2mPolicy policy(2);
  Drive(&policy, "ww");
  ASSERT_FALSE(policy.has_copy());
  const auto actions = Drive(&policy, "wr");
  EXPECT_EQ(actions[0], ActionKind::kWriteNoCopy);
  EXPECT_EQ(actions[1], ActionKind::kRemoteReadAllocate);
  EXPECT_TRUE(policy.has_copy());
}

TEST(T2mPolicyTest, NameAndReset) {
  T2mPolicy policy(7);
  EXPECT_EQ(policy.name(), "T2-7");
  Drive(&policy, "wwwwwww");
  EXPECT_FALSE(policy.has_copy());
  policy.Reset();
  EXPECT_TRUE(policy.has_copy());
}

TEST(ThresholdPoliciesDeathTest, RejectNonPositiveM) {
  EXPECT_DEATH({ T1mPolicy policy(0); }, "m >= 1");
  EXPECT_DEATH({ T2mPolicy policy(0); }, "m >= 1");
}

}  // namespace
}  // namespace mobrep
