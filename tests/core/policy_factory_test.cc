#include "mobrep/core/policy_factory.h"

#include <gtest/gtest.h>

namespace mobrep {
namespace {

TEST(ParsePolicySpecTest, Statics) {
  EXPECT_EQ(ParsePolicySpec("st1")->kind, PolicyKind::kSt1);
  EXPECT_EQ(ParsePolicySpec("ST2")->kind, PolicyKind::kSt2);
  EXPECT_EQ(ParsePolicySpec(" st1 ")->kind, PolicyKind::kSt1);
}

TEST(ParsePolicySpecTest, SlidingWindow) {
  const auto sw = ParsePolicySpec("sw:9");
  ASSERT_TRUE(sw.ok());
  EXPECT_EQ(sw->kind, PolicyKind::kSw);
  EXPECT_EQ(sw->parameter, 9);

  const auto sw1 = ParsePolicySpec("sw1");
  ASSERT_TRUE(sw1.ok());
  EXPECT_EQ(sw1->kind, PolicyKind::kSw1);
}

TEST(ParsePolicySpecTest, Thresholds) {
  EXPECT_EQ(ParsePolicySpec("t1:15")->parameter, 15);
  EXPECT_EQ(ParsePolicySpec("T2:7")->kind, PolicyKind::kT2);
}

TEST(ParsePolicySpecTest, Rejections) {
  EXPECT_FALSE(ParsePolicySpec("").ok());
  EXPECT_FALSE(ParsePolicySpec("sw").ok());
  EXPECT_FALSE(ParsePolicySpec("sw:0").ok());
  EXPECT_FALSE(ParsePolicySpec("sw:-3").ok());
  EXPECT_FALSE(ParsePolicySpec("sw:abc").ok());
  EXPECT_FALSE(ParsePolicySpec("lru").ok());
  EXPECT_FALSE(ParsePolicySpec("t3:5").ok());
}

TEST(PolicySpecToStringTest, RoundTrips) {
  for (const char* text : {"st1", "st2", "sw1", "sw:9", "t1:15", "t2:7"}) {
    const auto spec = ParsePolicySpec(text);
    ASSERT_TRUE(spec.ok()) << text;
    EXPECT_EQ(spec->ToString(), text);
  }
}

TEST(CreatePolicyTest, ProducesExpectedNames) {
  EXPECT_EQ(CreatePolicy({PolicyKind::kSt1, 0})->name(), "ST1");
  EXPECT_EQ(CreatePolicy({PolicyKind::kSt2, 0})->name(), "ST2");
  EXPECT_EQ(CreatePolicy({PolicyKind::kSw1, 1})->name(), "SW1");
  EXPECT_EQ(CreatePolicy({PolicyKind::kSw, 9})->name(), "SW9");
  EXPECT_EQ(CreatePolicy({PolicyKind::kT1, 15})->name(), "T1-15");
  EXPECT_EQ(CreatePolicy({PolicyKind::kT2, 7})->name(), "T2-7");
}

TEST(CreatePolicyFromStringTest, EndToEnd) {
  auto policy = CreatePolicyFromString("sw:5");
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ((*policy)->name(), "SW5");
  EXPECT_FALSE(CreatePolicyFromString("bogus").ok());
}

TEST(StandardPolicyRosterTest, AllCreatable) {
  const auto roster = StandardPolicyRoster();
  EXPECT_GE(roster.size(), 8u);
  for (const PolicySpec& spec : roster) {
    EXPECT_NE(CreatePolicy(spec), nullptr) << spec.ToString();
  }
}

}  // namespace
}  // namespace mobrep
