#include "mobrep/core/packed_schedule.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mobrep/common/random.h"
#include "mobrep/core/schedule.h"
#include "mobrep/trace/generators.h"

namespace mobrep {
namespace {

Schedule RandomSchedule(int64_t n, uint64_t seed) {
  Rng rng(seed);
  return GenerateBernoulliSchedule(n, 0.5, &rng);
}

TEST(PackedScheduleTest, RoundTripsAtWordBoundaries) {
  for (const int64_t n : {0, 1, 63, 64, 65, 127, 128, 1000}) {
    const Schedule original = RandomSchedule(n, 7 + static_cast<uint64_t>(n));
    const PackedSchedule packed(original);
    EXPECT_EQ(packed.size(), n);
    EXPECT_EQ(packed.empty(), n == 0);
    EXPECT_EQ(packed.ToSchedule(), original);
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(packed.Get(i), original[static_cast<size_t>(i)]) << i;
    }
  }
}

TEST(PackedScheduleTest, AppendMatchesConstruction) {
  const Schedule original = RandomSchedule(200, 11);
  PackedSchedule packed;
  for (const Op op : original) packed.Append(op);
  EXPECT_EQ(packed.ToSchedule(), original);
  EXPECT_EQ(packed.words(), PackedSchedule(original).words());
}

TEST(PackedScheduleTest, AppendWordHandlesStraddlingWords) {
  // Mixed-width appends whose boundaries never align with the 64-bit
  // words: the element-wise view must still match.
  Rng rng(13);
  Schedule expected;
  PackedSchedule packed;
  for (const int count : {7, 64, 50, 1, 63, 64, 3}) {
    uint64_t bits = 0;
    for (int j = 0; j < count; ++j) {
      const bool write = rng.Bernoulli(0.5);
      bits |= static_cast<uint64_t>(write) << j;
      expected.push_back(write ? Op::kWrite : Op::kRead);
    }
    packed.AppendWord(bits, count);
  }
  EXPECT_EQ(packed.ToSchedule(), expected);
}

TEST(PackedScheduleTest, AppendWordIgnoresHighGarbageBits) {
  PackedSchedule packed;
  packed.AppendWord(~0ULL, 3);  // only the low 3 bits are requests
  EXPECT_EQ(packed.size(), 3);
  EXPECT_EQ(packed.CountWrites(), 3);
  // The tail word's unused bits must be masked off, not left set.
  EXPECT_EQ(packed.words()[0], 0b111ULL);
}

TEST(PackedScheduleTest, CountWritesUsesAllWordsIncludingTail) {
  const Schedule original = RandomSchedule(777, 17);
  int64_t writes = 0;
  for (const Op op : original) writes += op == Op::kWrite ? 1 : 0;
  const PackedSchedule packed(original);
  EXPECT_EQ(packed.CountWrites(), writes);
  EXPECT_EQ(packed.CountReads(), 777 - writes);
}

TEST(PackedScheduleTest, PackedGeneratorsMatchVectorGenerators) {
  // The packed generators promise identical RNG consumption, so from equal
  // seeds the packed and unpacked outputs must be elementwise equal — and
  // an interleaved consumer must stay in lockstep afterwards.
  Rng rng_a(2025);
  Rng rng_b(2025);
  const Schedule plain = GenerateBernoulliSchedule(1000, 0.3, &rng_a);
  const PackedSchedule packed =
      GeneratePackedBernoulliSchedule(1000, 0.3, &rng_b);
  EXPECT_EQ(packed.ToSchedule(), plain);
  EXPECT_EQ(rng_a.NextUint64(), rng_b.NextUint64());

  Rng rng_c(9);
  Rng rng_d(9);
  const Schedule plain_periods = GeneratePeriodWorkload(13, 70, &rng_c);
  const PackedSchedule packed_periods =
      GeneratePackedPeriodWorkload(13, 70, &rng_d);
  EXPECT_EQ(packed_periods.ToSchedule(), plain_periods);
  EXPECT_EQ(rng_c.NextUint64(), rng_d.NextUint64());
}

TEST(PackedScheduleTest, StreamNextBatchMatchesNext) {
  BernoulliRequestStream a(0.4, Rng(5));
  BernoulliRequestStream b(0.4, Rng(5));
  std::vector<Op> batch(257);
  b.NextBatch(batch.data(), 257);
  for (int i = 0; i < 257; ++i) ASSERT_EQ(a.Next(), batch[static_cast<size_t>(i)]) << i;

  PeriodRequestStream c(37, Rng(6));
  PeriodRequestStream d(37, Rng(6));
  // Batch sizes chosen to split periods unevenly.
  std::vector<Op> expected;
  for (int i = 0; i < 500; ++i) expected.push_back(c.Next());
  std::vector<Op> got;
  for (const int chunk : {1, 36, 37, 38, 111, 277}) {
    std::vector<Op> buf(static_cast<size_t>(chunk));
    d.NextBatch(buf.data(), chunk);
    got.insert(got.end(), buf.begin(), buf.end());
  }
  EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace mobrep
