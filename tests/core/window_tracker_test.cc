#include "mobrep/core/window_tracker.h"

#include <vector>

#include <gtest/gtest.h>

#include "mobrep/common/random.h"

namespace mobrep {
namespace {

TEST(WindowTrackerTest, FillSetsAllSlots) {
  WindowTracker window(5);
  window.Fill(Op::kWrite);
  EXPECT_EQ(window.write_count(), 5);
  EXPECT_EQ(window.read_count(), 0);
  EXPECT_TRUE(window.MajorityWrites());
  EXPECT_FALSE(window.MajorityReads());

  window.Fill(Op::kRead);
  EXPECT_EQ(window.write_count(), 0);
  EXPECT_TRUE(window.MajorityReads());
}

TEST(WindowTrackerTest, PushReturnsDropped) {
  WindowTracker window(3);
  window.Fill(Op::kWrite);
  EXPECT_EQ(window.Push(Op::kRead), Op::kWrite);
  EXPECT_EQ(window.Push(Op::kRead), Op::kWrite);
  EXPECT_EQ(window.Push(Op::kRead), Op::kWrite);
  // All writes have been evicted; the next drop is a read.
  EXPECT_EQ(window.Push(Op::kWrite), Op::kRead);
}

TEST(WindowTrackerTest, CountsTrackSlidingContents) {
  WindowTracker window(3);
  window.Fill(Op::kWrite);  // w w w
  window.Push(Op::kRead);   // w w r
  EXPECT_EQ(window.write_count(), 2);
  window.Push(Op::kRead);  // w r r
  EXPECT_EQ(window.write_count(), 1);
  EXPECT_TRUE(window.MajorityReads());
  window.Push(Op::kWrite);  // r r w
  EXPECT_EQ(window.write_count(), 1);
  EXPECT_TRUE(window.MajorityReads());
  window.Push(Op::kWrite);  // r w w
  EXPECT_TRUE(window.MajorityWrites());
}

TEST(WindowTrackerTest, ContentsOldestFirst) {
  WindowTracker window(4);
  window.Fill(Op::kRead);
  window.Push(Op::kWrite);  // r r r w
  window.Push(Op::kRead);   // r r w r
  const std::vector<Op> contents = window.Contents();
  ASSERT_EQ(contents.size(), 4u);
  EXPECT_EQ(contents[0], Op::kRead);
  EXPECT_EQ(contents[1], Op::kRead);
  EXPECT_EQ(contents[2], Op::kWrite);
  EXPECT_EQ(contents[3], Op::kRead);
}

TEST(WindowTrackerTest, SetContentsRoundTrip) {
  WindowTracker a(5);
  a.Fill(Op::kWrite);
  a.Push(Op::kRead);
  a.Push(Op::kWrite);
  a.Push(Op::kRead);

  WindowTracker b(5);
  b.SetContents(a.Contents());
  EXPECT_EQ(b.write_count(), a.write_count());
  EXPECT_EQ(b.Contents(), a.Contents());
  // The two trackers keep evolving identically.
  EXPECT_EQ(a.Push(Op::kRead), b.Push(Op::kRead));
  EXPECT_EQ(a.Contents(), b.Contents());
}

TEST(WindowTrackerTest, SizeOne) {
  WindowTracker window(1);
  window.Fill(Op::kWrite);
  EXPECT_TRUE(window.MajorityWrites());
  window.Push(Op::kRead);
  EXPECT_TRUE(window.MajorityReads());
  EXPECT_EQ(window.Push(Op::kWrite), Op::kRead);
  EXPECT_TRUE(window.MajorityWrites());
}

TEST(WindowTrackerTest, RandomizedAgainstNaiveModel) {
  Rng rng(77);
  WindowTracker window(9);
  window.Fill(Op::kRead);
  std::vector<Op> model(9, Op::kRead);
  for (int i = 0; i < 5000; ++i) {
    const Op op = rng.Bernoulli(0.4) ? Op::kWrite : Op::kRead;
    const Op expected_drop = model.front();
    model.erase(model.begin());
    model.push_back(op);
    EXPECT_EQ(window.Push(op), expected_drop);
    int writes = 0;
    for (const Op o : model) writes += o == Op::kWrite ? 1 : 0;
    ASSERT_EQ(window.write_count(), writes);
    ASSERT_EQ(window.Contents(), model);
  }
}

}  // namespace
}  // namespace mobrep
