#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "mobrep/common/random.h"
#include "mobrep/core/cost_simulator.h"
#include "mobrep/core/packed_schedule.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/trace/generators.h"

namespace mobrep {
namespace {

// The six policy families and the two cost-model families: the batched
// kernels devirtualize every one of these, and each must reproduce the
// generic per-request path bit for bit.
constexpr const char* kAllPolicies[] = {"st1", "st2", "sw1",
                                        "sw:5", "t1:3", "t2:3"};

std::vector<CostModel> AllModels() {
  return {CostModel::Connection(), CostModel::Message(0.3),
          CostModel::Message(0.8)};
}

// Equality down to the last bit — the batched path's contract. EXPECT_EQ
// on total_cost is deliberate (not EXPECT_DOUBLE_EQ/near).
void ExpectSameBreakdown(const CostBreakdown& a, const CostBreakdown& b,
                         const std::string& label) {
  EXPECT_EQ(a.total_cost, b.total_cost) << label;
  EXPECT_EQ(a.requests, b.requests) << label;
  EXPECT_EQ(a.reads, b.reads) << label;
  EXPECT_EQ(a.writes, b.writes) << label;
  EXPECT_EQ(a.connections, b.connections) << label;
  EXPECT_EQ(a.data_messages, b.data_messages) << label;
  EXPECT_EQ(a.control_messages, b.control_messages) << label;
  EXPECT_EQ(a.allocations, b.allocations) << label;
  EXPECT_EQ(a.deallocations, b.deallocations) << label;
}

std::vector<Schedule> TestSchedules() {
  std::vector<Schedule> schedules;
  Rng rng(321);
  schedules.push_back(GenerateBernoulliSchedule(5000, 0.5, &rng));
  schedules.push_back(GenerateBernoulliSchedule(5000, 0.05, &rng));
  schedules.push_back(GenerateBernoulliSchedule(5000, 0.95, &rng));
  Schedule alternating;
  for (int i = 0; i < 1000; ++i) {
    alternating.push_back(i % 2 == 0 ? Op::kWrite : Op::kRead);
  }
  schedules.push_back(std::move(alternating));
  schedules.push_back(Schedule(777, Op::kWrite));
  schedules.push_back(Schedule(777, Op::kRead));
  schedules.push_back(Schedule{});
  return schedules;
}

TEST(BatchedSimulatorTest, BatchMatchesPerRequestForAllPoliciesAndModels) {
  for (const char* spec : kAllPolicies) {
    for (const CostModel& model : AllModels()) {
      int schedule_index = 0;
      for (const Schedule& schedule : TestSchedules()) {
        const std::string label = std::string(spec) + "/" + model.name() +
                                  "/schedule" +
                                  std::to_string(schedule_index++);
        auto reference = CreatePolicyFromString(spec).value();
        auto batched = CreatePolicyFromString(spec).value();
        const CostBreakdown want =
            SimulateSchedule(reference.get(), schedule, model);
        const CostBreakdown got =
            SimulateScheduleBatch(batched.get(), schedule, model);
        ExpectSameBreakdown(want, got, label);

        // The batch must also leave the policy in the same state: both
        // instances must keep agreeing on a follow-up request stream.
        Rng rng(99);
        for (int i = 0; i < 200; ++i) {
          const Op op = rng.Bernoulli(0.5) ? Op::kWrite : Op::kRead;
          ASSERT_EQ(reference->OnRequest(op), batched->OnRequest(op))
              << label << " diverged at follow-up " << i;
          ASSERT_EQ(reference->has_copy(), batched->has_copy()) << label;
        }
      }
    }
  }
}

TEST(BatchedSimulatorTest, PackedOverloadMatchesVectorOverload) {
  Rng rng(55);
  const Schedule schedule = GenerateBernoulliSchedule(10000, 0.4, &rng);
  const PackedSchedule packed(schedule);
  for (const char* spec : kAllPolicies) {
    for (const CostModel& model : AllModels()) {
      auto a = CreatePolicyFromString(spec).value();
      auto b = CreatePolicyFromString(spec).value();
      ExpectSameBreakdown(SimulateScheduleBatch(a.get(), schedule, model),
                          SimulateScheduleBatch(b.get(), packed, model),
                          std::string(spec) + "/" + model.name());
    }
  }
}

TEST(BatchedSimulatorTest, ChunkedRunningTotalIsBitIdentical) {
  Rng rng(77);
  const Schedule schedule = GenerateBernoulliSchedule(6000, 0.5, &rng);
  // Deliberately awkward chunk sizes, including 1 and a chunk far larger
  // than what remains.
  const std::vector<int64_t> chunks = {1, 7, 64, 1000, 4096, 100000};
  for (const char* spec : kAllPolicies) {
    for (const CostModel& model : AllModels()) {
      const std::string label = std::string(spec) + "/" + model.name();
      auto per_request = CreatePolicyFromString(spec).value();
      CostMeter reference(per_request.get(), &model);
      double want = 0.0;
      for (const Op op : schedule) want += reference.OnRequest(op);

      auto batched = CreatePolicyFromString(spec).value();
      CostMeter meter(batched.get(), &model);
      double got = 0.0;
      int64_t i = 0;
      size_t which = 0;
      while (i < static_cast<int64_t>(schedule.size())) {
        const int64_t m =
            std::min(chunks[which++ % chunks.size()],
                     static_cast<int64_t>(schedule.size()) - i);
        got = meter.OnRequestBatch(schedule.data() + i, m, got);
        i += m;
      }
      EXPECT_EQ(want, got) << label;
      ExpectSameBreakdown(reference.breakdown(), meter.breakdown(), label);
    }
  }
}

TEST(BatchedSimulatorTest, EmptyBatchReturnsRunningTotalUntouched) {
  auto policy = CreatePolicyFromString("sw:5").value();
  const CostModel model = CostModel::Connection();
  CostMeter meter(policy.get(), &model);
  EXPECT_EQ(meter.OnRequestBatch(nullptr, 0, 1.25), 1.25);
  EXPECT_EQ(meter.breakdown().requests, 0);
}

// An AllocationPolicy subclass the batch dispatcher has never heard of:
// it must take the generic virtual fallback, and that fallback must agree
// bit for bit with the devirtualized kernel running the same policy.
class DelegatingPolicy final : public AllocationPolicy {
 public:
  explicit DelegatingPolicy(std::unique_ptr<AllocationPolicy> inner)
      : inner_(std::move(inner)) {}

  ActionKind OnRequest(Op op) override { return inner_->OnRequest(op); }
  bool has_copy() const override { return inner_->has_copy(); }
  void Reset() override { inner_->Reset(); }
  std::string name() const override { return "wrap(" + inner_->name() + ")"; }
  std::unique_ptr<AllocationPolicy> Clone() const override {
    return std::make_unique<DelegatingPolicy>(inner_->Clone());
  }

 private:
  std::unique_ptr<AllocationPolicy> inner_;
};

TEST(BatchedSimulatorTest, GenericFallbackAgreesWithDevirtualizedKernels) {
  Rng rng(31337);
  const Schedule schedule = GenerateBernoulliSchedule(4000, 0.5, &rng);
  for (const char* spec : kAllPolicies) {
    for (const CostModel& model : AllModels()) {
      DelegatingPolicy wrapped(CreatePolicyFromString(spec).value());
      auto direct = CreatePolicyFromString(spec).value();
      ExpectSameBreakdown(
          SimulateScheduleBatch(&wrapped, schedule, model),
          SimulateScheduleBatch(direct.get(), schedule, model),
          std::string(spec) + "/" + model.name() + "/fallback");
    }
  }
}

}  // namespace
}  // namespace mobrep
