#include "mobrep/core/schedule.h"

#include <gtest/gtest.h>

namespace mobrep {
namespace {

TEST(OpTest, ToChar) {
  EXPECT_EQ(OpToChar(Op::kRead), 'r');
  EXPECT_EQ(OpToChar(Op::kWrite), 'w');
}

TEST(ScheduleStringTest, RoundTrip) {
  const auto schedule = ScheduleFromString("wrrrwrw");
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(ScheduleToString(*schedule), "wrrrwrw");
}

TEST(ScheduleStringTest, CaseInsensitiveAndWhitespace) {
  const auto schedule = ScheduleFromString("W R\trW\n");
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(ScheduleToString(*schedule), "wrrw");
}

TEST(ScheduleStringTest, RejectsGarbage) {
  EXPECT_FALSE(ScheduleFromString("rwx").ok());
  EXPECT_FALSE(ScheduleFromString("1").ok());
}

TEST(ScheduleStringTest, EmptyIsValid) {
  const auto schedule = ScheduleFromString("");
  ASSERT_TRUE(schedule.ok());
  EXPECT_TRUE(schedule->empty());
}

TEST(ScheduleCountTest, Counts) {
  const Schedule schedule = *ScheduleFromString("wrrrwrw");
  EXPECT_EQ(CountWrites(schedule), 3);
  EXPECT_EQ(CountReads(schedule), 4);
}

TEST(TimedScheduleTest, StripTimes) {
  const TimedSchedule timed = {
      {0.5, Op::kWrite}, {1.25, Op::kRead}, {2.0, Op::kRead}};
  const Schedule schedule = StripTimes(timed);
  EXPECT_EQ(ScheduleToString(schedule), "wrr");
}

}  // namespace
}  // namespace mobrep
