#include "mobrep/trace/adversary.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "mobrep/core/sliding_window_policy.h"
#include "mobrep/core/static_policies.h"

namespace mobrep {
namespace {

TEST(BlockScheduleTest, Layout) {
  const Schedule s = BlockSchedule(2, 3, 2);
  EXPECT_EQ(ScheduleToString(s), "wwwrrwwwrr");
}

TEST(BlockScheduleTest, EmptyBlocks) {
  EXPECT_TRUE(BlockSchedule(0, 3, 3).empty());
  EXPECT_EQ(ScheduleToString(BlockSchedule(2, 0, 2)), "rrrr");
  EXPECT_EQ(ScheduleToString(BlockSchedule(2, 2, 0)), "wwww");
}

TEST(UniformScheduleTest, AllSame) {
  EXPECT_EQ(ScheduleToString(UniformSchedule(4, Op::kRead)), "rrrr");
  EXPECT_EQ(ScheduleToString(UniformSchedule(3, Op::kWrite)), "www");
}

TEST(AlternatingScheduleTest, StartsWithWrite) {
  EXPECT_EQ(ScheduleToString(AlternatingSchedule(5)), "wrwrw");
}

TEST(CruelScheduleTest, ThrashesSw1) {
  // Against SW1 the cruel adversary reads when there is no copy and writes
  // when there is one: r w r w ...
  auto policy = SlidingWindowPolicy::NewSw1();
  const Schedule s = CruelSchedule(*policy, 8);
  EXPECT_EQ(ScheduleToString(s), "rwrwrwrw");
}

TEST(CruelScheduleTest, AgainstSt1IsAllReads) {
  St1Policy policy;
  const Schedule s = CruelSchedule(policy, 5);
  EXPECT_EQ(ScheduleToString(s), "rrrrr");
}

TEST(CruelScheduleTest, AgainstSwkProducesBlocks) {
  // For SWk the cruel adversary alternates (k+1)/2-read and (k+1)/2-write
  // stretches after the initial ramp: every request is chargeable.
  SlidingWindowPolicy policy(5);
  const Schedule s = CruelSchedule(policy, 24);
  // Replay: every request must be chargeable (read without copy or write
  // with copy).
  SlidingWindowPolicy replay(5);
  for (const Op op : s) {
    if (op == Op::kRead) {
      EXPECT_FALSE(replay.has_copy());
    } else {
      EXPECT_TRUE(replay.has_copy());
    }
    replay.OnRequest(op);
  }
}

TEST(ForEachScheduleTest, EnumeratesAll) {
  std::set<std::string> seen;
  ForEachSchedule(3, [&](const Schedule& s) {
    EXPECT_EQ(s.size(), 3u);
    seen.insert(ScheduleToString(s));
  });
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_TRUE(seen.count("rrr"));
  EXPECT_TRUE(seen.count("www"));
  EXPECT_TRUE(seen.count("rwr"));
}

TEST(ForEachScheduleTest, LengthZero) {
  int calls = 0;
  ForEachSchedule(0, [&](const Schedule& s) {
    EXPECT_TRUE(s.empty());
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace mobrep
