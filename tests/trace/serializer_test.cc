#include "mobrep/trace/serializer.h"

#include <gtest/gtest.h>

#include "mobrep/common/random.h"

namespace mobrep {
namespace {

TEST(SerializerTest, MergesByTimestamp) {
  const auto merged = SerializeStreams({1.0, 3.0}, {2.0, 4.0});
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->size(), 4u);
  EXPECT_EQ(ScheduleToString(StripTimes(*merged)), "rwrw");
  EXPECT_DOUBLE_EQ((*merged)[0].time, 1.0);
  EXPECT_DOUBLE_EQ((*merged)[3].time, 4.0);
}

TEST(SerializerTest, TiesGoToTheWrite) {
  const auto merged = SerializeStreams({1.0}, {1.0});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(ScheduleToString(StripTimes(*merged)), "wr");
}

TEST(SerializerTest, EmptyStreams) {
  EXPECT_TRUE(SerializeStreams({}, {})->empty());
  EXPECT_EQ(SerializeStreams({1.0}, {})->size(), 1u);
  EXPECT_EQ(SerializeStreams({}, {1.0})->size(), 1u);
}

TEST(SerializerTest, RejectsUnorderedStreams) {
  EXPECT_FALSE(SerializeStreams({2.0, 1.0}, {}).ok());
  EXPECT_FALSE(SerializeStreams({}, {5.0, 4.0}).ok());
}

TEST(SerializerTest, OutputIsAValidSerialization) {
  Rng rng(7);
  std::vector<double> reads, writes;
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += rng.Exponential(2.0);
    reads.push_back(t);
  }
  t = 0.0;
  for (int i = 0; i < 300; ++i) {
    t += rng.Exponential(1.0);
    writes.push_back(t);
  }
  const auto merged = SerializeStreams(reads, writes);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->size(), 800u);
  EXPECT_TRUE(IsSerializationOf(*merged, reads, writes));
}

TEST(IsSerializationOfTest, DetectsViolations) {
  // Out-of-order timestamps.
  const TimedSchedule bad_order = {{2.0, Op::kRead}, {1.0, Op::kWrite}};
  EXPECT_FALSE(IsSerializationOf(bad_order, {2.0}, {1.0}));
  // Wrong multiset.
  const TimedSchedule wrong_ops = {{1.0, Op::kRead}, {2.0, Op::kRead}};
  EXPECT_FALSE(IsSerializationOf(wrong_ops, {1.0}, {2.0}));
  // Correct one accepted.
  const TimedSchedule good = {{1.0, Op::kRead}, {2.0, Op::kWrite}};
  EXPECT_TRUE(IsSerializationOf(good, {1.0}, {2.0}));
}

}  // namespace
}  // namespace mobrep
