#include "mobrep/trace/stats.h"

#include <gtest/gtest.h>

namespace mobrep {
namespace {

TEST(ComputeStatsTest, EmptySchedule) {
  const ScheduleStats stats = ComputeStats({});
  EXPECT_EQ(stats.requests, 0);
  EXPECT_EQ(stats.reads, 0);
  EXPECT_EQ(stats.writes, 0);
  EXPECT_DOUBLE_EQ(stats.theta_hat, 0.0);
  EXPECT_EQ(stats.longest_read_run, 0);
  EXPECT_EQ(stats.longest_write_run, 0);
  EXPECT_EQ(stats.alternations, 0);
}

TEST(ComputeStatsTest, MixedSchedule) {
  const ScheduleStats stats = ComputeStats(*ScheduleFromString("wrrrwwrw"));
  EXPECT_EQ(stats.requests, 8);
  EXPECT_EQ(stats.reads, 4);
  EXPECT_EQ(stats.writes, 4);
  EXPECT_DOUBLE_EQ(stats.theta_hat, 0.5);
  EXPECT_EQ(stats.longest_read_run, 3);
  EXPECT_EQ(stats.longest_write_run, 2);
  EXPECT_EQ(stats.alternations, 4);
}

TEST(ComputeStatsTest, UniformSchedules) {
  const ScheduleStats reads = ComputeStats(*ScheduleFromString("rrrr"));
  EXPECT_EQ(reads.longest_read_run, 4);
  EXPECT_EQ(reads.longest_write_run, 0);
  EXPECT_EQ(reads.alternations, 0);
  EXPECT_DOUBLE_EQ(reads.theta_hat, 0.0);

  const ScheduleStats writes = ComputeStats(*ScheduleFromString("www"));
  EXPECT_DOUBLE_EQ(writes.theta_hat, 1.0);
  EXPECT_EQ(writes.longest_write_run, 3);
}

TEST(ComputeStatsTest, ToStringContainsFields) {
  const ScheduleStats stats = ComputeStats(*ScheduleFromString("wr"));
  const std::string text = stats.ToString();
  EXPECT_NE(text.find("requests=2"), std::string::npos);
  EXPECT_NE(text.find("theta_hat=0.5"), std::string::npos);
}

}  // namespace
}  // namespace mobrep
