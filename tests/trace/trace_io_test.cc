#include "mobrep/trace/trace_io.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "mobrep/common/random.h"
#include "mobrep/trace/generators.h"

namespace mobrep {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(ScheduleSerializationTest, RoundTrip) {
  const Schedule original = *ScheduleFromString("wrrrwrwwwrrr");
  const std::string text = SerializeSchedule(original);
  const auto parsed = DeserializeSchedule(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, original);
}

TEST(ScheduleSerializationTest, LongScheduleWraps) {
  Rng rng(3);
  const Schedule original = GenerateBernoulliSchedule(1000, 0.5, &rng);
  const std::string text = SerializeSchedule(original);
  const auto parsed = DeserializeSchedule(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, original);
}

TEST(ScheduleSerializationTest, EmptySchedule) {
  const auto parsed = DeserializeSchedule(SerializeSchedule({}));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(ScheduleSerializationTest, CommentsAndBlanksIgnored) {
  const auto parsed = DeserializeSchedule(
      "# leading comment\n\nmobrep-trace v1\n# interior\nrw\n\nrr\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(ScheduleToString(*parsed), "rwrr");
}

TEST(ScheduleSerializationTest, RejectsMissingHeader) {
  EXPECT_FALSE(DeserializeSchedule("rwrw\n").ok());
  EXPECT_FALSE(DeserializeSchedule("").ok());
  EXPECT_FALSE(DeserializeSchedule("wrong-header v9\nrw\n").ok());
}

TEST(ScheduleSerializationTest, RejectsBadPayload) {
  EXPECT_FALSE(DeserializeSchedule("mobrep-trace v1\nrwx\n").ok());
}

TEST(TimedSerializationTest, RoundTrip) {
  const TimedSchedule original = {
      {0.125, Op::kWrite}, {1.5, Op::kRead}, {2.75, Op::kRead}};
  const auto parsed = DeserializeTimedSchedule(
      SerializeTimedSchedule(original));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 3u);
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ((*parsed)[i].time, original[i].time);
    EXPECT_EQ((*parsed)[i].op, original[i].op);
  }
}

TEST(TimedSerializationTest, RejectsDecreasingTimestamps) {
  EXPECT_FALSE(
      DeserializeTimedSchedule("mobrep-timed-trace v1\n2.0 r\n1.0 w\n").ok());
}

TEST(TimedSerializationTest, RejectsMalformedLines) {
  EXPECT_FALSE(DeserializeTimedSchedule("mobrep-timed-trace v1\n1.0\n").ok());
  EXPECT_FALSE(
      DeserializeTimedSchedule("mobrep-timed-trace v1\n1.0 r w\n").ok());
  EXPECT_FALSE(
      DeserializeTimedSchedule("mobrep-timed-trace v1\nabc r\n").ok());
}

TEST(FileIoTest, ScheduleRoundTrip) {
  const std::string path = TempPath("schedule.trace");
  Rng rng(17);
  const Schedule original = GenerateBernoulliSchedule(300, 0.4, &rng);
  ASSERT_TRUE(SaveScheduleToFile(path, original).ok());
  const auto loaded = LoadScheduleFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, original);
  std::remove(path.c_str());
}

TEST(FileIoTest, TimedRoundTrip) {
  const std::string path = TempPath("timed.trace");
  Rng rng(19);
  const TimedSchedule original = GenerateTimedPoisson(200, 2.0, 1.0, &rng);
  ASSERT_TRUE(SaveTimedScheduleToFile(path, original).ok());
  const auto loaded = LoadTimedScheduleFromFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR((*loaded)[i].time, original[i].time, 1e-9);
    EXPECT_EQ((*loaded)[i].op, original[i].op);
  }
  std::remove(path.c_str());
}

TEST(FileIoTest, MissingFileIsNotFound) {
  const auto loaded = LoadScheduleFromFile("/nonexistent/path/trace.txt");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace mobrep
