#include "mobrep/trace/generators.h"

#include <gtest/gtest.h>

#include "mobrep/trace/stats.h"

namespace mobrep {
namespace {

TEST(BernoulliScheduleTest, LengthAndDeterminism) {
  Rng rng1(42);
  Rng rng2(42);
  const Schedule a = GenerateBernoulliSchedule(1000, 0.3, &rng1);
  const Schedule b = GenerateBernoulliSchedule(1000, 0.3, &rng2);
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_EQ(a, b);
}

TEST(BernoulliScheduleTest, ThetaHatConverges) {
  Rng rng(7);
  const Schedule s = GenerateBernoulliSchedule(200000, 0.35, &rng);
  const ScheduleStats stats = ComputeStats(s);
  EXPECT_NEAR(stats.theta_hat, 0.35, 0.006);
}

TEST(BernoulliScheduleTest, DegenerateTheta) {
  Rng rng(1);
  EXPECT_EQ(CountWrites(GenerateBernoulliSchedule(100, 0.0, &rng)), 0);
  EXPECT_EQ(CountWrites(GenerateBernoulliSchedule(100, 1.0, &rng)), 100);
}

TEST(TimedPoissonTest, TimestampsIncreaseAndRatesMatch) {
  Rng rng(11);
  const double lambda_r = 3.0, lambda_w = 1.0;
  const TimedSchedule s = GenerateTimedPoisson(100000, lambda_r, lambda_w, &rng);
  ASSERT_EQ(s.size(), 100000u);
  for (size_t i = 1; i < s.size(); ++i) {
    ASSERT_GE(s[i].time, s[i - 1].time);
  }
  // Mean inter-arrival ~ 1/(lambda_r + lambda_w) = 0.25.
  const double span = s.back().time - s.front().time;
  EXPECT_NEAR(span / static_cast<double>(s.size() - 1), 0.25, 0.01);
  // Write fraction ~ theta = 1/4.
  const ScheduleStats stats = ComputeStats(StripTimes(s));
  EXPECT_NEAR(stats.theta_hat, 0.25, 0.01);
}

TEST(PeriodWorkloadTest, SizeAndVariation) {
  Rng rng(13);
  const Schedule s = GeneratePeriodWorkload(50, 1000, &rng);
  EXPECT_EQ(s.size(), 50000u);
  // Per-period write fractions should vary broadly (theta ~ U[0,1]): at
  // least one read-heavy and one write-heavy period.
  bool saw_read_heavy = false, saw_write_heavy = false;
  for (int p = 0; p < 50; ++p) {
    int64_t writes = 0;
    for (int i = 0; i < 1000; ++i) {
      writes += s[static_cast<size_t>(p * 1000 + i)] == Op::kWrite ? 1 : 0;
    }
    if (writes < 250) saw_read_heavy = true;
    if (writes > 750) saw_write_heavy = true;
  }
  EXPECT_TRUE(saw_read_heavy);
  EXPECT_TRUE(saw_write_heavy);
}

TEST(BernoulliStreamTest, MatchesBatchGenerator) {
  BernoulliRequestStream stream(0.4, Rng(55));
  int64_t writes = 0;
  const int64_t n = 100000;
  for (int64_t i = 0; i < n; ++i) {
    writes += stream.Next() == Op::kWrite ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(writes) / n, 0.4, 0.008);
}

TEST(PeriodStreamTest, ThetaRedrawnEachPeriod) {
  PeriodRequestStream stream(/*period_length=*/100, Rng(66));
  stream.Next();
  const double theta1 = stream.current_theta();
  for (int i = 0; i < 100; ++i) stream.Next();
  const double theta2 = stream.current_theta();
  EXPECT_NE(theta1, theta2);
}

}  // namespace
}  // namespace mobrep
