// Robustness ("fuzz") tests: the text-format parsers — trace files and the
// write-ahead log recovery — must never crash or corrupt state on
// arbitrary byte soup, and must round-trip everything they accept.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "mobrep/common/random.h"
#include "mobrep/store/write_ahead_log.h"
#include "mobrep/trace/trace_io.h"

namespace mobrep {
namespace {

std::string RandomBytes(Rng* rng, size_t max_length) {
  const size_t length = rng->UniformInt(max_length + 1);
  std::string bytes(length, '\0');
  for (auto& c : bytes) {
    c = static_cast<char>(rng->UniformInt(256));
  }
  return bytes;
}

std::string RandomTraceLike(Rng* rng, size_t max_length) {
  // Bias toward plausible trace content to reach deeper parser states.
  static constexpr char kAlphabet[] = "rw \n#01.:-PUTmobrep-trace v";
  const size_t length = rng->UniformInt(max_length + 1);
  std::string text(length, 'r');
  for (auto& c : text) {
    c = kAlphabet[rng->UniformInt(sizeof(kAlphabet) - 1)];
  }
  return text;
}

TEST(TraceFuzzTest, DeserializeScheduleNeverCrashes) {
  Rng rng(0xFEED);
  for (int i = 0; i < 3000; ++i) {
    const std::string input =
        i % 2 == 0 ? RandomBytes(&rng, 300) : RandomTraceLike(&rng, 300);
    const auto result = DeserializeSchedule(input);
    if (result.ok()) {
      // Whatever parses must re-serialize and parse back identically.
      const auto round = DeserializeSchedule(SerializeSchedule(*result));
      ASSERT_TRUE(round.ok());
      ASSERT_EQ(*round, *result);
    }
  }
}

TEST(TraceFuzzTest, DeserializeTimedScheduleNeverCrashes) {
  Rng rng(0xBEEF);
  for (int i = 0; i < 3000; ++i) {
    const std::string input =
        i % 2 == 0 ? RandomBytes(&rng, 300) : RandomTraceLike(&rng, 300);
    const auto result = DeserializeTimedSchedule(input);
    if (result.ok()) {
      const auto round =
          DeserializeTimedSchedule(SerializeTimedSchedule(*result));
      ASSERT_TRUE(round.ok());
      ASSERT_EQ(round->size(), result->size());
    }
  }
}

TEST(TraceFuzzTest, HeaderWithGarbagePayloadIsRejectedNotCrashed) {
  Rng rng(0xF00D);
  for (int i = 0; i < 2000; ++i) {
    const std::string input =
        "mobrep-trace v1\n" + RandomBytes(&rng, 200);
    const auto result = DeserializeSchedule(input);
    // Either a clean parse (payload happened to be r/w/whitespace) or a
    // clean error; both are fine — crashing is not.
    if (result.ok()) {
      ASSERT_LE(result->size(), 200u);
    }
  }
}

TEST(WalFuzzTest, RecoverNeverCrashesOnArbitraryLogBytes) {
  Rng rng(0xCAFE);
  const std::string path =
      std::string(::testing::TempDir()) + "/fuzz_wal.log";
  for (int i = 0; i < 500; ++i) {
    const std::string contents =
        i % 2 == 0 ? RandomBytes(&rng, 400) : RandomTraceLike(&rng, 400);
    std::FILE* file = std::fopen(path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    std::fwrite(contents.data(), 1, contents.size(), file);
    std::fclose(file);
    // Must terminate with either a recovered prefix or a DataLoss error.
    const auto recovered = WriteAheadLog::Recover(path);
    if (!recovered.ok()) {
      ASSERT_EQ(recovered.status().code(), StatusCode::kDataLoss);
    }
  }
  std::remove(path.c_str());
}

TEST(WalFuzzTest, ValidPrefixPlusGarbageRecoversPrefix) {
  Rng rng(0xD00D);
  const std::string path =
      std::string(::testing::TempDir()) + "/fuzz_wal_prefix.log";
  for (int i = 0; i < 200; ++i) {
    std::remove(path.c_str());
    {
      auto log = WriteAheadLog::Open(path);
      ASSERT_TRUE(log.ok());
      ASSERT_TRUE(log->AppendPut("k", {"v1", 1}).ok());
      ASSERT_TRUE(log->AppendPut("k", {"v2", 2}).ok());
    }
    {
      std::FILE* file = std::fopen(path.c_str(), "ab");
      const std::string junk = RandomBytes(&rng, 100);
      // Ensure the junk is not accidentally a valid record continuation:
      // prepend a byte that cannot start "PUT ".
      std::fputc('#', file);
      std::fwrite(junk.data(), 1, junk.size(), file);
      std::fclose(file);
    }
    const auto recovered = WriteAheadLog::Recover(path);
    ASSERT_TRUE(recovered.ok());
    ASSERT_EQ(recovered->store.Get("k")->version, 2u);
    ASSERT_EQ(recovered->store.Get("k")->value, "v2");
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mobrep
