#include "mobrep/multi/static_allocator.h"

#include <limits>

#include <gtest/gtest.h>

namespace mobrep {
namespace {

// Paper §7.2: with two objects there are four allocations; ST1 = neither
// replicated, ST2 = both, ST1,2 = only y, ST2,1 = only x.
constexpr AllocationMask kSt1 = 0b00;
constexpr AllocationMask kSt2 = 0b11;
constexpr AllocationMask kSt12 = 0b10;  // y replicated
constexpr AllocationMask kSt21 = 0b01;  // x replicated

TEST(ExpectedCostForAllocationTest, PaperFormulas) {
  // Frequencies: lr_x, lr_y, lr_xy, lw_x, lw_y, lw_xy.
  const MultiObjectWorkload w = TwoObjectWorkload(3, 5, 7, 2, 4, 6);
  const double total = w.TotalRate();  // 27
  const CostModel conn = CostModel::Connection();

  // Paper: EXP_ST1 = (lr_x + lr_y + lr_joint) / Lambda.
  EXPECT_NEAR(ExpectedCostForAllocation(w, kSt1, conn), (3 + 5 + 7) / total,
              1e-12);
  // Paper: EXP_ST1,2 = (lr_x + lw_y + lr_joint + lw_joint) / Lambda.
  EXPECT_NEAR(ExpectedCostForAllocation(w, kSt12, conn),
              (3 + 4 + 7 + 6) / total, 1e-12);
  // Mirror: ST2,1 = (lr_y + lw_x + lr_joint + lw_joint) / Lambda.
  EXPECT_NEAR(ExpectedCostForAllocation(w, kSt21, conn),
              (5 + 2 + 7 + 6) / total, 1e-12);
  // ST2: every write is chargeable.
  EXPECT_NEAR(ExpectedCostForAllocation(w, kSt2, conn), (2 + 4 + 6) / total,
              1e-12);
}

TEST(ClassCostTest, JointOpsChargeable) {
  const CostModel conn = CostModel::Connection();
  const OperationClass joint_read{Op::kRead, {0, 1}, 1.0};
  const OperationClass joint_write{Op::kWrite, {0, 1}, 1.0};
  // A joint read is free only when every object is replicated.
  EXPECT_DOUBLE_EQ(ClassCost(joint_read, kSt2, conn), 0.0);
  EXPECT_DOUBLE_EQ(ClassCost(joint_read, kSt12, conn), 1.0);
  // A joint write is free only when no object is replicated.
  EXPECT_DOUBLE_EQ(ClassCost(joint_write, kSt1, conn), 0.0);
  EXPECT_DOUBLE_EQ(ClassCost(joint_write, kSt12, conn), 1.0);
}

TEST(ClassCostTest, MessageModelPrices) {
  const CostModel msg = CostModel::Message(0.5);
  const OperationClass read_x{Op::kRead, {0}, 1.0};
  const OperationClass write_x{Op::kWrite, {0}, 1.0};
  EXPECT_DOUBLE_EQ(ClassCost(read_x, kSt1, msg), 1.5);
  EXPECT_DOUBLE_EQ(ClassCost(read_x, kSt21, msg), 0.0);
  EXPECT_DOUBLE_EQ(ClassCost(write_x, kSt21, msg), 1.0);
}

TEST(OptimalStaticAllocationTest, ReadHeavyReplicatesEverything) {
  const MultiObjectWorkload w = TwoObjectWorkload(10, 10, 5, 1, 1, 0);
  const StaticAllocation best =
      OptimalStaticAllocation(w, CostModel::Connection());
  EXPECT_EQ(best.mask, kSt2);
}

TEST(OptimalStaticAllocationTest, WriteHeavyReplicatesNothing) {
  const MultiObjectWorkload w = TwoObjectWorkload(1, 1, 0, 10, 10, 5);
  const StaticAllocation best =
      OptimalStaticAllocation(w, CostModel::Connection());
  EXPECT_EQ(best.mask, kSt1);
}

TEST(OptimalStaticAllocationTest, MixedWorkloadSplits) {
  // x is read-mostly, y is write-mostly: replicate x only.
  const MultiObjectWorkload w = TwoObjectWorkload(10, 1, 0, 1, 10, 0);
  const StaticAllocation best =
      OptimalStaticAllocation(w, CostModel::Connection());
  EXPECT_EQ(best.mask, kSt21);
  EXPECT_NEAR(best.expected_cost,
              ExpectedCostForAllocation(w, kSt21, CostModel::Connection()),
              1e-12);
}

TEST(OptimalStaticAllocationTest, JointOpsCoupleTheChoice) {
  // Strong joint reads force co-replication even though y alone would not
  // deserve a copy.
  const MultiObjectWorkload w = TwoObjectWorkload(5, 0, 20, 0, 3, 0);
  const StaticAllocation best =
      OptimalStaticAllocation(w, CostModel::Connection());
  EXPECT_EQ(best.mask, kSt2);
}

TEST(OptimalStaticAllocationTest, ExhaustiveIsMinimal) {
  const MultiObjectWorkload w = TwoObjectWorkload(3, 1, 4, 1, 5, 9);
  for (const CostModel& model :
       {CostModel::Connection(), CostModel::Message(0.3)}) {
    const StaticAllocation best = OptimalStaticAllocation(w, model);
    for (AllocationMask mask = 0; mask < 4; ++mask) {
      EXPECT_LE(best.expected_cost,
                ExpectedCostForAllocation(w, mask, model) + 1e-12);
    }
  }
}

MultiObjectWorkload RandomWorkload(int num_objects, int num_classes,
                                   Rng* rng) {
  MultiObjectWorkload w;
  w.num_objects = num_objects;
  for (int c = 0; c < num_classes; ++c) {
    OperationClass cls;
    cls.op = rng->Bernoulli(0.5) ? Op::kWrite : Op::kRead;
    for (int i = 0; i < num_objects; ++i) {
      if (rng->Bernoulli(0.4)) cls.objects.push_back(i);
    }
    if (cls.objects.empty()) {
      cls.objects.push_back(static_cast<int>(rng->UniformInt(
          static_cast<uint64_t>(num_objects))));
    }
    cls.rate = rng->Uniform(0.1, 10.0);
    w.classes.push_back(cls);
  }
  return w;
}

TEST(LocalSearchAllocationTest, FindsGlobalOptimumOnSmallWorkloads) {
  Rng rng(123);
  for (int trial = 0; trial < 25; ++trial) {
    const MultiObjectWorkload w = RandomWorkload(6, 10, &rng);
    ASSERT_TRUE(w.Validate().ok());
    const CostModel model = CostModel::Connection();
    const StaticAllocation exhaustive = OptimalStaticAllocation(w, model);
    const StaticAllocation local =
        LocalSearchAllocation(w, model, &rng, /*restarts=*/16);
    // Local search with restarts should match the optimum on 6 objects;
    // allow equality of cost with a different mask.
    EXPECT_NEAR(local.expected_cost, exhaustive.expected_cost, 1e-9)
        << "trial " << trial;
  }
}

TEST(LocalSearchAllocationTest, NeverWorseThanAllOrNothing) {
  Rng rng(321);
  const MultiObjectWorkload w = RandomWorkload(12, 30, &rng);
  const CostModel model = CostModel::Message(0.5);
  const StaticAllocation local = LocalSearchAllocation(w, model, &rng, 8);
  EXPECT_LE(local.expected_cost,
            ExpectedCostForAllocation(w, 0, model) + 1e-12);
  EXPECT_LE(local.expected_cost,
            ExpectedCostForAllocation(w, (1u << 12) - 1, model) + 1e-12);
}

}  // namespace
}  // namespace mobrep
