#include "mobrep/multi/dynamic_allocator.h"

#include <gtest/gtest.h>

#include "mobrep/common/random.h"
#include "mobrep/multi/joint_workload.h"
#include "mobrep/multi/static_allocator.h"

namespace mobrep {
namespace {

DynamicMultiObjectAllocator::Options MakeOptions(int num_objects,
                                                 int window = 256,
                                                 int period = 64) {
  DynamicMultiObjectAllocator::Options options;
  options.num_objects = num_objects;
  options.window_size = window;
  options.recompute_period = period;
  return options;
}

TEST(DynamicAllocatorTest, ConvergesToStaticOptimum) {
  // Stationary workload: after enough operations the dynamic allocator's
  // mask must settle on the static optimum.
  const MultiObjectWorkload w = TwoObjectWorkload(10, 1, 0, 1, 10, 0);
  const CostModel model = CostModel::Connection();
  const StaticAllocation expected = OptimalStaticAllocation(w, model);

  DynamicMultiObjectAllocator allocator(MakeOptions(2), model);
  Rng rng(7);
  const auto sequence = SampleClassSequence(w, 4000, &rng);
  for (const int c : sequence) {
    allocator.OnOperation(w.classes[static_cast<size_t>(c)]);
  }
  EXPECT_EQ(allocator.allocation_mask(), expected.mask);
  EXPECT_GE(allocator.recomputations(), 1);
}

TEST(DynamicAllocatorTest, AdaptsWhenWorkloadShifts) {
  const CostModel model = CostModel::Connection();
  DynamicMultiObjectAllocator allocator(
      MakeOptions(2, /*window=*/128, /*period=*/32), model);
  Rng rng(9);

  // Phase 1: read-heavy on both objects -> replicate both.
  const MultiObjectWorkload reads = TwoObjectWorkload(10, 10, 5, 1, 1, 0);
  for (const int c : SampleClassSequence(reads, 2000, &rng)) {
    allocator.OnOperation(reads.classes[static_cast<size_t>(c)]);
  }
  EXPECT_EQ(allocator.allocation_mask(), 0b11u);

  // Phase 2: write-heavy -> drop both replicas.
  const MultiObjectWorkload writes = TwoObjectWorkload(1, 1, 0, 10, 10, 5);
  for (const int c : SampleClassSequence(writes, 2000, &rng)) {
    allocator.OnOperation(writes.classes[static_cast<size_t>(c)]);
  }
  EXPECT_EQ(allocator.allocation_mask(), 0b00u);
  EXPECT_GE(allocator.reallocations(), 2);
}

TEST(DynamicAllocatorTest, CostsMatchStaticWhenMaskStable) {
  // With the optimal mask already installed and a stationary workload, the
  // per-operation cost should average to the static expected cost.
  const MultiObjectWorkload w = TwoObjectWorkload(10, 1, 0, 1, 10, 0);
  const CostModel model = CostModel::Connection();
  const StaticAllocation optimum = OptimalStaticAllocation(w, model);

  auto options = MakeOptions(2);
  options.initial_mask = optimum.mask;
  DynamicMultiObjectAllocator allocator(options, model);
  Rng rng(11);
  const int64_t n = 50000;
  double total = 0.0;
  for (const int c : SampleClassSequence(w, n, &rng)) {
    total += allocator.OnOperation(w.classes[static_cast<size_t>(c)]);
  }
  EXPECT_NEAR(total / static_cast<double>(n), optimum.expected_cost, 0.02);
  // The mask never needed to change.
  EXPECT_EQ(allocator.reallocations(), 0);
}

TEST(DynamicAllocatorTest, WindowBoundsEstimate) {
  const CostModel model = CostModel::Connection();
  DynamicMultiObjectAllocator allocator(
      MakeOptions(2, /*window=*/8, /*period=*/4), model);
  const OperationClass read_x{Op::kRead, {0}, 0.0};
  for (int i = 0; i < 20; ++i) allocator.OnOperation(read_x);
  const MultiObjectWorkload estimate = allocator.EstimatedWorkload();
  ASSERT_EQ(estimate.classes.size(), 1u);
  // Only the last 8 operations are counted.
  EXPECT_DOUBLE_EQ(estimate.classes[0].rate, 8.0);
  EXPECT_EQ(allocator.operations(), 20);
}

TEST(DynamicAllocatorTest, TransitionCostsCharged) {
  const CostModel model = CostModel::Message(0.5);
  DynamicMultiObjectAllocator allocator(
      MakeOptions(2, /*window=*/16, /*period=*/4), model);
  const OperationClass read_xy{Op::kRead, {0, 1}, 0.0};
  double total = 0.0;
  for (int i = 0; i < 8; ++i) total += allocator.OnOperation(read_xy);
  // Reads cost 1.5 each until the recomputation replicates both objects;
  // the transition itself ships two data items (cost 2).
  EXPECT_EQ(allocator.allocation_mask(), 0b11u);
  EXPECT_GE(allocator.reallocations(), 1);
  EXPECT_GT(total, 2.0);  // paid remote reads plus the transition
  // After the switch further reads are free.
  const double after = allocator.OnOperation(read_xy);
  EXPECT_DOUBLE_EQ(after, 0.0);
}

TEST(DynamicAllocatorDeathTest, RejectsBadOptions) {
  const CostModel model = CostModel::Connection();
  EXPECT_DEATH(
      { DynamicMultiObjectAllocator a(MakeOptions(0), model); }, "");
  EXPECT_DEATH(
      {
        DynamicMultiObjectAllocator a(MakeOptions(2, /*window=*/0), model);
      },
      "");
}

}  // namespace
}  // namespace mobrep
