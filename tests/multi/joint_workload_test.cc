#include "mobrep/multi/joint_workload.h"

#include <gtest/gtest.h>

namespace mobrep {
namespace {

TEST(OperationClassTest, KeyFormat) {
  const OperationClass read_x{Op::kRead, {0}, 1.0};
  const OperationClass write_xy{Op::kWrite, {0, 2}, 1.0};
  EXPECT_EQ(read_x.Key(), "r{0}");
  EXPECT_EQ(write_xy.Key(), "w{0,2}");
}

TEST(TwoObjectWorkloadTest, SixClasses) {
  const MultiObjectWorkload w = TwoObjectWorkload(1, 2, 3, 4, 5, 6);
  EXPECT_EQ(w.num_objects, 2);
  ASSERT_EQ(w.classes.size(), 6u);
  EXPECT_TRUE(w.Validate().ok());
  EXPECT_DOUBLE_EQ(w.TotalRate(), 21.0);
}

TEST(ValidateTest, CatchesBadWorkloads) {
  MultiObjectWorkload w;
  w.num_objects = 0;
  EXPECT_FALSE(w.Validate().ok());

  w.num_objects = 2;
  w.classes = {{Op::kRead, {}, 1.0}};
  EXPECT_FALSE(w.Validate().ok());  // empty object set

  w.classes = {{Op::kRead, {5}, 1.0}};
  EXPECT_FALSE(w.Validate().ok());  // index out of range

  w.classes = {{Op::kRead, {1, 0}, 1.0}};
  EXPECT_FALSE(w.Validate().ok());  // not ascending

  w.classes = {{Op::kRead, {0, 0}, 1.0}};
  EXPECT_FALSE(w.Validate().ok());  // duplicate

  w.classes = {{Op::kRead, {0}, -1.0}};
  EXPECT_FALSE(w.Validate().ok());  // negative rate

  w.classes = {{Op::kRead, {0}, 0.0}};
  EXPECT_FALSE(w.Validate().ok());  // zero total rate

  w.classes = {{Op::kRead, {0}, 1.0}, {Op::kWrite, {0, 1}, 0.5}};
  EXPECT_TRUE(w.Validate().ok());
}

TEST(SampleClassSequenceTest, FrequenciesMatchRates) {
  const MultiObjectWorkload w = TwoObjectWorkload(4, 2, 2, 1, 1, 0);
  Rng rng(88);
  const auto sequence = SampleClassSequence(w, 100000, &rng);
  ASSERT_EQ(sequence.size(), 100000u);
  std::vector<int64_t> counts(w.classes.size(), 0);
  for (const int c : sequence) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, static_cast<int>(w.classes.size()));
    ++counts[static_cast<size_t>(c)];
  }
  const double total = w.TotalRate();
  for (size_t c = 0; c < w.classes.size(); ++c) {
    const double expected = w.classes[c].rate / total;
    const double observed =
        static_cast<double>(counts[c]) / static_cast<double>(sequence.size());
    EXPECT_NEAR(observed, expected, 0.01) << "class " << c;
  }
}

TEST(SampleClassSequenceTest, ZeroRateClassNeverSampled) {
  const MultiObjectWorkload w = TwoObjectWorkload(1, 1, 0, 1, 1, 0);
  Rng rng(89);
  for (const int c : SampleClassSequence(w, 20000, &rng)) {
    EXPECT_NE(w.classes[static_cast<size_t>(c)].rate, 0.0);
  }
}

}  // namespace
}  // namespace mobrep
