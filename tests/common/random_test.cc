#include "mobrep/common/random.h"

#include <cmath>
#include <cstdint>
#include <set>

#include <gtest/gtest.h>

namespace mobrep {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  // Standard error ~ 1/sqrt(12 n) ~ 0.00065; allow 5 sigma.
  EXPECT_NEAR(sum / n, 0.5, 0.0035);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(5);
  const double p = 0.3;
  const int n = 200000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(p) ? 1 : 0;
  // Standard error ~ sqrt(p(1-p)/n) ~ 0.001; allow 5 sigma.
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.006);
}

TEST(RngTest, UniformIntWithinBoundsAndCoversAll) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(13);
  const double lambda = 2.5;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.01);
}

TEST(RngTest, ExponentialIsPositive) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.Exponential(1.0), 0.0);
  }
}

TEST(RngTest, UniformRange) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Fork(1);
  Rng child2 = parent.Fork(1);
  // Forks from different points of the parent stream differ.
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.NextUint64() != child2.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(SplitMix64Test, KnownFirstOutputs) {
  // Reference values for seed 0 from the SplitMix64 reference
  // implementation (Steele, Lea, Flood).
  SplitMix64 mixer(0);
  EXPECT_EQ(mixer.Next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(mixer.Next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(mixer.Next(), 0x06c45d188009454fULL);
}

}  // namespace
}  // namespace mobrep
