#include "mobrep/common/strings.h"

#include <gtest/gtest.h>

namespace mobrep {
namespace {

TEST(StrSplitTest, Basic) {
  const auto pieces = StrSplit("a,b,c", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(StrSplitTest, KeepsEmptyPieces) {
  const auto pieces = StrSplit(",a,,b,", ',');
  ASSERT_EQ(pieces.size(), 5u);
  EXPECT_EQ(pieces[0], "");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(pieces[4], "");
}

TEST(StrSplitTest, EmptyInputYieldsOneEmptyPiece) {
  const auto pieces = StrSplit("", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "");
}

TEST(StripWhitespaceTest, Basic) {
  EXPECT_EQ(StripWhitespace("  hello \t\n"), "hello");
  EXPECT_EQ(StripWhitespace("hello"), "hello");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" a b "), "a b");
}

TEST(ParseInt64Test, Valid) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64(" -7 ").value(), -7);
  EXPECT_EQ(ParseInt64("0").value(), 0);
}

TEST(ParseInt64Test, Invalid) {
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("12x").has_value());
  EXPECT_FALSE(ParseInt64("1.5").has_value());
  EXPECT_FALSE(ParseInt64("abc").has_value());
}

TEST(ParseDoubleTest, Valid) {
  EXPECT_DOUBLE_EQ(ParseDouble("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble(" 0.0 ").value(), 0.0);
}

TEST(ParseDoubleTest, Invalid) {
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("1.5z").has_value());
  EXPECT_FALSE(ParseDouble("--3").has_value());
}

TEST(StrFormatTest, Formats) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(StrFormat("%s", "plain"), "plain");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, LongOutput) {
  const std::string long_str(500, 'a');
  EXPECT_EQ(StrFormat("%s", long_str.c_str()).size(), 500u);
}

}  // namespace
}  // namespace mobrep
