#include "mobrep/common/small_vector.h"

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace mobrep {
namespace {

using IntVec = SmallVector<int32_t, 4>;

TEST(SmallVectorTest, StartsEmptyAndInline) {
  IntVec v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_FALSE(v.spilled());
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(SmallVectorTest, PushBackWithinInlineCapacity) {
  IntVec v;
  for (int32_t i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_FALSE(v.spilled());
  for (int32_t i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<size_t>(i)], i);
}

TEST(SmallVectorTest, SpillsToHeapPastInlineCapacity) {
  IntVec v;
  for (int32_t i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_TRUE(v.spilled());
  EXPECT_GE(v.capacity(), 100u);
  for (int32_t i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<size_t>(i)], i);
}

TEST(SmallVectorTest, InitializerListAndFrontBack) {
  IntVec v{1, 2, 3};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.front(), 1);
  EXPECT_EQ(v.back(), 3);
  v.pop_back();
  EXPECT_EQ(v.back(), 2);
}

TEST(SmallVectorTest, CopyPreservesContentsInlineAndSpilled) {
  IntVec small{1, 2};
  IntVec small_copy(small);
  EXPECT_EQ(small_copy, small);

  IntVec big;
  for (int32_t i = 0; i < 50; ++i) big.push_back(i);
  IntVec big_copy(big);
  EXPECT_EQ(big_copy, big);
  big_copy.push_back(999);  // independent storage
  EXPECT_NE(big_copy, big);
}

TEST(SmallVectorTest, MoveStealsHeapAndCopiesInline) {
  IntVec big;
  for (int32_t i = 0; i < 50; ++i) big.push_back(i);
  const int32_t* heap_data = big.data();
  IntVec moved(std::move(big));
  EXPECT_EQ(moved.data(), heap_data);  // heap buffer stolen, not copied
  EXPECT_EQ(moved.size(), 50u);

  IntVec small{7, 8};
  IntVec small_moved(std::move(small));
  EXPECT_EQ(small_moved.size(), 2u);
  EXPECT_EQ(small_moved[0], 7);
}

TEST(SmallVectorTest, AssignAndClearReuseStorage) {
  IntVec v;
  const std::vector<int32_t> source = {5, 6, 7, 8, 9, 10};
  v.assign(source.begin(), source.end());
  EXPECT_EQ(v.size(), 6u);
  EXPECT_TRUE(v.spilled());
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.spilled());  // capacity kept: clear is not shrink_to_fit
  v.push_back(42);
  EXPECT_EQ(v[0], 42);
}

TEST(SmallVectorTest, EqualityAgainstStdVectorBothOrders) {
  IntVec v{1, 2, 3};
  const std::vector<int32_t> same = {1, 2, 3};
  const std::vector<int32_t> different = {1, 2, 4};
  EXPECT_TRUE(v == same);
  EXPECT_TRUE(same == v);
  EXPECT_TRUE(v != different);
  EXPECT_TRUE(different != v);
}

TEST(SmallVectorTest, ConversionRoundTripsThroughStdVector) {
  IntVec v;
  for (int32_t i = 0; i < 20; ++i) v.push_back(i * i);
  const std::vector<int32_t> as_vector = v.ToVector();
  const IntVec back(as_vector);
  EXPECT_EQ(back, v);
}

TEST(SmallVectorTest, RangeForIteratesInOrder) {
  IntVec v{10, 20, 30};
  int32_t expected = 10;
  for (const int32_t x : v) {
    EXPECT_EQ(x, expected);
    expected += 10;
  }
}

}  // namespace
}  // namespace mobrep
