#include "mobrep/common/math.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace mobrep {
namespace {

TEST(LogFactorialTest, SmallValuesExact) {
  EXPECT_DOUBLE_EQ(LogFactorial(0), 0.0);
  EXPECT_DOUBLE_EQ(LogFactorial(1), 0.0);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-12);
}

TEST(LogFactorialTest, LargeValuesMatchLgamma) {
  EXPECT_NEAR(LogFactorial(200), std::lgamma(201.0), 1e-9);
}

TEST(BinomialCoefficientTest, KnownValues) {
  EXPECT_NEAR(BinomialCoefficient(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(BinomialCoefficient(5, 2), 10.0, 1e-9);
  EXPECT_NEAR(BinomialCoefficient(10, 5), 252.0, 1e-7);
  EXPECT_NEAR(BinomialCoefficient(20, 10), 184756.0, 1e-4);
}

TEST(BinomialCoefficientTest, PascalIdentity) {
  for (int n = 2; n <= 40; ++n) {
    for (int k = 1; k < n; ++k) {
      const double lhs = BinomialCoefficient(n, k);
      const double rhs =
          BinomialCoefficient(n - 1, k - 1) + BinomialCoefficient(n - 1, k);
      EXPECT_NEAR(lhs / rhs, 1.0, 1e-10) << "n=" << n << " k=" << k;
    }
  }
}

TEST(BinomialPmfTest, SumsToOne) {
  for (const double p : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    double sum = 0.0;
    for (int k = 0; k <= 15; ++k) sum += BinomialPmf(15, k, p);
    EXPECT_NEAR(sum, 1.0, 1e-10) << "p=" << p;
  }
}

TEST(BinomialPmfTest, DegenerateP) {
  EXPECT_DOUBLE_EQ(BinomialPmf(7, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(7, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(7, 7, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(7, 2, 1.0), 0.0);
}

TEST(BinomialPmfTest, MatchesDirectFormula) {
  // n=4, k=2, p=0.3: C(4,2) 0.09 * 0.49 = 6*0.0441 = 0.2646.
  EXPECT_NEAR(BinomialPmf(4, 2, 0.3), 0.2646, 1e-12);
}

TEST(BinomialCdfTest, MonotoneAndBounded) {
  double prev = 0.0;
  for (int k = 0; k <= 9; ++k) {
    const double cdf = BinomialCdf(9, k, 0.4);
    EXPECT_GE(cdf, prev);
    EXPECT_LE(cdf, 1.0);
    prev = cdf;
  }
  EXPECT_NEAR(BinomialCdf(9, 9, 0.4), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(BinomialCdf(9, -1, 0.4), 0.0);
}

TEST(BinomialCdfTest, MatchesPmfPrefixSumsTo1e12) {
  // The one-pass ratio-recurrence CDF must agree with the straightforward
  // sum of log-space pmf terms to 1e-12 across sizes and skews.
  for (const int n : {1, 2, 9, 15, 64, 200, 500}) {
    for (const double p : {0.01, 0.2, 0.5, 0.8, 0.99}) {
      double prefix = 0.0;
      for (int k = 0; k < n; ++k) {
        prefix += BinomialPmf(n, k, p);
        ASSERT_NEAR(BinomialCdf(n, k, p), std::min(prefix, 1.0), 1e-12)
            << "n=" << n << " k=" << k << " p=" << p;
      }
    }
  }
}

TEST(BinomialCdfTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(BinomialCdf(10, -1, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(BinomialCdf(10, 10, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCdf(10, 3, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCdf(10, 3, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(BinomialCdf(10, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCdf(1, 0, 0.25), 0.75);
}

TEST(BinomialCdfTest, LargeNDoesNotUnderflow) {
  // At n = 3000, p = 0.5 the pmf at 0 is ~2^-3000 — far below the
  // subnormal range. Each term is evaluated in log space, so the tails
  // merely flush to zero instead of poisoning the sum; a pmf ratio
  // recurrence seeded at j = 0 would return 0 here.
  const double mid = BinomialCdf(3000, 1500, 0.5);
  EXPECT_GT(mid, 0.5);
  EXPECT_LT(mid, 0.52);
  // Tail symmetry: P(X <= k; p) + P(X <= n-k-1; 1-p) = 1 exactly.
  for (const int k : {0, 100, 1499, 2500}) {
    EXPECT_NEAR(BinomialCdf(3000, k, 0.3) + BinomialCdf(3000, 2999 - k, 0.7),
                1.0, 1e-12)
        << "k=" << k;
  }
  // Skewed far-tail case: the CDF at the mean of Bin(5000, 0.98) sits just
  // above 1/2 (normal approximation with continuity correction ~0.52).
  const double skewed = BinomialCdf(5000, 4900, 0.98);
  EXPECT_GT(skewed, 0.48);
  EXPECT_LT(skewed, 0.56);
}

TEST(BinomialCdfTest, RepeatedCallsHitTheMemoizedRowsConsistently) {
  // The per-n coefficient rows are cached after first use; cached and
  // uncached evaluations must agree exactly.
  const double first = BinomialCdf(600, 123, 0.21);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(BinomialCdf(600, 123, 0.21), first);
  }
  // Above the cache cap (n > 4096) the uncached path serves the request.
  const double big = BinomialCdf(5000, 2500, 0.5);
  EXPECT_GT(big, 0.5);
  EXPECT_EQ(BinomialCdf(5000, 2500, 0.5), big);
}

TEST(AdaptiveSimpsonTest, Polynomial) {
  // Integral of 3x^2 over [0,1] = 1.
  const double result =
      AdaptiveSimpson([](double x) { return 3.0 * x * x; }, 0.0, 1.0);
  EXPECT_NEAR(result, 1.0, 1e-10);
}

TEST(AdaptiveSimpsonTest, Transcendental) {
  // Integral of sin over [0, pi] = 2.
  const double pi = std::acos(-1.0);
  const double result =
      AdaptiveSimpson([](double x) { return std::sin(x); }, 0.0, pi);
  EXPECT_NEAR(result, 2.0, 1e-9);
}

TEST(AdaptiveSimpsonTest, SharpPeak) {
  // Integral of 1/(1e-4 + x^2) over [-1, 1] = 2*atan(100)/0.01.
  const double expected = 2.0 * std::atan(100.0) / 0.01;
  const double result = AdaptiveSimpson(
      [](double x) { return 1.0 / (1e-4 + x * x); }, -1.0, 1.0, 1e-8);
  EXPECT_NEAR(result / expected, 1.0, 1e-6);
}

TEST(AdaptiveSimpsonTest, EmptyInterval) {
  EXPECT_DOUBLE_EQ(
      AdaptiveSimpson([](double x) { return x; }, 2.0, 2.0), 0.0);
}

TEST(NearlyEqualTest, Basic) {
  EXPECT_TRUE(NearlyEqual(1.0, 1.0 + 1e-12, 1e-9));
  EXPECT_FALSE(NearlyEqual(1.0, 1.1, 1e-9));
}

TEST(RunningStatTest, MeanAndVariance) {
  RunningStat stat;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stat.Add(x);
  }
  EXPECT_EQ(stat.count(), 8);
  EXPECT_NEAR(stat.mean(), 5.0, 1e-12);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stat.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_NEAR(stat.std_error(), std::sqrt(32.0 / 7.0 / 8.0), 1e-12);
}

TEST(RunningStatTest, FewSamples) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
  stat.Add(3.0);
  EXPECT_DOUBLE_EQ(stat.mean(), 3.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stat.std_error(), 0.0);
}

}  // namespace
}  // namespace mobrep
