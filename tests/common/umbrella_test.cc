// Compilation guard for the umbrella header: it must stay self-contained
// and pull in every public module.

#include "mobrep/mobrep.h"

#include <gtest/gtest.h>

namespace mobrep {
namespace {

TEST(UmbrellaHeaderTest, EveryLayerIsReachable) {
  // One symbol per layer proves the includes are wired.
  EXPECT_EQ(OpToChar(Op::kRead), 'r');                       // core
  EXPECT_NEAR(AlphaK(3, 0.5), 0.5, 1e-12);                   // analysis
  EXPECT_EQ(UniformSchedule(2, Op::kWrite).size(), 2u);      // trace
  EXPECT_TRUE(IsDataMessage(MessageType::kDataResponse));    // net
  EXPECT_EQ(EncodeWindow({Op::kRead}).substr(0, 2), "1:");   // wire format
  VersionedStore store;                                      // store
  EXPECT_EQ(store.Put("k", "v"), 1u);
  RandomWalkMobility mobility(3, 1.0, Rng(1));               // mobility
  EXPECT_LT(mobility.NextCell(0), 3);
  ReplicationManager manager({});                            // manager
  EXPECT_EQ(manager.item_count(), 0u);
  const MultiObjectWorkload workload =
      TwoObjectWorkload(1, 1, 1, 1, 1, 1);                   // multi
  EXPECT_TRUE(workload.Validate().ok());
}

}  // namespace
}  // namespace mobrep
