// Node-level tests: MobileClient and StationaryServer driven directly
// through hand-wired channels, asserting the exact message choreography of
// paper §4 (who sends what, with which piggybacks, in which order).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mobrep/net/channel.h"
#include "mobrep/net/event_queue.h"
#include "mobrep/protocol/mobile_client.h"
#include "mobrep/protocol/stationary_server.h"
#include "mobrep/store/replica_cache.h"
#include "mobrep/store/versioned_store.h"

namespace mobrep {
namespace {

// A two-node rig that records every message crossing each direction.
class Rig {
 public:
  explicit Rig(const char* spec_text)
      : up_(&queue_, 0.0, "MC->SC"), down_(&queue_, 0.0, "SC->MC") {
    store_.Put("x", "v0");
    const PolicySpec spec = *ParsePolicySpec(spec_text);
    client_ = std::make_unique<MobileClient>("x", spec, &up_, &cache_);
    server_ = std::make_unique<StationaryServer>("x", spec, &down_, &store_);
    up_.set_receiver([this](const Message& m) {
      to_sc_.push_back(m);
      server_->HandleMessage(m);
    });
    down_.set_receiver([this](const Message& m) {
      to_mc_.push_back(m);
      client_->HandleMessage(m);
    });
    if (client_->in_charge()) cache_.Install("x", *store_.Get("x"));
  }

  VersionedValue Read() {
    VersionedValue seen;
    client_->IssueRead([&](const VersionedValue& v) { seen = v; });
    queue_.RunUntilQuiescent();
    return seen;
  }

  void Write(const std::string& value) {
    server_->IssueWrite(value);
    queue_.RunUntilQuiescent();
  }

  EventQueue queue_;
  VersionedStore store_;
  ReplicaCache cache_;
  Channel up_;
  Channel down_;
  std::unique_ptr<MobileClient> client_;
  std::unique_ptr<StationaryServer> server_;
  std::vector<Message> to_sc_;
  std::vector<Message> to_mc_;
};

TEST(NodeChoreographyTest, PlainRemoteRead) {
  Rig rig("st1");
  const VersionedValue seen = rig.Read();
  EXPECT_EQ(seen.value, "v0");
  ASSERT_EQ(rig.to_sc_.size(), 1u);
  EXPECT_EQ(rig.to_sc_[0].type, MessageType::kReadRequest);
  ASSERT_EQ(rig.to_mc_.size(), 1u);
  EXPECT_EQ(rig.to_mc_[0].type, MessageType::kDataResponse);
  EXPECT_FALSE(rig.to_mc_[0].allocate);
  EXPECT_TRUE(rig.to_mc_[0].window.empty());
}

TEST(NodeChoreographyTest, AllocatingReadPiggybacksWindowAndState) {
  Rig rig("sw:3");
  rig.Read();  // w w r: no majority yet
  rig.Read();  // w r r: allocate on the response
  ASSERT_EQ(rig.to_mc_.size(), 2u);
  EXPECT_FALSE(rig.to_mc_[0].allocate);
  const Message& allocating = rig.to_mc_[1];
  EXPECT_TRUE(allocating.allocate);
  EXPECT_EQ(allocating.window,
            (std::vector<Op>{Op::kWrite, Op::kRead, Op::kRead}));
  ASSERT_NE(allocating.transferred_state, nullptr);
  EXPECT_TRUE(allocating.transferred_state->has_copy());
  EXPECT_TRUE(rig.client_->in_charge());
  EXPECT_TRUE(rig.cache_.Contains("x"));
}

TEST(NodeChoreographyTest, PropagationCarriesFreshVersion) {
  Rig rig("st2");
  rig.Write("v1");
  rig.Write("v2");
  ASSERT_EQ(rig.to_mc_.size(), 2u);
  EXPECT_EQ(rig.to_mc_[0].type, MessageType::kWritePropagate);
  EXPECT_EQ(rig.to_mc_[0].item.version, 2u);  // after initial v0 = 1
  EXPECT_EQ(rig.to_mc_[1].item.version, 3u);
  EXPECT_EQ(*rig.cache_.Get("x"), *rig.store_.Get("x"));
}

TEST(NodeChoreographyTest, DeallocatingWriteSendsDeleteRequestBack) {
  Rig rig("sw:3");
  rig.Read();
  rig.Read();  // allocated, MC in charge
  rig.Write("v1");  // window r r w: still majority reads, propagate only
  EXPECT_TRUE(rig.client_->in_charge());
  rig.Write("v2");  // window r w w: deallocate
  EXPECT_FALSE(rig.client_->in_charge());
  // The last MC -> SC message is the delete-request with the window.
  ASSERT_FALSE(rig.to_sc_.empty());
  const Message& del = rig.to_sc_.back();
  EXPECT_EQ(del.type, MessageType::kDeleteRequest);
  EXPECT_EQ(del.window, (std::vector<Op>{Op::kRead, Op::kWrite, Op::kWrite}));
  ASSERT_NE(del.transferred_state, nullptr);
  EXPECT_FALSE(del.transferred_state->has_copy());
  EXPECT_FALSE(rig.cache_.Contains("x"));
  EXPECT_TRUE(rig.server_->in_charge());
}

TEST(NodeChoreographyTest, Sw1WriteSendsInvalidateOnly) {
  Rig rig("sw1");
  rig.Read();  // allocate
  const size_t before = rig.to_mc_.size();
  rig.Write("v1");
  ASSERT_EQ(rig.to_mc_.size(), before + 1);
  EXPECT_EQ(rig.to_mc_.back().type, MessageType::kInvalidate);
  EXPECT_FALSE(rig.cache_.Contains("x"));
  EXPECT_TRUE(rig.server_->in_charge());
  // No further traffic for subsequent writes.
  rig.Write("v2");
  EXPECT_EQ(rig.to_mc_.size(), before + 1);
}

TEST(NodeChoreographyTest, WritesWithoutCopyAreSilent) {
  Rig rig("st1");
  rig.Write("v1");
  rig.Write("v2");
  EXPECT_TRUE(rig.to_mc_.empty());
  EXPECT_TRUE(rig.to_sc_.empty());
  EXPECT_EQ(rig.store_.Get("x")->version, 3u);
}

TEST(NodeChoreographyTest, LocalReadsAreSilent) {
  Rig rig("st2");
  rig.Read();
  rig.Read();
  EXPECT_TRUE(rig.to_mc_.empty());
  EXPECT_TRUE(rig.to_sc_.empty());
}

TEST(NodeChoreographyTest, ReadAfterDeallocationGoesRemoteAgain) {
  Rig rig("sw:3");
  rig.Read();
  rig.Read();       // allocated
  rig.Write("v1");
  rig.Write("v2");  // deallocated
  const VersionedValue seen = rig.Read();
  EXPECT_EQ(seen.value, "v2");  // freshness across the churn
  EXPECT_EQ(rig.to_sc_.back().type, MessageType::kReadRequest);
}

TEST(NodeDeathTest, ClientRejectsConcurrentReads) {
  // Serialization contract: a second IssueRead while one is outstanding
  // aborts (the paper's requests are serialized upstream).
  EventQueue queue;
  VersionedStore store;
  store.Put("x", "v0");
  ReplicaCache cache;
  Channel up(&queue, 1.0, "up");
  Channel down(&queue, 1.0, "down");
  MobileClient client("x", *ParsePolicySpec("st1"), &up, &cache);
  StationaryServer server("x", *ParsePolicySpec("st1"), &down, &store);
  up.set_receiver([&](const Message& m) { server.HandleMessage(m); });
  down.set_receiver([&](const Message& m) { client.HandleMessage(m); });
  client.IssueRead([](const VersionedValue&) {});
  EXPECT_DEATH(client.IssueRead([](const VersionedValue&) {}),
               "serialized");
}

}  // namespace
}  // namespace mobrep
