#include "mobrep/protocol/multi_item_sim.h"

#include <map>
#include <string>

#include <gtest/gtest.h>

#include "mobrep/common/random.h"
#include "mobrep/common/strings.h"
#include "mobrep/core/cost_simulator.h"
#include "mobrep/trace/generators.h"

namespace mobrep {
namespace {

MultiItemSimulation::Options DefaultOptions() {
  MultiItemSimulation::Options options;
  options.default_spec = *ParsePolicySpec("sw:3");
  return options;
}

TEST(MultiItemSimTest, ItemsCreatedLazily) {
  MultiItemSimulation sim(DefaultOptions());
  EXPECT_EQ(sim.item_count(), 0u);
  sim.Step("a", Op::kRead);
  sim.Step("b", Op::kWrite);
  EXPECT_EQ(sim.item_count(), 2u);
}

TEST(MultiItemSimTest, PerItemIsolation) {
  MultiItemSimulation sim(DefaultOptions());
  // Allocate "a" (two reads under SW3); "b" stays cold.
  sim.Step("a", Op::kRead);
  sim.Step("a", Op::kRead);
  EXPECT_TRUE(sim.HasCopy("a"));
  EXPECT_FALSE(sim.HasCopy("b"));
  // Writes to "b" do not disturb "a"'s replica.
  for (int i = 0; i < 5; ++i) sim.Step("b", Op::kWrite);
  EXPECT_TRUE(sim.HasCopy("a"));
  EXPECT_EQ(sim.ReplicatedItems(), std::vector<std::string>{"a"});
}

TEST(MultiItemSimTest, MixedPoliciesPerItem) {
  MultiItemSimulation sim(DefaultOptions());
  sim.AddItem("pinned", *ParsePolicySpec("st2"));
  sim.AddItem("cold", *ParsePolicySpec("st1"));
  EXPECT_TRUE(sim.HasCopy("pinned"));
  EXPECT_FALSE(sim.HasCopy("cold"));
  sim.Step("pinned", Op::kRead);   // local
  sim.Step("cold", Op::kRead);     // remote
  const ProtocolMetrics m = sim.metrics();
  EXPECT_EQ(m.local_reads, 1);
  EXPECT_EQ(m.remote_reads, 1);
}

TEST(MultiItemSimTest, SharedLinkCountsEqualSumOfSingleItemRuns) {
  // Interleaving many items over one shared link pair must produce exactly
  // the sum of the per-item single-link runs.
  const int kItems = 4;
  Rng rng(555);
  // Per-item schedules plus a global interleaving.
  std::map<std::string, Schedule> per_item;
  std::vector<std::pair<std::string, Op>> interleaved;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < kItems; ++i) {
      const std::string key = "item" + std::to_string(i);
      const Op op = rng.Bernoulli(0.4) ? Op::kWrite : Op::kRead;
      per_item[key].push_back(op);
      interleaved.emplace_back(key, op);
    }
  }

  MultiItemSimulation shared(DefaultOptions());
  for (const auto& [key, op] : interleaved) shared.Step(key, op);

  int64_t want_data = 0, want_control = 0, want_connections = 0;
  for (const auto& [key, schedule] : per_item) {
    auto policy = CreatePolicy(*ParsePolicySpec("sw:3"));
    const CostBreakdown b =
        SimulateSchedule(policy.get(), schedule, CostModel::Connection());
    want_data += b.data_messages;
    want_control += b.control_messages;
    want_connections += b.connections;
  }
  const ProtocolMetrics m = shared.metrics();
  EXPECT_EQ(m.data_messages, want_data);
  EXPECT_EQ(m.control_messages, want_control);
  EXPECT_EQ(m.connections, want_connections);
}

TEST(MultiItemSimTest, CacheHoldsExactlyReplicatedItems) {
  MultiItemSimulation sim(DefaultOptions());
  Rng rng(556);
  for (int i = 0; i < 500; ++i) {
    const std::string key = StrFormat(
        "k%llu", static_cast<unsigned long long>(rng.UniformInt(5)));
    sim.Step(key, rng.Bernoulli(0.5) ? Op::kWrite : Op::kRead);
  }
  EXPECT_EQ(sim.cache().size(), sim.ReplicatedItems().size());
}

TEST(MultiItemSimDeathTest, DuplicateRegistrationAborts) {
  MultiItemSimulation sim(DefaultOptions());
  sim.AddItem("x", *ParsePolicySpec("st1"));
  EXPECT_DEATH(sim.AddItem("x", *ParsePolicySpec("st2")), "twice");
}

}  // namespace
}  // namespace mobrep
