#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "mobrep/common/random.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/core/schedule.h"
#include "mobrep/protocol/protocol_sim.h"
#include "mobrep/runner/parallel_sweep.h"
#include "mobrep/store/write_ahead_log.h"
#include "mobrep/trace/generators.h"

namespace mobrep {
namespace {

// Chaos suite: every policy family under seeded link faults — loss up to
// the configured ceiling, duplication, latency jitter (bounded
// reordering) and at least two scheduled doze windows per schedule. The
// invariants checked are the protocol's safety net: replica-placement
// agreement between the nodes, exactly-one-in-charge at quiescent points,
// fresh serialized reads, and no committed write ever lost.

constexpr const char* kAllPolicies[] = {"st1", "st2", "sw1",
                                        "sw:5", "t1:3", "t2:3"};

// Deterministically derives one fault schedule from (seed, span): drop and
// duplication probabilities, jitter bound, and >= 2 doze windows placed
// inside [0, span).
FaultConfig MakeChaosFaults(uint64_t seed, double span) {
  FaultConfig fault;
  fault.seed = seed;
  Rng rng(seed ^ 0xc4a05ULL);
  fault.drop_probability = rng.Uniform(0.05, 0.3);
  fault.duplicate_probability = rng.Uniform(0.0, 0.2);
  fault.max_jitter = rng.Uniform(0.0, 0.004);  // up to 4x the link latency
  const int windows = 2 + static_cast<int>(rng.UniformInt(2));
  for (const auto& [start, end] :
       GenerateOutageWindows(windows, span, span / (4.0 * windows), &rng)) {
    fault.outages.push_back({start, end});
  }
  return fault;
}

ProtocolConfig MakeChaosConfig(const std::string& spec_text, uint64_t seed,
                               double span) {
  ProtocolConfig config;
  config.spec = *ParsePolicySpec(spec_text);
  config.fault = MakeChaosFaults(seed, span);
  return config;
}

class ChaosTest
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {};

// Serialized chaos: the paper's one-request-at-a-time discipline, but over
// a faulty link. Step() itself asserts freshness (every read observes the
// latest committed version) and the in-charge invariants; here we add the
// replica-placement agreement between the two nodes at every quiescent
// point, and a final read proving no committed write was lost.
TEST_P(ChaosTest, SerializedRequestsSurviveLinkFaults) {
  const auto [spec_text, seed] = GetParam();
  // Exchanges stall across doze windows, so the clock easily covers the
  // outage span; windows early in the run are hit mid-exchange.
  ProtocolSimulation sim(MakeChaosConfig(spec_text, seed, /*span=*/0.4));
  Rng rng(seed * 7919 + 13);
  const double theta = 0.2 + 0.6 * rng.NextDouble();
  const Schedule schedule = GenerateBernoulliSchedule(80, theta, &rng);
  for (const Op op : schedule) {
    sim.Step(op);
    ASSERT_TRUE(sim.ExactlyOneInCharge());
    ASSERT_EQ(sim.client().in_charge(), sim.mc_has_copy());
    ASSERT_EQ(sim.server().mc_has_copy(), sim.mc_has_copy());
  }
  // Zero lost committed writes: a final read must observe the latest
  // version (Step aborts internally on a stale or divergent value).
  sim.Step(Op::kRead);

  const ProtocolMetrics m = sim.metrics();
  EXPECT_EQ(m.requests, 81);
  // The ARQ actually worked for a living on this link, and never
  // retransmitted spuriously (the RTO is derived above the worst-case RTT,
  // so only a lost frame or a lost ack can fire a timer).
  EXPECT_GT(m.acks, 0);
  if (m.retransmissions > 0) {
    EXPECT_GT(m.injected_drops + m.outage_drops, 0);
  }
}

// Overlapping chaos: timed Poisson arrivals land mid-outage,
// mid-retransmission and mid-hand-over. RunTimed checks read monotonicity,
// version/value binding, and final convergence internally.
TEST_P(ChaosTest, OverlappingRequestsSurviveLinkFaults) {
  const auto [spec_text, seed] = GetParam();
  Rng rng(seed * 104729 + 7);
  // ~150 arrivals at total rate 500 => span ~0.3; outages inside it.
  const TimedSchedule schedule =
      GenerateTimedPoisson(150, /*lambda_r=*/300.0, /*lambda_w=*/200.0, &rng);
  const double span = schedule.back().time;
  ProtocolSimulation sim(MakeChaosConfig(spec_text, seed, 0.8 * span));
  const Status result = sim.RunTimed(schedule);
  ASSERT_TRUE(result.ok()) << spec_text << " seed " << seed << ": "
                           << result.ToString();
  EXPECT_EQ(sim.metrics().requests, 150);
}

// 6 policies x 5 seeds x 2 drivers = 60 seeded fault schedules.
INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ChaosTest,
    ::testing::Combine(::testing::ValuesIn(kAllPolicies),
                       ::testing::Values(uint64_t{1}, uint64_t{2},
                                         uint64_t{3}, uint64_t{4},
                                         uint64_t{5})));

// The bit-for-bit acceptance gate: running the full ARQ stack on a
// fault-free link must reproduce the seed's paper-cost numbers exactly —
// the reliable-delivery machinery is invisible to both cost models.
TEST(ChaosTest, ForceReliableReproducesSeedCountersExactly) {
  for (const char* spec_text : kAllPolicies) {
    Rng rng(2024);
    const Schedule schedule = GenerateBernoulliSchedule(200, 0.5, &rng);

    ProtocolConfig plain_config;
    plain_config.spec = *ParsePolicySpec(spec_text);
    ProtocolConfig arq_config = plain_config;
    arq_config.fault.force_reliable = true;

    ProtocolSimulation plain(plain_config);
    ProtocolSimulation arq(arq_config);
    EXPECT_EQ(plain.mc_link(), nullptr);
    ASSERT_NE(arq.mc_link(), nullptr);
    plain.Run(schedule);
    arq.Run(schedule);

    const ProtocolMetrics p = plain.metrics();
    const ProtocolMetrics a = arq.metrics();
    EXPECT_EQ(a.data_messages, p.data_messages) << spec_text;
    EXPECT_EQ(a.control_messages, p.control_messages) << spec_text;
    EXPECT_EQ(a.connections, p.connections) << spec_text;
    EXPECT_EQ(a.propagations, p.propagations) << spec_text;
    EXPECT_EQ(a.invalidations, p.invalidations) << spec_text;
    EXPECT_EQ(a.allocations, p.allocations) << spec_text;
    EXPECT_EQ(a.deallocations, p.deallocations) << spec_text;
    EXPECT_EQ(a.local_reads, p.local_reads) << spec_text;
    EXPECT_EQ(a.remote_reads, p.remote_reads) << spec_text;
    EXPECT_DOUBLE_EQ(a.mean_read_latency, p.mean_read_latency) << spec_text;
    EXPECT_DOUBLE_EQ(a.max_read_latency, p.max_read_latency) << spec_text;
    // On a perfect link the ARQ never has to do anything.
    EXPECT_EQ(a.retransmissions, 0) << spec_text;
    EXPECT_EQ(a.duplicates_dropped, 0) << spec_text;
    EXPECT_EQ(a.injected_drops, 0) << spec_text;
    // Exactly one ack per application frame, metered outside the models.
    EXPECT_EQ(a.acks, p.data_messages + p.control_messages) << spec_text;
    EXPECT_EQ(p.acks, 0) << spec_text;
  }
}

// Doze collapse: writes committed while the SC->MC link is down are
// absorbed into one pending propagate; the flush on reconnect ships only
// the latest version (last-writer-wins), and the replica still converges.
TEST(ChaosTest, DozeWindowCollapsesPropagationsToLastWriterWins) {
  ProtocolConfig config;
  config.spec = *ParsePolicySpec("st2");  // the MC always holds the copy
  config.fault.outages.push_back({0.05, 0.6});
  ProtocolSimulation sim(config);

  TimedSchedule schedule;
  for (int i = 0; i < 10; ++i) {
    schedule.push_back({0.1 + 0.04 * i, Op::kWrite});  // all inside the doze
  }
  schedule.push_back({0.8, Op::kRead});
  schedule.push_back({0.9, Op::kRead});
  const Status result = sim.RunTimed(schedule);
  ASSERT_TRUE(result.ok()) << result.ToString();

  const ProtocolMetrics m = sim.metrics();
  // The first write's propagate went out (and got stuck retransmitting);
  // the other nine were collapsed behind it and flushed as one frame.
  EXPECT_EQ(m.collapsed_propagations, 9);
  EXPECT_EQ(m.propagations, 2);
  EXPECT_GT(m.outage_drops, 0);
  EXPECT_GT(m.retransmissions, 0);
  EXPECT_DOUBLE_EQ(m.outage_time, 0.55);
  // The replica converged to the final version despite the skipped ones.
  EXPECT_EQ(sim.store().Get("x")->value, "v10");
  EXPECT_TRUE(sim.mc_has_copy());
}

// A write-ahead log kept through a chaotic run still recovers the exact
// authoritative store — wireless faults never corrupt durability.
TEST(ChaosTest, WalRecoversTheStoreAfterAChaoticRun) {
  const std::string path =
      std::string(::testing::TempDir()) + "/chaos_wal.log";
  std::remove(path.c_str());
  ProtocolConfig config = MakeChaosConfig("sw:5", /*seed=*/11, /*span=*/0.3);
  config.wal_path = path;
  config.wal_options.sync_each_append = true;
  {
    ProtocolSimulation sim(config);
    Rng rng(11);
    sim.Run(GenerateBernoulliSchedule(120, 0.5, &rng));
    const auto recovered = WriteAheadLog::Recover(path);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ(recovered->store.Get("x")->value, sim.store().Get("x")->value);
    EXPECT_EQ(recovered->store.Get("x")->version,
              sim.store().Get("x")->version);
  }
  std::remove(path.c_str());
}

// The chaos grid is itself a deterministic parallel sweep: every
// (policy, seed) cell derives all of its randomness from its own cell
// values, so driving the 30 serialized-chaos cells through the thread
// pool at any width must reproduce the 1-thread metrics exactly.
TEST(ChaosTest, ChaosGridSweepsDeterministicallyAcrossThreadCounts) {
  struct Cell {
    const char* spec;
    uint64_t seed;
  };
  std::vector<Cell> cells;
  for (const char* spec : kAllPolicies) {
    for (uint64_t seed = 1; seed <= 5; ++seed) cells.push_back({spec, seed});
  }
  auto run_grid = [&](int threads) {
    SweepOptions options;
    options.threads = threads;
    return ParallelSweep<ProtocolMetrics>(
        static_cast<int64_t>(cells.size()),
        [&](int64_t i, Rng&) {
          const Cell& cell = cells[static_cast<size_t>(i)];
          ProtocolSimulation sim(
              MakeChaosConfig(cell.spec, cell.seed, /*span=*/0.4));
          Rng rng(cell.seed * 7919 + 13);
          const double theta = 0.2 + 0.6 * rng.NextDouble();
          for (const Op op : GenerateBernoulliSchedule(80, theta, &rng)) {
            sim.Step(op);
          }
          sim.Step(Op::kRead);
          return sim.metrics();
        },
        options);
  };
  const std::vector<ProtocolMetrics> serial = run_grid(1);
  const std::vector<ProtocolMetrics> parallel = run_grid(4);
  ASSERT_EQ(serial.size(), cells.size());
  ASSERT_EQ(parallel.size(), cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    SCOPED_TRACE(std::string(cells[i].spec) + " seed " +
                 std::to_string(cells[i].seed));
    EXPECT_EQ(serial[i].requests, parallel[i].requests);
    EXPECT_EQ(serial[i].data_messages, parallel[i].data_messages);
    EXPECT_EQ(serial[i].control_messages, parallel[i].control_messages);
    EXPECT_EQ(serial[i].connections, parallel[i].connections);
    EXPECT_EQ(serial[i].propagations, parallel[i].propagations);
    EXPECT_EQ(serial[i].invalidations, parallel[i].invalidations);
    EXPECT_EQ(serial[i].allocations, parallel[i].allocations);
    EXPECT_EQ(serial[i].deallocations, parallel[i].deallocations);
    EXPECT_EQ(serial[i].local_reads, parallel[i].local_reads);
    EXPECT_EQ(serial[i].remote_reads, parallel[i].remote_reads);
    EXPECT_EQ(serial[i].retransmissions, parallel[i].retransmissions);
    EXPECT_EQ(serial[i].acks, parallel[i].acks);
    EXPECT_DOUBLE_EQ(serial[i].mean_read_latency,
                     parallel[i].mean_read_latency);
    EXPECT_DOUBLE_EQ(serial[i].max_read_latency,
                     parallel[i].max_read_latency);
  }
}

// Outage bookkeeping: metrics report the scheduled outage time that
// actually elapsed, not the configured total.
TEST(ChaosTest, OutageTimeMetricClipsToElapsedSimTime) {
  ProtocolConfig config;
  config.spec = *ParsePolicySpec("st1");
  config.fault.outages.push_back({0.0, 0.01});
  config.fault.outages.push_back({1e6, 2e6});  // never reached
  ProtocolSimulation sim(config);
  sim.Run(*ScheduleFromString("rr"));
  const ProtocolMetrics m = sim.metrics();
  EXPECT_GT(m.outage_time, 0.0);
  EXPECT_LT(m.outage_time, 1.0);
  EXPECT_GT(m.retransmissions, 0);  // the first read fought the outage
}

}  // namespace
}  // namespace mobrep
