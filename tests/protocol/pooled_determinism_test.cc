// The engine-swap invariant behind DESIGN.md §11: message pooling and the
// pooled event queue are pure mechanism. A workload driven with pooling
// disabled (heap-per-message legacy mode) and the same workload pooled
// must produce byte-identical deterministic traces and identical protocol
// cost counters — on the perfect link AND under drop/duplicate/jitter
// faults with the full ARQ stack in the path (retransmissions and
// duplicate deliveries are where pooled copies actually happen).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mobrep/common/random.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/core/schedule.h"
#include "mobrep/net/message_pool.h"
#include "mobrep/obs/trace.h"
#include "mobrep/obs/trace_export.h"
#include "mobrep/protocol/multi_client_sim.h"
#include "mobrep/protocol/protocol_sim.h"

namespace mobrep {
namespace {

struct RunArtifacts {
  std::string trace;
  ProtocolMetrics metrics;
};

// Drives one ProtocolSimulation through a fixed 600-request Bernoulli
// stream, recording the deterministic trace text and final metrics.
RunArtifacts RunProtocolWorkload(bool pooled, const FaultConfig& fault) {
  MessagePool::SetPoolingEnabled(pooled);
  obs::TraceRecorder::Global()->Clear();
  obs::TraceRecorder::SetRuntimeEnabled(true);

  ProtocolConfig config;
  config.spec = *ParsePolicySpec("sw:9");
  config.fault = fault;
  ProtocolSimulation sim(config);
  Rng rng(20260808);
  for (int i = 0; i < 600; ++i) {
    sim.Step(rng.Bernoulli(0.4) ? Op::kWrite : Op::kRead);
  }

  RunArtifacts artifacts;
  artifacts.trace =
      obs::ExportDeterministicText(obs::TraceRecorder::Global()->MergedEvents());
  artifacts.metrics = sim.metrics();
  obs::TraceRecorder::SetRuntimeEnabled(false);
  obs::TraceRecorder::Global()->Clear();
  MessagePool::SetPoolingEnabled(true);
  return artifacts;
}

void ExpectIdenticalRuns(const RunArtifacts& legacy,
                         const RunArtifacts& pooled) {
  // Trace equality is the strong statement: every delivery, drop,
  // retransmission and timeout happened at the same sim time with the
  // same arguments, in the same order.
  EXPECT_EQ(legacy.trace, pooled.trace);
#if defined(MOBREP_TRACING) && MOBREP_TRACING
  EXPECT_FALSE(legacy.trace.empty());
#endif

  const ProtocolMetrics& a = legacy.metrics;
  const ProtocolMetrics& b = pooled.metrics;
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.local_reads, b.local_reads);
  EXPECT_EQ(a.remote_reads, b.remote_reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.propagations, b.propagations);
  EXPECT_EQ(a.invalidations, b.invalidations);
  EXPECT_EQ(a.allocations, b.allocations);
  EXPECT_EQ(a.deallocations, b.deallocations);
  EXPECT_EQ(a.data_messages, b.data_messages);
  EXPECT_EQ(a.control_messages, b.control_messages);
  EXPECT_EQ(a.connections, b.connections);
  EXPECT_DOUBLE_EQ(a.mean_read_latency, b.mean_read_latency);
  EXPECT_DOUBLE_EQ(a.max_read_latency, b.max_read_latency);
}

TEST(PooledDeterminismTest, PerfectLinkTracesAndCountersMatch) {
  const FaultConfig perfect;
  const RunArtifacts legacy = RunProtocolWorkload(/*pooled=*/false, perfect);
  const RunArtifacts pooled = RunProtocolWorkload(/*pooled=*/true, perfect);
  ExpectIdenticalRuns(legacy, pooled);
}

TEST(PooledDeterminismTest, FaultyLinkTracesAndCountersMatch) {
  // Drops force retransmission copies, duplicates force AcquireCopy on
  // the delivery path, jitter reorders — the pooled paths that differ
  // most from legacy all fire.
  FaultConfig fault;
  fault.drop_probability = 0.08;
  fault.duplicate_probability = 0.05;
  fault.max_jitter = 0.0004;
  fault.seed = 0xFEEDFACEu;
  const RunArtifacts legacy = RunProtocolWorkload(/*pooled=*/false, fault);
  const RunArtifacts pooled = RunProtocolWorkload(/*pooled=*/true, fault);
  ExpectIdenticalRuns(legacy, pooled);
}

TEST(PooledDeterminismTest, MultiClientCountersMatch) {
  // The fan-out engine (one pooled slot per subscriber, live
  // simultaneously) under both modes.
  auto run = [](bool pooled) {
    MessagePool::SetPoolingEnabled(pooled);
    MultiClientSimulation::Options options;
    options.num_clients = 16;
    options.spec = *ParsePolicySpec("sw:9");
    MultiClientSimulation sim(options);
    Rng rng(4242);
    for (int step = 0; step < 800; ++step) {
      if (rng.NextDouble() < 0.25) {
        sim.StepWrite();
      } else {
        sim.StepRead(static_cast<int>(rng.UniformInt(16)));
      }
    }
    MessagePool::SetPoolingEnabled(true);
    return std::vector<int64_t>{sim.data_messages(), sim.control_messages(),
                                static_cast<int64_t>(sim.SubscriberCount()),
                                sim.queue().executed(),
                                static_cast<int64_t>(sim.queue().peak_pending())};
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace mobrep
