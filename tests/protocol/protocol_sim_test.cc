#include "mobrep/protocol/protocol_sim.h"

#include <cstdio>
#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "mobrep/common/random.h"
#include "mobrep/core/cost_simulator.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/core/sliding_window_policy.h"
#include "mobrep/trace/adversary.h"
#include "mobrep/store/write_ahead_log.h"
#include "mobrep/trace/generators.h"

namespace mobrep {
namespace {

ProtocolConfig MakeConfig(const std::string& spec_text,
                          double latency = 0.001) {
  ProtocolConfig config;
  config.spec = *ParsePolicySpec(spec_text);
  config.link_latency = latency;
  return config;
}

TEST(ProtocolSimTest, St1RemoteReadRoundTrip) {
  ProtocolSimulation sim(MakeConfig("st1"));
  sim.Run(*ScheduleFromString("rrw"));
  const ProtocolMetrics m = sim.metrics();
  EXPECT_EQ(m.remote_reads, 2);
  EXPECT_EQ(m.local_reads, 0);
  EXPECT_EQ(m.propagations, 0);
  EXPECT_EQ(m.connections, 2);
  EXPECT_EQ(m.data_messages, 2);
  EXPECT_EQ(m.control_messages, 2);
  EXPECT_FALSE(sim.mc_has_copy());
}

TEST(ProtocolSimTest, St2LocalReadsAndPropagations) {
  ProtocolSimulation sim(MakeConfig("st2"));
  sim.Run(*ScheduleFromString("rwwr"));
  const ProtocolMetrics m = sim.metrics();
  EXPECT_EQ(m.local_reads, 2);
  EXPECT_EQ(m.remote_reads, 0);
  EXPECT_EQ(m.propagations, 2);
  EXPECT_EQ(m.connections, 2);
  EXPECT_EQ(m.data_messages, 2);
  EXPECT_EQ(m.control_messages, 0);
  EXPECT_TRUE(sim.mc_has_copy());
}

TEST(ProtocolSimTest, SwkAllocationHandsOverWindow) {
  ProtocolSimulation sim(MakeConfig("sw:3"));
  sim.Run(*ScheduleFromString("rr"));  // second read allocates
  EXPECT_TRUE(sim.mc_has_copy());
  EXPECT_TRUE(sim.client().in_charge());
  EXPECT_FALSE(sim.server().in_charge());
  // The window piggybacked on the hand-over is the post-read window w r r.
  EXPECT_EQ(sim.client().last_transfer_window(),
            (std::vector<Op>{Op::kWrite, Op::kRead, Op::kRead}));
  EXPECT_EQ(sim.metrics().allocations, 1);
}

TEST(ProtocolSimTest, SwkDeallocationReturnsWindow) {
  ProtocolSimulation sim(MakeConfig("sw:3"));
  sim.Run(*ScheduleFromString("rrr"));  // copy at MC, window r r r
  sim.Run(*ScheduleFromString("ww"));   // second write deallocates
  EXPECT_FALSE(sim.mc_has_copy());
  EXPECT_TRUE(sim.server().in_charge());
  EXPECT_EQ(sim.server().last_transfer_window(),
            (std::vector<Op>{Op::kRead, Op::kWrite, Op::kWrite}));
  EXPECT_EQ(sim.metrics().deallocations, 1);
}

TEST(ProtocolSimTest, Sw1UsesInvalidateControlMessage) {
  ProtocolSimulation sim(MakeConfig("sw1"));
  sim.Run(*ScheduleFromString("rw"));
  const ProtocolMetrics m = sim.metrics();
  EXPECT_EQ(m.invalidations, 1);
  EXPECT_EQ(m.propagations, 0);
  EXPECT_FALSE(sim.mc_has_copy());
  // r: control + data; w: control only.
  EXPECT_EQ(m.data_messages, 1);
  EXPECT_EQ(m.control_messages, 2);
}

TEST(ProtocolSimTest, ReadsAlwaysObserveLatestVersion) {
  // The Step() harness checks freshness internally; this exercises it
  // across many interleavings and policies.
  for (const char* spec : {"st1", "st2", "sw1", "sw:5", "t1:3", "t2:3"}) {
    ProtocolSimulation sim(MakeConfig(spec));
    Rng rng(1000);
    const Schedule s = GenerateBernoulliSchedule(500, 0.5, &rng);
    sim.Run(s);  // aborts internally on a stale read
    EXPECT_EQ(sim.metrics().requests, 500);
  }
}

TEST(ProtocolSimTest, ExactlyOneNodeInChargeThroughout) {
  ProtocolSimulation sim(MakeConfig("sw:5"));
  Rng rng(2000);
  const Schedule s = GenerateBernoulliSchedule(400, 0.5, &rng);
  for (const Op op : s) {
    sim.Step(op);
    ASSERT_TRUE(sim.ExactlyOneInCharge());
    ASSERT_EQ(sim.client().in_charge(), sim.mc_has_copy());
  }
}

TEST(ProtocolSimTest, LatencyDoesNotChangeCosts) {
  const Schedule s = BlockSchedule(20, 4, 7);
  ProtocolSimulation fast(MakeConfig("sw:5", /*latency=*/0.0));
  ProtocolSimulation slow(MakeConfig("sw:5", /*latency=*/2.5));
  fast.Run(s);
  slow.Run(s);
  const ProtocolMetrics a = fast.metrics();
  const ProtocolMetrics b = slow.metrics();
  EXPECT_EQ(a.data_messages, b.data_messages);
  EXPECT_EQ(a.control_messages, b.control_messages);
  EXPECT_EQ(a.connections, b.connections);
  EXPECT_GT(slow.now(), fast.now());
}

// The central cross-validation: the distributed protocol must incur
// exactly the communication the abstract single-machine policy accounting
// predicts — for every policy family, in both cost models.
class ProtocolEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(ProtocolEquivalenceTest, WireCostMatchesAbstractSimulator) {
  const auto [spec_text, theta] = GetParam();
  const PolicySpec spec = *ParsePolicySpec(spec_text);

  Rng rng(31337 + static_cast<uint64_t>(theta * 100));
  const Schedule s = GenerateBernoulliSchedule(600, theta, &rng);

  // Abstract accounting.
  auto policy = CreatePolicy(spec);
  const CostBreakdown abstract =
      SimulateSchedule(policy.get(), s, CostModel::Connection());

  // Wire accounting.
  ProtocolSimulation sim(MakeConfig(spec_text));
  sim.Run(s);
  const ProtocolMetrics wire = sim.metrics();

  EXPECT_EQ(wire.data_messages, abstract.data_messages);
  EXPECT_EQ(wire.control_messages, abstract.control_messages);
  EXPECT_EQ(wire.connections, abstract.connections);
  EXPECT_EQ(wire.allocations, abstract.allocations);
  EXPECT_EQ(wire.deallocations, abstract.deallocations);

  // Priced totals agree under both models.
  for (const CostModel& model :
       {CostModel::Connection(), CostModel::Message(0.0),
        CostModel::Message(0.4), CostModel::Message(1.0)}) {
    auto fresh = CreatePolicy(spec);
    const double abstract_cost =
        SimulateSchedule(fresh.get(), s, model).total_cost;
    EXPECT_NEAR(wire.PriceUnder(model), abstract_cost, 1e-9)
        << spec_text << " under " << model.name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ProtocolEquivalenceTest,
    ::testing::Combine(::testing::Values("st1", "st2", "sw1", "sw:3", "sw:5",
                                         "sw:9", "t1:4", "t2:4"),
                       ::testing::Values(0.2, 0.5, 0.8)));

TEST(ProtocolEquivalenceTest, AdversarialBlocksToo) {
  for (const char* spec_text : {"sw1", "sw:5", "t1:3"}) {
    const PolicySpec spec = *ParsePolicySpec(spec_text);
    const Schedule s = BlockSchedule(30, 5, 5);
    auto policy = CreatePolicy(spec);
    const CostBreakdown abstract =
        SimulateSchedule(policy.get(), s, CostModel::Connection());
    ProtocolSimulation sim(MakeConfig(spec_text));
    sim.Run(s);
    EXPECT_EQ(sim.metrics().connections, abstract.connections) << spec_text;
    EXPECT_EQ(sim.metrics().data_messages, abstract.data_messages)
        << spec_text;
    EXPECT_EQ(sim.metrics().control_messages, abstract.control_messages)
        << spec_text;
  }
}

TEST(ProtocolSimTest, TransferredWindowMatchesAbstractPolicyWindow) {
  // Run the abstract policy alongside the protocol; at every hand-over the
  // piggybacked window must equal the abstract policy's window.
  const int k = 5;
  SlidingWindowPolicy abstract(k);
  ProtocolSimulation sim(MakeConfig("sw:5"));
  Rng rng(4242);
  const Schedule s = GenerateBernoulliSchedule(300, 0.5, &rng);
  for (const Op op : s) {
    const bool before = abstract.has_copy();
    abstract.OnRequest(op);
    sim.Step(op);
    ASSERT_EQ(sim.mc_has_copy(), abstract.has_copy());
    if (before != abstract.has_copy()) {
      // A transfer happened this step; both ends must have seen the same
      // window the abstract policy holds now.
      const auto& window = abstract.has_copy()
                               ? sim.client().last_transfer_window()
                               : sim.server().last_transfer_window();
      ASSERT_EQ(window, abstract.window().Contents());
    }
  }
}

TEST(ProtocolSimTest, WalRecoversTheStoreAfterARun) {
  const std::string path =
      std::string(::testing::TempDir()) + "/protocol_wal.log";
  std::remove(path.c_str());
  ProtocolConfig config = MakeConfig("sw:3");
  config.wal_path = path;
  {
    ProtocolSimulation sim(config);
    Rng rng(606);
    sim.Run(GenerateBernoulliSchedule(300, 0.5, &rng));
    // Recovery from the log reproduces the live store's item exactly.
    const auto recovered = WriteAheadLog::Recover(path);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ(recovered->store.Get("x")->value, sim.store().Get("x")->value);
    EXPECT_EQ(recovered->store.Get("x")->version,
              sim.store().Get("x")->version);
  }
  std::remove(path.c_str());
}

TEST(ProtocolSimTest, MetricsRequestsCount) {
  ProtocolSimulation sim(MakeConfig("sw:3"));
  sim.Run(*ScheduleFromString("rwrwr"));
  EXPECT_EQ(sim.metrics().requests, 5);
  EXPECT_EQ(sim.metrics().writes, 2);
}

}  // namespace
}  // namespace mobrep
