#include "mobrep/protocol/multi_client_sim.h"

#include <gtest/gtest.h>

#include "mobrep/common/random.h"
#include "mobrep/core/cost_simulator.h"
#include "mobrep/protocol/protocol_sim.h"
#include "mobrep/trace/generators.h"

namespace mobrep {
namespace {

MultiClientSimulation::Options MakeOptions(int clients,
                                           const char* spec = "sw:3") {
  MultiClientSimulation::Options options;
  options.num_clients = clients;
  options.spec = *ParsePolicySpec(spec);
  return options;
}

TEST(MultiClientSimTest, IndependentSubscriptions) {
  MultiClientSimulation sim(MakeOptions(3));
  // Client 0 reads twice (allocates under SW3); others stay cold.
  sim.StepRead(0);
  sim.StepRead(0);
  EXPECT_TRUE(sim.HasCopy(0));
  EXPECT_FALSE(sim.HasCopy(1));
  EXPECT_FALSE(sim.HasCopy(2));
  EXPECT_EQ(sim.SubscriberCount(), 1);
}

TEST(MultiClientSimTest, WriteFanOutEqualsSubscriberCount) {
  MultiClientSimulation sim(MakeOptions(4));
  // Subscribe clients 0 and 2.
  for (const int c : {0, 2}) {
    sim.StepRead(c);
    sim.StepRead(c);
  }
  ASSERT_EQ(sim.SubscriberCount(), 2);
  const int64_t data_before = sim.data_messages();
  sim.StepWrite();
  // One data message per subscriber, none for the cold clients.
  EXPECT_EQ(sim.data_messages() - data_before, 2);
}

TEST(MultiClientSimTest, SubscribersSeeEveryVersion) {
  MultiClientSimulation sim(MakeOptions(2, "st2"));
  // ST2: both clients permanently subscribed; StepWrite() internally
  // checks each replica matches the store after propagation.
  for (int i = 0; i < 20; ++i) sim.StepWrite();
  EXPECT_EQ(sim.SubscriberCount(), 2);
  EXPECT_EQ(sim.store().Get("x")->version, 21u);
}

TEST(MultiClientSimTest, PerClientTrafficMatchesSingleClientRun) {
  // Each MC's marginal experience must equal a single-MC simulation fed
  // with its own reads plus all the writes.
  const int kClients = 3;
  Rng rng(2468);
  MultiClientSimulation sim(MakeOptions(kClients, "sw:5"));

  // Build per-client marginal schedules while driving the shared sim.
  std::vector<Schedule> marginal(kClients);
  for (int step = 0; step < 600; ++step) {
    if (rng.Bernoulli(0.4)) {
      sim.StepWrite();
      for (auto& s : marginal) s.push_back(Op::kWrite);
    } else {
      const int client = static_cast<int>(rng.UniformInt(kClients));
      sim.StepRead(client);
      marginal[static_cast<size_t>(client)].push_back(Op::kRead);
    }
  }

  for (int c = 0; c < kClients; ++c) {
    auto policy = CreatePolicy(*ParsePolicySpec("sw:5"));
    const CostBreakdown expect = SimulateSchedule(
        policy.get(), marginal[static_cast<size_t>(c)],
        CostModel::Connection());
    EXPECT_EQ(sim.client_data_messages(c), expect.data_messages)
        << "client " << c;
    EXPECT_EQ(sim.client_control_messages(c), expect.control_messages)
        << "client " << c;
  }
}

TEST(MultiClientSimTest, MixedReadersAndColdClients) {
  // A popular item: client 0 reads constantly, the rest never; write
  // fan-out should settle at exactly one.
  MultiClientSimulation sim(MakeOptions(5, "sw:3"));
  Rng rng(1357);
  for (int i = 0; i < 200; ++i) {
    if (rng.Bernoulli(0.3)) {
      sim.StepWrite();
    } else {
      sim.StepRead(0);
    }
  }
  EXPECT_LE(sim.SubscriberCount(), 1);
  for (int c = 1; c < 5; ++c) {
    EXPECT_EQ(sim.client_data_messages(c), 0) << "cold client " << c;
  }
}

TEST(MultiClientSimDeathTest, RejectsBadClientIndex) {
  MultiClientSimulation sim(MakeOptions(2));
  EXPECT_DEATH(sim.StepRead(2), "");
  EXPECT_DEATH(sim.StepRead(-1), "");
}

}  // namespace
}  // namespace mobrep
