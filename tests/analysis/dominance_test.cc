#include "mobrep/analysis/dominance.h"

#include <gtest/gtest.h>

#include "mobrep/analysis/expected_cost.h"

namespace mobrep {
namespace {

TEST(BoundaryTest, KnownValues) {
  // omega = 0: boundaries collapse to theta = 1 and theta = 0 — SW1 wins
  // the whole open interval (without control-message cost the window-of-one
  // algorithm is pointwise at least as good as both statics).
  EXPECT_DOUBLE_EQ(DominanceUpperBoundary(0.0), 1.0);
  EXPECT_DOUBLE_EQ(DominanceLowerBoundary(0.0), 0.0);
  // omega = 1: upper 2/3, lower 2/3 — the SW1 band vanishes.
  EXPECT_NEAR(DominanceUpperBoundary(1.0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(DominanceLowerBoundary(1.0), 2.0 / 3.0, 1e-12);
  // omega = 0.5: (1.5/2, 1/2).
  EXPECT_DOUBLE_EQ(DominanceUpperBoundary(0.5), 0.75);
  EXPECT_DOUBLE_EQ(DominanceLowerBoundary(0.5), 0.5);
}

TEST(BoundaryTest, BandIsNonEmptyBelowOmegaOne) {
  for (double omega = 0.0; omega < 1.0; omega += 0.05) {
    EXPECT_LT(DominanceLowerBoundary(omega), DominanceUpperBoundary(omega))
        << "omega=" << omega;
  }
}

TEST(ClassifyTest, Theorem6Regions) {
  const double omega = 0.5;  // boundaries at 0.75 and 0.5
  EXPECT_EQ(ClassifyByTheorem6(0.9, omega), MessageDominant::kSt1);
  EXPECT_EQ(ClassifyByTheorem6(0.6, omega), MessageDominant::kSw1);
  EXPECT_EQ(ClassifyByTheorem6(0.3, omega), MessageDominant::kSt2);
}

TEST(ClassifyTest, AgreesWithDirectComparisonOffBoundary) {
  for (double omega = 0.0; omega <= 1.0; omega += 0.02) {
    for (double theta = 0.01; theta < 1.0; theta += 0.01) {
      const double upper = DominanceUpperBoundary(omega);
      const double lower = DominanceLowerBoundary(omega);
      // Skip a small neighbourhood of the boundaries where ties occur.
      if (std::abs(theta - upper) < 1e-6 || std::abs(theta - lower) < 1e-6) {
        continue;
      }
      EXPECT_EQ(ClassifyByTheorem6(theta, omega),
                ClassifyByExpectedCosts(theta, omega))
          << "theta=" << theta << " omega=" << omega;
    }
  }
}

TEST(ClassifyTest, Theorem6OrderingInsideRegions) {
  // Region 1 (theta above upper): ST1 < SW1 < ST2.
  {
    const double theta = 0.95, omega = 0.5;
    EXPECT_LT(ExpSt1Message(theta, omega), ExpSw1Message(theta, omega));
    EXPECT_LT(ExpSw1Message(theta, omega), ExpSt2Message(theta, omega));
  }
  // Region 3 (theta below lower): ST2 < SW1 < ST1.
  {
    const double theta = 0.2, omega = 0.5;
    EXPECT_LT(ExpSt2Message(theta, omega), ExpSw1Message(theta, omega));
    EXPECT_LT(ExpSw1Message(theta, omega), ExpSt1Message(theta, omega));
  }
  // Middle band: SW1 below both statics.
  {
    const double theta = 0.6, omega = 0.5;
    EXPECT_LT(ExpSw1Message(theta, omega),
              std::min(ExpSt1Message(theta, omega),
                       ExpSt2Message(theta, omega)));
  }
}

TEST(MessageDominantNameTest, Names) {
  EXPECT_STREQ(MessageDominantName(MessageDominant::kSt1), "ST1");
  EXPECT_STREQ(MessageDominantName(MessageDominant::kSw1), "SW1");
  EXPECT_STREQ(MessageDominantName(MessageDominant::kSt2), "ST2");
}

}  // namespace
}  // namespace mobrep
