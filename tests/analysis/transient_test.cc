#include "mobrep/analysis/transient.h"

#include <gtest/gtest.h>

#include "mobrep/analysis/expected_cost.h"
#include "mobrep/common/math.h"
#include "mobrep/common/random.h"
#include "mobrep/core/cost_simulator.h"
#include "mobrep/core/sliding_window_policy.h"

namespace mobrep {
namespace {

TransientSpec Spec(int k, TransientStart start) {
  TransientSpec spec;
  spec.k = k;
  spec.start = start;
  return spec;
}

TEST(TransientTest, StationaryStartIsFlatAtSteadyState) {
  // Starting from the stationary law of theta itself, every request has
  // exactly the steady-state expected cost (eq. 5 / eq. 11).
  for (const int k : {1, 3, 9}) {
    for (const double theta : {0.2, 0.5, 0.8}) {
      TransientSpec spec = Spec(k, TransientStart::kStationaryOfPreviousTheta);
      spec.previous_theta = theta;
      const CostModel model = CostModel::Message(0.4);
      const auto costs = TransientExpectedCosts(spec, theta, model, 25);
      const double steady = ExpSwkMessage(k, theta, 0.4);
      for (const double c : costs) {
        ASSERT_NEAR(c, steady, 1e-10) << "k=" << k << " theta=" << theta;
      }
    }
  }
}

TEST(TransientTest, ConvergesToSteadyStateFromAnyStart) {
  const CostModel model = CostModel::Connection();
  for (const auto start :
       {TransientStart::kAllWrites, TransientStart::kAllReads}) {
    const auto costs =
        TransientExpectedCosts(Spec(9, start), 0.3, model, 600);
    EXPECT_NEAR(costs.back(), ExpSwkConnection(9, 0.3), 1e-6);
  }
}

TEST(TransientTest, MatchesMonteCarloSimulationOfTheRealPolicy) {
  // The Evolver duplicates the policy's decision rules for speed; verify
  // the first 30 per-request expected costs against 200k Monte-Carlo runs
  // of the actual SlidingWindowPolicy.
  const int k = 5;
  const double theta = 0.35;
  const CostModel model = CostModel::Message(0.5);
  const int horizon = 30;
  const auto exact = TransientExpectedCosts(
      Spec(k, TransientStart::kAllWrites), theta, model, horizon);

  std::vector<RunningStat> stats(static_cast<size_t>(horizon));
  Rng rng(777);
  SlidingWindowPolicy policy(k);
  for (int run = 0; run < 200000; ++run) {
    policy.Reset();
    CostMeter meter(&policy, &model);
    for (int t = 0; t < horizon; ++t) {
      stats[static_cast<size_t>(t)].Add(
          meter.OnRequest(rng.Bernoulli(theta) ? Op::kWrite : Op::kRead));
    }
  }
  for (int t = 0; t < horizon; ++t) {
    const auto& stat = stats[static_cast<size_t>(t)];
    ASSERT_NEAR(stat.mean(), exact[static_cast<size_t>(t)],
                5.0 * stat.std_error() + 1e-3)
        << "t=" << t;
  }
}

TEST(TransientTest, Sw1OptimizationChangesWriteCosts) {
  // With the window distribution identical, SW1's optimized writes cost
  // omega instead of 1 + omega.
  TransientSpec generic = Spec(1, TransientStart::kAllReads);
  TransientSpec optimized = generic;
  optimized.sw1_delete_optimization = true;
  const CostModel model = CostModel::Message(0.5);
  const auto a = TransientExpectedCosts(generic, 1.0, model, 1);
  const auto b = TransientExpectedCosts(optimized, 1.0, model, 1);
  // First request is surely a write against a held copy.
  EXPECT_DOUBLE_EQ(a[0], 1.5);
  EXPECT_DOUBLE_EQ(b[0], 0.5);
}

TEST(TransientCopyProbabilityTest, TracksRegimeChange) {
  // All-write start (no copy), then a read-only regime: the copy appears
  // with certainty after (k+1)/2 reads and never before.
  const int k = 7;
  const auto probs = TransientCopyProbability(
      Spec(k, TransientStart::kAllWrites), /*theta=*/0.0, 12);
  for (int t = 0; t < (k + 1) / 2 - 1; ++t) {
    EXPECT_DOUBLE_EQ(probs[static_cast<size_t>(t)], 0.0) << t;
  }
  for (int t = (k + 1) / 2 - 1; t < 12; ++t) {
    EXPECT_DOUBLE_EQ(probs[static_cast<size_t>(t)], 1.0) << t;
  }
}

TEST(TransientCopyProbabilityTest, SteadyStateEqualsAlphaK) {
  const int k = 9;
  const double theta = 0.4;
  const auto probs = TransientCopyProbability(
      Spec(k, TransientStart::kAllWrites), theta, 400);
  EXPECT_NEAR(probs.back(), AlphaK(k, theta), 1e-8);
}

TEST(AdaptationTimeTest, GrowsWithWindowSize) {
  // After a write-regime -> read-regime flip, larger windows take longer
  // to settle back to steady-state cost.
  const CostModel model = CostModel::Connection();
  int previous = 0;
  for (const int k : {3, 7, 15}) {
    const int t = AdaptationTime(Spec(k, TransientStart::kAllWrites),
                                 /*theta=*/0.1, model, 1e-4, 2000);
    EXPECT_GT(t, previous) << "k=" << k;
    EXPECT_LT(t, 2001) << "k=" << k;
    previous = t;
  }
}

TEST(AdaptationTimeTest, StationaryStartIsImmediate) {
  TransientSpec spec = Spec(9, TransientStart::kStationaryOfPreviousTheta);
  spec.previous_theta = 0.6;
  EXPECT_EQ(AdaptationTime(spec, 0.6, CostModel::Connection(), 1e-9, 100),
            1);
}

}  // namespace
}  // namespace mobrep
