#include "mobrep/analysis/expected_cost.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "mobrep/analysis/markov_oracle.h"
#include "mobrep/common/math.h"
#include "mobrep/common/random.h"
#include "mobrep/core/cost_simulator.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/core/sliding_window_policy.h"

namespace mobrep {
namespace {

constexpr double kThetaGrid[] = {0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95};

TEST(AlphaKTest, DegenerateTheta) {
  for (const int k : {1, 3, 9}) {
    EXPECT_DOUBLE_EQ(AlphaK(k, 0.0), 1.0);  // all reads: majority reads
    EXPECT_DOUBLE_EQ(AlphaK(k, 1.0), 0.0);  // all writes
  }
}

TEST(AlphaKTest, HalfThetaIsHalf) {
  // At theta = 1/2 and odd k, majority-reads and majority-writes are
  // symmetric, so alpha_k = 1/2 exactly.
  for (const int k : {1, 3, 5, 9, 15, 21}) {
    EXPECT_NEAR(AlphaK(k, 0.5), 0.5, 1e-12) << "k=" << k;
  }
}

TEST(AlphaKTest, SymmetryInTheta) {
  // alpha_k(theta) = 1 - alpha_k(1 - theta).
  for (const int k : {3, 7, 15}) {
    for (const double theta : kThetaGrid) {
      EXPECT_NEAR(AlphaK(k, theta), 1.0 - AlphaK(k, 1.0 - theta), 1e-12);
    }
  }
}

TEST(AlphaKTest, SharpensWithK) {
  // For theta < 1/2 (reads dominate), alpha_k increases with k.
  EXPECT_LT(AlphaK(1, 0.3), AlphaK(5, 0.3));
  EXPECT_LT(AlphaK(5, 0.3), AlphaK(21, 0.3));
  // For theta > 1/2 it decreases.
  EXPECT_GT(AlphaK(1, 0.7), AlphaK(5, 0.7));
  EXPECT_GT(AlphaK(5, 0.7), AlphaK(21, 0.7));
}

TEST(AlphaKTest, MatchesExplicitBinomialSum) {
  // Direct evaluation of eq. 4 for k = 5, theta = 0.4:
  // sum_{j=0}^{2} C(5,j) 0.4^j 0.6^(5-j).
  const double expected = 1 * std::pow(0.6, 5) +
                          5 * 0.4 * std::pow(0.6, 4) +
                          10 * 0.16 * std::pow(0.6, 3);
  EXPECT_NEAR(AlphaK(5, 0.4), expected, 1e-12);
}

TEST(SwkTransitionProbabilityTest, MatchesDirectFormula) {
  // k=5 (n=2): C(4,2) theta^3 (1-theta)^3.
  const double theta = 0.3;
  EXPECT_NEAR(SwkTransitionProbability(5, theta),
              6.0 * std::pow(theta, 3) * std::pow(1.0 - theta, 3), 1e-12);
  EXPECT_DOUBLE_EQ(SwkTransitionProbability(9, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(SwkTransitionProbability(9, 1.0), 0.0);
}

TEST(SwkTransitionProbabilityTest, MonteCarloDeallocationRate) {
  // The closed form is the steady-state probability that one request is a
  // deallocating write; measure it by simulation.
  const int k = 5;
  const double theta = 0.45;
  SlidingWindowPolicy policy(k);
  Rng rng(404);
  const int64_t n = 400000;
  int64_t deallocations = 0;
  for (int64_t i = 0; i < n; ++i) {
    const bool before = policy.has_copy();
    policy.OnRequest(rng.Bernoulli(theta) ? Op::kWrite : Op::kRead);
    if (before && !policy.has_copy()) ++deallocations;
  }
  const double rate = static_cast<double>(deallocations) / n;
  EXPECT_NEAR(rate, SwkTransitionProbability(k, theta), 0.003);
}

// --- Formula vs. exact Markov oracle, connection model ---

class SwkConnectionOracleTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SwkConnectionOracleTest, FormulaMatchesOracle) {
  const auto [k, theta] = GetParam();
  const CostModel model = CostModel::Connection();
  const double formula = ExpSwkConnection(k, theta);
  const double oracle = MarkovExpectedCostSlidingWindow(
      k, /*sw1_delete_optimization=*/false, theta, model);
  EXPECT_NEAR(formula, oracle, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SwkConnectionOracleTest,
    ::testing::Combine(::testing::Values(1, 3, 5, 9, 15),
                       ::testing::ValuesIn(kThetaGrid)));

// --- Formula vs. exact Markov oracle, message model ---

class SwkMessageOracleTest
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(SwkMessageOracleTest, Eq11MatchesOracle) {
  const auto [k, theta, omega] = GetParam();
  const CostModel model = CostModel::Message(omega);
  const double formula = ExpSwkMessage(k, theta, omega);
  const double oracle = MarkovExpectedCostSlidingWindow(
      k, /*sw1_delete_optimization=*/false, theta, model);
  EXPECT_NEAR(formula, oracle, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SwkMessageOracleTest,
    ::testing::Combine(::testing::Values(1, 3, 5, 9, 15),
                       ::testing::ValuesIn(kThetaGrid),
                       ::testing::Values(0.0, 0.25, 0.5, 1.0)));

TEST(Sw1MessageOracleTest, Eq9MatchesOracle) {
  for (const double theta : kThetaGrid) {
    for (const double omega : {0.0, 0.3, 0.7, 1.0}) {
      const CostModel model = CostModel::Message(omega);
      EXPECT_NEAR(ExpSw1Message(theta, omega),
                  MarkovExpectedCostSlidingWindow(
                      1, /*sw1_delete_optimization=*/true, theta, model),
                  1e-10)
          << "theta=" << theta << " omega=" << omega;
    }
  }
}

TEST(T1mOracleTest, FormulaMatchesChain) {
  for (const int m : {1, 2, 5, 15}) {
    for (const double theta : kThetaGrid) {
      EXPECT_NEAR(ExpT1mConnection(m, theta),
                  MarkovExpectedCostT1m(m, theta, CostModel::Connection()),
                  1e-9)
          << "m=" << m << " theta=" << theta;
      EXPECT_NEAR(ExpT1mMessage(m, theta, 0.4),
                  MarkovExpectedCostT1m(m, theta, CostModel::Message(0.4)),
                  1e-9);
    }
  }
}

TEST(T2mOracleTest, FormulaMatchesChain) {
  for (const int m : {1, 2, 5, 15}) {
    for (const double theta : kThetaGrid) {
      EXPECT_NEAR(ExpT2mConnection(m, theta),
                  MarkovExpectedCostT2m(m, theta, CostModel::Connection()),
                  1e-9)
          << "m=" << m << " theta=" << theta;
      EXPECT_NEAR(ExpT2mMessage(m, theta, 0.4),
                  MarkovExpectedCostT2m(m, theta, CostModel::Message(0.4)),
                  1e-9);
    }
  }
}

// --- Formula vs. Monte-Carlo simulation of the real policies ---

class ExpectedCostSimulationTest
    : public ::testing::TestWithParam<
          std::tuple<std::string, double, double>> {};

TEST_P(ExpectedCostSimulationTest, SimulationConvergesToFormula) {
  const auto [spec_text, theta, omega] = GetParam();
  const PolicySpec spec = *ParsePolicySpec(spec_text);
  const CostModel model =
      omega < 0.0 ? CostModel::Connection() : CostModel::Message(omega);
  const double formula = *ExpectedCost(spec, model, theta);

  auto policy = CreatePolicy(spec);
  CostMeter meter(policy.get(), &model);
  Rng rng(1234567 + static_cast<uint64_t>(theta * 1000) +
          static_cast<uint64_t>((omega + 2.0) * 17));
  RunningStat stat;
  // Warm-up so the fixed initial state does not bias the estimate.
  for (int i = 0; i < 2000; ++i) {
    meter.OnRequest(rng.Bernoulli(theta) ? Op::kWrite : Op::kRead);
  }
  const int64_t n = 300000;
  for (int64_t i = 0; i < n; ++i) {
    stat.Add(meter.OnRequest(rng.Bernoulli(theta) ? Op::kWrite : Op::kRead));
  }
  // Per-request costs are dependent (Markov), so the i.i.d. standard error
  // underestimates; use a generous 10x multiplier plus an absolute floor.
  const double tolerance = 10.0 * stat.std_error() + 5e-3;
  EXPECT_NEAR(stat.mean(), formula, tolerance)
      << spec_text << " theta=" << theta << " omega=" << omega;
}

INSTANTIATE_TEST_SUITE_P(
    Connection, ExpectedCostSimulationTest,
    ::testing::Combine(::testing::Values("st1", "st2", "sw1", "sw:3", "sw:9",
                                         "t1:7", "t2:7"),
                       ::testing::Values(0.15, 0.5, 0.85),
                       ::testing::Values(-1.0)));

INSTANTIATE_TEST_SUITE_P(
    Message, ExpectedCostSimulationTest,
    ::testing::Combine(::testing::Values("st1", "st2", "sw1", "sw:3", "sw:9",
                                         "t1:7", "t2:7"),
                       ::testing::Values(0.15, 0.5, 0.85),
                       ::testing::Values(0.3, 0.8)));

// --- The paper's comparison theorems ---

TEST(Theorem2Test, SwkNeverBeatsBestStaticConnection) {
  for (const int k : {1, 3, 5, 9, 15, 21}) {
    for (double theta = 0.0; theta <= 1.0; theta += 0.01) {
      const double swk = ExpSwkConnection(k, theta);
      const double best =
          std::min(ExpSt1Connection(theta), ExpSt2Connection(theta));
      EXPECT_GE(swk, best - 1e-12) << "k=" << k << " theta=" << theta;
    }
  }
}

TEST(Theorem9Test, SwkDominatedPointwiseMessage) {
  // EXP_SWk (k>1) >= min(EXP_SW1, EXP_ST1, EXP_ST2) for all theta, omega.
  for (const int k : {3, 5, 9, 15}) {
    for (const double omega : {0.0, 0.2, 0.5, 0.8, 1.0}) {
      for (double theta = 0.0; theta <= 1.0; theta += 0.01) {
        const double swk = ExpSwkMessage(k, theta, omega);
        const double best = std::min({ExpSw1Message(theta, omega),
                                      ExpSt1Message(theta, omega),
                                      ExpSt2Message(theta, omega)});
        EXPECT_GE(swk, best - 1e-9)
            << "k=" << k << " theta=" << theta << " omega=" << omega;
      }
    }
  }
}

TEST(ExpectedCostDispatcherTest, MatchesDirectFormulas) {
  const CostModel conn = CostModel::Connection();
  const CostModel msg = CostModel::Message(0.4);
  EXPECT_DOUBLE_EQ(*ExpectedCost(*ParsePolicySpec("st1"), conn, 0.3),
                   ExpSt1Connection(0.3));
  EXPECT_DOUBLE_EQ(*ExpectedCost(*ParsePolicySpec("sw:9"), msg, 0.3),
                   ExpSwkMessage(9, 0.3, 0.4));
  EXPECT_DOUBLE_EQ(*ExpectedCost(*ParsePolicySpec("sw1"), msg, 0.3),
                   ExpSw1Message(0.3, 0.4));
  EXPECT_DOUBLE_EQ(*ExpectedCost(*ParsePolicySpec("t1:15"), conn, 0.75),
                   ExpT1mConnection(15, 0.75));
}

TEST(ExpectedCostDispatcherTest, RejectsEvenWindows) {
  EXPECT_FALSE(
      ExpectedCost({PolicyKind::kSw, 4}, CostModel::Connection(), 0.5).ok());
}

// §7.1's comparison: for theta > 0.5, T1m has a slightly lower expected
// cost than SWm in the connection model.
TEST(T1mVsSwmTest, T1mBeatsSwmForWriteHeavyTheta) {
  for (const int m : {3, 5, 9, 15}) {
    for (const double theta : {0.55, 0.65, 0.75, 0.9}) {
      EXPECT_LT(ExpT1mConnection(m, theta), ExpSwkConnection(m, theta))
          << "m=" << m << " theta=" << theta;
    }
  }
}

// Conclusion §9's worked number: for m = 15 and theta = 0.75, T1m comes
// within 4% of the optimum (the best static, ST1 at 1 - theta).
TEST(T1mVsSwmTest, PaperExampleWithinFourPercent) {
  const double t1m = ExpT1mConnection(15, 0.75);
  const double optimum = ExpSt1Connection(0.75);
  EXPECT_LT((t1m - optimum) / optimum, 0.04);
}

}  // namespace
}  // namespace mobrep
