#include "mobrep/analysis/competitive.h"

#include <cmath>
#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "mobrep/common/random.h"
#include "mobrep/core/cost_simulator.h"
#include "mobrep/core/offline_optimal.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/core/sliding_window_policy.h"
#include "mobrep/core/threshold_policies.h"
#include "mobrep/trace/adversary.h"
#include "mobrep/trace/generators.h"

namespace mobrep {
namespace {

TEST(ClaimedFactorTest, PaperValues) {
  const CostModel conn = CostModel::Connection();
  const CostModel msg = CostModel::Message(0.5);
  // Thm. 4.
  EXPECT_DOUBLE_EQ(*ClaimedCompetitiveFactor(*ParsePolicySpec("sw:9"), conn),
                   10.0);
  EXPECT_DOUBLE_EQ(*ClaimedCompetitiveFactor(*ParsePolicySpec("sw1"), conn),
                   2.0);
  // Thm. 11: 1 + 2*omega.
  EXPECT_DOUBLE_EQ(*ClaimedCompetitiveFactor(*ParsePolicySpec("sw1"), msg),
                   2.0);
  // Thm. 12: (1 + omega/2)(k + 1) + omega.
  EXPECT_DOUBLE_EQ(*ClaimedCompetitiveFactor(*ParsePolicySpec("sw:9"), msg),
                   1.25 * 10.0 + 0.5);
  // §7.1: T-policies are (m+1)-competitive in the connection model.
  EXPECT_DOUBLE_EQ(*ClaimedCompetitiveFactor(*ParsePolicySpec("t1:15"), conn),
                   16.0);
  EXPECT_DOUBLE_EQ(*ClaimedCompetitiveFactor(*ParsePolicySpec("t2:7"), conn),
                   8.0);
}

TEST(ClaimedFactorTest, StaticsAreNotCompetitive) {
  EXPECT_FALSE(
      ClaimedCompetitiveFactor(*ParsePolicySpec("st1"), CostModel::Connection())
          .ok());
  EXPECT_FALSE(
      ClaimedCompetitiveFactor(*ParsePolicySpec("st2"), CostModel::Message(0.5))
          .ok());
}

TEST(MeasureRatioTest, BasicBookkeeping) {
  auto policy = CreatePolicy(*ParsePolicySpec("st1"));
  const Schedule s = UniformSchedule(10, Op::kRead);
  const RatioReport report =
      MeasureRatio(policy.get(), s, CostModel::Connection());
  EXPECT_DOUBLE_EQ(report.policy_cost, 10.0);  // every read is remote
  EXPECT_DOUBLE_EQ(report.offline_cost, 1.0);
  EXPECT_DOUBLE_EQ(report.ratio, 10.0);
}

TEST(MeasureRatioTest, ZeroOfflineCostHandled) {
  auto policy = CreatePolicy(*ParsePolicySpec("st2"));
  const Schedule s = UniformSchedule(5, Op::kWrite);
  const RatioReport report =
      MeasureRatio(policy.get(), s, CostModel::Connection());
  EXPECT_DOUBLE_EQ(report.offline_cost, 0.0);
  EXPECT_TRUE(std::isinf(report.ratio));
  // With additive_b covering the whole cost, the ratio collapses to 1.
  const RatioReport forgiven = MeasureRatio(policy.get(), s,
                                            CostModel::Connection(),
                                            /*additive_b=*/5.0);
  EXPECT_DOUBLE_EQ(forgiven.ratio, 1.0);
}

TEST(StaticNonCompetitivenessTest, RatioGrowsWithoutBound) {
  // ST1 on all-reads and ST2 on all-writes: the ratio grows linearly with
  // the schedule length (paper §5.3, §6.4).
  auto st1 = CreatePolicy(*ParsePolicySpec("st1"));
  auto st2 = CreatePolicy(*ParsePolicySpec("st2"));
  const CostModel conn = CostModel::Connection();
  double prev_ratio = 0.0;
  for (const int64_t n : {10, 100, 1000}) {
    const RatioReport r1 =
        MeasureRatio(st1.get(), UniformSchedule(n, Op::kRead), conn);
    EXPECT_GT(r1.ratio, prev_ratio);
    EXPECT_DOUBLE_EQ(r1.ratio, static_cast<double>(n));
    prev_ratio = r1.ratio;

    // ST2 pays n while the offline optimum is 0: unbounded immediately.
    const RatioReport r2 =
        MeasureRatio(st2.get(), UniformSchedule(n, Op::kWrite), conn);
    EXPECT_TRUE(std::isinf(r2.ratio));
  }
}

// The competitiveness *bound*: COST_A <= c * COST_M + b on arbitrary
// schedules. b covers the initial-state transient; one full thrash cycle
// of the policy bounds it.
class CompetitiveBoundTest
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(CompetitiveBoundTest, HoldsOnRandomSchedules) {
  const auto [spec_text, omega] = GetParam();
  const PolicySpec spec = *ParsePolicySpec(spec_text);
  const CostModel model =
      omega < 0.0 ? CostModel::Connection() : CostModel::Message(omega);
  const double factor = *ClaimedCompetitiveFactor(spec, model);
  auto policy = CreatePolicy(spec);

  // Generous additive constant: the cost of 2(k+1) chargeable requests.
  const double b = 2.0 * (spec.parameter + 2) * (1.0 + std::max(0.0, omega));

  Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    const double theta = rng.NextDouble();
    const Schedule s = GenerateBernoulliSchedule(400, theta, &rng);
    const double policy_cost = PolicyCostOnSchedule(policy.get(), s, model);
    const double offline = OfflineOptimalCost(s, model);
    EXPECT_LE(policy_cost, factor * offline + b)
        << spec_text << " omega=" << omega << " trial=" << trial;
  }
}

TEST_P(CompetitiveBoundTest, HoldsOnAdversarialBlocks) {
  const auto [spec_text, omega] = GetParam();
  const PolicySpec spec = *ParsePolicySpec(spec_text);
  const CostModel model =
      omega < 0.0 ? CostModel::Connection() : CostModel::Message(omega);
  const double factor = *ClaimedCompetitiveFactor(spec, model);
  auto policy = CreatePolicy(spec);
  const double b = 2.0 * (spec.parameter + 2) * (1.0 + std::max(0.0, omega));

  for (const int wb : {1, 2, 5, 9, 16}) {
    for (const int rb : {1, 2, 5, 9, 16}) {
      const Schedule s = BlockSchedule(30, wb, rb);
      const double policy_cost = PolicyCostOnSchedule(policy.get(), s, model);
      const double offline = OfflineOptimalCost(s, model);
      EXPECT_LE(policy_cost, factor * offline + b)
          << spec_text << " blocks " << wb << "w/" << rb << "r";
    }
  }
}

TEST_P(CompetitiveBoundTest, HoldsOnCruelSchedule) {
  const auto [spec_text, omega] = GetParam();
  const PolicySpec spec = *ParsePolicySpec(spec_text);
  const CostModel model =
      omega < 0.0 ? CostModel::Connection() : CostModel::Message(omega);
  const double factor = *ClaimedCompetitiveFactor(spec, model);
  auto policy = CreatePolicy(spec);
  const double b = 2.0 * (spec.parameter + 2) * (1.0 + std::max(0.0, omega));

  const Schedule s = CruelSchedule(*policy, 600);
  const double policy_cost = PolicyCostOnSchedule(policy.get(), s, model);
  const double offline = OfflineOptimalCost(s, model);
  EXPECT_LE(policy_cost, factor * offline + b) << spec_text;
}

INSTANTIATE_TEST_SUITE_P(
    AllDynamicPolicies, CompetitiveBoundTest,
    ::testing::Combine(::testing::Values("sw1", "sw:3", "sw:5", "sw:9",
                                         "t1:4", "t2:4"),
                       ::testing::Values(-1.0, 0.0, 0.3, 0.8)));

// Tightness: on the paper's adversarial constructions the measured ratio
// approaches the claimed factor.
TEST(TightnessTest, SwkConnectionApproachesKPlusOne) {
  const CostModel conn = CostModel::Connection();
  for (const int k : {1, 3, 5, 9}) {
    SlidingWindowPolicy policy(k);
    const Schedule s = BlockSchedule(250, k, k);
    const RatioReport report = MeasureRatio(&policy, s, conn);
    const double factor = k + 1.0;
    EXPECT_GT(report.ratio, 0.97 * factor) << "k=" << k;
    EXPECT_LE(report.ratio, factor + 1e-9) << "k=" << k;
  }
}

TEST(TightnessTest, Sw1MessageApproachesOnePlusTwoOmega) {
  for (const double omega : {0.0, 0.25, 0.5, 1.0}) {
    const CostModel model = CostModel::Message(omega);
    auto policy = SlidingWindowPolicy::NewSw1();
    const Schedule s = AlternatingSchedule(1000);
    const RatioReport report = MeasureRatio(policy.get(), s, model);
    const double factor = 1.0 + 2.0 * omega;
    EXPECT_GT(report.ratio, 0.97 * factor) << "omega=" << omega;
    EXPECT_LE(report.ratio, factor + 1e-9) << "omega=" << omega;
  }
}

TEST(TightnessTest, SwkMessageApproachesTheorem12Factor) {
  for (const int k : {3, 5, 9}) {
    for (const double omega : {0.25, 0.5, 1.0}) {
      const CostModel model = CostModel::Message(omega);
      SlidingWindowPolicy policy(k);
      const Schedule s = BlockSchedule(250, k, k);
      const RatioReport report = MeasureRatio(&policy, s, model);
      const double factor = (1.0 + omega / 2.0) * (k + 1.0) + omega;
      EXPECT_GT(report.ratio, 0.97 * factor)
          << "k=" << k << " omega=" << omega;
      EXPECT_LE(report.ratio, factor + 1e-9)
          << "k=" << k << " omega=" << omega;
    }
  }
}

TEST(TightnessTest, T1mConnectionApproachesMPlusOne) {
  // (m reads, 1 write)* forces T1m to pay m + 1 per cycle while the offline
  // algorithm pays 1.
  for (const int m : {2, 4, 8}) {
    T1mPolicy policy(m);
    Schedule s;
    for (int cycle = 0; cycle < 300; ++cycle) {
      for (int i = 0; i < m; ++i) s.push_back(Op::kRead);
      s.push_back(Op::kWrite);
    }
    const RatioReport report =
        MeasureRatio(&policy, s, CostModel::Connection());
    const double factor = m + 1.0;
    EXPECT_GT(report.ratio, 0.97 * factor) << "m=" << m;
    EXPECT_LE(report.ratio, factor + 1e-9) << "m=" << m;
  }
}

TEST(ExhaustiveWorstRatioTest, FindsTheAllReadScheduleForSt1) {
  auto st1 = CreatePolicy(*ParsePolicySpec("st1"));
  const ExhaustiveWorstCase worst =
      ExhaustiveWorstRatio(st1.get(), CostModel::Connection(), 10);
  // The all-read schedule costs ST1 n = 10 against an offline cost of 1.
  EXPECT_DOUBLE_EQ(worst.ratio, 10.0);
  EXPECT_EQ(ScheduleToString(worst.schedule), "rrrrrrrrrr");
}

TEST(ExhaustiveWorstRatioTest, StaysAtOrBelowClaimedFactorForSwk) {
  // With b covering the start-up transient, no schedule of length <= 14
  // exceeds the claimed factor; and some schedule gets reasonably close.
  for (const int k : {1, 3}) {
    SlidingWindowPolicy policy(k);
    const CostModel model = CostModel::Connection();
    const double factor = k + 1.0;
    const double b = k + 1.0;
    const ExhaustiveWorstCase worst =
        ExhaustiveWorstRatio(&policy, model, 14, b);
    EXPECT_LE(worst.ratio, factor + 1e-9) << "k=" << k;
    EXPECT_GE(worst.ratio, 0.5 * factor) << "k=" << k;
  }
}

TEST(ExhaustiveWorstRatioTest, Sw1MessageModelExact) {
  // Without the additive allowance, the alternating construction is the
  // worst schedule at every even length; ratio = (1 + 2w) * pairs / pairs.
  auto sw1 = SlidingWindowPolicy::NewSw1();
  const double omega = 0.5;
  const ExhaustiveWorstCase worst =
      ExhaustiveWorstRatio(sw1.get(), CostModel::Message(omega), 12);
  // Worst ratio achieved by thrash schedules; must not exceed the factor
  // plus the vanishing start-up term (the first write is free because the
  // MC starts without a copy, so the ratio can only fall below).
  EXPECT_LE(worst.ratio, 1.0 + 2.0 * omega + 1e-9);
  EXPECT_GT(worst.ratio, 0.9 * (1.0 + 2.0 * omega));
}

}  // namespace
}  // namespace mobrep
