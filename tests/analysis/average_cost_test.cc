#include "mobrep/analysis/average_cost.h"

#include <string>

#include <gtest/gtest.h>

#include "mobrep/analysis/expected_cost.h"
#include "mobrep/common/math.h"
#include "mobrep/common/random.h"
#include "mobrep/core/cost_simulator.h"
#include "mobrep/core/policy_factory.h"
#include "mobrep/trace/generators.h"

namespace mobrep {
namespace {

// --- Closed forms against the paper's stated values ---

TEST(AvgConnectionTest, StaticsAreOneHalf) {
  EXPECT_DOUBLE_EQ(AvgStConnection(), 0.5);
}

TEST(AvgConnectionTest, SwkFormulaValues) {
  // Eq. 6: 1/4 + 1/(4(k+2)).
  EXPECT_DOUBLE_EQ(AvgSwkConnection(1), 0.25 + 1.0 / 12.0);
  EXPECT_DOUBLE_EQ(AvgSwkConnection(9), 0.25 + 1.0 / 44.0);
  EXPECT_DOUBLE_EQ(AvgSwkConnection(15), 0.25 + 1.0 / 68.0);
}

TEST(AvgConnectionTest, DecreasesWithK) {
  // Corollary 1.
  double prev = 1.0;
  for (const int k : {1, 3, 5, 9, 15, 21, 99}) {
    const double avg = AvgSwkConnection(k);
    EXPECT_LT(avg, prev);
    EXPECT_LT(avg, AvgStConnection());
    prev = avg;
  }
}

TEST(AvgConnectionTest, PaperClaimWithinSixPercentAtK15) {
  // §2.1: the k -> infinity optimum of the average expected cost is 1/4;
  // at k = 15, AVG is within 6% of it.
  const double optimum = 0.25;
  EXPECT_LT((AvgSwkConnection(15) - optimum) / optimum, 0.06);
  // ... but not yet at k = 9 (where the paper's §9 quotes "within 10%").
  EXPECT_GT((AvgSwkConnection(9) - optimum) / optimum, 0.06);
  EXPECT_LT((AvgSwkConnection(9) - optimum) / optimum, 0.10);
}

TEST(AvgMessageTest, PaperFormulas) {
  // Eq. 8 and eq. 10.
  EXPECT_DOUBLE_EQ(AvgSt1Message(0.5), 0.75);
  EXPECT_DOUBLE_EQ(AvgSt2Message(0.5), 0.5);
  EXPECT_DOUBLE_EQ(AvgSw1Message(0.5), 2.0 / 6.0);
  // Thm. 7: AVG_SW1 <= AVG_ST2 <= AVG_ST1 for every omega.
  for (double omega = 0.0; omega <= 1.0; omega += 0.05) {
    EXPECT_LE(AvgSw1Message(omega), AvgSt2Message(omega) + 1e-12);
    EXPECT_LE(AvgSt2Message(omega), AvgSt1Message(omega) + 1e-12);
  }
}

TEST(AvgMessageTest, SwkDecreasesWithKAndExceedsBound) {
  // Corollary 2.
  for (const double omega : {0.0, 0.3, 0.6, 1.0}) {
    double prev = 10.0;
    for (const int k : {3, 5, 9, 15, 21, 99, 999}) {
      const double avg = AvgSwkMessage(k, omega);
      EXPECT_LT(avg, prev) << "k=" << k << " omega=" << omega;
      EXPECT_GT(avg, AvgSwkMessageLowerBound(omega));
      prev = avg;
    }
  }
}

// --- Closed forms against numeric integration of the EXP formulas ---

class AvgNumericTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AvgNumericTest, ClosedFormMatchesIntegralConnection) {
  const PolicySpec spec = *ParsePolicySpec(GetParam());
  const CostModel model = CostModel::Connection();
  const double closed = *AverageExpectedCost(spec, model);
  const double numeric = *AverageExpectedCostNumeric(spec, model);
  EXPECT_NEAR(closed, numeric, 1e-8) << GetParam();
}

TEST_P(AvgNumericTest, ClosedFormMatchesIntegralMessage) {
  const PolicySpec spec = *ParsePolicySpec(GetParam());
  for (const double omega : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const CostModel model = CostModel::Message(omega);
    const double closed = *AverageExpectedCost(spec, model);
    const double numeric = *AverageExpectedCostNumeric(spec, model);
    EXPECT_NEAR(closed, numeric, 1e-8) << GetParam() << " omega=" << omega;
  }
}

INSTANTIATE_TEST_SUITE_P(Roster, AvgNumericTest,
                         ::testing::Values("st1", "st2", "sw1", "sw:3",
                                           "sw:5", "sw:9", "sw:15", "t1:3",
                                           "t1:15", "t2:3", "t2:15"));

TEST(AvgT1mConnectionTest, ClosedForm) {
  // 1/2 - m/((m+1)(m+2)); for m = 1 this equals AVG of the unoptimized
  // window-of-one algorithm, 1/3.
  EXPECT_NEAR(AvgT1mConnection(1), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(AvgT1mConnection(1), AvgSwkConnection(1), 1e-12);
  EXPECT_DOUBLE_EQ(AvgT2mConnection(5), AvgT1mConnection(5));
}

// --- The AVG measure's semantics: period workloads with theta ~ U[0,1] ---

class AvgPeriodSimulationTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(AvgPeriodSimulationTest, PeriodWorkloadConvergesToAvg) {
  const PolicySpec spec = *ParsePolicySpec(GetParam());
  const CostModel model = CostModel::Connection();
  const double expected = *AverageExpectedCost(spec, model);

  auto policy = CreatePolicy(spec);
  CostMeter meter(policy.get(), &model);
  // Long periods make the within-period transient negligible.
  Rng rng(20240701);
  PeriodRequestStream stream(/*period_length=*/4000, rng);
  const int64_t n = 4'000'000;
  for (int64_t i = 0; i < n; ++i) meter.OnRequest(stream.Next());
  const double mean = meter.breakdown().MeanCostPerRequest();
  EXPECT_NEAR(mean, expected, 0.015) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Roster, AvgPeriodSimulationTest,
                         ::testing::Values("st1", "st2", "sw:9", "sw1"));

}  // namespace
}  // namespace mobrep
