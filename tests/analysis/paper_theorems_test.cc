// The paper checklist: one test per numbered theorem/corollary, asserted
// over dense parameter grids. Several overlap with module tests; this file
// is organized so a reviewer can tick off the paper's claims one by one.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "mobrep/analysis/average_cost.h"
#include "mobrep/analysis/competitive.h"
#include "mobrep/analysis/dominance.h"
#include "mobrep/analysis/expected_cost.h"
#include "mobrep/analysis/markov_oracle.h"
#include "mobrep/analysis/thresholds.h"
#include "mobrep/common/math.h"

namespace mobrep {
namespace {

constexpr int kOddK[] = {1, 3, 5, 7, 9, 11, 15, 21, 51};

double ThetaAt(int i) { return i / 100.0; }

// Theorem 1: EXP_SWk = theta*alpha_k + (1-theta)(1-alpha_k) in the
// connection model (verified against the independent Markov oracle).
TEST(PaperChecklist, Theorem1) {
  for (const int k : {1, 3, 5, 9, 13}) {
    for (int i = 0; i <= 100; i += 5) {
      const double theta = ThetaAt(i);
      EXPECT_NEAR(ExpSwkConnection(k, theta),
                  MarkovExpectedCostSlidingWindow(k, false, theta,
                                                  CostModel::Connection()),
                  1e-10);
    }
  }
}

// Theorem 2: EXP_SWk >= min(EXP_ST1, EXP_ST2) for every k and theta.
TEST(PaperChecklist, Theorem2) {
  for (const int k : kOddK) {
    for (int i = 0; i <= 100; ++i) {
      const double theta = ThetaAt(i);
      EXPECT_GE(ExpSwkConnection(k, theta),
                std::min(ExpSt1Connection(theta), ExpSt2Connection(theta)) -
                    1e-12);
    }
  }
}

// Theorem 3: AVG_SWk = 1/4 + 1/(4(k+2)).
TEST(PaperChecklist, Theorem3) {
  for (const int k : kOddK) {
    const double numeric = AdaptiveSimpson(
        [k](double theta) { return ExpSwkConnection(k, theta); }, 0.0, 1.0,
        1e-11);
    EXPECT_NEAR(AvgSwkConnection(k), numeric, 1e-9) << "k=" << k;
  }
}

// Corollary 1: AVG_SWk decreases in k and undercuts both statics.
TEST(PaperChecklist, Corollary1) {
  double prev = 1e9;
  for (const int k : kOddK) {
    const double avg = AvgSwkConnection(k);
    EXPECT_LT(avg, prev);
    EXPECT_LT(avg, AvgStConnection());
    prev = avg;
  }
}

// Theorem 4 (tightness realized): on (k writes, k reads)* the measured
// ratio converges to k+1 — checked in competitive tests; here we check the
// bound form COST <= (k+1) OPT + b structurally via the claimed factor.
TEST(PaperChecklist, Theorem4) {
  for (const int k : kOddK) {
    EXPECT_DOUBLE_EQ(*ClaimedCompetitiveFactor({PolicyKind::kSw, k},
                                               CostModel::Connection()),
                     k + 1.0);
  }
}

// Theorem 5: EXP_SW1 = theta(1-theta)(1+2omega).
TEST(PaperChecklist, Theorem5) {
  for (int i = 0; i <= 100; i += 2) {
    for (int o = 0; o <= 10; ++o) {
      const double theta = ThetaAt(i);
      const double omega = o / 10.0;
      EXPECT_NEAR(ExpSw1Message(theta, omega),
                  MarkovExpectedCostSlidingWindow(1, true, theta,
                                                  CostModel::Message(omega)),
                  1e-10);
    }
  }
}

// Theorem 6: the three-way dominance regions of Figure 1.
TEST(PaperChecklist, Theorem6) {
  for (int o = 0; o <= 20; ++o) {
    const double omega = o / 20.0;
    const double upper = DominanceUpperBoundary(omega);
    const double lower = DominanceLowerBoundary(omega);
    for (int i = 1; i < 100; ++i) {
      const double theta = ThetaAt(i);
      if (std::fabs(theta - upper) < 1e-9 || std::fabs(theta - lower) < 1e-9)
        continue;
      const double st1 = ExpSt1Message(theta, omega);
      const double st2 = ExpSt2Message(theta, omega);
      const double sw1 = ExpSw1Message(theta, omega);
      if (theta > upper) {
        EXPECT_LT(st1, std::min(st2, sw1) + 1e-12);
      } else if (theta < lower) {
        EXPECT_LT(st2, std::min(st1, sw1) + 1e-12);
      } else {
        EXPECT_LE(sw1, std::min(st1, st2) + 1e-12);
      }
    }
  }
}

// Theorem 7: AVG_SW1 = (1+2omega)/6 <= AVG_ST2 <= AVG_ST1.
TEST(PaperChecklist, Theorem7) {
  for (int o = 0; o <= 20; ++o) {
    const double omega = o / 20.0;
    const double numeric = AdaptiveSimpson(
        [omega](double theta) { return ExpSw1Message(theta, omega); }, 0.0,
        1.0, 1e-11);
    EXPECT_NEAR(AvgSw1Message(omega), numeric, 1e-9);
    EXPECT_LE(AvgSw1Message(omega), AvgSt2Message(omega) + 1e-12);
    EXPECT_LE(AvgSt2Message(omega), AvgSt1Message(omega) + 1e-12);
  }
}

// Theorem 8: eq. 11 for SWk (k > 1) in the message model.
TEST(PaperChecklist, Theorem8) {
  for (const int k : {3, 5, 9, 13}) {
    for (int i = 0; i <= 100; i += 5) {
      for (const double omega : {0.0, 0.3, 0.7, 1.0}) {
        const double theta = ThetaAt(i);
        EXPECT_NEAR(ExpSwkMessage(k, theta, omega),
                    MarkovExpectedCostSlidingWindow(
                        k, false, theta, CostModel::Message(omega)),
                    1e-10);
      }
    }
  }
}

// Theorem 9: SWk (k>1) is pointwise dominated by {SW1, ST1, ST2}.
TEST(PaperChecklist, Theorem9) {
  for (const int k : {3, 5, 9, 21}) {
    for (int i = 0; i <= 100; ++i) {
      for (int o = 0; o <= 10; ++o) {
        const double theta = ThetaAt(i);
        const double omega = o / 10.0;
        EXPECT_GE(ExpSwkMessage(k, theta, omega),
                  std::min({ExpSw1Message(theta, omega),
                            ExpSt1Message(theta, omega),
                            ExpSt2Message(theta, omega)}) -
                      1e-9);
      }
    }
  }
}

// Lemma 1 (§6.3, supporting Thm. 9): for theta <= 0.5 — the read-heavy
// half, where ST2 is the natural static — SWk (k > 1) cannot beat ST2:
// EXP_SWk >= EXP_ST2. (The OCR of the paper loses the inequality glyph;
// this is the direction consistent with Theorem 9.)
TEST(PaperChecklist, Lemma1) {
  for (const int k : {3, 5, 9}) {
    for (int i = 0; i <= 50; ++i) {
      for (const double omega : {0.0, 0.5, 1.0}) {
        const double theta = ThetaAt(i);
        EXPECT_GE(ExpSwkMessage(k, theta, omega),
                  ExpSt2Message(theta, omega) - 1e-12)
            << "k=" << k << " theta=" << theta << " omega=" << omega;
      }
    }
  }
}

// Lemma 2: for theta > 0.5, alpha_k decreases in k and 1-theta-alpha_k > 0
// fails... the paper states 1 - theta - alpha_k > 0 cannot hold for all
// parameters; we verify the monotonicity part on a grid.
TEST(PaperChecklist, Lemma2Monotonicity) {
  for (int i = 51; i <= 99; ++i) {
    const double theta = ThetaAt(i);
    double prev = AlphaK(3, theta);
    for (const int k : {5, 7, 9, 11, 21}) {
      const double alpha = AlphaK(k, theta);
      EXPECT_LT(alpha, prev + 1e-12) << "theta=" << theta << " k=" << k;
      prev = alpha;
    }
  }
}

// Theorem 10: eq. 12 equals the integral of eq. 11.
TEST(PaperChecklist, Theorem10) {
  for (const int k : {3, 5, 9, 15, 39}) {
    for (const double omega : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      const double numeric = AdaptiveSimpson(
          [&](double theta) { return ExpSwkMessage(k, theta, omega); }, 0.0,
          1.0, 1e-11);
      EXPECT_NEAR(AvgSwkMessage(k, omega), numeric, 1e-8)
          << "k=" << k << " omega=" << omega;
    }
  }
}

// Corollary 2: AVG_SWk decreases in k toward (but never reaching)
// 1/4 + omega/8.
TEST(PaperChecklist, Corollary2) {
  for (const double omega : {0.0, 0.4, 0.8, 1.0}) {
    double prev = 1e9;
    for (const int k : {3, 5, 9, 21, 99, 499}) {
      const double avg = AvgSwkMessage(k, omega);
      EXPECT_LT(avg, prev);
      EXPECT_GT(avg, AvgSwkMessageLowerBound(omega));
      prev = avg;
    }
  }
}

// Corollary 3: omega <= 0.4 -> SW1 beats every SWk on AVG.
TEST(PaperChecklist, Corollary3) {
  for (const double omega : {0.0, 0.1, 0.2, 0.3, 0.4}) {
    for (const int k : {3, 5, 9, 21, 99, 999}) {
      EXPECT_GT(AvgSwkMessage(k, omega), AvgSw1Message(omega))
          << "omega=" << omega << " k=" << k;
    }
  }
}

// Corollary 4: omega > 0.4 -> SWk beats SW1 exactly from the quadratic
// root onward.
TEST(PaperChecklist, Corollary4) {
  for (const double omega : {0.45, 0.5, 0.6, 0.8, 1.0}) {
    const double root = *KThresholdReal(omega);
    for (int k = 3; k <= 201; k += 2) {
      const bool beats = AvgSwkMessage(k, omega) <= AvgSw1Message(omega);
      EXPECT_EQ(beats, static_cast<double>(k) >= root - 1e-9)
          << "omega=" << omega << " k=" << k << " root=" << root;
    }
  }
}

// Theorems 11 and 12: claimed factors in the message model.
TEST(PaperChecklist, Theorems11And12) {
  for (int o = 0; o <= 10; ++o) {
    const double omega = o / 10.0;
    const CostModel model = CostModel::Message(omega);
    EXPECT_DOUBLE_EQ(*ClaimedCompetitiveFactor({PolicyKind::kSw1, 1}, model),
                     1.0 + 2.0 * omega);
    for (const int k : {3, 9, 15}) {
      EXPECT_DOUBLE_EQ(
          *ClaimedCompetitiveFactor({PolicyKind::kSw, k}, model),
          (1.0 + omega / 2.0) * (k + 1.0) + omega);
    }
  }
}

// §7.1: the modified statics' expected costs and the "price of
// competitiveness" term.
TEST(PaperChecklist, Section71) {
  for (const int m : {1, 3, 7, 15, 31}) {
    for (int i = 0; i <= 100; i += 5) {
      const double theta = ThetaAt(i);
      const double exp_t1 = ExpT1mConnection(m, theta);
      // The second term of the formula is the surcharge over static ST1.
      EXPECT_NEAR(exp_t1 - ExpSt1Connection(theta),
                  std::pow(1.0 - theta, m) * (2.0 * theta - 1.0), 1e-12);
      // Mirror symmetry T1m(theta) == T2m(1 - theta).
      EXPECT_NEAR(exp_t1, ExpT2mConnection(m, 1.0 - theta), 1e-12);
    }
  }
}

}  // namespace
}  // namespace mobrep
