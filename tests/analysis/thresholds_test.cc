#include "mobrep/analysis/thresholds.h"

#include <cmath>

#include <gtest/gtest.h>

#include "mobrep/analysis/average_cost.h"

namespace mobrep {
namespace {

TEST(KThresholdRealTest, RequiresOmegaAboveCorollary3Bound) {
  EXPECT_FALSE(KThresholdReal(0.0).ok());
  EXPECT_FALSE(KThresholdReal(0.4).ok());
  EXPECT_TRUE(KThresholdReal(0.41).ok());
  EXPECT_TRUE(KThresholdReal(1.0).ok());
}

TEST(KThresholdRealTest, PaperWorkedExamples) {
  // omega = 0.8: root ~5.07 -> the next odd k is 7 (paper: "if omega = 0.8,
  // then only when k >= 7").
  const double root_08 = *KThresholdReal(0.8);
  EXPECT_GT(root_08, 5.0);
  EXPECT_LT(root_08, 7.0);
  // omega = 0.45: root ~38.5 -> next odd k is 39.
  const double root_045 = *KThresholdReal(0.45);
  EXPECT_GT(root_045, 37.0);
  EXPECT_LT(root_045, 39.0);
}

TEST(MinOddKBeatingSw1Test, PaperWorkedExamples) {
  EXPECT_EQ(*MinOddKBeatingSw1(0.8), 7);
  EXPECT_EQ(*MinOddKBeatingSw1(0.45), 39);
}

TEST(MinOddKBeatingSw1Test, FigureAxisPoints) {
  // The paper's figure marks k in {3,5,7,11,21,39,95} along decreasing
  // omega; check the curve is monotone: lower omega -> larger threshold.
  int prev = 3;
  for (const double omega : {1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.45, 0.43}) {
    const auto k = MinOddKBeatingSw1(omega);
    ASSERT_TRUE(k.ok()) << "omega=" << omega;
    EXPECT_GE(*k, prev) << "omega=" << omega;
    prev = *k;
  }
}

TEST(MinOddKBeatingSw1Test, NoThresholdAtOrBelowPointFour) {
  EXPECT_FALSE(MinOddKBeatingSw1(0.4, /*k_max=*/20001).ok());
  EXPECT_FALSE(MinOddKBeatingSw1(0.2, /*k_max=*/20001).ok());
}

TEST(MinOddKBeatingSw1Test, ConsistentWithClosedFormRoot) {
  // The searched threshold must be the smallest odd integer > 1 at or above
  // the real root.
  for (const double omega : {0.45, 0.5, 0.6, 0.75, 0.9, 1.0}) {
    const double root = *KThresholdReal(omega);
    const int k = *MinOddKBeatingSw1(omega);
    EXPECT_GE(static_cast<double>(k), root - 1e-9) << "omega=" << omega;
    // The previous odd value must not already beat SW1.
    if (k - 2 > 1) {
      EXPECT_GT(AvgSwkMessage(k - 2, omega), AvgSw1Message(omega))
          << "omega=" << omega;
    }
    EXPECT_LE(AvgSwkMessage(k, omega), AvgSw1Message(omega));
  }
}

}  // namespace
}  // namespace mobrep
