#include "mobrep/analysis/advisor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "mobrep/analysis/average_cost.h"
#include "mobrep/analysis/expected_cost.h"

namespace mobrep {
namespace {

TEST(AdvisorTest, RejectsBadInput) {
  AdvisorQuery query;
  query.theta = 1.5;
  EXPECT_FALSE(RecommendPolicy(query).ok());
  query.theta.reset();
  query.max_competitive_factor = 0.5;
  EXPECT_FALSE(RecommendPolicy(query).ok());
  query.max_competitive_factor = 10.0;
  query.max_parameter = 0;
  EXPECT_FALSE(RecommendPolicy(query).ok());
}

TEST(AdvisorTest, UnknownThetaConnectionPicksLargestFeasibleWindow) {
  // Paper §9: with theta unknown, pick SWk balancing AVG (decreasing in k)
  // against competitiveness (k+1); with a factor budget of 10, k = 9.
  AdvisorQuery query;
  query.model = CostModel::Connection();
  query.max_competitive_factor = 10.0;
  const auto rec = RecommendPolicy(query);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->spec.kind, PolicyKind::kSw);
  EXPECT_EQ(rec->spec.parameter, 9);
  EXPECT_NEAR(rec->predicted_cost, AvgSwkConnection(9), 1e-12);
  EXPECT_DOUBLE_EQ(rec->competitive_factor, 10.0);
}

TEST(AdvisorTest, UnknownThetaLowOmegaPicksSw1) {
  // Corollary 3: for omega <= 0.4 SW1 has the best average expected cost,
  // and it also has the best worst case — it should win outright.
  AdvisorQuery query;
  query.model = CostModel::Message(0.3);
  query.max_competitive_factor = 50.0;
  const auto rec = RecommendPolicy(query);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->spec.kind, PolicyKind::kSw1);
  EXPECT_NEAR(rec->predicted_cost, AvgSw1Message(0.3), 1e-12);
}

TEST(AdvisorTest, UnknownThetaHighOmegaLargeBudgetPicksBigWindow) {
  // Corollary 4: for omega > 0.4 a large enough window beats SW1 on AVG —
  // with a generous worst-case budget the advisor should take it.
  AdvisorQuery query;
  query.model = CostModel::Message(0.8);
  query.max_competitive_factor = 200.0;
  const auto rec = RecommendPolicy(query);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->spec.kind, PolicyKind::kSw);
  EXPECT_GE(rec->spec.parameter, 7);
  EXPECT_LT(rec->predicted_cost, AvgSw1Message(0.8));
}

TEST(AdvisorTest, KnownThetaNoBoundPicksBestStatic) {
  // With theta known and no worst-case requirement, the statics minimize
  // the expected cost, and at ties the advisor prefers the simplest policy
  // (parameter 0) — so the static wins over asymptotically-equal SWk/T1m.
  AdvisorQuery query;
  query.model = CostModel::Connection();
  query.theta = 0.8;  // writes dominate -> ST1
  const auto rec = RecommendPolicy(query);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->spec.kind, PolicyKind::kSt1) << rec->spec.ToString();
  EXPECT_NEAR(rec->predicted_cost, ExpSt1Connection(0.8), 1e-9);
  EXPECT_TRUE(std::isinf(rec->competitive_factor));

  query.theta = 0.2;  // reads dominate -> ST2
  const auto rec2 = RecommendPolicy(query);
  ASSERT_TRUE(rec2.ok());
  EXPECT_EQ(rec2->spec.kind, PolicyKind::kSt2) << rec2->spec.ToString();
  EXPECT_NEAR(rec2->predicted_cost, ExpSt2Connection(0.2), 1e-9);
}

TEST(AdvisorTest, KnownThetaWithBoundPicksThresholdPolicy) {
  // §7.1: with theta > 0.5 known and a worst-case bound, T1m approximates
  // ST1 better than SWm; budget 16 allows m = 15.
  AdvisorQuery query;
  query.model = CostModel::Connection();
  query.theta = 0.75;
  query.max_competitive_factor = 16.0;
  const auto rec = RecommendPolicy(query);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->spec.kind, PolicyKind::kT1);
  EXPECT_EQ(rec->spec.parameter, 15);
  EXPECT_NEAR(rec->predicted_cost, ExpT1mConnection(15, 0.75), 1e-12);

  query.theta = 0.25;  // mirror: T2m approaches ST2
  const auto rec2 = RecommendPolicy(query);
  ASSERT_TRUE(rec2.ok());
  EXPECT_EQ(rec2->spec.kind, PolicyKind::kT2);
}

TEST(AdvisorTest, TightBudgetFallsBackToSw1) {
  AdvisorQuery query;
  query.model = CostModel::Connection();
  query.max_competitive_factor = 2.0;  // only SW1 (factor 2) fits
  const auto rec = RecommendPolicy(query);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->spec.kind, PolicyKind::kSw1);
  EXPECT_DOUBLE_EQ(rec->competitive_factor, 2.0);
}

TEST(AdvisorTest, ImpossibleBudgetFails) {
  AdvisorQuery query;
  query.model = CostModel::Connection();
  query.max_competitive_factor = 1.5;  // below SW1's factor 2
  const auto rec = RecommendPolicy(query);
  EXPECT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kFailedPrecondition);
}

TEST(AdvisorTest, MessageModelTightBudgetUsesOmega) {
  // SW1's message factor is 1 + 2*omega = 1.4 at omega = 0.2; a budget of
  // 1.5 admits it, 1.3 does not.
  AdvisorQuery query;
  query.model = CostModel::Message(0.2);
  query.max_competitive_factor = 1.5;
  ASSERT_TRUE(RecommendPolicy(query).ok());
  query.max_competitive_factor = 1.3;
  EXPECT_FALSE(RecommendPolicy(query).ok());
}

TEST(AdvisorTest, RecommendationNeverViolatesTheBudget) {
  for (const double omega : {-1.0, 0.2, 0.6, 1.0}) {
    const CostModel model =
        omega < 0 ? CostModel::Connection() : CostModel::Message(omega);
    for (const double budget : {2.5, 5.0, 12.0, 40.0}) {
      for (const double theta : {-1.0, 0.3, 0.7}) {
        AdvisorQuery query;
        query.model = model;
        query.max_competitive_factor = budget;
        if (theta >= 0) query.theta = theta;
        const auto rec = RecommendPolicy(query);
        if (!rec.ok()) continue;
        EXPECT_LE(rec->competitive_factor, budget + 1e-9)
            << "omega=" << omega << " budget=" << budget
            << " theta=" << theta;
        EXPECT_FALSE(rec->rationale.empty());
      }
    }
  }
}

TEST(AdvisorTest, RationaleMentionsPolicy) {
  AdvisorQuery query;
  query.model = CostModel::Connection();
  query.max_competitive_factor = 10.0;
  const auto rec = RecommendPolicy(query);
  ASSERT_TRUE(rec.ok());
  EXPECT_NE(rec->rationale.find(rec->spec.ToString()), std::string::npos);
}

}  // namespace
}  // namespace mobrep
