#include "mobrep/store/versioned_store.h"

#include <gtest/gtest.h>

namespace mobrep {
namespace {

TEST(VersionedStoreTest, PutBumpsVersion) {
  VersionedStore store;
  EXPECT_EQ(store.Put("x", "a"), 1u);
  EXPECT_EQ(store.Put("x", "b"), 2u);
  EXPECT_EQ(store.Put("x", "c"), 3u);
}

TEST(VersionedStoreTest, GetReturnsLatest) {
  VersionedStore store;
  store.Put("x", "a");
  store.Put("x", "b");
  const auto value = store.Get("x");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->value, "b");
  EXPECT_EQ(value->version, 2u);
}

TEST(VersionedStoreTest, MissingKey) {
  VersionedStore store;
  const auto value = store.Get("nope");
  EXPECT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(store.Contains("nope"));
}

TEST(VersionedStoreTest, IndependentKeys) {
  VersionedStore store;
  store.Put("x", "1");
  store.Put("y", "2");
  store.Put("x", "3");
  EXPECT_EQ(store.Get("x")->version, 2u);
  EXPECT_EQ(store.Get("y")->version, 1u);
  EXPECT_EQ(store.size(), 2u);
}

TEST(VersionedValueTest, Equality) {
  const VersionedValue a{"v", 1};
  const VersionedValue b{"v", 1};
  const VersionedValue c{"v", 2};
  const VersionedValue d{"w", 1};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

}  // namespace
}  // namespace mobrep
