#include "mobrep/store/replica_cache.h"

#include <gtest/gtest.h>

namespace mobrep {
namespace {

TEST(ReplicaCacheTest, InstallAndGet) {
  ReplicaCache cache;
  cache.Install("x", {"v1", 1});
  ASSERT_TRUE(cache.Contains("x"));
  const auto value = cache.Get("x");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->value, "v1");
  EXPECT_EQ(value->version, 1u);
}

TEST(ReplicaCacheTest, GetMissing) {
  ReplicaCache cache;
  EXPECT_FALSE(cache.Get("x").ok());
  EXPECT_EQ(cache.Get("x").status().code(), StatusCode::kNotFound);
}

TEST(ReplicaCacheTest, EvictRemoves) {
  ReplicaCache cache;
  cache.Install("x", {"v", 1});
  EXPECT_TRUE(cache.Evict("x").ok());
  EXPECT_FALSE(cache.Contains("x"));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ReplicaCacheTest, EvictMissingFails) {
  ReplicaCache cache;
  const Status status = cache.Evict("x");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(ReplicaCacheTest, ApplyUpdateAdvancesVersion) {
  ReplicaCache cache;
  cache.Install("x", {"v1", 1});
  EXPECT_TRUE(cache.ApplyUpdate("x", {"v2", 2}).ok());
  EXPECT_EQ(cache.Get("x")->value, "v2");
  EXPECT_EQ(cache.Get("x")->version, 2u);
}

TEST(ReplicaCacheTest, ApplyUpdateWithoutSubscriptionFails) {
  ReplicaCache cache;
  const Status status = cache.ApplyUpdate("x", {"v", 1});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(ReplicaCacheTest, ApplyUpdateDetectsVersionSkew) {
  ReplicaCache cache;
  cache.Install("x", {"v1", 1});
  // Skipping a version (FIFO violation) is data loss.
  EXPECT_EQ(cache.ApplyUpdate("x", {"v3", 3}).code(), StatusCode::kDataLoss);
  // Going backwards likewise.
  EXPECT_EQ(cache.ApplyUpdate("x", {"v0", 1}).code(), StatusCode::kDataLoss);
  // The replica is untouched after rejected updates.
  EXPECT_EQ(cache.Get("x")->version, 1u);
}

TEST(ReplicaCacheTest, ReinstallAfterEvict) {
  ReplicaCache cache;
  cache.Install("x", {"v1", 1});
  ASSERT_TRUE(cache.Evict("x").ok());
  cache.Install("x", {"v9", 9});
  EXPECT_EQ(cache.Get("x")->version, 9u);
  // Updates resume from the reinstalled version.
  EXPECT_TRUE(cache.ApplyUpdate("x", {"v10", 10}).ok());
}

}  // namespace
}  // namespace mobrep
