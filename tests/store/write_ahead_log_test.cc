#include "mobrep/store/write_ahead_log.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace mobrep {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void RemoveFile(const std::string& path) { std::remove(path.c_str()); }

TEST(WriteAheadLogTest, RecoverMissingFileIsEmptyStore) {
  const auto store = WriteAheadLog::Recover("/nonexistent/never/there.log");
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->size(), 0u);
}

TEST(WriteAheadLogTest, AppendAndRecover) {
  const std::string path = TempPath("wal_basic.log");
  RemoveFile(path);
  {
    auto log = WriteAheadLog::Open(path);
    ASSERT_TRUE(log.ok());
    VersionedStore store;
    for (int i = 0; i < 5; ++i) {
      const std::string key = i % 2 == 0 ? "x" : "y";
      const uint64_t version = store.Put(key, "value" + std::to_string(i));
      ASSERT_TRUE(
          log->AppendPut(key, {"value" + std::to_string(i), version}).ok());
    }
  }
  const auto recovered = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->size(), 2u);
  EXPECT_EQ(recovered->Get("x")->value, "value4");
  EXPECT_EQ(recovered->Get("x")->version, 3u);
  EXPECT_EQ(recovered->Get("y")->value, "value3");
  EXPECT_EQ(recovered->Get("y")->version, 2u);
  RemoveFile(path);
}

TEST(WriteAheadLogTest, BinarySafeKeysAndValues) {
  const std::string path = TempPath("wal_binary.log");
  RemoveFile(path);
  const std::string key("spa ce\nand\nnewlines", 19);
  std::string value("nul\0inside", 10);
  {
    auto log = WriteAheadLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->AppendPut(key, {value, 1}).ok());
  }
  const auto recovered = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovered.ok());
  const auto got = recovered->Get(key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, value);
  RemoveFile(path);
}

TEST(WriteAheadLogTest, TornTailIsIgnored) {
  const std::string path = TempPath("wal_torn.log");
  RemoveFile(path);
  {
    auto log = WriteAheadLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->AppendPut("a", {"one", 1}).ok());
    ASSERT_TRUE(log->AppendPut("a", {"two", 2}).ok());
  }
  // Simulate a crash mid-append: append half a record.
  {
    std::FILE* file = std::fopen(path.c_str(), "ab");
    ASSERT_NE(file, nullptr);
    const char torn[] = "PUT 3 1:a 4:tw";  // claims 4 bytes, has 2
    std::fwrite(torn, 1, sizeof(torn) - 1, file);
    std::fclose(file);
  }
  const auto recovered = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->Get("a")->value, "two");
  EXPECT_EQ(recovered->Get("a")->version, 2u);
  RemoveFile(path);
}

TEST(WriteAheadLogTest, GarbageTailIsIgnored) {
  const std::string path = TempPath("wal_garbage.log");
  RemoveFile(path);
  {
    auto log = WriteAheadLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->AppendPut("k", {"v", 1}).ok());
  }
  {
    std::FILE* file = std::fopen(path.c_str(), "ab");
    std::fwrite("GARBAGE####", 1, 11, file);
    std::fclose(file);
  }
  const auto recovered = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->Get("k")->value, "v");
  RemoveFile(path);
}

TEST(WriteAheadLogTest, VersionRegressionIsDataLoss) {
  const std::string path = TempPath("wal_skew.log");
  RemoveFile(path);
  {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    // Version jumps from nothing to 7: structurally valid, semantically
    // inconsistent.
    const char record[] = "PUT 7 1:k 1:v\n";
    std::fwrite(record, 1, sizeof(record) - 1, file);
    std::fclose(file);
  }
  const auto recovered = WriteAheadLog::Recover(path);
  EXPECT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kDataLoss);
  RemoveFile(path);
}

TEST(WriteAheadLogTest, AppendAfterCloseFails) {
  const std::string path = TempPath("wal_closed.log");
  RemoveFile(path);
  auto log = WriteAheadLog::Open(path);
  ASSERT_TRUE(log.ok());
  log->Close();
  EXPECT_EQ(log->AppendPut("k", {"v", 1}).code(),
            StatusCode::kFailedPrecondition);
  RemoveFile(path);
}

TEST(WriteAheadLogTest, ReopenAppendsContinuously) {
  const std::string path = TempPath("wal_reopen.log");
  RemoveFile(path);
  {
    auto log = WriteAheadLog::Open(path);
    ASSERT_TRUE(log->AppendPut("k", {"v1", 1}).ok());
  }
  {
    auto log = WriteAheadLog::Open(path);  // append mode: keeps history
    ASSERT_TRUE(log->AppendPut("k", {"v2", 2}).ok());
  }
  const auto recovered = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->Get("k")->version, 2u);
  RemoveFile(path);
}

}  // namespace
}  // namespace mobrep
