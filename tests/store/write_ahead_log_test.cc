#include "mobrep/store/write_ahead_log.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace mobrep {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void RemoveFile(const std::string& path) { std::remove(path.c_str()); }

TEST(WriteAheadLogTest, RecoverMissingFileIsEmptyStore) {
  const auto store = WriteAheadLog::Recover("/nonexistent/never/there.log");
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->store.size(), 0u);
}

TEST(WriteAheadLogTest, AppendAndRecover) {
  const std::string path = TempPath("wal_basic.log");
  RemoveFile(path);
  {
    auto log = WriteAheadLog::Open(path);
    ASSERT_TRUE(log.ok());
    VersionedStore store;
    for (int i = 0; i < 5; ++i) {
      const std::string key = i % 2 == 0 ? "x" : "y";
      const uint64_t version = store.Put(key, "value" + std::to_string(i));
      ASSERT_TRUE(
          log->AppendPut(key, {"value" + std::to_string(i), version}).ok());
    }
  }
  const auto recovered = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->store.size(), 2u);
  EXPECT_EQ(recovered->store.Get("x")->value, "value4");
  EXPECT_EQ(recovered->store.Get("x")->version, 3u);
  EXPECT_EQ(recovered->store.Get("y")->value, "value3");
  EXPECT_EQ(recovered->store.Get("y")->version, 2u);
  RemoveFile(path);
}

TEST(WriteAheadLogTest, BinarySafeKeysAndValues) {
  const std::string path = TempPath("wal_binary.log");
  RemoveFile(path);
  const std::string key("spa ce\nand\nnewlines", 19);
  std::string value("nul\0inside", 10);
  {
    auto log = WriteAheadLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->AppendPut(key, {value, 1}).ok());
  }
  const auto recovered = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovered.ok());
  const auto got = recovered->store.Get(key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, value);
  RemoveFile(path);
}

TEST(WriteAheadLogTest, TornTailIsIgnored) {
  const std::string path = TempPath("wal_torn.log");
  RemoveFile(path);
  {
    auto log = WriteAheadLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->AppendPut("a", {"one", 1}).ok());
    ASSERT_TRUE(log->AppendPut("a", {"two", 2}).ok());
  }
  // Simulate a crash mid-append: append half a record.
  {
    std::FILE* file = std::fopen(path.c_str(), "ab");
    ASSERT_NE(file, nullptr);
    const char torn[] = "PUT 3 1:a 4:tw";  // claims 4 bytes, has 2
    std::fwrite(torn, 1, sizeof(torn) - 1, file);
    std::fclose(file);
  }
  const auto recovered = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->store.Get("a")->value, "two");
  EXPECT_EQ(recovered->store.Get("a")->version, 2u);
  RemoveFile(path);
}

TEST(WriteAheadLogTest, GarbageTailIsIgnored) {
  const std::string path = TempPath("wal_garbage.log");
  RemoveFile(path);
  {
    auto log = WriteAheadLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->AppendPut("k", {"v", 1}).ok());
  }
  {
    std::FILE* file = std::fopen(path.c_str(), "ab");
    std::fwrite("GARBAGE####", 1, 11, file);
    std::fclose(file);
  }
  const auto recovered = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->store.Get("k")->value, "v");
  RemoveFile(path);
}

// Appends `bytes` raw to the file at `path`, mimicking a crash that left a
// partial or corrupt record behind.
void AppendRaw(const std::string& path, const std::string& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), file), bytes.size());
  std::fclose(file);
}

// Writes one good record, appends `tail` raw, and expects recovery to keep
// exactly the good record.
void ExpectTailIgnored(const char* name, const std::string& tail) {
  const std::string path = TempPath(name);
  RemoveFile(path);
  {
    auto log = WriteAheadLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->AppendPut("k", {"good", 1}).ok());
  }
  AppendRaw(path, tail);
  const auto recovered = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->store.size(), 1u);
  EXPECT_EQ(recovered->store.Get("k")->value, "good");
  EXPECT_EQ(recovered->store.Get("k")->version, 1u);
  RemoveFile(path);
}

TEST(WriteAheadLogTest, TornRecordVariantsAreAllIgnored) {
  // A crash can tear an append at any byte; recovery must stop cleanly at
  // every prefix of a record.
  ExpectTailIgnored("wal_torn_keyword.log", "PU");
  ExpectTailIgnored("wal_torn_after_keyword.log", "PUT ");
  ExpectTailIgnored("wal_torn_mid_version.log", "PUT 2");
  ExpectTailIgnored("wal_torn_mid_keylen.log", "PUT 2 1");
  ExpectTailIgnored("wal_torn_mid_key.log", "PUT 2 8:half");
  ExpectTailIgnored("wal_torn_mid_vallen.log", "PUT 2 1:k 4");
  ExpectTailIgnored("wal_torn_mid_value.log", "PUT 2 1:k 4:tw");
  ExpectTailIgnored("wal_torn_missing_newline.log", "PUT 2 1:k 2:vv");
}

TEST(WriteAheadLogTest, CorruptTrailingRecordVariantsAreAllIgnored) {
  // Structurally broken (not merely truncated) tails are also cut off.
  ExpectTailIgnored("wal_corrupt_keyword.log", "POT 2 1:k 1:v\n");
  ExpectTailIgnored("wal_corrupt_no_version.log", "PUT x 1:k 1:v\n");
  ExpectTailIgnored("wal_corrupt_bad_delim.log", "PUT 2 1;k 1:v\n");
  ExpectTailIgnored("wal_corrupt_binary.log",
                    std::string("\x00\xff\x17PUT", 6));
}

TEST(WriteAheadLogTest, SyncKnobIsAppendCompatible) {
  const std::string path = TempPath("wal_synced.log");
  RemoveFile(path);
  {
    WalOptions options;
    options.sync_each_append = true;
    auto log = WriteAheadLog::Open(path, options);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->AppendPut("k", {"v1", 1}).ok());
    ASSERT_TRUE(log->AppendPut("k", {"v2", 2}).ok());
    ASSERT_TRUE(log->Sync().ok());
  }
  const auto recovered = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->store.Get("k")->value, "v2");
  EXPECT_EQ(recovered->store.Get("k")->version, 2u);
  RemoveFile(path);
}

TEST(WriteAheadLogTest, SyncOnClosedLogIsFailedPrecondition) {
  const std::string path = TempPath("wal_sync_closed.log");
  RemoveFile(path);
  auto log = WriteAheadLog::Open(path);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log->Sync().ok());
  log->Close();
  EXPECT_EQ(log->Sync().code(), StatusCode::kFailedPrecondition);
  RemoveFile(path);
}

TEST(WriteAheadLogTest, VersionRegressionIsDataLoss) {
  const std::string path = TempPath("wal_skew.log");
  RemoveFile(path);
  {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    // Version jumps from nothing to 7: structurally valid, semantically
    // inconsistent.
    const char record[] = "PUT 7 1:k 1:v\n";
    std::fwrite(record, 1, sizeof(record) - 1, file);
    std::fclose(file);
  }
  const auto recovered = WriteAheadLog::Recover(path);
  EXPECT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kDataLoss);
  RemoveFile(path);
}

TEST(WriteAheadLogTest, AppendAfterCloseFails) {
  const std::string path = TempPath("wal_closed.log");
  RemoveFile(path);
  auto log = WriteAheadLog::Open(path);
  ASSERT_TRUE(log.ok());
  log->Close();
  EXPECT_EQ(log->AppendPut("k", {"v", 1}).code(),
            StatusCode::kFailedPrecondition);
  RemoveFile(path);
}

TEST(WriteAheadLogTest, ReopenAppendsContinuously) {
  const std::string path = TempPath("wal_reopen.log");
  RemoveFile(path);
  {
    auto log = WriteAheadLog::Open(path);
    ASSERT_TRUE(log->AppendPut("k", {"v1", 1}).ok());
  }
  {
    auto log = WriteAheadLog::Open(path);  // append mode: keeps history
    ASSERT_TRUE(log->AppendPut("k", {"v2", 2}).ok());
  }
  const auto recovered = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->store.Get("k")->version, 2u);
  RemoveFile(path);
}

TEST(WriteAheadLogTest, ChecksumMismatchCutsTheTail) {
  const std::string path = TempPath("wal_crc.log");
  RemoveFile(path);
  {
    auto log = WriteAheadLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->AppendPut("k", {"good", 1}).ok());
  }
  // A structurally valid record whose checksum is wrong (bit rot).
  AppendRaw(path, "PUT 2 1:k 3:bad @0123456789abcdef\n");
  const auto recovered = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->store.Get("k")->value, "good");
  EXPECT_EQ(recovered->checksum_failures, 1);
  EXPECT_GT(recovered->bytes_truncated, 0);
  EXPECT_FALSE(recovered->clean());
  RemoveFile(path);
}

TEST(WriteAheadLogTest, LegacyChecksumlessPutIsAccepted) {
  const std::string path = TempPath("wal_legacy.log");
  RemoveFile(path);
  AppendRaw(path, "PUT 1 1:k 2:v1\n");
  const auto recovered = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->store.Get("k")->value, "v1");
  EXPECT_TRUE(recovered->clean());
  RemoveFile(path);
}

TEST(WriteAheadLogTest, SnapshotsRecoverNewestIntactPayload) {
  const std::string path = TempPath("wal_snap.log");
  RemoveFile(path);
  {
    auto log = WriteAheadLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->AppendSnapshot("state-a").ok());
    ASSERT_TRUE(log->AppendPut("k", {"v", 1}).ok());
    ASSERT_TRUE(log->AppendSnapshot("state-b").ok());
  }
  const auto recovered = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->last_snapshot, "state-b");
  EXPECT_EQ(recovered->snapshots_replayed, 2);
  EXPECT_EQ(recovered->puts_replayed, 1);
  EXPECT_TRUE(recovered->clean());
  RemoveFile(path);
}

TEST(WriteAheadLogTest, TornSnapshotFallsBackToPreviousOne) {
  const std::string path = TempPath("wal_snap_torn.log");
  RemoveFile(path);
  {
    auto log = WriteAheadLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->AppendSnapshot("survivor").ok());
  }
  AppendRaw(path, "SNAP 9:torn-ha");  // claims 9 payload bytes, has 7
  const auto recovered = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->last_snapshot, "survivor");
  EXPECT_EQ(recovered->snapshots_replayed, 1);
  EXPECT_GT(recovered->bytes_truncated, 0);
  RemoveFile(path);
}

TEST(WriteAheadLogTest, ReportCountsTruncatedTailBytes) {
  const std::string path = TempPath("wal_report.log");
  RemoveFile(path);
  {
    auto log = WriteAheadLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->AppendPut("k", {"v", 1}).ok());
  }
  const std::string junk = "PUT 2 1:k 9:sho";
  AppendRaw(path, junk);
  const auto recovered = WriteAheadLog::Recover(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->puts_replayed, 1);
  EXPECT_EQ(recovered->bytes_truncated, static_cast<int64_t>(junk.size()));
  EXPECT_NE(recovered->Summary().find("truncated"), std::string::npos);
  RemoveFile(path);
}

}  // namespace
}  // namespace mobrep
