#include "support/bench_json.h"

#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mobrep/runner/parallel_sweep.h"

namespace mobrep::bench {
namespace {

TEST(BenchReportTest, CellsJsonIsDeterministicAndOrdered) {
  BenchReport a("demo");
  a.Add("grid/x=1", 0.1);
  a.Add("grid/x=2", 1.0 / 3.0);
  a.AddText("note", "hello");
  BenchReport b("demo");
  b.Add("grid/x=1", 0.1);
  b.Add("grid/x=2", 1.0 / 3.0);
  b.AddText("note", "hello");
  EXPECT_EQ(a.CellsJson(), b.CellsJson());
  // Insertion order is the serialization order.
  const std::string json = a.CellsJson();
  EXPECT_LT(json.find("grid/x=1"), json.find("grid/x=2"));
  EXPECT_LT(json.find("grid/x=2"), json.find("note"));
}

TEST(BenchReportTest, DoublesRoundTripExactly) {
  BenchReport report("demo");
  const double value = 0.1234567890123456789;  // not representable exactly
  report.Add("v", value);
  const std::string json = report.CellsJson();
  // %.17g guarantees the printed form parses back to the same double.
  const size_t pos = json.find("\"value\": ");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_EQ(std::stod(json.substr(pos + 9)), value);
}

TEST(BenchReportTest, EscapesKeysAndNonFiniteValues) {
  BenchReport report("demo");
  report.AddText("quote\"back\\slash", "line\nbreak");
  report.Add("inf", std::numeric_limits<double>::infinity());
  report.Add("nan", std::numeric_limits<double>::quiet_NaN());
  const std::string json = report.CellsJson();
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("line\\nbreak"), std::string::npos);
  EXPECT_NE(json.find("\"inf\""), std::string::npos);
  EXPECT_NE(json.find("\"nan\""), std::string::npos);
}

TEST(BenchReportTest, TimingLivesOutsideTheDeterministicPart) {
  BenchReport report("demo");
  report.Add("cell", 1.5);
  const std::string fast = report.FullJson(/*wall_ms=*/1.0, /*threads=*/4,
                                           /*serial_wall_ms=*/4.0);
  const std::string slow = report.FullJson(/*wall_ms=*/9.0, /*threads=*/1,
                                           /*serial_wall_ms=*/0.0);
  EXPECT_NE(fast, slow);
  // Everything before the "timing" member is byte-identical — that is
  // exactly what CI diffs after `jq del(.timing, .metrics)`.
  const std::string prefix = report.CellsJson();
  EXPECT_EQ(fast.substr(0, prefix.size()), prefix);
  EXPECT_EQ(slow.substr(0, prefix.size()), prefix);
  EXPECT_NE(fast.find("\"speedup_vs_serial\": 4"), std::string::npos);
  EXPECT_EQ(slow.find("speedup_vs_serial"), std::string::npos);
}

// The end-to-end determinism gate for the JSON artifacts: a report filled
// from a parallel sweep serializes byte-identically at 1 and N threads.
TEST(BenchReportTest, SweepFilledReportIsByteIdenticalAcrossThreadCounts) {
  auto build = [](int threads) {
    SweepOptions options;
    options.threads = threads;
    const std::vector<double> values = ParallelSweep<double>(
        64,
        [](int64_t cell, Rng& rng) {
          double acc = static_cast<double>(cell);
          for (int i = 0; i < 500; ++i) acc += rng.NextDouble() / (1.0 + acc);
          return acc;
        },
        options);
    BenchReport report("sweep_demo");
    for (size_t i = 0; i < values.size(); ++i) {
      report.Add("cell" + std::to_string(i), values[i]);
    }
    return report.CellsJson();
  };
  const std::string serial = build(1);
  EXPECT_EQ(serial, build(2));
  EXPECT_EQ(serial, build(8));
}

TEST(BenchReportTest, FullJsonCarriesAMetricsMember) {
  BenchReport report("demo");
  report.Add("cell", 1.0);
  const std::string json = report.FullJson(1.0, 1, 0.0);
  // The global registry snapshot rides along after timing; it may be empty
  // ({}) in this test binary, but the member must exist.
  EXPECT_NE(json.find("\"metrics\": "), std::string::npos);
  EXPECT_LT(json.find("\"timing\""), json.find("\"metrics\""));
}

TEST(BenchReportValidateTest, AcceptsAWellFormedDocument) {
  BenchReport report("demo");
  report.Add("cell", 1.0);
  std::string error;
  EXPECT_TRUE(BenchReport::ValidateTimingJson(report.FullJson(2.5, 4, 0.0),
                                              &error))
      << error;
  EXPECT_TRUE(error.empty());
}

TEST(BenchReportValidateTest, RejectsMissingTimingNamingTheBench) {
  BenchReport report("truncated_bench");
  report.Add("cell", 1.0);
  std::string error;
  EXPECT_FALSE(BenchReport::ValidateTimingJson(report.CellsJson() + "}",
                                               &error));
  EXPECT_NE(error.find("truncated_bench"), std::string::npos);
  EXPECT_NE(error.find("timing"), std::string::npos);
}

TEST(BenchReportValidateTest, RejectsNonFiniteOrNegativeWallMs) {
  std::string error;
  EXPECT_FALSE(BenchReport::ValidateTimingJson(
      R"({"bench": "b", "timing": {"wall_ms": "nan", "threads": 2}})",
      &error));
  EXPECT_NE(error.find("wall_ms"), std::string::npos);
  EXPECT_FALSE(BenchReport::ValidateTimingJson(
      R"({"bench": "b", "timing": {"wall_ms": -1.0, "threads": 2}})",
      &error));
}

TEST(BenchReportValidateTest, RejectsBadThreadCount) {
  std::string error;
  EXPECT_FALSE(BenchReport::ValidateTimingJson(
      R"({"bench": "b", "timing": {"wall_ms": 1.0, "threads": 0}})",
      &error));
  EXPECT_NE(error.find("threads"), std::string::npos);
  EXPECT_FALSE(BenchReport::ValidateTimingJson(
      R"({"bench": "b", "timing": {"wall_ms": 1.0}})", &error));
}

TEST(BenchReportValidateDeathTest, FullJsonAbortsOnMalformedTiming) {
  BenchReport report("bad_bench");
  report.Add("cell", 1.0);
  EXPECT_DEATH(report.FullJson(std::numeric_limits<double>::quiet_NaN(), 2,
                               0.0),
               "bad_bench");
  EXPECT_DEATH(report.FullJson(1.0, 0, 0.0), "bad_bench");
}

}  // namespace
}  // namespace mobrep::bench
