#include <cstdint>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "mobrep/chaos/partition_explorer.h"
#include "mobrep/core/policy_factory.h"

namespace mobrep {
namespace {

// The full partition matrix (ctest label `slow`; the fast smoke subset
// lives in partition_sim_test.cc): every policy family x seeds, each cell
// sweeping shape (symmetric / uplink-only / downlink-only) x duration
// (sub-term / multi-term / never-heal). A cell passes only if every run
// holds the reclamation invariants — at most one valid fencing token, no
// acked write lost, reclamation within term + grace + one link delay for
// permanent partitions, full reconvergence (tokens agreeing, overlay
// cleared, replica caught up) for healed ones.

constexpr const char* kAllPolicies[] = {"st1", "st2", "sw1",
                                        "sw:5", "t1:3", "t2:3"};
constexpr uint64_t kSeeds[] = {1, 2026, 0x6d6f62726570ULL};

class PartitionMatrixTest
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {};

TEST_P(PartitionMatrixTest, EveryCellHoldsTheReclamationInvariants) {
  const auto [spec_text, seed] = GetParam();
  PartitionMatrixOptions options;
  options.sim.spec = *ParsePolicySpec(spec_text);
  options.seeds = {seed};
  // Two onsets: one in the initial steady state, one late enough that
  // threshold/window policies have crossed an ownership transfer.
  options.starts = {0.2, 0.45};
  const PartitionMatrixReport report = ExplorePartitions(options);
  EXPECT_EQ(report.runs, 18);  // 3 shapes x 3 durations x 2 starts
  EXPECT_TRUE(report.clean())
      << report.Summary() << "\nfirst failure: "
      << (report.failures.empty()
              ? std::string("none")
              : std::string(PartitionShapeName(report.failures[0].shape)) +
                    "@" + std::to_string(report.failures[0].start) + " dur " +
                    std::to_string(report.failures[0].duration) + ": " +
                    report.failures[0].message);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PartitionMatrixTest,
    ::testing::Combine(::testing::ValuesIn(kAllPolicies),
                       ::testing::ValuesIn(kSeeds)),
    [](const ::testing::TestParamInfo<PartitionMatrixTest::ParamType>& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == ':') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param) % 10000);
    });

// The lease layer under random link faults on top of the partition: drops,
// duplicates and jitter compose with the outage windows (the ARQ recovers
// delivery; leases only gate what a delivered frame may do).
TEST(PartitionMatrixFaultTest, SurvivesLossAndJitterOnTopOfThePartition) {
  PartitionMatrixOptions options;
  options.sim.spec = *ParsePolicySpec("t2:3");
  options.sim.fault.drop_probability = 0.1;
  options.sim.fault.duplicate_probability = 0.05;
  options.sim.fault.max_jitter = 0.002;
  options.seeds = {11, 12};
  const PartitionMatrixReport report = ExplorePartitions(options);
  EXPECT_TRUE(report.clean())
      << report.Summary() << "\nfirst failure: "
      << (report.failures.empty() ? "none" : report.failures[0].message);
}

}  // namespace
}  // namespace mobrep
